// Fig. 9(h) reproduction: Dysim's execution time across the four datasets
// (ordered by user count), b = 500, T = 10. The paper's observation:
// runtime grows with both the number of users and the number of items.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;

  std::printf("=== Fig. 9(h): Dysim execution time across datasets ===\n");
  Effort effort;
  TextTable t;
  // rounds-sim / rounds-skip: promotion-rounds the evaluation fast path
  // executed vs avoided (unseeded-round skips, checkpoint resumes, σ-memo
  // hits); x-saved = (sim + skip) / sim vs the naive T-rounds-per-sample
  // evaluation. The ISSUE 3 acceptance bar is >= 2x on yelp-like.
  t.SetHeader({"dataset", "#users", "#items", "sigma", "seconds",
               "rounds-sim", "rounds-skip", "x-saved"});

  // Ordered by user count, mirroring the paper's x-axis.
  std::vector<data::Dataset> datasets;
  datasets.push_back(MakeDataset("yelp-like@0.5"));
  datasets.push_back(MakeDataset("amazon-like@0.5"));
  datasets.push_back(MakeDataset("gowalla-like@0.5"));
  datasets.push_back(MakeDataset("douban-like@0.5"));

  for (data::Dataset& ds : datasets) {
    api::CampaignSession session(std::move(ds), MakeConfig(effort));
    session.SetProblem(500.0, 10);
    api::PlanResult r = session.Run("dysim");
    const double saved =
        r.rounds_simulated == 0
            ? 1.0
            : static_cast<double>(r.rounds_simulated + r.rounds_skipped) /
                  static_cast<double>(r.rounds_simulated);
    t.AddRow({session.dataset().name,
              TextTable::Int(session.dataset().NumUsers()),
              TextTable::Int(session.dataset().NumItems()),
              TextTable::Num(r.sigma, 1), TextTable::Num(r.wall_seconds, 2),
              TextTable::Int(r.rounds_simulated),
              TextTable::Int(r.rounds_skipped), TextTable::Num(saved, 1)});
  }
  std::printf("%s", t.Render().c_str());
  PrintShapeNote("Fig.9(h)",
                 "time increases with users AND items (gowalla ~ amazon "
                 "despite more users, because amazon has relatively many "
                 "items); douban slowest.");
  return 0;
}
