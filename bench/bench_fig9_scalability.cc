// Fig. 9(h) reproduction: Dysim's execution time across the four datasets
// (ordered by user count), b = 500, T = 10. The paper's observation:
// runtime grows with both the number of users and the number of items.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;

  std::printf("=== Fig. 9(h): Dysim execution time across datasets ===\n");
  Effort effort;
  TextTable t;
  t.SetHeader({"dataset", "#users", "#items", "sigma", "seconds"});

  // Ordered by user count, mirroring the paper's x-axis.
  std::vector<data::Dataset> datasets;
  datasets.push_back(data::MakeYelpLike(0.5));
  datasets.push_back(data::MakeAmazonLike(0.5));
  datasets.push_back(data::MakeGowallaLike(0.5));
  datasets.push_back(data::MakeDoubanLike(0.5));

  for (data::Dataset& ds : datasets) {
    api::CampaignSession session(std::move(ds), MakeConfig(effort));
    session.SetProblem(500.0, 10);
    api::PlanResult r = session.Run("dysim");
    t.AddRow({session.dataset().name,
              TextTable::Int(session.dataset().NumUsers()),
              TextTable::Int(session.dataset().NumItems()),
              TextTable::Num(r.sigma, 1), TextTable::Num(r.wall_seconds, 2)});
  }
  std::printf("%s", t.Render().c_str());
  PrintShapeNote("Fig.9(h)",
                 "time increases with users AND items (gowalla ~ amazon "
                 "despite more users, because amazon has relatively many "
                 "items); douban slowest.");
  return 0;
}
