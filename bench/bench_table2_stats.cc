// Table II + Table III reproduction: dataset statistics. Rows are datasets
// (the paper prints datasets as columns). Absolute sizes are scaled down;
// the qualitative columns (directedness, influence-strength ordering,
// importance ordering, node/edge-type counts) match the paper.
#include <cstdio>

#include "data/catalog.h"
#include "data/stats.h"
#include "util/table.h"

int main() {
  using namespace imdpp;
  std::printf("=== Table II: dataset statistics (scaled synthetics) ===\n");
  TextTable t2;
  data::SetStatsHeader(t2);
  data::AppendStatsRow(t2, data::ComputeStats(data::MakeDoubanLike()));
  data::AppendStatsRow(t2, data::ComputeStats(data::MakeGowallaLike()));
  data::AppendStatsRow(t2, data::ComputeStats(data::MakeYelpLike()));
  data::AppendStatsRow(t2, data::ComputeStats(data::MakeAmazonLike()));
  std::printf("%s", t2.Render().c_str());
  std::printf(
      "\nPaper check: Amazon directed, all others undirected; influence "
      "strength yelp > gowalla > amazon > douban; douban largest.\n");

  std::printf("\n=== Table III: recruited classes (empirical study) ===\n");
  TextTable t3;
  t3.SetHeader({"class", "#users", "#edges"});
  const char* names[5] = {"A", "B", "C", "D", "E"};
  for (int c = 0; c < 5; ++c) {
    data::Dataset ds = data::MakeClassroom(c);
    data::DatasetStats s = data::ComputeStats(ds);
    t3.AddRow({names[c], TextTable::Int(s.users),
               TextTable::Int(s.friendships)});
  }
  std::printf("%s", t3.Render().c_str());
  std::printf("\nPaper check: user counts 33/26/22/20/20, hundreds of "
              "edges per class.\n");
  return 0;
}
