// Fig. 14 reproduction: sensitivity to the overlap threshold θ in TMI
// (markets sharing more than θ users join the same group G). The paper
// sweeps θ in the thousands (millions of users); scaled to our market
// sizes, the sweep is θ ∈ {0, 1, 2, 4, 8}.
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

void RunDataset(data::Dataset ds, TextTable& t,
                const std::vector<int>& thetas) {
  Effort effort;
  effort.selection_samples = 6;
  api::CampaignSession session(std::move(ds), MakeConfig(effort));
  std::vector<std::string> row{session.dataset().name};
  for (int theta : thetas) {
    session.SetProblem(400.0, 8);
    session.mutable_config().market.overlap_theta = theta;
    row.push_back(TextTable::Num(session.Run("dysim").sigma, 1));
  }
  t.AddRow(row);
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;
  std::printf("=== Fig. 14: sensitivity to theta (b=400, T=8) ===\n");
  const std::vector<int> thetas{0, 1, 2, 4, 8};
  TextTable t;
  std::vector<std::string> header{"dataset"};
  for (int th : thetas) header.push_back("theta=" + TextTable::Int(th));
  t.SetHeader(header);
  RunDataset(data::MakeYelpLike(0.4), t, thetas);
  RunDataset(data::MakeGowallaLike(0.4), t, thetas);
  RunDataset(data::MakeAmazonLike(0.4), t, thetas);
  RunDataset(data::MakeDoubanLike(0.3), t, thetas);
  std::printf("%s", t.Render().c_str());
  PrintShapeNote("Fig.14",
                 "interior sweet spot: very small theta over-fragments "
                 "promotional durations, very large theta lets overlapping "
                 "markets push substitutable items at common users; the "
                 "curve is shallow (paper reports mild sensitivity).");
  return 0;
}
