// Fig. 14 reproduction: sensitivity to the overlap threshold θ in TMI
// (markets sharing more than θ users join the same group G). The paper
// sweeps θ in the thousands (millions of users); scaled to our market
// sizes, the sweep is θ ∈ {0, 1, 2, 4, 8}.
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

void RunDataset(const data::Dataset& ds, TextTable& t,
                const std::vector<int>& thetas) {
  Effort effort;
  effort.selection_samples = 6;
  std::vector<std::string> row{ds.name};
  for (int theta : thetas) {
    diffusion::Problem p = ds.MakeProblem(400.0, 8);
    core::DysimConfig cfg = MakeDysimConfig(effort);
    cfg.market.overlap_theta = theta;
    row.push_back(TextTable::Num(RunDysimTimed(p, cfg).sigma, 1));
  }
  t.AddRow(row);
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;
  std::printf("=== Fig. 14: sensitivity to theta (b=400, T=8) ===\n");
  const std::vector<int> thetas{0, 1, 2, 4, 8};
  TextTable t;
  std::vector<std::string> header{"dataset"};
  for (int th : thetas) header.push_back("theta=" + TextTable::Int(th));
  t.SetHeader(header);
  data::Dataset yelp = data::MakeYelpLike(0.4);
  data::Dataset gowalla = data::MakeGowallaLike(0.4);
  data::Dataset amazon = data::MakeAmazonLike(0.4);
  data::Dataset douban = data::MakeDoubanLike(0.3);
  RunDataset(yelp, t, thetas);
  RunDataset(gowalla, t, thetas);
  RunDataset(amazon, t, thetas);
  RunDataset(douban, t, thetas);
  std::printf("%s", t.Render().c_str());
  PrintShapeNote("Fig.14",
                 "interior sweet spot: very small theta over-fragments "
                 "promotional durations, very large theta lets overlapping "
                 "markets push substitutable items at common users; the "
                 "curve is shallow (paper reports mild sensitivity).");
  return 0;
}
