// Fig. 10 reproduction: ablation study. Dysim vs Dysim w/o target markets
// (TM) and w/o item priority (IP), on Yelp and Amazon, sweeping budget
// (T fixed) and number of promotions (b fixed).
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

double RunVariant(api::CampaignSession& session, bool target_markets,
                  bool item_priority) {
  api::PlannerConfig cfg = session.config();
  cfg.dysim.use_target_markets = target_markets;
  cfg.dysim.use_item_priority = item_priority;
  cfg.dysim.use_theorem5_guard = false;  // compare raw schedules
  return session.Run("dysim", cfg).sigma;
}

void BudgetSweep(api::CampaignSession& session) {
  std::printf("--- %s: ablation, sigma vs b (T = 8) ---\n",
              session.dataset().name.c_str());
  TextTable t;
  t.SetHeader({"variant", "b=150", "b=300", "b=450"});
  std::vector<std::string> full{"Dysim"}, no_tm{"w/o TM"}, no_ip{"w/o IP"};
  for (double b : {150.0, 300.0, 450.0}) {
    session.SetProblem(b, 8);
    full.push_back(TextTable::Num(RunVariant(session, true, true), 1));
    no_tm.push_back(TextTable::Num(RunVariant(session, false, true), 1));
    no_ip.push_back(TextTable::Num(RunVariant(session, true, false), 1));
  }
  t.AddRow(full);
  t.AddRow(no_tm);
  t.AddRow(no_ip);
  std::printf("%s\n", t.Render().c_str());
}

void PromotionSweep(api::CampaignSession& session) {
  std::printf("--- %s: ablation, sigma vs T (b = 300) ---\n",
              session.dataset().name.c_str());
  TextTable t;
  t.SetHeader({"variant", "T=2", "T=8", "T=16"});
  std::vector<std::string> full{"Dysim"}, no_tm{"w/o TM"}, no_ip{"w/o IP"};
  for (int T : {2, 8, 16}) {
    session.SetProblem(300.0, T);
    full.push_back(TextTable::Num(RunVariant(session, true, true), 1));
    no_tm.push_back(TextTable::Num(RunVariant(session, false, true), 1));
    no_ip.push_back(TextTable::Num(RunVariant(session, true, false), 1));
  }
  t.AddRow(full);
  t.AddRow(no_tm);
  t.AddRow(no_ip);
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;
  std::printf("=== Fig. 10: ablation study (w/o TM, w/o IP) ===\n");
  Effort effort;
  effort.selection_samples = 6;
  api::CampaignSession yelp(data::MakeYelpLike(0.5), MakeConfig(effort));
  api::CampaignSession amazon(data::MakeAmazonLike(0.5), MakeConfig(effort));
  BudgetSweep(yelp);
  PromotionSweep(yelp);
  BudgetSweep(amazon);
  PromotionSweep(amazon);
  PrintShapeNote("Fig.10",
                 "full Dysim >= both ablations at every point; the gap "
                 "widens as T grows (w/o TM suffers substitutable clashes, "
                 "w/o IP cannot sequence complementary items).");
  return 0;
}
