// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: one campaign realization, σ̂ estimation, meta-graph
// all-pairs matching, MIOA region queries, market evaluation with π, and
// end-to-end planning through the unified api:: registry.
#include <benchmark/benchmark.h>

#include "api/registry.h"
#include "cluster/mioa.h"
#include "data/catalog.h"
#include "diffusion/monte_carlo.h"
#include "kg/meta_graph_matcher.h"

namespace imdpp {
namespace {

const data::Dataset& AmazonDs() {
  static const data::Dataset* ds =
      new data::Dataset(data::MakeAmazonLike(0.5));
  return *ds;
}

void BM_CampaignSample(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, static_cast<int>(state.range(0)));
  diffusion::CampaignSimulator sim(p, {});
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}};
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunSample(seeds, i++).sigma);
  }
}
BENCHMARK(BM_CampaignSample)->Arg(1)->Arg(5)->Arg(10)->Arg(40);

void BM_SigmaEstimate(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  diffusion::MonteCarloEngine engine(p, {},
                                     static_cast<int>(state.range(0)),
                                     /*num_threads=*/0);
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Sigma(seeds));
  }
}
BENCHMARK(BM_SigmaEstimate)->Arg(8)->Arg(32);

const data::Dataset& YelpDs() {
  static const data::Dataset* ds = new data::Dataset(data::MakeYelpLike(0.5));
  return *ds;
}

/// σ̂-estimation throughput vs thread count on the yelp-like dataset
/// (Arg = num_threads; 0 = serial fallback). items_per_second counts
/// simulated realizations, so speedup(T) = items_per_second(T) /
/// items_per_second(0) — that ratio is what CI reads out of
/// BENCH_micro.json. The estimate itself is bit-identical for every Arg.
void BM_SigmaEstimateThreads(benchmark::State& state) {
  const data::Dataset& ds = YelpDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  constexpr int kSamples = 32;
  diffusion::MonteCarloEngine engine(p, {}, kSamples,
                                     static_cast<int>(state.range(0)));
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Sigma(seeds));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
  state.counters["threads"] =
      static_cast<double>(engine.num_threads());
}
// UseRealTime: the engine threads internally, so wall clock — not the
// main thread's CPU time — is the meaningful throughput denominator.
BENCHMARK(BM_SigmaEstimateThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// Same sweep for the Expected() path (per-shard ExpectedState partials
/// are the heaviest reduction).
void BM_ExpectedStateThreads(benchmark::State& state) {
  const data::Dataset& ds = YelpDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  constexpr int kSamples = 16;
  diffusion::MonteCarloEngine engine(p, {}, kSamples,
                                     static_cast<int>(state.range(0)));
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Expected(seeds).AdoptionProb(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_ExpectedStateThreads)->Arg(0)->Arg(4)->UseRealTime();

void BM_MetaGraphAllPairs(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  kg::MetaGraphMatcher matcher(*ds.kg);
  kg::MetaGraph m = ds.relevance->Meta(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.CountAllPairs(m));
  }
}
BENCHMARK(BM_MetaGraphAllPairs);

void BM_MioaRegion(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  std::vector<graph::UserId> sources{0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::UnionInfluenceRegion(*ds.social, sources, 0.01, 8));
  }
}
BENCHMARK(BM_MioaRegion);

void BM_EvalMarketWithPi(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  diffusion::MonteCarloEngine engine(p, {}, 8);
  std::vector<graph::UserId> market;
  for (graph::UserId u = 0; u < 50; ++u) market.push_back(u);
  diffusion::SeedGroup seeds{{0, 0, 1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvalMarket(seeds, market).pi);
  }
}
BENCHMARK(BM_EvalMarketWithPi);

void BM_CandidateUniverse(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  core::CandidateConfig cfg;
  cfg.max_users = 20;
  cfg.max_items = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildCandidateUniverse(p, cfg));
  }
}
BENCHMARK(BM_CandidateUniverse);

void BM_RegistryCreate(benchmark::State& state) {
  api::PlannerConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(api::PlannerRegistry::Create("dysim", cfg));
  }
}
BENCHMARK(BM_RegistryCreate);

/// End-to-end planning cost through the unified api layer (small sample
/// dataset, low effort, so one iteration stays sub-second).
void BM_PlannerPlan(benchmark::State& state) {
  static const data::Dataset* ds =
      new data::Dataset(data::MakeSmallAmazonSample());
  diffusion::Problem p = ds->MakeProblem(100.0, 2);
  api::PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;
  const char* names[] = {"dysim", "bgrd", "ps"};
  auto planner =
      api::PlannerRegistry::CreateOrDie(names[state.range(0)], cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner->Plan(p).sigma);
  }
}
BENCHMARK(BM_PlannerPlan)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace imdpp

BENCHMARK_MAIN();
