// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: one campaign realization, σ̂ estimation, meta-graph
// all-pairs matching, MIOA region queries, market evaluation with π, and
// end-to-end planning through the unified api:: registry.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "api/registry.h"
#include "cluster/mioa.h"
#include "data/catalog.h"
#include "data/dataset_registry.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/sigma_backend.h"
#include "kg/meta_graph_matcher.h"

namespace imdpp {
namespace {

const data::Dataset& AmazonDs() {
  static const data::Dataset* ds =
      new data::Dataset(data::MakeAmazonLike(0.5));
  return *ds;
}

void BM_CampaignSample(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, static_cast<int>(state.range(0)));
  diffusion::CampaignSimulator sim(p, {});
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}};
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunSample(seeds, i++).sigma);
  }
}
BENCHMARK(BM_CampaignSample)->Arg(1)->Arg(5)->Arg(10)->Arg(40);

void BM_SigmaEstimate(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  diffusion::MonteCarloEngine engine(p, {},
                                     static_cast<int>(state.range(0)),
                                     /*num_threads=*/0);
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Sigma(seeds));
  }
}
BENCHMARK(BM_SigmaEstimate)->Arg(8)->Arg(32);

const data::Dataset& YelpDs() {
  static const data::Dataset* ds = new data::Dataset(data::MakeYelpLike(0.5));
  return *ds;
}

/// σ̂-estimation throughput vs thread count on the yelp-like dataset
/// (Arg = num_threads; 0 = serial fallback). items_per_second counts
/// simulated realizations, so speedup(T) = items_per_second(T) /
/// items_per_second(0) — that ratio is what CI reads out of
/// BENCH_micro.json. The estimate itself is bit-identical for every Arg.
void BM_SigmaEstimateThreads(benchmark::State& state) {
  const data::Dataset& ds = YelpDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  constexpr int kSamples = 32;
  diffusion::MonteCarloEngine engine(p, {}, kSamples,
                                     static_cast<int>(state.range(0)));
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Sigma(seeds));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
  state.counters["threads"] =
      static_cast<double>(engine.num_threads());
}
// UseRealTime: the engine threads internally, so wall clock — not the
// main thread's CPU time — is the meaningful throughput denominator.
BENCHMARK(BM_SigmaEstimateThreads)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/// σ̂ estimation per registered backend on the scale series (ISSUE 7):
/// the CI bench job reads both real_times out of BENCH_micro.json and
/// asserts the sketch backend beats forward re-simulation wall-clock.
/// The "ris" sketch build is warmed up before the timing loop, so the row
/// measures steady-state query cost — the cost the greedy selection loops
/// actually pay per candidate.
void BM_SigmaEstimateBackend(benchmark::State& state,
                             const char* backend_name) {
  static const data::Dataset* ds = new data::Dataset(
      data::DatasetRegistry::MakeOrDie({"scale-1024", 1.0, 0}));
  diffusion::Problem p = ds->MakeProblem(300.0, 5);
  diffusion::SigmaBackendSpec spec;
  spec.name = backend_name;
  spec.ris_sketches = 4096;
  std::unique_ptr<diffusion::SigmaBackend> backend =
      diffusion::MakeSigmaBackend(spec, p, {}, /*num_samples=*/32,
                                  /*num_threads=*/0, nullptr);
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  benchmark::DoNotOptimize(backend->Sigma(seeds));  // warm sketch build
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->Sigma(seeds));
  }
  state.SetLabel(std::string(backend->name()));
}
BENCHMARK_CAPTURE(BM_SigmaEstimateBackend, mc, "mc");
BENCHMARK_CAPTURE(BM_SigmaEstimateBackend, ris, "ris");

/// Same sweep for the Expected() path (per-shard ExpectedState partials
/// are the heaviest reduction).
void BM_ExpectedStateThreads(benchmark::State& state) {
  const data::Dataset& ds = YelpDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  constexpr int kSamples = 16;
  diffusion::MonteCarloEngine engine(p, {}, kSamples,
                                     static_cast<int>(state.range(0)));
  diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Expected(seeds).AdoptionProb(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_ExpectedStateThreads)->Arg(0)->Arg(4)->UseRealTime();

/// Checkpoint-resumed σ̂ vs from-scratch σ̂ of the same group (yelp-like,
/// T = 5): the candidate seed lands in the last promotion, so the
/// checkpointed path replays only round 5 instead of rounds 1-5. Arg 0 =
/// naive, Arg 1 = checkpointed; the rounds_per_sigma counter reports the
/// promotion-rounds each estimate actually simulated (engine counters, so
/// the 1-vs-4+ gap is deterministic).
void BM_SigmaCheckpointed(benchmark::State& state) {
  const data::Dataset& ds = YelpDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  constexpr int kSamples = 16;
  diffusion::MonteCarloEngine engine(p, {}, kSamples, /*num_threads=*/0);
  const diffusion::SeedGroup base{{0, 0, 1}, {1, 1, 2}, {5, 3, 3}, {9, 2, 4}};
  diffusion::CheckpointedEval eval(engine, base);
  const bool checkpointed = state.range(0) == 1;
  diffusion::SeedGroup with = base;
  with.push_back({14, 18, 5});
  const int64_t rounds_before = engine.num_rounds_simulated();
  const int64_t sims_before = engine.num_simulations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(checkpointed ? eval.Sigma(with)
                                          : engine.Sigma(with));
  }
  const double estimates = static_cast<double>(
      (engine.num_simulations() - sims_before) / kSamples);
  if (estimates > 0) {
    state.counters["rounds_per_sigma"] =
        static_cast<double>(engine.num_rounds_simulated() - rounds_before) /
        (estimates * kSamples);
  }
}
BENCHMARK(BM_SigmaCheckpointed)->Arg(0)->Arg(1);

/// CR-Greedy-style timing placement (the loop TDSI/Theorem-5 guard/
/// CrGreedyTimings all share) on yelp-like, T = 10: plain per-candidate
/// engine.Sigma (Arg 0) vs checkpoint-resumed candidates (Arg 1). The
/// rounds_simulated counter is the per-placement promotion-round work;
/// rounds_naive is what the pre-PR evaluation (T rounds per sample per
/// estimate, no reuse) would have cost. CI compares the Arg 1 pair
/// (checkpointed must be >= 2x below naive; tests/perf_smoke_test.cc
/// asserts the same bar).
void BM_GreedySelect(benchmark::State& state) {
  const data::Dataset& ds = YelpDs();
  diffusion::Problem p = ds.MakeProblem(500.0, 10);
  constexpr int kSamples = 8;
  constexpr int kPromotions = 10;
  const std::vector<diffusion::Nominee> nominees{
      {0, 0}, {14, 18}, {52, 15}, {111, 10}};
  const bool checkpointed = state.range(0) == 1;
  int64_t rounds = 0;
  int64_t rounds_naive = 0;
  int64_t placements = 0;
  for (auto _ : state) {
    diffusion::MonteCarloEngine engine(p, {}, kSamples, /*num_threads=*/0);
    diffusion::CheckpointedEval eval(engine, /*base=*/{});
    diffusion::SeedGroup placed;
    for (const diffusion::Nominee& n : nominees) {
      int best_t = 1;
      double best_sigma = -1.0;
      for (int t = 1; t <= kPromotions; ++t) {
        diffusion::SeedGroup with = placed;
        with.push_back({n.user, n.item, t});
        const double s = checkpointed ? eval.Sigma(with) : engine.Sigma(with);
        if (s > best_sigma) {
          best_sigma = s;
          best_t = t;
        }
      }
      placed.push_back({n.user, n.item, best_t});
      if (checkpointed) eval.Rebase(placed);
    }
    benchmark::DoNotOptimize(placed.size());
    rounds += engine.num_rounds_simulated();
    rounds_naive += engine.num_rounds_simulated() + engine.num_rounds_skipped();
    ++placements;
  }
  if (placements > 0) {
    state.counters["rounds_simulated"] =
        static_cast<double>(rounds) / static_cast<double>(placements);
    state.counters["rounds_naive"] =
        static_cast<double>(rounds_naive) / static_cast<double>(placements);
  }
}
BENCHMARK(BM_GreedySelect)->Arg(0)->Arg(1);

/// The same timing-placement argmax through the SelectBest seam (ISSUE
/// 10), fixed (Arg 0) vs adaptive racing (Arg 1). rounds_simulated /
/// samples_saved counters expose the deterministic work gap next to the
/// wall-clock rows; CI reads both Args out of BENCH_micro.json.
void BM_GreedySelectAdaptive(benchmark::State& state) {
  const data::Dataset& ds = YelpDs();
  diffusion::Problem p = ds.MakeProblem(500.0, 10);
  constexpr int kSamples = 32;
  constexpr int kPromotions = 10;
  const std::vector<diffusion::Nominee> nominees{
      {0, 0}, {14, 18}, {52, 15}, {111, 10}};
  diffusion::SelectOptions options;
  options.min_score = -1.0;  // the timing-placement accumulator seed
  if (state.range(0) == 1) {
    options.adaptive.enabled = true;
    options.adaptive.min_samples = 2;
    options.adaptive.block_samples = 2;
    options.adaptive.max_samples = 8;  // perf_smoke's measured knobs
  }
  int64_t rounds = 0;
  int64_t saved = 0;
  int64_t placements = 0;
  for (auto _ : state) {
    diffusion::MonteCarloEngine engine(p, {}, kSamples, /*num_threads=*/0);
    diffusion::SeedGroup placed;
    for (const diffusion::Nominee& n : nominees) {
      std::vector<diffusion::SelectCandidate> timings(kPromotions);
      for (int t = 1; t <= kPromotions; ++t) {
        timings[static_cast<size_t>(t - 1)].group = placed;
        timings[static_cast<size_t>(t - 1)].group.push_back(
            {n.user, n.item, t});
      }
      const diffusion::SelectBestResult r =
          engine.SelectBest(timings, options);
      placed.push_back({n.user, n.item,
                        r.best_index < 0 ? 1 : r.best_index + 1});
    }
    benchmark::DoNotOptimize(placed.size());
    rounds += engine.num_rounds_simulated();
    saved += engine.num_samples_saved();
    ++placements;
  }
  if (placements > 0) {
    state.counters["rounds_simulated"] =
        static_cast<double>(rounds) / static_cast<double>(placements);
    state.counters["samples_saved"] =
        static_cast<double>(saved) / static_cast<double>(placements);
  }
}
BENCHMARK(BM_GreedySelectAdaptive)->Arg(0)->Arg(1);

void BM_MetaGraphAllPairs(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  kg::MetaGraphMatcher matcher(*ds.kg);
  kg::MetaGraph m = ds.relevance->Meta(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.CountAllPairs(m));
  }
}
BENCHMARK(BM_MetaGraphAllPairs);

void BM_MioaRegion(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  std::vector<graph::UserId> sources{0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::UnionInfluenceRegion(*ds.social, sources, 0.01, 8));
  }
}
BENCHMARK(BM_MioaRegion);

void BM_EvalMarketWithPi(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  diffusion::MonteCarloEngine engine(p, {}, 8);
  std::vector<graph::UserId> market;
  for (graph::UserId u = 0; u < 50; ++u) market.push_back(u);
  diffusion::SeedGroup seeds{{0, 0, 1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EvalMarket(seeds, market).pi);
  }
}
BENCHMARK(BM_EvalMarketWithPi);

void BM_CandidateUniverse(benchmark::State& state) {
  const data::Dataset& ds = AmazonDs();
  diffusion::Problem p = ds.MakeProblem(300.0, 5);
  core::CandidateConfig cfg;
  cfg.max_users = 20;
  cfg.max_items = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildCandidateUniverse(p, cfg));
  }
}
BENCHMARK(BM_CandidateUniverse);

void BM_RegistryCreate(benchmark::State& state) {
  api::PlannerConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(api::PlannerRegistry::Create("dysim", cfg));
  }
}
BENCHMARK(BM_RegistryCreate);

/// End-to-end planning cost through the unified api layer (small sample
/// dataset, low effort, so one iteration stays sub-second).
void BM_PlannerPlan(benchmark::State& state) {
  static const data::Dataset* ds =
      new data::Dataset(data::MakeSmallAmazonSample());
  diffusion::Problem p = ds->MakeProblem(100.0, 2);
  api::PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;
  const char* names[] = {"dysim", "bgrd", "ps"};
  auto planner =
      api::PlannerRegistry::CreateOrDie(names[state.range(0)], cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner->Plan(p).sigma);
  }
}
BENCHMARK(BM_PlannerPlan)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace imdpp

BENCHMARK_MAIN();
