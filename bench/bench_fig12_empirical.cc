// Fig. 12 reproduction: the empirical course-promotion study. Five
// classroom datasets (Table III sizes), 30 elective courses, b = 50,
// T = 3. The paper recruited real students; we simulate the same campaign
// shapes (see DESIGN.md). Course importance is flattened to 1 so σ is
// literally the expected number of course selections.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;

  std::printf("=== Fig. 12: course selections per class (b=50, T=3) ===\n");
  Effort effort;
  effort.max_users = 0;  // classes are small: exhaustive over students
  effort.max_items = 10;
  effort.eval_samples = 48;

  const std::vector<std::string> algos{"dysim", "bgrd", "hag", "ps"};
  TextTable t;
  std::vector<std::string> header{"class"};
  for (const std::string& a : algos) header.push_back(Label(a));
  t.SetHeader(header);
  const char* names[5] = {"A", "B", "C", "D", "E"};
  for (int c = 0; c < 5; ++c) {
    api::CampaignSession session(data::MakeClassroom(c), MakeConfig(effort));
    session.SetProblem(50.0, 3);
    // Equal-importance courses: sigma == expected #selections.
    diffusion::Problem& p = session.mutable_problem();
    std::fill(p.importance.begin(), p.importance.end(), 1.0);
    std::vector<std::string> row{names[c]};
    for (api::PlanResult& r : session.Compare(algos)) {
      row.push_back(TextTable::Num(r.sigma, 1));
    }
    t.AddRow(row);
  }
  std::printf("%s", t.Render().c_str());
  PrintShapeNote("Fig.12",
                 "Dysim induces the most selections in every class, "
                 "followed by BGRD and HAG; PS last.");
  return 0;
}
