// Fig. 9(e)-(g) reproduction: σ vs number of promotions T on Yelp and
// Amazon (b = 500), plus execution time vs T on Amazon.
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

const std::vector<int> kPromotions{1, 5, 10, 20};

void RunDataset(data::Dataset ds, TextTable* time_table) {
  Effort effort;
  effort.selection_samples = 6;
  effort.max_users = 16;
  effort.max_items = 6;
  api::CampaignSession session(std::move(ds), MakeConfig(effort));
  std::printf("--- %s: sigma vs T (b = 500) ---\n",
              session.dataset().name.c_str());
  TextTable t;
  std::vector<std::string> header{"algorithm"};
  for (int T : kPromotions) header.push_back("T=" + TextTable::Int(T));
  t.SetHeader(header);

  const std::vector<std::string> algos{"dysim", "bgrd", "hag", "ps",
                                       "drhga"};
  std::vector<std::vector<std::string>> rows(algos.size());
  std::vector<std::vector<std::string>> time_rows(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) {
    rows[a].push_back(Label(algos[a]));
    time_rows[a].push_back(Label(algos[a]));
  }
  for (int T : kPromotions) {
    session.SetProblem(500.0, T);
    for (size_t a = 0; a < algos.size(); ++a) {
      api::PlanResult r = session.Run(algos[a]);
      rows[a].push_back(TextTable::Num(r.sigma, 1));
      time_rows[a].push_back(TextTable::Num(r.wall_seconds, 2));
    }
  }
  for (auto& r : rows) t.AddRow(r);
  std::printf("%s\n", t.Render().c_str());
  if (time_table != nullptr) {
    time_table->SetHeader(header);
    for (auto& r : time_rows) time_table->AddRow(r);
  }
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;

  std::printf("=== Fig. 9(e)-(f): influence vs number of promotions ===\n");
  RunDataset(MakeDataset("yelp-like@0.5"), nullptr);
  TextTable amazon_times;
  RunDataset(MakeDataset("amazon-like@0.5"), &amazon_times);

  std::printf("=== Fig. 9(g): execution time (seconds) vs T, Amazon ===\n");
  std::printf("%s", amazon_times.Render().c_str());
  PrintShapeNote("Fig.9(e-g)",
                 "Dysim's sigma keeps growing with T (TDSI schedules "
                 "relevant items across rounds); baselines flatten, "
                 "especially beyond T = 20; Dysim's runtime stays low "
                 "thanks to the pruned timing search.");
  return 0;
}
