// Fig. 9(a)-(d) reproduction: σ vs budget on the large datasets (scaled),
// plus execution time vs budget on Amazon.
//   (a) Yelp, (b) Amazon, (c) Douban (HAG omitted there, as in the paper
//   where it exceeded 12 hours), (d) runtime on Amazon.
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

const std::vector<double> kBudgets{100, 200, 300, 400, 500};

void RunDataset(data::Dataset ds, bool include_hag, TextTable* time_table) {
  Effort effort;
  api::CampaignSession session(std::move(ds), MakeConfig(effort));
  std::printf("--- %s: sigma vs b (T = 10) ---\n",
              session.dataset().name.c_str());
  TextTable t;
  std::vector<std::string> header{"algorithm"};
  for (double b : kBudgets) header.push_back("b=" + TextTable::Int(b));
  t.SetHeader(header);

  std::vector<std::string> algos{"dysim", "bgrd"};
  if (include_hag) algos.push_back("hag");
  algos.push_back("ps");
  algos.push_back("drhga");

  std::vector<std::vector<std::string>> rows(algos.size());
  std::vector<std::vector<std::string>> time_rows(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) {
    rows[a].push_back(Label(algos[a]));
    time_rows[a].push_back(Label(algos[a]));
  }
  for (double b : kBudgets) {
    session.SetProblem(b, 10);
    for (size_t a = 0; a < algos.size(); ++a) {
      api::PlanResult r = session.Run(algos[a]);
      rows[a].push_back(TextTable::Num(r.sigma, 1));
      time_rows[a].push_back(TextTable::Num(r.wall_seconds, 2));
    }
  }
  for (auto& r : rows) t.AddRow(r);
  std::printf("%s\n", t.Render().c_str());

  if (time_table != nullptr) {
    time_table->SetHeader(header);
    for (auto& r : time_rows) time_table->AddRow(r);
  }
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;

  std::printf("=== Fig. 9(a)-(c): influence vs budget ===\n");
  RunDataset(data::MakeYelpLike(0.5), /*include_hag=*/true, nullptr);
  TextTable amazon_times;
  RunDataset(data::MakeAmazonLike(0.5), /*include_hag=*/true, &amazon_times);
  RunDataset(data::MakeDoubanLike(0.35), /*include_hag=*/false, nullptr);

  std::printf("=== Fig. 9(d): execution time (seconds) vs b, Amazon ===\n");
  std::printf("%s", amazon_times.Render().c_str());
  PrintShapeNote("Fig.9(a-d)",
                 "Dysim largest sigma on every dataset, followed by DRHGA "
                 "and BGRD; PS lowest; Dysim's runtime grows only mildly "
                 "with b, HAG's grows fastest.");
  return 0;
}
