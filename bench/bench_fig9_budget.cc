// Fig. 9(a)-(d) reproduction: σ vs budget on the large datasets (scaled),
// plus execution time vs budget on Amazon.
//   (a) Yelp, (b) Amazon, (c) Douban (HAG omitted there, as in the paper
//   where it exceeded 12 hours), (d) runtime on Amazon.
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

const std::vector<double> kBudgets{100, 200, 300, 400, 500};

void RunDataset(const data::Dataset& ds, bool include_hag,
                TextTable* time_table) {
  Effort effort;
  std::printf("--- %s: sigma vs b (T = 10) ---\n", ds.name.c_str());
  TextTable t;
  std::vector<std::string> header{"algorithm"};
  for (double b : kBudgets) header.push_back("b=" + TextTable::Int(b));
  t.SetHeader(header);

  std::vector<std::string> algos{"Dysim", "BGRD"};
  if (include_hag) algos.push_back("HAG");
  algos.push_back("PS");
  algos.push_back("DRHGA");

  std::vector<std::vector<std::string>> rows(algos.size());
  std::vector<std::vector<std::string>> time_rows(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) {
    rows[a].push_back(algos[a]);
    time_rows[a].push_back(algos[a]);
  }
  for (double b : kBudgets) {
    diffusion::Problem p = ds.MakeProblem(b, 10);
    for (size_t a = 0; a < algos.size(); ++a) {
      AlgoOutcome o = algos[a] == "Dysim"
                          ? RunDysimTimed(p, MakeDysimConfig(effort))
                          : RunBaselineTimed(algos[a], p, effort);
      rows[a].push_back(TextTable::Num(o.sigma, 1));
      time_rows[a].push_back(TextTable::Num(o.seconds, 2));
    }
  }
  for (auto& r : rows) t.AddRow(r);
  std::printf("%s\n", t.Render().c_str());

  if (time_table != nullptr) {
    time_table->SetHeader(header);
    for (auto& r : time_rows) time_table->AddRow(r);
  }
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;

  std::printf("=== Fig. 9(a)-(c): influence vs budget ===\n");
  data::Dataset yelp = data::MakeYelpLike(0.5);
  data::Dataset amazon = data::MakeAmazonLike(0.5);
  data::Dataset douban = data::MakeDoubanLike(0.35);

  RunDataset(yelp, /*include_hag=*/true, nullptr);
  TextTable amazon_times;
  RunDataset(amazon, /*include_hag=*/true, &amazon_times);
  RunDataset(douban, /*include_hag=*/false, nullptr);

  std::printf("=== Fig. 9(d): execution time (seconds) vs b, Amazon ===\n");
  std::printf("%s", amazon_times.Render().c_str());
  PrintShapeNote("Fig.9(a-d)",
                 "Dysim largest sigma on every dataset, followed by DRHGA "
                 "and BGRD; PS lowest; Dysim's runtime grows only mildly "
                 "with b, HAG's grows fastest.");
  return 0;
}
