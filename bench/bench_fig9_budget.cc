// Fig. 9(a)-(d) reproduction: σ vs budget on the large datasets (scaled),
// plus execution time vs budget on Amazon.
//   (a) Yelp, (b) Amazon, (c) Douban (HAG omitted there, as in the paper
//   where it exceeded 12 hours), (d) runtime on Amazon.
//
// The whole figure is data: this harness loads configs/fig9_budget.json
// (or a config given as argv[1]) and runs it through cli::RunSweep — the
// same loader and runner behind `imdpp sweep --config ...` — then renders
// the records as the paper-style tables. A CLI sweep of the same file
// therefore reproduces these numbers estimate for estimate.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "cli/sweep_runner.h"

namespace imdpp::bench {
namespace {

/// σ (or seconds) per (dataset, planner) row across the budget columns,
/// in first-seen record order — which is the sweep's expansion order:
/// datasets outermost, planners innermost.
void RenderTables(const config::SweepSpec& spec,
                  const std::vector<report::SweepRecord>& records) {
  std::vector<std::string> header{"algorithm"};
  for (double b : spec.budgets) header.push_back("b=" + TextTable::Int(b));

  std::vector<std::string> dataset_order;
  std::map<std::string, std::vector<std::string>> planner_order;
  // (dataset, planner) -> budget -> cell
  std::map<std::string, std::map<std::string, std::map<double, double>>> sigma;
  std::map<std::string, std::map<std::string, std::map<double, double>>> secs;
  for (const report::SweepRecord& rec : records) {
    const std::string& ds = rec.point.dataset.name;
    const std::string& pl = rec.point.planner;
    if (sigma.find(ds) == sigma.end()) dataset_order.push_back(ds);
    auto& rows = sigma[ds];
    if (rows.find(pl) == rows.end()) planner_order[ds].push_back(pl);
    rows[pl][rec.point.budget] = rec.result.sigma;
    secs[ds][pl][rec.point.budget] = rec.result.wall_seconds;
  }

  TextTable amazon_times;
  for (const std::string& ds : dataset_order) {
    std::printf("--- %s: sigma vs b (T = %d) ---\n", ds.c_str(),
                spec.promotions.front());
    TextTable t;
    t.SetHeader(header);
    TextTable times;
    times.SetHeader(header);
    for (const std::string& pl : planner_order[ds]) {
      std::vector<std::string> row{Label(pl)};
      std::vector<std::string> time_row{Label(pl)};
      for (double b : spec.budgets) {
        row.push_back(TextTable::Num(sigma[ds][pl][b], 1));
        time_row.push_back(TextTable::Num(secs[ds][pl][b], 2));
      }
      t.AddRow(row);
      times.AddRow(time_row);
    }
    std::printf("%s\n", t.Render().c_str());
    if (ds == "amazon-like") amazon_times = times;
  }

  if (amazon_times.NumRows() > 0) {
    std::printf("=== Fig. 9(d): execution time (seconds) vs b, Amazon ===\n");
    std::printf("%s", amazon_times.Render().c_str());
  }
}

}  // namespace
}  // namespace imdpp::bench

int main(int argc, char** argv) {
  using namespace imdpp;
  using namespace imdpp::bench;

  const std::string path =
      argc > 1 ? argv[1] : FindConfigFile("configs/fig9_budget.json");
  util::Json parsed;
  config::SweepSpec spec;
  std::vector<report::SweepRecord> records;
  util::Status status = config::LoadJsonFile(path, &parsed);
  if (status.ok()) status = config::LoadSweepSpec(parsed, &spec);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (spec.promotions.size() != 1) {
    // The tables key cells by budget alone; several T values would
    // silently overwrite each other under one mislabeled header.
    std::fprintf(stderr,
                 "%s: this harness renders a single-T figure; got %zu "
                 "promotions values\n",
                 path.c_str(), spec.promotions.size());
    return 1;
  }
  status = cli::RunSweep(spec, &records);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("=== Fig. 9(a)-(c): influence vs budget (%s) ===\n",
              path.c_str());
  RenderTables(spec, records);
  PrintShapeNote("Fig.9(a-d)",
                 "Dysim largest sigma on every dataset, followed by DRHGA "
                 "and BGRD; PS lowest; Dysim's runtime grows only mildly "
                 "with b, HAG's grows fastest.");
  return 0;
}
