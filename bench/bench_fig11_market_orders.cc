// Fig. 11 reproduction: comparison of market-order metrics (AE, PF, SZ,
// RMS, RD) inside TMI, on Yelp and Amazon, sweeping b and T.
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

const core::MarketOrderMetric kMetrics[] = {
    core::MarketOrderMetric::kAntagonisticExtent,
    core::MarketOrderMetric::kProfitability,
    core::MarketOrderMetric::kSize,
    core::MarketOrderMetric::kRelativeMarketShare,
    core::MarketOrderMetric::kRandom,
};

double RunWithOrder(api::CampaignSession& session,
                    core::MarketOrderMetric metric) {
  api::PlannerConfig cfg = session.config();
  cfg.dysim.order = metric;
  cfg.dysim.use_theorem5_guard = false;  // compare raw market orders
  return session.Run("dysim", cfg).sigma;
}

void BudgetSweep(api::CampaignSession& session) {
  std::printf("--- %s: market orders, sigma vs b (T = 8) ---\n",
              session.dataset().name.c_str());
  TextTable t;
  t.SetHeader({"order", "b=200", "b=400"});
  for (core::MarketOrderMetric m : kMetrics) {
    std::vector<std::string> row{core::MarketOrderName(m)};
    for (double b : {200.0, 400.0}) {
      session.SetProblem(b, 8);
      row.push_back(TextTable::Num(RunWithOrder(session, m), 1));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());
}

void PromotionSweep(api::CampaignSession& session) {
  std::printf("--- %s: market orders, sigma vs T (b = 300) ---\n",
              session.dataset().name.c_str());
  TextTable t;
  t.SetHeader({"order", "T=4", "T=12"});
  for (core::MarketOrderMetric m : kMetrics) {
    std::vector<std::string> row{core::MarketOrderName(m)};
    for (int T : {4, 12}) {
      session.SetProblem(300.0, T);
      row.push_back(TextTable::Num(RunWithOrder(session, m), 1));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;
  std::printf("=== Fig. 11: market-order comparison (AE/PF/SZ/RMS/RD) ===\n");
  Effort effort;
  effort.selection_samples = 6;
  api::CampaignSession yelp(data::MakeYelpLike(0.5), MakeConfig(effort));
  api::CampaignSession amazon(data::MakeAmazonLike(0.5), MakeConfig(effort));
  BudgetSweep(yelp);
  PromotionSweep(yelp);
  BudgetSweep(amazon);
  PromotionSweep(amazon);
  PrintShapeNote("Fig.11",
                 "AE and PF lead, SZ/RMS in the middle, RD worst on "
                 "average (unordered markets promote substitutable items "
                 "back-to-back).");
  return 0;
}
