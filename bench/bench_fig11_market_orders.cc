// Fig. 11 reproduction: comparison of market-order metrics (AE, PF, SZ,
// RMS, RD) inside TMI, on Yelp and Amazon, sweeping b and T.
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

const core::MarketOrderMetric kMetrics[] = {
    core::MarketOrderMetric::kAntagonisticExtent,
    core::MarketOrderMetric::kProfitability,
    core::MarketOrderMetric::kSize,
    core::MarketOrderMetric::kRelativeMarketShare,
    core::MarketOrderMetric::kRandom,
};

void BudgetSweep(const data::Dataset& ds) {
  Effort effort;
  effort.selection_samples = 6;
  std::printf("--- %s: market orders, sigma vs b (T = 8) ---\n",
              ds.name.c_str());
  TextTable t;
  t.SetHeader({"order", "b=200", "b=400"});
  for (core::MarketOrderMetric m : kMetrics) {
    std::vector<std::string> row{core::MarketOrderName(m)};
    for (double b : {200.0, 400.0}) {
      diffusion::Problem p = ds.MakeProblem(b, 8);
      core::DysimConfig cfg = MakeDysimConfig(effort);
      cfg.order = m;
      cfg.use_theorem5_guard = false;  // compare raw market orders
      row.push_back(TextTable::Num(RunDysimTimed(p, cfg).sigma, 1));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());
}

void PromotionSweep(const data::Dataset& ds) {
  Effort effort;
  effort.selection_samples = 6;
  std::printf("--- %s: market orders, sigma vs T (b = 300) ---\n",
              ds.name.c_str());
  TextTable t;
  t.SetHeader({"order", "T=4", "T=12"});
  for (core::MarketOrderMetric m : kMetrics) {
    std::vector<std::string> row{core::MarketOrderName(m)};
    for (int T : {4, 12}) {
      diffusion::Problem p = ds.MakeProblem(300.0, T);
      core::DysimConfig cfg = MakeDysimConfig(effort);
      cfg.order = m;
      cfg.use_theorem5_guard = false;  // compare raw market orders
      row.push_back(TextTable::Num(RunDysimTimed(p, cfg).sigma, 1));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;
  std::printf("=== Fig. 11: market-order comparison (AE/PF/SZ/RMS/RD) ===\n");
  data::Dataset yelp = data::MakeYelpLike(0.5);
  data::Dataset amazon = data::MakeAmazonLike(0.5);
  BudgetSweep(yelp);
  PromotionSweep(yelp);
  BudgetSweep(amazon);
  PromotionSweep(amazon);
  PrintShapeNote("Fig.11",
                 "AE and PF lead, SZ/RMS in the middle, RD worst on "
                 "average (unordered markets promote substitutable items "
                 "back-to-back).");
  return 0;
}
