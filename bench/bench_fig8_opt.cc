// Fig. 8 reproduction: comparison with (pruned-exhaustive) OPT on the
// 100-user Amazon sample.
//   (a) σ vs budget b ∈ {50, 75, 100, 125} at T = 2;
//   (b) σ vs number of promotions T ∈ {1, 2, 3} at b = 100.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

/// OPT over the strongest singletons PLUS the heuristic's own nominees
/// (so the pruned enumeration provably upper-bounds it).
api::PlanResult RunOpt(api::CampaignSession& session, const Effort& e,
                       const diffusion::SeedGroup& heuristic_seeds) {
  api::PlannerConfig cfg = MakeConfig(e);
  cfg.selection_samples = 6;  // OPT evaluates tens of thousands of subsets
  cfg.opt.max_candidates = 10;
  for (const diffusion::Seed& s : heuristic_seeds) {
    cfg.opt.extra_candidates.push_back(s.AsNominee());
  }
  // Seed cap = what the budget can possibly buy (min cost is 22 on the
  // 100-user sample), keeping the enumeration exact w.r.t. spend.
  cfg.opt.max_seeds =
      std::clamp(static_cast<int>(session.problem().budget / 22.0), 1, 5);
  return session.Run("opt", cfg);
}

void RunSweep() {
  Effort effort;
  effort.max_users = 14;
  effort.max_items = 5;
  api::CampaignSession session(data::MakeSmallAmazonSample(),
                               MakeConfig(effort));
  const std::vector<std::string> algos{"opt",  "dysim", "bgrd",
                                       "hag", "ps",    "drhga"};

  std::printf("=== Fig. 8(a): sigma vs budget (T = 2, 100 users) ===\n");
  TextTable ta;
  ta.SetHeader({"algorithm", "b=50", "b=75", "b=100", "b=125"});
  std::vector<std::vector<double>> cols(algos.size());
  for (double b : {50.0, 75.0, 100.0, 125.0}) {
    session.SetProblem(b, 2);
    api::PlanResult dysim = session.Run("dysim");
    cols[0].push_back(RunOpt(session, effort, dysim.seeds).sigma);
    cols[1].push_back(dysim.sigma);
    for (size_t a = 2; a < algos.size(); ++a) {
      cols[a].push_back(session.Run(algos[a]).sigma);
    }
  }
  for (size_t a = 0; a < algos.size(); ++a) {
    std::vector<std::string> row{Label(algos[a])};
    for (double v : cols[a]) row.push_back(TextTable::Num(v, 2));
    ta.AddRow(row);
  }
  std::printf("%s", ta.Render().c_str());
  PrintShapeNote("Fig.8(a)",
                 "Dysim closest to OPT; all curves grow with b; "
                 "baselines below Dysim.");

  std::printf("\n=== Fig. 8(b): sigma vs T (b = 100, 100 users) ===\n");
  TextTable tb;
  tb.SetHeader({"algorithm", "T=1", "T=2", "T=3"});
  std::vector<std::vector<double>> colsb(algos.size());
  for (int T : {1, 2, 3}) {
    session.SetProblem(100.0, T);
    api::PlanResult dysim = session.Run("dysim");
    colsb[0].push_back(RunOpt(session, effort, dysim.seeds).sigma);
    colsb[1].push_back(dysim.sigma);
    for (size_t a = 2; a < algos.size(); ++a) {
      colsb[a].push_back(session.Run(algos[a]).sigma);
    }
  }
  for (size_t a = 0; a < algos.size(); ++a) {
    std::vector<std::string> row{Label(algos[a])};
    for (double v : colsb[a]) row.push_back(TextTable::Num(v, 2));
    tb.AddRow(row);
  }
  std::printf("%s", tb.Render().c_str());
  PrintShapeNote("Fig.8(b)",
                 "Dysim grows with T and stays closest to OPT; baselines "
                 "gain little from extra promotions.");
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  imdpp::bench::RunSweep();
  return 0;
}
