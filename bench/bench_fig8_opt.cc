// Fig. 8 reproduction: comparison with (pruned-exhaustive) OPT on the
// 100-user Amazon sample.
//   (a) σ vs budget b ∈ {50, 75, 100, 125} at T = 2;
//   (b) σ vs number of promotions T ∈ {1, 2, 3} at b = 100.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

/// OPT over the strongest singletons PLUS the heuristic's own nominees
/// (so the pruned enumeration provably upper-bounds it).
AlgoOutcome RunOptTimed(const diffusion::Problem& p, const Effort& e,
                        const diffusion::SeedGroup& heuristic_seeds) {
  baselines::OptConfig cfg;
  static_cast<baselines::BaselineConfig&>(cfg) = MakeBaselineConfig(e);
  cfg.selection_samples = 6;  // OPT evaluates tens of thousands of subsets
  cfg.max_candidates = 10;
  for (const diffusion::Seed& s : heuristic_seeds) {
    cfg.extra_candidates.push_back(s.AsNominee());
  }
  // Seed cap = what the budget can possibly buy (min cost is 22 on the
  // 100-user sample), keeping the enumeration exact w.r.t. spend.
  cfg.max_seeds = std::clamp(static_cast<int>(p.budget / 22.0), 1, 5);
  Timer t;
  baselines::BaselineResult r = baselines::RunOpt(p, cfg);
  return {r.sigma, t.Seconds(), r.seeds.size()};
}

void RunSweep() {
  data::Dataset ds = data::MakeSmallAmazonSample();
  Effort effort;
  effort.max_users = 14;
  effort.max_items = 5;
  const char* algos[] = {"OPT", "Dysim", "BGRD", "HAG", "PS", "DRHGA"};

  std::printf("=== Fig. 8(a): sigma vs budget (T = 2, 100 users) ===\n");
  TextTable ta;
  ta.SetHeader({"algorithm", "b=50", "b=75", "b=100", "b=125"});
  std::vector<std::vector<double>> cols(6);
  for (double b : {50.0, 75.0, 100.0, 125.0}) {
    diffusion::Problem p = ds.MakeProblem(b, 2);
    core::DysimResult dysim = core::RunDysim(p, MakeDysimConfig(effort));
    cols[0].push_back(RunOptTimed(p, effort, dysim.seeds).sigma);
    cols[1].push_back(dysim.sigma);
    cols[2].push_back(RunBaselineTimed("BGRD", p, effort).sigma);
    cols[3].push_back(RunBaselineTimed("HAG", p, effort).sigma);
    cols[4].push_back(RunBaselineTimed("PS", p, effort).sigma);
    cols[5].push_back(RunBaselineTimed("DRHGA", p, effort).sigma);
  }
  for (int a = 0; a < 6; ++a) {
    std::vector<std::string> row{algos[a]};
    for (double v : cols[a]) row.push_back(TextTable::Num(v, 2));
    ta.AddRow(row);
  }
  std::printf("%s", ta.Render().c_str());
  PrintShapeNote("Fig.8(a)",
                 "Dysim closest to OPT; all curves grow with b; "
                 "baselines below Dysim.");

  std::printf("\n=== Fig. 8(b): sigma vs T (b = 100, 100 users) ===\n");
  TextTable tb;
  tb.SetHeader({"algorithm", "T=1", "T=2", "T=3"});
  std::vector<std::vector<double>> colsb(6);
  for (int T : {1, 2, 3}) {
    diffusion::Problem p = ds.MakeProblem(100.0, T);
    core::DysimResult dysim = core::RunDysim(p, MakeDysimConfig(effort));
    colsb[0].push_back(RunOptTimed(p, effort, dysim.seeds).sigma);
    colsb[1].push_back(dysim.sigma);
    colsb[2].push_back(RunBaselineTimed("BGRD", p, effort).sigma);
    colsb[3].push_back(RunBaselineTimed("HAG", p, effort).sigma);
    colsb[4].push_back(RunBaselineTimed("PS", p, effort).sigma);
    colsb[5].push_back(RunBaselineTimed("DRHGA", p, effort).sigma);
  }
  for (int a = 0; a < 6; ++a) {
    std::vector<std::string> row{algos[a]};
    for (double v : colsb[a]) row.push_back(TextTable::Num(v, 2));
    tb.AddRow(row);
  }
  std::printf("%s", tb.Render().c_str());
  PrintShapeNote("Fig.8(b)",
                 "Dysim grows with T and stays closest to OPT; baselines "
                 "gain little from extra promotions.");
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  imdpp::bench::RunSweep();
  return 0;
}
