// Shared configuration and row-runner helpers for the per-figure
// reproduction harnesses. Every harness prints the same series the paper's
// plot reports (algorithm x sweep-point -> σ and/or seconds) as an ASCII
// table, plus a "shape" note saying what qualitative relation to expect.
//
// Scaling note: our datasets are laptop-scale synthetics (DESIGN.md), so
// absolute σ values are NOT comparable to the paper; orderings and trends
// are.
#ifndef IMDPP_BENCH_BENCH_COMMON_H_
#define IMDPP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "baselines/bgrd.h"
#include "baselines/drhga.h"
#include "baselines/hag.h"
#include "baselines/opt.h"
#include "baselines/ps.h"
#include "core/adaptive_dysim.h"
#include "core/dysim.h"
#include "data/catalog.h"
#include "util/table.h"
#include "util/timer.h"

namespace imdpp::bench {

struct AlgoOutcome {
  double sigma = 0.0;
  double seconds = 0.0;
  size_t num_seeds = 0;
};

/// Search/eval effort shared by all algorithms so comparisons are fair.
struct Effort {
  int selection_samples = 10;
  int eval_samples = 24;
  int max_users = 24;
  int max_items = 8;
};

inline core::DysimConfig MakeDysimConfig(const Effort& e) {
  core::DysimConfig cfg;
  cfg.selection_samples = e.selection_samples;
  cfg.eval_samples = e.eval_samples;
  cfg.candidates.max_users = e.max_users;
  cfg.candidates.max_items = e.max_items;
  return cfg;
}

inline baselines::BaselineConfig MakeBaselineConfig(const Effort& e) {
  baselines::BaselineConfig cfg;
  cfg.selection_samples = e.selection_samples;
  cfg.eval_samples = e.eval_samples;
  cfg.candidates.max_users = e.max_users;
  cfg.candidates.max_items = e.max_items;
  return cfg;
}

inline AlgoOutcome RunDysimTimed(const diffusion::Problem& p,
                                 const core::DysimConfig& cfg) {
  Timer t;
  core::DysimResult r = core::RunDysim(p, cfg);
  return {r.sigma, t.Seconds(), r.seeds.size()};
}

inline AlgoOutcome RunBaselineTimed(
    const std::string& name, const diffusion::Problem& p, const Effort& e) {
  baselines::BaselineConfig cfg = MakeBaselineConfig(e);
  Timer t;
  baselines::BaselineResult r;
  if (name == "BGRD") {
    r = baselines::RunBgrd(p, cfg);
  } else if (name == "HAG") {
    r = baselines::RunHag(p, cfg);
  } else if (name == "PS") {
    baselines::PsConfig pcfg;
    static_cast<baselines::BaselineConfig&>(pcfg) = cfg;
    r = baselines::RunPs(p, pcfg);
  } else if (name == "DRHGA") {
    r = baselines::RunDrhga(p, cfg);
  } else {
    std::fprintf(stderr, "unknown baseline %s\n", name.c_str());
    std::abort();
  }
  return {r.sigma, t.Seconds(), r.seeds.size()};
}

inline void PrintShapeNote(const char* figure, const char* expectation) {
  std::printf("\n[%s] expected shape: %s\n", figure, expectation);
}

}  // namespace imdpp::bench

#endif  // IMDPP_BENCH_BENCH_COMMON_H_
