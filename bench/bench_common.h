// Shared configuration and row-runner helpers for the per-figure
// reproduction harnesses. Every harness prints the same series the paper's
// plot reports (algorithm x sweep-point -> σ and/or seconds) as an ASCII
// table, plus a "shape" note saying what qualitative relation to expect.
//
// All algorithms run through the unified api:: planner layer: a harness
// names a registered planner ("dysim", "bgrd", "hag", "ps", "drhga",
// "opt", ...) on an api::CampaignSession and gets back one
// api::PlanResult — no per-algorithm plumbing here.
//
// Scaling note: our datasets are laptop-scale synthetics (DESIGN.md), so
// absolute σ values are NOT comparable to the paper; orderings and trends
// are.
#ifndef IMDPP_BENCH_BENCH_COMMON_H_
#define IMDPP_BENCH_BENCH_COMMON_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "api/session.h"
#include "config/config_loader.h"
#include "data/catalog.h"
#include "data/dataset_registry.h"
#include "util/table.h"

namespace imdpp::bench {

/// Search/eval effort shared by all algorithms so comparisons are fair.
struct Effort {
  int selection_samples = 10;
  int eval_samples = 24;
  int max_users = 24;
  int max_items = 8;
  /// Monte-Carlo executors per engine (util::kAutoThreads = hardware
  /// concurrency, 0 = serial). σ̂ values are identical for every setting;
  /// only wall-clock changes, so figures stay comparable across machines.
  int num_threads = util::kAutoThreads;
};

inline api::PlannerConfig MakeConfig(const Effort& e) {
  api::PlannerConfig cfg;
  cfg.selection_samples = e.selection_samples;
  cfg.eval_samples = e.eval_samples;
  cfg.candidates.max_users = e.max_users;
  cfg.candidates.max_items = e.max_items;
  cfg.num_threads = e.num_threads;
  return cfg;
}

/// Materializes "name[@scale]" through the DatasetRegistry — the exact
/// path the imdpp CLI and sweep configs resolve datasets by, so a harness
/// and a config file can never disagree about what "yelp-like@0.5" means.
inline data::Dataset MakeDataset(const std::string& spec) {
  return data::DatasetRegistry::MakeOrDie(data::ParseDatasetSpec(spec));
}

/// Locates a checked-in config file (e.g. "configs/fig9_budget.json")
/// whether the harness runs from the repo root, from build/, or from
/// anywhere else (falling back to the source tree CMake baked in).
inline std::string FindConfigFile(const std::string& relative) {
  const std::string candidates[] = {
      relative,
      "../" + relative,
#ifdef IMDPP_SOURCE_DIR
      std::string(IMDPP_SOURCE_DIR) + "/" + relative,
#endif
  };
  for (const std::string& path : candidates) {
    if (std::ifstream(path).good()) return path;
  }
  std::fprintf(stderr, "cannot find %s (run from the repo root or build/)\n",
               relative.c_str());
  std::abort();
}

/// Paper-style display label for a registry name ("dysim" -> "Dysim").
inline std::string Label(const std::string& registry_name) {
  if (registry_name == "dysim") return "Dysim";
  if (registry_name == "adaptive") return "Adaptive";
  if (registry_name == "cr_greedy") return "CR-Greedy";
  std::string label = registry_name;
  for (char& c : label) c = static_cast<char>(std::toupper(c));
  return label;
}

inline void PrintShapeNote(const char* figure, const char* expectation) {
  std::printf("\n[%s] expected shape: %s\n", figure, expectation);
}

}  // namespace imdpp::bench

#endif  // IMDPP_BENCH_BENCH_COMMON_H_
