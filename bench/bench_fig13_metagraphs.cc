// Fig. 13 reproduction: sensitivity to the number of meta-graphs.
// k ∈ {1, 2, 3} meta-graphs *per relationship kind* (the datasets carry
// three complementary + three substitutable metas, interleaved C,S,C,S,...;
// k meta-graphs per kind = the first 2k metas).
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

void RunDataset(data::Dataset ds, TextTable& t) {
  Effort effort;
  effort.selection_samples = 6;
  api::CampaignSession session(std::move(ds), MakeConfig(effort));
  std::vector<std::string> row{session.dataset().name};
  for (int k = 1; k <= 3; ++k) {
    std::vector<int> subset;
    for (int m = 0; m < 2 * k; ++m) subset.push_back(m);
    session.SetProblemWithMetaSubset(subset, 100.0, 3);
    row.push_back(TextTable::Num(session.Run("dysim").sigma, 1));
  }
  t.AddRow(row);
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;
  std::printf(
      "=== Fig. 13: sigma vs #meta-graphs per kind (b=100, T=3) ===\n");
  TextTable t;
  t.SetHeader({"dataset", "m=1", "m=2", "m=3"});
  RunDataset(data::MakeYelpLike(0.4), t);
  RunDataset(data::MakeGowallaLike(0.4), t);
  RunDataset(data::MakeAmazonLike(0.4), t);
  RunDataset(data::MakeDoubanLike(0.3), t);
  std::printf("%s", t.Render().c_str());
  PrintShapeNote("Fig.13",
                 "sigma grows with the number of meta-graphs: richer "
                 "perception modeling captures more item relationships.");
  return 0;
}
