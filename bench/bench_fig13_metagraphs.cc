// Fig. 13 reproduction: sensitivity to the number of meta-graphs.
// k ∈ {1, 2, 3} meta-graphs *per relationship kind* (the datasets carry
// three complementary + three substitutable metas, interleaved C,S,C,S,...;
// k meta-graphs per kind = the first 2k metas).
#include <cstdio>

#include "bench/bench_common.h"

namespace imdpp::bench {
namespace {

void RunDataset(const data::Dataset& ds, TextTable& t) {
  Effort effort;
  effort.selection_samples = 6;
  std::vector<std::string> row{ds.name};
  for (int k = 1; k <= 3; ++k) {
    std::vector<int> subset;
    for (int m = 0; m < 2 * k; ++m) subset.push_back(m);
    kg::RelevanceModel sub = ds.relevance->WithMetaSubset(subset);
    diffusion::Problem p =
        ds.MakeProblemWithRelevance(sub, 100.0, 3, {}, &subset);
    row.push_back(
        TextTable::Num(RunDysimTimed(p, MakeDysimConfig(effort)).sigma, 1));
  }
  t.AddRow(row);
}

}  // namespace
}  // namespace imdpp::bench

int main() {
  using namespace imdpp;
  using namespace imdpp::bench;
  std::printf(
      "=== Fig. 13: sigma vs #meta-graphs per kind (b=100, T=3) ===\n");
  TextTable t;
  t.SetHeader({"dataset", "m=1", "m=2", "m=3"});
  data::Dataset yelp = data::MakeYelpLike(0.4);
  data::Dataset gowalla = data::MakeGowallaLike(0.4);
  data::Dataset amazon = data::MakeAmazonLike(0.4);
  data::Dataset douban = data::MakeDoubanLike(0.3);
  RunDataset(yelp, t);
  RunDataset(gowalla, t);
  RunDataset(amazon, t);
  RunDataset(douban, t);
  std::printf("%s", t.Render().c_str());
  PrintShapeNote("Fig.13",
                 "sigma grows with the number of meta-graphs: richer "
                 "perception modeling captures more item relationships.");
  return 0;
}
