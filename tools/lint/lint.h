// imdpp-lint (ISSUE 6 tentpole, prong b): a dependency-free token-level
// linter that enforces the repo-specific rules behind the determinism and
// locking invariants — the properties the runtime gates (determinism_test,
// TSan, CLI double-run diffs) can only check after a nondeterministic or
// racy binary has already been built.
//
// Rules (see kRules in lint.cc for the machine-readable catalog):
//   no-unordered-iteration   range-for / iterator loops over
//                            unordered_map/unordered_set in
//                            result-affecting dirs (core, cluster, prep,
//                            baselines, diffusion, graph): hash-order
//                            iteration is the classic way thread count or
//                            libstdc++ version leaks into planner output.
//   no-wallclock-rand        std::rand / srand / time( / random_device /
//                            default-seeded mt19937 outside util/: all
//                            randomness must be counter-based (util/rng.h)
//                            so realizations are pure functions of their
//                            coordinates.
//   no-raw-thread            std::thread / std::async outside
//                            util/thread_pool: every parallel loop must go
//                            through the pool's fixed-order sharding.
//   no-raw-clock             std::chrono::*_clock::now() outside
//                            util/timer.h and util/trace.*: all timing
//                            flows through the util::MonotonicNow seam so
//                            spans, deadlines and timers share one
//                            instrumented clock (ISSUE 9).
//   no-float-accum-in-parallel  `x += ...` on a by-reference capture
//                            inside a lambda handed to ParallelFor /
//                            RunShards / RunBatch without a
//                            `// imdpp-lint: fixed-order-merge` marker:
//                            cross-task float accumulation reintroduces
//                            scheduling order into the arithmetic.
//   lock-before-shared       a function body references a field declared
//                            IMDPP_GUARDED_BY(mu) but never touches `mu`
//                            (and is not IMDPP_REQUIRES-annotated): the
//                            gcc-side complement of clang -Wthread-safety.
//   status-must-check        a statement that is exactly a call to a
//                            function declared to return util::Status:
//                            the error is dropped on the floor (ISSUE 8).
//                            Complements Status's class [[nodiscard]].
//
// Suppressions: `// imdpp-lint: allow(<rule>) <reason>` on the flagged
// line or the line directly above. The reason is mandatory — an empty one
// is itself a diagnostic (suppression-missing-reason).
#ifndef IMDPP_TOOLS_LINT_LINT_H_
#define IMDPP_TOOLS_LINT_LINT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace imdpp::lint {

struct Diagnostic {
  std::string file;  ///< path as given on the command line (normalized)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

/// The pinned rule catalog, in diagnostic-name order.
const std::vector<RuleInfo>& Rules();

/// Lints one in-memory file (unit-test entry point). `path` determines
/// directory-gated rules exactly as for on-disk files.
std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content);

/// Lints a file set as one unit: cross-file state (the IMDPP_GUARDED_BY /
/// IMDPP_REQUIRES registries feeding lock-before-shared) is built over
/// the whole set first. Unreadable files produce an `io-error` diagnostic.
std::vector<Diagnostic> LintFiles(const std::vector<std::string>& paths);

/// Expands files/directories into the sorted .h/.cc/.cpp list to lint.
std::vector<std::string> CollectSources(const std::vector<std::string>& roots,
                                        std::string* error);

/// Byte-stable rendering: "path:line: [rule] message\n", sorted by
/// (path, line, rule, message).
std::string FormatDiagnostics(std::vector<Diagnostic> diagnostics);

/// CLI entry point (in-process testable, the cli::Run pattern):
/// imdpp-lint [--list-rules] <file-or-dir>...
/// Exit 0 = clean, 1 = diagnostics were emitted, 2 = usage/IO error.
int RunLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace imdpp::lint

#endif  // IMDPP_TOOLS_LINT_LINT_H_
