#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return imdpp::lint::RunLint(args, std::cout, std::cerr);
}
