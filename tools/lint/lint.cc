#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace imdpp::lint {

namespace {

// ------------------------------------------------------------- tokenizer

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct Suppression {
  std::string rule;
  bool has_reason = false;
};

/// One tokenized file plus the lint directives found in its comments.
struct FileCtx {
  std::string path;  ///< normalized, '/' separators
  std::vector<Token> toks;
  std::map<int, std::vector<Suppression>> suppressions;  ///< by line
  std::set<int> merge_marker_lines;  ///< `imdpp-lint: fixed-order-merge`
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `// imdpp-lint: ...` directives out of one comment.
void ParseDirectives(const std::string& comment, int line, FileCtx& ctx) {
  const std::string tag = "imdpp-lint:";
  size_t at = comment.find(tag);
  if (at == std::string::npos) return;
  std::string rest = comment.substr(at + tag.size());
  // Trim leading whitespace.
  size_t b = rest.find_first_not_of(" \t");
  if (b == std::string::npos) return;
  rest = rest.substr(b);
  if (rest.rfind("fixed-order-merge", 0) == 0) {
    ctx.merge_marker_lines.insert(line);
    return;
  }
  const std::string allow = "allow(";
  if (rest.rfind(allow, 0) != 0) return;
  size_t close = rest.find(')', allow.size());
  if (close == std::string::npos) return;
  Suppression s;
  s.rule = rest.substr(allow.size(), close - allow.size());
  // `allow(<rule>)` in prose/documentation is a placeholder, not a
  // directive.
  if (s.rule.find('<') != std::string::npos) return;
  std::string reason = rest.substr(close + 1);
  size_t r = reason.find_first_not_of(" \t");
  s.has_reason = r != std::string::npos;
  ctx.suppressions[line].push_back(std::move(s));
}

/// Two-character operators kept whole so declaration scanning stays sane.
bool IsTwoCharOp(char a, char b) {
  static const char* kOps[] = {"::", "+=", "-=", "*=", "/=", "->", "==",
                               "!=", "<=", ">=", "&&", "||", "++", "--"};
  for (const char* op : kOps) {
    if (op[0] == a && op[1] == b) return true;
  }
  return false;
}

FileCtx Tokenize(const std::string& path, const std::string& src) {
  FileCtx ctx;
  ctx.path = path;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  bool at_line_start = true;
  auto advance = [&](size_t to) {
    for (; i < to; ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor line (with continuations): no tokens.
    if (c == '#' && at_line_start) {
      size_t j = i;
      while (j < n) {
        if (src[j] == '\n' && (j == 0 || src[j - 1] != '\\')) break;
        ++j;
      }
      advance(j);
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t j = src.find('\n', i);
      if (j == std::string::npos) j = n;
      ParseDirectives(src.substr(i, j - i), line, ctx);
      advance(j);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t j = src.find("*/", i + 2);
      if (j == std::string::npos) j = n;
      else j += 2;
      ParseDirectives(src.substr(i, j - i), line, ctx);
      advance(j);
      continue;
    }
    // Raw strings.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      std::string close = ")" + delim + "\"";
      size_t j = src.find(close, p);
      j = j == std::string::npos ? n : j + close.size();
      ctx.toks.push_back({"\"\"", line, false});
      advance(j);
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      size_t j = i + 1;
      while (j < n && src[j] != c) {
        if (src[j] == '\\') ++j;
        ++j;
      }
      ctx.toks.push_back({c == '"' ? "\"\"" : "''", line, false});
      advance(std::min(j + 1, n));
      continue;
    }
    // Identifiers.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      ctx.toks.push_back({src.substr(i, j - i), line, true});
      i = j;
      continue;
    }
    // Numbers (coarse: digits plus number-ish chars).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      ctx.toks.push_back({src.substr(i, j - i), line, false});
      i = j;
      continue;
    }
    if (i + 1 < n && IsTwoCharOp(c, src[i + 1])) {
      ctx.toks.push_back({src.substr(i, 2), line, false});
      i += 2;
      continue;
    }
    ctx.toks.push_back({std::string(1, c), line, false});
    ++i;
  }
  return ctx;
}

// ---------------------------------------------------------- token helpers

using Toks = std::vector<Token>;

/// Index of the matching closer for the opener at `open` ('(' / '[' / '{'
/// paired with ')' / ']' / '}'). Returns toks.size() if unbalanced.
size_t MatchForward(const Toks& t, size_t open, char o, char c) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text.size() == 1) {
      if (t[i].text[0] == o) ++depth;
      if (t[i].text[0] == c && --depth == 0) return i;
    }
  }
  return t.size();
}

/// Matching '>' for the '<' at `open` (template argument lists).
size_t MatchTemplate(const Toks& t, size_t open) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "<") ++depth;
    if (s == ">" && --depth == 0) return i;
    if (s == ";") break;  // statement ended: not a template after all
  }
  return t.size();
}

bool PathHasComponent(const std::string& path, const std::string& comp) {
  std::string needle = "/" + comp + "/";
  std::string padded = "/" + path;
  return padded.find(needle) != std::string::npos;
}

std::string Stem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

// --------------------------------------------------------- rule catalog

const std::vector<RuleInfo> kRules = {
    {"no-float-accum-in-parallel",
     "+= on a by-reference capture inside a pool lambda without a "
     "fixed-order merge marker"},
    {"no-raw-clock",
     "std::chrono::*_clock::now() outside util/timer.h and util/trace.*; "
     "all timing flows through the instrumented util::MonotonicNow seam"},
    {"no-raw-thread",
     "std::thread / std::async outside util/thread_pool; use "
     "util::ThreadPool"},
    {"no-unordered-iteration",
     "iteration over unordered_map/unordered_set in result-affecting "
     "directories (core, cluster, prep, baselines, diffusion, graph)"},
    {"no-wallclock-rand",
     "std::rand / srand / time( / random_device / default-seeded mt19937 "
     "outside util/; use counter-based util/rng.h"},
    {"lock-before-shared",
     "function references an IMDPP_GUARDED_BY field without touching its "
     "mutex or carrying IMDPP_REQUIRES"},
    {"status-must-check",
     "call whose util::Status result is discarded; consume it, propagate "
     "with IMDPP_RETURN_IF_ERROR, or cast to (void)"},
};

bool KnownRule(const std::string& rule) {
  for (const RuleInfo& r : kRules) {
    if (rule == r.name) return true;
  }
  return false;
}

// --------------------------------------------- cross-file registries (E)

struct GuardedField {
  std::string mutex;  ///< guarding mutex's (last) identifier
  std::string stem;   ///< stem of the file that declared the field
};

struct Registry {
  /// field name -> declarations (a name may be guarded in several types).
  std::multimap<std::string, GuardedField> guarded;
  /// unqualified names of IMDPP_REQUIRES-annotated functions.
  std::set<std::string> requires_fns;
  /// unqualified names declared with a util::Status return type, feeding
  /// status-must-check.
  std::set<std::string> status_fns;
};

void BuildRegistry(const FileCtx& ctx, Registry& reg) {
  const Toks& t = ctx.toks;
  const std::string stem = Stem(ctx.path);
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "IMDPP_GUARDED_BY" || s == "IMDPP_PT_GUARDED_BY") {
      if (i == 0 || !t[i - 1].is_ident) continue;
      const std::string field = t[i - 1].text;
      if (i + 1 >= t.size() || t[i + 1].text != "(") continue;
      size_t close = MatchForward(t, i + 1, '(', ')');
      std::string mutex_name;
      for (size_t j = i + 2; j < close; ++j) {
        if (t[j].is_ident) mutex_name = t[j].text;  // last ident wins
      }
      if (!mutex_name.empty()) {
        reg.guarded.emplace(field, GuardedField{mutex_name, stem});
      }
    } else if (s == "IMDPP_REQUIRES") {
      // Walk back over ')' and qualifiers to the function name:
      //   Ret Name(args) const IMDPP_REQUIRES(mu);
      size_t j = i;
      while (j > 0 && (t[j - 1].text == "const" || t[j - 1].text == "noexcept" ||
                       t[j - 1].text == "override" || t[j - 1].text == "final")) {
        --j;
      }
      if (j == 0 || t[j - 1].text != ")") continue;
      int depth = 0;
      size_t k = j - 1;
      for (;; --k) {
        if (t[k].text == ")") ++depth;
        if (t[k].text == "(" && --depth == 0) break;
        if (k == 0) break;
      }
      if (k > 0 && t[k - 1].is_ident) reg.requires_fns.insert(t[k - 1].text);
    } else if (s == "Status") {
      // `Status Name(` — a declaration or definition of a function
      // returning util::Status (StatusOr is a different token and stays
      // out). Direct-init variables (`util::Status s(code, msg)`) also
      // land here; a variable name is never later called, so the extra
      // entry is inert.
      if (i + 2 < t.size() && t[i + 1].is_ident && t[i + 2].text == "(") {
        reg.status_fns.insert(t[i + 1].text);
      }
    }
  }
}

// ------------------------------------------------------- rule: unordered

const char* kResultDirs[] = {"core",      "cluster",   "prep",
                             "baselines", "diffusion", "graph"};

bool InResultDir(const std::string& path) {
  for (const char* d : kResultDirs) {
    if (PathHasComponent(path, d)) return true;
  }
  return false;
}

/// Declared names whose *outermost* type is unordered_map/unordered_set.
std::set<std::string> UnorderedDecls(const Toks& t) {
  std::set<std::string> out;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s != "unordered_map" && s != "unordered_set" &&
        s != "unordered_multimap" && s != "unordered_multiset") {
      continue;
    }
    // Outermost only: skip when nested inside another template's args.
    size_t p = i;
    if (p >= 1 && t[p - 1].text == "::") p -= 2;  // std::
    if (p >= 1 && (t[p - 1].text == "<" || t[p - 1].text == ",")) continue;
    if (i + 1 >= t.size() || t[i + 1].text != "<") continue;
    size_t close = MatchTemplate(t, i + 1);
    size_t j = close + 1;
    while (j < t.size() &&
           (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && t[j].is_ident) out.insert(t[j].text);
  }
  return out;
}

void CheckUnorderedIteration(const FileCtx& ctx,
                             std::vector<Diagnostic>& diags) {
  if (!InResultDir(ctx.path)) return;
  const Toks& t = ctx.toks;
  const std::set<std::string> unordered = UnorderedDecls(t);
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || t[i + 1].text != "(") continue;
    size_t close = MatchForward(t, i + 1, '(', ')');
    // Range-for: a ':' at paren depth 1.
    size_t colon = 0;
    int depth = 0;
    for (size_t j = i + 1; j < close; ++j) {
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (s == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon != 0) {
      for (size_t j = colon + 1; j < close; ++j) {
        if (t[j].is_ident && unordered.count(t[j].text)) {
          diags.push_back(
              {ctx.path, t[i].line, "no-unordered-iteration",
               "range-for over unordered container '" + t[j].text +
                   "': hash order is not deterministic; iterate a sorted "
                   "view or use an ordered container"});
          break;
        }
      }
    } else {
      // Iterator loop: `x.begin()` / `x.cbegin()` on a tracked name.
      for (size_t j = i + 2; j + 2 < close; ++j) {
        if (t[j].is_ident && unordered.count(t[j].text) &&
            t[j + 1].text == "." &&
            (t[j + 2].text == "begin" || t[j + 2].text == "cbegin")) {
          diags.push_back(
              {ctx.path, t[i].line, "no-unordered-iteration",
               "iterator loop over unordered container '" + t[j].text +
                   "': hash order is not deterministic; iterate a sorted "
                   "view or use an ordered container"});
          break;
        }
      }
    }
  }
}

// -------------------------------------------------- rule: wallclock/rand

void CheckWallclockRand(const FileCtx& ctx, std::vector<Diagnostic>& diags) {
  if (PathHasComponent(ctx.path, "util")) return;
  const Toks& t = ctx.toks;
  auto flag = [&](size_t i, const std::string& what) {
    diags.push_back({ctx.path, t[i].line, "no-wallclock-rand",
                     "'" + what +
                         "' outside util/: planning paths must draw from "
                         "counter-based util/rng.h so realizations are pure "
                         "functions of their coordinates"});
  };
  for (size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    const std::string& s = t[i].text;
    const bool member_access =
        i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
    const bool called = i + 1 < t.size() && t[i + 1].text == "(";
    if (member_access) continue;
    if ((s == "rand" || s == "srand" || s == "time" || s == "clock") &&
        called) {
      flag(i, s + "(");
    } else if (s == "random_device") {
      flag(i, "std::random_device");
    } else if (s == "mt19937" || s == "mt19937_64") {
      // Default construction = seeded from nothing reproducible.
      size_t j = i + 1;
      if (j < t.size() && t[j].is_ident) ++j;  // declared name
      bool seeded = false;
      if (j < t.size() && (t[j].text == "(" || t[j].text == "{")) {
        size_t close = t[j].text == "("
                           ? MatchForward(t, j, '(', ')')
                           : MatchForward(t, j, '{', '}');
        seeded = close > j + 1;  // non-empty argument list
      }
      if (!seeded) flag(i, "default-seeded std::" + s);
    }
  }
}

// ------------------------------------------------------- rule: raw clock

/// Direct *_clock::now() calls bypass the util::MonotonicNow seam that
/// ISSUE 9's tracing/metrics instrumentation (and the deadline tokens)
/// are built on. Only the seam itself — util/timer.h and the trace
/// writer — may touch the clock.
void CheckRawClock(const FileCtx& ctx, std::vector<Diagnostic>& diags) {
  const std::string stem = Stem(ctx.path);
  if (PathHasComponent(ctx.path, "util") &&
      (stem == "timer" || stem == "trace")) {
    return;
  }
  const Toks& t = ctx.toks;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (!t[i].is_ident) continue;
    const std::string& s = t[i].text;
    if (s != "steady_clock" && s != "system_clock" &&
        s != "high_resolution_clock") {
      continue;
    }
    if (t[i + 1].text == "::" && t[i + 2].text == "now" &&
        t[i + 3].text == "(") {
      diags.push_back({ctx.path, t[i].line, "no-raw-clock",
                       "'" + s + "::now()' outside util/timer.h: all "
                       "timing must flow through util::MonotonicNow / "
                       "util::Timer so spans and deadlines share one "
                       "instrumented clock"});
    }
  }
}

// ------------------------------------------------------ rule: raw thread

void CheckRawThread(const FileCtx& ctx, std::vector<Diagnostic>& diags) {
  const std::string stem = Stem(ctx.path);
  if (stem == "thread_pool") return;
  const Toks& t = ctx.toks;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].text == "std" && t[i + 1].text == "::" &&
        (t[i + 2].text == "thread" || t[i + 2].text == "jthread" ||
         t[i + 2].text == "async")) {
      diags.push_back({ctx.path, t[i].line, "no-raw-thread",
                       "'std::" + t[i + 2].text +
                           "' outside util/thread_pool: parallel work must "
                           "go through util::ThreadPool's fixed-order "
                           "sharding"});
    }
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "pthread_create") {
      diags.push_back({ctx.path, t[i].line, "no-raw-thread",
                       "'pthread_create' outside util/thread_pool: parallel "
                       "work must go through util::ThreadPool's fixed-order "
                       "sharding"});
    }
  }
}

// ------------------------------------- rule: float accumulation in pool

void CheckFloatAccum(const FileCtx& ctx, std::vector<Diagnostic>& diags) {
  const Toks& t = ctx.toks;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is_ident || t[i + 1].text != "(") continue;
    const std::string& fn = t[i].text;
    if (fn != "ParallelFor" && fn != "RunShards" && fn != "RunBatch") {
      continue;
    }
    size_t call_close = MatchForward(t, i + 1, '(', ')');
    // First lambda in the argument list: '[' preceded by '(' or ','.
    for (size_t j = i + 2; j < call_close; ++j) {
      if (t[j].text != "[" ||
          (t[j - 1].text != "(" && t[j - 1].text != ",")) {
        continue;
      }
      size_t cap_close = MatchForward(t, j, '[', ']');
      bool by_ref = false;
      for (size_t k = j + 1; k < cap_close; ++k) {
        if (t[k].text == "&") by_ref = true;
      }
      // Parameter list (optional) — its names count as lambda-locals.
      std::set<std::string> locals;
      size_t p = cap_close + 1;
      if (p < t.size() && t[p].text == "(") {
        size_t pc = MatchForward(t, p, '(', ')');
        for (size_t k = p + 1; k < pc; ++k) {
          // Last identifier before ',' or ')' is the parameter name.
          if (t[k].is_ident &&
              (t[k + 1].text == "," || k + 1 == pc)) {
            locals.insert(t[k].text);
          }
        }
        p = pc + 1;
      }
      while (p < t.size() && t[p].text != "{") ++p;  // skip mutable/-> ret
      if (p >= t.size()) break;
      size_t body_close = MatchForward(t, p, '{', '}');
      const int body_first = t[p].line;
      const int body_last =
          body_close < t.size() ? t[body_close].line : body_first;
      bool merge_marked = false;
      for (int ln = body_first; ln <= body_last; ++ln) {
        if (ctx.merge_marker_lines.count(ln)) merge_marked = true;
      }
      // Locals declared in the body: `Type name =`, `Type name;`, `Type&
      // name = ...` — name preceded by ident/&/*/> and followed by
      // =/;/{/(.
      for (size_t k = p + 1; k < body_close; ++k) {
        if (!t[k].is_ident || k == 0) continue;
        const std::string& prev = t[k - 1].text;
        const std::string& next = t[k + 1].text;
        if ((t[k - 1].is_ident || prev == "&" || prev == "*" ||
             prev == ">") &&
            (next == "=" || next == ";" || next == "{" || next == "(")) {
          locals.insert(t[k].text);
        }
      }
      if (by_ref && !merge_marked) {
        for (size_t k = p + 1; k < body_close; ++k) {
          if (t[k].text != "+=" && t[k].text != "-=") continue;
          // Resolve the leftmost identifier of the LHS chain. A write
          // indexed by a lambda-local (`slots[i] += x`) is the per-task
          // slot pattern the rule prescribes, so it is acquitted.
          size_t l = k - 1;
          bool indexed_by_local = false;
          for (;;) {
            if (t[l].text == "]") {
              int depth = 0;
              for (;; --l) {
                if (t[l].text == "]") ++depth;
                if (t[l].text == "[" && --depth == 0) break;
                if (t[l].is_ident && locals.count(t[l].text)) {
                  indexed_by_local = true;
                }
                if (l == 0) break;
              }
              if (l == 0) break;
              --l;
            } else if (t[l].is_ident) {
              if (l >= 2 &&
                  (t[l - 1].text == "." || t[l - 1].text == "->")) {
                l -= 2;
              } else {
                break;
              }
            } else {
              break;
            }
          }
          if (t[l].is_ident && !locals.count(t[l].text) &&
              !indexed_by_local) {
            diags.push_back(
                {ctx.path, t[k].line, "no-float-accum-in-parallel",
                 "accumulation into by-reference capture '" + t[l].text +
                     "' inside a lambda submitted to " + fn +
                     ": cross-task accumulation order depends on "
                     "scheduling; write per-task slots and merge in fixed "
                     "order (mark the merge with // imdpp-lint: "
                     "fixed-order-merge)"});
          }
        }
      }
      break;  // one lambda per call is enough
    }
  }
}

// ------------------------------------------------ rule: lock-before-shared

void CheckLockBeforeShared(const FileCtx& ctx, const Registry& reg,
                           std::vector<Diagnostic>& diags) {
  const Toks& t = ctx.toks;
  const std::string stem = Stem(ctx.path);
  // Guarded fields declared by this file's component (same stem).
  std::map<std::string, std::string> fields;  // field -> mutex
  for (const auto& [field, decl] : reg.guarded) {
    if (decl.stem == stem) fields.emplace(field, decl.mutex);
  }
  if (fields.empty()) return;
  const char* kControl[] = {"if", "for", "while", "switch", "catch", "return"};
  size_t i = 0;
  while (i < t.size()) {
    // Function definition: `name (args...) [suffix] {` where name is not
    // a control keyword; constructors (`: init` after the `)`, or
    // Class::Class / ~Class names) are exempt — members are initialized
    // before the object is shared.
    if (!(t[i].is_ident && i + 1 < t.size() && t[i + 1].text == "(")) {
      ++i;
      continue;
    }
    bool control = false;
    for (const char* c : kControl) {
      if (t[i].text == c) control = true;
    }
    if (control) {
      ++i;
      continue;
    }
    size_t close = MatchForward(t, i + 1, '(', ')');
    if (close >= t.size()) {
      ++i;
      continue;
    }
    // Suffix between ')' and '{' : qualifiers, annotations, init list.
    size_t p = close + 1;
    bool is_ctor = false;
    bool exempt = false;
    std::set<std::string> suffix_idents;
    while (p < t.size() && t[p].text != "{" && t[p].text != ";") {
      const std::string& s = t[p].text;
      if (s == ":") is_ctor = true;  // member init list
      if (s == "IMDPP_REQUIRES" || s == "IMDPP_NO_THREAD_SAFETY_ANALYSIS" ||
          s == "IMDPP_ACQUIRE" || s == "IMDPP_RELEASE") {
        exempt = true;  // clang prong owns the checking here
      }
      if (s == "IMDPP_EXCLUDES") {
        // EXCLUDES(mu) asserts the mutex is NOT held — naming it there
        // must not count as touching it.
        if (p + 1 < t.size() && t[p + 1].text == "(") {
          p = MatchForward(t, p + 1, '(', ')') + 1;
          continue;
        }
      }
      if (t[p].is_ident) suffix_idents.insert(s);
      ++p;
    }
    if (p >= t.size() || t[p].text == ";") {
      i = p + 1;
      continue;
    }
    // Constructor / destructor by name: A::A or ~A.
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].text == t[i].text) {
      is_ctor = true;
    }
    if (i >= 1 && t[i - 1].text == "~") is_ctor = true;
    if (reg.requires_fns.count(t[i].text)) exempt = true;
    size_t body_close = MatchForward(t, p, '{', '}');
    if (!is_ctor && !exempt) {
      // Mutexes mentioned anywhere in the body (MutexLock lock(mu_),
      // mu_.Lock(), Wait(mu_), engine_.mu_ ...) or suffix.
      std::set<std::string> mentioned = suffix_idents;
      for (size_t k = p; k < body_close && k < t.size(); ++k) {
        if (t[k].is_ident) mentioned.insert(t[k].text);
      }
      std::set<std::string> flagged;
      for (size_t k = p + 1; k < body_close && k < t.size(); ++k) {
        if (!t[k].is_ident) continue;
        auto it = fields.find(t[k].text);
        if (it == fields.end()) continue;
        if (mentioned.count(it->second)) continue;  // mutex touched
        if (!flagged.insert(it->first).second) continue;
        diags.push_back(
            {ctx.path, t[k].line, "lock-before-shared",
             "function '" + t[i].text + "' touches '" + it->first +
                 "' (IMDPP_GUARDED_BY(" + it->second +
                 ")) without referencing '" + it->second +
                 "' or carrying IMDPP_REQUIRES"});
      }
    }
    i = body_close < t.size() ? body_close + 1 : t.size();
  }
}

// ------------------------------------------------ rule: status-must-check

/// Flags `Foo(...);` / `obj.Foo(...);` / `ns::Obj::Get().Foo(...);`
/// statements where Foo is registered as returning util::Status: the
/// whole statement is the call, so the Status is dropped on the floor.
/// `return Foo();`, `s = Foo();`, `(void)Foo();` and uses inside a larger
/// expression all keep the result and stay clean. This is the lint-side
/// complement of Status's class-level [[nodiscard]]: it survives builds
/// with warnings off and carries the repo's reasoned-suppression audit
/// trail.
void CheckStatusMustCheck(const FileCtx& ctx, const Registry& reg,
                          std::vector<Diagnostic>& diags) {
  const Toks& t = ctx.toks;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].is_ident || t[i + 1].text != "(") continue;
    if (reg.status_fns.count(t[i].text) == 0) continue;
    size_t close = MatchForward(t, i + 1, '(', ')');
    if (close + 1 >= t.size() || t[close + 1].text != ";") continue;
    // Walk left over the receiver chain — `obj.` / `ptr->` / `ns::` /
    // `Get().` segments — to the expression's first token.
    size_t first = i;
    while (first >= 2 &&
           (t[first - 1].text == "." || t[first - 1].text == "->" ||
            t[first - 1].text == "::")) {
      size_t prev = first - 2;
      if (t[prev].text == ")") {
        int depth = 0;
        for (;; --prev) {
          if (t[prev].text == ")") ++depth;
          if (t[prev].text == "(" && --depth == 0) break;
          if (prev == 0) break;
        }
        if (prev == 0 || !t[prev - 1].is_ident) break;
        first = prev - 1;
      } else if (t[prev].is_ident) {
        first = prev;
      } else {
        break;
      }
    }
    // Only a full-statement discard: anything before the chain other
    // than a statement boundary (`return`, `=`, a type name in a
    // declaration, an enclosing call) consumes the value.
    if (first > 0) {
      const std::string& before = t[first - 1].text;
      if (before != ";" && before != "{" && before != "}") continue;
    }
    diags.push_back(
        {ctx.path, t[i].line, "status-must-check",
         "result of util::Status-returning call '" + t[i].text +
             "' is discarded; consume it, propagate with "
             "IMDPP_RETURN_IF_ERROR, or cast to (void) with a comment"});
  }
}

// ------------------------------------------------------ suppressions, IO

/// Applies `allow(<rule>) <reason>` suppressions: a suppression on
/// line L covers diagnostics of that rule on L and L+1. Reasonless
/// suppressions still suppress but earn their own diagnostic, so the fix
/// is always "write the reason".
std::vector<Diagnostic> ApplySuppressions(const FileCtx& ctx,
                                          std::vector<Diagnostic> diags) {
  std::vector<Diagnostic> out;
  std::set<std::pair<int, std::string>> used;  // (line, rule) consumed
  for (Diagnostic& d : diags) {
    bool suppressed = false;
    for (int line : {d.line, d.line - 1}) {
      auto it = ctx.suppressions.find(line);
      if (it == ctx.suppressions.end()) continue;
      for (const Suppression& s : it->second) {
        if (s.rule == d.rule) {
          suppressed = true;
          used.insert({line, s.rule});
        }
      }
    }
    if (!suppressed) out.push_back(std::move(d));
  }
  for (const auto& [line, sups] : ctx.suppressions) {
    for (const Suppression& s : sups) {
      if (!KnownRule(s.rule)) {
        out.push_back({ctx.path, line, "suppression-unknown-rule",
                       "suppression names unknown rule '" + s.rule + "'"});
      } else if (!s.has_reason) {
        out.push_back(
            {ctx.path, line, "suppression-missing-reason",
             "suppression for '" + s.rule +
                 "' has no reason; write why the violation is legitimate"});
      }
    }
  }
  return out;
}

void LintCtx(const FileCtx& ctx, const Registry& reg,
             std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> local;
  CheckUnorderedIteration(ctx, local);
  CheckWallclockRand(ctx, local);
  CheckRawClock(ctx, local);
  CheckRawThread(ctx, local);
  CheckFloatAccum(ctx, local);
  CheckLockBeforeShared(ctx, reg, local);
  CheckStatusMustCheck(ctx, reg, local);
  local = ApplySuppressions(ctx, std::move(local));
  diags.insert(diags.end(), local.begin(), local.end());
}

std::string Normalize(const std::string& path) {
  std::string out = std::filesystem::path(path).lexically_normal()
                        .generic_string();
  return out.empty() ? path : out;
}

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content) {
  FileCtx ctx = Tokenize(Normalize(path), content);
  Registry reg;
  BuildRegistry(ctx, reg);
  std::vector<Diagnostic> diags;
  LintCtx(ctx, reg, diags);
  return diags;
}

std::vector<Diagnostic> LintFiles(const std::vector<std::string>& paths) {
  std::vector<FileCtx> ctxs;
  std::vector<Diagnostic> diags;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      diags.push_back({Normalize(path), 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ctxs.push_back(Tokenize(Normalize(path), ss.str()));
  }
  Registry reg;
  for (const FileCtx& ctx : ctxs) BuildRegistry(ctx, reg);
  for (const FileCtx& ctx : ctxs) LintCtx(ctx, reg, diags);
  return diags;
}

std::vector<std::string> CollectSources(const std::vector<std::string>& roots,
                                        std::string* error) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    const std::filesystem::path p(root);
    if (std::filesystem::is_directory(p, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(p, ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           it.increment(ec)) {
        if (it->is_regular_file(ec) && LintableExtension(it->path())) {
          files.push_back(Normalize(it->path().string()));
        }
      }
    } else if (std::filesystem::is_regular_file(p, ec)) {
      files.push_back(Normalize(root));
    } else {
      if (error != nullptr) *error = "no such file or directory: " + root;
      return {};
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string FormatDiagnostics(std::vector<Diagnostic> diagnostics) {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
           d.message + "\n";
  }
  return out;
}

int RunLint(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::vector<std::string> roots;
  for (const std::string& arg : args) {
    if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        out << r.name << ": " << r.summary << "\n";
      }
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      err << "imdpp-lint: unknown flag " << arg << "\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    err << "usage: imdpp-lint [--list-rules] <file-or-dir>...\n";
    return 2;
  }
  std::string error;
  const std::vector<std::string> files = CollectSources(roots, &error);
  if (!error.empty()) {
    err << "imdpp-lint: " << error << "\n";
    return 2;
  }
  const std::vector<Diagnostic> diags = LintFiles(files);
  out << FormatDiagnostics(diags);
  if (!diags.empty()) {
    err << "imdpp-lint: " << diags.size() << " finding(s) in "
        << files.size() << " file(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace imdpp::lint
