// Adaptive campaign (Sec. V-D): no predefined budget allocation across
// promotions. After each round the realized adoptions are observed and the
// next round is re-planned from the observed state; budget carries over
// when the best candidate prefers a later slot.
//
//   $ ./adaptive_campaign
#include <cstdio>

#include "core/adaptive_dysim.h"
#include "data/catalog.h"

int main() {
  using namespace imdpp;

  data::Dataset ds = data::MakeYelpLike(0.4);
  diffusion::Problem problem = ds.MakeProblem(200.0, 5);

  core::AdaptiveConfig cfg;
  cfg.base.candidates.max_users = 16;
  cfg.base.candidates.max_items = 6;
  cfg.base.selection_samples = 8;

  core::AdaptiveResult result = core::RunAdaptiveDysim(problem, cfg);

  std::printf("adaptive campaign on %d users, %d items, T = 5, b = 200\n\n",
              ds.NumUsers(), ds.NumItems());
  for (const core::AdaptiveRound& round : result.rounds) {
    std::printf("round %d: spent %.1f, realized adoptions (weighted) %.1f\n",
                round.promotion, round.spent, round.realized_sigma);
    for (const diffusion::Seed& s : round.seeds) {
      std::printf("    user %-4d promotes %s\n", s.user,
                  ds.kg->ItemLabel(s.item).c_str());
    }
    if (round.seeds.empty()) {
      std::printf("    (budget deferred to later rounds)\n");
    }
  }
  std::printf(
      "\ntotal: %.1f spent of %.1f, realized importance-weighted adoption "
      "%.1f across %zu seeds\n",
      result.total_spent, problem.budget, result.realized_sigma,
      result.seeds.size());
  return 0;
}
