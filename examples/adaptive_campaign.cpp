// Adaptive campaign (Sec. V-D): no predefined budget allocation across
// promotions. After each round the realized adoptions are observed and the
// next round is re-planned from the observed state; budget carries over
// when the best candidate prefers a later slot.
//
//   $ ./adaptive_campaign
#include <cstdio>

#include "api/session.h"
#include "data/catalog.h"

int main() {
  using namespace imdpp;

  api::PlannerConfig cfg;
  cfg.candidates.max_users = 16;
  cfg.candidates.max_items = 6;
  cfg.selection_samples = 8;
  api::CampaignSession session(data::MakeYelpLike(0.4), 200.0, 5, cfg);

  api::PlanResult result = session.Run("adaptive");

  const data::Dataset& ds = session.dataset();
  std::printf("adaptive campaign on %d users, %d items, T = 5, b = 200\n\n",
              ds.NumUsers(), ds.NumItems());
  double realized = 0.0;
  for (const api::PlanRound& round : result.rounds) {
    std::printf("round %d: spent %.1f, realized adoptions (weighted) %.1f\n",
                round.promotion, round.spent, round.realized_sigma);
    realized += round.realized_sigma;
    for (const diffusion::Seed& s : round.seeds) {
      std::printf("    user %-4d promotes %s\n", s.user,
                  ds.kg->ItemLabel(s.item).c_str());
    }
    if (round.seeds.empty()) {
      std::printf("    (budget deferred to later rounds)\n");
    }
  }
  std::printf(
      "\ntotal: %.1f spent of %.1f, realized importance-weighted adoption "
      "%.1f across %zu seeds (sigma re-estimate %.1f)\n",
      result.total_cost, session.problem().budget, realized,
      result.seeds.size(), result.sigma);
  return 0;
}
