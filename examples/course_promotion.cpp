// Course-promotion campaign: the paper's empirical study (Sec. VI-E).
// Five classes of students, 30 elective courses with a curriculum KG
// (keywords / fields / prerequisite chains); plan a 3-round campaign with
// budget 50 per class and compare Dysim against PS — one CampaignSession
// per class, both algorithms through the registry.
//
//   $ ./course_promotion
#include <algorithm>
#include <cstdio>

#include "api/session.h"
#include "data/catalog.h"

int main() {
  using namespace imdpp;

  std::printf("course promotion across five classes (b = 50, T = 3)\n\n");
  api::PlannerConfig cfg;
  cfg.candidates.max_items = 10;  // all students, top-10 courses

  double total_dysim = 0.0, total_ps = 0.0;
  for (int c = 0; c < 5; ++c) {
    api::CampaignSession session(data::MakeClassroom(c), 50.0, 3, cfg);
    diffusion::Problem& p = session.mutable_problem();
    std::fill(p.importance.begin(), p.importance.end(), 1.0);

    api::CompareResult results = session.Compare({"dysim", "ps"});
    const api::PlanResult& plan = results[0];
    const api::PlanResult& ps = results[1];

    std::printf("class %c (%2d students): Dysim %.1f selections, PS %.1f\n",
                'A' + c, session.dataset().NumUsers(), plan.sigma, ps.sigma);
    for (const diffusion::Seed& s : plan.seeds) {
      std::printf("    round %d: student %2d champions %s\n", s.promotion,
                  s.user, session.dataset().kg->ItemLabel(s.item).c_str());
    }
    total_dysim += plan.sigma;
    total_ps += ps.sigma;
  }
  std::printf("\ntotal expected selections: Dysim %.1f vs PS %.1f (%.2fx)\n",
              total_dysim, total_ps,
              total_ps > 0 ? total_dysim / total_ps : 0.0);
  return 0;
}
