// Case studies in the spirit of Sec. VI-F: trace how dynamic perception
// changes one user's behaviour across promotions on an Amazon-flavor
// dataset.
//
//   1) substitutable perception growth after adopting related items;
//   2) a complementary adoption raising the preference for a follow-up
//      item between promotions (the Kindle / Kindle-Unlimited effect);
//   3) influence strength growing between two users after a shared
//      adoption (the Garmin effect).
//
//   $ ./case_study
#include <cstdio>

#include "api/session.h"
#include "data/catalog.h"

int main() {
  using namespace imdpp;
  api::PlannerConfig cfg;
  cfg.eval_samples = 128;
  api::CampaignSession session(data::MakeAmazonLike(0.3), 500.0, 10, cfg);
  const data::Dataset& ds = session.dataset();
  pin::PerceptionParams params;
  pin::Dynamics dyn(*ds.relevance, params);

  // Pick a strongly complementary pair and a substitutable pair.
  std::vector<float> w0(ds.relevance->NumMetas(), 0.45f);
  int cx = 0, cy = 1, sx = 0, sy = 1;
  double best_c = -1, best_s = -1;
  for (int i = 0; i < ds.NumItems(); ++i) {
    for (int j = 0; j < ds.NumItems(); ++j) {
      if (i == j) continue;
      double rc = dyn.pin().RelC(w0, i, j);
      double rs = dyn.pin().RelS(w0, i, j);
      if (rc - rs > best_c) { best_c = rc - rs; cx = i; cy = j; }
      if (rs - rc > best_s) { best_s = rs - rc; sx = i; sy = j; }
    }
  }
  std::printf("complementary pair: %s + %s (net %.2f)\n",
              ds.kg->ItemLabel(cx).c_str(), ds.kg->ItemLabel(cy).c_str(),
              best_c);
  std::printf("substitutable pair: %s vs %s (net %.2f)\n\n",
              ds.kg->ItemLabel(sx).c_str(), ds.kg->ItemLabel(sy).c_str(),
              best_s);

  // Case 2 (Kindle effect): adopting cx raises the user's preference for
  // cy, so a later promotion succeeds more often.
  pin::UserState u(ds.NumItems(), std::vector<float>(w0.begin(), w0.end()));
  pin::PreferenceModel pref(dyn.pin());
  double before = pref.Eval(u, ds.base_pref[cy], cy);
  u.Add(cx);
  std::vector<kg::ItemId> newly{cx};
  dyn.pin().UpdateWeights(u, newly);
  double after = pref.Eval(u, ds.base_pref[cy], cy);
  std::printf("case 2: preference for %s %.2f -> %.2f after adopting %s\n",
              ds.kg->ItemLabel(cy).c_str(), before, after,
              ds.kg->ItemLabel(cx).c_str());

  // Case 1 (substitutable suppression): after adopting sx, the preference
  // for its substitute sy drops.
  pin::UserState v(ds.NumItems(), std::vector<float>(w0.begin(), w0.end()));
  double pre_s = pref.Eval(v, ds.base_pref[sy], sy);
  v.Add(sx);
  std::vector<kg::ItemId> newly2{sx};
  dyn.pin().UpdateWeights(v, newly2);
  double post_s = pref.Eval(v, ds.base_pref[sy], sy);
  std::printf("case 1: preference for %s %.2f -> %.2f after adopting the "
              "substitute %s\n",
              ds.kg->ItemLabel(sy).c_str(), pre_s, post_s,
              ds.kg->ItemLabel(sx).c_str());

  // Case 3 (Garmin effect): shared adoptions strengthen an edge.
  pin::InfluenceModel act(params);
  pin::UserState a(ds.NumItems(), std::vector<float>(w0.begin(), w0.end()));
  pin::UserState b(ds.NumItems(), std::vector<float>(w0.begin(), w0.end()));
  double base_w = 0.39;
  double w_before = act.Eval(base_w, a, b);
  a.Add(cx);
  b.Add(cx);
  double w_after = act.Eval(base_w, a, b);
  std::printf("case 3: influence strength %.2f -> %.2f after both users "
              "adopt %s\n",
              w_before, w_after, ds.kg->ItemLabel(cx).c_str());

  // End-to-end: does the second-wave re-promotion of cy benefit from cx's
  // first wave? (paired Monte-Carlo comparison on the session's shared
  // engine)
  int hub = 0;
  for (int uu = 0; uu < ds.NumUsers(); ++uu) {
    if (ds.social->OutDegree(uu) > ds.social->OutDegree(hub)) hub = uu;
  }
  double together = session.Sigma({{hub, cx, 1}, {hub, cy, 1}});
  double sequenced = session.Sigma({{hub, cx, 1}, {hub, cy, 2}});
  std::printf(
      "\nsequencing check from hub user %d: simultaneous sigma %.2f vs "
      "sequenced sigma %.2f\n",
      hub, together, sequenced);
  return 0;
}
