// Product-launch campaign: the paper's motivating Apple-style scenario
// (Fig. 1 / Fig. 2). A hand-built KG with iPhone, AirPods, wireless
// charger and charging cable; meta-graphs for shared features, shared
// brand, and also-bought links; a planner that sequences complementary
// items across promotions.
//
//   $ ./product_launch
#include <cstdio>

#include "api/session.h"
#include "data/catalog.h"

int main() {
  using namespace imdpp;

  // The Fig. 1 toy shows the perception mechanics on 3 users; for a
  // realistic launch, embed the same product KG flavor into a larger
  // synthetic crowd.
  data::Dataset toy = data::MakeFig1Toy();
  std::printf("Fig. 1 toy KG: %d items, %d meta-graphs\n", toy.NumItems(),
              toy.relevance->NumMetas());
  std::printf("  relevance(iPhone, AirPods | shared-feature) = %.3f\n",
              toy.relevance->Score(0, 0, 1));
  std::printf("  relevance(iPhone, Charger | shared-feature) = %.3f\n",
              toy.relevance->Score(0, 0, 2));

  // Bob's perception before/after adopting iPhone + AirPods (Fig. 1(c/d)).
  pin::PerceptionParams params;
  pin::Dynamics dyn(*toy.relevance, params);
  pin::UserState bob(toy.NumItems(), std::vector<float>(
                                         toy.relevance->NumMetas(), 0.2f));
  double before = dyn.pin().RelC(bob.wmeta(), 0, 2);
  bob.Add(0);
  bob.Add(1);
  std::vector<kg::ItemId> newly{0, 1};
  dyn.pin().UpdateWeights(bob, newly);
  double after = dyn.pin().RelC(bob.wmeta(), 0, 2);
  std::printf(
      "Bob's iPhone<->Charger complementary relevance: %.3f -> %.3f after "
      "adopting iPhone+AirPods (Fig. 1(c)->(d))\n",
      before, after);

  // Full launch: Amazon-flavor crowd, 4 promotions, budget 200 — planned
  // through the unified api layer.
  api::PlannerConfig cfg;
  cfg.candidates.max_users = 20;
  cfg.candidates.max_items = 8;
  api::CampaignSession session(data::MakeAmazonLike(0.35), 200.0, 4, cfg);
  api::PlanResult plan = session.Run("dysim");
  const data::Dataset& market = session.dataset();
  std::printf("\nLaunch plan on %d users / %d products (sigma = %.1f):\n",
              market.NumUsers(), market.NumItems(), plan.sigma);
  for (const api::PlanRound& round : plan.rounds) {
    std::printf("  -- promotion wave %d --\n", round.promotion);
    for (const diffusion::Seed& s : round.seeds) {
      std::printf("  ambassador user %-4d promotes %s\n", s.user,
                  market.kg->ItemLabel(s.item).c_str());
    }
  }
  std::printf("total cost %.1f / budget %.1f, markets=%zu\n", plan.total_cost,
              session.problem().budget, plan.num_markets);
  return 0;
}
