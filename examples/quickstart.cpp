// Quickstart: build a synthetic dataset, run Dysim through the unified
// api:: layer, inspect the campaign.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: dataset generation,
// CampaignSession setup, registry-based planning, and Monte-Carlo
// evaluation of the plan on the session's shared engine.
#include <cstdio>

#include "api/session.h"
#include "data/catalog.h"
#include "data/stats.h"

int main() {
  using namespace imdpp;

  // 1. A scaled-down Yelp-flavor dataset (social graph + KG + relevance),
  //    owned by a campaign session.
  api::PlannerConfig config;
  config.candidates.max_users = 24;
  config.candidates.max_items = 10;
  config.selection_samples = 8;
  config.eval_samples = 32;
  api::CampaignSession session(data::MakeYelpLike(/*scale=*/0.5), config);

  const data::Dataset& ds = session.dataset();
  data::DatasetStats stats = data::ComputeStats(ds);
  std::printf("dataset %s: %d users, %d items, %lld KG edges\n",
              stats.name.c_str(), stats.users, stats.items,
              static_cast<long long>(ds.kg->NumEdges()));
  std::printf("registered planners:");
  for (const std::string& name : api::PlannerRegistry::Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // 2. An IMDPP instance: budget 150, T = 5 promotions.
  session.SetProblem(/*budget=*/150.0, /*num_promotions=*/5);

  // 3. Plan the campaign with Dysim — any registered name works here.
  api::PlanResult result = session.Run("dysim");
  std::printf("Dysim planned %zu seeds (cost %.1f / budget %.1f) in %.2fs\n",
              result.seeds.size(), result.total_cost,
              session.problem().budget, result.wall_seconds);
  std::printf("expected importance-aware spread sigma = %.2f\n", result.sigma);
  std::printf("target markets: %zu in %zu group(s)\n", result.num_markets,
              result.num_groups);
  // Evaluation fast-path accounting: promotion-rounds actually simulated
  // vs avoided (unseeded-round skips, promotion-boundary checkpoint
  // resumes, sigma-memo hits) relative to naive T-rounds-per-sample
  // re-simulation. Deterministic, so safe to diff across runs.
  const long long naive_rounds =
      static_cast<long long>(result.rounds_simulated + result.rounds_skipped);
  std::printf(
      "evaluation fast path: %lld promotion-rounds simulated, %lld skipped "
      "(%.1fx less than naive), %lld memoized sigma estimates\n",
      static_cast<long long>(result.rounds_simulated),
      static_cast<long long>(result.rounds_skipped),
      result.rounds_simulated == 0
          ? 1.0
          : static_cast<double>(naive_rounds) /
                static_cast<double>(result.rounds_simulated),
      static_cast<long long>(result.memo_hits));

  // 4. Inspect the schedule, round by round.
  for (const api::PlanRound& round : result.rounds) {
    for (const diffusion::Seed& s : round.seeds) {
      std::printf("  promotion %d: user %d promotes %s\n", round.promotion,
                  s.user, ds.kg->ItemLabel(s.item).c_str());
    }
  }

  // 5. Re-evaluate with an independent engine (more samples).
  diffusion::MonteCarloEngine engine(session.problem(), config.campaign, 64);
  std::printf("independent re-estimate: sigma = %.2f\n",
              engine.Sigma(result.seeds));
  return 0;
}
