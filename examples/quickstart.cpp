// Quickstart: build a synthetic dataset, run Dysim, inspect the campaign.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: dataset generation, problem
// construction, Dysim planning, and Monte-Carlo evaluation of the plan.
#include <cstdio>

#include "core/dysim.h"
#include "data/catalog.h"
#include "data/stats.h"
#include "util/timer.h"

int main() {
  using namespace imdpp;

  // 1. A scaled-down Yelp-flavor dataset (social graph + KG + relevance).
  data::Dataset ds = data::MakeYelpLike(/*scale=*/0.5);
  data::DatasetStats stats = data::ComputeStats(ds);
  std::printf("dataset %s: %d users, %d items, %lld KG edges\n",
              stats.name.c_str(), stats.users, stats.items,
              static_cast<long long>(ds.kg->NumEdges()));

  // 2. An IMDPP instance: budget 150, T = 5 promotions.
  diffusion::Problem problem = ds.MakeProblem(/*budget=*/150.0,
                                              /*num_promotions=*/5);

  // 3. Plan the campaign with Dysim.
  core::DysimConfig config;
  config.candidates.max_users = 24;
  config.candidates.max_items = 10;
  config.selection_samples = 8;
  config.eval_samples = 32;
  Timer timer;
  core::DysimResult result = core::RunDysim(problem, config);
  std::printf("Dysim planned %zu seeds (cost %.1f / budget %.1f) in %.2fs\n",
              result.seeds.size(), result.total_cost, problem.budget,
              timer.Seconds());
  std::printf("expected importance-aware spread sigma = %.2f\n", result.sigma);
  std::printf("target markets: %zu in %zu group(s)\n",
              result.plan.markets.size(), result.plan.groups.size());

  // 4. Inspect the schedule.
  for (const diffusion::Seed& s : result.seeds) {
    std::printf("  promotion %d: user %d promotes %s\n", s.promotion, s.user,
                ds.kg->ItemLabel(s.item).c_str());
  }

  // 5. Re-evaluate with an independent engine (more samples).
  diffusion::MonteCarloEngine engine(problem, config.campaign, 64);
  std::printf("independent re-estimate: sigma = %.2f\n",
              engine.Sigma(result.seeds));
  return 0;
}
