#include <gtest/gtest.h>

#include "data/catalog.h"
#include "kg/knowledge_graph.h"
#include "kg/meta_graph.h"
#include "kg/meta_graph_matcher.h"
#include "kg/relevance.h"

namespace imdpp::kg {
namespace {

TEST(TypeRegistry, InternAndFind) {
  TypeRegistry reg;
  int16_t a = reg.Intern("ITEM");
  int16_t b = reg.Intern("FEATURE");
  EXPECT_EQ(reg.Intern("ITEM"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.Find("FEATURE"), b);
  EXPECT_EQ(reg.Find("MISSING"), -1);
  EXPECT_EQ(reg.Name(a), "ITEM");
  EXPECT_EQ(reg.Size(), 2);
}

TEST(KnowledgeGraph, ItemsGetDenseIds) {
  KnowledgeGraph g("ITEM");
  KgNodeId i0 = g.AddNode("ITEM", "a");
  KgNodeId f = g.AddNode("FEATURE", "blue");
  KgNodeId i1 = g.AddNode("ITEM", "b");
  EXPECT_EQ(g.NumItems(), 2);
  EXPECT_EQ(g.ItemOf(i0), 0);
  EXPECT_EQ(g.ItemOf(i1), 1);
  EXPECT_EQ(g.ItemOf(f), -1);
  EXPECT_EQ(g.ItemNode(1), i1);
  EXPECT_EQ(g.ItemLabel(0), "a");
}

TEST(KnowledgeGraph, EdgesStoredBothDirections) {
  KnowledgeGraph g("ITEM");
  KgNodeId a = g.AddNode("ITEM");
  KgNodeId f = g.AddNode("FEATURE");
  g.AddEdge(a, f, "SUPPORTS");
  ASSERT_EQ(g.EdgesOf(a).size(), 1u);
  ASSERT_EQ(g.EdgesOf(f).size(), 1u);
  EXPECT_TRUE(g.EdgesOf(a)[0].forward);
  EXPECT_FALSE(g.EdgesOf(f)[0].forward);
  EXPECT_EQ(g.NumEdges(), 1);
}

/// KG of Fig. 1(a): iPhone & AirPods support Bluetooth; iPhone & charger
/// support Qi; iPhone & AirPods are Apple-branded.
class Fig1Kg : public ::testing::Test {
 protected:
  void SetUp() override {
    iphone_ = g_.AddNode("ITEM", "iPhone");
    airpods_ = g_.AddNode("ITEM", "AirPods");
    charger_ = g_.AddNode("ITEM", "Charger");
    cable_ = g_.AddNode("ITEM", "Cable");
    KgNodeId bt = g_.AddNode("FEATURE", "Bluetooth");
    KgNodeId qi = g_.AddNode("FEATURE", "Qi");
    KgNodeId apple = g_.AddNode("BRAND", "Apple");
    g_.AddEdge(iphone_, bt, "SUPPORTS");
    g_.AddEdge(airpods_, bt, "SUPPORTS");
    g_.AddEdge(iphone_, qi, "SUPPORTS");
    g_.AddEdge(charger_, qi, "SUPPORTS");
    g_.AddEdge(iphone_, apple, "HAS_BRAND");
    g_.AddEdge(airpods_, apple, "HAS_BRAND");
  }
  KnowledgeGraph g_{"ITEM"};
  KgNodeId iphone_, airpods_, charger_, cable_;
};

TEST_F(Fig1Kg, SharedNeighborCounts) {
  MetaGraph m1 = SharedNeighborMeta(g_, "m1", RelationKind::kComplementary,
                                    "SUPPORTS", "FEATURE");
  MetaGraphMatcher matcher(g_);
  // iPhone & AirPods share exactly one feature (Bluetooth).
  EXPECT_EQ(matcher.CountInstances(m1, 0, 1), 1);
  // iPhone & Charger share Qi.
  EXPECT_EQ(matcher.CountInstances(m1, 0, 2), 1);
  // AirPods & Charger share nothing.
  EXPECT_EQ(matcher.CountInstances(m1, 1, 2), 0);
  // Cable supports nothing.
  EXPECT_EQ(matcher.CountInstances(m1, 0, 3), 0);
  // Diagonal is zero by definition.
  EXPECT_EQ(matcher.CountInstances(m1, 0, 0), 0);
}

TEST_F(Fig1Kg, ConjunctionMetaRequiresAllLegs) {
  MetaGraph feat = SharedNeighborMeta(g_, "f", RelationKind::kComplementary,
                                      "SUPPORTS", "FEATURE");
  MetaGraph brand = SharedNeighborMeta(g_, "b", RelationKind::kComplementary,
                                       "HAS_BRAND", "BRAND");
  MetaGraph m3 =
      ConjunctionMeta("m3", RelationKind::kComplementary, {feat, brand});
  MetaGraphMatcher matcher(g_);
  // iPhone & AirPods: shared feature AND shared brand -> 1 joint instance.
  EXPECT_EQ(matcher.CountInstances(m3, 0, 1), 1);
  // iPhone & Charger: shared feature but no shared brand -> 0.
  EXPECT_EQ(matcher.CountInstances(m3, 0, 2), 0);
}

TEST_F(Fig1Kg, DirectEdgeMeta) {
  g_.AddEdge(iphone_, airpods_, "ALSO_BOUGHT");
  MetaGraph m = DirectEdgeMeta(g_, "ab", RelationKind::kComplementary,
                               "ALSO_BOUGHT");
  MetaGraphMatcher matcher(g_);
  EXPECT_EQ(matcher.CountInstances(m, 0, 1), 1);
  // Direction matters for direct edges.
  EXPECT_EQ(matcher.CountInstances(m, 1, 0), 0);
}

TEST_F(Fig1Kg, MultiEdgesCountAsMultipleInstances) {
  // A second shared feature doubles the count.
  KgNodeId nfc = g_.AddNode("FEATURE", "NFC");
  g_.AddEdge(iphone_, nfc, "SUPPORTS");
  g_.AddEdge(airpods_, nfc, "SUPPORTS");
  MetaGraph m1 = SharedNeighborMeta(g_, "m1", RelationKind::kComplementary,
                                    "SUPPORTS", "FEATURE");
  MetaGraphMatcher matcher(g_);
  EXPECT_EQ(matcher.CountInstances(m1, 0, 1), 2);
}

TEST_F(Fig1Kg, AllPairsMatchesSingle) {
  MetaGraph m1 = SharedNeighborMeta(g_, "m1", RelationKind::kComplementary,
                                    "SUPPORTS", "FEATURE");
  MetaGraphMatcher matcher(g_);
  std::vector<int64_t> all = matcher.CountAllPairs(m1);
  const int n = g_.NumItems();
  for (ItemId x = 0; x < n; ++x) {
    for (ItemId y = 0; y < n; ++y) {
      EXPECT_EQ(all[static_cast<size_t>(x) * n + y],
                matcher.CountInstances(m1, x, y))
          << x << "," << y;
    }
  }
}

TEST_F(Fig1Kg, RelevanceSaturation) {
  MetaGraph m1 = SharedNeighborMeta(g_, "m1", RelationKind::kComplementary,
                                    "SUPPORTS", "FEATURE");
  RelevanceModel model = RelevanceModel::FromKg(g_, {m1}, /*kappa=*/2.0);
  // count 1 -> 1/3; count 0 -> 0.
  EXPECT_NEAR(model.Score(0, 0, 1), 1.0 / 3.0, 1e-6);
  EXPECT_FLOAT_EQ(model.Score(0, 1, 2), 0.0f);
  EXPECT_EQ(model.NumMetas(), 1);
  EXPECT_EQ(model.NumItems(), 4);
}

TEST_F(Fig1Kg, RelatedItemsSparse) {
  MetaGraph m1 = SharedNeighborMeta(g_, "m1", RelationKind::kComplementary,
                                    "SUPPORTS", "FEATURE");
  RelevanceModel model = RelevanceModel::FromKg(g_, {m1}, 2.0);
  // iPhone relates to AirPods and Charger, not Cable.
  const std::vector<ItemId>& rel = model.RelatedItems(0);
  EXPECT_EQ(rel.size(), 2u);
  // Cable relates to nothing.
  EXPECT_TRUE(model.RelatedItems(3).empty());
}

TEST(RelevanceModel, FromMatricesAndSubset) {
  std::vector<MetaGraph> metas(2);
  metas[0].kind = RelationKind::kComplementary;
  metas[0].name = "c";
  metas[1].kind = RelationKind::kSubstitutable;
  metas[1].name = "s";
  std::vector<float> c{0, 0.5f, 0.5f, 0};
  std::vector<float> s{0, 0.2f, 0.2f, 0};
  RelevanceModel model = RelevanceModel::FromMatrices(2, metas, {c, s});
  EXPECT_FLOAT_EQ(model.Score(0, 0, 1), 0.5f);
  EXPECT_FLOAT_EQ(model.Score(1, 0, 1), 0.2f);

  RelevanceModel first = model.WithFirstMetas(1);
  EXPECT_EQ(first.NumMetas(), 1);
  EXPECT_EQ(first.KindOf(0), RelationKind::kComplementary);

  RelevanceModel sub = model.WithMetaSubset({1});
  EXPECT_EQ(sub.NumMetas(), 1);
  EXPECT_EQ(sub.KindOf(0), RelationKind::kSubstitutable);
  EXPECT_FLOAT_EQ(sub.Score(0, 0, 1), 0.2f);
}

TEST(Fig1Toy, CatalogToyHasExpectedRelevance) {
  data::Dataset ds = data::MakeFig1Toy();
  EXPECT_EQ(ds.NumItems(), 4);
  EXPECT_EQ(ds.NumUsers(), 3);
  // m1 (shared feature): iPhone-AirPods share Bluetooth -> positive score.
  EXPECT_GT(ds.relevance->Score(0, 0, 1), 0.0f);
  // iPhone-Charger share Qi.
  EXPECT_GT(ds.relevance->Score(0, 0, 2), 0.0f);
  // Substitutable meta (shared category): charger vs cable.
  int sub_meta = -1;
  for (int m = 0; m < ds.relevance->NumMetas(); ++m) {
    if (ds.relevance->KindOf(m) == RelationKind::kSubstitutable) sub_meta = m;
  }
  ASSERT_GE(sub_meta, 0);
  EXPECT_GT(ds.relevance->Score(sub_meta, 2, 3), 0.0f);
  EXPECT_FLOAT_EQ(ds.relevance->Score(sub_meta, 0, 1), 0.0f);
}

}  // namespace
}  // namespace imdpp::kg
