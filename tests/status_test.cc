// util::Status / StatusOr (ISSUE 8 tentpole, prong 1): the structured
// error vocabulary every fallible boundary speaks. Pins the canonical
// code space, the name round-trip the fault specs and CLI JSON rely on,
// first-error-wins accumulation, the IMDPP_RETURN_IF_ERROR early exit,
// and StatusOr's value-or-error contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/status.h"

namespace imdpp::util {
namespace {

TEST(Status, DefaultIsOkAndErrorsCarryCodeAndMessage) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.message(), "");
  EXPECT_EQ(ok.ToString(), "ok");
  EXPECT_EQ(ok, OkStatus());

  Status err = NotFoundError("no such planner");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.message(), "no such planner");
  EXPECT_EQ(err.ToString(), "not_found: no such planner");
}

TEST(Status, CanonicalCodesMatchTheGrpcNumericSpace) {
  EXPECT_EQ(static_cast<int>(StatusCode::kOk), 0);
  EXPECT_EQ(static_cast<int>(StatusCode::kCancelled), 1);
  EXPECT_EQ(static_cast<int>(StatusCode::kInvalidArgument), 3);
  EXPECT_EQ(static_cast<int>(StatusCode::kDeadlineExceeded), 4);
  EXPECT_EQ(static_cast<int>(StatusCode::kNotFound), 5);
  EXPECT_EQ(static_cast<int>(StatusCode::kResourceExhausted), 8);
  EXPECT_EQ(static_cast<int>(StatusCode::kInternal), 13);
}

TEST(Status, CodeNamesRoundTripThroughParse) {
  const std::vector<StatusCode> codes = {
      StatusCode::kCancelled,         StatusCode::kInvalidArgument,
      StatusCode::kDeadlineExceeded,  StatusCode::kNotFound,
      StatusCode::kResourceExhausted, StatusCode::kInternal,
  };
  for (StatusCode code : codes) {
    const std::string name(StatusCodeName(code));
    std::optional<StatusCode> parsed = ParseStatusCode(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code) << name;
  }
  // kOk is deliberately not parseable: a fault spec injecting "success"
  // is a spec error, not a no-op.
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_FALSE(ParseStatusCode("ok").has_value());
  EXPECT_FALSE(ParseStatusCode("no_such_code").has_value());
  EXPECT_FALSE(ParseStatusCode("").has_value());
}

TEST(Status, UpdateKeepsTheFirstError) {
  Status s;
  s.Update(OkStatus());
  EXPECT_TRUE(s.ok());
  s.Update(InternalError("first"));
  s.Update(InvalidArgumentError("second"));
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "first");
}

TEST(Status, ErrorHelpersMapToTheirCodes) {
  EXPECT_EQ(CancelledError("m").code(), StatusCode::kCancelled);
  EXPECT_EQ(InvalidArgumentError("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DeadlineExceededError("m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(NotFoundError("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(ResourceExhaustedError("m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("m").code(), StatusCode::kInternal);
}

Status FailAfter(int* calls, int failing_call) {
  ++*calls;
  IMDPP_RETURN_IF_ERROR(*calls == failing_call
                            ? InternalError("boom at " +
                                            std::to_string(*calls))
                            : OkStatus());
  return OkStatus();
}

Status RunThree(int* calls, int failing_call) {
  IMDPP_RETURN_IF_ERROR(FailAfter(calls, failing_call));
  IMDPP_RETURN_IF_ERROR(FailAfter(calls, failing_call));
  IMDPP_RETURN_IF_ERROR(FailAfter(calls, failing_call));
  return OkStatus();
}

TEST(Status, ReturnIfErrorShortCircuitsAtTheFirstFailure) {
  int calls = 0;
  EXPECT_TRUE(RunThree(&calls, /*failing_call=*/0).ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  Status failed = RunThree(&calls, /*failing_call=*/2);
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  EXPECT_EQ(failed.message(), "boom at 2");
  EXPECT_EQ(calls, 2);  // the third step never ran
}

TEST(StatusOr, CarriesAValueOrTheError) {
  StatusOr<std::string> good(std::string("value"));
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.status().ok());
  EXPECT_EQ(good.value(), "value");
  EXPECT_EQ(*good, "value");
  EXPECT_EQ(good->size(), 5u);

  StatusOr<std::string> bad(NotFoundError("missing"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.status().message(), "missing");
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return InvalidArgumentError("must be positive");
  return v;
}

TEST(StatusOr, ImplicitConstructionSupportsBothReturnShapes) {
  StatusOr<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  StatusOr<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeath, AccessingTheValueOfAnErrorChecks) {
  StatusOr<int> bad(InternalError("no value"));
  EXPECT_DEATH(bad.value(), "ok");
}

}  // namespace
}  // namespace imdpp::util
