// ISSUE 6 bugfix-sweep regression test: pins the thread-safety the
// locking pass added to the shared caches. Before this PR, PrepCache,
// PrepArtifacts' lazy sweeps and the engine's σ/market memos (plus its
// work counters and initial-state mask cache) were mutated without a
// lock — safe for the then-sequential planners, latent races for the
// serve daemon / concurrent sessions on the roadmap. These tests hammer
// the now-guarded paths from many threads and assert (a) no lost
// updates in the counters and (b) results bit-identical to the serial
// answers. Under CI's TSan job they are also a race detector's workload.
//
// std::thread is used deliberately: the point is *outside* callers
// hitting the shared objects concurrently, not pool-sharded work.
// (tests/ is outside imdpp-lint's no-raw-thread scope.)
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "data/catalog.h"
#include "diffusion/monte_carlo.h"
#include "prep/prep.h"
#include "tests/test_util.h"
#include "util/cancel.h"
#include "util/fault_injection.h"
#include "util/status.h"

namespace imdpp {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

TinyWorldSpec Spec() {
  TinyWorldSpec s;
  s.num_items = 2;
  s.num_promotions = 2;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  return s;
}

TEST(ThreadSafety, ConcurrentPrepCacheAcquireCountsOneBuild) {
  data::Dataset ds = data::MakeFig1Toy();
  diffusion::Problem problem = ds.MakeProblem(/*budget=*/20.0,
                                              /*num_promotions=*/2);
  auto cache = std::make_shared<prep::PrepCache>();
  constexpr int kThreads = 8;
  std::vector<prep::PrepLease> leases(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        util::StatusOr<prep::PrepLease> lease =
            cache->Acquire(problem, /*pool=*/nullptr, /*build_threads=*/1);
        ASSERT_TRUE(lease.ok()) << lease.status().ToString();
        leases[static_cast<size_t>(i)] = std::move(*lease);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  // Exactly one build; every other acquirer reused it. Before the lock,
  // racing acquirers could each build (losing the memoization) or lose
  // counter increments.
  EXPECT_EQ(cache->builds(), 1);
  EXPECT_EQ(cache->reuses(), kThreads - 1);
  for (const prep::PrepLease& lease : leases) {
    ASSERT_NE(lease.artifacts, nullptr);
    EXPECT_EQ(lease.artifacts, leases[0].artifacts);  // one shared bundle
  }
}

TEST(ThreadSafety, ConcurrentLazySweepsMatchSerialAnswers) {
  data::Dataset ds = data::MakeFig1Toy();
  diffusion::Problem problem = ds.MakeProblem(20.0, 2);
  const graph::UserId n = problem.NumUsers();

  // Serial reference: every pairwise hop distance and region size.
  prep::PrepArtifacts serial(problem, nullptr, 1);
  std::vector<int> want_hops;
  for (graph::UserId a = 0; a < n; ++a) {
    for (graph::UserId b = 0; b < n; ++b) {
      want_hops.push_back(serial.HopDistance(a, b, /*max_hops=*/3));
    }
  }

  // Concurrent: all threads interleave cold-cache Region / HopDistance
  // lookups on one shared artifact. Values must match the serial run
  // exactly, and the caches must end up with one entry per source.
  prep::PrepArtifacts shared(problem, nullptr, 1);
  constexpr int kThreads = 8;
  std::vector<std::vector<int>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (graph::UserId a = 0; a < n; ++a) {
        shared.Region(a, /*threshold=*/0.01, /*max_hops=*/3);
        for (graph::UserId b = 0; b < n; ++b) {
          got[static_cast<size_t>(t)].push_back(
              shared.HopDistance(a, b, /*max_hops=*/3));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<size_t>(t)], want_hops) << "thread " << t;
  }
  EXPECT_EQ(shared.num_regions(), static_cast<size_t>(n));
  EXPECT_EQ(shared.num_hop_rows(), static_cast<size_t>(n));
}

TEST(ThreadSafety, ConcurrentSigmaEstimatesAreExactAndFullyCounted) {
  TinyWorld w = MakeWorld(6,
                          {{0, 1, 0.4},
                           {1, 2, 0.6},
                           {0, 3, 0.3},
                           {3, 4, 0.7},
                           {4, 5, 0.2}},
                          Spec());
  constexpr int kSamples = 64;

  // Serial reference values for two distinct seed groups.
  diffusion::MonteCarloEngine reference(w.problem, {}, kSamples);
  const double want_a = reference.Sigma({{0, 0, 1}});
  const double want_b = reference.Sigma({{3, 1, 2}});
  const int64_t per_estimate = reference.num_simulations() / 2;

  // Hammer one engine (memo ON: the memo map, counters and mask cache
  // are all shared mutable state) from many threads.
  diffusion::MonteCarloEngine engine(w.problem, {}, kSamples);
  engine.EnableSigmaMemo();
  constexpr int kThreads = 8;
  constexpr int kIters = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const double a = engine.Sigma({{0, 0, 1}});
        const double b = engine.Sigma({{3, 1, 2}});
        if (a != want_a || b != want_b) ++mismatches[static_cast<size_t>(t)];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
  // Conservation across the memo: every one of the kThreads * kIters * 2
  // estimates was either simulated or a memo hit — no lost counter
  // updates (the pre-lock code could drop increments under contention).
  const int64_t estimates = int64_t{kThreads} * kIters * 2;
  const int64_t simulated = engine.num_simulations() / per_estimate;
  EXPECT_EQ(simulated + engine.num_memo_hits(), estimates);
  EXPECT_EQ(engine.num_simulations() % per_estimate, 0);
  // The memo held both entries, so at most the two cold calls simulated.
  EXPECT_EQ(simulated, 2);
}

// ---------------------------------------------------- ISSUE 8 robustness

TEST(ThreadSafety, MidBatchCancellationIsCleanAndLeavesEngineDiagnosed) {
  // Cancel the run's token from an outside thread while worker threads
  // hammer estimates. Under TSan this exercises the token's atomics and
  // the pool's batch early-exit; functionally, every estimate issued
  // after the cancel resolves without deadlock and the token carries the
  // cancel reason.
  TinyWorld w = MakeWorld(6,
                          {{0, 1, 0.4},
                           {1, 2, 0.6},
                           {0, 3, 0.3},
                           {3, 4, 0.7},
                           {4, 5, 0.2}},
                          Spec());
  auto cancel = std::make_shared<util::CancelToken>();
  diffusion::MonteCarloEngine engine(w.problem, {}, /*num_samples=*/64,
                                     /*num_threads=*/4, nullptr, cancel);
  constexpr int kThreads = 4;
  constexpr int kIters = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int it = 0; it < kIters; ++it) {
        engine.Sigma({{0, 0, 1}});  // post-cancel calls return 0.0 fast
      }
    });
  }
  std::thread killer([&] { cancel->Cancel(util::CancelledError("test")); });
  for (std::thread& t : threads) t.join();
  killer.join();
  const util::Status status = cancel->Check();
  EXPECT_EQ(status.code(), util::StatusCode::kCancelled);
  EXPECT_EQ(status.message(), "test");
}

TEST(ThreadSafety, ConcurrentAcquireWithOneFailingBuildStaysConsistent) {
  // The ISSUE 8 cache-poisoning scenario under contention: the first
  // prep.build hit fails, every later one succeeds. Racing acquirers must
  // sort themselves into exactly one loser (or none, if a winner caches
  // the bundle before the loser reaches the fault point — Acquire holds
  // the cache lock across gate+build, so hits skip the gate), no partial
  // entry, and a consistent builds/reuses ledger.
  data::Dataset ds = data::MakeFig1Toy();
  diffusion::Problem problem = ds.MakeProblem(20.0, 2);
  auto cache = std::make_shared<prep::PrepCache>();
  ASSERT_TRUE(util::FaultInjector::Global()
                  .Arm("prep.build:1:internal")
                  .ok());
  constexpr int kThreads = 8;
  std::vector<util::Status> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        util::StatusOr<prep::PrepLease> lease =
            cache->Acquire(problem, nullptr, 1);
        results[static_cast<size_t>(i)] = lease.status();
        if (lease.ok()) {
          EXPECT_NE(lease->artifacts, nullptr);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  util::FaultInjector::Global().Reset();
  int failed = 0;
  for (const util::Status& s : results) {
    if (!s.ok()) {
      ++failed;
      EXPECT_EQ(s.code(), util::StatusCode::kInternal);
    }
  }
  EXPECT_LE(failed, 1);  // the armed Nth-hit schedule fails at most once
  // Conservation: every successful acquire is exactly one build or one
  // reuse; the failed one books neither.
  EXPECT_EQ(cache->builds() + cache->reuses(),
            static_cast<int64_t>(kThreads - failed));
  EXPECT_GE(cache->builds(), 1);
  // And the cache is not poisoned: a fresh acquire succeeds and reuses.
  util::StatusOr<prep::PrepLease> again = cache->Acquire(problem, nullptr, 1);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->reused);
}

}  // namespace
}  // namespace imdpp
