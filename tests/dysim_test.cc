#include <gtest/gtest.h>

#include "core/adaptive_dysim.h"
#include "core/dysim.h"
#include "data/catalog.h"
#include "tests/test_util.h"

namespace imdpp::core {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

DysimConfig FastConfig() {
  DysimConfig cfg;
  cfg.selection_samples = 6;
  cfg.eval_samples = 16;
  return cfg;
}

TEST(Dysim, PicksTheObviousSeedOnDeterministicChain) {
  TinyWorldSpec s;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  s.cost = 10.0;
  s.budget = 15.0;
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}}, s);
  w.problem.budget = 15.0;
  DysimResult r = RunDysim(w.problem, FastConfig());
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0].user, 0);
  EXPECT_DOUBLE_EQ(r.sigma, 4.0);
}

TEST(Dysim, RespectsBudget) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(80.0, 2);
  DysimConfig cfg = FastConfig();
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;
  DysimResult r = RunDysim(p, cfg);
  EXPECT_LE(r.total_cost, p.budget + 1e-9);
  for (const diffusion::Seed& s : r.seeds) {
    EXPECT_GE(s.promotion, 1);
    EXPECT_LE(s.promotion, 2);
  }
}

TEST(Dysim, DeterministicGivenConfig) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(60.0, 2);
  DysimConfig cfg = FastConfig();
  cfg.candidates.max_users = 8;
  cfg.candidates.max_items = 3;
  DysimResult a = RunDysim(p, cfg);
  DysimResult b = RunDysim(p, cfg);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
}

TEST(Dysim, NomineesNeverExceedOnePlacementEach) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(100.0, 3);
  DysimConfig cfg = FastConfig();
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;
  DysimResult r = RunDysim(p, cfg);
  std::set<std::pair<int, int>> nominees;
  for (const diffusion::Seed& s : r.seeds) {
    EXPECT_TRUE(nominees.emplace(s.user, s.item).second)
        << "duplicate nominee";
  }
}

TEST(Dysim, AblationsRunAndStayFeasible) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(80.0, 3);
  DysimConfig cfg = FastConfig();
  cfg.candidates.max_users = 8;
  cfg.candidates.max_items = 3;

  cfg.use_target_markets = false;
  DysimResult no_tm = RunDysim(p, cfg);
  EXPECT_LE(no_tm.total_cost, p.budget + 1e-9);

  cfg.use_target_markets = true;
  cfg.use_item_priority = false;
  DysimResult no_ip = RunDysim(p, cfg);
  EXPECT_LE(no_ip.total_cost, p.budget + 1e-9);
  EXPECT_GT(no_tm.sigma, 0.0);
  EXPECT_GT(no_ip.sigma, 0.0);
}

TEST(Dysim, MarketOrderMetricsAllRun) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(60.0, 2);
  DysimConfig cfg = FastConfig();
  cfg.candidates.max_users = 6;
  cfg.candidates.max_items = 3;
  for (MarketOrderMetric m :
       {MarketOrderMetric::kAntagonisticExtent,
        MarketOrderMetric::kProfitability, MarketOrderMetric::kSize,
        MarketOrderMetric::kRelativeMarketShare, MarketOrderMetric::kRandom}) {
    cfg.order = m;
    DysimResult r = RunDysim(p, cfg);
    EXPECT_GE(r.sigma, 0.0) << MarketOrderName(m);
  }
}

TEST(Dysim, EmptyWhenBudgetTooSmall) {
  TinyWorldSpec s;
  s.cost = 50.0;
  s.budget = 1.0;
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, s);
  w.problem.budget = 1.0;
  DysimResult r = RunDysim(w.problem, FastConfig());
  EXPECT_TRUE(r.seeds.empty());
  EXPECT_DOUBLE_EQ(r.sigma, 0.0);
}

TEST(Dysim, TimingsRespectWindowDiscipline) {
  // Timings in the seed group should be non-decreasing in acceptance
  // order within each group (TDSI only searches [t̂, t̂+1]).
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(120.0, 4);
  DysimConfig cfg = FastConfig();
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;
  DysimResult r = RunDysim(p, cfg);
  for (const diffusion::Seed& s : r.seeds) {
    EXPECT_LE(s.promotion, 4);
    EXPECT_GE(s.promotion, 1);
  }
}

TEST(AdaptiveDysim, SpendsWithinBudgetAndObservesReality) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(80.0, 3);
  AdaptiveConfig cfg;
  cfg.base = FastConfig();
  cfg.base.candidates.max_users = 8;
  cfg.base.candidates.max_items = 3;
  AdaptiveResult r = RunAdaptiveDysim(p, cfg);
  EXPECT_LE(r.total_spent, p.budget + 1e-9);
  EXPECT_EQ(r.rounds.size(), 3u);
  for (const AdaptiveRound& round : r.rounds) {
    for (const diffusion::Seed& s : round.seeds) {
      EXPECT_EQ(s.promotion, round.promotion);
    }
  }
  // Realized adoptions should be positive if any seed was placed.
  if (!r.seeds.empty()) {
    EXPECT_GT(r.realized_sigma, 0.0);
  }
}

TEST(AdaptiveDysim, DeterministicInRealitySeed) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(60.0, 2);
  AdaptiveConfig cfg;
  cfg.base = FastConfig();
  cfg.base.candidates.max_users = 6;
  cfg.base.candidates.max_items = 2;
  AdaptiveResult a = RunAdaptiveDysim(p, cfg);
  AdaptiveResult b = RunAdaptiveDysim(p, cfg);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.realized_sigma, b.realized_sigma);
}

}  // namespace
}  // namespace imdpp::core
