#include <gtest/gtest.h>

#include "cluster/mioa.h"
#include "cluster/nominee_clustering.h"
#include "cluster/target_market.h"
#include "cluster/union_find.h"
#include "graph/graph_builder.h"

namespace imdpp::cluster {
namespace {

TEST(UnionFind, BasicMerge) {
  UnionFind uf(4);
  EXPECT_FALSE(uf.Same(0, 1));
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Same(0, 1));
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Same(0, 3));
}

graph::SocialGraph TwoIslands() {
  // Island A: 0-1-2 strongly linked; island B: 3-4.
  graph::GraphBuilder b(5);
  b.AddUndirectedEdge(0, 1, 0.5);
  b.AddUndirectedEdge(1, 2, 0.5);
  b.AddUndirectedEdge(3, 4, 0.5);
  return b.Build();
}

TEST(Mioa, UnionRegionCoversReachableUsers) {
  graph::SocialGraph g = TwoIslands();
  InfluenceRegion r = UnionInfluenceRegion(g, {0}, 0.2);
  EXPECT_EQ(r.users, (std::vector<graph::UserId>{0, 1, 2}));
  EXPECT_EQ(r.radius_hops, 2);
}

TEST(Mioa, ThresholdShrinksRegion) {
  graph::SocialGraph g = TwoIslands();
  InfluenceRegion r = UnionInfluenceRegion(g, {0}, 0.4);
  EXPECT_EQ(r.users, (std::vector<graph::UserId>{0, 1}));  // 0.25 pruned
}

TEST(Mioa, MultipleSourcesUnion) {
  graph::SocialGraph g = TwoIslands();
  InfluenceRegion r = UnionInfluenceRegion(g, {0, 3}, 0.2);
  EXPECT_EQ(r.users.size(), 5u);
}

TEST(NomineeClustering, SociallyCloseComplementaryMerge) {
  graph::SocialGraph g = TwoIslands();
  std::vector<Nominee> noms{{0, 0}, {1, 1}, {3, 2}};
  // Items 0,1 complementary; 2 unrelated.
  auto net = [](kg::ItemId a, kg::ItemId b) {
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) return 0.8;
    return 0.0;
  };
  ClusteringConfig cfg;
  cfg.merge_threshold = 0.2;
  auto clusters = ClusterNominees(g, noms, net, cfg);
  ASSERT_EQ(clusters.size(), 2u);
  // The island-A pair merged; nominee on island B stayed alone.
  size_t big = clusters[0].size() >= clusters[1].size() ? 0 : 1;
  EXPECT_EQ(clusters[big].size(), 2u);
  EXPECT_EQ(clusters[1 - big].size(), 1u);
}

TEST(NomineeClustering, SubstitutableItemsRepel) {
  graph::SocialGraph g = TwoIslands();
  std::vector<Nominee> noms{{0, 0}, {1, 1}};
  auto net = [](kg::ItemId, kg::ItemId) { return -0.9; };  // substitutable
  ClusteringConfig cfg;
  cfg.merge_threshold = 0.2;
  auto clusters = ClusterNominees(g, noms, net, cfg);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(NomineeClustering, SameItemSameUserNeighborhoodMerges) {
  graph::SocialGraph g = TwoIslands();
  std::vector<Nominee> noms{{0, 0}, {1, 0}};
  auto net = [](kg::ItemId, kg::ItemId) { return 0.0; };
  ClusteringConfig cfg;
  cfg.merge_threshold = 0.2;  // same item counts as net relevance 1
  auto clusters = ClusterNominees(g, noms, net, cfg);
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(NomineeClustering, EmptyInput) {
  graph::SocialGraph g = TwoIslands();
  auto clusters =
      ClusterNominees(g, {}, [](kg::ItemId, kg::ItemId) { return 0.0; }, {});
  EXPECT_TRUE(clusters.empty());
}

TEST(TargetMarket, BuildFromClusters) {
  graph::SocialGraph g = TwoIslands();
  std::vector<std::vector<Nominee>> clusters{{{0, 0}, {1, 1}}, {{3, 2}}};
  MarketPlanConfig cfg;
  cfg.mioa_threshold = 0.2;
  MarketPlan plan = BuildMarketPlan(g, clusters, cfg);
  ASSERT_EQ(plan.markets.size(), 2u);
  EXPECT_EQ(plan.markets[0].users, (std::vector<graph::UserId>{0, 1, 2}));
  EXPECT_EQ(plan.markets[0].items, (std::vector<kg::ItemId>{0, 1}));
  EXPECT_GE(plan.markets[0].diameter, 1);
  EXPECT_EQ(plan.markets[1].users, (std::vector<graph::UserId>{3, 4}));
}

TEST(TargetMarket, OverlapGroups) {
  graph::SocialGraph g = TwoIslands();
  // Two clusters on the same island share users 0,1,2 -> same group.
  std::vector<std::vector<Nominee>> clusters{{{0, 0}}, {{1, 1}}, {{3, 2}}};
  MarketPlanConfig cfg;
  cfg.mioa_threshold = 0.2;
  cfg.overlap_theta = 1;
  MarketPlan plan = BuildMarketPlan(g, clusters, cfg);
  ASSERT_EQ(plan.markets.size(), 3u);
  ASSERT_EQ(plan.groups.size(), 2u);
  // One group holds the two island-A markets, the other holds island B.
  size_t big = plan.groups[0].order.size() == 2 ? 0 : 1;
  EXPECT_EQ(plan.groups[big].order.size(), 2u);
  EXPECT_EQ(plan.groups[1 - big].order.size(), 1u);
}

TEST(TargetMarket, CommonUsersIntersection) {
  TargetMarket a, b;
  a.users = {1, 2, 3, 5};
  b.users = {2, 3, 4};
  EXPECT_EQ(CommonUsers(a, b), 2);
  EXPECT_EQ(CommonUsers(a, a), 4);
}

TEST(TargetMarket, AntagonisticExtentAndOrdering) {
  // Example 1 of the paper: three markets in one group; AE from pairwise
  // substitutable relevance of their items.
  MarketPlan plan;
  plan.markets.resize(3);
  plan.markets[0].items = {0};  // iPad
  plan.markets[1].items = {1};  // iPad (another market)
  plan.markets[2].items = {2, 3};  // AirPods + iPhone
  MarketGroup group;
  group.order = {0, 1, 2};
  plan.groups.push_back(group);
  // r̄S: items 0-2 and 1-2 substitutable at 0.5 (iPad vs iPhone-ish).
  auto rel_s = [](kg::ItemId a, kg::ItemId b) {
    auto pair = [&](kg::ItemId x, kg::ItemId y) {
      return (a == x && b == y) || (a == y && b == x);
    };
    if (pair(0, 2) || pair(1, 2)) return 0.5;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(
      AntagonisticExtent(plan, plan.groups[0], 0, rel_s), 0.5);
  EXPECT_DOUBLE_EQ(
      AntagonisticExtent(plan, plan.groups[0], 2, rel_s), 1.0);
  OrderGroupsByAe(plan, rel_s);
  // Market 2 (AE = 1.0) must come last.
  EXPECT_EQ(plan.groups[0].order.back(), 2);
}

}  // namespace
}  // namespace imdpp::cluster
