// Tests for the unified api:: planner layer: registry round-trip, clean
// unknown-name failure, and a conformance suite every registered planner
// must pass on a hand-built TinyWorld (budget feasibility, schedule
// well-formedness, determinism under a fixed PlannerConfig seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>

#include "api/registry.h"
#include "api/session.h"
#include "data/catalog.h"
#include "data/dataset_registry.h"
#include "diffusion/sigma_backend.h"
#include "tests/test_util.h"
#include "util/status.h"

namespace imdpp::api {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

const char* const kExpectedPlanners[] = {"adaptive", "bgrd", "cr_greedy",
                                         "drhga",    "dysim", "hag",
                                         "opt",      "ps",    "smk"};

PlannerConfig FastConfig() {
  PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.seed = 1234;
  return cfg;
}

/// A 6-user, 2-item world with enough budget for a couple of seeds.
TinyWorld ConformanceWorld() {
  TinyWorldSpec s;
  s.num_items = 2;
  s.cost = 4.0;
  s.budget = 10.0;
  s.num_promotions = 2;
  return MakeWorld(6,
                   {{0, 1, 0.9},
                    {1, 2, 0.8},
                    {2, 3, 0.7},
                    {3, 4, 0.6},
                    {4, 5, 0.5},
                    {0, 2, 0.4}},
                   s);
}

TEST(PlannerRegistry, EveryExpectedNameCreatesARunnablePlanner) {
  for (const char* name : kExpectedPlanners) {
    EXPECT_TRUE(PlannerRegistry::Has(name)) << name;
    std::unique_ptr<Planner> planner = PlannerRegistry::Create(name);
    ASSERT_NE(planner, nullptr) << name;
    EXPECT_EQ(planner->name(), name);
  }
}

TEST(PlannerRegistry, NamesRoundTrip) {
  std::vector<std::string> names = PlannerRegistry::Names();
  EXPECT_EQ(names.size(), std::size(kExpectedPlanners));
  for (const std::string& name : names) {
    EXPECT_NE(PlannerRegistry::Create(name), nullptr) << name;
  }
  // Names() is sorted and duplicate-free.
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PlannerRegistry, UnknownNameFailsCleanly) {
  EXPECT_FALSE(PlannerRegistry::Has("no_such_planner"));
  EXPECT_EQ(PlannerRegistry::Create("no_such_planner"), nullptr);
  EXPECT_EQ(PlannerRegistry::Create(""), nullptr);
}

TEST(PlannerRegistry, UnknownMessageListsEveryRegisteredNameSorted) {
  const std::string msg = PlannerRegistry::UnknownMessage("no_such_planner");
  EXPECT_NE(msg.find("no_such_planner"), std::string::npos) << msg;
  size_t last_pos = 0;
  for (const std::string& name : PlannerRegistry::Names()) {
    const size_t pos = msg.find(" " + name);
    ASSERT_NE(pos, std::string::npos) << name << " missing from: " << msg;
    EXPECT_GT(pos, last_pos) << "names not in sorted order: " << msg;
    last_pos = pos;
  }
}

TEST(DatasetRegistry, UnknownMessageListsEveryRegisteredNameSorted) {
  // The dataset registry mirrors the planner registry's failure contract:
  // a miss names the unknown key and every registered key, sorted.
  const std::string msg =
      data::DatasetRegistry::UnknownMessage("no_such_dataset");
  EXPECT_NE(msg.find("no_such_dataset"), std::string::npos) << msg;
  size_t last_pos = 0;
  for (const std::string& name : data::DatasetRegistry::Names()) {
    const size_t pos = msg.find(" " + name);
    ASSERT_NE(pos, std::string::npos) << name << " missing from: " << msg;
    EXPECT_GT(pos, last_pos) << "names not in sorted order: " << msg;
    last_pos = pos;
  }
  data::Dataset unused;
  const util::Status status =
      data::DatasetRegistry::Make({"no_such_dataset", 1.0, 0}, &unused);
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(status.message(), msg);
}

TEST(SigmaBackendRegistry, EveryExpectedNameCreatesAWorkingBackend) {
  // The σ-backend registry round-trips like the planner registry: every
  // registered name builds a backend whose name() echoes the key.
  TinyWorld w = ConformanceWorld();
  const std::vector<std::string> names =
      diffusion::SigmaBackendRegistry::Names();
  EXPECT_EQ(names, (std::vector<std::string>{"mc", "ris"}));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    EXPECT_TRUE(diffusion::SigmaBackendRegistry::Has(name)) << name;
    diffusion::SigmaBackendSpec spec;
    spec.name = name;
    spec.ris_sketches = 64;
    std::unique_ptr<diffusion::SigmaBackend> backend =
        diffusion::MakeSigmaBackend(spec, w.problem, {}, /*num_samples=*/4,
                                    /*num_threads=*/0, nullptr);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    EXPECT_FALSE(backend->description().empty()) << name;
    // Backends answer estimates out of the box and pair repeated queries.
    const diffusion::SeedGroup seeds = {{0, 0, 1}};
    EXPECT_GE(backend->Sigma(seeds), 0.0) << name;
    EXPECT_DOUBLE_EQ(backend->Sigma(seeds), backend->Sigma(seeds)) << name;
  }
}

TEST(SigmaBackendRegistry, UnknownNameFailsCleanly) {
  EXPECT_FALSE(diffusion::SigmaBackendRegistry::Has("no_such_backend"));
  EXPECT_EQ(diffusion::SigmaBackendRegistry::Create("no_such_backend", {}),
            nullptr);
  EXPECT_EQ(diffusion::SigmaBackendRegistry::Create("", {}), nullptr);
}

TEST(SigmaBackendRegistry, UnknownMessageListsEveryRegisteredNameSorted) {
  const std::string msg =
      diffusion::SigmaBackendRegistry::UnknownMessage("no_such_backend");
  EXPECT_NE(msg.find("no_such_backend"), std::string::npos) << msg;
  size_t last_pos = 0;
  for (const std::string& name : diffusion::SigmaBackendRegistry::Names()) {
    const size_t pos = msg.find(" " + name);
    ASSERT_NE(pos, std::string::npos) << name << " missing from: " << msg;
    EXPECT_GT(pos, last_pos) << "names not in sorted order: " << msg;
    last_pos = pos;
  }
}

TEST(DatasetRegistry, ResolvesCatalogKeysScaleFamilyAndSpecs) {
  data::Dataset toy = data::DatasetRegistry::MakeOrDie({"fig1-toy", 1.0, 0});
  EXPECT_EQ(toy.name, "fig1-toy");
  EXPECT_EQ(toy.NumUsers(), 3);

  data::Dataset scaled = data::DatasetRegistry::MakeOrDie({"scale-48", 1.0, 0});
  EXPECT_EQ(scaled.NumUsers(), 48);
  // The scale multiplier composes with the family's N.
  data::Dataset half = data::DatasetRegistry::MakeOrDie({"scale-48", 0.5, 0});
  EXPECT_EQ(half.NumUsers(), 24);

  // Identical specs are bit-reproducible datasets.
  data::Dataset a = data::DatasetRegistry::MakeOrDie({"yelp-like", 0.1, 0});
  data::Dataset b = data::DatasetRegistry::MakeOrDie({"yelp-like", 0.1, 0});
  EXPECT_EQ(a.NumUsers(), b.NumUsers());
  EXPECT_EQ(a.base_pref, b.base_pref);
  EXPECT_EQ(a.cost, b.cost);
}

class PlannerConformanceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PlannerConformanceTest, FeasibleAndWellFormedOnTinyWorld) {
  TinyWorld w = ConformanceWorld();
  std::unique_ptr<Planner> planner =
      PlannerRegistry::Create(GetParam(), FastConfig());
  ASSERT_NE(planner, nullptr);
  PlanResult r = planner->Plan(w.problem);

  EXPECT_EQ(r.planner, GetParam());
  EXPECT_FALSE(r.seeds.empty());
  // Budget feasibility, and total_cost matches the schedule.
  EXPECT_LE(r.total_cost, w.problem.budget + 1e-9);
  EXPECT_NEAR(r.total_cost, w.problem.TotalCost(r.seeds), 1e-9);
  // Every seed is in range and scheduled within [1, T]; no nominee is
  // seeded twice.
  std::set<std::pair<int, int>> nominees;
  for (const diffusion::Seed& s : r.seeds) {
    EXPECT_GE(s.user, 0);
    EXPECT_LT(s.user, w.problem.NumUsers());
    EXPECT_GE(s.item, 0);
    EXPECT_LT(s.item, w.problem.NumItems());
    EXPECT_GE(s.promotion, 1);
    EXPECT_LE(s.promotion, w.problem.num_promotions);
    EXPECT_TRUE(nominees.insert({s.user, s.item}).second)
        << "duplicate nominee user=" << s.user << " item=" << s.item;
  }
  EXPECT_GE(r.sigma, 0.0);
  EXPECT_GE(r.wall_seconds, 0.0);
  // Per-round diagnostics cover exactly the schedule.
  size_t seeds_in_rounds = 0;
  double spent_in_rounds = 0.0;
  for (const PlanRound& round : r.rounds) {
    seeds_in_rounds += round.seeds.size();
    spent_in_rounds += round.spent;
    for (const diffusion::Seed& s : round.seeds) {
      EXPECT_EQ(s.promotion, round.promotion);
    }
  }
  EXPECT_EQ(seeds_in_rounds, r.seeds.size());
  EXPECT_NEAR(spent_in_rounds, r.total_cost, 1e-9);
}

TEST_P(PlannerConformanceTest, DeterministicForAFixedConfigSeed) {
  TinyWorld w = ConformanceWorld();
  std::unique_ptr<Planner> planner =
      PlannerRegistry::Create(GetParam(), FastConfig());
  ASSERT_NE(planner, nullptr);
  PlanResult a = planner->Plan(w.problem);
  PlanResult b = planner->Plan(w.problem);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredPlanners, PlannerConformanceTest,
                         ::testing::ValuesIn(kExpectedPlanners),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

TEST(CampaignSession, RunsAndComparesPlannersOnAnOwnedDataset) {
  PlannerConfig cfg = FastConfig();
  cfg.candidates.max_users = 8;
  cfg.candidates.max_items = 3;
  CampaignSession session(data::MakeFig1Toy(), /*budget=*/20.0,
                          /*num_promotions=*/2, cfg);

  PlanResult dysim = session.Run("dysim");
  EXPECT_EQ(dysim.planner, "dysim");
  EXPECT_LE(dysim.total_cost, session.problem().budget + 1e-9);
  // Run() re-estimates sigma on the shared engine, so re-scoring the same
  // schedule reproduces it exactly.
  EXPECT_DOUBLE_EQ(dysim.sigma, session.Sigma(dysim.seeds));

  CompareResult results = session.Compare({"bgrd", "ps"});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].planner, "bgrd");
  EXPECT_EQ(results[1].planner, "ps");
  // The comparison carries its problem coordinates for the report layer.
  EXPECT_EQ(results.dataset, "fig1-toy");
  EXPECT_DOUBLE_EQ(results.budget, session.problem().budget);
  EXPECT_EQ(results.num_promotions, session.problem().num_promotions);
}

TEST(CampaignSession, SetProblemWithUnchangedCoordinatesIsANoOp) {
  CampaignSession session(data::MakeFig1Toy(), FastConfig());
  session.SetProblem(20.0, 2);
  diffusion::SigmaBackend* engine = &session.engine();
  // Unchanged coordinates: the shared engine (and with it the warm prep
  // artifacts) survives — no rebuild, no reset.
  session.SetProblem(20.0, 2);
  EXPECT_EQ(&session.engine(), engine);

  // A real change rebuilds the problem.
  session.SetProblem(30.0, 2);
  EXPECT_DOUBLE_EQ(session.problem().budget, 30.0);

  // A mutation through mutable_problem() marks the problem dirty, so a
  // same-coordinate SetProblem must rebuild (restoring the dataset view).
  const double original_importance = session.problem().importance[0];
  session.mutable_problem().importance[0] = original_importance + 7.0;
  session.SetProblem(30.0, 2);
  EXPECT_DOUBLE_EQ(session.problem().importance[0], original_importance);
}

TEST(CampaignSession, SetProblemReconfiguresBudgetAndHorizon) {
  CampaignSession session(data::MakeFig1Toy(), FastConfig());
  session.SetProblem(10.0, 1);
  EXPECT_DOUBLE_EQ(session.problem().budget, 10.0);
  EXPECT_EQ(session.problem().num_promotions, 1);
  PlanResult one = session.Run("bgrd");
  EXPECT_LE(one.total_cost, 10.0 + 1e-9);

  session.SetProblem(30.0, 3);
  EXPECT_DOUBLE_EQ(session.problem().budget, 30.0);
  EXPECT_EQ(session.problem().num_promotions, 3);
  PlanResult three = session.Run("bgrd");
  for (const diffusion::Seed& s : three.seeds) {
    EXPECT_LE(s.promotion, 3);
  }
}

}  // namespace
}  // namespace imdpp::api
