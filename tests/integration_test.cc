// End-to-end comparisons mirroring the paper's headline claims on small
// instances. Everything here is deterministic (hash-based Monte Carlo),
// so these are regression gates, not flaky statistical checks.
#include <gtest/gtest.h>

#include "baselines/bgrd.h"
#include "baselines/drhga.h"
#include "baselines/hag.h"
#include "baselines/opt.h"
#include "baselines/ps.h"
#include "core/dysim.h"
#include "data/catalog.h"

namespace imdpp {
namespace {

struct World {
  data::Dataset ds;
  diffusion::Problem problem;
};

World MakeWorld100(double budget, int promotions) {
  World s{data::MakeSmallAmazonSample(), {}};
  s.problem = s.ds.MakeProblem(budget, promotions);
  return s;
}

core::DysimConfig DysimCfg() {
  core::DysimConfig cfg;
  cfg.selection_samples = 8;
  cfg.eval_samples = 32;
  cfg.candidates.max_users = 12;
  cfg.candidates.max_items = 5;
  return cfg;
}

baselines::BaselineConfig BaseCfg() {
  baselines::BaselineConfig cfg;
  cfg.selection_samples = 8;
  cfg.eval_samples = 32;
  cfg.candidates.max_users = 12;
  cfg.candidates.max_items = 5;
  return cfg;
}

TEST(Integration, DysimBeatsPs) {
  World s = MakeWorld100(100.0, 2);
  core::DysimResult dysim = core::RunDysim(s.problem, DysimCfg());
  baselines::PsConfig pcfg;
  static_cast<baselines::BaselineConfig&>(pcfg) = BaseCfg();
  baselines::BaselineResult ps = baselines::RunPs(s.problem, pcfg);
  EXPECT_GE(dysim.sigma, ps.sigma);
}

TEST(Integration, DysimCompetitiveWithAllBaselines) {
  World s = MakeWorld100(100.0, 2);
  core::DysimResult dysim = core::RunDysim(s.problem, DysimCfg());
  double best_baseline = 0.0;
  best_baseline =
      std::max(best_baseline, baselines::RunBgrd(s.problem, BaseCfg()).sigma);
  best_baseline =
      std::max(best_baseline, baselines::RunHag(s.problem, BaseCfg()).sigma);
  best_baseline =
      std::max(best_baseline, baselines::RunDrhga(s.problem, BaseCfg()).sigma);
  // Dysim should at least match the best greedy baseline up to MC noise.
  EXPECT_GE(dysim.sigma, 0.9 * best_baseline);
}

TEST(Integration, PrunedOptStaysNearHeuristics) {
  // OPT here prunes to the strongest 16 singletons and at most two seeds,
  // so heuristics that buy more cheap seeds can edge past it slightly;
  // it must nevertheless stay in the same ballpark (Fig. 8's regime).
  World s = MakeWorld100(30.0, 2);
  baselines::OptConfig ocfg;
  static_cast<baselines::BaselineConfig&>(ocfg) = BaseCfg();
  ocfg.max_candidates = 16;
  ocfg.max_seeds = 2;
  baselines::BaselineResult opt = baselines::RunOpt(s.problem, ocfg);
  baselines::PsConfig pcfg;
  static_cast<baselines::BaselineConfig&>(pcfg) = BaseCfg();
  baselines::BaselineResult ps = baselines::RunPs(s.problem, pcfg);
  EXPECT_GE(opt.sigma, 0.8 * ps.sigma);
}

TEST(Integration, MorePromotionsHelpDysim) {
  World s1 = MakeWorld100(100.0, 1);
  World s3 = MakeWorld100(100.0, 3);
  core::DysimResult r1 = core::RunDysim(s1.problem, DysimCfg());
  core::DysimResult r3 = core::RunDysim(s3.problem, DysimCfg());
  // The Theorem-5 guard guarantees T=3 can fall back to the T=1-style
  // N_first placement, so it should never be materially worse.
  EXPECT_GE(r3.sigma, 0.85 * r1.sigma);
}

TEST(Integration, ClassroomCampaignRuns) {
  data::Dataset ds = data::MakeClassroom(0);
  diffusion::Problem p = ds.MakeProblem(50.0, 3);
  core::DysimConfig cfg = DysimCfg();
  cfg.candidates.max_users = 0;  // exhaustive over 33 students
  cfg.candidates.max_items = 6;
  core::DysimResult r = core::RunDysim(p, cfg);
  EXPECT_GT(r.sigma, 0.0);
  EXPECT_LE(r.total_cost, 50.0 + 1e-9);
}

TEST(Integration, FrozenDynamicsLowersDysimSpread) {
  // The dynamic perception machinery should help (that is the paper's
  // point): the same planner on the frozen problem yields no more spread
  // when evaluated under its own (frozen) dynamics than the dynamic
  // problem evaluated under dynamic dynamics.
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem dynamic = ds.MakeProblem(100.0, 3);
  diffusion::Problem frozen =
      ds.MakeProblem(100.0, 3, pin::PerceptionParams::FrozenDynamics());
  core::DysimResult rd = core::RunDysim(dynamic, DysimCfg());
  core::DysimResult rf = core::RunDysim(frozen, DysimCfg());
  EXPECT_GE(rd.sigma, rf.sigma * 0.95);
}

}  // namespace
}  // namespace imdpp
