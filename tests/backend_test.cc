// Cross-backend gates for the σ-evaluation seam (ISSUE 7): the "ris"
// sketch backend must track the "mc" reference within a tolerance on
// every catalog dataset (it is a static first-order approximation, so the
// gate is ε-accuracy, not bit-identity), behave like a paired coverage
// estimator (monotone, deterministic), and reuse sketch artifacts through
// the shared cache exactly like the prep:: layer does.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "data/catalog.h"
#include "data/dataset_registry.h"
#include "diffusion/ris_backend.h"
#include "diffusion/sigma_backend.h"
#include "prep/ris_sketch.h"
#include "util/thread_pool.h"

namespace imdpp::diffusion {
namespace {

/// The ε of the accuracy gate: "ris" freezes the dynamics at the initial
/// state, so it is biased low relative to full re-simulation (no
/// perception updates, no association adoptions) — the gate asserts the
/// bias stays a bounded fraction of σ, not that it vanishes.
constexpr double kRelTolerance = 0.8;
/// Sketches per set in this test: enough that sampling noise is small
/// against kRelTolerance on every catalog graph.
constexpr int kSketches = 8192;
constexpr int kMcSamples = 48;

data::Dataset CatalogDataset(const std::string& name) {
  // Scale the synthetic families down for test speed; fixed-size datasets
  // (toy, classrooms, amazon-100) ignore the scale.
  return data::DatasetRegistry::MakeOrDie({name, 0.2, 0});
}

/// A few structurally different seed groups, valid on any problem. Items
/// are picked by importance: an item with w_x = 0 roots no sketches at
/// all (and MC only credits it through associated adoptions), so zero-
/// importance items are not meaningful accuracy probes.
std::vector<SeedGroup> SeedGroupsFor(const Problem& problem) {
  const int n = problem.NumUsers();
  const int m = problem.NumItems();
  int hi = 0;  // argmax-importance item
  for (int x = 1; x < m; ++x) {
    if (problem.importance[static_cast<size_t>(x)] >
        problem.importance[static_cast<size_t>(hi)]) {
      hi = x;
    }
  }
  int other = hi;  // a second positive-importance item, if there is one
  for (int x = 0; x < m; ++x) {
    if (x != hi && problem.importance[static_cast<size_t>(x)] > 0.0) {
      other = x;
      break;
    }
  }
  std::vector<SeedGroup> groups;
  groups.push_back({{0, hi, 1}});
  if (n > 2) {
    groups.push_back({{n / 2, other, 1}});
    groups.push_back({{0, hi, 1}, {n / 3, other, 1}, {n - 1, hi, 1}});
  }
  return groups;
}

std::unique_ptr<SigmaBackend> MakeBackend(const std::string& name,
                                          const Problem& problem,
                                          const CampaignConfig& campaign) {
  SigmaBackendSpec spec;
  spec.name = name;
  spec.ris_sketches = kSketches;
  return MakeSigmaBackend(spec, problem, campaign, kMcSamples,
                          /*num_threads=*/2, util::MakeWorkerPool(2));
}

TEST(RisAccuracyGate, TracksMcWithinToleranceOnEveryCatalogDataset) {
  for (const std::string& name : data::DatasetRegistry::Names()) {
    SCOPED_TRACE(name);
    data::Dataset dataset = CatalogDataset(name);
    Problem problem = dataset.MakeProblem(/*budget=*/100.0,
                                          /*num_promotions=*/2);
    CampaignConfig campaign;
    campaign.base_seed = 20260808;
    std::unique_ptr<SigmaBackend> mc = MakeBackend("mc", problem, campaign);
    std::unique_ptr<SigmaBackend> ris = MakeBackend("ris", problem, campaign);
    for (const SeedGroup& seeds : SeedGroupsFor(problem)) {
      SCOPED_TRACE(seeds.size());
      const double sigma_mc = mc->Sigma(seeds);
      const double sigma_ris = ris->Sigma(seeds);
      EXPECT_GT(sigma_ris, 0.0);
      // Relative gap against the larger of the two (symmetric, and robust
      // when either estimate is small).
      const double denom = std::max({sigma_mc, sigma_ris, 1e-9});
      EXPECT_LE(std::abs(sigma_ris - sigma_mc) / denom, kRelTolerance)
          << "mc=" << sigma_mc << " ris=" << sigma_ris;
    }
  }
}

TEST(RisBackend, MarketRestrictionIsConsistentWithSigma) {
  data::Dataset dataset = CatalogDataset("yelp-like");
  Problem problem = dataset.MakeProblem(/*budget=*/100.0,
                                        /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  std::unique_ptr<SigmaBackend> ris = MakeBackend("ris", problem, campaign);
  std::vector<UserId> everyone(static_cast<size_t>(problem.NumUsers()));
  for (int u = 0; u < problem.NumUsers(); ++u) {
    everyone[static_cast<size_t>(u)] = u;
  }
  const std::vector<UserId> half(everyone.begin(),
                                 everyone.begin() + everyone.size() / 2);
  for (const SeedGroup& seeds : SeedGroupsFor(problem)) {
    const double sigma = ris->Sigma(seeds);
    const MarketEval on_half = ris->EvalMarket(seeds, half);
    const MarketEval on_all = ris->EvalMarket(seeds, everyone);
    // EvalMarket's sigma is the same coverage count as Sigma's.
    EXPECT_DOUBLE_EQ(on_half.sigma, sigma);
    // A market restriction can only shrink σ; the full market recovers it.
    EXPECT_GE(on_half.sigma_market, 0.0);
    EXPECT_LE(on_half.sigma_market, sigma);
    EXPECT_DOUBLE_EQ(on_all.sigma_market, sigma);
    // No likelihood model on sketches.
    EXPECT_DOUBLE_EQ(on_half.pi, 0.0);
  }
}

TEST(RisBackend, PairedCoverageGainsAreMonotone) {
  data::Dataset dataset = data::MakeSmallAmazonSample();
  Problem problem = dataset.MakeProblem(/*budget=*/100.0,
                                        /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  std::unique_ptr<SigmaBackend> ris = MakeBackend("ris", problem, campaign);
  // Growing a seed group never loses coverage: every marginal gain on the
  // shared sketch set is >= 0 (the paired-estimate contract).
  SeedGroup group;
  double prev = 0.0;
  for (int u = 0; u < std::min(4, problem.NumUsers()); ++u) {
    group.push_back({u, 0, 1});
    const double sigma = ris->Sigma(group);
    EXPECT_GE(sigma, prev) << "seed " << u;
    prev = sigma;
  }
  // And identical queries are bit-identical (fresh backend, same spec).
  std::unique_ptr<SigmaBackend> again = MakeBackend("ris", problem, campaign);
  EXPECT_EQ(again->Sigma(group), prev);
}

TEST(RisSketchCache, SharedCacheBuildsOnceAndReKeysOnChange) {
  data::Dataset dataset = data::MakeSmallAmazonSample();
  Problem problem = dataset.MakeProblem(/*budget=*/100.0,
                                        /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  auto cache = std::make_shared<prep::RisSketchCache>();
  SigmaBackendSpec spec;
  spec.name = "ris";
  spec.ris_sketches = 512;
  spec.sketch_cache = cache;
  const SeedGroup seeds = {{0, 0, 1}};

  RisBackend first(problem, campaign, kMcSamples, /*num_threads=*/0, nullptr,
                   spec);
  RisBackend second(problem, campaign, kMcSamples, /*num_threads=*/0, nullptr,
                    spec);
  const double a = first.Sigma(seeds);
  const double b = second.Sigma(seeds);
  EXPECT_EQ(a, b);  // same artifact, same answer
  EXPECT_EQ(first.sketch_builds(), 1);
  EXPECT_EQ(second.sketch_builds(), 0);
  EXPECT_EQ(second.sketch_reuses(), 1);
  EXPECT_EQ(cache->builds(), 1);
  EXPECT_EQ(cache->reuses(), 1);

  // A different base seed is a different artifact: content-keyed re-build,
  // not a stale hit.
  CampaignConfig reseeded = campaign;
  reseeded.base_seed = 7;
  RisBackend third(problem, reseeded, kMcSamples, /*num_threads=*/0, nullptr,
                   spec);
  (void)third.Sigma(seeds);
  EXPECT_EQ(third.sketch_builds(), 1);
  EXPECT_EQ(cache->builds(), 2);
}

TEST(RisSketchSet, KeyCoversImportancesAndSamplingKnobs) {
  data::Dataset dataset = data::MakeSmallAmazonSample();
  Problem problem = dataset.MakeProblem(/*budget=*/100.0,
                                        /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  const uint64_t base = prep::RisSketchKey(problem, campaign, 512);
  EXPECT_EQ(prep::RisSketchKey(problem, campaign, 512), base);
  EXPECT_NE(prep::RisSketchKey(problem, campaign, 1024), base);
  CampaignConfig reseeded = campaign;
  reseeded.base_seed = 7;
  EXPECT_NE(prep::RisSketchKey(problem, reseeded, 512), base);
  Problem reweighted = problem;
  reweighted.importance[0] += 1.0;
  EXPECT_NE(prep::RisSketchKey(reweighted, campaign, 512), base);
  // Budget and horizon are deliberately excluded: sketch sets survive
  // budget/promotion sweeps.
  Problem rebudgeted = problem;
  rebudgeted.budget += 50.0;
  rebudgeted.num_promotions += 3;
  EXPECT_EQ(prep::RisSketchKey(rebudgeted, campaign, 512), base);
}

}  // namespace
}  // namespace imdpp::diffusion
