#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "graph/graph_builder.h"
#include "graph/topology.h"

namespace imdpp::graph {
namespace {

SocialGraph Line3() {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.25);
  return b.Build();
}

TEST(GraphBuilder, BasicCsr) {
  SocialGraph g = Line3();
  EXPECT_EQ(g.NumUsers(), 3);
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.OutDegree(2), 0);
  EXPECT_EQ(g.InDegree(2), 1);
  EXPECT_EQ(g.OutEdges(0)[0].to, 1);
  EXPECT_FLOAT_EQ(g.OutEdges(0)[0].weight, 0.5f);
  EXPECT_EQ(g.InEdges(1)[0].to, 0);  // in-edge reports the source
}

TEST(GraphBuilder, SelfLoopIgnored) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 0.5);
  b.AddEdge(0, 1, 0.5);
  SocialGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1);
}

TEST(GraphBuilder, DuplicateKeepsMaxWeight) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.2);
  b.AddEdge(0, 1, 0.7);
  b.AddEdge(0, 1, 0.4);
  SocialGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_FLOAT_EQ(g.OutEdges(0)[0].weight, 0.7f);
}

TEST(GraphBuilder, UndirectedAddsBoth) {
  GraphBuilder b(2);
  b.AddUndirectedEdge(0, 1, 0.3);
  SocialGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2);
  EXPECT_DOUBLE_EQ(g.BaseWeight(0, 1), g.BaseWeight(1, 0));
}

TEST(SocialGraph, BaseWeightAbsentEdge) {
  SocialGraph g = Line3();
  EXPECT_DOUBLE_EQ(g.BaseWeight(0, 2), 0.0);
  EXPECT_FALSE(g.HasEdge(2, 0));
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(SocialGraph, AverageInfluence) {
  SocialGraph g = Line3();
  EXPECT_NEAR(g.AverageInfluenceStrength(), 0.375, 1e-9);
}

TEST(BfsHops, DistancesAndTruncation) {
  SocialGraph g = Line3();
  std::vector<int> d = BfsHops(g, 0, 10);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  std::vector<int> d1 = BfsHops(g, 0, 1);
  EXPECT_EQ(d1[2], kUnreachable);
}

TEST(BfsHops, DirectionalityRespected) {
  SocialGraph g = Line3();
  std::vector<int> d = BfsHops(g, 2, 10);
  EXPECT_EQ(d[0], kUnreachable);
}

TEST(UndirectedHopDistance, IgnoresDirection) {
  SocialGraph g = Line3();
  EXPECT_EQ(UndirectedHopDistance(g, 2, 0, 10), 2);
  EXPECT_EQ(UndirectedHopDistance(g, 0, 0, 10), 0);
}

TEST(UndirectedHopDistance, Truncates) {
  SocialGraph g = Line3();
  EXPECT_EQ(UndirectedHopDistance(g, 0, 2, 1), kUnreachable);
}

TEST(MaxInfluencePaths, PicksBestPath) {
  // Two routes 0->2: direct (0.1) and via 1 (0.5*0.5 = 0.25).
  GraphBuilder b(3);
  b.AddEdge(0, 2, 0.1);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.5);
  SocialGraph g = b.Build();
  InfluencePaths p = MaxInfluencePaths(g, 0, 0.05);
  ASSERT_EQ(p.users.size(), 3u);
  for (size_t i = 0; i < p.users.size(); ++i) {
    if (p.users[i] == 2) {
      EXPECT_NEAR(p.path_prob[i], 0.25, 1e-9);
      EXPECT_EQ(p.hops[i], 2);
    }
  }
}

TEST(MaxInfluencePaths, ThresholdPrunes) {
  SocialGraph g = Line3();  // probs: 1, 0.5, 0.125
  InfluencePaths p = MaxInfluencePaths(g, 0, 0.3);
  EXPECT_EQ(p.users.size(), 2u);  // node 2 at 0.125 pruned
}

TEST(MaxInfluencePaths, SourceAlwaysIncluded) {
  GraphBuilder b(1);
  SocialGraph g = b.Build();
  InfluencePaths p = MaxInfluencePaths(g, 0, 0.9);
  ASSERT_EQ(p.users.size(), 1u);
  EXPECT_EQ(p.users[0], 0);
  EXPECT_DOUBLE_EQ(p.path_prob[0], 1.0);
}

TEST(WeakComponents, TwoIslands) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(3, 2, 0.5);
  SocialGraph g = b.Build();
  int n = 0;
  std::vector<int> comp = WeakComponents(g, &n);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(SubsetEccentricity, RestrictsToMembers) {
  // 0-1-2-3 chain; subset {0,1,3}: 3 unreachable inside subset -> ecc 1.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.5);
  b.AddEdge(2, 3, 0.5);
  SocialGraph g = b.Build();
  EXPECT_EQ(SubsetEccentricity(g, 0, {0, 1, 2, 3}, 10), 3);
  EXPECT_EQ(SubsetEccentricity(g, 0, {0, 1, 3}, 10), 1);
}

TEST(Topology, PreferentialAttachmentShape) {
  TopologyConfig cfg;
  cfg.num_users = 200;
  cfg.seed = 3;
  SocialGraph g = MakePreferentialAttachment(cfg, 3);
  EXPECT_EQ(g.NumUsers(), 200);
  EXPECT_GT(g.NumEdges(), 400);
  // Heavy tail: max degree well above the mean.
  int max_deg = 0;
  int64_t total = 0;
  for (UserId u = 0; u < g.NumUsers(); ++u) {
    max_deg = std::max(max_deg, g.OutDegree(u) + g.InDegree(u));
    total += g.OutDegree(u);
  }
  EXPECT_GT(max_deg, 3 * static_cast<int>(total / g.NumUsers()));
}

TEST(Topology, PreferentialAttachmentDeterministic) {
  TopologyConfig cfg;
  cfg.num_users = 50;
  cfg.seed = 9;
  SocialGraph a = MakePreferentialAttachment(cfg, 2);
  SocialGraph b = MakePreferentialAttachment(cfg, 2);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (UserId u = 0; u < a.NumUsers(); ++u) {
    EXPECT_EQ(a.OutDegree(u), b.OutDegree(u));
  }
}

TEST(Topology, SmallWorldDegrees) {
  TopologyConfig cfg;
  cfg.num_users = 100;
  cfg.seed = 4;
  SocialGraph g = MakeSmallWorld(cfg, 3, 0.1);
  EXPECT_EQ(g.NumUsers(), 100);
  // Ring lattice baseline: ~6 incident stored directions per user.
  EXPECT_GT(g.NumEdges(), 500);
}

TEST(Topology, CommunityGraphDenserInside) {
  TopologyConfig cfg;
  cfg.num_users = 60;
  cfg.seed = 5;
  SocialGraph g = MakeCommunityGraph(cfg, 3, 0.5, 0.01);
  int64_t inside = 0, across = 0;
  auto block = [&](UserId u) { return (u * 3) / 60; };
  for (UserId u = 0; u < g.NumUsers(); ++u) {
    for (const Edge& e : g.OutEdges(u)) {
      (block(u) == block(e.to) ? inside : across) += 1;
    }
  }
  EXPECT_GT(inside, 5 * across);
}

TEST(Topology, WeightsWithinCaps) {
  TopologyConfig cfg;
  cfg.num_users = 80;
  cfg.mean_influence = 0.5;
  cfg.seed = 6;
  SocialGraph g = MakePreferentialAttachment(cfg, 3);
  for (UserId u = 0; u < g.NumUsers(); ++u) {
    for (const Edge& e : g.OutEdges(u)) {
      EXPECT_GE(e.weight, 0.01f);
      EXPECT_LE(e.weight, 0.95f);
    }
  }
}

}  // namespace
}  // namespace imdpp::graph
