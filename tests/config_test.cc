// Tests for the config subsystem: JSON round-trip and malformed-input
// errors (util/json), PlannerConfig/dataset-spec mapping, flag-file
// precedence, and sweep-grid expansion counts (config/config_loader).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "config/config_loader.h"
#include "data/dataset_registry.h"
#include "util/json.h"
#include "util/status.h"

namespace imdpp {
namespace {

// ------------------------------------------------------------- util/json

TEST(Json, RoundTripsEveryValueKind) {
  const char* text =
      R"({"null": null, "flag": true, "off": false, "int": -42,)"
      R"( "pi": 3.141592653589793, "tiny": 1e-9,)"
      R"( "text": "a\"b\\c\nA", "arr": [1, 2, [3]],)"
      R"( "obj": {"nested": {"deep": []}}})";
  util::Json v;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(text, &v, &error)) << error;

  // Dump → reparse → identical value (numbers bit-exact).
  util::Json again;
  ASSERT_TRUE(util::Json::Parse(v.Dump(), &again, &error)) << error;
  EXPECT_EQ(v, again);
  ASSERT_TRUE(util::Json::Parse(v.Dump(2), &again, &error)) << error;
  EXPECT_EQ(v, again);

  EXPECT_TRUE(v.Find("null")->is_null());
  EXPECT_TRUE(v.Find("flag")->AsBool());
  EXPECT_FALSE(v.Find("off")->AsBool());
  EXPECT_EQ(v.Find("int")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(v.Find("pi")->AsDouble(), 3.141592653589793);
  EXPECT_DOUBLE_EQ(v.Find("tiny")->AsDouble(), 1e-9);
  EXPECT_EQ(v.Find("text")->AsString(), "a\"b\\c\nA");
  EXPECT_EQ(v.Find("arr")->size(), 3u);
  EXPECT_EQ((*v.Find("arr"))[2][0].AsInt(), 3);
}

TEST(Json, ObjectsPreserveInsertionOrderForByteStableOutput) {
  util::Json obj = util::Json::Object();
  obj.Set("zebra", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", 3);
  EXPECT_EQ(obj.Dump(), R"({"zebra":1,"alpha":2,"mid":3})");
  // Overwriting keeps the original slot.
  obj.Set("alpha", 9);
  EXPECT_EQ(obj.Dump(), R"({"zebra":1,"alpha":9,"mid":3})");
}

TEST(Json, NumbersPrintShortestRoundTrippingForm) {
  EXPECT_EQ(util::Json(42).Dump(), "42");
  EXPECT_EQ(util::Json(-3.5).Dump(), "-3.5");
  EXPECT_EQ(util::Json(0.1).Dump(), "0.1");
  double v = 2.0 / 3.0;
  util::Json parsed;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(util::Json(v).Dump(), &parsed, &error));
  EXPECT_EQ(parsed.AsDouble(), v);  // bit-exact
}

TEST(Json, MalformedInputsFailWithPosition) {
  struct Case {
    const char* text;
    const char* fragment;  ///< expected substring of the error
  };
  const Case cases[] = {
      {"{", "unterminated"},
      {"[1, 2", "unterminated"},
      {"{\"a\" 1}", "expected ':'"},
      {"{\"a\": 1,, }", "expected string"},
      {"tru", "invalid literal"},
      {"\"abc", "unterminated string"},
      {"1.2.3", "trailing characters"},
      {"{\"a\": 1} x", "trailing characters"},
      {"[1e]", "invalid number"},
      {"{\"a\": 1, \"a\": 2}", "duplicate object key"},
      {"", "unexpected end"},
  };
  for (const Case& c : cases) {
    util::Json v;
    std::string error;
    EXPECT_FALSE(util::Json::Parse(c.text, &v, &error)) << c.text;
    EXPECT_NE(error.find(c.fragment), std::string::npos)
        << "input: " << c.text << " error: " << error;
    // Errors carry a line:col prefix.
    EXPECT_NE(error.find(':'), std::string::npos) << error;
  }
}

TEST(Json, LineCommentsAreAllowedInConfigs) {
  const char* text = "// header\n{\n  \"a\": 1 // trailing\n}\n";
  util::Json v;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(text, &v, &error)) << error;
  EXPECT_EQ(v.Find("a")->AsInt(), 1);
}

// --------------------------------------------------------- planner config

TEST(ConfigLoader, AppliesPartialPlannerConfigOverrides) {
  const char* text = R"({
    "selection_samples": 7,
    "seed": "0xdeadbeef",
    "candidates": {"max_users": 12},
    "campaign": {"model": "lt", "max_steps": 9},
    "market": {"overlap_theta": 4},
    "dysim": {"order": "pf", "use_item_priority": false},
    "ps": {"max_hops": 3}
  })";
  util::Json obj;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(text, &obj, &error)) << error;
  api::PlannerConfig cfg;
  const int default_eval_samples = cfg.eval_samples;
  const util::Status applied = config::ApplyPlannerConfigJson(obj, &cfg);
  ASSERT_TRUE(applied.ok()) << applied.ToString();

  EXPECT_EQ(cfg.selection_samples, 7);
  EXPECT_EQ(cfg.eval_samples, default_eval_samples);  // untouched
  EXPECT_EQ(cfg.seed, 0xdeadbeefULL);
  EXPECT_EQ(cfg.candidates.max_users, 12);
  EXPECT_EQ(cfg.candidates.max_items, 0);  // untouched
  EXPECT_EQ(cfg.campaign.model, diffusion::DiffusionModel::kLinearThreshold);
  EXPECT_EQ(cfg.campaign.max_steps, 9);
  EXPECT_EQ(cfg.market.overlap_theta, 4);
  EXPECT_EQ(cfg.dysim.order, core::MarketOrderMetric::kProfitability);
  EXPECT_FALSE(cfg.dysim.use_item_priority);
  EXPECT_TRUE(cfg.dysim.use_target_markets);  // untouched
  EXPECT_EQ(cfg.ps.max_hops, 3);
}

TEST(ConfigLoader, ParsesPrepCacheKnobs) {
  util::Json obj;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(
      R"({"prep": {"cache": false, "build_threads": 3}})", &obj, &error));
  api::PlannerConfig cfg;
  const util::Status applied = config::ApplyPlannerConfigJson(obj, &cfg);
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_FALSE(cfg.prep.cache);
  EXPECT_EQ(cfg.prep.build_threads, 3);

  ASSERT_TRUE(util::Json::Parse(R"({"prep": {"cash": true}})", &obj, &error));
  const util::Status bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("prep"), std::string::npos) << bad.ToString();
}

TEST(ConfigLoader, ParsesRobustnessKnobs) {
  util::Json obj;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(
      R"({"deadline_ms": 1500, "eval": {"fallback_backend": "mc"}})", &obj,
      &error));
  api::PlannerConfig cfg;
  const util::Status applied = config::ApplyPlannerConfigJson(obj, &cfg);
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_EQ(cfg.deadline_ms, 1500);
  EXPECT_EQ(cfg.eval.fallback_backend, "mc");

  ASSERT_TRUE(util::Json::Parse(R"({"deadline_ms": -5})", &obj, &error));
  util::Status bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("deadline_ms"), std::string::npos)
      << bad.ToString();

  // A typo'd fallback backend fails at load time with the key listing,
  // exactly like eval.backend.
  ASSERT_TRUE(util::Json::Parse(R"({"eval": {"fallback_backend": "zzz"}})",
                                &obj, &error));
  bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("zzz"), std::string::npos) << bad.ToString();
}

// ISSUE 10: the eval.adaptive.* knobs parse, validate their ranges, and
// reject typos — racing must be impossible to half-configure silently.
TEST(ConfigLoader, ParsesAdaptiveKnobs) {
  util::Json obj;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(
      R"({"eval": {"adaptive": {"enabled": true, "delta": 0.02,
                                "block_samples": 4, "min_samples": 6,
                                "max_samples": 12}}})",
      &obj, &error));
  api::PlannerConfig cfg;
  const util::Status applied = config::ApplyPlannerConfigJson(obj, &cfg);
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_TRUE(cfg.eval.adaptive.enabled);
  EXPECT_EQ(cfg.eval.adaptive.delta, 0.02);
  EXPECT_EQ(cfg.eval.adaptive.block_samples, 4);
  EXPECT_EQ(cfg.eval.adaptive.min_samples, 6);
  EXPECT_EQ(cfg.eval.adaptive.max_samples, 12);

  // δ is a probability: the open interval (0, 1), nothing else.
  ASSERT_TRUE(util::Json::Parse(R"({"eval": {"adaptive": {"delta": 0.0}}})",
                                &obj, &error));
  util::Status bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("eval.adaptive.delta"), std::string::npos)
      << bad.ToString();
  ASSERT_TRUE(util::Json::Parse(R"({"eval": {"adaptive": {"delta": 1.5}}})",
                                &obj, &error));
  EXPECT_EQ(config::ApplyPlannerConfigJson(obj, &cfg).code(),
            util::StatusCode::kInvalidArgument);

  ASSERT_TRUE(util::Json::Parse(
      R"({"eval": {"adaptive": {"block_samples": 0}}})", &obj, &error));
  EXPECT_EQ(config::ApplyPlannerConfigJson(obj, &cfg).code(),
            util::StatusCode::kInvalidArgument);
  ASSERT_TRUE(util::Json::Parse(
      R"({"eval": {"adaptive": {"min_samples": -1}}})", &obj, &error));
  EXPECT_EQ(config::ApplyPlannerConfigJson(obj, &cfg).code(),
            util::StatusCode::kInvalidArgument);
  // max_samples = 0 means "no budget", so only negatives are rejected.
  ASSERT_TRUE(util::Json::Parse(
      R"({"eval": {"adaptive": {"max_samples": -4}}})", &obj, &error));
  EXPECT_EQ(config::ApplyPlannerConfigJson(obj, &cfg).code(),
            util::StatusCode::kInvalidArgument);

  // Typos inside the nested object fail loudly like everywhere else.
  ASSERT_TRUE(util::Json::Parse(
      R"({"eval": {"adaptive": {"blok_samples": 4}}})", &obj, &error));
  bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("eval.adaptive"), std::string::npos)
      << bad.ToString();
  EXPECT_NE(bad.message().find("blok_samples"), std::string::npos)
      << bad.ToString();
}

TEST(ConfigLoader, RejectsUnknownAndMistypedKnobs) {
  api::PlannerConfig cfg;
  util::Json obj;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(R"({"selektion_samples": 7})", &obj, &error));
  util::Status bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("selektion_samples"), std::string::npos)
      << bad.ToString();

  ASSERT_TRUE(util::Json::Parse(R"({"eval_samples": "many"})", &obj, &error));
  bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("eval_samples"), std::string::npos)
      << bad.ToString();

  ASSERT_TRUE(
      util::Json::Parse(R"({"dysim": {"order": "zzz"}})", &obj, &error));
  bad = config::ApplyPlannerConfigJson(obj, &cfg);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("dysim.order"), std::string::npos)
      << bad.ToString();
}

// ---------------------------------------------------------- dataset specs

TEST(ConfigLoader, ParsesDatasetSpecStrings) {
  data::DatasetSpec spec = data::ParseDatasetSpec("yelp-like@0.5");
  EXPECT_EQ(spec.name, "yelp-like");
  EXPECT_DOUBLE_EQ(spec.scale, 0.5);

  spec = data::ParseDatasetSpec("fig1-toy");
  EXPECT_EQ(spec.name, "fig1-toy");
  EXPECT_DOUBLE_EQ(spec.scale, 1.0);
}

TEST(ConfigLoader, DatasetSpecFromJsonObject) {
  util::Json obj;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(
      R"({"name": "amazon-like", "scale": 0.25, "seed": 99,)"
      R"( "config": {"eval_samples": 8}})",
      &obj, &error));
  data::DatasetSpec spec;
  util::Json overrides;
  const util::Status parsed = config::DatasetSpecFromJson(obj, &spec,
                                                          &overrides);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();
  EXPECT_EQ(spec.name, "amazon-like");
  EXPECT_DOUBLE_EQ(spec.scale, 0.25);
  EXPECT_EQ(spec.seed, 99u);
  api::PlannerConfig cfg;
  const util::Status applied = config::ApplyPlannerConfigJson(overrides,
                                                              &cfg);
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_EQ(cfg.eval_samples, 8);
}

TEST(DatasetRegistry, SyntheticSpecFileRoundTrip) {
  util::Json obj;
  std::string error;
  ASSERT_TRUE(util::Json::Parse(
      R"({"name": "my-world", "num_users": 17, "num_items": 9,)"
      R"( "topology": "small-world", "importance": "uniform",)"
      R"( "types": {"item": "GADGET"}})",
      &obj, &error));
  data::SyntheticSpec spec;
  const util::Status applied = data::ApplySyntheticSpecJson(obj, &spec);
  ASSERT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_EQ(spec.name, "my-world");
  EXPECT_EQ(spec.num_users, 17);
  EXPECT_EQ(spec.num_items, 9);
  EXPECT_EQ(spec.topology, data::SocialTopology::kSmallWorld);
  EXPECT_EQ(spec.importance, data::ImportanceKind::kUniformRandom);
  EXPECT_EQ(spec.types.item, "GADGET");

  ASSERT_TRUE(util::Json::Parse(R"({"num_userz": 17})", &obj, &error));
  const util::Status bad = data::ApplySyntheticSpecJson(obj, &spec);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("num_userz"), std::string::npos)
      << bad.ToString();
}

// -------------------------------------------------------------- flag files

class FlagFileTest : public ::testing::Test {
 protected:
  std::string WriteTempFile(const std::string& name,
                            const std::string& content) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
  }
};

TEST_F(FlagFileTest, SplicesTokensAndLaterFlagsWin) {
  const std::string path = WriteTempFile(
      "imdpp_flags.txt",
      "# effort preset\n--budget 250 --promotions 4\n--planner bgrd\n");
  config::ParsedArgs args;
  // Command-line --budget comes AFTER the flag file → overrides it;
  // --promotions comes from the file alone.
  util::Status parsed = config::ParseArgs(
      {"plan", "--flagfile", path, "--budget", "300"}, &args);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();
  EXPECT_EQ(args.command, "plan");
  EXPECT_EQ(args.GetOr("budget", ""), "300");
  EXPECT_EQ(args.GetOr("promotions", ""), "4");
  EXPECT_EQ(args.GetOr("planner", ""), "bgrd");

  // Flags BEFORE the flag file are overridden by it.
  parsed = config::ParseArgs(
      {"plan", "--planner", "dysim", "--flagfile=" + path}, &args);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();
  EXPECT_EQ(args.GetOr("planner", ""), "bgrd");
}

TEST_F(FlagFileTest, MissingFlagFileFails) {
  config::ParsedArgs args;
  const util::Status parsed =
      config::ParseArgs({"plan", "--flagfile", "/no/such/file"}, &args);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.message().find("/no/such/file"), std::string::npos)
      << parsed.ToString();
}

TEST(ParseArgs, SupportsEqualsFormAndBareSwitches) {
  config::ParsedArgs args;
  const util::Status parsed = config::ParseArgs(
      {"sweep", "--config=x.json", "--timings", "--quiet"}, &args);
  ASSERT_TRUE(parsed.ok()) << parsed.ToString();
  EXPECT_EQ(args.command, "sweep");
  EXPECT_EQ(args.GetOr("config", ""), "x.json");
  EXPECT_TRUE(args.Has("timings"));
  EXPECT_TRUE(args.Has("quiet"));
  EXPECT_FALSE(args.Has("help"));
}

// ------------------------------------------------------------ sweep grids

util::Json ParseOrDie(const std::string& text) {
  util::Json v;
  std::string error;
  EXPECT_TRUE(util::Json::Parse(text, &v, &error)) << error;
  return v;
}

TEST(SweepSpec, ExpandsTheFullCrossProduct) {
  config::SweepSpec spec;
  const util::Status loaded = config::LoadSweepSpec(ParseOrDie(R"({
    "name": "grid",
    "datasets": ["fig1-toy", "yelp-like@0.2"],
    "planners": ["dysim", "bgrd", "ps"],
    "budgets": [100, 200],
    "promotions": [2, 5],
    "thetas": [0, 2],
    "threads": [0, 2],
    "config": {"selection_samples": 4}
  })"),
                                                   &spec);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  std::vector<config::SweepPoint> points;
  const util::Status expanded = config::ExpandSweep(spec, &points);
  ASSERT_TRUE(expanded.ok()) << expanded.ToString();
  // 2 datasets x 2 promotions x 2 budgets x 2 thetas x 2 threads x 3
  // planners.
  EXPECT_EQ(points.size(), 2u * 2 * 2 * 2 * 2 * 3);
  // Planners innermost, datasets outermost.
  EXPECT_EQ(points[0].dataset.name, "fig1-toy");
  EXPECT_EQ(points[0].planner, "dysim");
  EXPECT_EQ(points[1].planner, "bgrd");
  EXPECT_EQ(points[2].planner, "ps");
  EXPECT_EQ(points.back().dataset.name, "yelp-like");
  EXPECT_DOUBLE_EQ(points.back().dataset.scale, 0.2);
  // Axis values land in the resolved configs.
  EXPECT_EQ(points[0].config.selection_samples, 4);
  EXPECT_EQ(points[0].config.market.overlap_theta, 0);
  EXPECT_EQ(points[0].config.num_threads, 0);
  EXPECT_EQ(points.back().config.market.overlap_theta, 2);
  EXPECT_EQ(points.back().config.num_threads, 2);
}

TEST(SweepSpec, OmittedAxesCollapseToOnePoint) {
  config::SweepSpec spec;
  const util::Status loaded = config::LoadSweepSpec(ParseOrDie(R"({
    "datasets": ["fig1-toy"],
    "planners": ["dysim"],
    "budgets": [50],
    "promotions": [3]
  })"),
                                                   &spec);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  std::vector<config::SweepPoint> points;
  const util::Status expanded = config::ExpandSweep(spec, &points);
  ASSERT_TRUE(expanded.ok()) << expanded.ToString();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].theta, -1);  // sentinel: keep the config's theta
  EXPECT_EQ(points[0].config.market.overlap_theta,
            api::PlannerConfig{}.market.overlap_theta);
}

TEST(SweepSpec, PerAxisOverridesApplyInOrder) {
  config::SweepSpec spec;
  const util::Status loaded = config::LoadSweepSpec(ParseOrDie(R"({
    "datasets": [
      {"name": "fig1-toy", "config": {"eval_samples": 10}},
      "yelp-like@0.2"
    ],
    "planners": [
      "dysim",
      {"planner": "bgrd", "config": {"eval_samples": 99, "seed": 7}}
    ],
    "budgets": [100],
    "promotions": [2],
    "config": {"eval_samples": 20, "seed": 1}
  })"),
                                                   &spec);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  std::vector<config::SweepPoint> points;
  const util::Status expanded = config::ExpandSweep(spec, &points);
  ASSERT_TRUE(expanded.ok()) << expanded.ToString();
  ASSERT_EQ(points.size(), 4u);
  // fig1-toy/dysim: dataset override wins over base.
  EXPECT_EQ(points[0].config.eval_samples, 10);
  EXPECT_EQ(points[0].config.seed, 1u);
  // fig1-toy/bgrd: planner override wins over dataset override.
  EXPECT_EQ(points[1].config.eval_samples, 99);
  EXPECT_EQ(points[1].config.seed, 7u);
  // yelp/dysim: base alone.
  EXPECT_EQ(points[2].config.eval_samples, 20);
}

TEST(SweepSpec, PerDatasetPlannerSubsets) {
  config::SweepSpec spec;
  const util::Status loaded = config::LoadSweepSpec(ParseOrDie(R"({
    "datasets": [
      "fig1-toy",
      {"name": "yelp-like", "scale": 0.2, "planners": ["dysim", "ps"]}
    ],
    "planners": ["dysim", "bgrd", "hag", "ps"],
    "budgets": [100, 200],
    "promotions": [2]
  })"),
                                                   &spec);
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  std::vector<config::SweepPoint> points;
  const util::Status expanded = config::ExpandSweep(spec, &points);
  ASSERT_TRUE(expanded.ok()) << expanded.ToString();
  // fig1-toy: 2 budgets x 4 planners; yelp: 2 budgets x 2 planners.
  EXPECT_EQ(points.size(), 2u * 4 + 2u * 2);
  size_t yelp_points = 0;
  for (const config::SweepPoint& p : points) {
    if (p.dataset.name == "yelp-like") {
      ++yelp_points;
      EXPECT_TRUE(p.planner == "dysim" || p.planner == "ps") << p.planner;
    }
  }
  EXPECT_EQ(yelp_points, 4u);
}

TEST(SweepSpec, MissingRequiredAxesFail) {
  config::SweepSpec spec;
  util::Status bad = config::LoadSweepSpec(
      ParseOrDie(R"({"datasets": ["fig1-toy"], "planners": ["dysim"],
                     "budgets": [10]})"),
      &spec);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("promotions"), std::string::npos)
      << bad.ToString();
  bad = config::LoadSweepSpec(
      ParseOrDie(R"({"planners": ["dysim"], "budgets": [10],
                     "promotions": [1]})"),
      &spec);
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("datasets"), std::string::npos)
      << bad.ToString();
}

}  // namespace
}  // namespace imdpp
