// Edge cases and failure injection: degenerate graphs, malformed problems
// (death tests on the validation layer), alternative diffusion model end
// to end, and empty-input behaviour of every stage.
#include <gtest/gtest.h>

#include "baselines/opt.h"
#include "core/adaptive_dysim.h"
#include "core/dysim.h"
#include "data/catalog.h"
#include "tests/test_util.h"

namespace imdpp {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

TEST(Robustness, EdgelessGraphOnlySeedsAdopt) {
  TinyWorld w = MakeWorld(5, {}, {});
  diffusion::CampaignSimulator sim(w.problem, {});
  diffusion::SampleOutcome o = sim.RunSample({{0, 0, 1}, {3, 0, 1}}, 0);
  EXPECT_DOUBLE_EQ(o.sigma, 2.0);
}

TEST(Robustness, SingleUserProblem) {
  TinyWorld w = MakeWorld(1, {}, {});
  diffusion::MonteCarloEngine engine(w.problem, {}, 4);
  EXPECT_DOUBLE_EQ(engine.Sigma({{0, 0, 1}}), 1.0);
}

TEST(Robustness, SeedsInEveryPromotionSlot) {
  TinyWorldSpec s;
  s.num_promotions = 6;
  TinyWorld w = MakeWorld(8, {{0, 1, 0.4}, {2, 3, 0.4}, {4, 5, 0.4}}, s);
  diffusion::SeedGroup seeds;
  for (int t = 1; t <= 6; ++t) {
    seeds.push_back({static_cast<graph::UserId>(t % 8), 0, t});
  }
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  EXPECT_GT(engine.Sigma(seeds), 0.0);
}

TEST(RobustnessDeath, ProblemValidateCatchesBadShapes) {
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, {});
  diffusion::Problem broken = w.problem;
  broken.base_pref.pop_back();
  EXPECT_DEATH(broken.Validate(), "base_pref");
}

TEST(RobustnessDeath, ProblemValidateCatchesBadRanges) {
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, {});
  diffusion::Problem broken = w.problem;
  broken.cost[0] = 0.0f;  // costs must be positive
  EXPECT_DEATH(broken.Validate(), "0.0f");
}

TEST(RobustnessDeath, GraphBuilderRejectsOutOfRange) {
  graph::GraphBuilder b(2);
  EXPECT_DEATH(b.AddEdge(0, 7, 0.5), "v");
}

TEST(RobustnessDeath, GraphBuilderRejectsBadWeight) {
  graph::GraphBuilder b(2);
  EXPECT_DEATH(b.AddEdge(0, 1, 1.5), "w");
}

TEST(Robustness, DysimUnderLinearThreshold) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(60.0, 2);
  core::DysimConfig cfg;
  cfg.selection_samples = 6;
  cfg.eval_samples = 12;
  cfg.candidates.max_users = 6;
  cfg.candidates.max_items = 2;
  cfg.campaign.model = diffusion::DiffusionModel::kLinearThreshold;
  core::DysimResult r = core::RunDysim(p, cfg);
  EXPECT_GT(r.sigma, 0.0);
  EXPECT_LE(r.total_cost, p.budget + 1e-9);
}

TEST(Robustness, DysimEqualsOptOnTrivialInstance) {
  // One affordable candidate: both must pick exactly it.
  TinyWorldSpec s;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  s.cost = 10.0;
  s.budget = 10.0;
  TinyWorld w = MakeWorld(2, {{0, 1, 1.0}}, s);
  w.problem.budget = 10.0;
  core::DysimConfig dcfg;
  dcfg.selection_samples = 4;
  dcfg.eval_samples = 4;
  baselines::OptConfig ocfg;
  ocfg.selection_samples = 4;
  ocfg.eval_samples = 4;
  ocfg.max_candidates = 0;
  ocfg.max_seeds = 0;
  core::DysimResult dr = core::RunDysim(w.problem, dcfg);
  baselines::BaselineResult orr = baselines::RunOpt(w.problem, ocfg);
  EXPECT_DOUBLE_EQ(dr.sigma, orr.sigma);
}

TEST(Robustness, AdaptiveWithZeroBudget) {
  TinyWorldSpec s;
  s.cost = 10.0;
  s.budget = 0.0;
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, s);
  w.problem.budget = 0.0;
  core::AdaptiveConfig cfg;
  cfg.base.selection_samples = 2;
  core::AdaptiveResult r = core::RunAdaptiveDysim(w.problem, cfg);
  EXPECT_TRUE(r.seeds.empty());
  EXPECT_DOUBLE_EQ(r.realized_sigma, 0.0);
}

TEST(Robustness, AdaptiveSingleRoundSpendsGreedily) {
  TinyWorldSpec s;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  s.cost = 10.0;
  s.budget = 20.0;
  s.num_promotions = 1;
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {2, 3, 1.0}}, s);
  w.problem.budget = 20.0;
  core::AdaptiveConfig cfg;
  cfg.base.selection_samples = 4;
  core::AdaptiveResult r = core::RunAdaptiveDysim(w.problem, cfg);
  EXPECT_EQ(r.seeds.size(), 2u);
  EXPECT_DOUBLE_EQ(r.realized_sigma, 4.0);
}

TEST(Robustness, MaxStepsCapTerminatesPathologicalChains) {
  // 64-user chain with p = 1 but max_steps = 4: the cascade is cut off.
  std::vector<std::tuple<int, int, double>> edges;
  for (int i = 0; i + 1 < 64; ++i) edges.emplace_back(i, i + 1, 1.0);
  TinyWorldSpec s;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  TinyWorld w = MakeWorld(64, edges, s);
  diffusion::CampaignConfig cfg;
  cfg.max_steps = 4;
  diffusion::CampaignSimulator sim(w.problem, cfg);
  EXPECT_DOUBLE_EQ(sim.RunSample({{0, 0, 1}}, 0).sigma, 5.0);
}

TEST(Robustness, RelevanceSubsetRejectsEmptyAndBad) {
  data::Dataset ds = data::MakeFig1Toy();
  EXPECT_DEATH(ds.relevance->WithMetaSubset({}), "indices");
  EXPECT_DEATH(ds.relevance->WithMetaSubset({99}), "i");
}

TEST(Robustness, MetaGraphWithUnmatchedTypesScoresZero) {
  kg::KnowledgeGraph g("ITEM");
  kg::KgNodeId a = g.AddNode("ITEM");
  kg::KgNodeId b = g.AddNode("ITEM");
  g.AddEdge(a, b, "UNRELATED");
  kg::MetaGraph m = kg::SharedNeighborMeta(
      g, "m", kg::RelationKind::kComplementary, "SUPPORTS", "FEATURE");
  kg::RelevanceModel model = kg::RelevanceModel::FromKg(g, {m}, 2.0);
  EXPECT_FLOAT_EQ(model.Score(0, 0, 1), 0.0f);
  EXPECT_TRUE(model.RelatedItems(0).empty());
}

TEST(Robustness, ClusteringSingleNominee) {
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, {});
  auto clusters = cluster::ClusterNominees(
      *w.graph, {{0, 0}}, [](kg::ItemId, kg::ItemId) { return 0.0; }, {});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 1u);
}

}  // namespace
}  // namespace imdpp
