// Fixture: lock-before-shared. Never compiled — only tokenized.
#include "guarded.h"

namespace fixture {

int Counter::Get() const {
  return count_;  // line 7: flagged — no mu_ in sight
}

void Counter::Bump() {
  util::MutexLock lock(mu_);
  ++count_;  // clean: mutex referenced in this body
}

int Counter::Locked() { return count_; }  // clean: IMDPP_REQUIRES in header

Counter MakeCounter() { return Counter{}; }  // clean: no guarded fields

}  // namespace fixture
