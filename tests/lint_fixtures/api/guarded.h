// Fixture: lock-before-shared declarations. The field registry built from
// this header applies to same-stem sources (guarded.cc). Never compiled.
namespace fixture {

class Counter {
 public:
  int Get() const;
  void Bump();
  int Locked() IMDPP_REQUIRES(mu_);

 private:
  mutable util::Mutex mu_;
  int count_ IMDPP_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
