// status-must-check fixture (ISSUE 8): Load's and Arm's declarations are
// what register them as util::Status-returning; Bad drops the Status on
// the floor (flagged), Chained drops it through a member chain (flagged),
// Good consumes every result, Suppressed carries a reasoned allow.
struct Injector {
  util::Status Arm(int spec);
  static Injector& Global();
};
util::Status Load(int x);

void Bad() {
  Load(1);
}

void Chained() {
  Injector::Global().Arm(2);
}

util::Status Good() {
  if (!Load(3).ok()) return Load(4);
  (void)Load(5);  // explicit discard is a decision, not an accident
  return Load(6);
}

void Suppressed() {
  // imdpp-lint: allow(status-must-check) fixture: best-effort warm-up path
  Load(7);
}
