// Fixture: suppression hygiene. Outside the result-affecting directory
// gate, so only the suppression diagnostics themselves fire here.
namespace fixture {

// imdpp-lint: allow(no-wallclock-rand)
int MissingReason() { return std::rand(); }  // suppressed, but reasonless

// imdpp-lint: allow(definitely-not-a-rule) typo'd rule names must not pass
int UnknownRule() { return 0; }

}  // namespace fixture
