// Fixture: no-wallclock-rand. Outside util/, so every ambient randomness
// source below is a violation. Never compiled — only tokenized.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int AmbientRandomness() {
  int a = std::rand();                   // line 10: flagged (rand()
  std::srand(7);                         // line 11: flagged (srand()
  long t = time(nullptr);                // line 12: flagged (time()
  std::random_device rd;                 // line 13: flagged
  std::mt19937 unseeded;                 // line 14: flagged (default seed)
  return a + static_cast<int>(t) + static_cast<int>(rd()) +
         static_cast<int>(unseeded());
}

unsigned SeededGeneratorIsFine(unsigned seed) {
  std::mt19937 rng(seed);  // explicit seed: clean
  return rng();
}

// imdpp-lint: allow(no-wallclock-rand) fixture demonstrates a reasoned pass
int SuppressedRand() { return std::rand(); }

}  // namespace fixture
