// Fixture: no-raw-clock. Not util/timer.h or util/trace.*, so direct
// chrono clock reads are violations. Never compiled — only tokenized.
#include <chrono>

namespace fixture {

void RawClocks() {
  auto a = std::chrono::steady_clock::now();           // line 8: flagged
  auto b = std::chrono::system_clock::now();           // line 9: flagged
  auto c = std::chrono::high_resolution_clock::now();  // line 10: flagged
  (void)a;
  (void)b;
  (void)c;
}

}  // namespace fixture
