// Fixture: no-unordered-iteration. Lives under a `core/` path component so
// the directory gate applies. Never compiled — only tokenized by lint_test.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int RangeForViolation(const std::unordered_map<int, int>& scores) {
  int sum = 0;
  for (const auto& [k, v] : scores) sum += v;  // line 10: flagged
  return sum;
}

int IteratorLoopViolation(const std::unordered_set<int>& users) {
  int sum = 0;
  for (auto it = users.begin(); it != users.end(); ++it) sum += *it;  // 16
  return sum;
}

int SuppressedIteration(const std::unordered_map<int, int>& scores) {
  int sum = 0;
  // imdpp-lint: allow(no-unordered-iteration) order-insensitive sum
  for (const auto& [k, v] : scores) sum += v;  // suppressed by line above
  return sum;
}

int OrderedIterationIsFine(const std::unordered_map<int, int>& scores,
                           const int* keys, int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i) {  // lookup, not iteration: clean
    auto it = scores.find(keys[i]);
    if (it != scores.end()) sum += it->second;
  }
  return sum;
}

}  // namespace fixture
