// Fixture: no-float-accum-in-parallel. Never compiled — only tokenized.
namespace fixture {

void BadSharedAccumulation(int n) {
  double total = 0.0;
  ParallelFor(n, [&](int i) {
    total += i * 0.5;  // line 7: flagged — scheduling-ordered accumulation
  });
}

void PerSlotPatternIsFine(int n, double* slots) {
  ParallelFor(n, [&](int i) {
    double local = 0.0;
    local += i * 0.5;   // lambda-local: clean
    slots[i] += local;  // indexed by the task: clean
  });
}

void MarkedFixedOrderMergeIsFine(int n, double& total) {
  RunShards(n, [&](int shard) {
    // imdpp-lint: fixed-order-merge — serialized merge shard-by-shard
    total += shard * 0.5;
  });
}

}  // namespace fixture
