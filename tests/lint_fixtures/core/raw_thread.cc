// Fixture: no-raw-thread. Not under util/thread_pool, so raw threading
// primitives are violations. Never compiled — only tokenized.
#include <future>
#include <thread>

namespace fixture {

void RawThreading() {
  std::thread t([] {});                    // line 9: flagged
  auto f = std::async([] { return 1; });   // line 10: flagged
  t.join();
  f.get();
}

}  // namespace fixture
