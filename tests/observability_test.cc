// ISSUE 9: the observability layer itself — snapshot semantics, registry
// thread-safety, timing gating in the JSON rendering, and the trace
// writer's Chrome trace-event output (well-formed, balanced, monotone,
// byte-stable with timestamps zeroed).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace imdpp::util {
namespace {

// ------------------------------------------------------- MetricsSnapshot

TEST(MetricsSnapshot, CountersGaugesAndSums) {
  MetricsSnapshot snap;
  EXPECT_TRUE(snap.empty());
  snap.AddCounter("a.count", 2);
  snap.AddCounter("a.count", 3);
  snap.SetGauge("a.gauge", 1.5);
  snap.SetGauge("a.gauge", 2.5);  // gauges overwrite
  snap.AddSum("a.sum", 0.5);
  snap.AddSum("a.sum", 0.25);
  EXPECT_EQ(snap.Counter("a.count"), 5);
  EXPECT_EQ(snap.Number("a.gauge"), 2.5);
  EXPECT_EQ(snap.Number("a.sum"), 0.75);
  EXPECT_EQ(snap.Counter("missing"), 0);
  EXPECT_EQ(snap.Number("missing"), 0.0);
  snap.SetCounter("a.count", 7);  // SetCounter overwrites (re-booking)
  EXPECT_EQ(snap.Counter("a.count"), 7);
}

TEST(MetricsSnapshot, MergeIsAdditiveForCountersAndHistograms) {
  MetricsSnapshot a;
  a.AddCounter("c", 1);
  a.Observe("h", 3.0, DefaultValueBounds());
  MetricsSnapshot b;
  b.AddCounter("c", 2);
  b.Observe("h", 700.0, DefaultValueBounds());
  a.Merge(b);
  EXPECT_EQ(a.Counter("c"), 3);
  const HistogramData* h = a.Histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum, 703.0);
}

TEST(MetricsSnapshot, HistogramMergeIsOrderInvariant) {
  // Bucketwise-additive merging: any interleaving of the same
  // observations produces the same histogram — the property that makes
  // snapshots byte-stable at every thread count.
  const std::vector<double> values{0.5, 2.0, 9.0, 300.0, 2e6};
  MetricsSnapshot forward;
  MetricsSnapshot backward;
  for (double v : values) forward.Observe("h", v, DefaultValueBounds());
  for (size_t i = values.size(); i > 0; --i) {
    backward.Observe("h", values[i - 1], DefaultValueBounds());
  }
  const HistogramData* f = forward.Histogram("h");
  const HistogramData* b = backward.Histogram("h");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(f->buckets, b->buckets);
  EXPECT_EQ(f->count, b->count);
  EXPECT_EQ(f->sum, b->sum);
}

TEST(MetricsJsonRendering, GatesTimingMetricsAndOrdersKeys) {
  MetricsSnapshot snap;
  snap.AddCounter("z.count", 1);
  snap.AddCounter("a.count", 2);
  snap.AddSum("prep.millis", 12.5);  // timing-valued: gated
  const Json without = MetricsJson(snap, /*include_timings=*/false);
  EXPECT_EQ(without.Find("prep.millis"), nullptr);
  EXPECT_NE(without.Find("a.count"), nullptr);
  const Json with = MetricsJson(snap, /*include_timings=*/true);
  EXPECT_NE(with.Find("prep.millis"), nullptr);
  // std::map ordering: "a.count" serializes before "z.count", every run.
  const std::string dump = with.Dump();
  EXPECT_LT(dump.find("a.count"), dump.find("z.count"));
}

// -------------------------------------------------------- MetricRegistry

TEST(MetricRegistry, ConcurrentUpdatesLoseNothing) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.Reset();
  reg.Enable();
  constexpr int kTasks = 64;
  constexpr int kIncrements = 1000;
  ThreadPool pool(3);
  pool.ParallelFor(kTasks, [&](int) {
    for (int i = 0; i < kIncrements; ++i) {
      reg.GetCounter("test.hits").Add(1);
      reg.GetHistogram("test.values", DefaultValueBounds())
          .Observe(static_cast<double>(i % 7));
    }
  });
  reg.Disable();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Counter("test.hits"), int64_t{kTasks} * kIncrements);
  const HistogramData* h = snap.Histogram("test.values");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, int64_t{kTasks} * kIncrements);
  reg.Reset();
}

TEST(MetricRegistry, ArmedPoolRecordsBatchAndTaskMetrics) {
  MetricRegistry& reg = MetricRegistry::Global();
  reg.Reset();
  reg.Enable();
  {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.ParallelFor(8, [&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
  }
  reg.Disable();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Counter(metric::kPoolBatches), 1);
  EXPECT_EQ(snap.Counter(metric::kPoolTasks), 8);
  const HistogramData* lat = snap.Histogram(metric::kPoolTaskMillis);
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 8);
  reg.Reset();
}

// ----------------------------------------------------------------- trace

/// One armed bracket producing spans on the main thread and pool workers.
void RunTracedWorkload(int pool_workers) {
  trace::Enable();
  trace::RegisterCurrentThread("main");
  {
    trace::Span outer("outer");
    {
      trace::Span inner("inner");
    }
    ThreadPool pool(pool_workers);
    pool.ParallelFor(6, [&](int) { trace::Span task("work"); });
  }
  trace::Disable();
}

TEST(Trace, EmitsValidBalancedChromeTraceJson) {
  RunTracedWorkload(/*pool_workers=*/2);
  const std::string text = trace::TraceJson();
  Json parsed;
  std::string error;
  ASSERT_TRUE(Json::Parse(text, &parsed, &error)) << error;
  const Json* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Per-thread validation: B/E strictly balanced, timestamps monotone.
  struct Track {
    std::vector<std::string> open;
    int64_t last_ts = -1;
  };
  std::map<int64_t, Track> tracks;
  size_t span_events = 0;
  bool saw_process_meta = false;
  for (size_t i = 0; i < events->size(); ++i) {
    const Json& e = (*events)[i];
    const std::string ph = e.Find("ph")->AsString();
    if (ph == "M") {
      if (e.Find("name")->AsString() == "process_name") {
        saw_process_meta = true;
      }
      continue;
    }
    ++span_events;
    Track& track = tracks[e.Find("tid")->AsInt()];
    const int64_t ts = e.Find("ts")->AsInt();
    EXPECT_GE(ts, track.last_ts) << "timestamps regress within a track";
    track.last_ts = ts;
    if (ph == "B") {
      track.open.push_back(e.Find("name")->AsString());
    } else {
      ASSERT_EQ(ph, "E");
      ASSERT_FALSE(track.open.empty()) << "E without a matching B";
      EXPECT_EQ(track.open.back(), e.Find("name")->AsString());
      track.open.pop_back();
    }
  }
  EXPECT_TRUE(saw_process_meta);
  EXPECT_GE(span_events, 2u * 8u);  // outer + inner + 6 tasks, B and E
  for (const auto& [tid, track] : tracks) {
    EXPECT_TRUE(track.open.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(Trace, SpanStructureByteStableAcrossRerunsWithTimestampsZeroed) {
  // A serial workload (no pool) has a deterministic span structure; with
  // timestamps zeroed the whole artifact must be byte-identical between
  // reruns.
  auto run_serial = [] {
    trace::Enable();
    trace::RegisterCurrentThread("main");
    {
      trace::Span a("phase.one");
      { trace::Span b("phase.two"); }
    }
    trace::Disable();
    return trace::TraceJson(/*zero_timestamps=*/true);
  };
  const std::string first = run_serial();
  const std::string second = run_serial();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"phase.one\""), std::string::npos);
  EXPECT_NE(first.find("\"phase.two\""), std::string::npos);
}

TEST(Trace, DisarmedSpansRecordNothingAndArmResetsTheBuffer) {
  trace::Enable();
  trace::Disable();
  {
    trace::Span s("ignored");
  }
  EXPECT_EQ(trace::EventCount(), 0u);
  trace::Enable();
  {
    trace::Span s("kept");
  }
  trace::Disable();
  EXPECT_EQ(trace::EventCount(), 2u);  // one B + one E
  trace::Enable();  // re-arming clears the previous run's events
  trace::Disable();
  EXPECT_EQ(trace::EventCount(), 0u);
}

}  // namespace
}  // namespace imdpp::util
