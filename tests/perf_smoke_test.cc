// Perf smoke (ISSUE 3): the checkpointed evaluation path must do strictly
// less promotion-round work than the naive path — measured with the
// engine's deterministic work counters, never wall clock, so this gate
// cannot flake. Runs in ctest everywhere and as a dedicated CI step on
// main-branch pushes.
//
// Scenario: CR-Greedy-style timing placement on the yelp-like dataset
// (T = 10) — the loop shape the checkpoint API was built for. The naive
// path evaluates every candidate (nominee, t) with a plain engine.Sigma;
// the checkpointed path resumes each candidate from the round-(t-1)
// checkpoint of the current placement. Both must produce bit-identical
// placements and estimates.
#include <gtest/gtest.h>

#include "api/session.h"
#include "core/dysim.h"
#include "data/catalog.h"
#include "diffusion/monte_carlo.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace imdpp::diffusion {
namespace {

constexpr int kSamples = 6;
constexpr int kPromotions = 10;

/// Greedy timing placement; `eval` non-null = checkpointed path.
SeedGroup PlaceGreedy(const MonteCarloEngine& engine,
                      const std::vector<Nominee>& nominees,
                      std::vector<double>* sigmas, bool checkpointed) {
  CheckpointedEval eval(engine, /*base=*/{});
  SeedGroup placed;
  for (const Nominee& n : nominees) {
    int best_t = 1;
    double best_sigma = -1.0;
    for (int t = 1; t <= kPromotions; ++t) {
      SeedGroup with = placed;
      with.push_back({n.user, n.item, t});
      const double s = checkpointed ? eval.Sigma(with) : engine.Sigma(with);
      sigmas->push_back(s);
      if (s > best_sigma) {
        best_sigma = s;
        best_t = t;
      }
    }
    placed.push_back({n.user, n.item, best_t});
    if (checkpointed) eval.Rebase(placed);
  }
  return placed;
}

TEST(PerfSmoke, CheckpointedPlacementHalvesSimulatedRounds) {
  data::Dataset ds = data::MakeYelpLike(0.5);
  Problem problem = ds.MakeProblem(/*budget=*/500.0, kPromotions);
  const std::vector<Nominee> nominees{{0, 0}, {14, 18}, {52, 15}, {111, 10}};

  MonteCarloEngine naive(problem, {}, kSamples, /*num_threads=*/0);
  MonteCarloEngine fast(problem, {}, kSamples, /*num_threads=*/0);
  std::vector<double> naive_sigmas;
  std::vector<double> fast_sigmas;
  SeedGroup naive_placed =
      PlaceGreedy(naive, nominees, &naive_sigmas, /*checkpointed=*/false);
  SeedGroup fast_placed =
      PlaceGreedy(fast, nominees, &fast_sigmas, /*checkpointed=*/true);

  // Identical work, bit-identical estimates and placement.
  ASSERT_EQ(naive_sigmas.size(), fast_sigmas.size());
  for (size_t i = 0; i < naive_sigmas.size(); ++i) {
    EXPECT_EQ(fast_sigmas[i], naive_sigmas[i]) << "candidate " << i;
  }
  EXPECT_EQ(fast_placed, naive_placed);

  // The point of the exercise, in deterministic counters (safe to assert
  // exactly): the checkpointed path simulates strictly fewer
  // promotion-rounds than the plain path, and at least 2x fewer than the
  // pre-PR naive evaluation (T rounds per sample per estimate — which is
  // what simulated + skipped adds back up to). The 2x bar is the ISSUE 3
  // acceptance criterion.
  const int64_t plain_rounds = naive.num_rounds_simulated();
  const int64_t fast_rounds = fast.num_rounds_simulated();
  EXPECT_LT(fast_rounds, plain_rounds)
      << "checkpointed=" << fast_rounds << " plain=" << plain_rounds;
  const int64_t naive_rounds =
      fast.num_rounds_simulated() + fast.num_rounds_skipped();
  EXPECT_LE(2 * fast_rounds, naive_rounds)
      << "checkpointed=" << fast_rounds << " naive=" << naive_rounds;
}

TEST(PerfSmoke, DysimReportsAtLeastTwofoldRoundSavings) {
  // End-to-end: the Dysim pipeline's own accounting on the yelp-like
  // dataset must show >= 2x fewer simulated promotion-rounds than the
  // naive T-rounds-per-sample evaluation it replaced.
  data::Dataset ds = data::MakeYelpLike(0.5);
  Problem problem = ds.MakeProblem(/*budget=*/500.0, kPromotions);
  core::DysimConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 12;
  cfg.candidates.max_items = 4;
  cfg.num_threads = 0;
  core::DysimResult r = core::RunDysim(problem, cfg);
  const int64_t simulated =
      r.metrics.Counter(util::metric::kEvalRoundsSimulated);
  const int64_t naive_rounds =
      simulated + r.metrics.Counter(util::metric::kEvalRoundsSkipped);
  ASSERT_GT(simulated, 0);
  EXPECT_LE(2 * simulated, naive_rounds)
      << "simulated=" << simulated << " naive=" << naive_rounds;
  EXPECT_GT(r.metrics.Counter(util::metric::kEvalMemoHits), 0);
}

// ISSUE 10: the adaptive-racing bar. With eval.adaptive on, the same
// Dysim pipeline on the same problem must simulate at most HALF the
// promotion-rounds of the fixed-count run — paid for by early-stopping
// resolved argmax comparisons plus a racing budget on the comparisons
// that sit below the noise floor, not by degrading the answer. Quality
// is judged by an INDEPENDENT referee: both paths' final seed sets are
// re-evaluated on a fresh high-sample engine whose realizations neither
// selection ever saw. (The pipelines' own σ̂ shares samples with the
// fixed path's selection, so its noise-argmax is correlated with the
// final eval — comparing r.sigma alone would credit/blame overfit
// noise, not seed quality.) Deterministic counters, so the bar cannot
// flake.
TEST(PerfSmoke, AdaptiveRacingHalvesSimulatedRoundsAtEqualQuality) {
  data::Dataset ds = data::MakeYelpLike(0.5);
  Problem problem = ds.MakeProblem(/*budget=*/500.0, kPromotions);
  core::DysimConfig cfg;
  // A selection budget worth racing against: candidates resolve after a
  // few paired blocks, the fixed loop pays all 32 samples every time.
  cfg.selection_samples = 32;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 12;
  cfg.candidates.max_items = 4;
  cfg.num_threads = 0;
  core::DysimResult fixed = core::RunDysim(problem, cfg);
  ASSERT_TRUE(fixed.status.ok()) << fixed.status.ToString();

  core::DysimConfig acfg = cfg;
  acfg.backend.adaptive.enabled = true;
  // Small blocks harvest the exact-tie eliminations cheaply; the budget
  // stops the heavy-tailed comparisons no honest bound can separate at
  // these counts from racing all the way to 32 (the winner still gets a
  // full-precision re-evaluation). Measured on this problem: 2.58x.
  acfg.backend.adaptive.min_samples = 2;
  acfg.backend.adaptive.block_samples = 2;
  acfg.backend.adaptive.max_samples = 8;
  core::DysimResult raced = core::RunDysim(problem, acfg);
  ASSERT_TRUE(raced.status.ok()) << raced.status.ToString();

  const int64_t fixed_rounds =
      fixed.metrics.Counter(util::metric::kEvalRoundsSimulated);
  const int64_t raced_rounds =
      raced.metrics.Counter(util::metric::kEvalRoundsSimulated);
  ASSERT_GT(raced_rounds, 0);
  EXPECT_LE(2 * raced_rounds, fixed_rounds)
      << "raced=" << raced_rounds << " fixed=" << fixed_rounds;
  // The machinery demonstrably engaged...
  EXPECT_GT(raced.metrics.Counter(util::metric::kEvalBlocksRun), 0);
  EXPECT_GT(raced.metrics.Counter(util::metric::kEvalEarlyStops), 0);
  EXPECT_GT(raced.metrics.Counter(util::metric::kEvalSamplesSaved), 0);
  // ...and the fixed run never books race counters.
  EXPECT_EQ(fixed.metrics.Counter(util::metric::kEvalBlocksRun), 0);
  // Equal quality, independently refereed at 16x the eval samples.
  MonteCarloEngine referee(problem, cfg.campaign, /*num_samples=*/128,
                           /*num_threads=*/0);
  const double fixed_quality = referee.Sigma(fixed.seeds);
  const double raced_quality = referee.Sigma(raced.seeds);
  EXPECT_NEAR(raced_quality, fixed_quality, 0.05 * fixed_quality)
      << "fixed=" << fixed_quality << " raced=" << raced_quality;
}

// The ISSUE 9 overhead bar, in deterministic observables instead of wall
// clock: a disarmed run records NOTHING — no trace events, no registry
// entries — so the disarmed hot path is a pair of relaxed loads and can't
// regress the pre-PR perf profile. (Wall-clock noise makes a timed bar
// flake; an empty-registry bar is exact.)
TEST(PerfSmoke, DisarmedObservabilityRecordsNothing) {
  util::MetricRegistry::Global().Reset();
  ASSERT_FALSE(util::MetricRegistry::Armed());
  ASSERT_FALSE(util::trace::Armed());

  api::PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 12;
  cfg.candidates.max_items = 4;
  cfg.num_threads = 2;  // exercise the pool's armed-gated instrumentation
  api::CampaignSession session(data::MakeYelpLike(0.5), cfg);
  session.SetProblem(/*budget=*/500.0, kPromotions);
  api::PlanResult r = session.Run("dysim");
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();

  // The per-run snapshot is always on (it IS the result accounting)...
  EXPECT_GT(r.metrics.Counter(util::metric::kEvalSimulations), 0);
  // ...but the process-wide layers stayed silent.
  EXPECT_EQ(util::trace::EventCount(), 0u);
  EXPECT_TRUE(util::MetricRegistry::Global().Snapshot().empty());
}

// Theorem-5 guard checkpoint sharing (ISSUE 5 satellite): seeding the
// refinement from the placement loop's CheckpointedEval (Rebase keeps
// every shared-prefix checkpoint) must simulate strictly fewer rounds
// than giving the refinement a fresh evaluator — with bit-identical
// estimates either way.
TEST(PerfSmoke, SharedGuardEvaluatorSkipsRefinementRounds) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/4);
  const SeedGroup placed{{0, 0, 1}, {3, 1, 2}, {7, 2, 3}};
  const SeedGroup refined = placed;  // refinement starting from `placed`

  auto drive = [&](MonteCarloEngine& engine, bool shared) {
    CheckpointedEval placer(engine, /*base=*/{});
    SeedGroup grown;
    for (const Seed& s : placed) {  // the round-greedy placement shape
      for (int t = 1; t <= 4; ++t) {
        SeedGroup with = grown;
        with.push_back({s.user, s.item, t});
        placer.Sigma(with);
      }
      grown.push_back(s);
      placer.Rebase(grown);
    }
    SeedGroup moved = refined;
    moved[2].promotion = 4;  // one coordinate-ascent trial
    if (shared) {
      placer.Rebase(refined);
      return placer.Sigma(moved);
    }
    CheckpointedEval refiner(engine, refined);
    return refiner.Sigma(moved);
  };

  MonteCarloEngine separate(problem, {}, kSamples, /*num_threads=*/0);
  MonteCarloEngine sharing(problem, {}, kSamples, /*num_threads=*/0);
  const double sigma_separate = drive(separate, /*shared=*/false);
  const double sigma_shared = drive(sharing, /*shared=*/true);
  EXPECT_EQ(sigma_shared, sigma_separate);  // bit-identical estimate
  EXPECT_LT(sharing.num_rounds_simulated(), separate.num_rounds_simulated());
  EXPECT_GT(sharing.num_rounds_skipped(), separate.num_rounds_skipped());
}

// The prep-reuse bar (ISSUE 5): once a session has built the market
// structure, every later run that needs it — same planner, another
// planner, another budget — does ZERO prep builds, and the schedules are
// bit-identical to the cold run's. Deterministic counters, no wall clock.
TEST(PerfSmoke, WarmSessionRunDoesZeroPrepBuilds) {
  api::PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 12;
  cfg.candidates.max_items = 4;
  cfg.num_threads = 0;
  api::CampaignSession session(data::MakeYelpLike(0.5), cfg);
  session.SetProblem(/*budget=*/500.0, kPromotions);

  api::PlanResult cold = session.Run("dysim");
  EXPECT_EQ(cold.prep_builds, 1);
  EXPECT_EQ(cold.prep_reuses, 0);

  api::PlanResult warm = session.Run("dysim");
  EXPECT_EQ(warm.prep_builds, 0);  // the bar: a warm Run builds nothing
  EXPECT_EQ(warm.prep_reuses, 1);
  EXPECT_EQ(warm.seeds, cold.seeds);
  EXPECT_EQ(warm.sigma, cold.sigma);

  // The artifact crosses planners: adaptive's antagonism oracle and PS's
  // influence regions come from the same bundle.
  api::PlanResult adaptive = session.Run("adaptive");
  EXPECT_EQ(adaptive.prep_builds, 0);
  EXPECT_EQ(adaptive.prep_reuses, 1);
  api::PlanResult ps = session.Run("ps");
  EXPECT_EQ(ps.prep_builds, 0);
  EXPECT_EQ(ps.prep_reuses, 1);

  // And budgets: the structure is budget-independent, so a SetProblem to
  // a new budget keeps the artifacts warm.
  session.SetProblem(/*budget=*/300.0, kPromotions);
  api::PlanResult other_budget = session.Run("dysim");
  EXPECT_EQ(other_budget.prep_builds, 0);
  EXPECT_EQ(other_budget.prep_reuses, 1);
}

}  // namespace
}  // namespace imdpp::diffusion
