// The determinism gate (ISSUE 2): a CampaignSession::Run must produce a
// bit-identical PlanResult for num_threads ∈ {1, 2, hardware} — and for
// the serial fallback 0 — on EVERY registered planner. Coin flips are
// counter-based on (sample index, event) and the engine reduces per-shard
// partials in a thread-count-independent order, so nothing may drift, not
// even low-order float bits. CI runs this binary in a dedicated job; it is
// also part of the regular ctest suite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/session.h"
#include "data/catalog.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/sigma_backend.h"
#include "util/cancel.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace imdpp::api {
namespace {

PlannerConfig GateConfig(int num_threads) {
  PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;
  cfg.seed = 20260731;
  cfg.num_threads = num_threads;
  // Keep the exhaustive planner tractable at gate effort.
  cfg.opt.max_candidates = 6;
  cfg.opt.max_seeds = 2;
  return cfg;
}

PlanResult RunWith(const std::string& name, int num_threads) {
  CampaignSession session(data::MakeSmallAmazonSample(),
                          GateConfig(num_threads));
  session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
  return session.Run(name);
}

/// Everything except wall_seconds must match exactly (EXPECT_EQ on the
/// doubles: bit-identity, not tolerance).
void ExpectSamePlan(const PlanResult& a, const PlanResult& b,
                    const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.planner, b.planner);
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.simulations, b.simulations);
  // The fast-path accounting is a function of the schedule search alone,
  // never of the thread count.
  EXPECT_EQ(a.rounds_simulated, b.rounds_simulated);
  EXPECT_EQ(a.rounds_skipped, b.rounds_skipped);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
  ASSERT_EQ(a.seeds.size(), b.seeds.size());
  for (size_t i = 0; i < a.seeds.size(); ++i) {
    EXPECT_EQ(a.seeds[i].user, b.seeds[i].user) << "seed " << i;
    EXPECT_EQ(a.seeds[i].item, b.seeds[i].item) << "seed " << i;
    EXPECT_EQ(a.seeds[i].promotion, b.seeds[i].promotion) << "seed " << i;
  }
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].promotion, b.rounds[i].promotion) << "round " << i;
    EXPECT_EQ(a.rounds[i].spent, b.rounds[i].spent) << "round " << i;
    EXPECT_EQ(a.rounds[i].realized_sigma, b.rounds[i].realized_sigma)
        << "round " << i;
    EXPECT_EQ(a.rounds[i].seeds.size(), b.rounds[i].seeds.size())
        << "round " << i;
  }
  ASSERT_EQ(a.nominees.size(), b.nominees.size());
  for (size_t i = 0; i < a.nominees.size(); ++i) {
    EXPECT_EQ(a.nominees[i].user, b.nominees[i].user) << "nominee " << i;
    EXPECT_EQ(a.nominees[i].item, b.nominees[i].item) << "nominee " << i;
  }
  EXPECT_EQ(a.num_markets, b.num_markets);
  EXPECT_EQ(a.num_groups, b.num_groups);
}

TEST(DeterminismGate, EveryPlannerBitIdenticalAcrossThreadCounts) {
  const int hardware = util::HardwareConcurrency();
  for (const std::string& name : PlannerRegistry::Names()) {
    SCOPED_TRACE(name);
    PlanResult serial = RunWith(name, 0);
    PlanResult one = RunWith(name, 1);
    PlanResult two = RunWith(name, 2);
    PlanResult wide = RunWith(name, hardware);
    ExpectSamePlan(serial, one, "serial fallback vs 1 thread");
    ExpectSamePlan(one, two, "1 thread vs 2 threads");
    ExpectSamePlan(one, wide, "1 thread vs hardware threads");
  }
}

TEST(DeterminismGate, SerialFallbackMatchesParallel) {
  PlanResult serial = RunWith("dysim", 0);
  PlanResult parallel = RunWith("dysim", 4);
  ExpectSamePlan(serial, parallel, "serial fallback vs 4 threads");
}

// ISSUE 8: the cancellation plumbing must be pure control flow while the
// token stays quiet. A run under an explicit never-fired token and a run
// under a generous deadline are both bit-identical to the plain run — for
// every registered planner, and with zero robustness-counter noise.
TEST(DeterminismGate, QuietCancelTokenAndGenerousDeadlineAreInvisible) {
  for (const std::string& name : PlannerRegistry::Names()) {
    SCOPED_TRACE(name);
    const PlanResult plain = RunWith(name, 2);

    PlannerConfig with_token = GateConfig(2);
    with_token.cancel = std::make_shared<util::CancelToken>();
    CampaignSession tokened_session(data::MakeSmallAmazonSample(),
                                    with_token);
    tokened_session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
    PlanResult tokened = tokened_session.Run(name);
    EXPECT_TRUE(tokened.status.ok()) << tokened.status.ToString();
    EXPECT_EQ(tokened.faults_injected, 0);
    EXPECT_EQ(tokened.retries, 0);
    EXPECT_EQ(tokened.fallbacks, 0);
    ExpectSamePlan(plain, tokened, "quiet explicit token");

    PlannerConfig with_deadline = GateConfig(2);
    with_deadline.deadline_ms = 3600 * 1000;  // an hour: never fires
    CampaignSession deadline_session(data::MakeSmallAmazonSample(),
                                     with_deadline);
    deadline_session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
    PlanResult under_deadline = deadline_session.Run(name);
    EXPECT_TRUE(under_deadline.status.ok())
        << under_deadline.status.ToString();
    ExpectSamePlan(plain, under_deadline, "generous deadline");
  }
}

// Checkpoint-resume and memoized σ̂ must be bit-identical to a plain
// from-scratch estimate on the very schedules the planners emit — for
// EVERY registered planner, at serial and parallel thread counts.
TEST(DeterminismGate, CheckpointedSigmaMatchesPlainForEveryPlanner) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem problem = ds.MakeProblem(/*budget=*/100.0,
                                              /*num_promotions=*/2);
  diffusion::CampaignConfig campaign;
  campaign.base_seed = 20260731;
  for (const std::string& name : PlannerRegistry::Names()) {
    SCOPED_TRACE(name);
    const PlanResult plan = RunWith(name, 2);
    if (plan.seeds.empty()) continue;
    for (int threads : {0, 2}) {
      diffusion::MonteCarloEngine plain(problem, campaign, 8, threads);
      diffusion::MonteCarloEngine engine(problem, campaign, 8, threads);
      const double expected = plain.Sigma(plan.seeds);
      // Resume from a base missing the last seed (greedy-append shape).
      diffusion::SeedGroup base = plan.seeds;
      base.pop_back();
      diffusion::CheckpointedEval ce(engine, base);
      EXPECT_EQ(ce.Sigma(plan.seeds), expected) << "threads=" << threads;
      // And a memo hit on top of the checkpointed value.
      engine.EnableSigmaMemo();
      EXPECT_EQ(ce.Sigma(plan.seeds), expected) << "threads=" << threads;
      EXPECT_EQ(ce.Sigma(plan.seeds), expected) << "threads=" << threads;
    }
  }
}

// The prep:: artifact layer (ISSUE 5) must be invisible in the results:
// every registered planner produces a bit-identical plan with the
// session's artifact cache cold vs warm, with the cache bypassed
// entirely, and with the artifact built at 1/2/hardware build threads.
TEST(DeterminismGate, PrepCacheColdVsWarmBitIdenticalForEveryPlanner) {
  const int hardware = util::HardwareConcurrency();
  for (const std::string& name : PlannerRegistry::Names()) {
    SCOPED_TRACE(name);
    CampaignSession session(data::MakeSmallAmazonSample(), GateConfig(2));
    session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
    PlanResult cold = session.Run(name);
    PlanResult warm = session.Run(name);
    ExpectSamePlan(cold, warm, "cold vs warm prep cache");

    // Bypassing the cache (prep.cache = false rebuilds per run) changes
    // nothing either.
    PlannerConfig no_cache = GateConfig(2);
    no_cache.prep.cache = false;
    PlanResult rebuilt = session.Run(name, no_cache);
    ExpectSamePlan(cold, rebuilt, "cached vs cache-bypassed");

    // The artifact build's parallel sweeps merge in fixed source order,
    // so the build thread count never leaks into the schedule.
    for (int threads : {1, 2, hardware}) {
      PlannerConfig cfg = GateConfig(2);
      cfg.prep.build_threads = threads;
      CampaignSession fresh(data::MakeSmallAmazonSample(), cfg);
      fresh.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
      PlanResult r = fresh.Run(name);
      ExpectSamePlan(cold, r, "prep build threads");
    }
  }
}

// ISSUE 7: the SigmaBackend seam must be invisible for "mc" — the
// registry-built backend is the Monte-Carlo engine, bit-identical to
// constructing the engine directly, at 1/2/hardware thread counts.
TEST(DeterminismGate, RegistryMcBackendMatchesDirectEngineAcrossThreads) {
  const int hardware = util::HardwareConcurrency();
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem problem = ds.MakeProblem(/*budget=*/100.0,
                                              /*num_promotions=*/2);
  diffusion::CampaignConfig campaign;
  campaign.base_seed = 20260731;
  const diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  diffusion::MonteCarloEngine direct(problem, campaign, 8, /*num_threads=*/1);
  const double expected = direct.Sigma(seeds);
  for (int threads : {1, 2, hardware}) {
    diffusion::SigmaBackendSpec spec;  // defaults to name = "mc"
    std::unique_ptr<diffusion::SigmaBackend> backend =
        diffusion::MakeSigmaBackend(spec, problem, campaign, 8, threads,
                                    nullptr);
    EXPECT_EQ(backend->name(), "mc");
    EXPECT_EQ(backend->Sigma(seeds), expected) << "threads=" << threads;
  }
}

// The "ris" sketch build shards by θ alone and merges in ascending sketch
// order, so estimates are bit-identical at any build thread count.
TEST(DeterminismGate, RisBackendBitIdenticalAcrossBuildThreadCounts) {
  const int hardware = util::HardwareConcurrency();
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem problem = ds.MakeProblem(/*budget=*/100.0,
                                              /*num_promotions=*/2);
  diffusion::CampaignConfig campaign;
  campaign.base_seed = 20260731;
  const diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  std::vector<double> sigmas;
  for (int threads : {0, 1, 2, hardware}) {
    diffusion::SigmaBackendSpec spec;
    spec.name = "ris";
    spec.ris_sketches = 8192;  // enough that the tiny seed group covers
    std::unique_ptr<diffusion::SigmaBackend> backend =
        diffusion::MakeSigmaBackend(spec, problem, campaign, 8, threads,
                                    util::MakeWorkerPool(threads));
    sigmas.push_back(backend->Sigma(seeds));
  }
  EXPECT_GT(sigmas[0], 0.0);
  for (size_t i = 1; i < sigmas.size(); ++i) {
    EXPECT_EQ(sigmas[i], sigmas[0]);
  }
}

// And a full planner run under eval.backend = "ris" stays bit-identical
// across executor counts, like every other gate in this file.
TEST(DeterminismGate, DysimUnderRisBackendBitIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    PlannerConfig cfg = GateConfig(threads);
    cfg.eval.backend = "ris";
    cfg.eval.ris_sketches = 256;
    CampaignSession session(data::MakeSmallAmazonSample(), cfg);
    session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
    return session.Run("dysim");
  };
  PlanResult one = run(1);
  PlanResult two = run(2);
  PlanResult wide = run(util::HardwareConcurrency());
  ExpectSamePlan(one, two, "ris: 1 thread vs 2 threads");
  ExpectSamePlan(one, wide, "ris: 1 thread vs hardware threads");
}

// ISSUE 9: the observability layer must be bit-invisible. With tracing
// AND the metric registry armed, every planner's schedule is identical to
// the disarmed run — at 1, 2 and hardware executor counts.
TEST(DeterminismGate, TracingAndMetricsAreBitInvisible) {
  const int hardware = util::HardwareConcurrency();
  for (const std::string& name : PlannerRegistry::Names()) {
    SCOPED_TRACE(name);
    const PlanResult plain = RunWith(name, 2);
    for (int threads : {1, 2, hardware}) {
      util::trace::Enable();
      util::MetricRegistry::Global().Reset();
      util::MetricRegistry::Enable();
      PlanResult observed = RunWith(name, threads);
      util::MetricRegistry::Disable();
      util::trace::Disable();
      ExpectSamePlan(plain, observed, "armed observability");
    }
  }
}

// ISSUE 10: the variance-adaptive racing path must hold the same gate.
// Per-sample value slots plus fixed-order reductions at block boundaries
// make every elimination decision a pure function of the candidate set,
// so a plan under eval.adaptive — schedule, σ bits AND the work counters
// (which blocks ran is part of the contract) — is identical at any
// executor count, including the serial fallback.
TEST(DeterminismGate, AdaptivePathBitIdenticalAcrossThreadCounts) {
  const int hardware = util::HardwareConcurrency();
  auto run = [](const std::string& name, int threads) {
    PlannerConfig cfg = GateConfig(threads);
    cfg.eval.adaptive.enabled = true;
    // Two blocks inside the 4 selection samples: boundary decisions fire.
    cfg.eval.adaptive.min_samples = 2;
    cfg.eval.adaptive.block_samples = 2;
    CampaignSession session(data::MakeSmallAmazonSample(), cfg);
    session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
    return session.Run(name);
  };
  auto race_counters = [](const PlanResult& r) {
    return std::vector<int64_t>{
        r.metrics.Counter(util::metric::kEvalBlocksRun),
        r.metrics.Counter(util::metric::kEvalEarlyStops),
        r.metrics.Counter(util::metric::kEvalSamplesSaved)};
  };
  for (const std::string& name : PlannerRegistry::Names()) {
    SCOPED_TRACE(name);
    PlanResult serial = run(name, 0);
    PlanResult one = run(name, 1);
    PlanResult two = run(name, 2);
    PlanResult wide = run(name, hardware);
    ExpectSamePlan(serial, one, "adaptive: serial fallback vs 1 thread");
    ExpectSamePlan(one, two, "adaptive: 1 thread vs 2 threads");
    ExpectSamePlan(one, wide, "adaptive: 1 thread vs hardware threads");
    EXPECT_EQ(race_counters(one), race_counters(serial));
    EXPECT_EQ(race_counters(one), race_counters(two));
    EXPECT_EQ(race_counters(one), race_counters(wide));
    // The Theorem-5 timing placement always races (T = 2 candidates), so
    // the adaptive machinery demonstrably engaged on the dysim family.
    if (name == "dysim") {
      EXPECT_GT(race_counters(one)[0], 0) << "race never engaged";
    }
  }
}

TEST(DeterminismGate, SessionSigmaThreadCountInvariant) {
  const diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};
  std::vector<double> sigmas;
  for (int threads : {0, 1, 2, 4}) {
    CampaignSession session(data::MakeSmallAmazonSample(),
                            GateConfig(threads));
    session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
    sigmas.push_back(session.Sigma(seeds));
  }
  for (size_t i = 1; i < sigmas.size(); ++i) {
    EXPECT_EQ(sigmas[i], sigmas[0]);
  }
}

}  // namespace
}  // namespace imdpp::api
