#include <gtest/gtest.h>

#include "diffusion/campaign_simulator.h"
#include "tests/test_util.h"

namespace imdpp::diffusion {
namespace {

using testutil::MakeRelevance;
using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

/// Deterministic-cascade spec: edge weights 1, preferences 1, dynamics off,
/// influence cap lifted so p = 1 exactly.
TinyWorldSpec DetSpec(int items = 1, int promotions = 1) {
  TinyWorldSpec s;
  s.num_items = items;
  s.num_promotions = promotions;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  return s;
}

TEST(CampaignSimulator, DeterministicChainFullCascade) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec());
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}}, 0);
  EXPECT_DOUBLE_EQ(o.sigma, 3.0);  // seed + two hops, importance 1
  EXPECT_EQ(o.adoptions, 3);
}

TEST(CampaignSimulator, ZeroPreferenceBlocksPropagation) {
  TinyWorldSpec s = DetSpec();
  s.base_pref = 0.0;
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, s);
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}}, 0);
  EXPECT_DOUBLE_EQ(o.sigma, 1.0);  // only the seed adopts
}

TEST(CampaignSimulator, NoSeedsNoAdoptions) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}}, DetSpec(1, 3));
  CampaignSimulator sim(w.problem, {});
  EXPECT_DOUBLE_EQ(sim.RunSample({}, 0).sigma, 0.0);
}

TEST(CampaignSimulator, ImportanceWeighting) {
  TinyWorldSpec s = DetSpec(2);
  TinyWorld w = MakeWorld(2, {{0, 1, 1.0}}, s);
  w.problem.importance = {3.0, 0.5};
  CampaignSimulator sim(w.problem, {});
  EXPECT_DOUBLE_EQ(sim.RunSample({{0, 0, 1}}, 0).sigma, 6.0);
  EXPECT_DOUBLE_EQ(sim.RunSample({{0, 1, 1}}, 0).sigma, 1.0);
}

TEST(CampaignSimulator, ReseedingDoesNotDoubleCount) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec(1, 2));
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}, {0, 0, 2}}, 0);
  EXPECT_DOUBLE_EQ(o.sigma, 3.0);
}

TEST(CampaignSimulator, SecondPromotionStartsFromFirstState) {
  // 0 -> 1 (item 0), separate island 2 -> 3.
  TinyWorld w =
      MakeWorld(4, {{0, 1, 1.0}, {2, 3, 1.0}}, DetSpec(1, 2));
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}, {2, 0, 2}}, 0);
  EXPECT_DOUBLE_EQ(o.sigma, 4.0);
}

TEST(CampaignSimulator, SeedOutsidePromotionRangeAborts) {
  TinyWorld w = MakeWorld(2, {{0, 1, 1.0}}, DetSpec(1, 1));
  CampaignSimulator sim(w.problem, {});
  EXPECT_DEATH(sim.RunSample({{0, 0, 2}}, 0), "promotion");
}

TEST(CampaignSimulator, ExtraAdoptionViaAssociation) {
  // Two items, 0-1 strongly complementary; promoting 0 to user 1 also
  // triggers item 1 with probability 1 under assoc_scale = 1.
  std::vector<float> c{0, 1.0f, 1.0f, 0};
  std::vector<float> s(4, 0.0f);
  TinyWorldSpec spec = DetSpec(2);
  spec.params.assoc_scale = 1.0;
  TinyWorld w = MakeWorld(2, {{0, 1, 1.0}}, spec, MakeRelevance(2, c, s));
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}}, 0);
  // Seed adopts item 0; user 1 adopts item 0 (promotion) + item 1 (extra).
  EXPECT_DOUBLE_EQ(o.sigma, 3.0);
}

TEST(CampaignSimulator, SubstitutableSuppressesExtraAdoption) {
  std::vector<float> c(4, 0.0f);
  std::vector<float> s{0, 1.0f, 1.0f, 0};
  TinyWorldSpec spec = DetSpec(2);
  spec.params.assoc_scale = 1.0;
  TinyWorld w = MakeWorld(2, {{0, 1, 1.0}}, spec, MakeRelevance(2, c, s));
  CampaignSimulator sim(w.problem, {});
  EXPECT_DOUBLE_EQ(sim.RunSample({{0, 0, 1}}, 0).sigma, 2.0);
}

TEST(CampaignSimulator, MarketMaskRestrictsSigma) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec());
  CampaignSimulator sim(w.problem, {});
  std::vector<uint8_t> mask{0, 0, 1};
  SampleOutcome o = sim.RunSample({{0, 0, 1}}, 0, &mask);
  EXPECT_DOUBLE_EQ(o.sigma, 3.0);
  EXPECT_DOUBLE_EQ(o.sigma_market, 1.0);
}

TEST(CampaignSimulator, KeepStatesReflectsAdoptions) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec());
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}}, 0, nullptr, true);
  ASSERT_EQ(o.states.size(), 3u);
  EXPECT_TRUE(o.states[0].Has(0));
  EXPECT_TRUE(o.states[2].Has(0));
}

TEST(CampaignSimulator, InitialStatesSkipReAdoption) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec());
  CampaignSimulator sim(w.problem, {});
  std::vector<pin::UserState> init;
  for (int u = 0; u < 3; ++u) init.emplace_back(1, std::vector<float>{1.0f});
  init[1].Add(0);  // user 1 already owns the item
  SampleOutcome o = sim.RunSample({{0, 0, 1}}, 0, nullptr, true, &init);
  // User 1 cannot be promoted again and never re-propagates: only the seed
  // adopts (user 2 is unreachable because 1 never "newly adopts").
  EXPECT_DOUBLE_EQ(o.sigma, 1.0);
  EXPECT_TRUE(o.states[1].Has(0));
}

TEST(CampaignSimulator, SampleDeterminism) {
  TinyWorld w = MakeWorld(4, {{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5}},
                          DetSpec());
  CampaignSimulator sim(w.problem, {});
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(sim.RunSample({{0, 0, 1}}, i).sigma,
                     sim.RunSample({{0, 0, 1}}, i).sigma);
  }
}

TEST(CampaignSimulator, SamplesVary) {
  TinyWorld w = MakeWorld(4, {{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5}},
                          DetSpec());
  CampaignSimulator sim(w.problem, {});
  double first = sim.RunSample({{0, 0, 1}}, 0).sigma;
  bool varied = false;
  for (uint64_t i = 1; i < 32 && !varied; ++i) {
    varied = sim.RunSample({{0, 0, 1}}, i).sigma != first;
  }
  EXPECT_TRUE(varied);
}

TEST(CampaignSimulator, HalfProbabilityEdgeEmpiricalRate) {
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, DetSpec());
  CampaignSimulator sim(w.problem, {});
  int adopted = 0;
  const int n = 2000;
  for (uint64_t i = 0; i < n; ++i) {
    adopted += sim.RunSample({{0, 0, 1}}, i).adoptions - 1;
  }
  EXPECT_NEAR(adopted / static_cast<double>(n), 0.5, 0.05);
}

TEST(CampaignSimulator, LinearThresholdDeterministicWhenSaturated) {
  TinyWorldSpec spec = DetSpec();
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, spec);
  CampaignConfig cfg;
  cfg.model = DiffusionModel::kLinearThreshold;
  CampaignSimulator sim(w.problem, cfg);
  // Accumulated mass 1.0 >= any threshold in [0,1): full cascade.
  EXPECT_DOUBLE_EQ(sim.RunSample({{0, 0, 1}}, 0).sigma, 3.0);
}

TEST(CampaignSimulator, LinearThresholdAccumulatesAcrossNeighbors) {
  // Two weak parents (0.4 each) of user 2; either alone rarely crosses the
  // threshold, both together always cross 0.8.
  TinyWorldSpec spec = DetSpec();
  TinyWorld w = MakeWorld(3, {{0, 2, 0.4}, {1, 2, 0.4}}, spec);
  CampaignConfig cfg;
  cfg.model = DiffusionModel::kLinearThreshold;
  CampaignSimulator sim(w.problem, cfg);
  int both = 0, solo = 0;
  const int n = 500;
  for (uint64_t i = 0; i < n; ++i) {
    both += sim.RunSample({{0, 0, 1}, {1, 0, 1}}, i).adoptions == 3;
    solo += sim.RunSample({{0, 0, 1}}, i).adoptions == 2;
  }
  EXPECT_NEAR(both / static_cast<double>(n), 0.8, 0.07);
  EXPECT_NEAR(solo / static_cast<double>(n), 0.4, 0.07);
}

TEST(CampaignSimulator, LikelihoodPiAggregatesInfluence) {
  // 0 adopted item; 1 is a neighbor with pref 0.6 for it.
  TinyWorldSpec spec = DetSpec();
  spec.base_pref = 0.6;
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, spec);
  CampaignSimulator sim(w.problem, {});
  std::vector<pin::UserState> states;
  for (int u = 0; u < 2; ++u) {
    states.emplace_back(1, std::vector<float>{1.0f});
  }
  states[0].Add(0);
  double pi = sim.LikelihoodPi(states, {1});
  EXPECT_NEAR(pi, 0.5 * 0.6, 1e-6);  // AIS(1,0) * Ppref(1,0)
}

TEST(CampaignSimulator, LikelihoodPiSkipsAdoptedItems) {
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, DetSpec());
  CampaignSimulator sim(w.problem, {});
  std::vector<pin::UserState> states;
  for (int u = 0; u < 2; ++u) {
    states.emplace_back(1, std::vector<float>{1.0f});
  }
  states[0].Add(0);
  states[1].Add(0);  // market user already owns the item
  EXPECT_DOUBLE_EQ(sim.LikelihoodPi(states, {1}), 0.0);
}

TEST(CampaignSimulator, LikelihoodPiIcCombinesParents) {
  // Two adopter parents with strengths 0.5 and 0.5: AIS = 1 - 0.25 = 0.75.
  TinyWorldSpec spec = DetSpec();
  spec.base_pref = 1.0;
  TinyWorld w = MakeWorld(3, {{0, 2, 0.5}, {1, 2, 0.5}}, spec);
  CampaignSimulator sim(w.problem, {});
  std::vector<pin::UserState> states;
  for (int u = 0; u < 3; ++u) {
    states.emplace_back(1, std::vector<float>{1.0f});
  }
  states[0].Add(0);
  states[1].Add(0);
  EXPECT_NEAR(sim.LikelihoodPi(states, {2}), 0.75, 1e-6);
}

TEST(CampaignSimulator, DynamicInfluenceStrengthensWithSimilarity) {
  // 1 -> 2 has base weight 0.3. When user 1 and 2 share adopted item 1,
  // the dynamic strength grows, so item-0 promotions succeed more often.
  TinyWorldSpec spec;  // dynamics ON
  spec.num_items = 2;
  spec.params = pin::PerceptionParams();
  spec.params.act_gain = 2.0;
  spec.params.pref_gain = 0.0;
  spec.params.assoc_scale = 0.0;
  spec.params.meta_learning_rate = 0.0;
  spec.base_pref = 1.0;
  TinyWorld w = MakeWorld(3, {{1, 2, 0.3}}, spec);
  CampaignSimulator sim(w.problem, {});
  // Without shared history: rate ~0.3.
  int plain = 0, boosted = 0;
  const int n = 800;
  for (uint64_t i = 0; i < n; ++i) {
    plain += sim.RunSample({{1, 0, 1}}, i).adoptions == 2;
  }
  // Pre-adopt item 1 for both users via initial states.
  std::vector<pin::UserState> init;
  for (int u = 0; u < 3; ++u) {
    init.emplace_back(2, std::vector<float>{1.0f, 1.0f});
  }
  init[1].Add(1);
  init[2].Add(1);
  for (uint64_t i = 0; i < n; ++i) {
    SampleOutcome o = sim.RunSample({{1, 0, 1}}, i, nullptr, false, &init);
    boosted += o.adoptions == 2;
  }
  EXPECT_GT(boosted, plain + 50);
}

}  // namespace
}  // namespace imdpp::diffusion
