// In-process smoke tests of the imdpp CLI (cli::Run is the whole binary
// behind injectable streams): exit codes and registered-name listings on
// unknown planners/datasets, plan output that parses as JSON and matches
// an in-process CampaignSession::Run bit for bit, and the acceptance
// check of the sweep subsystem — a fig9-budget-shaped JSON sweep
// reproduces the estimates of the hand-rolled session loop the figure
// harnesses used to contain (same estimates from the same seeds).
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "cli/cli.h"
#include "config/config_loader.h"
#include "data/dataset_registry.h"
#include "util/json.h"

namespace imdpp {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult RunCli(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  CliResult r;
  r.code = cli::Run(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream file(path);
  file << content;
  return path;
}

util::Json ParseOrDie(const std::string& text) {
  util::Json v;
  std::string error;
  EXPECT_TRUE(util::Json::Parse(text, &v, &error))
      << error << "\ninput:\n" << text;
  return v;
}

TEST(Cli, DatasetsSubcommandListsRegistry) {
  CliResult r = RunCli({"datasets"});
  EXPECT_EQ(r.code, 0);
  for (const std::string& name : data::DatasetRegistry::Names()) {
    EXPECT_NE(r.out.find(name + "\n"), std::string::npos) << name;
  }
  EXPECT_NE(r.out.find("scale-<N>"), std::string::npos);
}

TEST(Cli, UnknownPlannerExitsNonZeroListingRegisteredNames) {
  CliResult r = RunCli(
      {"plan", "--dataset", "fig1-toy", "--planner", "no_such_planner"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("no_such_planner"), std::string::npos) << r.err;
  for (const std::string& name : api::PlannerRegistry::Names()) {
    EXPECT_NE(r.err.find(name), std::string::npos) << name << "\n" << r.err;
  }
}

TEST(Cli, UnknownDatasetExitsNonZeroListingRegisteredNames) {
  CliResult r = RunCli({"plan", "--dataset", "no_such_dataset"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("no_such_dataset"), std::string::npos) << r.err;
  for (const std::string& name : data::DatasetRegistry::Names()) {
    EXPECT_NE(r.err.find(name), std::string::npos) << name << "\n" << r.err;
  }
}

TEST(Cli, UnknownCommandAndMissingFlagsAreUsageErrors) {
  EXPECT_EQ(RunCli({"frobnicate"}).code, 2);
  EXPECT_EQ(RunCli({"plan"}).code, 2);               // no --dataset
  EXPECT_EQ(RunCli({"sweep"}).code, 2);              // no --config
  EXPECT_EQ(RunCli({"compare", "--dataset", "fig1-toy"}).code,
            2);                                      // no --planners
  EXPECT_EQ(RunCli({"help"}).code, 0);
  EXPECT_NE(RunCli({"help"}).out.find("usage"), std::string::npos);
}

TEST(Cli, PlanJsonParsesAndMatchesInProcessSessionRun) {
  // Overrides for every knob the CLI defaults differently from
  // api::PlannerConfig{}, so the in-process mirror below is exact.
  const std::string config_path = WriteTempFile("cli_plan_cfg.json", R"({
    "selection_samples": 4, "eval_samples": 8, "seed": 42,
    "candidates": {"max_users": 8, "max_items": 2}
  })");
  CliResult r = RunCli({"plan", "--dataset", "fig1-toy", "--planner",
                        "dysim", "--budget", "20", "--promotions", "2",
                        "--config", config_path});
  ASSERT_EQ(r.code, 0) << r.err;
  util::Json parsed = ParseOrDie(r.out);
  EXPECT_EQ(parsed.Find("command")->AsString(), "plan");
  EXPECT_DOUBLE_EQ(parsed.Find("budget")->AsDouble(), 20.0);
  const util::Json* result = parsed.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("planner")->AsString(), "dysim");

  api::PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.seed = 42;
  cfg.candidates.max_users = 8;
  cfg.candidates.max_items = 2;
  api::CampaignSession session(
      data::DatasetRegistry::MakeOrDie({"fig1-toy"}), cfg);
  session.SetProblem(20.0, 2);
  api::PlanResult expected = session.Run("dysim");

  // JSON numbers round-trip bit-exactly, so equality is exact.
  EXPECT_DOUBLE_EQ(result->Find("sigma")->AsDouble(), expected.sigma);
  EXPECT_DOUBLE_EQ(result->Find("total_cost")->AsDouble(),
                   expected.total_cost);
  const util::Json* seeds = result->Find("seeds");
  ASSERT_NE(seeds, nullptr);
  ASSERT_EQ(seeds->size(), expected.seeds.size());
  for (size_t i = 0; i < expected.seeds.size(); ++i) {
    EXPECT_EQ((*seeds)[i].Find("user")->AsInt(), expected.seeds[i].user);
    EXPECT_EQ((*seeds)[i].Find("item")->AsInt(), expected.seeds[i].item);
    EXPECT_EQ((*seeds)[i].Find("t")->AsInt(), expected.seeds[i].promotion);
  }
  // The PR 3 work counters flow through the JSON output.
  EXPECT_EQ(result->Find("rounds_simulated")->AsInt(),
            expected.rounds_simulated);
  EXPECT_EQ(result->Find("rounds_skipped")->AsInt(),
            expected.rounds_skipped);
  EXPECT_EQ(result->Find("memo_hits")->AsInt(), expected.memo_hits);
  // No wall-clock fields without --timings: output is byte-stable.
  EXPECT_EQ(result->Find("wall_seconds"), nullptr);
}

TEST(Cli, IdenticalInvocationsPrintIdenticalBytes) {
  const std::vector<std::string> args{
      "plan",        "--dataset", "fig1-toy", "--planner",
      "bgrd",        "--budget",  "20",       "--promotions",
      "2",           "--eval-samples", "8",   "--selection-samples", "4"};
  CliResult a = RunCli(args);
  CliResult b = RunCli(args);
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
}

// The acceptance check: a fig9-budget-shaped sweep config (datasets x
// planners x budgets at T promotions, per-dataset planner subset, shared
// effort config) run through `imdpp sweep` yields exactly the estimates
// of the hand-rolled per-figure harness loop it replaced — one
// CampaignSession per dataset, SetProblem per budget, Run per algorithm.
TEST(Cli, SweepReproducesTheHandRolledFig9HarnessNumbers) {
  const char* kSweepConfig = R"({
    "name": "fig9-budget-small",
    "datasets": [
      "fig1-toy",
      {"name": "yelp-like", "scale": 0.15, "planners": ["dysim", "bgrd"]}
    ],
    "planners": ["dysim", "bgrd", "ps"],
    "budgets": [60, 100],
    "promotions": [3],
    "config": {
      "selection_samples": 4,
      "eval_samples": 8,
      "candidates": {"max_users": 10, "max_items": 4}
    }
  })";
  const std::string path = WriteTempFile("fig9_small.json", kSweepConfig);
  CliResult r = RunCli({"sweep", "--config", path, "--quiet"});
  ASSERT_EQ(r.code, 0) << r.err;
  util::Json parsed = ParseOrDie(r.out);
  const util::Json* points = parsed.Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->size(), 2u * 3 + 2u * 2);  // toy x 3 planners, yelp x 2

  api::PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;

  size_t idx = 0;
  struct DatasetCase {
    data::DatasetSpec spec;
    std::vector<std::string> planners;
  };
  // std::vector (not a C array): gcc 12's inliner raises a spurious
  // -Wmaybe-uninitialized on the aggregate-initialized strings otherwise.
  const std::vector<DatasetCase> cases = {
      {{"fig1-toy", 1.0, 0}, {"dysim", "bgrd", "ps"}},
      {{"yelp-like", 0.15, 0}, {"dysim", "bgrd"}},
  };
  for (const DatasetCase& c : cases) {
    // The exact loop shape bench_fig9_budget.cc used to hand-roll.
    api::CampaignSession session(data::DatasetRegistry::MakeOrDie(c.spec),
                                 cfg);
    for (double budget : {60.0, 100.0}) {
      session.SetProblem(budget, 3);
      for (const std::string& planner : c.planners) {
        api::PlanResult expected = session.Run(planner);
        ASSERT_LT(idx, points->size());
        const util::Json& point = (*points)[idx++];
        EXPECT_EQ(point.Find("dataset")->AsString(), c.spec.name);
        EXPECT_EQ(point.Find("planner")->AsString(), planner);
        EXPECT_DOUBLE_EQ(point.Find("budget")->AsDouble(), budget);
        const util::Json* result = point.Find("result");
        ASSERT_NE(result, nullptr);
        // Same estimates from the same seeds — exact, not approximate.
        EXPECT_DOUBLE_EQ(result->Find("sigma")->AsDouble(), expected.sigma)
            << c.spec.name << " " << planner << " b=" << budget;
        EXPECT_DOUBLE_EQ(result->Find("total_cost")->AsDouble(),
                         expected.total_cost);
        EXPECT_EQ(result->Find("num_seeds")->AsInt(),
                  static_cast<int64_t>(expected.seeds.size()));
      }
    }
  }
  EXPECT_EQ(idx, points->size());
}

TEST(Cli, SweepWritesAlignedCsvAndFailsOnUnknownNames) {
  const std::string path = WriteTempFile("sweep_tiny.json", R"({
    "datasets": ["fig1-toy"],
    "planners": ["bgrd"],
    "budgets": [20],
    "promotions": [2],
    "config": {"selection_samples": 2, "eval_samples": 4}
  })");
  const std::string csv_path = ::testing::TempDir() + "sweep_tiny.csv";
  CliResult r =
      RunCli({"sweep", "--config", path, "--quiet", "--csv", csv_path});
  ASSERT_EQ(r.code, 0) << r.err;
  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(csv, header));
  ASSERT_TRUE(std::getline(csv, row));
  EXPECT_FALSE(std::getline(csv, extra));  // one point -> one data row
  EXPECT_EQ(header.substr(0, 7), "dataset");
  EXPECT_NE(header.find("rounds_simulated"), std::string::npos);
  EXPECT_NE(row.find("bgrd"), std::string::npos);

  // Unknown planner in a sweep fails fast, listing registered names.
  const std::string bad = WriteTempFile("sweep_bad.json", R"({
    "datasets": ["fig1-toy"], "planners": ["zzz"],
    "budgets": [20], "promotions": [2]
  })");
  CliResult bad_run = RunCli({"sweep", "--config", bad, "--quiet"});
  EXPECT_NE(bad_run.code, 0);
  EXPECT_NE(bad_run.err.find("zzz"), std::string::npos) << bad_run.err;
  EXPECT_NE(bad_run.err.find("dysim"), std::string::npos) << bad_run.err;
}

// Prep-artifact acceptance (ISSUE 5): across a fig9-shaped sweep the
// market structure is built exactly once per dataset and every other
// prep-consuming (budget, planner) cell reuses it; planners without
// structure report 0/0.
TEST(Cli, SweepBuildsPrepOncePerDatasetAndReusesItEverywhere) {
  const char* kSweepConfig = R"({
    "name": "prep-reuse",
    "datasets": ["fig1-toy", {"name": "yelp-like", "scale": 0.15}],
    "planners": ["dysim", "adaptive", "ps", "bgrd"],
    "budgets": [60, 100],
    "promotions": [3],
    "config": {
      "selection_samples": 4,
      "eval_samples": 8,
      "candidates": {"max_users": 10, "max_items": 4}
    }
  })";
  const std::string path = WriteTempFile("prep_reuse.json", kSweepConfig);
  CliResult r = RunCli({"sweep", "--config", path, "--quiet"});
  ASSERT_EQ(r.code, 0) << r.err;
  util::Json parsed = ParseOrDie(r.out);
  const util::Json* points = parsed.Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->size(), 2u * 2 * 4);  // datasets x budgets x planners

  std::map<std::string, int64_t> builds, reuses;
  for (size_t i = 0; i < points->size(); ++i) {
    const util::Json& point = (*points)[i];
    const std::string dataset = point.Find("dataset")->AsString();
    const std::string planner = point.Find("planner")->AsString();
    const util::Json* result = point.Find("result");
    ASSERT_NE(result, nullptr);
    const int64_t b = result->Find("prep_builds")->AsInt();
    const int64_t u = result->Find("prep_reuses")->AsInt();
    if (planner == "bgrd") {  // consumes no prep structure
      EXPECT_EQ(b, 0) << dataset;
      EXPECT_EQ(u, 0) << dataset;
    }
    builds[dataset] += b;
    reuses[dataset] += u;
  }
  for (const auto& [dataset, total] : builds) {
    EXPECT_EQ(total, 1) << dataset << ": one build per dataset";
    // 3 prep-consuming planners x 2 budgets, minus the one build.
    EXPECT_EQ(reuses[dataset], 5) << dataset;
  }
}

// `imdpp datasets --prep` prints per-dataset artifact stats, byte-stable
// across runs (no wall-clock fields without --timings).
TEST(Cli, DatasetsPrepPrintsByteStableArtifactStats) {
  const std::vector<std::string> args{
      "datasets", "--prep",       "--dataset",          "fig1-toy",
      "--budget", "20",           "--promotions",       "2",
      "--selection-samples", "4", "--eval-samples",     "8"};
  CliResult a = RunCli(args);
  CliResult b = RunCli(args);
  ASSERT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);

  util::Json parsed = ParseOrDie(a.out);
  EXPECT_EQ(parsed.Find("command")->AsString(), "datasets");
  const util::Json* prep = parsed.Find("prep");
  ASSERT_NE(prep, nullptr);
  ASSERT_EQ(prep->size(), 1u);
  const util::Json& entry = (*prep)[0];
  EXPECT_EQ(entry.Find("dataset")->Find("name")->AsString(), "fig1-toy");
  EXPECT_GT(entry.Find("nominees")->AsInt(), 0);
  EXPECT_GT(entry.Find("markets")->AsInt(), 0);
  EXPECT_GT(entry.Find("mioa_regions")->AsInt(), 0);
  EXPECT_EQ(entry.Find("prep_millis"), nullptr);  // byte-stable by default
}

// ---------------------------------------------------- ISSUE 8 robustness

std::string FirstLine(const std::string& text) {
  return text.substr(0, text.find('\n'));
}

TEST(Cli, FailOnFlagInjectsAStructuredErrorAndDoesNotLeak) {
  const std::vector<std::string> args{"plan",      "--dataset", "fig1-toy",
                                      "--planner", "bgrd",      "--budget",
                                      "20",        "--promotions", "2",
                                      "--fail-on", "data.load"};
  CliResult r = RunCli(args);
  EXPECT_EQ(r.code, 1);
  // stderr leads with the machine-readable error line.
  util::Json error = ParseOrDie(FirstLine(r.err));
  const util::Json* detail = error.Find("error");
  ASSERT_NE(detail, nullptr) << r.err;
  EXPECT_EQ(detail->Find("code")->AsInt(), 13);
  EXPECT_EQ(detail->Find("code_name")->AsString(), "internal");
  EXPECT_NE(detail->Find("message")->AsString().find("data.load"),
            std::string::npos);
  // Deterministic: the same injected failure renders the same bytes.
  EXPECT_EQ(r.err, RunCli(args).err);

  // The underscore alias arms the same point.
  CliResult alias = RunCli({"plan", "--dataset", "fig1-toy", "--planner",
                            "bgrd", "--budget", "20", "--promotions", "2",
                            "--fail_on", "data.load"});
  EXPECT_EQ(alias.code, 1);
  EXPECT_EQ(alias.err, r.err);

  // Run() disarms on exit: the next in-process invocation is clean.
  CliResult clean = RunCli({"plan", "--dataset", "fig1-toy", "--planner",
                            "bgrd", "--budget", "20", "--promotions", "2"});
  EXPECT_EQ(clean.code, 0) << clean.err;
}

TEST(Cli, FailOnRejectsUnknownPointsListingTheCatalog) {
  CliResult r = RunCli({"plan", "--dataset", "fig1-toy", "--planner",
                        "bgrd", "--fail-on", "no.such.point"});
  EXPECT_EQ(r.code, 2);
  util::Json error = ParseOrDie(FirstLine(r.err));
  const util::Json* detail = error.Find("error");
  ASSERT_NE(detail, nullptr) << r.err;
  EXPECT_EQ(detail->Find("code_name")->AsString(), "invalid_argument");
  const std::string message = detail->Find("message")->AsString();
  EXPECT_NE(message.find("no.such.point"), std::string::npos);
  for (const char* point : {"config.parse", "data.load", "eval.sigma",
                            "pool.enqueue", "prep.build", "prep.sketch"}) {
    EXPECT_NE(message.find(point), std::string::npos) << point;
  }
}

TEST(Cli, TinyDeadlineFailsWithDeadlineExceededJson) {
  const std::vector<std::string> args{
      "plan",         "--dataset", "yelp-like", "--planner",
      "dysim",        "--budget",  "100",       "--promotions",
      "2",            "--deadline-ms", "1"};
  CliResult r = RunCli(args);
  EXPECT_EQ(r.code, 1);
  util::Json error = ParseOrDie(FirstLine(r.err));
  const util::Json* detail = error.Find("error");
  ASSERT_NE(detail, nullptr) << r.err;
  EXPECT_EQ(detail->Find("code")->AsInt(), 4);
  EXPECT_EQ(detail->Find("code_name")->AsString(), "deadline_exceeded");
}

TEST(Cli, GenerousDeadlineIsByteInvisibleAndValidationRejectsNegative) {
  const std::vector<std::string> base{
      "plan",        "--dataset", "fig1-toy", "--planner",
      "bgrd",        "--budget",  "20",       "--promotions",
      "2",           "--eval-samples", "8",   "--selection-samples", "4"};
  CliResult plain = RunCli(base);
  ASSERT_EQ(plain.code, 0) << plain.err;
  std::vector<std::string> with_deadline = base;
  with_deadline.insert(with_deadline.end(), {"--deadline-ms", "60000"});
  CliResult deadline = RunCli(with_deadline);
  ASSERT_EQ(deadline.code, 0) << deadline.err;
  EXPECT_EQ(deadline.out, plain.out);  // a quiet deadline changes no byte
  // The underscore alias parses too.
  std::vector<std::string> alias = base;
  alias.insert(alias.end(), {"--deadline_ms", "60000"});
  EXPECT_EQ(RunCli(alias).out, plain.out);

  std::vector<std::string> negative = base;
  negative.insert(negative.end(), {"--deadline-ms", "-1"});
  CliResult rejected = RunCli(negative);
  EXPECT_EQ(rejected.code, 2);
  util::Json error = ParseOrDie(FirstLine(rejected.err));
  EXPECT_EQ(error.Find("error")->Find("code_name")->AsString(),
            "invalid_argument");
}

// ISSUE 10: --adaptive turns on racing (the result JSON shows the race
// counters moving), --adaptive-delta validates its range, the underscore
// aliases parse, and the fixed-path run books zero race counters.
TEST(Cli, AdaptiveFlagEnablesRacingAndValidatesDelta) {
  const std::vector<std::string> base{
      "plan",        "--dataset", "fig1-toy", "--planner",
      "dysim",       "--budget",  "20",       "--promotions",
      "2",           "--eval-samples", "8",   "--selection-samples", "8"};
  CliResult plain = RunCli(base);
  ASSERT_EQ(plain.code, 0) << plain.err;
  const util::Json* fixed_result = ParseOrDie(plain.out).Find("result");
  ASSERT_NE(fixed_result, nullptr);
  EXPECT_EQ(fixed_result->Find("blocks_run")->AsInt(), 0);
  EXPECT_EQ(fixed_result->Find("early_stops")->AsInt(), 0);
  EXPECT_EQ(fixed_result->Find("samples_saved")->AsInt(), 0);

  std::vector<std::string> adaptive = base;
  adaptive.insert(adaptive.end(), {"--adaptive", "--adaptive-delta", "0.1"});
  CliResult raced = RunCli(adaptive);
  ASSERT_EQ(raced.code, 0) << raced.err;
  const util::Json* result = ParseOrDie(raced.out).Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->Find("blocks_run")->AsInt(), 0);
  // And byte-determinism holds on the adaptive path too.
  EXPECT_EQ(RunCli(adaptive).out, raced.out);

  // The underscore alias parses to the same bytes.
  std::vector<std::string> alias = base;
  alias.insert(alias.end(), {"--adaptive", "--adaptive_delta", "0.1"});
  EXPECT_EQ(RunCli(alias).out, raced.out);

  std::vector<std::string> bad = base;
  bad.insert(bad.end(), {"--adaptive", "--adaptive-delta", "1.5"});
  CliResult rejected = RunCli(bad);
  EXPECT_EQ(rejected.code, 2);
  util::Json error = ParseOrDie(FirstLine(rejected.err));
  EXPECT_EQ(error.Find("error")->Find("code_name")->AsString(),
            "invalid_argument");

  // --adaptive-budget caps the race's decision samples (more skipped
  // simulations than the un-budgeted race) and rejects negatives.
  std::vector<std::string> budgeted = base;
  budgeted.insert(budgeted.end(),
                  {"--adaptive", "--adaptive-budget", "4"});
  CliResult capped = RunCli(budgeted);
  ASSERT_EQ(capped.code, 0) << capped.err;
  const util::Json* capped_result = ParseOrDie(capped.out).Find("result");
  ASSERT_NE(capped_result, nullptr);
  EXPECT_GT(capped_result->Find("blocks_run")->AsInt(), 0);
  EXPECT_GE(capped_result->Find("samples_saved")->AsInt(),
            result->Find("samples_saved")->AsInt());

  std::vector<std::string> negative = base;
  negative.insert(negative.end(),
                  {"--adaptive", "--adaptive-budget", "-1"});
  CliResult neg = RunCli(negative);
  EXPECT_EQ(neg.code, 2);
  util::Json neg_error = ParseOrDie(FirstLine(neg.err));
  EXPECT_EQ(neg_error.Find("error")->Find("code_name")->AsString(),
            "invalid_argument");
}

// The capability listing: every backend that implements the racing seam
// advertises it, so scripts can probe before flipping --adaptive on.
TEST(Cli, BackendsListsSelectBestCapability) {
  CliResult r = RunCli({"backends"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mc"), std::string::npos);
  EXPECT_NE(r.out.find("select-best"), std::string::npos);
}

// ISSUE 9: --trace-out writes a Perfetto-loadable Chrome trace with the
// pipeline's phase spans, --metrics-out a snapshot carrying every legacy
// counter — and neither flag changes a byte of the main JSON output.
TEST(Cli, TraceOutAndMetricsOutWriteArtifactsWithoutChangingStdout) {
  const std::vector<std::string> base{
      "plan",        "--dataset", "fig1-toy", "--planner",
      "dysim",       "--budget",  "20",       "--promotions",
      "2",           "--eval-samples", "8",   "--selection-samples", "4"};
  CliResult plain = RunCli(base);
  ASSERT_EQ(plain.code, 0) << plain.err;

  const std::string trace_path = ::testing::TempDir() + "cli_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "cli_metrics.json";
  std::vector<std::string> observed = base;
  observed.insert(observed.end(), {"--trace-out", trace_path,
                                   "--metrics-out", metrics_path});
  CliResult traced = RunCli(observed);
  ASSERT_EQ(traced.code, 0) << traced.err;
  EXPECT_EQ(traced.out, plain.out);  // observability changes no byte

  // The trace artifact: valid JSON, with every pipeline phase span.
  std::ifstream trace_file(trace_path);
  std::stringstream trace_text;
  trace_text << trace_file.rdbuf();
  util::Json trace = ParseOrDie(trace_text.str());
  const util::Json* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<std::string, int> begins;
  for (size_t i = 0; i < events->size(); ++i) {
    const util::Json& e = (*events)[i];
    if (e.Find("ph")->AsString() == "B") {
      ++begins[e.Find("name")->AsString()];
    }
  }
  for (const char* phase : {"phase.dataset", "phase.config", "phase.prep",
                            "phase.select", "phase.eval"}) {
    EXPECT_GE(begins[phase], 1) << phase;
  }

  // The metrics artifact: every legacy counter under its canonical name.
  std::ifstream metrics_file(metrics_path);
  std::stringstream metrics_text;
  metrics_text << metrics_file.rdbuf();
  util::Json metrics = ParseOrDie(metrics_text.str());
  for (const char* name :
       {"eval.simulations", "eval.rounds_simulated", "eval.rounds_skipped",
        "eval.memo_hits", "prep.builds", "prep.reuses", "prep.millis",
        "fault.injected", "fault.retries", "fault.fallbacks"}) {
    EXPECT_NE(metrics.Find(name), nullptr) << name;
  }

  // Arming is per-invocation: the next plain run records no trace events.
  CliResult again = RunCli(base);
  ASSERT_EQ(again.code, 0) << again.err;
  EXPECT_EQ(again.out, plain.out);
}

TEST(Cli, MalformedSweepConfigReportsPosition) {
  const std::string path =
      WriteTempFile("sweep_malformed.json", "{\"datasets\": [,]}");
  CliResult r = RunCli({"sweep", "--config", path, "--quiet"});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find(path), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("1:"), std::string::npos) << r.err;  // line:col
}

}  // namespace
}  // namespace imdpp
