// Property-based tests on diffusion invariants, parameterized over random
// topologies (TEST_P sweeps). The deterministic-cascade configuration
// (edge probability 1, frozen dynamics) turns σ into an exact coverage
// function, so Lemma 1's monotonicity/submodularity are testable *exactly*
// rather than statistically.
#include <gtest/gtest.h>

#include <algorithm>

#include "diffusion/monte_carlo.h"
#include "graph/graph_builder.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace imdpp::diffusion {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

/// Random directed graph with n users and roughly 2n edges, all weight 1.
std::vector<std::tuple<int, int, double>> RandomEdges(int n, uint64_t seed,
                                                      double weight) {
  Rng rng(seed);
  std::vector<std::tuple<int, int, double>> edges;
  for (int i = 0; i < 2 * n; ++i) {
    int a = static_cast<int>(rng.NextBelow(n));
    int b = static_cast<int>(rng.NextBelow(n));
    if (a != b) edges.emplace_back(a, b, weight);
  }
  return edges;
}

class DeterministicCascade : public ::testing::TestWithParam<uint64_t> {
 protected:
  TinyWorld MakeDetWorld(int n, int promotions = 1) {
    TinyWorldSpec s;
    s.params = pin::PerceptionParams::FrozenDynamics();
    s.params.act_cap = 1.0;
    s.num_promotions = promotions;
    return MakeWorld(n, RandomEdges(n, GetParam(), 1.0), s);
  }
};

TEST_P(DeterministicCascade, SigmaIsMonotoneInSeeds) {
  TinyWorld w = MakeDetWorld(12);
  MonteCarloEngine engine(w.problem, {}, 1);  // deterministic: 1 sample
  Rng rng(GetParam() * 31 + 7);
  SeedGroup sg;
  double prev = 0.0;
  for (int i = 0; i < 6; ++i) {
    sg.push_back({static_cast<graph::UserId>(rng.NextBelow(12)), 0, 1});
    double cur = engine.Sigma(sg);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST_P(DeterministicCascade, SigmaIsSubmodularSinglePromotion) {
  TinyWorld w = MakeDetWorld(12);
  MonteCarloEngine engine(w.problem, {}, 1);
  Rng rng(GetParam() * 17 + 3);
  // X ⊂ Y, e ∉ Y: marginal at Y must not exceed marginal at X.
  for (int trial = 0; trial < 10; ++trial) {
    graph::UserId u1 = static_cast<graph::UserId>(rng.NextBelow(12));
    graph::UserId u2 = static_cast<graph::UserId>(rng.NextBelow(12));
    graph::UserId e = static_cast<graph::UserId>(rng.NextBelow(12));
    if (e == u1 || e == u2) continue;
    SeedGroup x{{u1, 0, 1}};
    SeedGroup y{{u1, 0, 1}, {u2, 0, 1}};
    double mx = engine.Sigma({{u1, 0, 1}, {e, 0, 1}}) - engine.Sigma(x);
    double my =
        engine.Sigma({{u1, 0, 1}, {u2, 0, 1}, {e, 0, 1}}) - engine.Sigma(y);
    EXPECT_LE(my, mx + 1e-9);
  }
}

TEST_P(DeterministicCascade, SeedOrderInvariance) {
  TinyWorld w = MakeDetWorld(10, 2);
  MonteCarloEngine engine(w.problem, {}, 4);
  SeedGroup a{{1, 0, 1}, {4, 0, 1}, {7, 0, 2}};
  SeedGroup b{{7, 0, 2}, {1, 0, 1}, {4, 0, 1}};
  EXPECT_DOUBLE_EQ(engine.Sigma(a), engine.Sigma(b));
}

TEST_P(DeterministicCascade, IcAndLtAgreeWhenSaturated) {
  // With p = 1 and preferences 1, both models produce the full reachable
  // set.
  TinyWorld w = MakeDetWorld(10);
  CampaignConfig ic, lt;
  lt.model = DiffusionModel::kLinearThreshold;
  MonteCarloEngine eic(w.problem, ic, 1);
  MonteCarloEngine elt(w.problem, lt, 1);
  SeedGroup sg{{0, 0, 1}, {5, 0, 1}};
  EXPECT_DOUBLE_EQ(eic.Sigma(sg), elt.Sigma(sg));
}

TEST_P(DeterministicCascade, SigmaBoundedByUniverse) {
  TinyWorld w = MakeDetWorld(12, 2);
  MonteCarloEngine engine(w.problem, {}, 2);
  SeedGroup sg{{0, 0, 1}, {3, 0, 1}, {6, 0, 2}};
  EXPECT_LE(engine.Sigma(sg), 12.0 + 1e-9);  // 12 users x 1 item x w=1
}

INSTANTIATE_TEST_SUITE_P(Topologies, DeterministicCascade,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Stochastic/dynamic sweeps ----------------------------------------------

class StochasticDynamics : public ::testing::TestWithParam<uint64_t> {
 protected:
  TinyWorld MakeDynWorld(int n, int items, int promotions) {
    TinyWorldSpec s;
    s.num_items = items;
    s.num_promotions = promotions;
    s.params = pin::PerceptionParams();  // full dynamics ON
    s.base_pref = 0.5;
    // Random complementary/substitutable structure.
    Rng rng(GetParam() * 101 + 13);
    std::vector<float> c(static_cast<size_t>(items) * items, 0.0f);
    std::vector<float> sm(static_cast<size_t>(items) * items, 0.0f);
    for (int i = 0; i < items; ++i) {
      for (int j = 0; j < items; ++j) {
        if (i == j) continue;
        if (rng.NextBool(0.3)) {
          c[static_cast<size_t>(i) * items + j] =
              static_cast<float>(rng.NextRange(0.1, 0.9));
        }
        if (rng.NextBool(0.2)) {
          sm[static_cast<size_t>(i) * items + j] =
              static_cast<float>(rng.NextRange(0.1, 0.9));
        }
      }
    }
    return MakeWorld(n, RandomEdges(n, GetParam(), 0.4), s,
                     testutil::MakeRelevance(items, c, sm));
  }
};

TEST_P(StochasticDynamics, AdoptionCountsBounded) {
  TinyWorld w = MakeDynWorld(15, 4, 3);
  CampaignSimulator sim(w.problem, {});
  SeedGroup sg{{0, 0, 1}, {1, 1, 2}, {2, 2, 3}};
  for (uint64_t i = 0; i < 16; ++i) {
    SampleOutcome o = sim.RunSample(sg, i, nullptr, true);
    EXPECT_LE(o.adoptions, 15 * 4);
    EXPECT_GE(o.sigma, 0.0);
    // Adoption sets are consistent with the recorded count.
    int total = 0;
    for (const pin::UserState& st : o.states) total += st.NumAdopted();
    EXPECT_EQ(total, o.adoptions);
  }
}

TEST_P(StochasticDynamics, WeightingsStayInUnitInterval) {
  TinyWorld w = MakeDynWorld(12, 4, 2);
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}, {1, 1, 1}}, 3, nullptr, true);
  for (const pin::UserState& st : o.states) {
    for (float wm : st.wmeta()) {
      EXPECT_GE(wm, 0.0f);
      EXPECT_LE(wm, 1.0f);
    }
  }
}

TEST_P(StochasticDynamics, WeightingsNeverDecrease) {
  // The saturating update only moves weights toward 1.
  TinyWorld w = MakeDynWorld(12, 4, 2);
  CampaignSimulator sim(w.problem, {});
  SampleOutcome o = sim.RunSample({{0, 0, 1}, {1, 1, 1}}, 5, nullptr, true);
  for (graph::UserId u = 0; u < 12; ++u) {
    std::span<const float> w0 = w.problem.Wmeta0(u);
    for (size_t m = 0; m < w0.size(); ++m) {
      EXPECT_GE(o.states[u].wmeta()[m] + 1e-6f, w0[m]);
    }
  }
}

TEST_P(StochasticDynamics, EngineEstimatesAreDeterministic) {
  TinyWorld w = MakeDynWorld(15, 4, 3);
  MonteCarloEngine a(w.problem, {}, 8);
  MonteCarloEngine b(w.problem, {}, 8);
  SeedGroup sg{{0, 0, 1}, {1, 1, 2}};
  EXPECT_DOUBLE_EQ(a.Sigma(sg), b.Sigma(sg));
  auto ea = a.EvalMarket(sg, {0, 1, 2, 3});
  auto eb = b.EvalMarket(sg, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(ea.pi, eb.pi);
  EXPECT_DOUBLE_EQ(ea.sigma_market, eb.sigma_market);
}

TEST_P(StochasticDynamics, ExpectedProbabilitiesInRange) {
  TinyWorld w = MakeDynWorld(12, 4, 2);
  MonteCarloEngine engine(w.problem, {}, 8);
  ExpectedState es = engine.Expected({{0, 0, 1}, {1, 1, 1}});
  for (graph::UserId u = 0; u < 12; ++u) {
    for (kg::ItemId x = 0; x < 4; ++x) {
      EXPECT_GE(es.AdoptionProb(u, x), 0.0);
      EXPECT_LE(es.AdoptionProb(u, x), 1.0 + 1e-9);
    }
  }
}

TEST_P(StochasticDynamics, MoreBudgetedSeedsNeverHurtOnAverage) {
  // Statistical (paired) monotonicity under full dynamics in a single
  // promotion: adding an isolated extra seed cannot lower σ̂ materially.
  TinyWorld w = MakeDynWorld(15, 4, 1);
  MonteCarloEngine engine(w.problem, {}, 64);
  double base = engine.Sigma({{0, 0, 1}});
  double with = engine.Sigma({{0, 0, 1}, {9, 2, 1}});
  EXPECT_GE(with, base - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StochasticDynamics,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace imdpp::diffusion
