#include <gtest/gtest.h>

#include "diffusion/monte_carlo.h"
#include "tests/test_util.h"

namespace imdpp::diffusion {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

TinyWorldSpec DetSpec(int items = 1, int promotions = 1) {
  TinyWorldSpec s;
  s.num_items = items;
  s.num_promotions = promotions;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  return s;
}

TEST(MonteCarloEngine, SigmaOfEmptySeedGroupIsZero) {
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, DetSpec());
  MonteCarloEngine engine(w.problem, {}, 16);
  EXPECT_DOUBLE_EQ(engine.Sigma({}), 0.0);
}

TEST(MonteCarloEngine, SigmaDeterministicAcrossEngines) {
  TinyWorld w = MakeWorld(4, {{0, 1, 0.4}, {1, 2, 0.6}, {0, 3, 0.3}},
                          DetSpec());
  MonteCarloEngine a(w.problem, {}, 32);
  MonteCarloEngine b(w.problem, {}, 32);
  EXPECT_DOUBLE_EQ(a.Sigma({{0, 0, 1}}), b.Sigma({{0, 0, 1}}));
}

TEST(MonteCarloEngine, SigmaMatchesClosedFormSingleEdge) {
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, DetSpec());
  MonteCarloEngine engine(w.problem, {}, 4000);
  // E[sigma] = 1 (seed) + 0.5.
  EXPECT_NEAR(engine.Sigma({{0, 0, 1}}), 1.5, 0.05);
}

TEST(MonteCarloEngine, SimulationCounterAdvances) {
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, DetSpec());
  MonteCarloEngine engine(w.problem, {}, 10);
  engine.Sigma({{0, 0, 1}});
  EXPECT_EQ(engine.num_simulations(), 10);
  engine.Sigma({{0, 0, 1}});
  EXPECT_EQ(engine.num_simulations(), 20);
}

TEST(MonteCarloEngine, EvalMarketSigmaConsistent) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec());
  MonteCarloEngine engine(w.problem, {}, 8);
  MonteCarloEngine::MarketEval ev = engine.EvalMarket({{0, 0, 1}}, {1, 2});
  EXPECT_DOUBLE_EQ(ev.sigma, 3.0);
  EXPECT_DOUBLE_EQ(ev.sigma_market, 2.0);
  EXPECT_GE(ev.pi, 0.0);
}

TEST(MonteCarloEngine, MarketSigmaNeverExceedsTotal) {
  TinyWorld w = MakeWorld(5, {{0, 1, 0.6}, {1, 2, 0.6}, {2, 3, 0.6},
                              {3, 4, 0.6}},
                          DetSpec());
  MonteCarloEngine engine(w.problem, {}, 24);
  MonteCarloEngine::MarketEval ev = engine.EvalMarket({{0, 0, 1}}, {2, 3});
  EXPECT_LE(ev.sigma_market, ev.sigma + 1e-12);
}

TEST(MonteCarloEngine, PiPositiveWhenFrontierHasUnadoptedNeighbors) {
  // Seed at 0; market user 1 is influenced but may not adopt (p=0.5);
  // when it doesn't adopt, the 0->1 edge contributes to pi.
  TinyWorldSpec s = DetSpec();
  s.base_pref = 0.5;
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, s);
  MonteCarloEngine engine(w.problem, {}, 64);
  MonteCarloEngine::MarketEval ev = engine.EvalMarket({{0, 0, 1}}, {1});
  EXPECT_GT(ev.pi, 0.0);
}

TEST(MonteCarloEngine, PairedMarginalNonNegativeSinglePromotion) {
  // Static single-promotion sigma is monotone; paired estimates should
  // reflect that up to tiny noise.
  TinyWorld w = MakeWorld(
      6, {{0, 1, 0.5}, {1, 2, 0.5}, {3, 4, 0.5}, {4, 5, 0.5}, {2, 3, 0.2}},
      DetSpec());
  MonteCarloEngine engine(w.problem, {}, 200);
  double base = engine.Sigma({{0, 0, 1}});
  double with = engine.Sigma({{0, 0, 1}, {3, 0, 1}});
  EXPECT_GE(with, base);
}

TEST(ExpectedState, InitialOfMatchesProblem) {
  TinyWorldSpec s = DetSpec();
  s.wmeta0 = 0.4;
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, s);
  ExpectedState es = ExpectedState::InitialOf(w.problem);
  EXPECT_DOUBLE_EQ(es.AdoptionProb(0, 0), 0.0);
  EXPECT_FLOAT_EQ(es.AvgWmeta(1)[0], 0.4f);
}

TEST(ExpectedState, SeedAdoptionProbabilityIsOne) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec());
  MonteCarloEngine engine(w.problem, {}, 16);
  ExpectedState es = engine.Expected({{0, 0, 1}});
  EXPECT_DOUBLE_EQ(es.AdoptionProb(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(es.AdoptionProb(2, 0), 1.0);
}

TEST(ExpectedState, HalfEdgeAdoptionProbability) {
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, DetSpec());
  MonteCarloEngine engine(w.problem, {}, 2000);
  ExpectedState es = engine.Expected({{0, 0, 1}});
  EXPECT_NEAR(es.AdoptionProb(1, 0), 0.5, 0.05);
}

TEST(ExpectedState, AvgRelUsesAverageWeightings) {
  std::vector<float> c{0, 0.8f, 0.8f, 0};
  std::vector<float> s(4, 0.0f);
  TinyWorldSpec spec = DetSpec(2);
  spec.wmeta0 = 0.5;
  TinyWorld w =
      MakeWorld(2, {{0, 1, 0.5}}, spec, testutil::MakeRelevance(2, c, s));
  MonteCarloEngine engine(w.problem, {}, 4);
  pin::Dynamics dyn(*w.relevance, spec.params);
  ExpectedState es = ExpectedState::InitialOf(w.problem);
  EXPECT_NEAR(es.AvgRelC(dyn.pin(), {}, 0, 1), 0.4, 1e-6);  // 0.5 * 0.8
  EXPECT_NEAR(es.AvgRelS(dyn.pin(), {0, 1}, 0, 1), 0.0, 1e-9);
}

// ---------------------------------------------------------------------
// Parallel reduction (ISSUE 2): the shard layout depends only on the
// sample count, so every estimate must be BIT-identical — EXPECT_EQ on
// doubles, not EXPECT_NEAR — for any thread count, including the serial
// fallback (0) and over-subscription (more threads than shards).

/// A world with genuinely stochastic edges so a reduction-order bug would
/// actually change low-order bits.
TinyWorld NoisyWorld() {
  return MakeWorld(6,
                   {{0, 1, 0.37}, {1, 2, 0.61}, {2, 3, 0.53},
                    {3, 4, 0.29}, {0, 4, 0.47}, {4, 5, 0.71}},
                   DetSpec(/*items=*/2, /*promotions=*/2));
}

TEST(MonteCarloEngine, SigmaBitIdenticalAcrossThreadCounts) {
  TinyWorld w = NoisyWorld();
  const SeedGroup seeds{{0, 0, 1}, {2, 1, 2}};
  MonteCarloEngine serial(w.problem, {}, 37, /*num_threads=*/0);
  const double expected = serial.Sigma(seeds);
  for (int threads : {1, 2, 3, 4, 8, 64}) {
    MonteCarloEngine engine(w.problem, {}, 37, threads);
    EXPECT_EQ(engine.Sigma(seeds), expected) << "threads=" << threads;
  }
}

TEST(MonteCarloEngine, EvalMarketBitIdenticalAcrossThreadCounts) {
  TinyWorld w = NoisyWorld();
  const SeedGroup seeds{{0, 0, 1}};
  const std::vector<UserId> market{1, 3, 5};
  MonteCarloEngine serial(w.problem, {}, 48, /*num_threads=*/0);
  MonteCarloEngine::MarketEval base = serial.EvalMarket(seeds, market);
  for (int threads : {1, 2, 4, 8}) {
    MonteCarloEngine engine(w.problem, {}, 48, threads);
    MonteCarloEngine::MarketEval ev = engine.EvalMarket(seeds, market);
    EXPECT_EQ(ev.sigma, base.sigma) << "threads=" << threads;
    EXPECT_EQ(ev.sigma_market, base.sigma_market) << "threads=" << threads;
    EXPECT_EQ(ev.pi, base.pi) << "threads=" << threads;
  }
}

TEST(ExpectedState, BitIdenticalAcrossThreadCounts) {
  TinyWorld w = NoisyWorld();
  const SeedGroup seeds{{0, 0, 1}, {2, 1, 2}};
  MonteCarloEngine serial(w.problem, {}, 40, /*num_threads=*/0);
  ExpectedState base = serial.Expected(seeds);
  for (int threads : {1, 2, 4, 8}) {
    MonteCarloEngine engine(w.problem, {}, 40, threads);
    ExpectedState es = engine.Expected(seeds);
    for (UserId u = 0; u < w.problem.NumUsers(); ++u) {
      for (ItemId x = 0; x < w.problem.NumItems(); ++x) {
        EXPECT_EQ(es.AdoptionProb(u, x), base.AdoptionProb(u, x))
            << "threads=" << threads << " u=" << u << " x=" << x;
      }
      std::span<const float> got = es.AvgWmeta(u);
      std::span<const float> want = base.AvgWmeta(u);
      ASSERT_EQ(got.size(), want.size());
      for (size_t m = 0; m < got.size(); ++m) {
        EXPECT_EQ(got[m], want[m])
            << "threads=" << threads << " u=" << u << " m=" << m;
      }
    }
  }
}

TEST(MonteCarloEngine, PairedMarginalPreservedUnderThreading) {
  // The common-random-number pairing Sigma(S ∪ {s}) - Sigma(S) must
  // survive threading exactly: same gain bits on every thread count, and
  // still non-negative for a static single promotion.
  TinyWorld w = MakeWorld(
      6, {{0, 1, 0.5}, {1, 2, 0.5}, {3, 4, 0.5}, {4, 5, 0.5}, {2, 3, 0.2}},
      DetSpec());
  MonteCarloEngine serial(w.problem, {}, 200, /*num_threads=*/0);
  const double gain_serial =
      serial.Sigma({{0, 0, 1}, {3, 0, 1}}) - serial.Sigma({{0, 0, 1}});
  EXPECT_GE(gain_serial, 0.0);
  for (int threads : {2, 4}) {
    MonteCarloEngine engine(w.problem, {}, 200, threads);
    const double gain =
        engine.Sigma({{0, 0, 1}, {3, 0, 1}}) - engine.Sigma({{0, 0, 1}});
    EXPECT_EQ(gain, gain_serial) << "threads=" << threads;
  }
}

TEST(MonteCarloEngine, ThreadCountEdgeCases) {
  TinyWorld w = NoisyWorld();
  const SeedGroup seeds{{0, 0, 1}};
  // Fewer samples than shards/threads, single sample, auto threads.
  MonteCarloEngine one_sample_serial(w.problem, {}, 1, 0);
  MonteCarloEngine one_sample_wide(w.problem, {}, 1, 16);
  EXPECT_EQ(one_sample_serial.Sigma(seeds), one_sample_wide.Sigma(seeds));

  MonteCarloEngine three_serial(w.problem, {}, 3, 0);
  MonteCarloEngine three_wide(w.problem, {}, 3, 16);
  EXPECT_EQ(three_serial.Sigma(seeds), three_wide.Sigma(seeds));

  MonteCarloEngine auto_threads(w.problem, {}, 24, util::kAutoThreads);
  EXPECT_EQ(auto_threads.num_threads(), util::HardwareConcurrency());
  MonteCarloEngine serial(w.problem, {}, 24, 0);
  EXPECT_EQ(auto_threads.Sigma(seeds), serial.Sigma(seeds));
}

TEST(MonteCarloEngine, SimulationCounterExactUnderThreading) {
  TinyWorld w = NoisyWorld();
  MonteCarloEngine engine(w.problem, {}, 10, /*num_threads=*/4);
  engine.Sigma({{0, 0, 1}});
  EXPECT_EQ(engine.num_simulations(), 10);
  engine.Expected({{0, 0, 1}});
  EXPECT_EQ(engine.num_simulations(), 20);
}

// ---------------------------------------------------------------------
// Evaluation fast path (ISSUE 3): the scratch-arena rewrite, promotion-
// round checkpoint reuse, and the σ memo must all be BIT-identical to the
// plain from-scratch evaluation — EXPECT_EQ on doubles throughout.

/// A deeper noisy world (4 promotions) so checkpoints have prefixes worth
/// reusing.
TinyWorld DeepNoisyWorld() {
  return MakeWorld(6,
                   {{0, 1, 0.37}, {1, 2, 0.61}, {2, 3, 0.53},
                    {3, 4, 0.29}, {0, 4, 0.47}, {4, 5, 0.71}},
                   DetSpec(/*items=*/2, /*promotions=*/4));
}

TEST(CampaignSimulator, ScratchReuseMatchesFreshAllocation) {
  TinyWorld w = DeepNoisyWorld();
  CampaignSimulator sim(w.problem, {});
  SimScratch reused;  // one arena across all samples and seed groups
  const SeedGroup groups[] = {
      {{0, 0, 1}, {2, 1, 2}}, {{1, 0, 2}}, {{0, 0, 1}, {4, 1, 3}, {5, 0, 4}}};
  for (uint64_t i = 0; i < 24; ++i) {
    const SeedGroup& g = groups[i % 3];
    SimScratch fresh;
    SampleOutcome a = sim.RunSample(g, i, nullptr, true, nullptr, &fresh);
    SampleOutcome b = sim.RunSample(g, i, nullptr, true, nullptr, &reused);
    EXPECT_EQ(a.sigma, b.sigma) << "sample " << i;
    EXPECT_EQ(a.sigma_market, b.sigma_market) << "sample " << i;
    EXPECT_EQ(a.adoptions, b.adoptions) << "sample " << i;
    ASSERT_EQ(a.states.size(), b.states.size());
    for (size_t u = 0; u < a.states.size(); ++u) {
      EXPECT_EQ(a.states[u].Adopted(), b.states[u].Adopted()) << "user " << u;
      EXPECT_EQ(a.states[u].wmeta(), b.states[u].wmeta()) << "user " << u;
    }
  }
}

TEST(CheckpointedEval, AppendedSeedBitIdenticalAcrossThreadCounts) {
  TinyWorld w = DeepNoisyWorld();
  const SeedGroup base{{0, 0, 1}, {2, 1, 2}};
  for (int threads : {0, 1, 2, 8}) {
    MonteCarloEngine engine(w.problem, {}, 24, threads);
    MonteCarloEngine fresh(w.problem, {}, 24, threads);
    CheckpointedEval ce(engine, base);
    for (int t = 1; t <= 4; ++t) {
      SeedGroup g = base;
      g.push_back({4, 0, t});
      EXPECT_EQ(ce.Sigma(g), fresh.Sigma(g))
          << "threads=" << threads << " t=" << t;
    }
    // The base itself, fully resumed from checkpoints.
    EXPECT_EQ(ce.Sigma(base), fresh.Sigma(base)) << "threads=" << threads;
  }
}

TEST(CheckpointedEval, MovedSeedBitIdentical) {
  TinyWorld w = DeepNoisyWorld();
  const SeedGroup full{{0, 0, 1}, {2, 1, 2}, {4, 0, 3}};
  MonteCarloEngine engine(w.problem, {}, 24, /*num_threads=*/0);
  MonteCarloEngine fresh(w.problem, {}, 24, /*num_threads=*/0);
  // Move each seed in turn through every round, coordinate-ascent style:
  // the base is the group without the moving seed.
  for (size_t i = 0; i < full.size(); ++i) {
    SeedGroup without = full;
    without.erase(without.begin() + static_cast<ptrdiff_t>(i));
    CheckpointedEval ce(engine, without);
    for (int t = 1; t <= 4; ++t) {
      SeedGroup g = full;
      g[i].promotion = t;
      EXPECT_EQ(ce.Sigma(g), fresh.Sigma(g)) << "i=" << i << " t=" << t;
    }
  }
}

TEST(CheckpointedEval, RebaseKeepsSharedPrefixExact) {
  TinyWorld w = DeepNoisyWorld();
  MonteCarloEngine engine(w.problem, {}, 16, /*num_threads=*/0);
  MonteCarloEngine fresh(w.problem, {}, 16, /*num_threads=*/0);
  // Greedy-placement shape: the base grows one seed at a time; every
  // candidate evaluation must stay bit-identical after each Rebase.
  const Nominee noms[] = {{0, 0}, {2, 1}, {4, 0}, {5, 1}};
  CheckpointedEval ce(engine, {});
  SeedGroup placed;
  for (const Nominee& n : noms) {
    for (int t = 1; t <= 4; ++t) {
      SeedGroup g = placed;
      g.push_back({n.user, n.item, t});
      EXPECT_EQ(ce.Sigma(g), fresh.Sigma(g)) << "t=" << t;
    }
    placed.push_back({n.user, n.item, static_cast<int>(placed.size() % 4) + 1});
    ce.Rebase(placed);
  }
}

TEST(CheckpointedEval, EvalMarketBitIdenticalAcrossThreadCounts) {
  TinyWorld w = DeepNoisyWorld();
  const SeedGroup base{{0, 0, 1}, {2, 1, 2}};
  const std::vector<UserId> market{1, 3, 5};
  for (int threads : {0, 2, 8}) {
    MonteCarloEngine engine(w.problem, {}, 24, threads);
    MonteCarloEngine fresh(w.problem, {}, 24, threads);
    CheckpointedEval ce(engine, base, market);
    for (int t = 2; t <= 4; ++t) {
      SeedGroup g = base;
      g.push_back({4, 0, t});
      MonteCarloEngine::MarketEval a = ce.EvalMarket(g);
      MonteCarloEngine::MarketEval b = fresh.EvalMarket(g, market);
      EXPECT_EQ(a.sigma, b.sigma) << "threads=" << threads << " t=" << t;
      EXPECT_EQ(a.sigma_market, b.sigma_market)
          << "threads=" << threads << " t=" << t;
      EXPECT_EQ(a.pi, b.pi) << "threads=" << threads << " t=" << t;
    }
  }
}

TEST(MonteCarloEngine, MemoHitMatchesRecompute) {
  TinyWorld w = DeepNoisyWorld();
  const SeedGroup g{{0, 0, 1}, {2, 1, 2}};
  MonteCarloEngine memoized(w.problem, {}, 24);
  memoized.EnableSigmaMemo();
  MonteCarloEngine plain(w.problem, {}, 24);
  const double first = memoized.Sigma(g);
  const int64_t sims_after_first = memoized.num_simulations();
  const double second = memoized.Sigma(g);  // memo hit: no simulation
  EXPECT_EQ(second, first);
  EXPECT_EQ(memoized.num_memo_hits(), 1);
  EXPECT_EQ(memoized.num_simulations(), sims_after_first);
  // The memoized bits equal a plain engine's recompute, every time.
  EXPECT_EQ(plain.Sigma(g), first);
  EXPECT_EQ(plain.Sigma(g), first);
  EXPECT_EQ(plain.num_memo_hits(), 0);
}

TEST(MonteCarloEngine, RoundsAccountingSplitsNaiveWork) {
  TinyWorld w = DeepNoisyWorld();  // T = 4
  MonteCarloEngine engine(w.problem, {}, 10, /*num_threads=*/0);
  engine.Sigma({{0, 0, 1}, {2, 1, 2}});  // seeded rounds: 1, 2
  EXPECT_EQ(engine.num_rounds_simulated(), 10 * 2);
  EXPECT_EQ(engine.num_rounds_skipped(), 10 * 2);  // rounds 3, 4 are no-ops
  engine.Sigma({});  // nothing seeded: all 4 rounds skipped
  EXPECT_EQ(engine.num_rounds_simulated(), 10 * 2);
  EXPECT_EQ(engine.num_rounds_skipped(), 10 * 2 + 10 * 4);
}

// --------------------------------------------------- ISSUE 4 satellites:
// Expected() through CheckpointedEval, and the (group, market) memo for
// EvalMarket behind the same opt-in flag as the σ memo.

/// Bit-exact comparison via the public accessors.
void ExpectSameExpectedState(const ExpectedState& a, const ExpectedState& b,
                             const Problem& p) {
  ASSERT_EQ(a.num_users(), b.num_users());
  for (UserId u = 0; u < p.NumUsers(); ++u) {
    for (ItemId x = 0; x < p.NumItems(); ++x) {
      EXPECT_EQ(a.AdoptionProb(u, x), b.AdoptionProb(u, x))
          << "u=" << u << " x=" << x;
    }
    std::span<const float> wa = a.AvgWmeta(u);
    std::span<const float> wb = b.AvgWmeta(u);
    ASSERT_EQ(wa.size(), wb.size());
    for (size_t m = 0; m < wa.size(); ++m) {
      EXPECT_EQ(wa[m], wb[m]) << "u=" << u << " m=" << m;
    }
  }
}

TEST(CheckpointedEval, ExpectedBitIdenticalToEngineExpectedAsBaseGrows) {
  // Live dynamics + real relevance so the expected weightings actually
  // move; the DRE shape: re-evaluate Expected under a growing group.
  TinyWorldSpec s;
  s.num_items = 2;
  s.num_promotions = 4;
  s.params = pin::PerceptionParams{};
  s.wmeta0 = 0.5;
  TinyWorld w = MakeWorld(6,
                          {{0, 1, 0.37}, {1, 2, 0.61}, {2, 3, 0.53},
                           {3, 4, 0.29}, {0, 4, 0.47}, {4, 5, 0.71}},
                          s,
                          testutil::MakeRelevance(2, {0, 0.8f, 0.8f, 0},
                                        {0, 0.3f, 0.3f, 0}));
  MonteCarloEngine engine(w.problem, {}, 24);
  CheckpointedEval eval(engine, /*base=*/{});
  SeedGroup sg;
  const Seed appended[] = {{0, 0, 1}, {2, 1, 1}, {1, 0, 2}, {4, 1, 3}};
  for (const Seed& seed : appended) {
    sg.push_back(seed);
    eval.Rebase(sg);
    ExpectedState fast = eval.Expected(sg);
    ExpectedState plain = engine.Expected(sg);
    ExpectSameExpectedState(fast, plain, w.problem);
  }
  // With the base's checkpoints built, re-evaluating the base itself is
  // pure reuse: not a single extra promotion-round simulated.
  const int64_t rounds_before = engine.num_rounds_simulated();
  ExpectedState again = eval.Expected(sg);
  EXPECT_EQ(engine.num_rounds_simulated(), rounds_before);
  ExpectSameExpectedState(again, engine.Expected(sg), w.problem);
}

TEST(CheckpointedEval, ExpectedOfGroupDivergingFromBaseMatchesEngine) {
  TinyWorld w = DeepNoisyWorld();
  MonteCarloEngine engine(w.problem, {}, 16);
  const SeedGroup base{{0, 0, 1}, {2, 1, 2}, {4, 0, 3}};
  CheckpointedEval eval(engine, base);
  // Same rounds 1-2, different round 3; and a shorter prefix group.
  const SeedGroup variants[] = {
      {{0, 0, 1}, {2, 1, 2}, {5, 0, 3}},
      {{0, 0, 1}, {2, 1, 2}},
      {{0, 0, 1}, {2, 1, 2}, {4, 0, 3}, {5, 1, 4}},
  };
  for (const SeedGroup& g : variants) {
    ExpectSameExpectedState(eval.Expected(g), engine.Expected(g), w.problem);
  }
}

TEST(MonteCarloEngine, EvalMarketMemoizedPerGroupAndMarket) {
  TinyWorld w = DeepNoisyWorld();
  MonteCarloEngine engine(w.problem, {}, 16, /*num_threads=*/0);
  engine.EnableSigmaMemo();  // the same opt-in flag covers both memos
  const SeedGroup g{{0, 0, 1}, {2, 1, 2}};
  const std::vector<UserId> market_a{0, 1, 2};
  const std::vector<UserId> market_b{3, 4, 5};

  const MonteCarloEngine::MarketEval first = engine.EvalMarket(g, market_a);
  const int64_t sims = engine.num_simulations();
  const int64_t skipped = engine.num_rounds_skipped();

  // Same (group, market): answered from the memo — identical bits, no
  // simulation, one memo hit, skipped-work booked.
  const MonteCarloEngine::MarketEval hit = engine.EvalMarket(g, market_a);
  EXPECT_EQ(hit.sigma, first.sigma);
  EXPECT_EQ(hit.sigma_market, first.sigma_market);
  EXPECT_EQ(hit.pi, first.pi);
  EXPECT_EQ(engine.num_simulations(), sims);
  EXPECT_EQ(engine.num_memo_hits(), 1);
  EXPECT_GT(engine.num_rounds_skipped(), skipped);

  // Different market, same group: a genuine re-evaluation.
  const MonteCarloEngine::MarketEval other = engine.EvalMarket(g, market_b);
  EXPECT_GT(engine.num_simulations(), sims);
  EXPECT_NE(other.sigma_market, first.sigma_market);

  // Different group, same market: also a miss.
  const int64_t sims2 = engine.num_simulations();
  engine.EvalMarket({{0, 0, 1}}, market_a);
  EXPECT_GT(engine.num_simulations(), sims2);

  // The memoized bits equal a plain engine's recompute.
  MonteCarloEngine plain(w.problem, {}, 16, /*num_threads=*/0);
  const MonteCarloEngine::MarketEval recompute =
      plain.EvalMarket(g, market_a);
  EXPECT_EQ(recompute.sigma, first.sigma);
  EXPECT_EQ(recompute.sigma_market, first.sigma_market);
  EXPECT_EQ(recompute.pi, first.pi);
  // And without the opt-in, nothing is memoized.
  plain.EvalMarket(g, market_a);
  EXPECT_EQ(plain.num_memo_hits(), 0);
}

TEST(CheckpointedEval, EvalMarketConsultsTheSharedMemo) {
  TinyWorld w = DeepNoisyWorld();
  MonteCarloEngine engine(w.problem, {}, 16, /*num_threads=*/0);
  engine.EnableSigmaMemo();
  const std::vector<UserId> market{0, 1, 2};
  const SeedGroup base{{0, 0, 1}};
  const SeedGroup g{{0, 0, 1}, {2, 1, 2}};

  const MonteCarloEngine::MarketEval direct = engine.EvalMarket(g, market);
  const int64_t sims = engine.num_simulations();
  CheckpointedEval eval(engine, base, market);
  const MonteCarloEngine::MarketEval via = eval.EvalMarket(g);
  EXPECT_EQ(via.sigma, direct.sigma);
  EXPECT_EQ(via.sigma_market, direct.sigma_market);
  EXPECT_EQ(via.pi, direct.pi);
  EXPECT_EQ(engine.num_simulations(), sims);  // answered from the memo
  EXPECT_EQ(engine.num_memo_hits(), 1);
}

TEST(MonteCarloEngine, InitialStatesRespected) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec());
  MonteCarloEngine engine(w.problem, {}, 4);
  std::vector<pin::UserState> init;
  for (int u = 0; u < 3; ++u) init.emplace_back(1, std::vector<float>{1.0f});
  init[1].Add(0);
  engine.SetInitialStates(&init);
  EXPECT_DOUBLE_EQ(engine.Sigma({{0, 0, 1}}), 1.0);
  engine.SetInitialStates(nullptr);
  EXPECT_DOUBLE_EQ(engine.Sigma({{0, 0, 1}}), 3.0);
}

}  // namespace
}  // namespace imdpp::diffusion
