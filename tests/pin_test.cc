#include <gtest/gtest.h>

#include "pin/dynamics.h"
#include "tests/test_util.h"

namespace imdpp::pin {
namespace {

/// 3 items: 0-1 complementary (0.6), 0-2 substitutable (0.5).
std::unique_ptr<kg::RelevanceModel> ThreeItemRel() {
  std::vector<float> c{0, 0.6f, 0,  //
                       0.6f, 0, 0,  //
                       0, 0, 0};
  std::vector<float> s{0, 0, 0.5f,  //
                       0, 0, 0,     //
                       0.5f, 0, 0};
  return testutil::MakeRelevance(3, c, s);
}

TEST(UserState, AddHasAdopted) {
  UserState st(70, {1.0f});
  EXPECT_FALSE(st.Has(0));
  EXPECT_TRUE(st.Add(0));
  EXPECT_FALSE(st.Add(0));  // idempotent
  EXPECT_TRUE(st.Has(0));
  EXPECT_TRUE(st.Add(69));  // second bitset word
  EXPECT_TRUE(st.Has(69));
  ASSERT_EQ(st.Adopted().size(), 2u);
  EXPECT_EQ(st.Adopted()[0], 0);
  EXPECT_EQ(st.Adopted()[1], 69);
}

TEST(UserState, AdoptedStaysSorted) {
  UserState st(10, {});
  st.Add(5);
  st.Add(1);
  st.Add(9);
  EXPECT_EQ(st.Adopted(), (std::vector<kg::ItemId>{1, 5, 9}));
}

TEST(PersonalItemNetwork, WeightedRelevance) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  PersonalItemNetwork pin(*rel, params);
  std::vector<float> w{0.5f, 1.0f};  // wmeta for [C, S]
  EXPECT_NEAR(pin.RelC(w, 0, 1), 0.3, 1e-6);   // 0.5 * 0.6
  EXPECT_NEAR(pin.RelS(w, 0, 2), 0.5, 1e-6);   // 1.0 * 0.5
  EXPECT_NEAR(pin.RelNet(w, 0, 2), -0.5, 1e-6);
  EXPECT_DOUBLE_EQ(pin.RelC(w, 0, 0), 0.0);  // self-relevance is zero
}

TEST(PersonalItemNetwork, RelevanceClippedTo1) {
  std::vector<float> c{0, 0.9f, 0.9f, 0};
  std::vector<float> s(4, 0.0f);
  auto rel = testutil::MakeRelevance(2, c, s);
  PerceptionParams params;
  PersonalItemNetwork pin(*rel, params);
  std::vector<float> w{2.0f, 0.0f};  // weights beyond 1 still clip result
  EXPECT_DOUBLE_EQ(pin.RelC(w, 0, 1), 1.0);
}

TEST(PersonalItemNetwork, UpdateWeightsGrowsOnEvidence) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  params.meta_learning_rate = 0.5;
  PersonalItemNetwork pin(*rel, params);
  UserState st(3, {0.2f, 0.2f});
  st.Add(0);
  st.Add(1);
  std::vector<kg::ItemId> newly{1};
  pin.UpdateWeights(st, newly);
  // Complementary meta saw evidence s(0,1)=0.6: w += 0.5*0.6*(1-0.2).
  EXPECT_NEAR(st.wmeta()[0], 0.2 + 0.5 * 0.6 * 0.8, 1e-5);
  // Substitutable meta saw s(0,1)=0 evidence: unchanged.
  EXPECT_NEAR(st.wmeta()[1], 0.2, 1e-6);
}

TEST(PersonalItemNetwork, FirstAdoptionLearnsFromPairsWithin) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  params.meta_learning_rate = 1.0;
  PersonalItemNetwork pin(*rel, params);
  UserState st(3, {0.0f, 0.0f});
  st.Add(0);
  st.Add(1);
  std::vector<kg::ItemId> newly{0, 1};  // both new (e.g. a seeded bundle)
  pin.UpdateWeights(st, newly);
  EXPECT_NEAR(st.wmeta()[0], 0.6, 1e-5);  // evidence = s(0,1|C) = 0.6
}

TEST(PersonalItemNetwork, SingleFirstAdoptionNoUpdate) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  PersonalItemNetwork pin(*rel, params);
  UserState st(3, {0.3f, 0.3f});
  st.Add(0);
  std::vector<kg::ItemId> newly{0};
  pin.UpdateWeights(st, newly);
  EXPECT_FLOAT_EQ(st.wmeta()[0], 0.3f);
}

TEST(PersonalItemNetwork, ZeroLearningRateFreezes) {
  auto rel = ThreeItemRel();
  PerceptionParams params = PerceptionParams::FrozenDynamics();
  PersonalItemNetwork pin(*rel, params);
  UserState st(3, {0.3f, 0.3f});
  st.Add(0);
  st.Add(1);
  std::vector<kg::ItemId> newly{1};
  pin.UpdateWeights(st, newly);
  EXPECT_FLOAT_EQ(st.wmeta()[0], 0.3f);
}

TEST(PreferenceModel, ComplementBoostsSubstitutePenalizes) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  params.pref_gain = 1.0;
  PersonalItemNetwork pin(*rel, params);
  PreferenceModel pref(pin);
  UserState st(3, {1.0f, 1.0f});
  st.Add(0);
  // Item 1 is complementary to adopted 0: base 0.2 + 0.6 = 0.8.
  EXPECT_NEAR(pref.Eval(st, 0.2, 1), 0.8, 1e-6);
  // Item 2 is substitutable to adopted 0: base 0.6 - 0.5 = 0.1.
  EXPECT_NEAR(pref.Eval(st, 0.6, 2), 0.1, 1e-6);
}

TEST(PreferenceModel, AdoptedItemHasZeroPreference) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  PersonalItemNetwork pin(*rel, params);
  PreferenceModel pref(pin);
  UserState st(3, {1.0f, 1.0f});
  st.Add(1);
  EXPECT_DOUBLE_EQ(pref.Eval(st, 0.9, 1), 0.0);
}

TEST(PreferenceModel, FrozenGainReturnsBase) {
  auto rel = ThreeItemRel();
  PerceptionParams params = PerceptionParams::FrozenDynamics();
  PersonalItemNetwork pin(*rel, params);
  PreferenceModel pref(pin);
  UserState st(3, {1.0f, 1.0f});
  st.Add(0);
  EXPECT_DOUBLE_EQ(pref.Eval(st, 0.42, 1), 0.42);
}

TEST(PreferenceModel, ClipsToUnitInterval) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  params.pref_gain = 5.0;
  PersonalItemNetwork pin(*rel, params);
  PreferenceModel pref(pin);
  UserState st(3, {1.0f, 1.0f});
  st.Add(0);
  EXPECT_DOUBLE_EQ(pref.Eval(st, 0.5, 1), 1.0);  // boosted beyond 1
  EXPECT_DOUBLE_EQ(pref.Eval(st, 0.1, 2), 0.0);  // penalized below 0
}

TEST(InfluenceModel, SimilarityGrowsWithSharedAdoptions) {
  PerceptionParams params;
  InfluenceModel inf(params);
  UserState a(4, {0.5f}), b(4, {0.5f});
  double sim0 = inf.Similarity(a, b);
  a.Add(0);
  b.Add(0);
  double sim1 = inf.Similarity(a, b);
  EXPECT_GT(sim1, sim0);
}

TEST(InfluenceModel, EvalScalesBaseWeight) {
  PerceptionParams params;
  params.act_gain = 1.0;
  params.sim_adoption_weight = 1.0;  // pure Jaccard
  InfluenceModel inf(params);
  UserState a(4, {}), b(4, {});
  a.Add(0);
  b.Add(0);
  // Jaccard = 1 -> strength doubles.
  EXPECT_NEAR(inf.Eval(0.3, a, b), 0.6, 1e-9);
}

TEST(InfluenceModel, CapEnforced) {
  PerceptionParams params;
  params.act_gain = 10.0;
  params.sim_adoption_weight = 1.0;
  InfluenceModel inf(params);
  UserState a(4, {}), b(4, {});
  a.Add(0);
  b.Add(0);
  EXPECT_DOUBLE_EQ(inf.Eval(0.5, a, b), params.act_cap);
}

TEST(InfluenceModel, FrozenGainReturnsBase) {
  PerceptionParams params = PerceptionParams::FrozenDynamics();
  InfluenceModel inf(params);
  UserState a(4, {}), b(4, {});
  a.Add(0);
  b.Add(0);
  EXPECT_DOUBLE_EQ(inf.Eval(0.37, a, b), 0.37);
}

TEST(AssociationModel, ComplementTriggersSubstituteSuppresses) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  params.assoc_scale = 1.0;
  PersonalItemNetwork pin(*rel, params);
  AssociationModel assoc(pin);
  UserState st(3, {1.0f, 1.0f});
  // Promoted item 0 with pact=0.5, pref=0.8: y=1 complementary (net 0.6).
  EXPECT_NEAR(assoc.ExtraProb(st, 0.5, 0.8, 0, 1), 0.5 * 0.8 * 0.6, 1e-6);
  // y=2 substitutable (net -0.5): no extra adoption.
  EXPECT_DOUBLE_EQ(assoc.ExtraProb(st, 0.5, 0.8, 0, 2), 0.0);
}

TEST(AssociationModel, AdoptedTargetExcluded) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  PersonalItemNetwork pin(*rel, params);
  AssociationModel assoc(pin);
  UserState st(3, {1.0f, 1.0f});
  st.Add(1);
  EXPECT_DOUBLE_EQ(assoc.ExtraProb(st, 0.5, 0.8, 0, 1), 0.0);
}

TEST(Dynamics, BundlesAllModels) {
  auto rel = ThreeItemRel();
  PerceptionParams params;
  Dynamics dyn(*rel, params);
  EXPECT_EQ(&dyn.relevance(), rel.get());
  EXPECT_EQ(dyn.params().act_cap, params.act_cap);
}

}  // namespace
}  // namespace imdpp::pin
