#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "util/hash.h"
#include "util/mathutil.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace imdpp {
namespace {

TEST(Hash, Deterministic) {
  EXPECT_EQ(HashTuple(1, 2, 3), HashTuple(1, 2, 3));
  EXPECT_EQ(UnitHash(42, 7), UnitHash(42, 7));
}

TEST(Hash, SensitiveToEveryComponent) {
  EXPECT_NE(HashTuple(1, 2, 3), HashTuple(1, 2, 4));
  EXPECT_NE(HashTuple(1, 2, 3), HashTuple(1, 3, 2));
  EXPECT_NE(HashTuple(1, 2, 3), HashTuple(2, 2, 3));
  EXPECT_NE(HashTuple(0, 0), HashTuple(0, 0, 0));
}

TEST(Hash, UnitRangeIsHalfOpen) {
  for (uint64_t i = 0; i < 1000; ++i) {
    double u = UnitHash(i, i * 31);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Hash, UniformityRoughly) {
  // Chi-square-lite: 10 buckets over 10k draws should each hold ~1000.
  std::vector<int> buckets(10, 0);
  for (uint64_t i = 0; i < 10000; ++i) {
    ++buckets[static_cast<int>(UnitHash(999, i) * 10)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

TEST(Hash, CollisionFreeOnSmallDomain) {
  std::set<uint64_t> seen;
  for (uint64_t a = 0; a < 64; ++a) {
    for (uint64_t b = 0; b < 64; ++b) {
      seen.insert(HashTuple(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(Rng, DeterministicStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU32() == b.NextU32());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.NextBelow(17), 17u);
}

TEST(Rng, NextUnitMeanNearHalf) {
  Rng r(5);
  double s = 0.0;
  for (int i = 0; i < 10000; ++i) s += r.NextUnit();
  EXPECT_NEAR(s / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  double s = 0.0, s2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = r.NextGaussian();
    s += g;
    s2 += g * g;
  }
  EXPECT_NEAR(s / n, 0.0, 0.05);
  EXPECT_NEAR(s2 / n, 1.0, 0.1);
}

TEST(Rng, LogNormalPositive) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.NextLogNormal(0.5, 0.6), 0.0);
}

TEST(MathUtil, Clip01) {
  EXPECT_DOUBLE_EQ(Clip01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(Clip01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(Clip01(1.5), 1.0);
}

TEST(MathUtil, JaccardSorted) {
  std::vector<int> a{1, 2, 3}, b{2, 3, 4};
  EXPECT_DOUBLE_EQ(JaccardSorted(a, b), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSorted(a, a), 1.0);
  std::vector<int> empty;
  EXPECT_DOUBLE_EQ(JaccardSorted(a, empty), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSorted(empty, empty), 0.0);
}

TEST(MathUtil, Cosine) {
  EXPECT_DOUBLE_EQ(Cosine({1, 0}, {0, 1}), 0.0);
  EXPECT_NEAR(Cosine({1, 1}, {1, 1}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Cosine({0, 0}, {1, 1}), 0.0);
}

TEST(MathUtil, MeanStd) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.SetHeader({"a", "bbbb"});
  t.AddRow({"xx", "y"});
  std::string out = t.Render();
  EXPECT_NE(out.find("a   bbbb"), std::string::npos);
  EXPECT_NE(out.find("xx  y"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Int(42), "42");
}

TEST(ThreadPool, HardwareConcurrencyIsPositive) {
  EXPECT_GE(util::HardwareConcurrency(), 1);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(util::ResolveNumThreads(util::kAutoThreads),
            util::HardwareConcurrency());
  EXPECT_EQ(util::ResolveNumThreads(-7), util::HardwareConcurrency());
  EXPECT_EQ(util::ResolveNumThreads(0), 0);
  EXPECT_EQ(util::ResolveNumThreads(1), 1);
  EXPECT_EQ(util::ResolveNumThreads(16), 16);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  constexpr int kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> out(7, 0);  // distinct slots: no synchronization needed
    pool.ParallelFor(7, [&](int i) { out[i] = i * i; });
    for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(5);
  pool.ParallelFor(5, [&](int i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EmptyAndNegativeBatchesAreNoops) {
  util::ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  pool.ParallelFor(-3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, MoreWorkersThanTasks) {
  util::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(2);
  pool.ParallelFor(2, [&](int i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ThreadPool, PerIndexPartialsReduceDeterministically) {
  // The usage pattern the Monte-Carlo engine relies on: each task writes
  // its own partial, the caller folds in index order.
  util::ThreadPool pool(4);
  constexpr int kN = 33;
  std::vector<double> partial(kN, 0.0);
  pool.ParallelFor(kN, [&](int i) { partial[i] = 1.0 / (1 + i); });
  const double total = std::accumulate(partial.begin(), partial.end(), 0.0);
  double expected = 0.0;
  for (int i = 0; i < kN; ++i) expected += 1.0 / (1 + i);
  EXPECT_EQ(total, expected);
}

}  // namespace
}  // namespace imdpp
