#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/smk.h"
#include "data/catalog.h"
#include "tests/test_util.h"

namespace imdpp::core {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

/// Modular (additive) function — submodular with equality.
SetFunction Modular(std::vector<double> weights) {
  return [w = std::move(weights)](const std::vector<int>& s) {
    double v = 0.0;
    for (int i : s) v += w[i];
    return v;
  };
}

/// Coverage function over small universes — monotone submodular.
SetFunction Coverage(std::vector<std::vector<int>> sets) {
  return [sets = std::move(sets)](const std::vector<int>& s) {
    std::set<int> covered;
    for (int i : s) covered.insert(sets[i].begin(), sets[i].end());
    return static_cast<double>(covered.size());
  };
}

/// Symmetric cut-like function — non-monotone submodular:
/// f(S) = |S| * (n - |S|).
SetFunction CutLike(int n) {
  return [n](const std::vector<int>& s) {
    double k = static_cast<double>(s.size());
    return k * (n - k);
  };
}

TEST(DoubleGreedyUsm, FindsInteriorOptimumOfCutLike) {
  // f(S) = |S|(6-|S|) is maximized at |S| = 3 with value 9; the 1/3
  // guarantee requires >= 3, the deterministic sweep should do better.
  std::vector<int> ground{0, 1, 2, 3, 4, 5};
  SmkResult r = DoubleGreedyUsm(ground, CutLike(6));
  EXPECT_GE(r.value, 8.0);
  EXPECT_LE(r.selected.size(), 6u);
}

TEST(DoubleGreedyUsm, ModularTakesAllPositives) {
  std::vector<int> ground{0, 1, 2, 3};
  SmkResult r = DoubleGreedyUsm(ground, Modular({3.0, -1.0, 2.0, -0.5}));
  EXPECT_EQ(r.selected, (std::vector<int>{0, 2}));
  EXPECT_DOUBLE_EQ(r.value, 5.0);
}

TEST(DoubleGreedyUsm, EmptyGround) {
  SmkResult r = DoubleGreedyUsm({}, Modular({}));
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(SolveSmk, ModularKnapsackPicksEfficientItems) {
  // values 6,5,4 with costs 3,2,2, budget 4: optimum {1,2} = 9.
  SmkResult r = SolveSmk(3, Modular({6.0, 5.0, 4.0}),
                         {3.0, 2.0, 2.0}, 4.0);
  EXPECT_EQ(r.selected, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(r.value, 9.0);
}

TEST(SolveSmk, RespectsBudgetAlways) {
  SmkResult r = SolveSmk(4, Modular({5.0, 4.0, 3.0, 2.0}),
                         {10.0, 10.0, 10.0, 10.0}, 15.0);
  EXPECT_LE(r.selected.size(), 1u);
}

TEST(SolveSmk, CoverageWithinApproximationBound) {
  // Universe {0..9}; sets: the optimum under budget 2 (unit costs) covers
  // 8 elements. The guarantee is 1/12; the algorithm should land far
  // closer on this toy (>= half).
  std::vector<std::vector<int>> sets{
      {0, 1, 2, 3}, {4, 5, 6, 7}, {0, 1, 4, 5}, {8}, {9}};
  SmkResult r = SolveSmk(5, Coverage(sets), {1, 1, 1, 1, 1}, 2.0);
  EXPECT_GE(r.value, 4.0);
  EXPECT_LE(r.selected.size(), 2u);
}

TEST(SolveSmk, NonMonotoneDoesNotOverfill) {
  // Cut-like with unit costs and a huge budget: adding everything gives 0;
  // the USM branch must keep the solution interior.
  SmkResult r = SolveSmk(6, CutLike(6), std::vector<double>(6, 1.0), 100.0);
  EXPECT_GE(r.value, 8.0);
}

TEST(SolveSmk, ZeroBudgetYieldsEmpty) {
  SmkResult r = SolveSmk(3, Modular({1.0, 2.0, 3.0}), {1.0, 1.0, 1.0}, 0.0);
  EXPECT_TRUE(r.selected.empty());
}

TEST(SolveSmk, OracleCallsQuadraticNotExponential) {
  const int n = 12;
  SmkResult r = SolveSmk(n, Modular(std::vector<double>(n, 1.0)),
                         std::vector<double>(n, 1.0), 6.0);
  // O(n^2) regime: far below 2^12, above n.
  EXPECT_LT(r.oracle_calls, 8 * n * n + 16 * n);
  EXPECT_GT(r.oracle_calls, n);
}

TEST(SelectNomineesSmk, MatchesGreedyOnDeterministicChain) {
  TinyWorldSpec s;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  s.cost = 10.0;
  s.budget = 10.0;
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}}, s);
  diffusion::MonteCarloEngine engine(w.problem, {}, 4);
  std::vector<diffusion::Nominee> cands = BuildCandidateUniverse(
      w.problem, {});
  SelectionResult r = SelectNomineesSmk(engine, w.problem, cands, 10.0);
  ASSERT_EQ(r.nominees.size(), 1u);
  EXPECT_EQ(r.nominees[0].user, 0);
  EXPECT_DOUBLE_EQ(r.best_single_gain, 4.0);
}

TEST(SelectNomineesSmk, FeasibleOnSampleDataset) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(
      80.0, 1, pin::PerceptionParams::FrozenDynamics());
  diffusion::MonteCarloEngine engine(p, {}, 6);
  CandidateConfig cc;
  cc.max_users = 8;
  cc.max_items = 3;
  std::vector<diffusion::Nominee> cands = BuildCandidateUniverse(p, cc);
  SelectionResult r = SelectNomineesSmk(engine, p, cands, 80.0);
  EXPECT_LE(r.total_cost, 80.0 + 1e-9);
  EXPECT_FALSE(r.nominees.empty());
}

TEST(SelectNomineesSmk, AtLeastBestSingleton) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(
      60.0, 1, pin::PerceptionParams::FrozenDynamics());
  diffusion::MonteCarloEngine engine(p, {}, 6);
  CandidateConfig cc;
  cc.max_users = 6;
  cc.max_items = 2;
  std::vector<diffusion::Nominee> cands = BuildCandidateUniverse(p, cc);
  SelectionResult r = SelectNomineesSmk(engine, p, cands, 60.0);
  diffusion::SeedGroup chosen;
  for (const diffusion::Nominee& n : r.nominees) {
    chosen.push_back({n.user, n.item, 1});
  }
  EXPECT_GE(engine.Sigma(chosen) + 1e-9, r.best_single_gain);
}

}  // namespace
}  // namespace imdpp::core
