#include <gtest/gtest.h>

#include "core/dre.h"
#include "core/market_order.h"
#include "core/nominee_selection.h"
#include "core/tdsi.h"
#include "tests/test_util.h"

namespace imdpp::core {
namespace {

using testutil::MakeRelevance;
using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

TinyWorldSpec DetSpec(int items = 1, int promotions = 1) {
  TinyWorldSpec s;
  s.num_items = items;
  s.num_promotions = promotions;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  return s;
}

TEST(CandidateUniverse, FullWhenUnpruned) {
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, DetSpec(2));
  std::vector<Nominee> c = BuildCandidateUniverse(w.problem, {});
  EXPECT_EQ(c.size(), 6u);  // 3 users x 2 items
}

TEST(CandidateUniverse, PrunesByDegreeAndImportance) {
  TinyWorld w =
      MakeWorld(4, {{0, 1, 0.5}, {0, 2, 0.5}, {0, 3, 0.5}, {1, 2, 0.5}},
                DetSpec(3));
  w.problem.importance = {0.1, 5.0, 1.0};
  CandidateConfig cfg;
  cfg.max_users = 1;  // user 0 has the top out-degree
  cfg.max_items = 2;  // items 1 and 2 by importance
  std::vector<Nominee> c = BuildCandidateUniverse(w.problem, cfg);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].user, 0);
  EXPECT_EQ(c[0].item, 1);
  EXPECT_EQ(c[1].item, 2);
}

TEST(CandidateUniverse, ExcludesUnaffordable) {
  TinyWorldSpec s = DetSpec();
  s.cost = 50.0;
  s.budget = 10.0;
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, s);
  w.problem.budget = 10.0;
  EXPECT_TRUE(BuildCandidateUniverse(w.problem, {}).empty());
}

TEST(SelectNominees, RespectsBudget) {
  // Three disconnected components; every seed has positive gain but only
  // two 10-cost seeds fit within the budget of 25.
  TinyWorldSpec s = DetSpec();
  s.cost = 10.0;
  s.budget = 25.0;
  TinyWorld w = MakeWorld(6, {{0, 1, 1.0}, {2, 3, 1.0}, {4, 5, 1.0}}, s);
  w.problem.budget = 25.0;
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  std::vector<Nominee> cands = BuildCandidateUniverse(w.problem, {});
  SelectionResult r = SelectNominees(engine, w.problem, cands, 25.0);
  EXPECT_LE(r.total_cost, 25.0);
  EXPECT_EQ(r.nominees.size(), 2u);
}

TEST(SelectNominees, StopsOnNonPositiveMarginal) {
  // Seeding user 0 saturates the deterministic chain; every further seed
  // has zero marginal gain and must be rejected.
  TinyWorldSpec s = DetSpec();
  s.cost = 1.0;
  s.budget = 100.0;
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}}, s);
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  std::vector<Nominee> cands = BuildCandidateUniverse(w.problem, {});
  SelectionResult r = SelectNominees(engine, w.problem, cands, 100.0);
  EXPECT_EQ(r.nominees.size(), 1u);
  EXPECT_EQ(r.nominees[0].user, 0);
}

TEST(SelectNominees, PicksHighestImpactFirst) {
  // User 0 reaches everyone deterministically; others reach nobody.
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}},
                          DetSpec());
  diffusion::MonteCarloEngine engine(w.problem, {}, 4);
  std::vector<Nominee> cands = BuildCandidateUniverse(w.problem, {});
  SelectionResult r = SelectNominees(engine, w.problem, cands, 100.0);
  ASSERT_FALSE(r.nominees.empty());
  EXPECT_EQ(r.nominees[0].user, 0);
  EXPECT_EQ(r.best_single.user, 0);
  EXPECT_DOUBLE_EQ(r.best_single_gain, 4.0);
}

TEST(SelectNominees, CostNormalizationMatters) {
  // User 0 reaches 2 users but costs 40; user 3 reaches 1 user at cost 5.
  // MCP picks user 3 first (ratio 0.4 vs 0.075).
  TinyWorldSpec s = DetSpec();
  s.budget = 100.0;
  TinyWorld w = MakeWorld(5, {{0, 1, 1.0}, {0, 2, 1.0}, {3, 4, 1.0}}, s);
  w.problem.cost = {40.0f, 40.0f, 40.0f, 5.0f, 40.0f};  // per user (1 item)
  diffusion::MonteCarloEngine engine(w.problem, {}, 4);
  std::vector<Nominee> cands = BuildCandidateUniverse(w.problem, {});
  SelectionResult r = SelectNominees(engine, w.problem, cands, 100.0);
  ASSERT_GE(r.nominees.size(), 2u);
  EXPECT_EQ(r.nominees[0].user, 3);
}

TEST(SelectNominees, EmptyCandidates) {
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, DetSpec());
  diffusion::MonteCarloEngine engine(w.problem, {}, 4);
  SelectionResult r = SelectNominees(engine, w.problem, {}, 10.0);
  EXPECT_TRUE(r.nominees.empty());
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

// ---- DRE -------------------------------------------------------------------

TEST(Dre, ProactiveImpactMatchesHandComputation) {
  // Items 0,1 complementary 0.6; no substitutable relevance; weights 1.
  std::vector<float> c{0, 0.6f, 0.6f, 0};
  std::vector<float> s(4, 0.0f);
  TinyWorldSpec spec = DetSpec(2);
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, spec, MakeRelevance(2, c, s));
  pin::Dynamics dyn(*w.relevance, spec.params);
  diffusion::ExpectedState es =
      diffusion::ExpectedState::InitialOf(w.problem);
  DreEvaluator dre(dyn.pin(), es, {}, w.problem.importance, 3);
  // d=1: PI(0) = L_C * r̄C * w_1 = 1 * 0.6 * 1 = 0.6 (PI(1,0) = 0).
  EXPECT_NEAR(dre.ProactiveImpact(0, 1), 0.6, 1e-6);
  // d=2 adds PI(1,1) = 0.6 (impact propagating back through item 1).
  EXPECT_NEAR(dre.ProactiveImpact(0, 2), 1.2, 1e-6);
  // RI mirrors PI here by symmetry (w_0 = 1).
  EXPECT_NEAR(dre.ReactiveImpact(0, 1), 0.6, 1e-6);
  EXPECT_NEAR(dre.DynamicReachability(0, 1), 1.2, 1e-6);
}

TEST(Dre, SubstitutableRelevanceSubtracts) {
  // 0-1: r̄C = 0.3, r̄S = 0.6 -> L_C = 1/3, L_S = 2/3:
  // term = (1/3)*0.3 - (2/3)*0.6 = 0.1 - 0.4 = -0.3.
  std::vector<float> c{0, 0.3f, 0.3f, 0};
  std::vector<float> s{0, 0.6f, 0.6f, 0};
  TinyWorldSpec spec = DetSpec(2);
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, spec, MakeRelevance(2, c, s));
  pin::Dynamics dyn(*w.relevance, spec.params);
  diffusion::ExpectedState es =
      diffusion::ExpectedState::InitialOf(w.problem);
  DreEvaluator dre(dyn.pin(), es, {}, w.problem.importance, 3);
  EXPECT_NEAR(dre.ProactiveImpact(0, 1), -0.3, 1e-6);
}

TEST(Dre, ReactiveImpactScalesWithImportance) {
  std::vector<float> c{0, 0.5f, 0.5f, 0};
  std::vector<float> s(4, 0.0f);
  TinyWorldSpec spec = DetSpec(2);
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, spec, MakeRelevance(2, c, s));
  w.problem.importance = {4.0, 1.0};
  pin::Dynamics dyn(*w.relevance, spec.params);
  diffusion::ExpectedState es =
      diffusion::ExpectedState::InitialOf(w.problem);
  DreEvaluator dre(dyn.pin(), es, {}, w.problem.importance, 2);
  EXPECT_NEAR(dre.ReactiveImpact(0, 1), 4.0 * 0.5, 1e-6);
  EXPECT_NEAR(dre.ReactiveImpact(1, 1), 1.0 * 0.5, 1e-6);
}

TEST(Dre, DepthZeroIsZero) {
  std::vector<float> c{0, 0.5f, 0.5f, 0};
  std::vector<float> s(4, 0.0f);
  TinyWorldSpec spec = DetSpec(2);
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, spec, MakeRelevance(2, c, s));
  pin::Dynamics dyn(*w.relevance, spec.params);
  diffusion::ExpectedState es =
      diffusion::ExpectedState::InitialOf(w.problem);
  DreEvaluator dre(dyn.pin(), es, {}, w.problem.importance, 3);
  EXPECT_DOUBLE_EQ(dre.DynamicReachability(0, 0), 0.0);
}

TEST(Dre, ArgMaxPrefersComplementaryHub) {
  // Item 0 is complementary to both 1 and 2; item 2 only to 0.
  std::vector<float> c{0,    0.5f, 0.5f,  //
                       0.5f, 0,    0,     //
                       0.5f, 0,    0};
  std::vector<float> s(9, 0.0f);
  TinyWorldSpec spec = DetSpec(3);
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}}, spec, MakeRelevance(3, c, s));
  pin::Dynamics dyn(*w.relevance, spec.params);
  diffusion::ExpectedState es =
      diffusion::ExpectedState::InitialOf(w.problem);
  DreEvaluator dre(dyn.pin(), es, {}, w.problem.importance, 2);
  EXPECT_EQ(dre.ArgMaxDr({0, 1, 2}, 1), 0);
}

// ---- TDSI ------------------------------------------------------------------

TEST(Tdsi, ImmediateAdoptionDominatesWhenNoFuture) {
  // Deterministic chain: seeding 0 at t=1 adds 3 market adoptions.
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec(1, 2));
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  std::vector<graph::UserId> market{0, 1, 2};
  TimingSelector tdsi(engine, market, 2);
  auto base = engine.EvalMarket({}, market);
  double si1 = tdsi.SubstantialInfluence({}, base, {0, 0, 1});
  EXPECT_GT(si1, 2.9);
}

TEST(Tdsi, PickBestClampsWindow) {
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}, {1, 2, 1.0}}, DetSpec(1, 2));
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  std::vector<graph::UserId> market{0, 1, 2};
  TimingSelector tdsi(engine, market, 2);
  int idx = -1;
  diffusion::Seed s = tdsi.PickBest({}, {{0, 0}}, 5, 9, &idx);
  EXPECT_EQ(idx, 0);
  EXPECT_LE(s.promotion, 2);
  EXPECT_GE(s.promotion, 1);
}

TEST(Tdsi, PrefersInfluentialNominee) {
  // User 0 cascades to 2 others; user 3 is isolated.
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {0, 2, 1.0}}, DetSpec(1, 1));
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  std::vector<graph::UserId> market{0, 1, 2, 3};
  TimingSelector tdsi(engine, market, 1);
  int idx = -1;
  diffusion::Seed s = tdsi.PickBest({}, {{3, 0}, {0, 0}}, 1, 1, &idx);
  EXPECT_EQ(s.user, 0);
  EXPECT_EQ(idx, 1);
}

// ---- Market orders ----------------------------------------------------------

TEST(MarketOrder, Names) {
  EXPECT_STREQ(MarketOrderName(MarketOrderMetric::kAntagonisticExtent), "AE");
  EXPECT_STREQ(MarketOrderName(MarketOrderMetric::kProfitability), "PF");
  EXPECT_STREQ(MarketOrderName(MarketOrderMetric::kSize), "SZ");
  EXPECT_STREQ(MarketOrderName(MarketOrderMetric::kRelativeMarketShare),
               "RMS");
  EXPECT_STREQ(MarketOrderName(MarketOrderMetric::kRandom), "RD");
}

TEST(MarketOrder, SizeOrdering) {
  cluster::MarketPlan plan;
  plan.markets.resize(2);
  plan.markets[0].users = {0};
  plan.markets[1].users = {1, 2, 3};
  cluster::MarketGroup g;
  g.order = {0, 1};
  plan.groups.push_back(g);
  MarketOrderContext ctx;
  OrderGroups(plan, MarketOrderMetric::kSize, ctx);
  EXPECT_EQ(plan.groups[0].order.front(), 1);  // bigger market first
}

TEST(MarketOrder, ProfitabilityOrdering) {
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {0, 2, 1.0}}, DetSpec());
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  cluster::MarketPlan plan;
  plan.markets.resize(2);
  plan.markets[0].nominees = {{0, 0}};  // cascades to 3 users
  plan.markets[0].users = {0, 1, 2};
  plan.markets[1].nominees = {{3, 0}};  // isolated
  plan.markets[1].users = {3};
  cluster::MarketGroup g;
  g.order = {1, 0};
  plan.groups.push_back(g);
  MarketOrderContext ctx;
  ctx.problem = &w.problem;
  ctx.engine = &engine;
  OrderGroups(plan, MarketOrderMetric::kProfitability, ctx);
  EXPECT_EQ(plan.groups[0].order.front(), 0);
}

TEST(MarketOrder, RandomDeterministicInSeed) {
  cluster::MarketPlan plan;
  plan.markets.resize(3);
  cluster::MarketGroup g;
  g.order = {0, 1, 2};
  plan.groups.push_back(g);
  MarketOrderContext ctx;
  ctx.seed = 5;
  cluster::MarketPlan plan2 = plan;
  OrderGroups(plan, MarketOrderMetric::kRandom, ctx);
  OrderGroups(plan2, MarketOrderMetric::kRandom, ctx);
  EXPECT_EQ(plan.groups[0].order, plan2.groups[0].order);
}

TEST(MarketOrder, RelativeMarketShare) {
  // Items 0 and 1 substitutable; everyone's favorite is item 0.
  std::vector<float> c(4, 0.0f);
  std::vector<float> s{0, 0.5f, 0.5f, 0};
  TinyWorldSpec spec = DetSpec(2);
  TinyWorld w = MakeWorld(3, {{0, 1, 0.5}}, spec, MakeRelevance(2, c, s));
  for (int u = 0; u < 3; ++u) {
    w.problem.base_pref[u * 2 + 0] = 0.9f;
    w.problem.base_pref[u * 2 + 1] = 0.1f;
  }
  auto rel_s = [&](kg::ItemId a, kg::ItemId b) {
    return a != b ? 0.5 : 0.0;
  };
  cluster::TargetMarket dominant;
  dominant.items = {0};
  cluster::TargetMarket weak;
  weak.items = {1};
  double rms_dom = RelativeMarketShare(dominant, w.problem, rel_s);
  double rms_weak = RelativeMarketShare(weak, w.problem, rel_s);
  EXPECT_GT(rms_dom, rms_weak);
}

}  // namespace
}  // namespace imdpp::core
