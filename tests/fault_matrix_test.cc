// The ISSUE 8 fault matrix: every catalogued fault point, armed with its
// deterministic fail-on-Nth-hit schedule, surfaces as the matching
// util::Status at its boundary — no abort, no partial cache entry, and
// the owning session/cache/pool stays reusable afterwards. Also pins the
// retry and graceful-degradation semantics (transient faults heal with
// booked retries; pool.enqueue degrades to bit-identical inline serial;
// "ris" with eval.fallback_backend degrades to its embedded "mc") and the
// deadline/cancellation contract on CampaignSession::Run.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/session.h"
#include "config/config_loader.h"
#include "data/catalog.h"
#include "data/dataset_registry.h"
#include "prep/prep.h"
#include "util/cancel.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/status.h"

namespace imdpp {
namespace {

util::FaultInjector& Injector() { return util::FaultInjector::Global(); }

/// Every test leaves the process-wide injector disarmed, whatever failed.
class FaultMatrix : public ::testing::Test {
 protected:
  void TearDown() override { Injector().Reset(); }
};

api::PlannerConfig SmallConfig() {
  api::PlannerConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 8;
  cfg.candidates.max_users = 10;
  cfg.candidates.max_items = 4;
  cfg.seed = 20260808;
  cfg.num_threads = 2;
  return cfg;
}

TEST_F(FaultMatrix, ArmValidatesPointsRangesAndCodes) {
  EXPECT_TRUE(Injector().Arm("prep.build").ok());
  EXPECT_TRUE(Injector().Arm("data.load:2").ok());
  EXPECT_TRUE(Injector().Arm("eval.sigma:3+:cancelled").ok());
  EXPECT_TRUE(Injector().Arm("prep.sketch:1-2:resource_exhausted").ok());
  EXPECT_TRUE(Injector().ArmList("config.parse, pool.enqueue:1,").ok());

  util::Status unknown = Injector().Arm("no.such.point");
  EXPECT_EQ(unknown.code(), util::StatusCode::kInvalidArgument);
  // The registry-style miss message lists the sorted catalog.
  for (const std::string& point : util::FaultInjector::KnownPoints()) {
    EXPECT_NE(unknown.message().find(point), std::string::npos) << point;
  }
  EXPECT_EQ(Injector().Arm("prep.build:0").code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(Injector().Arm("prep.build:3-2").code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(Injector().Arm("prep.build:1:ok").code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(Injector().Arm("prep.build:1:no_such_code").code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(FaultMatrix, ConfigParseFaultSurfacesFromLoadJsonFile) {
  ASSERT_TRUE(Injector().Arm("config.parse").ok());
  util::Json parsed;
  // The fault fires before the file is read: even a nonexistent path
  // reports the injected error, not an IO error.
  util::Status status = config::LoadJsonFile("/no/such/config.json",
                                             &parsed);
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_NE(status.message().find("config.parse"), std::string::npos)
      << status.ToString();
}

TEST_F(FaultMatrix, DataLoadFaultFailsMakeAndTransientVariantHeals) {
  ASSERT_TRUE(Injector().Arm("data.load").ok());
  data::Dataset unused;
  util::Status status =
      data::DatasetRegistry::Make({"fig1-toy", 1.0, 0}, &unused);
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);

  // Transient schedule: the first two hits fail resource_exhausted, the
  // bounded-backoff retry eats both, and the load succeeds — booking
  // exactly two retries.
  Injector().Reset();
  ASSERT_TRUE(Injector().Arm("data.load:1-2:resource_exhausted").ok());
  const util::RobustnessCounters before = util::SnapshotRobustnessCounters();
  data::Dataset ds;
  util::Status healed =
      data::DatasetRegistry::Make({"fig1-toy", 1.0, 0}, &ds);
  ASSERT_TRUE(healed.ok()) << healed.ToString();
  const util::RobustnessCounters after = util::SnapshotRobustnessCounters();
  EXPECT_EQ(after.retries - before.retries, 2);
  EXPECT_EQ(after.faults_injected - before.faults_injected, 2);
}

TEST_F(FaultMatrix, PrepBuildFaultLeavesNoPartialCacheEntry) {
  // The cache-poisoning regression: a failed build must not install an
  // entry (or bump a counter), and the next Acquire rebuilds cleanly.
  data::Dataset ds = data::MakeFig1Toy();
  diffusion::Problem problem = ds.MakeProblem(20.0, 2);
  prep::PrepCache cache;
  ASSERT_TRUE(Injector().Arm("prep.build:1:internal").ok());

  util::StatusOr<prep::PrepLease> failed = cache.Acquire(problem, nullptr, 1);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), util::StatusCode::kInternal);
  EXPECT_EQ(cache.builds(), 0);
  EXPECT_EQ(cache.reuses(), 0);

  util::StatusOr<prep::PrepLease> rebuilt = cache.Acquire(problem, nullptr, 1);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_FALSE(rebuilt->reused);
  ASSERT_NE(rebuilt->artifacts, nullptr);
  EXPECT_EQ(cache.builds(), 1);

  util::StatusOr<prep::PrepLease> again = cache.Acquire(problem, nullptr, 1);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->reused);
  EXPECT_EQ(again->artifacts, rebuilt->artifacts);
  EXPECT_EQ(cache.builds(), 1);
  EXPECT_EQ(cache.reuses(), 1);
}

TEST_F(FaultMatrix, PrepBuildTransientFaultIsRetriedInvisibly) {
  data::Dataset ds = data::MakeFig1Toy();
  diffusion::Problem problem = ds.MakeProblem(20.0, 2);
  prep::PrepCache cache;
  ASSERT_TRUE(
      Injector().Arm("prep.build:1-2:resource_exhausted").ok());
  const util::RobustnessCounters before = util::SnapshotRobustnessCounters();
  util::StatusOr<prep::PrepLease> lease = cache.Acquire(problem, nullptr, 1);
  ASSERT_TRUE(lease.ok()) << lease.status().ToString();
  EXPECT_FALSE(lease->reused);
  const util::RobustnessCounters after = util::SnapshotRobustnessCounters();
  EXPECT_EQ(after.retries - before.retries, 2);
  EXPECT_EQ(cache.builds(), 1);
}

TEST_F(FaultMatrix, EvalSigmaFaultFailsTheRunAndSessionStaysReusable) {
  api::CampaignSession session(data::MakeFig1Toy(), SmallConfig());
  session.SetProblem(/*budget=*/20.0, /*num_promotions=*/2);
  ASSERT_TRUE(Injector().Arm("eval.sigma:1").ok());
  api::PlanResult failed = session.Run("dysim");
  EXPECT_EQ(failed.status.code(), util::StatusCode::kInternal)
      << failed.status.ToString();
  EXPECT_GE(failed.faults_injected, 1);

  // Disarmed, the SAME session produces the same plan as a fresh one: no
  // poisoned engine or cache survived the failure.
  Injector().Reset();
  api::PlanResult recovered = session.Run("dysim");
  ASSERT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  api::CampaignSession fresh(data::MakeFig1Toy(), SmallConfig());
  fresh.SetProblem(20.0, 2);
  api::PlanResult want = fresh.Run("dysim");
  EXPECT_EQ(recovered.sigma, want.sigma);
  EXPECT_EQ(recovered.total_cost, want.total_cost);
  ASSERT_EQ(recovered.seeds.size(), want.seeds.size());
  for (size_t i = 0; i < want.seeds.size(); ++i) {
    EXPECT_EQ(recovered.seeds[i].user, want.seeds[i].user) << i;
    EXPECT_EQ(recovered.seeds[i].item, want.seeds[i].item) << i;
    EXPECT_EQ(recovered.seeds[i].promotion, want.seeds[i].promotion) << i;
  }
}

TEST_F(FaultMatrix, PoolEnqueueFaultDegradesToBitIdenticalSerial) {
  api::CampaignSession clean(data::MakeFig1Toy(), SmallConfig());
  clean.SetProblem(20.0, 2);
  api::PlanResult want = clean.Run("dysim");
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();

  ASSERT_TRUE(Injector().Arm("pool.enqueue").ok());
  api::CampaignSession session(data::MakeFig1Toy(), SmallConfig());
  session.SetProblem(20.0, 2);
  api::PlanResult degraded = session.Run("dysim");
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  // Every batch ran inline on the calling thread instead — same indices,
  // same order, same bits — and each dispatch booked a fallback.
  EXPECT_GE(degraded.fallbacks, 1);
  EXPECT_EQ(degraded.sigma, want.sigma);
  EXPECT_EQ(degraded.total_cost, want.total_cost);
  ASSERT_EQ(degraded.seeds.size(), want.seeds.size());
  for (size_t i = 0; i < want.seeds.size(); ++i) {
    EXPECT_EQ(degraded.seeds[i].user, want.seeds[i].user) << i;
    EXPECT_EQ(degraded.seeds[i].item, want.seeds[i].item) << i;
    EXPECT_EQ(degraded.seeds[i].promotion, want.seeds[i].promotion) << i;
  }
}

TEST_F(FaultMatrix, RisSketchFaultFailsTheRunWithoutAFallback) {
  api::PlannerConfig cfg = SmallConfig();
  cfg.eval.backend = "ris";
  cfg.eval.ris_sketches = 256;
  api::CampaignSession session(data::MakeFig1Toy(), cfg);
  session.SetProblem(20.0, 2);
  ASSERT_TRUE(Injector().Arm("prep.sketch").ok());
  api::PlanResult failed = session.Run("dysim");
  EXPECT_EQ(failed.status.code(), util::StatusCode::kInternal)
      << failed.status.ToString();
  EXPECT_EQ(failed.fallbacks, 0);

  Injector().Reset();
  api::PlanResult recovered = session.Run("dysim");
  EXPECT_TRUE(recovered.status.ok()) << recovered.status.ToString();
}

TEST_F(FaultMatrix, RisSketchFaultDegradesToMcWhenFallbackConfigured) {
  const diffusion::SeedGroup seeds{{0, 0, 1}, {1, 1, 2}};

  api::PlannerConfig mc_cfg = SmallConfig();
  mc_cfg.eval.backend = "mc";
  api::CampaignSession mc_session(data::MakeFig1Toy(), mc_cfg);
  mc_session.SetProblem(20.0, 2);
  const double want = mc_session.Sigma(seeds);

  api::PlannerConfig ris_cfg = SmallConfig();
  ris_cfg.eval.backend = "ris";
  ris_cfg.eval.ris_sketches = 256;
  ris_cfg.eval.fallback_backend = "mc";
  api::CampaignSession ris_session(data::MakeFig1Toy(), ris_cfg);
  ris_session.SetProblem(20.0, 2);
  ASSERT_TRUE(Injector().Arm("prep.sketch").ok());
  const util::RobustnessCounters before = util::SnapshotRobustnessCounters();
  const double got = ris_session.Sigma(seeds);
  const util::RobustnessCounters after = util::SnapshotRobustnessCounters();
  // One degradation, booked once, and from then on the embedded "mc"
  // engine answers — bit-identically to the real "mc" backend.
  EXPECT_EQ(after.fallbacks - before.fallbacks, 1);
  EXPECT_EQ(got, want);
  EXPECT_EQ(ris_session.Sigma(seeds), want);  // still degraded, no re-fault
}

TEST_F(FaultMatrix, TinyDeadlineStopsTheRunAndSessionStaysReusable) {
  api::PlannerConfig cfg = SmallConfig();
  cfg.selection_samples = 12;
  cfg.eval_samples = 24;
  cfg.deadline_ms = 1;
  api::CampaignSession session(data::MakeSmallAmazonSample(), cfg);
  session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
  api::PlanResult timed_out = session.Run("dysim");
  EXPECT_EQ(timed_out.status.code(), util::StatusCode::kDeadlineExceeded)
      << timed_out.status.ToString();

  // The deadline belonged to that Run alone: the same session plans fine
  // without one.
  api::PlannerConfig no_deadline = SmallConfig();
  api::PlanResult ok = session.Run("dysim", no_deadline);
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_GT(ok.sigma, 0.0);
}

// ISSUE 10: a deadline firing mid-race (inside an adaptive SelectBest
// block) must stop the run like any other estimate — completed blocks
// stay booked, the interrupted block is uncharged — and leave the session
// reusable, including for a later adaptive run.
TEST_F(FaultMatrix, DeadlineMidAdaptiveRaceStopsTheRunAndSessionRecovers) {
  api::PlannerConfig cfg = SmallConfig();
  cfg.selection_samples = 12;
  cfg.eval_samples = 24;
  cfg.eval.adaptive.enabled = true;
  cfg.eval.adaptive.min_samples = 2;
  cfg.eval.adaptive.block_samples = 2;  // many boundaries to land inside
  cfg.deadline_ms = 1;
  api::CampaignSession session(data::MakeSmallAmazonSample(), cfg);
  session.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
  api::PlanResult timed_out = session.Run("dysim");
  EXPECT_EQ(timed_out.status.code(), util::StatusCode::kDeadlineExceeded)
      << timed_out.status.ToString();

  // The deadline belonged to that Run alone; the same session then plans
  // fine with racing still on, and matches a fresh session bit for bit.
  api::PlannerConfig retry = cfg;
  retry.deadline_ms = 0;
  api::PlanResult ok = session.Run("dysim", retry);
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_GT(ok.sigma, 0.0);
  api::CampaignSession fresh(data::MakeSmallAmazonSample(), retry);
  fresh.SetProblem(/*budget=*/100.0, /*num_promotions=*/2);
  api::PlanResult want = fresh.Run("dysim");
  EXPECT_EQ(ok.sigma, want.sigma);
  EXPECT_EQ(ok.total_cost, want.total_cost);
  ASSERT_EQ(ok.seeds.size(), want.seeds.size());
  for (size_t i = 0; i < want.seeds.size(); ++i) {
    EXPECT_EQ(ok.seeds[i].user, want.seeds[i].user) << i;
    EXPECT_EQ(ok.seeds[i].item, want.seeds[i].item) << i;
    EXPECT_EQ(ok.seeds[i].promotion, want.seeds[i].promotion) << i;
  }
}

TEST_F(FaultMatrix, PreFiredTokenCancelsTheRunPromptly) {
  api::CampaignSession session(data::MakeFig1Toy(), SmallConfig());
  session.SetProblem(20.0, 2);

  // The fired token travels with this Run's config only, so the session's
  // shared scoring engine never adopts it.
  api::PlannerConfig cancelled_cfg = SmallConfig();
  cancelled_cfg.cancel = std::make_shared<util::CancelToken>();
  cancelled_cfg.cancel->Cancel(util::CancelledError("operator stop"));
  api::PlanResult cancelled = session.Run("dysim", cancelled_cfg);
  EXPECT_EQ(cancelled.status.code(), util::StatusCode::kCancelled)
      << cancelled.status.ToString();

  api::PlanResult ok = session.Run("dysim", SmallConfig());
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_GT(ok.sigma, 0.0);
}

}  // namespace
}  // namespace imdpp
