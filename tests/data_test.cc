#include <gtest/gtest.h>

#include "data/catalog.h"
#include "data/stats.h"
#include "data/synthetic.h"

namespace imdpp::data {
namespace {

TEST(Synthetic, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.num_users = 50;
  spec.num_items = 10;
  Dataset ds = GenerateSynthetic(spec);
  EXPECT_EQ(ds.NumUsers(), 50);
  EXPECT_EQ(ds.NumItems(), 10);
  EXPECT_EQ(ds.importance.size(), 10u);
  EXPECT_EQ(ds.base_pref.size(), 500u);
  EXPECT_EQ(ds.cost.size(), 500u);
  EXPECT_EQ(ds.wmeta0.size(),
            static_cast<size_t>(50 * ds.relevance->NumMetas()));
  EXPECT_EQ(ds.relevance->NumMetas(), 6);
}

TEST(Synthetic, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.num_users = 40;
  spec.num_items = 8;
  spec.seed = 77;
  Dataset a = GenerateSynthetic(spec);
  Dataset b = GenerateSynthetic(spec);
  EXPECT_EQ(a.base_pref, b.base_pref);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.social->NumEdges(), b.social->NumEdges());
}

TEST(Synthetic, ValuesInRange) {
  SyntheticSpec spec;
  spec.num_users = 60;
  spec.num_items = 12;
  Dataset ds = GenerateSynthetic(spec);
  for (float p : ds.base_pref) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  for (float c : ds.cost) EXPECT_GT(c, 0.0f);
  for (double w : ds.importance) EXPECT_GT(w, 0.0);
  for (float w : ds.wmeta0) {
    EXPECT_GE(w, 0.0f);
    EXPECT_LE(w, 1.0f);
  }
}

TEST(Synthetic, MedianCostNearTarget) {
  SyntheticSpec spec;
  spec.num_users = 100;
  spec.num_items = 20;
  spec.target_median_cost = 25.0;
  Dataset ds = GenerateSynthetic(spec);
  std::vector<float> sorted = ds.cost;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  EXPECT_NEAR(sorted[sorted.size() / 2], 25.0, 2.0);
}

TEST(Synthetic, CostsGrowWithOutDegree) {
  SyntheticSpec spec;
  spec.num_users = 120;
  spec.num_items = 10;
  Dataset ds = GenerateSynthetic(spec);
  // Compare the max-degree user against a zero/low-degree one at equal
  // preference: cost must favor the influential user being pricier.
  int hi = 0, lo = 0;
  for (int u = 0; u < ds.NumUsers(); ++u) {
    if (ds.social->OutDegree(u) > ds.social->OutDegree(hi)) hi = u;
    if (ds.social->OutDegree(u) < ds.social->OutDegree(lo)) lo = u;
  }
  double hi_avg = 0, lo_avg = 0;
  for (int x = 0; x < ds.NumItems(); ++x) {
    hi_avg += ds.cost[static_cast<size_t>(hi) * ds.NumItems() + x];
    lo_avg += ds.cost[static_cast<size_t>(lo) * ds.NumItems() + x];
  }
  EXPECT_GT(hi_avg, lo_avg);
}

TEST(Synthetic, MakesUsableProblem) {
  SyntheticSpec spec;
  spec.num_users = 30;
  spec.num_items = 6;
  Dataset ds = GenerateSynthetic(spec);
  diffusion::Problem p = ds.MakeProblem(100.0, 3);
  p.Validate();
  EXPECT_EQ(p.num_promotions, 3);
  EXPECT_DOUBLE_EQ(p.budget, 100.0);
}

TEST(Synthetic, MetaSubsetProblem) {
  SyntheticSpec spec;
  spec.num_users = 30;
  spec.num_items = 6;
  Dataset ds = GenerateSynthetic(spec);
  std::vector<int> subset{0, 1};  // first complementary + first substitutable
  kg::RelevanceModel sub = ds.relevance->WithMetaSubset(subset);
  diffusion::Problem p =
      ds.MakeProblemWithRelevance(sub, 50.0, 2, {}, &subset);
  p.Validate();
  EXPECT_EQ(p.NumMetas(), 2);
  // Initial weightings must map back to the dataset's meta 0 and 1.
  EXPECT_FLOAT_EQ(p.wmeta0[0], ds.wmeta0[0]);
  EXPECT_FLOAT_EQ(p.wmeta0[1], ds.wmeta0[1]);
}

TEST(Catalog, FlavorsHaveTableIiCharacter) {
  Dataset amazon = MakeAmazonLike(0.2);
  Dataset yelp = MakeYelpLike(0.2);
  Dataset douban = MakeDoubanLike(0.2);
  Dataset gowalla = MakeGowallaLike(0.2);

  EXPECT_TRUE(amazon.directed_friendship);
  EXPECT_FALSE(yelp.directed_friendship);
  // Influence strengths track Table II's ordering:
  // yelp (0.121) > gowalla (0.092) > amazon (0.050) > douban (0.011).
  DatasetStats sy = ComputeStats(yelp);
  DatasetStats sg = ComputeStats(gowalla);
  DatasetStats sa = ComputeStats(amazon);
  DatasetStats sd = ComputeStats(douban);
  EXPECT_GT(sy.avg_influence, sg.avg_influence);
  EXPECT_GT(sg.avg_influence, sa.avg_influence);
  EXPECT_GT(sa.avg_influence, sd.avg_influence);
  // Douban is the largest, yelp the smallest (scaled).
  EXPECT_GT(sd.users, sa.users);
  EXPECT_GT(sa.users, sy.users);
}

TEST(Catalog, SmallSampleHas100Users) {
  Dataset ds = MakeSmallAmazonSample();
  EXPECT_EQ(ds.NumUsers(), 100);
  EXPECT_TRUE(ds.directed_friendship);
}

TEST(Catalog, ClassroomSizesMatchTableIii) {
  const int expected[5] = {33, 26, 22, 20, 20};
  for (int c = 0; c < 5; ++c) {
    Dataset ds = MakeClassroom(c);
    EXPECT_EQ(ds.NumUsers(), expected[c]) << "class " << c;
    EXPECT_EQ(ds.NumItems(), 30);  // 30 elective courses
    EXPECT_EQ(ds.kg->node_types().Find("COURSE"), ds.kg->item_type());
  }
}

TEST(Catalog, ClassroomsAreDenselyConnected) {
  Dataset ds = MakeClassroom(0);
  DatasetStats s = ComputeStats(ds);
  // Table III lists hundreds of edges for ~30 students.
  EXPECT_GT(s.friendships, 150);
}

TEST(Stats, CountsAddUp) {
  Dataset ds = MakeFig1Toy();
  DatasetStats s = ComputeStats(ds);
  EXPECT_EQ(s.users, 3);
  EXPECT_EQ(s.items, 4);
  EXPECT_EQ(s.nodes, ds.kg->NumNodes() + 3);
  EXPECT_EQ(s.friendships, 3);
  EXPECT_EQ(s.edges, ds.kg->NumEdges() + 3);
  EXPECT_TRUE(s.directed_friendship);
  EXPECT_GT(s.avg_importance, 0.0);
}

TEST(Stats, TableRendering) {
  TextTable t;
  SetStatsHeader(t);
  AppendStatsRow(t, ComputeStats(MakeFig1Toy()));
  std::string out = t.Render();
  EXPECT_NE(out.find("fig1-toy"), std::string::npos);
  EXPECT_NE(out.find("#users"), std::string::npos);
}

}  // namespace
}  // namespace imdpp::data
