// imdpp-lint (ISSUE 6): the linter's own test suite. Proves (1) every
// rule fires on the seeded fixtures under tests/lint_fixtures/, (2)
// suppressions are honored and hygiene-checked, (3) diagnostics render
// byte-stably sorted by path:line, and — the gate the CI job relies on —
// (4) the real src/ tree lints clean.
#include "lint/lint.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace imdpp::lint {
namespace {

const std::string kFixtures =
    std::string(IMDPP_SOURCE_DIR) + "/tests/lint_fixtures";

std::vector<Diagnostic> LintFixtures() {
  std::string error;
  std::vector<std::string> files = CollectSources({kFixtures}, &error);
  EXPECT_EQ(error, "");
  EXPECT_FALSE(files.empty());
  return LintFiles(files);
}

std::vector<Diagnostic> ForRule(const std::vector<Diagnostic>& diags,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

bool HasAt(const std::vector<Diagnostic>& diags, const std::string& file_suffix,
           int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.line == line && d.file.size() >= file_suffix.size() &&
           d.file.compare(d.file.size() - file_suffix.size(),
                          file_suffix.size(), file_suffix) == 0;
  });
}

// ------------------------------------------------- every rule fires once

TEST(LintRules, UnorderedIterationFiresOnRangeForAndIteratorLoops) {
  std::vector<Diagnostic> d =
      ForRule(LintFixtures(), "no-unordered-iteration");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_TRUE(HasAt(d, "core/unordered_iteration.cc", 10));  // range-for
  EXPECT_TRUE(HasAt(d, "core/unordered_iteration.cc", 16));  // iterator loop
}

TEST(LintRules, UnorderedIterationIsDirectoryGated) {
  // Identical code outside the result-affecting directories is not
  // flagged: the gate IS the rule (report code may iterate hash order).
  const std::string body =
      "#include <unordered_map>\n"
      "int F(const std::unordered_map<int,int>& m) {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : m) s += v;\n"
      "  return s;\n"
      "}\n";
  EXPECT_FALSE(LintSource("src/core/x.cc", body).empty());
  EXPECT_TRUE(LintSource("src/report/x.cc", body).empty());
}

TEST(LintRules, WallclockRandFiresOnEveryAmbientSource) {
  std::vector<Diagnostic> d = ForRule(LintFixtures(), "no-wallclock-rand");
  ASSERT_EQ(d.size(), 5u);
  for (int line : {10, 11, 12, 13, 14}) {
    EXPECT_TRUE(HasAt(d, "core/wallclock_rand.cc", line)) << line;
  }
}

TEST(LintRules, WallclockRandExemptsUtil) {
  // util/rng.h itself wraps the forbidden primitives — that is the point.
  const std::string body = "int F() { return std::rand(); }\n";
  EXPECT_FALSE(LintSource("src/core/x.cc", body).empty());
  EXPECT_TRUE(LintSource("src/util/x.cc", body).empty());
}

TEST(LintRules, RawClockFiresOnEveryChronoClock) {
  std::vector<Diagnostic> d = ForRule(LintFixtures(), "no-raw-clock");
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(HasAt(d, "core/raw_clock.cc", 8));   // steady_clock
  EXPECT_TRUE(HasAt(d, "core/raw_clock.cc", 9));   // system_clock
  EXPECT_TRUE(HasAt(d, "core/raw_clock.cc", 10));  // high_resolution_clock
}

TEST(LintRules, RawClockExemptsTheTimerAndTraceSeam) {
  const std::string body =
      "void F() { auto t = std::chrono::steady_clock::now(); (void)t; }\n";
  EXPECT_FALSE(LintSource("src/core/x.cc", body).empty());
  EXPECT_FALSE(LintSource("src/util/x.cc", body).empty());  // util alone: no
  EXPECT_TRUE(LintSource("src/util/timer.h", body).empty());
  EXPECT_TRUE(LintSource("src/util/trace.cc", body).empty());
  EXPECT_TRUE(LintSource("src/util/trace.h", body).empty());
}

TEST(LintRules, RawThreadFiresOutsideThreadPool) {
  std::vector<Diagnostic> d = ForRule(LintFixtures(), "no-raw-thread");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_TRUE(HasAt(d, "core/raw_thread.cc", 9));   // std::thread
  EXPECT_TRUE(HasAt(d, "core/raw_thread.cc", 10));  // std::async
}

TEST(LintRules, RawThreadExemptsThreadPoolByStem) {
  const std::string body = "void F() { std::thread t([]{}); t.join(); }\n";
  EXPECT_FALSE(LintSource("src/api/x.cc", body).empty());
  EXPECT_TRUE(LintSource("src/util/thread_pool.cc", body).empty());
}

TEST(LintRules, FloatAccumFiresOnSharedCaptureOnly) {
  std::vector<Diagnostic> d =
      ForRule(LintFixtures(), "no-float-accum-in-parallel");
  ASSERT_EQ(d.size(), 1u);
  // Only the shared-capture accumulation; the per-slot pattern and the
  // fixed-order-merge-marked merge in the same fixture stay clean.
  EXPECT_TRUE(HasAt(d, "core/float_accum.cc", 7));
}

TEST(LintRules, LockBeforeSharedFiresAcrossHeaderSourcePairs) {
  std::vector<Diagnostic> d = ForRule(LintFixtures(), "lock-before-shared");
  ASSERT_EQ(d.size(), 1u);
  // Counter::Get reads count_ without mu_; Bump (locks) and Locked
  // (IMDPP_REQUIRES in guarded.h) stay clean — the registry crossed the
  // header/source boundary.
  EXPECT_TRUE(HasAt(d, "api/guarded.cc", 7));
}

TEST(LintRules, LockBeforeSharedExemptsConstructors) {
  const std::string src =
      "class C { int n_ IMDPP_GUARDED_BY(mu_); util::Mutex mu_; };\n"
      "C::C() { n_ = 0; }\n"
      "C::~C() { n_ = 0; }\n"
      "int C::Bad() { return n_; }\n";
  std::vector<Diagnostic> d = LintSource("src/api/c.h", src);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].line, 4);
}

TEST(LintRules, StatusMustCheckFiresOnDiscardedCalls) {
  std::vector<Diagnostic> d = ForRule(LintFixtures(), "status-must-check");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_TRUE(HasAt(d, "misc/status_discard.cc", 12));  // bare call
  EXPECT_TRUE(HasAt(d, "misc/status_discard.cc", 16));  // member chain
}

TEST(LintRules, StatusMustCheckSparesConsumedAndVoidCastResults) {
  // The registry crosses declaration and use inside one source: Apply is
  // Status-returning; only the bare-statement discard is an accident.
  const std::string decl = "util::Status Apply(int v);\n";
  EXPECT_FALSE(LintSource("src/api/x.cc", decl + "void F() { Apply(1); }\n")
                   .empty());
  for (const char* use : {
           "util::Status G() { return Apply(1); }\n",
           "void F() { util::Status s = Apply(1); s.Update(Apply(2)); }\n",
           "void F() { if (!Apply(1).ok()) return; }\n",
           "void F() { (void)Apply(1); }\n",
       }) {
    EXPECT_TRUE(LintSource("src/api/x.cc", decl + use).empty()) << use;
  }
}

// ------------------------------------------------------------ suppressions

TEST(LintSuppressions, ReasonedSuppressionSilencesTheFinding) {
  // wallclock_rand.cc's SuppressedRand and unordered_iteration.cc's
  // SuppressedIteration carry reasons: their lines must not appear.
  std::vector<Diagnostic> d = LintFixtures();
  EXPECT_FALSE(HasAt(d, "core/wallclock_rand.cc", 24));
  EXPECT_FALSE(HasAt(d, "core/unordered_iteration.cc", 22));
}

TEST(LintSuppressions, MissingReasonIsItselfADiagnostic) {
  std::vector<Diagnostic> d =
      ForRule(LintFixtures(), "suppression-missing-reason");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(HasAt(d, "misc/suppressions.cc", 5));
}

TEST(LintSuppressions, UnknownRuleNameIsItselfADiagnostic) {
  std::vector<Diagnostic> d =
      ForRule(LintFixtures(), "suppression-unknown-rule");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(HasAt(d, "misc/suppressions.cc", 8));
}

TEST(LintSuppressions, SameLineSuppressionWorksToo) {
  const std::string src =
      "int F() { return std::rand(); }  "
      "// imdpp-lint: allow(no-wallclock-rand) fixture seed\n";
  EXPECT_TRUE(LintSource("src/core/x.cc", src).empty());
}

// ------------------------------------------------------- output stability

TEST(LintOutput, ByteStableSortedByPathLineRule) {
  std::vector<Diagnostic> shuffled = {
      {"b.cc", 2, "r", "m"}, {"a.cc", 9, "r", "m"}, {"a.cc", 1, "z", "m"},
      {"a.cc", 1, "a", "m"},
  };
  const std::string expected =
      "a.cc:1: [a] m\na.cc:1: [z] m\na.cc:9: [r] m\nb.cc:2: [r] m\n";
  EXPECT_EQ(FormatDiagnostics(shuffled), expected);
  // Idempotent across runs on the real fixture set.
  EXPECT_EQ(FormatDiagnostics(LintFixtures()),
            FormatDiagnostics(LintFixtures()));
}

TEST(LintOutput, CollectSourcesIsSortedAndDeduplicated) {
  std::string error;
  std::vector<std::string> files =
      CollectSources({kFixtures, kFixtures}, &error);
  EXPECT_EQ(error, "");
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_EQ(std::set<std::string>(files.begin(), files.end()).size(),
            files.size());
}

// ----------------------------------------------------- CLI entry semantics

TEST(LintCli, ExitCodesMatchContract) {
  std::ostringstream out, err;
  // Dirty tree -> 1.
  EXPECT_EQ(RunLint({kFixtures}, out, err), 1);
  EXPECT_NE(out.str().find("[no-wallclock-rand]"), std::string::npos);
  // Usage error -> 2.
  EXPECT_EQ(RunLint({}, out, err), 2);
  EXPECT_EQ(RunLint({"--no-such-flag"}, out, err), 2);
  EXPECT_EQ(RunLint({kFixtures + "/does-not-exist"}, out, err), 2);
  // --list-rules -> 0 and prints the catalog.
  std::ostringstream rules;
  EXPECT_EQ(RunLint({"--list-rules"}, rules, err), 0);
  for (const RuleInfo& r : Rules()) {
    EXPECT_NE(rules.str().find(r.name), std::string::npos) << r.name;
  }
}

// ------------------------------------------------- the real tree is clean

TEST(LintTree, SrcLintsClean) {
  std::string error;
  std::vector<std::string> files =
      CollectSources({std::string(IMDPP_SOURCE_DIR) + "/src"}, &error);
  ASSERT_EQ(error, "");
  ASSERT_GT(files.size(), 50u);  // the whole library, not a stub dir
  EXPECT_EQ(FormatDiagnostics(LintFiles(files)), "");
}

TEST(LintTree, ToolsLintItselfClean) {
  std::string error;
  std::vector<std::string> files =
      CollectSources({std::string(IMDPP_SOURCE_DIR) + "/tools"}, &error);
  ASSERT_EQ(error, "");
  EXPECT_EQ(FormatDiagnostics(LintFiles(files)), "");
}

}  // namespace
}  // namespace imdpp::lint
