// Shared builders for hand-crafted tiny problems used across the suite.
#ifndef IMDPP_TESTS_TEST_UTIL_H_
#define IMDPP_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "diffusion/problem.h"
#include "graph/graph_builder.h"
#include "kg/relevance.h"
#include "pin/perception_params.h"

namespace imdpp::testutil {

/// Owns the graph/relevance a Problem points into.
struct TinyWorld {
  std::unique_ptr<graph::SocialGraph> graph;
  std::unique_ptr<kg::RelevanceModel> relevance;
  diffusion::Problem problem;
};

/// Relevance model with one complementary and one substitutable meta,
/// built from explicit row-major matrices (values in [0,1], zero diagonal).
inline std::unique_ptr<kg::RelevanceModel> MakeRelevance(
    int num_items, std::vector<float> comp, std::vector<float> sub) {
  // Aggregate-initialized (not assigned element-wise): gcc 12's inliner
  // raises a spurious -Wrestrict on literal-into-vector-element string
  // assignment.
  std::vector<kg::MetaGraph> metas = {
      {"C", kg::RelationKind::kComplementary, {}},
      {"S", kg::RelationKind::kSubstitutable, {}},
  };
  return std::make_unique<kg::RelevanceModel>(kg::RelevanceModel::FromMatrices(
      num_items, std::move(metas), {std::move(comp), std::move(sub)}));
}

/// All-zero relevance (items unrelated).
inline std::unique_ptr<kg::RelevanceModel> MakeZeroRelevance(int num_items) {
  std::vector<float> z(static_cast<size_t>(num_items) * num_items, 0.0f);
  return MakeRelevance(num_items, z, z);
}

struct TinyWorldSpec {
  int num_items = 1;
  double base_pref = 1.0;
  double cost = 1.0;
  double budget = 100.0;
  int num_promotions = 1;
  double wmeta0 = 1.0;
  pin::PerceptionParams params = pin::PerceptionParams::FrozenDynamics();
};

/// Directed edge list (from, to, weight) -> full TinyWorld. All users share
/// the same base preference / cost for every item; importance is 1.
inline TinyWorld MakeWorld(
    int num_users,
    const std::vector<std::tuple<int, int, double>>& edges,
    const TinyWorldSpec& spec = {},
    std::unique_ptr<kg::RelevanceModel> relevance = nullptr) {
  TinyWorld w;
  graph::GraphBuilder b(num_users);
  for (const auto& [from, to, weight] : edges) b.AddEdge(from, to, weight);
  w.graph = std::make_unique<graph::SocialGraph>(b.Build());
  w.relevance = relevance ? std::move(relevance)
                          : MakeZeroRelevance(spec.num_items);

  diffusion::Problem& p = w.problem;
  p.graph = w.graph.get();
  p.relevance = w.relevance.get();
  p.params = spec.params;
  p.importance.assign(spec.num_items, 1.0);
  p.base_pref.assign(static_cast<size_t>(num_users) * spec.num_items,
                     static_cast<float>(spec.base_pref));
  p.cost.assign(static_cast<size_t>(num_users) * spec.num_items,
                static_cast<float>(spec.cost));
  p.wmeta0.assign(
      static_cast<size_t>(num_users) * w.relevance->NumMetas(),
      static_cast<float>(spec.wmeta0));
  p.budget = spec.budget;
  p.num_promotions = spec.num_promotions;
  return w;
}

}  // namespace imdpp::testutil

#endif  // IMDPP_TESTS_TEST_UTIL_H_
