// ISSUE 10: variance-adaptive sequential stopping for the greedy argmax
// loops. Covers the AdaptiveEval racing state machine (paired
// empirical-Bernstein elimination, fixed-order reductions, tie handling),
// the paired-vs-independent bound tightening the CRN contract buys, and
// the backend SelectBest surface: the fixed path must be bit-identical to
// the hand-written reference loop, the adaptive path must pick an
// ε-equivalent winner on every catalog dataset with fewer samples, stay
// bit-identical across thread counts, and book the eval.blocks_run /
// eval.early_stops / eval.samples_saved counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/catalog.h"
#include "data/dataset_registry.h"
#include "diffusion/adaptive_eval.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/sigma_backend.h"
#include "util/thread_pool.h"

namespace imdpp::diffusion {
namespace {

constexpr int kSamples = 24;

AdaptiveEvalConfig SmallBlocks() {
  AdaptiveEvalConfig config;
  config.enabled = true;
  config.delta = 0.05;
  config.block_samples = 4;
  config.min_samples = 4;
  return config;
}

// ------------------------------------------------------------ state machine

TEST(AdaptiveEvalRadius, SingleObservationNeverEliminates) {
  EXPECT_EQ(AdaptiveEval::Radius(/*variance=*/0.0, /*range=*/0.0, /*n=*/0,
                                 /*delta=*/0.05),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(AdaptiveEval::Radius(0.0, 0.0, 1, 0.05),
            std::numeric_limits<double>::infinity());
  // Two exactly-equal observations: zero variance, zero range — the paired
  // radius collapses to 0 and a tie can resolve.
  EXPECT_EQ(AdaptiveEval::Radius(0.0, 0.0, 2, 0.05), 0.0);
}

TEST(AdaptiveEvalRadius, ShrinksWithSamplesAndGrowsWithVariance) {
  const double r8 = AdaptiveEval::Radius(1.0, 4.0, 8, 0.05);
  const double r32 = AdaptiveEval::Radius(1.0, 4.0, 32, 0.05);
  EXPECT_LT(r32, r8);
  EXPECT_LT(AdaptiveEval::Radius(0.25, 4.0, 8, 0.05), r8);
  EXPECT_LT(r8, AdaptiveEval::Radius(1.0, 4.0, 8, 0.01));
}

// The reason racing runs on paired differences: under common random
// numbers the difference variance is far below either estimate's own, so
// the paired radius separates candidates long before two independent
// confidence intervals would stop overlapping.
TEST(AdaptiveEvalRadius, PairedBoundIsTighterThanIndependentBounds) {
  const int n = 16;
  const double delta = 0.05;
  // Candidate values v_i[s] = common[s] + offset_i: per-candidate variance
  // is the (large) common-noise variance, but the paired differences are
  // an exact constant.
  std::vector<double> common(n);
  for (int s = 0; s < n; ++s) common[s] = (s % 5) * 3.0;  // var ≈ 4.2
  double mean = 0.0;
  for (double v : common) mean += v;
  mean /= n;
  double var = 0.0, lo = common[0], hi = common[0];
  for (double v : common) {
    var += (v - mean) * (v - mean);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  var /= n;
  const double independent =
      AdaptiveEval::Radius(var, hi - lo, n, delta) * 2;  // both intervals
  const double paired = AdaptiveEval::Radius(0.0, 0.0, n, delta);
  EXPECT_EQ(paired, 0.0);
  EXPECT_GT(independent, 1.0);  // could not separate a 0.5 gap
}

TEST(AdaptiveEvalRace, ExactCrnTiesEliminateAtFirstBoundary) {
  // Three candidates with identical per-sample values (the timing-sweep
  // case where the extra seed never fires): everyone ties, the
  // lowest-index leader survives, both others stop at min_samples.
  AdaptiveEvalConfig config = SmallBlocks();
  AdaptiveEval race(/*num_candidates=*/3, /*num_samples=*/16, config);
  ASSERT_FALSE(race.done());
  for (int i = 0; i < 3; ++i) {
    for (int s = race.block_begin(); s < race.block_end(); ++s) {
      race.Record(i, s, 7.0 + s);
    }
  }
  race.EndBlock();
  EXPECT_TRUE(race.done());
  EXPECT_EQ(race.num_alive(), 1);
  EXPECT_EQ(race.Winner(), 0);
  EXPECT_EQ(race.early_stops(), 2);
  EXPECT_EQ(race.blocks_run(), 3);
  // Everyone stopped at the first boundary — the counter sums unraced
  // samples over all three candidates (the driver re-spends the winner's
  // share in its full-precision re-evaluation).
  EXPECT_EQ(race.samples_saved(), 3 * (16 - 4));
  EXPECT_EQ(race.samples_used(0), 4);
  EXPECT_EQ(race.samples_used(1), 4);
}

TEST(AdaptiveEvalRace, ConstantDominatedCandidateEliminates) {
  AdaptiveEvalConfig config = SmallBlocks();
  AdaptiveEval race(2, 16, config);
  for (int s = race.block_begin(); s < race.block_end(); ++s) {
    race.Record(0, s, 2.0 + 0.1 * s);
    race.Record(1, s, 1.0 + 0.1 * s);  // d ≡ -1: deterministically worse
  }
  race.EndBlock();
  EXPECT_TRUE(race.done());
  EXPECT_EQ(race.Winner(), 0);
  EXPECT_EQ(race.early_stops(), 1);
  EXPECT_GT(race.samples_saved(), 0);
}

TEST(AdaptiveEvalRace, NoisyCloseRaceRunsToCapAndMatchesArgmax) {
  // Values too noisy to separate at δ = 0.05 in 16 samples: the race must
  // degenerate to the fixed count and return the plain first-index argmax
  // of the full-sample means.
  AdaptiveEvalConfig config = SmallBlocks();
  const int n = 16;
  AdaptiveEval race(3, n, config);
  std::vector<std::vector<double>> values(3, std::vector<double>(n));
  uint64_t state = 12345;
  for (int i = 0; i < 3; ++i) {
    for (int s = 0; s < n; ++s) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      values[i][s] = static_cast<double>((state >> 33) % 1000) / 1000.0;
    }
  }
  while (!race.done()) {
    for (int i = 0; i < 3; ++i) {
      if (!race.IsAlive(i)) continue;
      for (int s = race.block_begin(); s < race.block_end(); ++s) {
        race.Record(i, s, values[i][s]);
      }
    }
    race.EndBlock();
  }
  int expect = 0;
  double best = -1.0;
  for (int i = 0; i < 3; ++i) {
    double mean = 0.0;
    for (double v : values[i]) mean += v;
    mean /= n;
    if (mean > best) {
      best = mean;
      expect = i;
    }
  }
  EXPECT_EQ(race.Winner(), expect);
  EXPECT_TRUE(race.IsAlive(race.Winner()));
  EXPECT_EQ(race.samples_used(race.Winner()), n);
}

TEST(AdaptiveEvalRace, EliminationsAreSkippedAtTheSampleCap) {
  // One block covering the whole budget: even an exact tie survives to
  // the cap (nothing left to save), so the winner is the plain argmax.
  AdaptiveEvalConfig config;
  config.enabled = true;
  config.min_samples = 8;
  config.block_samples = 8;
  AdaptiveEval race(2, 8, config);
  for (int s = 0; s < 8; ++s) {
    race.Record(0, s, 1.0);
    race.Record(1, s, 1.0);
  }
  race.EndBlock();
  EXPECT_TRUE(race.done());
  EXPECT_EQ(race.early_stops(), 0);
  EXPECT_EQ(race.samples_saved(), 0);
  EXPECT_EQ(race.Winner(), 0);  // first index on ties, like the fixed loop
}

TEST(AdaptiveEvalRace, MaxSamplesBudgetStopsUndecidedRacesEarly) {
  // Two candidates whose paired differences flip sign every sample: no
  // honest bound ever separates them, so without a budget they race to
  // the full cap. max_samples makes the race decide at the budget instead
  // and bank the rest as savings; the winner is still the plain argmax of
  // the budgeted means (the driver re-evaluates it at full precision).
  AdaptiveEvalConfig config = SmallBlocks();
  config.max_samples = 8;
  AdaptiveEval race(2, kSamples, config);
  while (!race.done()) {
    for (int i = 0; i < 2; ++i) {
      if (!race.IsAlive(i)) continue;
      for (int s = race.block_begin(); s < race.block_end(); ++s) {
        // Candidate 1 alternates above/below candidate 0 with a tiny mean
        // edge (+0.01) that no bound can certify at these sample counts.
        race.Record(i, s, i == 0 ? 1.0 : 1.0 + (s % 2 == 0 ? 2.0 : -1.98));
      }
    }
    race.EndBlock();
  }
  EXPECT_EQ(race.samples_used(0), 8);
  EXPECT_EQ(race.samples_used(1), 8);
  EXPECT_EQ(race.early_stops(), 0);  // the budget is not an elimination
  EXPECT_EQ(race.samples_saved(), 2 * (kSamples - 8));
  EXPECT_EQ(race.Winner(), 1);  // argmax of the budgeted means
  // Budget at or above the cap (or the default 0) changes nothing: the
  // same feed runs to the full fixed count.
  for (int budget : {0, kSamples, kSamples + 100}) {
    AdaptiveEvalConfig uncapped = SmallBlocks();
    uncapped.max_samples = budget;
    AdaptiveEval full(2, kSamples, uncapped);
    while (!full.done()) {
      for (int i = 0; i < 2; ++i) {
        if (!full.IsAlive(i)) continue;
        for (int s = full.block_begin(); s < full.block_end(); ++s) {
          full.Record(i, s, i == 0 ? 1.0 : 1.0 + (s % 2 == 0 ? 2.0 : -1.98));
        }
      }
      full.EndBlock();
    }
    EXPECT_EQ(full.samples_used(0), kSamples) << budget;
    EXPECT_EQ(full.samples_saved(), 0) << budget;
  }
}

// ------------------------------------------------------------ backend seam

std::vector<SelectCandidate> CandidatesFor(const Problem& problem) {
  // Structurally different seed groups, valid on any catalog problem —
  // the same probe idiom as backend_test.cc.
  const int n = problem.NumUsers();
  const int m = problem.NumItems();
  int hi = 0;
  for (int x = 1; x < m; ++x) {
    if (problem.importance[static_cast<size_t>(x)] >
        problem.importance[static_cast<size_t>(hi)]) {
      hi = x;
    }
  }
  std::vector<SelectCandidate> candidates;
  candidates.push_back({SeedGroup{{0, hi, 1}}, nullptr});
  candidates.push_back({SeedGroup{{n / 2, hi % m, 1}}, nullptr});
  candidates.push_back(
      {SeedGroup{{0, hi, 1}, {n - 1, hi, 2}}, nullptr});
  candidates.push_back({SeedGroup{{n / 3, 0, 1}}, nullptr});
  return candidates;
}

TEST(AdaptiveSelectBest, FixedPathIsBitIdenticalToTheHandLoop) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  MonteCarloEngine by_hand(problem, campaign, kSamples, /*num_threads=*/2);
  MonteCarloEngine seam(problem, campaign, kSamples, /*num_threads=*/2);
  const std::vector<SelectCandidate> candidates = CandidatesFor(problem);

  int want_index = -1;
  double want_score = 0.0;  // the historical accumulator seed
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double s = by_hand.Sigma(candidates[i].group);
    if (s > want_score) {
      want_score = s;
      want_index = static_cast<int>(i);
    }
  }
  SelectOptions options;  // adaptive disabled = the reference loop
  options.min_score = 0.0;
  const SelectBestResult r = seam.SelectBest(candidates, options);
  EXPECT_EQ(r.best_index, want_index);
  EXPECT_EQ(r.best_score, want_score);  // bit-identity, not tolerance
  EXPECT_EQ(r.samples_used,
            static_cast<int64_t>(candidates.size()) * kSamples);
  // Identical work accounting: the seam ran the exact same estimates.
  EXPECT_EQ(seam.num_simulations(), by_hand.num_simulations());
  EXPECT_EQ(seam.num_rounds_simulated(), by_hand.num_rounds_simulated());
  EXPECT_EQ(seam.num_blocks_run(), 0);
  EXPECT_EQ(seam.num_early_stops(), 0);
  EXPECT_EQ(seam.num_samples_saved(), 0);
}

TEST(AdaptiveSelectBest, DuplicateCandidatesStopEarlyAndBookCounters) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  MonteCarloEngine engine(problem, campaign, kSamples, /*num_threads=*/2);
  // Two bit-identical groups: CRN makes every paired difference exactly
  // zero, so the duplicate is eliminated at the very first boundary.
  std::vector<SelectCandidate> candidates;
  candidates.push_back({SeedGroup{{0, 0, 1}}, nullptr});
  candidates.push_back({SeedGroup{{0, 0, 1}}, nullptr});
  SelectOptions options;
  options.adaptive = SmallBlocks();
  const SelectBestResult r = engine.SelectBest(candidates, options);
  EXPECT_EQ(r.best_index, 0);
  EXPECT_EQ(r.best_score, engine.Sigma(candidates[0].group));
  EXPECT_GT(engine.num_blocks_run(), 0);
  EXPECT_EQ(engine.num_early_stops(), 1);
  EXPECT_GT(engine.num_samples_saved(), 0);
  // Both candidates advanced only to the first boundary; the winner's
  // full-precision re-evaluation adds the full budget once.
  EXPECT_LT(r.samples_used,
            static_cast<int64_t>(candidates.size()) * kSamples);
}

TEST(AdaptiveSelectBest, TimeShiftedCandidatesRaceAsExactTies) {
  // The point of time-aligned racing coins: the same seed scheduled at
  // different promotions consumes the identical coin sequence during the
  // race, so with nothing else on the schedule the paired differences are
  // exactly zero and every shifted copy is eliminated at the first
  // boundary. Under the historical round-keyed coins each shift re-rolls
  // every flip and these candidates would race to the cap as independent
  // noise.
  data::Dataset ds = data::MakeSmallAmazonSample();
  Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/3);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  MonteCarloEngine engine(problem, campaign, kSamples, /*num_threads=*/2);
  std::vector<SelectCandidate> candidates;
  for (int t = 1; t <= 3; ++t) {
    candidates.push_back({SeedGroup{{0, 0, t}}, nullptr});
  }
  SelectOptions options;
  options.adaptive = SmallBlocks();
  const SelectBestResult r = engine.SelectBest(candidates, options);
  EXPECT_EQ(r.best_index, 0);  // ties keep the first index
  EXPECT_EQ(r.best_score, engine.Sigma(candidates[0].group));
  EXPECT_EQ(engine.num_early_stops(), 2);
  // All three advanced only to the first boundary (min_samples each).
  EXPECT_EQ(engine.num_samples_saved(),
            3 * static_cast<int64_t>(kSamples - SmallBlocks().min_samples));
  EXPECT_EQ(r.samples_used,
            3 * static_cast<int64_t>(SmallBlocks().min_samples) + kSamples);
}

TEST(AdaptiveSelectBest, WinnerScoreMatchesFixedWithinToleranceEverywhere) {
  // The ε-accuracy gate on every catalog dataset: the adaptive winner's
  // full-precision score must be within 10% of the fixed reference
  // winner's. (Racing is allowed to pick a statistically-tied candidate;
  // it must never pick a clearly worse one.)
  for (const std::string& name : data::DatasetRegistry::Names()) {
    SCOPED_TRACE(name);
    data::Dataset ds = data::DatasetRegistry::MakeOrDie({name, 0.2, 0});
    Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/2);
    CampaignConfig campaign;
    campaign.base_seed = 20260808;
    const std::vector<SelectCandidate> candidates = CandidatesFor(problem);

    MonteCarloEngine fixed(problem, campaign, kSamples, /*num_threads=*/2);
    SelectOptions fixed_options;
    const SelectBestResult want = fixed.SelectBest(candidates, fixed_options);
    ASSERT_GE(want.best_index, 0);

    MonteCarloEngine raced(problem, campaign, kSamples, /*num_threads=*/2);
    SelectOptions options;
    options.adaptive = SmallBlocks();
    const SelectBestResult got = raced.SelectBest(candidates, options);
    ASSERT_GE(got.best_index, 0);
    const double denom = std::max(want.best_score, 1e-9);
    EXPECT_GE(got.best_score, want.best_score - 0.1 * denom)
        << "fixed=" << want.best_score << " adaptive=" << got.best_score;
    // And never more samples than the fixed budget (+ the winner re-eval).
    EXPECT_LE(got.samples_used, want.samples_used + kSamples);
  }
}

TEST(AdaptiveSelectBest, BitIdenticalAcrossThreadCounts) {
  // The determinism contract: per-sample slots + fixed-order block
  // reductions make the whole race — decisions, winner, score bits,
  // work counters — a pure function of the candidates, at any executor
  // count including the serial fallback.
  data::Dataset ds = data::MakeSmallAmazonSample();
  Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  const std::vector<SelectCandidate> candidates = CandidatesFor(problem);
  SelectOptions options;
  options.adaptive = SmallBlocks();

  SelectBestResult first;
  int64_t first_rounds = -1;
  bool have_first = false;
  for (int threads : {0, 1, 2, 4}) {
    SCOPED_TRACE(threads);
    MonteCarloEngine engine(problem, campaign, kSamples, threads);
    const SelectBestResult r = engine.SelectBest(candidates, options);
    if (!have_first) {
      first = r;
      first_rounds = engine.num_rounds_simulated();
      have_first = true;
      continue;
    }
    EXPECT_EQ(r.best_index, first.best_index);
    EXPECT_EQ(r.best_score, first.best_score);
    EXPECT_EQ(r.samples_used, first.samples_used);
    EXPECT_EQ(engine.num_rounds_simulated(), first_rounds);
  }
}

TEST(AdaptiveSelectBest, CheckpointedEvalMatchesEngineRace) {
  // The checkpoint-resumed block evaluation must race on the identical
  // per-sample values as the from-scratch engine path (bit-identical
  // resume contract), so both pick the same winner at the same score.
  data::Dataset ds = data::MakeSmallAmazonSample();
  Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/3);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  const SeedGroup base{{0, 0, 1}};
  std::vector<SelectCandidate> candidates;
  for (int t = 1; t <= 3; ++t) {
    SeedGroup with = base;
    with.push_back({3, 1, t});
    candidates.push_back({std::move(with), nullptr});
  }
  SelectOptions options;
  options.adaptive = SmallBlocks();

  MonteCarloEngine flat(problem, campaign, kSamples, /*num_threads=*/2);
  const SelectBestResult want = flat.SelectBest(candidates, options);

  MonteCarloEngine engine(problem, campaign, kSamples, /*num_threads=*/2);
  CheckpointedEval eval(engine, base);
  const SelectBestResult got = eval.SelectBest(candidates, options);
  EXPECT_EQ(got.best_index, want.best_index);
  EXPECT_EQ(got.best_score, want.best_score);
  // Checkpoint reuse inside a race is bounded by the candidates' common
  // prefix: these candidates already diverge at round 1 (the coin-aligned
  // suffix starts there), so the checkpointed path degenerates to the
  // engine path's work — never more.
  EXPECT_LE(engine.num_rounds_simulated(), flat.num_rounds_simulated());
}

TEST(AdaptiveSelectBest, NothingAboveMinScoreReturnsNoIndex) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  Problem problem = ds.MakeProblem(/*budget=*/100.0, /*num_promotions=*/2);
  CampaignConfig campaign;
  campaign.base_seed = 20260808;
  MonteCarloEngine engine(problem, campaign, kSamples, /*num_threads=*/0);
  const std::vector<SelectCandidate> candidates = CandidatesFor(problem);
  SelectOptions options;
  options.adaptive = SmallBlocks();
  options.min_score = 1e18;  // nothing can beat it
  const SelectBestResult r = engine.SelectBest(candidates, options);
  EXPECT_EQ(r.best_index, -1);
  // The fixed loop agrees.
  SelectOptions fixed;
  fixed.min_score = 1e18;
  EXPECT_EQ(engine.SelectBest(candidates, fixed).best_index, -1);
}

}  // namespace
}  // namespace imdpp::diffusion
