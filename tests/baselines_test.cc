#include <gtest/gtest.h>

#include "baselines/bgrd.h"
#include "baselines/cr_greedy.h"
#include "baselines/drhga.h"
#include "baselines/hag.h"
#include "baselines/opt.h"
#include "baselines/ps.h"
#include "data/catalog.h"
#include "tests/test_util.h"

namespace imdpp::baselines {
namespace {

using testutil::MakeWorld;
using testutil::TinyWorld;
using testutil::TinyWorldSpec;

BaselineConfig FastConfig() {
  BaselineConfig cfg;
  cfg.selection_samples = 6;
  cfg.eval_samples = 16;
  cfg.candidates.max_users = 8;
  cfg.candidates.max_items = 3;
  return cfg;
}

TEST(CrGreedy, AssignsAllNomineesWithinHorizon) {
  TinyWorldSpec s;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  s.num_promotions = 3;
  TinyWorld w = MakeWorld(4, {{0, 1, 1.0}, {2, 3, 1.0}}, s);
  diffusion::MonteCarloEngine engine(w.problem, {}, 8);
  SeedGroup seeds = CrGreedyTimings(engine, {{0, 0}, {2, 0}});
  ASSERT_EQ(seeds.size(), 2u);
  for (const diffusion::Seed& seed : seeds) {
    EXPECT_GE(seed.promotion, 1);
    EXPECT_LE(seed.promotion, 3);
  }
}

TEST(CrGreedy, EmptyNominees) {
  TinyWorld w = MakeWorld(2, {{0, 1, 0.5}});
  diffusion::MonteCarloEngine engine(w.problem, {}, 4);
  EXPECT_TRUE(CrGreedyTimings(engine, {}).empty());
}

class BaselinesOnSample : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::MakeSmallAmazonSample();
    problem_ = ds_.MakeProblem(80.0, 2);
  }
  data::Dataset ds_;
  diffusion::Problem problem_;
};

TEST_F(BaselinesOnSample, BgrdFeasibleAndPositive) {
  BaselineResult r = RunBgrd(problem_, FastConfig());
  EXPECT_LE(r.total_cost, problem_.budget + 1e-9);
  EXPECT_GT(r.sigma, 0.0);
  EXPECT_FALSE(r.seeds.empty());
}

TEST_F(BaselinesOnSample, BgrdBundlesUsers) {
  // Every selected user should carry more than one item when affordable —
  // the defining trait of bundle promotion.
  BaselineConfig cfg = FastConfig();
  BaselineResult r = RunBgrd(problem_, cfg);
  std::map<int, int> items_per_user;
  for (const diffusion::Seed& s : r.seeds) ++items_per_user[s.user];
  int max_items = 0;
  for (const auto& [u, n] : items_per_user) max_items = std::max(max_items, n);
  EXPECT_GE(max_items, 2);
}

TEST_F(BaselinesOnSample, HagFeasibleAndPositive) {
  BaselineResult r = RunHag(problem_, FastConfig());
  EXPECT_LE(r.total_cost, problem_.budget + 1e-9);
  EXPECT_GT(r.sigma, 0.0);
}

TEST_F(BaselinesOnSample, PsFeasibleAndPositive) {
  PsConfig cfg;
  static_cast<BaselineConfig&>(cfg) = FastConfig();
  BaselineResult r = RunPs(problem_, cfg);
  EXPECT_LE(r.total_cost, problem_.budget + 1e-9);
  EXPECT_GT(r.sigma, 0.0);
}

TEST_F(BaselinesOnSample, DrhgaFeasibleAndPositive) {
  BaselineResult r = RunDrhga(problem_, FastConfig());
  EXPECT_LE(r.total_cost, problem_.budget + 1e-9);
  EXPECT_GT(r.sigma, 0.0);
}

TEST_F(BaselinesOnSample, DrhgaCoversMultipleItems) {
  BaselineConfig cfg = FastConfig();
  cfg.candidates.max_items = 3;
  BaselineResult r = RunDrhga(problem_, cfg);
  std::set<int> items;
  for (const diffusion::Seed& s : r.seeds) items.insert(s.item);
  EXPECT_GE(items.size(), 2u);
}

TEST_F(BaselinesOnSample, AllDeterministic) {
  BaselineConfig cfg = FastConfig();
  EXPECT_EQ(RunBgrd(problem_, cfg).seeds, RunBgrd(problem_, cfg).seeds);
  EXPECT_EQ(RunHag(problem_, cfg).seeds, RunHag(problem_, cfg).seeds);
  EXPECT_EQ(RunDrhga(problem_, cfg).seeds, RunDrhga(problem_, cfg).seeds);
  PsConfig pcfg;
  static_cast<BaselineConfig&>(pcfg) = cfg;
  EXPECT_EQ(RunPs(problem_, pcfg).seeds, RunPs(problem_, pcfg).seeds);
}

TEST(Opt, FindsTheExactOptimumOnTinyInstance) {
  // Two candidate users: 0 cascades to 2 users, 2 is isolated. With budget
  // for one seed, OPT must take user 0 at t=1.
  TinyWorldSpec s;
  s.params = pin::PerceptionParams::FrozenDynamics();
  s.params.act_cap = 1.0;
  s.cost = 10.0;
  s.budget = 10.0;
  TinyWorld w = MakeWorld(3, {{0, 1, 1.0}}, s);
  w.problem.budget = 10.0;
  OptConfig cfg;
  cfg.selection_samples = 8;
  cfg.eval_samples = 8;
  cfg.max_candidates = 0;
  cfg.max_seeds = 2;
  BaselineResult r = RunOpt(w.problem, cfg);
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0].user, 0);
  EXPECT_DOUBLE_EQ(r.sigma, 2.0);
}

TEST(Opt, NeverWorseThanAnySingleton) {
  data::Dataset ds = data::MakeSmallAmazonSample();
  diffusion::Problem p = ds.MakeProblem(60.0, 2);
  OptConfig cfg;
  cfg.selection_samples = 6;
  cfg.eval_samples = 16;
  cfg.candidates.max_users = 4;
  cfg.candidates.max_items = 2;
  cfg.max_candidates = 6;
  cfg.max_seeds = 2;
  BaselineResult opt = RunOpt(p, cfg);
  // Compare against each singleton of its own candidate space.
  diffusion::MonteCarloEngine eval(p, cfg.campaign, cfg.eval_samples);
  std::vector<Nominee> cands = core::BuildCandidateUniverse(p, cfg.candidates);
  for (const Nominee& n : cands) {
    if (p.Cost(n.user, n.item) > p.budget) continue;
    EXPECT_GE(opt.sigma + 1e-9, eval.Sigma({{n.user, n.item, 1}}));
  }
}

TEST(Opt, RespectsSeedCap) {
  TinyWorldSpec s;
  s.cost = 1.0;
  s.budget = 100.0;
  TinyWorld w = MakeWorld(4, {{0, 1, 0.5}, {2, 3, 0.5}}, s);
  w.problem.budget = 100.0;
  OptConfig cfg;
  cfg.selection_samples = 4;
  cfg.eval_samples = 4;
  cfg.max_candidates = 0;
  cfg.max_seeds = 1;
  BaselineResult r = RunOpt(w.problem, cfg);
  EXPECT_LE(r.seeds.size(), 1u);
}

}  // namespace
}  // namespace imdpp::baselines
