// Meta-graph schemas.
//
// A meta-graph is a typed pattern whose instances are KG subgraphs with two
// distinguished ITEM endpoints (Fig. 1(b) of the paper). We represent a
// meta-graph as a set of *legs*: each leg is a typed walk pattern from the
// source item to the destination item. A single-leg meta-graph is exactly a
// meta-path (e.g. m1 = ITEM -SUPPORT-> FEATURE <-SUPPORT- ITEM); multi-leg
// meta-graphs require all legs to be instantiable simultaneously (e.g. the
// paper's m3, which joins a shared-feature path with a shared-brand path).
//
// Instance counting semantics (see MetaGraphMatcher): the count of a leg is
// the number of distinct typed walks between the endpoints; the count of a
// multi-leg meta-graph is the minimum over its legs (each joint instance
// needs one walk per leg).
#ifndef IMDPP_KG_META_GRAPH_H_
#define IMDPP_KG_META_GRAPH_H_

#include <string>
#include <vector>

#include "kg/types.h"

namespace imdpp::kg {

/// One hop of a leg: traverse an edge of `edge_type` (in the stored
/// `forward` direction or against it) into a node of `node_type`.
struct LegStep {
  EdgeTypeId edge_type = -1;
  bool forward = true;
  NodeTypeId node_type = -1;
};

/// A typed walk pattern from the source ITEM to the destination ITEM.
/// The final step's node_type must be the KG's item type.
struct MetaLeg {
  std::vector<LegStep> steps;
};

/// A meta-graph with the relationship it expresses.
struct MetaGraph {
  std::string name;
  RelationKind kind = RelationKind::kComplementary;
  std::vector<MetaLeg> legs;
};

/// Builders for the common shapes. All take type *names* and intern them in
/// `kg`'s registries, so they can be called before or after data loading.

class KnowledgeGraph;

/// Shared-middle meta-path: ITEM -e-> M <-e- ITEM
/// (e.g. two items SUPPORT the same FEATURE).
MetaGraph SharedNeighborMeta(KnowledgeGraph& kg, std::string name,
                             RelationKind kind, std::string_view edge_type,
                             std::string_view middle_node_type);

/// Direct-edge meta-path: ITEM -e-> ITEM (e.g. ALSO_BOUGHT).
MetaGraph DirectEdgeMeta(KnowledgeGraph& kg, std::string name,
                         RelationKind kind, std::string_view edge_type);

/// Conjunction of existing meta-graphs' legs under a new name/kind; used to
/// express Fig. 1(b)'s m3 (shared feature AND shared brand).
MetaGraph ConjunctionMeta(std::string name, RelationKind kind,
                          const std::vector<MetaGraph>& parts);

}  // namespace imdpp::kg

#endif  // IMDPP_KG_META_GRAPH_H_
