// Per-meta-graph item-item relevance s(x,y|m) in [0,1].
//
// The RelevanceModel owns one dense NumItems x NumItems float matrix per
// meta-graph plus the meta-graph's relationship kind. Personal relevance is
// a user-weighted combination of these matrices (pin/personal_item_network);
// this class only holds the *shared* KG-derived part, which never changes
// during a campaign.
#ifndef IMDPP_KG_RELEVANCE_H_
#define IMDPP_KG_RELEVANCE_H_

#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/meta_graph.h"

namespace imdpp::kg {

class RelevanceModel {
 public:
  /// Builds s(x,y|m) = count / (count + kappa) from meta-graph instance
  /// counts over `kg`. `kappa > 0` controls saturation (default 2: one
  /// shared feature already gives s = 1/3, three give 0.6).
  static RelevanceModel FromKg(const KnowledgeGraph& kg,
                               std::vector<MetaGraph> metas,
                               double kappa = 2.0);

  /// Builds directly from caller-provided matrices (tests, toy examples).
  /// Each matrix is row-major num_items x num_items with values in [0,1].
  static RelevanceModel FromMatrices(int num_items,
                                     std::vector<MetaGraph> metas,
                                     std::vector<std::vector<float>> matrices);

  int NumItems() const { return num_items_; }
  int NumMetas() const { return static_cast<int>(metas_.size()); }

  const MetaGraph& Meta(int m) const { return metas_[m]; }
  RelationKind KindOf(int m) const { return metas_[m].kind; }

  /// s(x,y|m) in [0,1].
  float Score(int m, ItemId x, ItemId y) const {
    IMDPP_DCHECK(m >= 0 && m < NumMetas());
    IMDPP_DCHECK(x >= 0 && x < num_items_);
    IMDPP_DCHECK(y >= 0 && y < num_items_);
    return matrices_[m][static_cast<size_t>(x) * num_items_ + y];
  }

  /// Items y with Score(m, x, y) > 0 for *any* meta m; precomputed sparse
  /// neighbor lists used by item-association and DR propagation loops.
  const std::vector<ItemId>& RelatedItems(ItemId x) const {
    IMDPP_DCHECK(x >= 0 && x < num_items_);
    return related_[x];
  }

  /// Restricts the model to its first `k` meta-graphs (sensitivity test,
  /// Fig. 13). k must be in [1, NumMetas()].
  RelevanceModel WithFirstMetas(int k) const;

  /// Restricts the model to an arbitrary meta-graph subset, in the given
  /// order. Indices must be valid and non-empty.
  RelevanceModel WithMetaSubset(const std::vector<int>& indices) const;

 private:
  RelevanceModel() = default;
  void BuildRelated();

  int num_items_ = 0;
  std::vector<MetaGraph> metas_;
  std::vector<std::vector<float>> matrices_;
  std::vector<std::vector<ItemId>> related_;
};

}  // namespace imdpp::kg

#endif  // IMDPP_KG_RELEVANCE_H_
