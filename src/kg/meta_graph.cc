#include "kg/meta_graph.h"

#include "kg/knowledge_graph.h"

namespace imdpp::kg {

MetaGraph SharedNeighborMeta(KnowledgeGraph& kg, std::string name,
                             RelationKind kind, std::string_view edge_type,
                             std::string_view middle_node_type) {
  EdgeTypeId e = kg.EdgeType(edge_type);
  NodeTypeId mid = kg.NodeType(middle_node_type);
  MetaLeg leg;
  leg.steps.push_back(LegStep{e, /*forward=*/true, mid});
  leg.steps.push_back(LegStep{e, /*forward=*/false, kg.item_type()});
  MetaGraph m;
  m.name = std::move(name);
  m.kind = kind;
  m.legs.push_back(std::move(leg));
  return m;
}

MetaGraph DirectEdgeMeta(KnowledgeGraph& kg, std::string name,
                         RelationKind kind, std::string_view edge_type) {
  EdgeTypeId e = kg.EdgeType(edge_type);
  MetaLeg leg;
  leg.steps.push_back(LegStep{e, /*forward=*/true, kg.item_type()});
  MetaGraph m;
  m.name = std::move(name);
  m.kind = kind;
  m.legs.push_back(std::move(leg));
  return m;
}

MetaGraph ConjunctionMeta(std::string name, RelationKind kind,
                          const std::vector<MetaGraph>& parts) {
  MetaGraph m;
  m.name = std::move(name);
  m.kind = kind;
  for (const MetaGraph& p : parts) {
    for (const MetaLeg& leg : p.legs) m.legs.push_back(leg);
  }
  return m;
}

}  // namespace imdpp::kg
