#include "kg/relevance.h"

#include "kg/meta_graph_matcher.h"

namespace imdpp::kg {

RelevanceModel RelevanceModel::FromKg(const KnowledgeGraph& kg,
                                      std::vector<MetaGraph> metas,
                                      double kappa) {
  IMDPP_CHECK_GT(kappa, 0.0);
  RelevanceModel model;
  model.num_items_ = kg.NumItems();
  model.metas_ = std::move(metas);
  MetaGraphMatcher matcher(kg);
  for (const MetaGraph& m : model.metas_) {
    std::vector<int64_t> counts = matcher.CountAllPairs(m);
    std::vector<float> mat(counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      double c = static_cast<double>(counts[i]);
      mat[i] = static_cast<float>(c / (c + kappa));
    }
    model.matrices_.push_back(std::move(mat));
  }
  model.BuildRelated();
  return model;
}

RelevanceModel RelevanceModel::FromMatrices(
    int num_items, std::vector<MetaGraph> metas,
    std::vector<std::vector<float>> matrices) {
  IMDPP_CHECK_EQ(metas.size(), matrices.size());
  RelevanceModel model;
  model.num_items_ = num_items;
  model.metas_ = std::move(metas);
  for (auto& mat : matrices) {
    IMDPP_CHECK_EQ(mat.size(),
                   static_cast<size_t>(num_items) * num_items);
    for (float v : mat) IMDPP_CHECK(v >= 0.0f && v <= 1.0f);
    model.matrices_.push_back(std::move(mat));
  }
  model.BuildRelated();
  return model;
}

void RelevanceModel::BuildRelated() {
  related_.assign(num_items_, {});
  for (ItemId x = 0; x < num_items_; ++x) {
    for (ItemId y = 0; y < num_items_; ++y) {
      if (y == x) continue;
      for (int m = 0; m < NumMetas(); ++m) {
        if (Score(m, x, y) > 0.0f) {
          related_[x].push_back(y);
          break;
        }
      }
    }
  }
}

RelevanceModel RelevanceModel::WithMetaSubset(
    const std::vector<int>& indices) const {
  IMDPP_CHECK(!indices.empty());
  RelevanceModel model;
  model.num_items_ = num_items_;
  for (int i : indices) {
    IMDPP_CHECK(i >= 0 && i < NumMetas());
    model.metas_.push_back(metas_[i]);
    model.matrices_.push_back(matrices_[i]);
  }
  model.BuildRelated();
  return model;
}

RelevanceModel RelevanceModel::WithFirstMetas(int k) const {
  IMDPP_CHECK(k >= 1 && k <= NumMetas());
  RelevanceModel model;
  model.num_items_ = num_items_;
  model.metas_.assign(metas_.begin(), metas_.begin() + k);
  model.matrices_.assign(matrices_.begin(), matrices_.begin() + k);
  model.BuildRelated();
  return model;
}

}  // namespace imdpp::kg
