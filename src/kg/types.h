// String-interned node/edge types for the heterogeneous information network.
// The paper's KG is G_KG = (V, E, Φ, Ψ) where Φ maps nodes to node types
// (ITEM, FEATURE, BRAND, ...) and Ψ maps edges to edge types (SUPPORT,
// BELONG, ...). We intern the type strings once and use dense ids after.
#ifndef IMDPP_KG_TYPES_H_
#define IMDPP_KG_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace imdpp::kg {

using NodeTypeId = int16_t;
using EdgeTypeId = int16_t;
using KgNodeId = int32_t;
using ItemId = int32_t;

/// Bidirectional string <-> dense-id mapping for type names.
class TypeRegistry {
 public:
  /// Returns the id for `name`, interning it if new.
  int16_t Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    int16_t id = static_cast<int16_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or -1 if never interned.
  int16_t Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? static_cast<int16_t>(-1) : it->second;
  }

  const std::string& Name(int16_t id) const {
    IMDPP_CHECK(id >= 0 && id < static_cast<int16_t>(names_.size()));
    return names_[id];
  }

  int Size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int16_t> ids_;
};

/// The relationship an item-item relevance signal describes. IMDPP uses two
/// meta-graph families: {m^C} (complementary) and {m^S} (substitutable).
enum class RelationKind : uint8_t {
  kComplementary,
  kSubstitutable,
};

}  // namespace imdpp::kg

#endif  // IMDPP_KG_TYPES_H_
