#include "kg/meta_graph_matcher.h"

#include <algorithm>

namespace imdpp::kg {

void MetaGraphMatcher::WalkLeg(const MetaLeg& leg, ItemId x,
                               std::vector<int64_t>& counts) const {
  counts.assign(kg_.NumNodes(), 0);
  IMDPP_CHECK(!leg.steps.empty());
  // Frontier as sparse (node, count) pairs to stay cheap on large KGs.
  std::vector<std::pair<KgNodeId, int64_t>> frontier{{kg_.ItemNode(x), 1}};
  for (size_t si = 0; si < leg.steps.size(); ++si) {
    const LegStep& step = leg.steps[si];
    // Accumulate next-frontier counts in a dense scratch keyed by node.
    std::vector<std::pair<KgNodeId, int64_t>> next;
    std::vector<int64_t> acc(kg_.NumNodes(), 0);
    for (const auto& [node, cnt] : frontier) {
      for (const KgEdge& e : kg_.EdgesOf(node)) {
        if (e.type != step.edge_type) continue;
        if (e.forward != step.forward) continue;
        if (kg_.TypeOf(e.to) != step.node_type) continue;
        if (acc[e.to] == 0) next.emplace_back(e.to, 0);
        acc[e.to] += cnt;
      }
    }
    for (auto& [node, cnt] : next) cnt = acc[node];
    frontier.swap(next);
    if (frontier.empty()) break;
  }
  for (const auto& [node, cnt] : frontier) counts[node] = cnt;
}

int64_t MetaGraphMatcher::CountLegWalks(const MetaLeg& leg, ItemId x,
                                        ItemId y) const {
  std::vector<int64_t> counts;
  WalkLeg(leg, x, counts);
  return counts[kg_.ItemNode(y)];
}

int64_t MetaGraphMatcher::CountInstances(const MetaGraph& m, ItemId x,
                                         ItemId y) const {
  IMDPP_CHECK(!m.legs.empty());
  if (x == y) return 0;
  int64_t best = INT64_MAX;
  for (const MetaLeg& leg : m.legs) {
    best = std::min(best, CountLegWalks(leg, x, y));
    if (best == 0) return 0;
  }
  return best;
}

std::vector<int64_t> MetaGraphMatcher::CountAllPairs(const MetaGraph& m) const {
  const int n = kg_.NumItems();
  std::vector<int64_t> out(static_cast<size_t>(n) * n, 0);
  std::vector<int64_t> counts;
  // Per-source walk over each leg; combine legs with min.
  std::vector<int64_t> leg_min(n);
  for (ItemId x = 0; x < n; ++x) {
    std::fill(leg_min.begin(), leg_min.end(), INT64_MAX);
    for (const MetaLeg& leg : m.legs) {
      WalkLeg(leg, x, counts);
      for (ItemId y = 0; y < n; ++y) {
        int64_t c = counts[kg_.ItemNode(y)];
        leg_min[y] = std::min(leg_min[y], c);
      }
    }
    for (ItemId y = 0; y < n; ++y) {
      if (y == x) continue;
      int64_t c = leg_min[y] == INT64_MAX ? 0 : leg_min[y];
      out[static_cast<size_t>(x) * n + y] = c;
    }
  }
  return out;
}

}  // namespace imdpp::kg
