#include "kg/knowledge_graph.h"

namespace imdpp::kg {

KnowledgeGraph::KnowledgeGraph(std::string item_type_name) {
  item_type_ = node_types_.Intern(item_type_name);
}

KgNodeId KnowledgeGraph::AddNode(NodeTypeId type, std::string label) {
  IMDPP_CHECK(type >= 0 && type < node_types_.Size());
  KgNodeId id = static_cast<KgNodeId>(node_type_of_.size());
  node_type_of_.push_back(type);
  labels_.push_back(std::move(label));
  adj_.emplace_back();
  if (type == item_type_) {
    item_of_node_.push_back(static_cast<ItemId>(item_nodes_.size()));
    item_nodes_.push_back(id);
  } else {
    item_of_node_.push_back(-1);
  }
  return id;
}

void KnowledgeGraph::AddEdge(KgNodeId a, KgNodeId b, EdgeTypeId type) {
  IMDPP_CHECK(a >= 0 && a < NumNodes());
  IMDPP_CHECK(b >= 0 && b < NumNodes());
  IMDPP_CHECK(type >= 0 && type < edge_types_.Size());
  adj_[a].push_back(KgEdge{b, type, /*forward=*/true});
  adj_[b].push_back(KgEdge{a, type, /*forward=*/false});
  ++num_edges_;
}

}  // namespace imdpp::kg
