// Heterogeneous information network G_KG = (V, E, Φ, Ψ).
//
// Nodes carry a node type; edges carry an edge type and are stored in both
// directions so meta-graph legs can traverse them forward or backward.
// Nodes whose type is the designated item type are additionally given dense
// ItemIds (0..NumItems-1) — the diffusion layer speaks ItemId only.
#ifndef IMDPP_KG_KNOWLEDGE_GRAPH_H_
#define IMDPP_KG_KNOWLEDGE_GRAPH_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kg/types.h"

namespace imdpp::kg {

/// A typed KG edge as seen from one endpoint.
struct KgEdge {
  KgNodeId to = -1;
  EdgeTypeId type = -1;
  bool forward = true;  ///< true if stored direction matches insertion order
};

class KnowledgeGraph {
 public:
  /// `item_type_name` designates which node type is the promotable ITEM.
  explicit KnowledgeGraph(std::string item_type_name = "ITEM");

  /// Interns (or finds) a node type.
  NodeTypeId NodeType(std::string_view name) { return node_types_.Intern(name); }
  /// Interns (or finds) an edge type.
  EdgeTypeId EdgeType(std::string_view name) { return edge_types_.Intern(name); }

  /// Adds a node of the given type; returns its id. If the type is the item
  /// type, the node also receives the next dense ItemId.
  KgNodeId AddNode(NodeTypeId type, std::string label = "");

  /// Convenience overload interning the type name.
  KgNodeId AddNode(std::string_view type_name, std::string label = "") {
    return AddNode(NodeType(type_name), std::move(label));
  }

  /// Adds a typed edge a -> b (stored in both directions with a forward
  /// flag). Multi-edges are allowed — meta-graph instance counts use them.
  void AddEdge(KgNodeId a, KgNodeId b, EdgeTypeId type);
  void AddEdge(KgNodeId a, KgNodeId b, std::string_view type_name) {
    AddEdge(a, b, EdgeType(type_name));
  }

  int NumNodes() const { return static_cast<int>(node_type_of_.size()); }
  int64_t NumEdges() const { return num_edges_; }
  int NumNodeTypes() const { return node_types_.Size(); }
  int NumEdgeTypes() const { return edge_types_.Size(); }

  NodeTypeId TypeOf(KgNodeId n) const {
    IMDPP_CHECK(n >= 0 && n < NumNodes());
    return node_type_of_[n];
  }

  const std::string& LabelOf(KgNodeId n) const {
    IMDPP_CHECK(n >= 0 && n < NumNodes());
    return labels_[n];
  }

  std::span<const KgEdge> EdgesOf(KgNodeId n) const {
    IMDPP_CHECK(n >= 0 && n < NumNodes());
    return adj_[n];
  }

  // --- Item view -----------------------------------------------------------

  int NumItems() const { return static_cast<int>(item_nodes_.size()); }

  /// KG node backing item x.
  KgNodeId ItemNode(ItemId x) const {
    IMDPP_CHECK(x >= 0 && x < NumItems());
    return item_nodes_[x];
  }

  /// Dense item id of KG node n, or -1 if n is not an item.
  ItemId ItemOf(KgNodeId n) const {
    IMDPP_CHECK(n >= 0 && n < NumNodes());
    return item_of_node_[n];
  }

  const std::string& ItemLabel(ItemId x) const { return labels_[ItemNode(x)]; }

  NodeTypeId item_type() const { return item_type_; }

  const TypeRegistry& node_types() const { return node_types_; }
  const TypeRegistry& edge_types() const { return edge_types_; }

 private:
  TypeRegistry node_types_;
  TypeRegistry edge_types_;
  NodeTypeId item_type_;

  std::vector<NodeTypeId> node_type_of_;
  std::vector<std::string> labels_;
  std::vector<std::vector<KgEdge>> adj_;
  int64_t num_edges_ = 0;

  std::vector<KgNodeId> item_nodes_;
  std::vector<ItemId> item_of_node_;
};

}  // namespace imdpp::kg

#endif  // IMDPP_KG_KNOWLEDGE_GRAPH_H_
