// Meta-graph instance counting over the KG.
//
// For every ordered item pair (x, y) and meta-graph m we need the number of
// instances of m with endpoints x, y; the relevance s(x,y|m) in [0,1] is a
// saturating normalization of that count (following the count-correlated
// relevance of SCSE / meta-structure relevance measures the paper cites).
#ifndef IMDPP_KG_META_GRAPH_MATCHER_H_
#define IMDPP_KG_META_GRAPH_MATCHER_H_

#include <cstdint>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/meta_graph.h"

namespace imdpp::kg {

/// Dense symmetric-by-construction item-item count matrix for one leg is
/// internal; the public API returns per-meta matrices of instance counts.
class MetaGraphMatcher {
 public:
  explicit MetaGraphMatcher(const KnowledgeGraph& kg) : kg_(kg) {}

  /// Number of typed walks matching `leg` from item x to item y.
  /// O(frontier * degree) per call.
  int64_t CountLegWalks(const MetaLeg& leg, ItemId x, ItemId y) const;

  /// Instance count of meta-graph m between x and y: the minimum over legs
  /// of the leg walk count (every joint instance consumes one walk per leg).
  int64_t CountInstances(const MetaGraph& m, ItemId x, ItemId y) const;

  /// All-pairs counts for one meta-graph: row-major NumItems x NumItems
  /// matrix; diagonal forced to 0 (an item is not related to itself).
  std::vector<int64_t> CountAllPairs(const MetaGraph& m) const;

 private:
  /// Walks `leg` from the KG node of x; returns walk counts per KG node.
  void WalkLeg(const MetaLeg& leg, ItemId x,
               std::vector<int64_t>& counts_out) const;

  const KnowledgeGraph& kg_;
};

}  // namespace imdpp::kg

#endif  // IMDPP_KG_META_GRAPH_MATCHER_H_
