// Result serialization: api::PlanResult / api::CompareResult / sweep
// records → JSON (machine-readable, byte-stable across identical runs)
// and aligned-table CSV (directly plottable, diffable in CI).
//
// Wall-clock fields are opt-in (`include_timings`): the default output of
// a deterministic run is byte-identical across invocations, which is what
// the CLI determinism gate diffs.
#ifndef IMDPP_REPORT_REPORT_H_
#define IMDPP_REPORT_REPORT_H_

#include <string>
#include <vector>

#include "api/session.h"
#include "config/config_loader.h"
#include "util/json.h"

namespace imdpp::report {

/// One PlanResult as a JSON object: planner, sigma, cost, schedule,
/// the PR 3 work counters (simulations, rounds_simulated, rounds_skipped,
/// memo_hits), Dysim diagnostics when present, per-round diagnostics when
/// present, and wall_seconds only when `include_timings`.
util::Json PlanResultJson(const api::PlanResult& result,
                          bool include_timings = false);

/// A paired comparison: problem coordinates + every planner's result.
util::Json CompareResultJson(const api::CompareResult& compare,
                             bool include_timings = false);

/// One executed sweep point.
struct SweepRecord {
  config::SweepPoint point;
  api::PlanResult result;
};

/// {"name": ..., "points": [{dataset, scale, planner, budget, promotions,
///  theta, threads, result: {...}}, ...]}
util::Json SweepJson(const std::string& name,
                     const std::vector<SweepRecord>& records,
                     bool include_timings = false);

/// Aligned-table CSV of the sweep: one row per point, columns padded to a
/// common width (parsers that trim whitespace — pandas, gnuplot, R — read
/// it as plain CSV; humans and diffs read it as a table).
std::string SweepCsv(const std::vector<SweepRecord>& records,
                     bool include_timings = false);

}  // namespace imdpp::report

#endif  // IMDPP_REPORT_REPORT_H_
