// Result serialization: api::PlanResult / api::CompareResult / sweep
// records → JSON (machine-readable, byte-stable across identical runs)
// and aligned-table CSV (directly plottable, diffable in CI).
//
// Wall-clock fields are opt-in (`include_timings`): the default output of
// a deterministic run is byte-identical across invocations, which is what
// the CLI determinism gate diffs.
#ifndef IMDPP_REPORT_REPORT_H_
#define IMDPP_REPORT_REPORT_H_

#include <string>
#include <vector>

#include "api/session.h"
#include "config/config_loader.h"
#include "util/json.h"

namespace imdpp::report {

/// One PlanResult as a JSON object: planner, sigma, cost, schedule,
/// the PR 3 work counters (simulations, rounds_simulated, rounds_skipped,
/// memo_hits), Dysim diagnostics when present, per-round diagnostics when
/// present, and wall_seconds only when `include_timings`.
util::Json PlanResultJson(const api::PlanResult& result,
                          bool include_timings = false);

/// A paired comparison: problem coordinates + every planner's result.
util::Json CompareResultJson(const api::CompareResult& compare,
                             bool include_timings = false);

/// One executed sweep point.
struct SweepRecord {
  config::SweepPoint point;
  api::PlanResult result;
};

/// {"name": ..., "points": [{dataset, scale, planner, budget, promotions,
///  theta, threads, result: {...}}, ...]}
util::Json SweepJson(const std::string& name,
                     const std::vector<SweepRecord>& records,
                     bool include_timings = false);

/// Aligned-table CSV of the sweep: one row per point, columns padded to a
/// common width (parsers that trim whitespace — pandas, gnuplot, R — read
/// it as plain CSV; humans and diffs read it as a table).
std::string SweepCsv(const std::vector<SweepRecord>& records,
                     bool include_timings = false);

/// Per-dataset prep-artifact stats (`imdpp datasets --prep`): the TMI
/// structure a default problem yields plus the artifact build accounting.
struct PrepDatasetStats {
  data::DatasetSpec dataset;
  double budget = 0.0;
  int promotions = 0;
  int users = 0;
  int items = 0;
  size_t nominees = 0;
  size_t clusters = 0;
  size_t markets = 0;
  size_t groups = 0;
  size_t mioa_regions = 0;       ///< cached per-source MIOA sweeps
  double prep_millis = 0.0;      ///< only serialized with include_timings
};

/// JSON array of the stats; byte-stable unless `include_timings`.
util::Json PrepStatsJson(const std::vector<PrepDatasetStats>& stats,
                         bool include_timings = false);

}  // namespace imdpp::report

#endif  // IMDPP_REPORT_REPORT_H_
