#include "report/report.h"

#include <algorithm>
#include <cstdio>

#include "util/metrics.h"
#include "util/status.h"

namespace imdpp::report {

namespace {

util::Json SeedJson(const diffusion::Seed& s) {
  util::Json seed = util::Json::Object();
  seed.Set("user", s.user);
  seed.Set("item", s.item);
  seed.Set("t", s.promotion);
  return seed;
}

std::string Fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace

util::Json PlanResultJson(const api::PlanResult& result,
                          bool include_timings) {
  util::Json out = util::Json::Object();
  out.Set("planner", result.planner);
  // Structured outcome (ISSUE 8): "ok" on success, the canonical code
  // name (plus the message) on failure — always present, byte-stable.
  out.Set("status",
          std::string(util::StatusCodeName(result.status.code())));
  if (!result.status.ok()) {
    out.Set("status_message", result.status.message());
  }
  out.Set("sigma", result.sigma);
  out.Set("total_cost", result.total_cost);
  out.Set("num_seeds", result.seeds.size());
  util::Json seeds = util::Json::Array();
  for (const diffusion::Seed& s : result.seeds) seeds.Append(SeedJson(s));
  out.Set("seeds", std::move(seeds));
  // Counters come from the unified snapshot (ISSUE 9); keys, order and
  // casts match the hand-threaded fields this replaces byte for byte.
  const util::MetricsSnapshot& m = result.metrics;
  out.Set("simulations",
          static_cast<double>(m.Counter(util::metric::kEvalSimulations)));
  out.Set("rounds_simulated",
          static_cast<double>(m.Counter(util::metric::kEvalRoundsSimulated)));
  out.Set("rounds_skipped",
          static_cast<double>(m.Counter(util::metric::kEvalRoundsSkipped)));
  out.Set("memo_hits",
          static_cast<double>(m.Counter(util::metric::kEvalMemoHits)));
  out.Set("blocks_run",
          static_cast<double>(m.Counter(util::metric::kEvalBlocksRun)));
  out.Set("early_stops",
          static_cast<double>(m.Counter(util::metric::kEvalEarlyStops)));
  out.Set("samples_saved",
          static_cast<double>(m.Counter(util::metric::kEvalSamplesSaved)));
  out.Set("prep_builds",
          static_cast<double>(m.Counter(util::metric::kPrepBuilds)));
  out.Set("prep_reuses",
          static_cast<double>(m.Counter(util::metric::kPrepReuses)));
  out.Set("faults_injected",
          static_cast<double>(m.Counter(util::metric::kFaultInjected)));
  out.Set("retries",
          static_cast<double>(m.Counter(util::metric::kFaultRetries)));
  out.Set("fallbacks",
          static_cast<double>(m.Counter(util::metric::kFaultFallbacks)));
  if (include_timings) {
    out.Set("prep_millis", m.Number(util::metric::kPrepMillis));
  }
  if (result.num_markets > 0 || result.num_groups > 0) {
    out.Set("num_markets", result.num_markets);
    out.Set("num_groups", result.num_groups);
  }
  if (!result.rounds.empty()) {
    util::Json rounds = util::Json::Array();
    for (const api::PlanRound& r : result.rounds) {
      util::Json round = util::Json::Object();
      round.Set("promotion", r.promotion);
      round.Set("spent", r.spent);
      round.Set("realized_sigma", r.realized_sigma);
      util::Json rs = util::Json::Array();
      for (const diffusion::Seed& s : r.seeds) rs.Append(SeedJson(s));
      round.Set("seeds", std::move(rs));
      rounds.Append(std::move(round));
    }
    out.Set("rounds", std::move(rounds));
  }
  if (include_timings) out.Set("wall_seconds", result.wall_seconds);
  return out;
}

util::Json CompareResultJson(const api::CompareResult& compare,
                             bool include_timings) {
  util::Json out = util::Json::Object();
  out.Set("dataset", compare.dataset);
  out.Set("budget", compare.budget);
  out.Set("promotions", compare.num_promotions);
  util::Json results = util::Json::Array();
  for (const api::PlanResult& r : compare.results) {
    results.Append(PlanResultJson(r, include_timings));
  }
  out.Set("results", std::move(results));
  return out;
}

util::Json SweepJson(const std::string& name,
                     const std::vector<SweepRecord>& records,
                     bool include_timings) {
  util::Json out = util::Json::Object();
  out.Set("name", name);
  out.Set("num_points", records.size());
  util::Json points = util::Json::Array();
  for (const SweepRecord& rec : records) {
    util::Json p = util::Json::Object();
    p.Set("dataset", rec.point.dataset.name);
    p.Set("scale", rec.point.dataset.scale);
    p.Set("planner", rec.point.planner);
    p.Set("budget", rec.point.budget);
    p.Set("promotions", rec.point.num_promotions);
    if (rec.point.theta >= 0) p.Set("theta", rec.point.theta);
    p.Set("threads", rec.point.num_threads);
    p.Set("backend", rec.point.backend.empty() ? "mc" : rec.point.backend);
    p.Set("adaptive", rec.point.adaptive);
    p.Set("result", PlanResultJson(rec.result, include_timings));
    points.Append(std::move(p));
  }
  out.Set("points", std::move(points));
  return out;
}

std::string SweepCsv(const std::vector<SweepRecord>& records,
                     bool include_timings) {
  std::vector<std::string> header{
      "dataset",     "scale",        "planner",
      "budget",      "promotions",   "theta",
      "threads",     "backend",      "adaptive",
      "status",
      "sigma",       "total_cost",   "num_seeds",
      "simulations", "rounds_simulated", "rounds_skipped",
      "memo_hits",   "blocks_run",   "early_stops",
      "samples_saved",
      "prep_builds", "prep_reuses",
      "faults_injected", "retries",  "fallbacks"};
  if (include_timings) {
    header.push_back("prep_millis");
    header.push_back("wall_seconds");
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back(header);
  for (const SweepRecord& rec : records) {
    const api::PlanResult& r = rec.result;
    const util::MetricsSnapshot& m = r.metrics;
    std::vector<std::string> row{
        rec.point.dataset.name,
        Fixed(rec.point.dataset.scale, 2),
        rec.point.planner,
        Fixed(rec.point.budget, 1),
        std::to_string(rec.point.num_promotions),
        rec.point.theta >= 0 ? std::to_string(rec.point.theta) : "-",
        std::to_string(rec.point.num_threads),
        rec.point.backend.empty() ? "mc" : rec.point.backend,
        rec.point.adaptive ? "yes" : "no",
        std::string(util::StatusCodeName(r.status.code())),
        Fixed(r.sigma, 4),
        Fixed(r.total_cost, 2),
        std::to_string(r.seeds.size()),
        std::to_string(m.Counter(util::metric::kEvalSimulations)),
        std::to_string(m.Counter(util::metric::kEvalRoundsSimulated)),
        std::to_string(m.Counter(util::metric::kEvalRoundsSkipped)),
        std::to_string(m.Counter(util::metric::kEvalMemoHits)),
        std::to_string(m.Counter(util::metric::kEvalBlocksRun)),
        std::to_string(m.Counter(util::metric::kEvalEarlyStops)),
        std::to_string(m.Counter(util::metric::kEvalSamplesSaved)),
        std::to_string(m.Counter(util::metric::kPrepBuilds)),
        std::to_string(m.Counter(util::metric::kPrepReuses)),
        std::to_string(m.Counter(util::metric::kFaultInjected)),
        std::to_string(m.Counter(util::metric::kFaultRetries)),
        std::to_string(m.Counter(util::metric::kFaultFallbacks))};
    if (include_timings) {
      row.push_back(Fixed(m.Number(util::metric::kPrepMillis), 3));
      row.push_back(Fixed(r.wall_seconds, 3));
    }
    rows.push_back(std::move(row));
  }

  // Pad every cell to its column width: still plain CSV to a parser that
  // trims whitespace, an aligned table to a human or a diff.
  std::vector<size_t> widths(header.size(), 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ", ";
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size(), ' ');
      }
    }
    out += '\n';
  }
  return out;
}

util::Json PrepStatsJson(const std::vector<PrepDatasetStats>& stats,
                         bool include_timings) {
  util::Json out = util::Json::Array();
  for (const PrepDatasetStats& s : stats) {
    util::Json entry = util::Json::Object();
    util::Json ds = util::Json::Object();
    ds.Set("name", s.dataset.name);
    ds.Set("scale", s.dataset.scale);
    entry.Set("dataset", std::move(ds));
    entry.Set("budget", s.budget);
    entry.Set("promotions", s.promotions);
    entry.Set("users", s.users);
    entry.Set("items", s.items);
    entry.Set("nominees", s.nominees);
    entry.Set("clusters", s.clusters);
    entry.Set("markets", s.markets);
    entry.Set("groups", s.groups);
    entry.Set("mioa_regions", s.mioa_regions);
    if (include_timings) entry.Set("prep_millis", s.prep_millis);
    out.Append(std::move(entry));
  }
  return out;
}

}  // namespace imdpp::report
