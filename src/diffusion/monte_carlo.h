// Monte-Carlo estimation of the importance-aware influence σ (Def. 1), the
// market-restricted σ_τ, the likelihood π_τ (Eq. 13), and the *expected
// state* (average adoption probabilities and meta-graph weightings) that
// the Dysim machinery consumes for r̄^C / r̄^S, AE, and DR.
//
// Because coin flips are counter-based on (sample index, event), estimates
// for different seed groups under the same engine are common-random-number
// paired: Sigma(S ∪ {s}) - Sigma(S) is a low-variance paired estimate of
// the marginal gain.
//
// Parallelism: the per-sample loop is embarrassingly parallel (every
// realization is a pure function of its sample index), so estimates are
// sharded across a util::ThreadPool — either an engine-owned lazy pool or
// a pool shared with other engines (one per CampaignSession / per
// RunDysim). The shard layout depends only on the sample count — never the
// thread count — and per-shard partial sums are reduced in shard order, so
// every estimate is bit-identical for any num_threads (including the 0 =
// serial fallback). That keeps the paired marginal-gain property exact
// under threading.
//
// Evaluation fast path (ISSUE 3): every estimate runs on per-worker
// SimScratch arenas (zero per-sample allocation), skips unseeded
// promotion rounds (exact no-ops), and exposes two reuse levers:
//   * CheckpointedEval — freezes per-sample states at promotion
//     boundaries for a base seed group, so evaluating a group that only
//     differs from the base at rounds ≥ t resumes from the round-(t-1)
//     checkpoint instead of re-simulating rounds 1..t-1. Exact, because
//     coin flips are index-hashed and never depend on history.
//   * an opt-in σ memo keyed on the exact seed vector, so sweeps that
//     revisit an identical configuration (e.g. Dysim's coordinate-ascent
//     timing refinement) pay nothing.
// Work accounting: num_rounds_simulated / num_rounds_skipped split every
// estimate's promotion-rounds into executed vs avoided (vs the naive
// T-rounds-per-sample baseline); num_memo_hits counts memoized estimates.
#ifndef IMDPP_DIFFUSION_MONTE_CARLO_H_
#define IMDPP_DIFFUSION_MONTE_CARLO_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "diffusion/campaign_simulator.h"
#include "diffusion/sigma_backend.h"
#include "util/cancel.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace imdpp::diffusion {

/// The "mc" SigmaBackend: the accuracy reference every other backend is
/// gated against (tests/backend_test.cc).
class MonteCarloEngine : public SigmaBackend {
 public:
  /// `num_samples` realizations per estimate (M in the paper, Sec. VI-A).
  /// `num_threads` is the total executor count for the sample loop:
  /// util::kAutoThreads = hardware concurrency, 0 or 1 = serial. Results
  /// are bit-identical for every value (see file comment). `shared_pool`
  /// (optional) backs the sample loop instead of an engine-owned lazy
  /// pool, so several engines can share one set of workers.
  /// `cancel` (optional) is the run's cooperative cancellation/deadline
  /// token (ISSUE 8): every estimate checks it per sample and
  /// short-circuits once it fires. Null = the engine creates a private
  /// token, so fault propagation (the eval.sigma point latches its error
  /// onto the token) always has a channel.
  MonteCarloEngine(const Problem& problem, const CampaignConfig& config,
                   int num_samples, int num_threads = util::kAutoThreads,
                   std::shared_ptr<util::ThreadPool> shared_pool = nullptr,
                   std::shared_ptr<const util::CancelToken> cancel = nullptr);

  std::string_view name() const override { return "mc"; }
  std::string_view description() const override {
    return "forward Monte-Carlo re-simulation of the dynamic-perception "
           "diffusion (the accuracy reference)";
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.resimulates_dynamics = true;
    caps.market_likelihood_pi = true;
    caps.prefix_checkpointing = true;
    caps.initial_state_override = true;
    caps.select_best = true;
    return caps;
  }

  /// Kept as a nested alias through the ISSUE 7 hoist to diffusion scope.
  using MarketEval = ::imdpp::diffusion::MarketEval;

  /// σ̂(S): mean importance-weighted adoptions.
  /// Like every estimate entry point, takes the engine mutex for the whole
  /// call: concurrent estimates on one engine serialize (the memos, work
  /// counters, mask cache and lazy pool are all IMDPP_GUARDED_BY(mu_)),
  /// while the sample loop inside still fans out over the thread pool.
  double Sigma(const SeedGroup& seeds) const override IMDPP_EXCLUDES(mu_);

  /// Joint estimate of σ, σ_τ and π_τ for the market `users` in one pass.
  /// The |V| market mask is cached per user list, so repeated evaluations
  /// of the same market (TDSI's inner loop) skip the rebuild.
  MarketEval EvalMarket(const SeedGroup& seeds,
                        const std::vector<UserId>& users) const override
      IMDPP_EXCLUDES(mu_);

  /// Expected end-of-campaign state under `seeds`.
  ExpectedState Expected(const SeedGroup& seeds) const override
      IMDPP_EXCLUDES(mu_);

  /// A CheckpointedEval over this engine: promotion-round prefix reuse.
  std::unique_ptr<ScheduleEval> MakeScheduleEval(
      SeedGroup base, std::vector<UserId> market = {}) const override;

  /// Greedy σ-scored argmax (ISSUE 10). Fixed mode (the default) runs the
  /// base-class reference loop; options.adaptive.enabled races candidates
  /// with empirical-Bernstein stopping on paired per-sample values, then
  /// re-evaluates the winner at the full sample count through the normal
  /// Sigma path (memo-aware, histogram-recorded) so downstream arithmetic
  /// sees exactly the bits a direct call would. Supports SetInitialStates
  /// (each raced sample simulates from scratch). Stopping decisions
  /// happen only at block boundaries over fixed-order reductions, so the
  /// adaptive path is bit-identical across thread counts too.
  SelectBestResult SelectBest(const std::vector<SelectCandidate>& candidates,
                              const SelectOptions& options) const override
      IMDPP_EXCLUDES(mu_);

  /// Starts every realization from `states` instead of the problem's
  /// initial state (adaptive IM). Pass nullptr to reset. The pointee must
  /// outlive subsequent estimate calls. Clears (and, while set, disables)
  /// the σ memo: memoized values assume the problem's initial state.
  void SetInitialStates(const std::vector<pin::UserState>* states)
      IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    initial_states_ = states;
    sigma_memo_.clear();
    market_memo_.clear();
    market_memo_entries_ = 0;
  }

  /// Opts in to memoizing estimates by exact input (identical input =>
  /// identical estimate, so a hit returns the previously computed bits
  /// without simulating): Sigma() by seed vector, EvalMarket() by
  /// (seed vector, market user list). Off by default to keep the
  /// simulation-counter semantics of plain engines.
  void EnableSigmaMemo(size_t max_entries = 1 << 14) override
      IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    sigma_memo_capacity_ = max_entries;
  }

  const CampaignSimulator& simulator() const override { return sim_; }
  int num_samples() const override { return num_samples_; }
  /// Resolved executor count (>= 0; 0 and 1 both mean serial).
  int num_threads() const override { return num_threads_; }

  /// Total simulator invocations since construction (bumped once per
  /// estimate, under the engine mutex like every other work counter).
  /// Memoized estimates do not simulate and are not charged.
  int64_t num_simulations() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return num_simulations_;
  }
  /// Promotion-rounds actually executed (summed over samples), including
  /// checkpoint building.
  int64_t num_rounds_simulated() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return num_rounds_simulated_;
  }
  /// Promotion-rounds a naive evaluation (T rounds per sample, no reuse)
  /// would have executed on top: unseeded-round skips, checkpoint-prefix
  /// resumes, and memoized estimates.
  int64_t num_rounds_skipped() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return num_rounds_skipped_;
  }
  /// Sigma() calls answered from the memo.
  int64_t num_memo_hits() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return num_memo_hits_;
  }

  /// Adaptive-selection counters (ISSUE 10): candidate-blocks raced,
  /// candidates eliminated before the sample cap, and realizations never
  /// simulated because their comparison had already resolved. All zero
  /// on fixed-count runs.
  int64_t num_blocks_run() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return blocks_run_;
  }
  int64_t num_early_stops() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return early_stops_;
  }
  int64_t num_samples_saved() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return samples_saved_;
  }

  /// The token estimates check; never null (see the constructor).
  const util::CancelToken* cancel_token() const override {
    return cancel_.get();
  }

 private:
  friend class CheckpointedEval;

  /// Estimate-entry robustness gate: counts an eval.sigma fault-point hit
  /// (latching any injected error onto the token) and then checks the
  /// token. False = the estimate must return immediately with a
  /// don't-care value — the caller reads the real error off
  /// cancel_token(). Runs before memo lookups so fault schedules count
  /// every estimate entry, memoized or not.
  bool BeginEstimate() const;
  /// Post-shard-loop gate: true = the token fired mid-estimate, so the
  /// folded value is garbage — skip ChargeEstimate and the memo store
  /// (a partial estimate must never poison the memo).
  bool Cancelled() const { return cancel_->Fired(); }

  /// Number of per-estimate shards: min(num_samples, kMaxShards). A
  /// function of the sample count only, so the reduction tree is fixed.
  int NumShards() const;
  /// First sample index of `shard` (shard == NumShards() -> num_samples).
  int ShardBegin(int shard) const;
  /// Whether RunShards will use a pool (purely a scheduling question —
  /// results never depend on it). Serial below kMinParallelSamples: pool
  /// dispatch is not worth it for a handful of realizations.
  bool RunsParallel() const;
  /// Runs fn(shard) for every shard — on the pool when parallel, inline
  /// otherwise. Pure scheduling; callers do their own work accounting.
  /// Holds the engine mutex across the fan-out: tasks never touch guarded
  /// engine state (they write per-shard slots), and no task path
  /// re-enters the engine, so this cannot deadlock.
  void RunShards(const std::function<void(int)>& fn) const
      IMDPP_REQUIRES(mu_);

  bool MemoEnabled() const IMDPP_REQUIRES(mu_) {
    return sigma_memo_capacity_ > 0 && initial_states_ == nullptr;
  }
  /// Memo lookup; on hit books the skipped work and returns true.
  bool MemoLookup(const SeedGroup& seeds, double* sigma) const
      IMDPP_REQUIRES(mu_);
  void MemoStore(const SeedGroup& seeds, double sigma) const
      IMDPP_REQUIRES(mu_);
  /// Same, for EvalMarket keyed on (seed vector, market user list).
  bool MarketMemoLookup(const SeedGroup& seeds,
                        const std::vector<UserId>& users,
                        MarketEval* eval) const IMDPP_REQUIRES(mu_);
  void MarketMemoStore(const SeedGroup& seeds,
                       const std::vector<UserId>& users,
                       const MarketEval& eval) const IMDPP_REQUIRES(mu_);
  /// Shared core of Expected() and CheckpointedEval::Expected(): runs
  /// promotions [t_begin, t_end(sched)] per sample on top of `start`
  /// (per-sample checkpoints; nullptr = the initial state) and averages
  /// the final states. The accumulation shape (per-shard raw float sums
  /// folded in shard order, scaled once) is identical on both paths, so
  /// resuming from checkpoints is bit-identical to a from-scratch run.
  ExpectedState ExpectedFrom(const SeedSchedule& sched, int t_begin,
                             const std::vector<SampleCheckpoint>* start) const
      IMDPP_REQUIRES(mu_);
  /// |V| market mask for `users`, cached per user list. The returned
  /// pointer is read by the sample loop of the estimate that built it —
  /// which still holds mu_, so no other estimate can rebuild it mid-use.
  const std::vector<uint8_t>* CachedMask(
      const std::vector<UserId>& users) const IMDPP_REQUIRES(mu_);
  /// Books the per-estimate work split for one estimate that executed
  /// `rounds_run` rounds per sample.
  void ChargeEstimate(int rounds_run) const IMDPP_REQUIRES(mu_);

  /// The racing driver shared by the engine-level and checkpointed
  /// SelectBest: advances every alive candidate block by block through
  /// `eval_block(candidate, begin, end, race)` (which fills per-sample
  /// slots and returns the rounds executed per sample, or −1 when the
  /// cancel token fired), charges each candidate-block, and on
  /// completion books the whole-sample skips plus the adaptive
  /// counters. winner −1 = cancelled mid-race (nothing terminal booked;
  /// partial blocks stay charged, mirroring interrupted estimates).
  struct RaceOutcome {
    int winner = -1;
    int64_t samples = 0;  ///< realizations actually simulated
  };
  RaceOutcome RaceSelect(
      int num_candidates, const AdaptiveEvalConfig& config,
      const std::function<int(int, int, int, AdaptiveEval&)>& eval_block)
      const IMDPP_REQUIRES(mu_);

  CampaignSimulator sim_;
  int num_samples_;
  int num_threads_;
  /// Shared workers (optional); otherwise lazily created on the first
  /// parallel estimate (num_threads_ - 1 workers; the calling thread is
  /// the remaining executor).
  std::shared_ptr<util::ThreadPool> shared_pool_;
  /// Never null; see the constructor. Not guarded: the token has its own
  /// synchronization and shard tasks read it without the engine mutex.
  std::shared_ptr<const util::CancelToken> cancel_;

  /// Guards every piece of state an estimate mutates: memos, work
  /// counters, the mask cache, the lazily created pool and the
  /// initial-state override. Held for whole estimates (see Sigma), so
  /// the engine is safe to share across threads at estimate granularity.
  mutable util::Mutex mu_;
  const std::vector<pin::UserState>* initial_states_ IMDPP_GUARDED_BY(mu_) =
      nullptr;
  mutable std::unique_ptr<util::ThreadPool> pool_ IMDPP_GUARDED_BY(mu_);
  mutable int64_t num_simulations_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t num_rounds_simulated_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t num_rounds_skipped_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t num_memo_hits_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t blocks_run_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t early_stops_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t samples_saved_ IMDPP_GUARDED_BY(mu_) = 0;
  /// σ memo keyed on the exact seed vector (0 capacity = disabled), and
  /// the EvalMarket memo keyed on (market users, seed vector) behind the
  /// same opt-in flag. Nested maps so each market's user list is stored
  /// once and lookups compare in place — no per-call key construction on
  /// the TDSI hot path.
  mutable std::map<SeedGroup, double> sigma_memo_ IMDPP_GUARDED_BY(mu_);
  mutable std::map<std::vector<UserId>, std::map<SeedGroup, MarketEval>>
      market_memo_ IMDPP_GUARDED_BY(mu_);
  mutable size_t market_memo_entries_ IMDPP_GUARDED_BY(mu_) = 0;
  size_t sigma_memo_capacity_ IMDPP_GUARDED_BY(mu_) = 0;
  /// EvalMarket mask cache.
  mutable std::vector<UserId> mask_users_ IMDPP_GUARDED_BY(mu_);
  mutable std::vector<uint8_t> mask_ IMDPP_GUARDED_BY(mu_);
  mutable bool mask_valid_ IMDPP_GUARDED_BY(mu_) = false;
};

/// Promotion-round checkpoint reuse over one engine (ISSUE 3 tentpole).
///
/// Holds a *base* seed group and lazily freezes each realization's state
/// at the promotion boundaries of that base. Evaluating a `group` then
/// costs only the rounds from its first divergence from the base onward:
/// coin flips are pure hashes of (sample, round, step, edge, item), so the
/// boundary state is a function of the earlier rounds' seeds alone, and
/// resuming replays the exact operation sequence of a from-scratch run —
/// results are bit-identical, verified by tests/determinism_test.cc.
///
/// Typical shapes it accelerates (base grows, candidates differ late):
///   * TDSI PickBest: base = current group, candidates at rounds t̂/t̂+1;
///   * greedy timing placement: base = placed, candidate at round t;
///   * coordinate-ascent refinement: base = schedule minus the moving
///     seed, candidates = that seed at each round.
/// Rebase() adopts a new base and keeps every checkpoint before the first
/// round where the old and new bases diverge, so the reuse compounds
/// across iterations of those loops.
///
/// Requires the engine to evaluate from the problem's initial state (no
/// SetInitialStates). All estimates run on the engine's sharded sample
/// loop and are charged to its work counters.
class CheckpointedEval final : public ScheduleEval {
 public:
  /// `market` fixes the user list for EvalMarket() (empty = Sigma only);
  /// checkpoints embed the market's σ_τ partials, so one CheckpointedEval
  /// serves exactly one market.
  CheckpointedEval(const MonteCarloEngine& engine, SeedGroup base,
                   std::vector<UserId> market = {});

  /// σ̂(group). `group` may differ from the base at any rounds; earlier
  /// shared rounds are resumed from checkpoints. Consults the engine's σ
  /// memo when enabled. Takes the engine mutex like a direct estimate;
  /// the CheckpointedEval itself is single-owner (not thread-safe).
  double Sigma(const SeedGroup& group) override IMDPP_EXCLUDES(engine_.mu_);

  /// Joint σ/σ_τ/π estimate of `group` for the fixed market. Consults the
  /// engine's (group, market) memo when enabled.
  MarketEval EvalMarket(const SeedGroup& group) override
      IMDPP_EXCLUDES(engine_.mu_);

  /// Expected end-of-campaign state under `group`, resuming shared prefix
  /// rounds from checkpoints — bit-identical to engine.Expected(group).
  /// The shape DRE wants: it re-evaluates the expected state per item
  /// under a growing seed group, so each call extends the base's
  /// checkpoints once instead of re-simulating every earlier round.
  ExpectedState Expected(const SeedGroup& group) override
      IMDPP_EXCLUDES(engine_.mu_);

  /// Adopts `base` as the new base group, keeping the checkpoints of every
  /// round before the first divergence from the previous base.
  void Rebase(SeedGroup base) override;

  const SeedGroup& base() const override { return base_; }

  /// Greedy argmax over `candidates` against the shared base (ISSUE 10).
  /// Fixed mode runs the base-class reference loop (through this
  /// evaluator's checkpointed Sigma/EvalMarket); adaptive mode builds
  /// the shared checkpoint prefix once, races candidates block by block
  /// resuming each from its own divergence boundary, and re-evaluates
  /// the winner at the full sample count through the normal memo-aware
  /// path. See MonteCarloEngine::SelectBest for the determinism and
  /// cancellation contract.
  SelectBestResult SelectBest(const std::vector<SelectCandidate>& candidates,
                              const SelectOptions& options) override
      IMDPP_EXCLUDES(engine_.mu_);

 private:
  struct Outcome {
    double sigma = 0.0;
    double sigma_market = 0.0;
    double pi = 0.0;
  };
  /// First round where the two schedules' buckets differ (T+1 if none).
  static int FirstDivergence(const SeedSchedule& a, const SeedSchedule& b,
                             int t_max);
  /// Simulates base rounds up to `upto` (capped at the base's last active
  /// round), freezing every boundary along the way.
  void EnsureCheckpoints(int upto) IMDPP_REQUIRES(engine_.mu_);
  /// Same, for the aligned lattice: base rounds simulated with
  /// time-aligned (attempt-ordinal) coins, checkpoints carrying the
  /// attempt state. Races resume from these — never from cp_, whose
  /// round-keyed prefix coins would poison the paired differences.
  /// Grown lazily as a rectangle of `rounds_upto` x `samples_upto`
  /// (races touch block_end samples, not all of them), so a race that
  /// stops after one block never pays for prefixes it didn't use.
  void EnsureAlignedCheckpoints(int rounds_upto, int samples_upto)
      IMDPP_REQUIRES(engine_.mu_);
  Outcome Eval(const SeedGroup& group, bool want_pi)
      IMDPP_REQUIRES(engine_.mu_);

  const MonteCarloEngine& engine_;
  SeedGroup base_;
  SeedSchedule base_sched_;
  std::vector<UserId> market_;
  std::vector<uint8_t> mask_;  ///< prebuilt; empty when market_ is empty
  /// cp_[k-1][s] = realization s frozen after base rounds 1..k.
  std::vector<std::vector<SampleCheckpoint>> cp_;
  int rounds_ready_ = 0;
  /// Aligned-coin twin of cp_, built lazily by adaptive races only;
  /// valid for rounds < aligned_rounds_ready_, samples <
  /// aligned_samples_ready_ (rows are allocated full-width up front).
  std::vector<std::vector<SampleCheckpoint>> aligned_cp_;
  int aligned_rounds_ready_ = 0;
  int aligned_samples_ready_ = 0;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_MONTE_CARLO_H_
