// Monte-Carlo estimation of the importance-aware influence σ (Def. 1), the
// market-restricted σ_τ, the likelihood π_τ (Eq. 13), and the *expected
// state* (average adoption probabilities and meta-graph weightings) that
// the Dysim machinery consumes for r̄^C / r̄^S, AE, and DR.
//
// Because coin flips are counter-based on (sample index, event), estimates
// for different seed groups under the same engine are common-random-number
// paired: Sigma(S ∪ {s}) - Sigma(S) is a low-variance paired estimate of
// the marginal gain.
//
// Parallelism: the per-sample loop is embarrassingly parallel (every
// realization is a pure function of its sample index), so estimates are
// sharded across a util::ThreadPool. The shard layout depends only on the
// sample count — never the thread count — and per-shard partial sums are
// reduced in shard order, so every estimate is bit-identical for any
// num_threads (including the 0 = serial fallback). That keeps the paired
// marginal-gain property exact under threading.
#ifndef IMDPP_DIFFUSION_MONTE_CARLO_H_
#define IMDPP_DIFFUSION_MONTE_CARLO_H_

#include <functional>
#include <memory>
#include <vector>

#include "diffusion/campaign_simulator.h"
#include "util/thread_pool.h"

namespace imdpp::diffusion {

/// Sample-averaged end-of-campaign state.
class ExpectedState {
 public:
  ExpectedState(int num_users, int num_items, int num_metas);

  double AdoptionProb(UserId u, ItemId x) const {
    return adoption_prob_[static_cast<size_t>(u) * num_items_ + x];
  }
  std::span<const float> AvgWmeta(UserId u) const {
    return {avg_wmeta_.data() + static_cast<size_t>(u) * num_metas_,
            static_cast<size_t>(num_metas_)};
  }

  /// Average complementary relevance r̄^C_{x,y} over `users` (all users if
  /// empty), evaluated at each user's expected weightings.
  double AvgRelC(const pin::PersonalItemNetwork& pin,
                 const std::vector<UserId>& users, ItemId x, ItemId y) const;
  double AvgRelS(const pin::PersonalItemNetwork& pin,
                 const std::vector<UserId>& users, ItemId x, ItemId y) const;

  int num_users() const { return num_users_; }

  /// Expected state before any promotion: zero adoptions, initial Wmeta.
  static ExpectedState InitialOf(const Problem& problem);

 private:
  friend class MonteCarloEngine;
  double AvgRel(const pin::PersonalItemNetwork& pin,
                const std::vector<UserId>& users, ItemId x, ItemId y,
                bool complementary) const;

  int num_users_;
  int num_items_;
  int num_metas_;
  std::vector<float> adoption_prob_;  ///< |V| x |I|
  std::vector<float> avg_wmeta_;      ///< |V| x M
};

class MonteCarloEngine {
 public:
  /// `num_samples` realizations per estimate (M in the paper, Sec. VI-A).
  /// `num_threads` is the total executor count for the sample loop:
  /// util::kAutoThreads = hardware concurrency, 0 or 1 = serial. Results
  /// are bit-identical for every value (see file comment).
  MonteCarloEngine(const Problem& problem, const CampaignConfig& config,
                   int num_samples, int num_threads = util::kAutoThreads);

  /// σ̂(S): mean importance-weighted adoptions.
  double Sigma(const SeedGroup& seeds) const;

  struct MarketEval {
    double sigma = 0.0;         ///< campaign-wide σ̂
    double sigma_market = 0.0;  ///< σ̂ restricted to the market's users
    double pi = 0.0;            ///< likelihood π̂_τ (Eq. 13)
  };

  /// Joint estimate of σ, σ_τ and π_τ for the market `users` in one pass.
  MarketEval EvalMarket(const SeedGroup& seeds,
                        const std::vector<UserId>& users) const;

  /// Expected end-of-campaign state under `seeds`.
  ExpectedState Expected(const SeedGroup& seeds) const;

  /// Starts every realization from `states` instead of the problem's
  /// initial state (adaptive IM). Pass nullptr to reset. The pointee must
  /// outlive subsequent estimate calls.
  void SetInitialStates(const std::vector<pin::UserState>* states) {
    initial_states_ = states;
  }

  const CampaignSimulator& simulator() const { return sim_; }
  int num_samples() const { return num_samples_; }
  /// Resolved executor count (>= 0; 0 and 1 both mean serial).
  int num_threads() const { return num_threads_; }

  /// Total simulator invocations since construction (mutable counter used
  /// by the benchmarks to report work; bumped once per estimate on the
  /// calling thread, so it stays race-free under the parallel loop).
  int64_t num_simulations() const { return num_simulations_; }

 private:
  /// Number of per-estimate shards: min(num_samples, kMaxShards). A
  /// function of the sample count only, so the reduction tree is fixed.
  int NumShards() const;
  /// First sample index of `shard` (shard == NumShards() -> num_samples).
  int ShardBegin(int shard) const;
  /// Whether RunShards will use the pool (purely a scheduling question —
  /// results never depend on it).
  bool RunsParallel() const;
  /// Runs fn(shard) for every shard — on the pool when num_threads_ > 1,
  /// inline otherwise — and charges num_samples_ simulations.
  void RunShards(const std::function<void(int)>& fn) const;

  CampaignSimulator sim_;
  int num_samples_;
  int num_threads_;
  const std::vector<pin::UserState>* initial_states_ = nullptr;
  /// Lazily created on the first parallel estimate (num_threads_ - 1
  /// workers; the calling thread is the remaining executor).
  mutable std::unique_ptr<util::ThreadPool> pool_;
  mutable int64_t num_simulations_ = 0;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_MONTE_CARLO_H_
