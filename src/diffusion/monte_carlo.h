// Monte-Carlo estimation of the importance-aware influence σ (Def. 1), the
// market-restricted σ_τ, the likelihood π_τ (Eq. 13), and the *expected
// state* (average adoption probabilities and meta-graph weightings) that
// the Dysim machinery consumes for r̄^C / r̄^S, AE, and DR.
//
// Because coin flips are counter-based on (sample index, event), estimates
// for different seed groups under the same engine are common-random-number
// paired: Sigma(S ∪ {s}) - Sigma(S) is a low-variance paired estimate of
// the marginal gain.
#ifndef IMDPP_DIFFUSION_MONTE_CARLO_H_
#define IMDPP_DIFFUSION_MONTE_CARLO_H_

#include <vector>

#include "diffusion/campaign_simulator.h"

namespace imdpp::diffusion {

/// Sample-averaged end-of-campaign state.
class ExpectedState {
 public:
  ExpectedState(int num_users, int num_items, int num_metas);

  double AdoptionProb(UserId u, ItemId x) const {
    return adoption_prob_[static_cast<size_t>(u) * num_items_ + x];
  }
  std::span<const float> AvgWmeta(UserId u) const {
    return {avg_wmeta_.data() + static_cast<size_t>(u) * num_metas_,
            static_cast<size_t>(num_metas_)};
  }

  /// Average complementary relevance r̄^C_{x,y} over `users` (all users if
  /// empty), evaluated at each user's expected weightings.
  double AvgRelC(const pin::PersonalItemNetwork& pin,
                 const std::vector<UserId>& users, ItemId x, ItemId y) const;
  double AvgRelS(const pin::PersonalItemNetwork& pin,
                 const std::vector<UserId>& users, ItemId x, ItemId y) const;

  int num_users() const { return num_users_; }

  /// Expected state before any promotion: zero adoptions, initial Wmeta.
  static ExpectedState InitialOf(const Problem& problem);

 private:
  friend class MonteCarloEngine;
  double AvgRel(const pin::PersonalItemNetwork& pin,
                const std::vector<UserId>& users, ItemId x, ItemId y,
                bool complementary) const;

  int num_users_;
  int num_items_;
  int num_metas_;
  std::vector<float> adoption_prob_;  ///< |V| x |I|
  std::vector<float> avg_wmeta_;      ///< |V| x M
};

class MonteCarloEngine {
 public:
  /// `num_samples` realizations per estimate (M in the paper, Sec. VI-A).
  MonteCarloEngine(const Problem& problem, const CampaignConfig& config,
                   int num_samples);

  /// σ̂(S): mean importance-weighted adoptions.
  double Sigma(const SeedGroup& seeds) const;

  struct MarketEval {
    double sigma = 0.0;         ///< campaign-wide σ̂
    double sigma_market = 0.0;  ///< σ̂ restricted to the market's users
    double pi = 0.0;            ///< likelihood π̂_τ (Eq. 13)
  };

  /// Joint estimate of σ, σ_τ and π_τ for the market `users` in one pass.
  MarketEval EvalMarket(const SeedGroup& seeds,
                        const std::vector<UserId>& users) const;

  /// Expected end-of-campaign state under `seeds`.
  ExpectedState Expected(const SeedGroup& seeds) const;

  /// Starts every realization from `states` instead of the problem's
  /// initial state (adaptive IM). Pass nullptr to reset. The pointee must
  /// outlive subsequent estimate calls.
  void SetInitialStates(const std::vector<pin::UserState>* states) {
    initial_states_ = states;
  }

  const CampaignSimulator& simulator() const { return sim_; }
  int num_samples() const { return num_samples_; }

  /// Total simulator invocations since construction (mutable counter used
  /// by the benchmarks to report work; not thread-safe by design).
  int64_t num_simulations() const { return num_simulations_; }

 private:
  CampaignSimulator sim_;
  int num_samples_;
  const std::vector<pin::UserState>* initial_states_ = nullptr;
  mutable int64_t num_simulations_ = 0;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_MONTE_CARLO_H_
