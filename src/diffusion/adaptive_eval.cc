#include "diffusion/adaptive_eval.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace imdpp::diffusion {

AdaptiveEval::AdaptiveEval(int num_candidates, int num_samples,
                           const AdaptiveEvalConfig& config)
    : num_candidates_(num_candidates),
      num_samples_(num_samples),
      config_(config),
      values_(static_cast<size_t>(num_candidates)),
      alive_(static_cast<size_t>(num_candidates), 1),
      used_(static_cast<size_t>(num_candidates), 0),
      mean_(static_cast<size_t>(num_candidates), 0.0),
      num_alive_(num_candidates) {
  IMDPP_CHECK_GT(num_candidates, 0);
  IMDPP_CHECK_GT(num_samples, 0);
  // Defensive clamps: config validation happens at load time; a hostile
  // value here must degrade to the fixed count, never misbehave.
  config_.delta = std::clamp(config_.delta, 1e-12, 1.0);
  config_.block_samples = std::max(1, config_.block_samples);
  config_.min_samples = std::max(1, config_.min_samples);
  race_cap_ = config_.max_samples > 0
                  ? std::min(num_samples_, config_.max_samples)
                  : num_samples_;
  for (auto& v : values_) v.resize(static_cast<size_t>(num_samples), 0.0);
  block_end_ = std::min(race_cap_, config_.min_samples);
}

bool AdaptiveEval::done() const {
  return num_alive_ <= 1 || block_begin_ >= race_cap_;
}

double AdaptiveEval::Radius(double variance, double range, int n,
                            double delta) {
  if (n < 2) return std::numeric_limits<double>::infinity();
  const double log_term = std::log(3.0 / delta);
  return std::sqrt(2.0 * std::max(variance, 0.0) * log_term / n) +
         3.0 * range * log_term / n;
}

void AdaptiveEval::EndBlock() {
  const int n = block_end_;
  blocks_run_ += num_alive_;
  // Running means, reduced in fixed sample order (the determinism
  // contract: every decision below is a pure function of the slots).
  for (int i = 0; i < num_candidates_; ++i) {
    if (alive_[static_cast<size_t>(i)] == 0) continue;
    double total = 0.0;
    for (int s = 0; s < n; ++s) {
      total += values_[static_cast<size_t>(i)][static_cast<size_t>(s)];
    }
    mean_[static_cast<size_t>(i)] = total / n;
    used_[static_cast<size_t>(i)] = n;
  }
  // Leader: first index among alive with the strictly largest mean — the
  // same preference order as the fixed loops' strict `>` updates, so an
  // all-ties race resolves to the fixed path's winner.
  int leader = -1;
  for (int i = 0; i < num_candidates_; ++i) {
    if (alive_[static_cast<size_t>(i)] == 0) continue;
    if (leader < 0 || mean_[static_cast<size_t>(i)] > mean_[leader]) {
      leader = i;
    }
  }
  // Paired eliminations (skipped at the cap — the race is over anyway,
  // and a candidate that survived to the cap was not stopped early).
  if (n < race_cap_) {
    const double per_test_delta = config_.delta / num_candidates_;
    const std::vector<double>& lead =
        values_[static_cast<size_t>(leader)];
    for (int i = 0; i < num_candidates_; ++i) {
      if (i == leader || alive_[static_cast<size_t>(i)] == 0) continue;
      const std::vector<double>& v = values_[static_cast<size_t>(i)];
      // d_s = v_i[s] − v_L[s]: mean, biased variance, empirical range.
      double mean_d = 0.0;
      for (int s = 0; s < n; ++s) mean_d += v[s] - lead[s];
      mean_d /= n;
      double var_d = 0.0;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (int s = 0; s < n; ++s) {
        const double d = v[s] - lead[s];
        var_d += (d - mean_d) * (d - mean_d);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
      var_d /= n;
      if (mean_d + Radius(var_d, hi - lo, n, per_test_delta) <= 0.0) {
        alive_[static_cast<size_t>(i)] = 0;
        --num_alive_;
        ++early_stops_;
      }
    }
  }
  block_begin_ = n;
  block_end_ = std::min(race_cap_, n + config_.block_samples);
}

int AdaptiveEval::Winner() const {
  int winner = -1;
  for (int i = 0; i < num_candidates_; ++i) {
    if (alive_[static_cast<size_t>(i)] == 0) continue;
    if (winner < 0 || mean_[static_cast<size_t>(i)] > mean_[winner]) {
      winner = i;
    }
  }
  return winner;
}

int64_t AdaptiveEval::samples_saved() const {
  int64_t saved = 0;
  for (int i = 0; i < num_candidates_; ++i) {
    saved += num_samples_ - used_[static_cast<size_t>(i)];
  }
  return saved;
}

}  // namespace imdpp::diffusion
