#include "diffusion/monte_carlo.h"

#include <algorithm>
#include <utility>

#include "util/fault_injection.h"
#include "util/trace.h"

namespace imdpp::diffusion {

namespace {

/// Shard-count cap. Enough shards to load-balance any plausible core
/// count, few enough that per-shard partial state (one ExpectedState in
/// Expected()) stays small. Must depend on nothing but this constant and
/// the sample count: the shard layout IS the reduction tree, and a fixed
/// tree is what makes results bit-identical across thread counts.
constexpr int kMaxShards = 32;

/// Serial cutoff (ISSUE 3): below this many realizations per estimate the
/// pool dispatch overhead is not worth paying; run inline. Scheduling
/// only — the shard layout and therefore the results are unchanged.
constexpr int kMinParallelSamples = 8;

/// Per-worker simulation arena. Thread-local rather than engine-owned so
/// every engine sharing a pool (or a caller thread hopping between
/// engines) reuses one arena per thread; SimScratch::Bind reshapes only
/// when the problem dimensions actually change.
SimScratch& LocalScratch() { return ThreadLocalSimScratch(); }

}  // namespace

ExpectedState::ExpectedState(int num_users, int num_items, int num_metas)
    : num_users_(num_users),
      num_items_(num_items),
      num_metas_(num_metas),
      adoption_prob_(static_cast<size_t>(num_users) * num_items, 0.0f),
      avg_wmeta_(static_cast<size_t>(num_users) * num_metas, 0.0f) {}

double ExpectedState::AvgRel(const pin::PersonalItemNetwork& pin,
                             const std::vector<UserId>& users, ItemId x,
                             ItemId y, bool complementary) const {
  double s = 0.0;
  int n = 0;
  auto add = [&](UserId u) {
    std::span<const float> w = AvgWmeta(u);
    s += complementary ? pin.RelC(w, x, y) : pin.RelS(w, x, y);
    ++n;
  };
  if (users.empty()) {
    for (UserId u = 0; u < num_users_; ++u) add(u);
  } else {
    for (UserId u : users) add(u);
  }
  return n == 0 ? 0.0 : s / n;
}

double ExpectedState::AvgRelC(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/true);
}

double ExpectedState::AvgRelS(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/false);
}

ExpectedState ExpectedState::InitialOf(const Problem& problem) {
  ExpectedState es(problem.NumUsers(), problem.NumItems(), problem.NumMetas());
  es.avg_wmeta_ = problem.wmeta0;
  return es;
}

MonteCarloEngine::MonteCarloEngine(
    const Problem& problem, const CampaignConfig& config, int num_samples,
    int num_threads, std::shared_ptr<util::ThreadPool> shared_pool,
    std::shared_ptr<const util::CancelToken> cancel)
    : sim_(problem, config),
      num_samples_(num_samples),
      num_threads_(util::ResolveNumThreads(num_threads)),
      shared_pool_(std::move(shared_pool)),
      cancel_(std::move(cancel)) {
  IMDPP_CHECK_GT(num_samples, 0);
  // Keep the never-null invariant: fault propagation and the shard-loop
  // checks always have a token, whether or not the caller provided one.
  if (cancel_ == nullptr) cancel_ = std::make_shared<util::CancelToken>();
}

bool MonteCarloEngine::BeginEstimate() const {
  util::Status fault = util::FaultInjector::Global().Hit("eval.sigma");
  if (!fault.ok()) cancel_->Cancel(std::move(fault));
  return cancel_->Check().ok();
}

int MonteCarloEngine::NumShards() const {
  return std::min(num_samples_, kMaxShards);
}

int MonteCarloEngine::ShardBegin(int shard) const {
  return static_cast<int>(static_cast<int64_t>(num_samples_) * shard /
                          NumShards());
}

bool MonteCarloEngine::RunsParallel() const {
  return num_threads_ > 1 && NumShards() > 1 &&
         num_samples_ >= kMinParallelSamples;
}

void MonteCarloEngine::RunShards(const std::function<void(int)>& fn) const {
  const int num_shards = NumShards();
  if (RunsParallel()) {
    util::ThreadPool* pool = shared_pool_.get();
    if (pool == nullptr) {
      if (pool_ == nullptr) {
        // More workers than shards could never claim a task, so cap the
        // spawn count; the shard layout (and thus the result) is unchanged.
        pool_ = std::make_unique<util::ThreadPool>(
            std::min(num_threads_, num_shards) - 1);
      }
      pool = pool_.get();
    }
    pool->ParallelFor(num_shards, fn);
  } else {
    for (int shard = 0; shard < num_shards; ++shard) fn(shard);
  }
}

bool MonteCarloEngine::MemoLookup(const SeedGroup& seeds,
                                  double* sigma) const {
  if (!MemoEnabled()) return false;
  auto it = sigma_memo_.find(seeds);
  if (it == sigma_memo_.end()) return false;
  ++num_memo_hits_;
  num_rounds_skipped_ += static_cast<int64_t>(num_samples_) *
                         sim_.problem().num_promotions;
  *sigma = it->second;
  return true;
}

void MonteCarloEngine::MemoStore(const SeedGroup& seeds, double sigma) const {
  if (!MemoEnabled() || sigma_memo_.size() >= sigma_memo_capacity_) return;
  sigma_memo_.emplace(seeds, sigma);
}

bool MonteCarloEngine::MarketMemoLookup(const SeedGroup& seeds,
                                        const std::vector<UserId>& users,
                                        MarketEval* eval) const {
  if (!MemoEnabled()) return false;
  auto market_it = market_memo_.find(users);
  if (market_it == market_memo_.end()) return false;
  auto it = market_it->second.find(seeds);
  if (it == market_it->second.end()) return false;
  ++num_memo_hits_;
  num_rounds_skipped_ += static_cast<int64_t>(num_samples_) *
                         sim_.problem().num_promotions;
  *eval = it->second;
  return true;
}

void MonteCarloEngine::MarketMemoStore(const SeedGroup& seeds,
                                       const std::vector<UserId>& users,
                                       const MarketEval& eval) const {
  if (!MemoEnabled() || market_memo_entries_ >= sigma_memo_capacity_) return;
  if (market_memo_[users].emplace(seeds, eval).second) {
    ++market_memo_entries_;
  }
}

const std::vector<uint8_t>* MonteCarloEngine::CachedMask(
    const std::vector<UserId>& users) const {
  if (!mask_valid_ || users != mask_users_) {
    mask_users_ = users;
    mask_.assign(static_cast<size_t>(sim_.problem().NumUsers()), 0);
    for (UserId u : users) mask_[static_cast<size_t>(u)] = 1;
    mask_valid_ = true;
  }
  return &mask_;
}

void MonteCarloEngine::ChargeEstimate(int rounds_run) const {
  num_simulations_ += num_samples_;
  const int64_t samples = num_samples_;
  num_rounds_simulated_ += samples * rounds_run;
  num_rounds_skipped_ +=
      samples * (sim_.problem().num_promotions - rounds_run);
}

double MonteCarloEngine::Sigma(const SeedGroup& seeds) const {
  util::trace::Span span("mc.sigma");
  util::MutexLock lock(mu_);
  if (!BeginEstimate()) return 0.0;
  double memoized = 0.0;
  if (MemoLookup(seeds, &memoized)) {
    RecordSigmaEstimate(memoized);
    return memoized;
  }
  const SeedSchedule sched(seeds, sim_.problem());
  const int t_end = sched.last_active_round();
  std::vector<double> partial(NumShards(), 0.0);
  int rounds_run = 0;
  RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    double total = 0.0;
    int rounds = 0;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      if (!cancel_->Check().ok()) break;
      sim_.Restore(nullptr, initial_states_, scratch);
      rounds = sim_.SimulateRounds(sched, static_cast<uint64_t>(s), 1, t_end,
                                   nullptr, scratch);
      total += scratch.sigma();
    }
    partial[shard] = total;
    if (shard == 0) rounds_run = rounds;  // schedule property: same for all
  });
  if (Cancelled()) return 0.0;
  double total = 0.0;
  for (double p : partial) total += p;  // fixed shard order
  ChargeEstimate(rounds_run);
  const double sigma = total / num_samples_;
  MemoStore(seeds, sigma);
  RecordSigmaEstimate(sigma);
  return sigma;
}

MonteCarloEngine::MarketEval MonteCarloEngine::EvalMarket(
    const SeedGroup& seeds, const std::vector<UserId>& users) const {
  util::trace::Span span("mc.eval_market");
  util::MutexLock lock(mu_);
  if (!BeginEstimate()) return MarketEval{};
  MarketEval memoized;
  if (MarketMemoLookup(seeds, users, &memoized)) {
    RecordSigmaEstimate(memoized.sigma);
    return memoized;
  }
  const std::vector<uint8_t>* mask = CachedMask(users);
  const SeedSchedule sched(seeds, sim_.problem());
  const int t_end = sched.last_active_round();
  std::vector<MarketEval> partial(NumShards());
  int rounds_run = 0;
  RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    MarketEval acc;
    int rounds = 0;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      if (!cancel_->Check().ok()) break;
      sim_.Restore(nullptr, initial_states_, scratch);
      rounds = sim_.SimulateRounds(sched, static_cast<uint64_t>(s), 1, t_end,
                                   mask, scratch);
      acc.sigma += scratch.sigma();
      acc.sigma_market += scratch.sigma_market();
      acc.pi += sim_.LikelihoodPi(scratch.states(), users);
    }
    partial[shard] = acc;
    if (shard == 0) rounds_run = rounds;
  });
  if (Cancelled()) return MarketEval{};
  MarketEval out;
  for (const MarketEval& acc : partial) {  // fixed shard order
    out.sigma += acc.sigma;
    out.sigma_market += acc.sigma_market;
    out.pi += acc.pi;
  }
  ChargeEstimate(rounds_run);
  out.sigma /= num_samples_;
  out.sigma_market /= num_samples_;
  out.pi /= num_samples_;
  MarketMemoStore(seeds, users, out);
  RecordSigmaEstimate(out.sigma);
  return out;
}

ExpectedState MonteCarloEngine::Expected(const SeedGroup& seeds) const {
  util::MutexLock lock(mu_);
  if (!BeginEstimate()) {
    const Problem& p = sim_.problem();
    return ExpectedState(p.NumUsers(), p.NumItems(), p.NumMetas());
  }
  return ExpectedFrom(SeedSchedule(seeds, sim_.problem()), 1, nullptr);
}

ExpectedState MonteCarloEngine::ExpectedFrom(
    const SeedSchedule& sched, int t_begin,
    const std::vector<SampleCheckpoint>* start) const {
  const Problem& p = sim_.problem();
  const int num_shards = NumShards();
  const int t_end = sched.last_active_round();
  ExpectedState es(p.NumUsers(), p.NumItems(), p.NumMetas());
  int rounds_run = 0;
  // Raw per-shard sums (adoption counts, weighting totals), scaled by
  // 1/num_samples only after the shard-order fold so the arithmetic is
  // identical for every thread count.
  auto accumulate = [&](int shard, ExpectedState& acc) {
    SimScratch& scratch = LocalScratch();
    int rounds = 0;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      if (!cancel_->Check().ok()) break;
      sim_.Restore(start == nullptr ? nullptr
                                    : &(*start)[static_cast<size_t>(s)],
                   initial_states_, scratch);
      rounds = sim_.SimulateRounds(sched, static_cast<uint64_t>(s), t_begin,
                                   t_end, nullptr, scratch);
      for (UserId u = 0; u < p.NumUsers(); ++u) {
        const pin::UserState& st = scratch.states()[u];
        for (ItemId x : st.Adopted()) {
          acc.adoption_prob_[static_cast<size_t>(u) * p.NumItems() + x] +=
              1.0f;
        }
        const std::vector<float>& w = st.wmeta();
        for (int m = 0; m < p.NumMetas(); ++m) {
          acc.avg_wmeta_[static_cast<size_t>(u) * p.NumMetas() + m] += w[m];
        }
      }
    }
    if (shard == 0) rounds_run = rounds;
  };
  auto fold = [&](const ExpectedState& acc) {
    for (size_t i = 0; i < es.adoption_prob_.size(); ++i) {
      es.adoption_prob_[i] += acc.adoption_prob_[i];
    }
    for (size_t i = 0; i < es.avg_wmeta_.size(); ++i) {
      es.avg_wmeta_[i] += acc.avg_wmeta_[i];
    }
  };
  if (RunsParallel()) {
    // One partial per shard (workers complete out of order), folded in
    // shard order afterwards.
    std::vector<ExpectedState> partial(num_shards, es);
    RunShards([&](int shard) { accumulate(shard, partial[shard]); });
    for (const ExpectedState& acc : partial) fold(acc);
  } else {
    // Serial fallback: one partial reused shard by shard — the identical
    // reduction tree at 1/num_shards-th the memory.
    ExpectedState shard_acc = es;
    for (int shard = 0; shard < num_shards; ++shard) {
      std::fill(shard_acc.adoption_prob_.begin(),
                shard_acc.adoption_prob_.end(), 0.0f);
      std::fill(shard_acc.avg_wmeta_.begin(), shard_acc.avg_wmeta_.end(),
                0.0f);
      accumulate(shard, shard_acc);
      fold(shard_acc);
    }
  }
  if (Cancelled()) {
    return ExpectedState(p.NumUsers(), p.NumItems(), p.NumMetas());
  }
  ChargeEstimate(rounds_run);
  const float inv = 1.0f / static_cast<float>(num_samples_);
  for (float& v : es.adoption_prob_) v *= inv;
  for (float& v : es.avg_wmeta_) v *= inv;
  return es;
}

// --------------------------------------------------------------------------
// CheckpointedEval

CheckpointedEval::CheckpointedEval(const MonteCarloEngine& engine,
                                   SeedGroup base, std::vector<UserId> market)
    : engine_(engine), market_(std::move(market)) {
  // Checkpoints freeze the diffusion from the problem's initial state;
  // adaptive-style initial-state overrides are not supported here.
  util::MutexLock lock(engine_.mu_);
  IMDPP_CHECK(engine_.initial_states_ == nullptr);
  if (!market_.empty()) {
    mask_.assign(static_cast<size_t>(engine_.sim_.problem().NumUsers()), 0);
    for (UserId u : market_) mask_[static_cast<size_t>(u)] = 1;
  }
  base_ = std::move(base);
  base_sched_ = SeedSchedule(base_, engine_.sim_.problem());
}

int CheckpointedEval::FirstDivergence(const SeedSchedule& a,
                                      const SeedSchedule& b, int t_max) {
  for (int t = 1; t <= t_max; ++t) {
    if (a.RoundSeeds(t) != b.RoundSeeds(t)) return t;
  }
  return t_max + 1;
}

void CheckpointedEval::Rebase(SeedGroup base) {
  SeedSchedule sched(base, engine_.sim_.problem());
  const int diverge = FirstDivergence(base_sched_, sched,
                                      engine_.sim_.problem().num_promotions);
  rounds_ready_ = std::min(rounds_ready_, diverge - 1);
  cp_.resize(static_cast<size_t>(rounds_ready_));
  base_ = std::move(base);
  base_sched_ = std::move(sched);
}

void CheckpointedEval::EnsureCheckpoints(int upto) {
  upto = std::min(upto, base_sched_.last_active_round());
  if (upto <= rounds_ready_) return;
  const int num_samples = engine_.num_samples_;
  cp_.resize(static_cast<size_t>(upto));
  for (int k = rounds_ready_; k < upto; ++k) {
    cp_[static_cast<size_t>(k)].resize(static_cast<size_t>(num_samples));
  }
  const int from = rounds_ready_;
  const std::vector<uint8_t>* mask = mask_.empty() ? nullptr : &mask_;
  int rounds_built = 0;
  engine_.RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    int rounds = 0;
    const int end = engine_.ShardBegin(shard + 1);
    for (int s = engine_.ShardBegin(shard); s < end; ++s) {
      if (!engine_.cancel_->Check().ok()) break;
      const SampleCheckpoint* start =
          from == 0 ? nullptr
                    : &cp_[static_cast<size_t>(from - 1)][static_cast<size_t>(s)];
      engine_.sim_.Restore(start, nullptr, scratch);
      rounds = 0;
      for (int k = from + 1; k <= upto; ++k) {
        rounds += engine_.sim_.SimulateRounds(base_sched_,
                                              static_cast<uint64_t>(s), k, k,
                                              mask, scratch);
        engine_.sim_.Capture(
            scratch, cp_[static_cast<size_t>(k - 1)][static_cast<size_t>(s)]);
      }
    }
    if (shard == 0) rounds_built = rounds;
  });
  // A build the token interrupted left some samples unfrozen: advancing
  // rounds_ready_ would later resume from half-built checkpoints, so
  // leave the ready watermark (and the work accounting) untouched — the
  // next uncancelled build redoes these rounds from the old watermark.
  if (engine_.Cancelled()) return;
  // Building is amortized shared work, not an estimate of its own: move
  // its rounds from the skipped to the simulated bucket so that
  // simulated + skipped stays exactly the naive T-rounds-per-sample
  // total over the estimates made (a transiently negative skipped count
  // just means checkpoints were built but not yet reused).
  engine_.num_rounds_simulated_ +=
      static_cast<int64_t>(num_samples) * rounds_built;
  engine_.num_rounds_skipped_ -=
      static_cast<int64_t>(num_samples) * rounds_built;
  rounds_ready_ = upto;
}

CheckpointedEval::Outcome CheckpointedEval::Eval(const SeedGroup& group,
                                                 bool want_pi) {
  // Checkpoints (and the prefix-reuse argument) assume the problem's
  // initial state; a SetInitialStates slipped in after construction must
  // fail loudly rather than silently evaluate from the wrong state.
  IMDPP_CHECK(engine_.initial_states_ == nullptr);
  const Problem& p = engine_.sim_.problem();
  const int t_max = p.num_promotions;
  const SeedSchedule sched(group, p);
  const int diverge = FirstDivergence(base_sched_, sched, t_max);
  // Stand on the last shared boundary (bounded by what the base can ever
  // provide: rounds past its last active round are no-ops).
  int resume = std::min(diverge - 1, base_sched_.last_active_round());
  EnsureCheckpoints(resume);
  resume = std::min(resume, rounds_ready_);
  const int t_end = sched.last_active_round();
  const std::vector<uint8_t>* mask = mask_.empty() ? nullptr : &mask_;

  struct Part {
    double sigma = 0.0;
    double sigma_market = 0.0;
    double pi = 0.0;
  };
  std::vector<Part> partial(engine_.NumShards());
  int rounds_run = 0;
  engine_.RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    Part acc;
    int rounds = 0;
    const int end = engine_.ShardBegin(shard + 1);
    for (int s = engine_.ShardBegin(shard); s < end; ++s) {
      if (!engine_.cancel_->Check().ok()) break;
      const SampleCheckpoint* start =
          resume == 0
              ? nullptr
              : &cp_[static_cast<size_t>(resume - 1)][static_cast<size_t>(s)];
      engine_.sim_.Restore(start, nullptr, scratch);
      rounds = 0;
      if (t_end > resume) {
        rounds = engine_.sim_.SimulateRounds(sched, static_cast<uint64_t>(s),
                                             resume + 1, t_end, mask, scratch);
      }
      acc.sigma += scratch.sigma();
      acc.sigma_market += scratch.sigma_market();
      if (want_pi) acc.pi += engine_.sim_.LikelihoodPi(scratch.states(), market_);
    }
    partial[shard] = acc;
    if (shard == 0) rounds_run = rounds;
  });
  if (engine_.Cancelled()) return Outcome{};
  Outcome out;
  for (const Part& acc : partial) {  // fixed shard order
    out.sigma += acc.sigma;
    out.sigma_market += acc.sigma_market;
    out.pi += acc.pi;
  }
  engine_.ChargeEstimate(rounds_run);
  out.sigma /= engine_.num_samples_;
  out.sigma_market /= engine_.num_samples_;
  out.pi /= engine_.num_samples_;
  return out;
}

double CheckpointedEval::Sigma(const SeedGroup& group) {
  util::trace::Span span("mc.sigma");
  util::MutexLock lock(engine_.mu_);
  if (!engine_.BeginEstimate()) return 0.0;
  double memoized = 0.0;
  if (engine_.MemoLookup(group, &memoized)) {
    engine_.RecordSigmaEstimate(memoized);
    return memoized;
  }
  const double sigma = Eval(group, /*want_pi=*/false).sigma;
  if (engine_.Cancelled()) return sigma;  // partial: keep it out of the memo
  engine_.MemoStore(group, sigma);
  engine_.RecordSigmaEstimate(sigma);
  return sigma;
}

MonteCarloEngine::MarketEval CheckpointedEval::EvalMarket(
    const SeedGroup& group) {
  IMDPP_CHECK(!market_.empty());
  util::trace::Span span("mc.eval_market");
  util::MutexLock lock(engine_.mu_);
  if (!engine_.BeginEstimate()) return MonteCarloEngine::MarketEval{};
  MonteCarloEngine::MarketEval memoized;
  if (engine_.MarketMemoLookup(group, market_, &memoized)) {
    engine_.RecordSigmaEstimate(memoized.sigma);
    return memoized;
  }
  const Outcome o = Eval(group, /*want_pi=*/true);
  const MonteCarloEngine::MarketEval out{o.sigma, o.sigma_market, o.pi};
  if (engine_.Cancelled()) return out;  // partial: keep it out of the memo
  engine_.MarketMemoStore(group, market_, out);
  engine_.RecordSigmaEstimate(out.sigma);
  return out;
}

ExpectedState CheckpointedEval::Expected(const SeedGroup& group) {
  util::MutexLock lock(engine_.mu_);
  IMDPP_CHECK(engine_.initial_states_ == nullptr);
  const Problem& p = engine_.sim_.problem();
  if (!engine_.BeginEstimate()) {
    return ExpectedState(p.NumUsers(), p.NumItems(), p.NumMetas());
  }
  const SeedSchedule sched(group, p);
  const int diverge = FirstDivergence(base_sched_, sched, p.num_promotions);
  int resume = std::min(diverge - 1, base_sched_.last_active_round());
  EnsureCheckpoints(resume);
  resume = std::min(resume, rounds_ready_);
  return engine_.ExpectedFrom(
      sched, resume + 1,
      resume == 0 ? nullptr : &cp_[static_cast<size_t>(resume - 1)]);
}

// --------------------------------------------------------------------------
// SigmaBackend surface

std::unique_ptr<ScheduleEval> MonteCarloEngine::MakeScheduleEval(
    SeedGroup base, std::vector<UserId> market) const {
  return std::make_unique<CheckpointedEval>(*this, std::move(base),
                                            std::move(market));
}

namespace {

std::unique_ptr<SigmaBackend> MakeMcBackend(
    const SigmaBackendContext& context) {
  return std::make_unique<MonteCarloEngine>(
      *context.problem, context.campaign, context.num_samples,
      context.num_threads, context.shared_pool, context.spec.cancel);
}

IMDPP_REGISTER_SIGMA_BACKEND("mc", MakeMcBackend);

}  // namespace

namespace internal {
void AnchorMcBackend() {}
}  // namespace internal

}  // namespace imdpp::diffusion
