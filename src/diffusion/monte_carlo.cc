#include "diffusion/monte_carlo.h"

#include <algorithm>
#include <utility>

#include "util/fault_injection.h"
#include "util/trace.h"

namespace imdpp::diffusion {

namespace {

/// Shard-count cap. Enough shards to load-balance any plausible core
/// count, few enough that per-shard partial state (one ExpectedState in
/// Expected()) stays small. Must depend on nothing but this constant and
/// the sample count: the shard layout IS the reduction tree, and a fixed
/// tree is what makes results bit-identical across thread counts.
constexpr int kMaxShards = 32;

/// Serial cutoff (ISSUE 3): below this many realizations per estimate the
/// pool dispatch overhead is not worth paying; run inline. Scheduling
/// only — the shard layout and therefore the results are unchanged.
constexpr int kMinParallelSamples = 8;

/// Per-worker simulation arena. Thread-local rather than engine-owned so
/// every engine sharing a pool (or a caller thread hopping between
/// engines) reuses one arena per thread; SimScratch::Bind reshapes only
/// when the problem dimensions actually change.
SimScratch& LocalScratch() { return ThreadLocalSimScratch(); }

}  // namespace

ExpectedState::ExpectedState(int num_users, int num_items, int num_metas)
    : num_users_(num_users),
      num_items_(num_items),
      num_metas_(num_metas),
      adoption_prob_(static_cast<size_t>(num_users) * num_items, 0.0f),
      avg_wmeta_(static_cast<size_t>(num_users) * num_metas, 0.0f) {}

double ExpectedState::AvgRel(const pin::PersonalItemNetwork& pin,
                             const std::vector<UserId>& users, ItemId x,
                             ItemId y, bool complementary) const {
  double s = 0.0;
  int n = 0;
  auto add = [&](UserId u) {
    std::span<const float> w = AvgWmeta(u);
    s += complementary ? pin.RelC(w, x, y) : pin.RelS(w, x, y);
    ++n;
  };
  if (users.empty()) {
    for (UserId u = 0; u < num_users_; ++u) add(u);
  } else {
    for (UserId u : users) add(u);
  }
  return n == 0 ? 0.0 : s / n;
}

double ExpectedState::AvgRelC(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/true);
}

double ExpectedState::AvgRelS(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/false);
}

ExpectedState ExpectedState::InitialOf(const Problem& problem) {
  ExpectedState es(problem.NumUsers(), problem.NumItems(), problem.NumMetas());
  es.avg_wmeta_ = problem.wmeta0;
  return es;
}

MonteCarloEngine::MonteCarloEngine(
    const Problem& problem, const CampaignConfig& config, int num_samples,
    int num_threads, std::shared_ptr<util::ThreadPool> shared_pool,
    std::shared_ptr<const util::CancelToken> cancel)
    : sim_(problem, config),
      num_samples_(num_samples),
      num_threads_(util::ResolveNumThreads(num_threads)),
      shared_pool_(std::move(shared_pool)),
      cancel_(std::move(cancel)) {
  IMDPP_CHECK_GT(num_samples, 0);
  // Keep the never-null invariant: fault propagation and the shard-loop
  // checks always have a token, whether or not the caller provided one.
  if (cancel_ == nullptr) cancel_ = std::make_shared<util::CancelToken>();
}

bool MonteCarloEngine::BeginEstimate() const {
  util::Status fault = util::FaultInjector::Global().Hit("eval.sigma");
  if (!fault.ok()) cancel_->Cancel(std::move(fault));
  return cancel_->Check().ok();
}

int MonteCarloEngine::NumShards() const {
  return std::min(num_samples_, kMaxShards);
}

int MonteCarloEngine::ShardBegin(int shard) const {
  return static_cast<int>(static_cast<int64_t>(num_samples_) * shard /
                          NumShards());
}

bool MonteCarloEngine::RunsParallel() const {
  return num_threads_ > 1 && NumShards() > 1 &&
         num_samples_ >= kMinParallelSamples;
}

void MonteCarloEngine::RunShards(const std::function<void(int)>& fn) const {
  const int num_shards = NumShards();
  if (RunsParallel()) {
    util::ThreadPool* pool = shared_pool_.get();
    if (pool == nullptr) {
      if (pool_ == nullptr) {
        // More workers than shards could never claim a task, so cap the
        // spawn count; the shard layout (and thus the result) is unchanged.
        pool_ = std::make_unique<util::ThreadPool>(
            std::min(num_threads_, num_shards) - 1);
      }
      pool = pool_.get();
    }
    pool->ParallelFor(num_shards, fn);
  } else {
    for (int shard = 0; shard < num_shards; ++shard) fn(shard);
  }
}

bool MonteCarloEngine::MemoLookup(const SeedGroup& seeds,
                                  double* sigma) const {
  if (!MemoEnabled()) return false;
  auto it = sigma_memo_.find(seeds);
  if (it == sigma_memo_.end()) return false;
  ++num_memo_hits_;
  num_rounds_skipped_ += static_cast<int64_t>(num_samples_) *
                         sim_.problem().num_promotions;
  *sigma = it->second;
  return true;
}

void MonteCarloEngine::MemoStore(const SeedGroup& seeds, double sigma) const {
  if (!MemoEnabled() || sigma_memo_.size() >= sigma_memo_capacity_) return;
  sigma_memo_.emplace(seeds, sigma);
}

bool MonteCarloEngine::MarketMemoLookup(const SeedGroup& seeds,
                                        const std::vector<UserId>& users,
                                        MarketEval* eval) const {
  if (!MemoEnabled()) return false;
  auto market_it = market_memo_.find(users);
  if (market_it == market_memo_.end()) return false;
  auto it = market_it->second.find(seeds);
  if (it == market_it->second.end()) return false;
  ++num_memo_hits_;
  num_rounds_skipped_ += static_cast<int64_t>(num_samples_) *
                         sim_.problem().num_promotions;
  *eval = it->second;
  return true;
}

void MonteCarloEngine::MarketMemoStore(const SeedGroup& seeds,
                                       const std::vector<UserId>& users,
                                       const MarketEval& eval) const {
  if (!MemoEnabled() || market_memo_entries_ >= sigma_memo_capacity_) return;
  if (market_memo_[users].emplace(seeds, eval).second) {
    ++market_memo_entries_;
  }
}

const std::vector<uint8_t>* MonteCarloEngine::CachedMask(
    const std::vector<UserId>& users) const {
  if (!mask_valid_ || users != mask_users_) {
    mask_users_ = users;
    mask_.assign(static_cast<size_t>(sim_.problem().NumUsers()), 0);
    for (UserId u : users) mask_[static_cast<size_t>(u)] = 1;
    mask_valid_ = true;
  }
  return &mask_;
}

void MonteCarloEngine::ChargeEstimate(int rounds_run) const {
  num_simulations_ += num_samples_;
  const int64_t samples = num_samples_;
  num_rounds_simulated_ += samples * rounds_run;
  num_rounds_skipped_ +=
      samples * (sim_.problem().num_promotions - rounds_run);
}

double MonteCarloEngine::Sigma(const SeedGroup& seeds) const {
  util::trace::Span span("mc.sigma");
  util::MutexLock lock(mu_);
  if (!BeginEstimate()) return 0.0;
  double memoized = 0.0;
  if (MemoLookup(seeds, &memoized)) {
    RecordSigmaEstimate(memoized);
    return memoized;
  }
  const SeedSchedule sched(seeds, sim_.problem());
  const int t_end = sched.last_active_round();
  std::vector<double> partial(NumShards(), 0.0);
  int rounds_run = 0;
  RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    double total = 0.0;
    int rounds = 0;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      if (!cancel_->Check().ok()) break;
      sim_.Restore(nullptr, initial_states_, scratch);
      rounds = sim_.SimulateRounds(sched, static_cast<uint64_t>(s), 1, t_end,
                                   nullptr, scratch);
      total += scratch.sigma();
    }
    partial[shard] = total;
    if (shard == 0) rounds_run = rounds;  // schedule property: same for all
  });
  if (Cancelled()) return 0.0;
  double total = 0.0;
  for (double p : partial) total += p;  // fixed shard order
  ChargeEstimate(rounds_run);
  const double sigma = total / num_samples_;
  MemoStore(seeds, sigma);
  RecordSigmaEstimate(sigma);
  return sigma;
}

MonteCarloEngine::MarketEval MonteCarloEngine::EvalMarket(
    const SeedGroup& seeds, const std::vector<UserId>& users) const {
  util::trace::Span span("mc.eval_market");
  util::MutexLock lock(mu_);
  if (!BeginEstimate()) return MarketEval{};
  MarketEval memoized;
  if (MarketMemoLookup(seeds, users, &memoized)) {
    RecordSigmaEstimate(memoized.sigma);
    return memoized;
  }
  const std::vector<uint8_t>* mask = CachedMask(users);
  const SeedSchedule sched(seeds, sim_.problem());
  const int t_end = sched.last_active_round();
  std::vector<MarketEval> partial(NumShards());
  int rounds_run = 0;
  RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    MarketEval acc;
    int rounds = 0;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      if (!cancel_->Check().ok()) break;
      sim_.Restore(nullptr, initial_states_, scratch);
      rounds = sim_.SimulateRounds(sched, static_cast<uint64_t>(s), 1, t_end,
                                   mask, scratch);
      acc.sigma += scratch.sigma();
      acc.sigma_market += scratch.sigma_market();
      acc.pi += sim_.LikelihoodPi(scratch.states(), users);
    }
    partial[shard] = acc;
    if (shard == 0) rounds_run = rounds;
  });
  if (Cancelled()) return MarketEval{};
  MarketEval out;
  for (const MarketEval& acc : partial) {  // fixed shard order
    out.sigma += acc.sigma;
    out.sigma_market += acc.sigma_market;
    out.pi += acc.pi;
  }
  ChargeEstimate(rounds_run);
  out.sigma /= num_samples_;
  out.sigma_market /= num_samples_;
  out.pi /= num_samples_;
  MarketMemoStore(seeds, users, out);
  RecordSigmaEstimate(out.sigma);
  return out;
}

ExpectedState MonteCarloEngine::Expected(const SeedGroup& seeds) const {
  util::MutexLock lock(mu_);
  if (!BeginEstimate()) {
    const Problem& p = sim_.problem();
    return ExpectedState(p.NumUsers(), p.NumItems(), p.NumMetas());
  }
  return ExpectedFrom(SeedSchedule(seeds, sim_.problem()), 1, nullptr);
}

ExpectedState MonteCarloEngine::ExpectedFrom(
    const SeedSchedule& sched, int t_begin,
    const std::vector<SampleCheckpoint>* start) const {
  const Problem& p = sim_.problem();
  const int num_shards = NumShards();
  const int t_end = sched.last_active_round();
  ExpectedState es(p.NumUsers(), p.NumItems(), p.NumMetas());
  int rounds_run = 0;
  // Raw per-shard sums (adoption counts, weighting totals), scaled by
  // 1/num_samples only after the shard-order fold so the arithmetic is
  // identical for every thread count.
  auto accumulate = [&](int shard, ExpectedState& acc) {
    SimScratch& scratch = LocalScratch();
    int rounds = 0;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      if (!cancel_->Check().ok()) break;
      sim_.Restore(start == nullptr ? nullptr
                                    : &(*start)[static_cast<size_t>(s)],
                   initial_states_, scratch);
      rounds = sim_.SimulateRounds(sched, static_cast<uint64_t>(s), t_begin,
                                   t_end, nullptr, scratch);
      for (UserId u = 0; u < p.NumUsers(); ++u) {
        const pin::UserState& st = scratch.states()[u];
        for (ItemId x : st.Adopted()) {
          acc.adoption_prob_[static_cast<size_t>(u) * p.NumItems() + x] +=
              1.0f;
        }
        const std::vector<float>& w = st.wmeta();
        for (int m = 0; m < p.NumMetas(); ++m) {
          acc.avg_wmeta_[static_cast<size_t>(u) * p.NumMetas() + m] += w[m];
        }
      }
    }
    if (shard == 0) rounds_run = rounds;
  };
  auto fold = [&](const ExpectedState& acc) {
    for (size_t i = 0; i < es.adoption_prob_.size(); ++i) {
      es.adoption_prob_[i] += acc.adoption_prob_[i];
    }
    for (size_t i = 0; i < es.avg_wmeta_.size(); ++i) {
      es.avg_wmeta_[i] += acc.avg_wmeta_[i];
    }
  };
  if (RunsParallel()) {
    // One partial per shard (workers complete out of order), folded in
    // shard order afterwards.
    std::vector<ExpectedState> partial(num_shards, es);
    RunShards([&](int shard) { accumulate(shard, partial[shard]); });
    for (const ExpectedState& acc : partial) fold(acc);
  } else {
    // Serial fallback: one partial reused shard by shard — the identical
    // reduction tree at 1/num_shards-th the memory.
    ExpectedState shard_acc = es;
    for (int shard = 0; shard < num_shards; ++shard) {
      std::fill(shard_acc.adoption_prob_.begin(),
                shard_acc.adoption_prob_.end(), 0.0f);
      std::fill(shard_acc.avg_wmeta_.begin(), shard_acc.avg_wmeta_.end(),
                0.0f);
      accumulate(shard, shard_acc);
      fold(shard_acc);
    }
  }
  if (Cancelled()) {
    return ExpectedState(p.NumUsers(), p.NumItems(), p.NumMetas());
  }
  ChargeEstimate(rounds_run);
  const float inv = 1.0f / static_cast<float>(num_samples_);
  for (float& v : es.adoption_prob_) v *= inv;
  for (float& v : es.avg_wmeta_) v *= inv;
  return es;
}

// --------------------------------------------------------------------------
// Adaptive SelectBest (ISSUE 10)

// Race simulations draw time-aligned (attempt-ordinal) coins from round 1
// on — see the campaign_simulator.h file comment. Keying by each
// cascade's own attempt ordinals makes the pairing hold for EVERY
// candidate pair at once, wherever that pair happens to diverge: two
// cascades that share a prefix have identical ordinal state at the end of
// it, so corresponding post-divergence attempts land on the same coins.
// A fixed sentinel round would only align pairs that diverge at the
// sentinel.
inline constexpr int kRaceAlignFromRound = 1;

MonteCarloEngine::RaceOutcome MonteCarloEngine::RaceSelect(
    int num_candidates, const AdaptiveEvalConfig& config,
    const std::function<int(int, int, int, AdaptiveEval&)>& eval_block)
    const {
  AdaptiveEval race(num_candidates, num_samples_, config);
  RaceOutcome out;
  const int t_max = sim_.problem().num_promotions;
  while (!race.done()) {
    const int begin = race.block_begin();
    const int end = race.block_end();
    for (int i = 0; i < num_candidates; ++i) {
      if (!race.IsAlive(i)) continue;
      const int rounds_run = eval_block(i, begin, end, race);
      // A fired token mid-block leaves that block uncharged (mirroring
      // interrupted plain estimates); earlier completed blocks stay
      // booked — the caller reads the error off the token.
      if (rounds_run < 0) return RaceOutcome{};
      const int64_t block = end - begin;
      num_simulations_ += block;
      num_rounds_simulated_ += block * rounds_run;
      num_rounds_skipped_ += block * (t_max - rounds_run);
      out.samples += block;
    }
    race.EndBlock();
  }
  // Samples the race never ran are whole-sample skips — the fixed-count
  // path would have simulated them — so simulated + skipped still adds
  // up to the naive candidates × num_samples × T total for this argmax.
  num_rounds_skipped_ += race.samples_saved() * t_max;
  blocks_run_ += race.blocks_run();
  early_stops_ += race.early_stops();
  samples_saved_ += race.samples_saved();
  out.winner = race.Winner();
  return out;
}

SelectBestResult MonteCarloEngine::SelectBest(
    const std::vector<SelectCandidate>& candidates,
    const SelectOptions& options) const {
  // Racing needs at least two candidates to compare; everything else is
  // the fixed-count reference loop (which a disabled race must match
  // bit for bit — it IS the pre-adaptive code path).
  if (!options.adaptive.enabled || candidates.size() < 2) {
    return SigmaBackend::SelectBest(candidates, options);
  }
  IMDPP_CHECK(!options.use_market);
  util::trace::Span span("mc.select_best");
  int winner = -1;
  int64_t raced_samples = 0;
  {
    util::MutexLock lock(mu_);
    if (!BeginEstimate()) return SelectBestResult{};
    // Schedules are pure functions of the groups; build them once.
    std::vector<SeedSchedule> scheds;
    scheds.reserve(candidates.size());
    for (const SelectCandidate& c : candidates) {
      scheds.emplace_back(c.group, sim_.problem());
    }
    auto eval_block = [&](int cand, int begin, int end,
                          AdaptiveEval& race) -> int {
      const SeedSchedule& sched = scheds[static_cast<size_t>(cand)];
      const int t_end = sched.last_active_round();
      const auto& score = candidates[static_cast<size_t>(cand)].score;
      std::vector<int> rounds_by_shard(NumShards(), -1);
      RunShards([&](int shard) {
        SimScratch& scratch = LocalScratch();
        const int lo = std::max(ShardBegin(shard), begin);
        const int hi = std::min(ShardBegin(shard + 1), end);
        int rounds = -1;
        for (int s = lo; s < hi; ++s) {
          if (!cancel_->Check().ok()) break;
          sim_.Restore(nullptr, initial_states_, scratch);
          rounds = sim_.SimulateRounds(sched, static_cast<uint64_t>(s), 1,
                                       t_end, nullptr, scratch,
                                       kRaceAlignFromRound);
          MarketEval eval;
          eval.sigma = scratch.sigma();
          race.Record(cand, s, score ? score(eval) : eval.sigma);
        }
        rounds_by_shard[shard] = rounds;
      });
      if (Cancelled()) return -1;
      // The rounds executed per sample are a schedule property; take the
      // first shard that ran samples of this block (a fixed function of
      // the shard layout and block bounds — deterministic).
      for (int rounds : rounds_by_shard) {
        if (rounds >= 0) return rounds;
      }
      return 0;
    };
    const RaceOutcome raced = RaceSelect(static_cast<int>(candidates.size()),
                                         options.adaptive, eval_block);
    winner = raced.winner;
    raced_samples = raced.samples;
  }
  if (winner < 0) return SelectBestResult{};
  // Full-precision winner re-evaluation through the normal estimate path
  // (memo-aware, histogram-recorded): downstream arithmetic must see the
  // exact bits a direct Sigma call would have produced.
  MarketEval eval;
  eval.sigma = Sigma(candidates[static_cast<size_t>(winner)].group);
  if (Cancelled()) return SelectBestResult{};
  const double score = candidates[static_cast<size_t>(winner)].score
                           ? candidates[static_cast<size_t>(winner)].score(eval)
                           : eval.sigma;
  SelectBestResult result;
  result.samples_used = raced_samples + num_samples_;
  if (score > options.min_score) {
    result.best_index = winner;
    result.best_score = score;
    result.best_eval = eval;
  }
  return result;
}

// --------------------------------------------------------------------------
// CheckpointedEval

CheckpointedEval::CheckpointedEval(const MonteCarloEngine& engine,
                                   SeedGroup base, std::vector<UserId> market)
    : engine_(engine), market_(std::move(market)) {
  // Checkpoints freeze the diffusion from the problem's initial state;
  // adaptive-style initial-state overrides are not supported here.
  util::MutexLock lock(engine_.mu_);
  IMDPP_CHECK(engine_.initial_states_ == nullptr);
  if (!market_.empty()) {
    mask_.assign(static_cast<size_t>(engine_.sim_.problem().NumUsers()), 0);
    for (UserId u : market_) mask_[static_cast<size_t>(u)] = 1;
  }
  base_ = std::move(base);
  base_sched_ = SeedSchedule(base_, engine_.sim_.problem());
}

int CheckpointedEval::FirstDivergence(const SeedSchedule& a,
                                      const SeedSchedule& b, int t_max) {
  for (int t = 1; t <= t_max; ++t) {
    if (a.RoundSeeds(t) != b.RoundSeeds(t)) return t;
  }
  return t_max + 1;
}

void CheckpointedEval::Rebase(SeedGroup base) {
  SeedSchedule sched(base, engine_.sim_.problem());
  const int diverge = FirstDivergence(base_sched_, sched,
                                      engine_.sim_.problem().num_promotions);
  rounds_ready_ = std::min(rounds_ready_, diverge - 1);
  cp_.resize(static_cast<size_t>(rounds_ready_));
  aligned_rounds_ready_ = std::min(aligned_rounds_ready_, diverge - 1);
  aligned_cp_.resize(static_cast<size_t>(aligned_rounds_ready_));
  base_ = std::move(base);
  base_sched_ = std::move(sched);
}

void CheckpointedEval::EnsureCheckpoints(int upto) {
  upto = std::min(upto, base_sched_.last_active_round());
  if (upto <= rounds_ready_) return;
  const int num_samples = engine_.num_samples_;
  cp_.resize(static_cast<size_t>(upto));
  for (int k = rounds_ready_; k < upto; ++k) {
    cp_[static_cast<size_t>(k)].resize(static_cast<size_t>(num_samples));
  }
  const int from = rounds_ready_;
  const std::vector<uint8_t>* mask = mask_.empty() ? nullptr : &mask_;
  int rounds_built = 0;
  engine_.RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    int rounds = 0;
    const int end = engine_.ShardBegin(shard + 1);
    for (int s = engine_.ShardBegin(shard); s < end; ++s) {
      if (!engine_.cancel_->Check().ok()) break;
      const SampleCheckpoint* start =
          from == 0 ? nullptr
                    : &cp_[static_cast<size_t>(from - 1)][static_cast<size_t>(s)];
      engine_.sim_.Restore(start, nullptr, scratch);
      rounds = 0;
      for (int k = from + 1; k <= upto; ++k) {
        rounds += engine_.sim_.SimulateRounds(base_sched_,
                                              static_cast<uint64_t>(s), k, k,
                                              mask, scratch);
        engine_.sim_.Capture(
            scratch, cp_[static_cast<size_t>(k - 1)][static_cast<size_t>(s)]);
      }
    }
    if (shard == 0) rounds_built = rounds;
  });
  // A build the token interrupted left some samples unfrozen: advancing
  // rounds_ready_ would later resume from half-built checkpoints, so
  // leave the ready watermark (and the work accounting) untouched — the
  // next uncancelled build redoes these rounds from the old watermark.
  if (engine_.Cancelled()) return;
  // Building is amortized shared work, not an estimate of its own: move
  // its rounds from the skipped to the simulated bucket so that
  // simulated + skipped stays exactly the naive T-rounds-per-sample
  // total over the estimates made (a transiently negative skipped count
  // just means checkpoints were built but not yet reused).
  engine_.num_rounds_simulated_ +=
      static_cast<int64_t>(num_samples) * rounds_built;
  engine_.num_rounds_skipped_ -=
      static_cast<int64_t>(num_samples) * rounds_built;
  rounds_ready_ = upto;
}

void CheckpointedEval::EnsureAlignedCheckpoints(int rounds_upto,
                                                int samples_upto) {
  rounds_upto = std::max(rounds_upto, aligned_rounds_ready_);
  rounds_upto = std::min(rounds_upto, base_sched_.last_active_round());
  samples_upto = std::max(samples_upto, aligned_samples_ready_);
  samples_upto = std::min(samples_upto, engine_.num_samples_);
  if (rounds_upto <= 0 || samples_upto <= 0) return;
  if (rounds_upto <= aligned_rounds_ready_ &&
      samples_upto <= aligned_samples_ready_) {
    return;
  }
  aligned_cp_.resize(static_cast<size_t>(rounds_upto));
  for (auto& row : aligned_cp_) {
    row.resize(static_cast<size_t>(engine_.num_samples_));
  }
  const std::vector<uint8_t>* mask = mask_.empty() ? nullptr : &mask_;
  // Extends the valid rectangle in two strips, both simulating the base
  // schedule with race-aligned coins and freezing every boundary: first
  // deepen the already-built samples to the new round watermark, then
  // run the brand-new samples from scratch to that same watermark.
  // Work is booked like EnsureCheckpoints: amortized shared build,
  // moved from the skipped to the simulated bucket.
  auto build = [&](int s_begin, int s_end, int from, int upto) {
    if (s_begin >= s_end || from >= upto) return;
    std::vector<int> rounds_by_shard(engine_.NumShards(), -1);
    engine_.RunShards([&](int shard) {
      SimScratch& scratch = LocalScratch();
      const int lo = std::max(engine_.ShardBegin(shard), s_begin);
      const int hi = std::min(engine_.ShardBegin(shard + 1), s_end);
      int rounds = -1;
      for (int s = lo; s < hi; ++s) {
        if (!engine_.cancel_->Check().ok()) break;
        const SampleCheckpoint* start =
            from == 0 ? nullptr
                      : &aligned_cp_[static_cast<size_t>(from - 1)]
                                    [static_cast<size_t>(s)];
        engine_.sim_.Restore(start, nullptr, scratch);
        rounds = 0;
        for (int k = from + 1; k <= upto; ++k) {
          rounds += engine_.sim_.SimulateRounds(
              base_sched_, static_cast<uint64_t>(s), k, k, mask, scratch,
              kRaceAlignFromRound);
          engine_.sim_.Capture(scratch, aligned_cp_[static_cast<size_t>(k - 1)]
                                                   [static_cast<size_t>(s)]);
        }
      }
      rounds_by_shard[shard] = rounds;
    });
    if (engine_.Cancelled()) return;
    int rounds_built = 0;
    for (int rounds : rounds_by_shard) {
      if (rounds >= 0) {
        rounds_built = rounds;
        break;
      }
    }
    engine_.num_rounds_simulated_ +=
        static_cast<int64_t>(s_end - s_begin) * rounds_built;
    engine_.num_rounds_skipped_ -=
        static_cast<int64_t>(s_end - s_begin) * rounds_built;
  };
  build(0, aligned_samples_ready_, aligned_rounds_ready_, rounds_upto);
  build(aligned_samples_ready_, samples_upto, 0, rounds_upto);
  // A cancelled build leaves the watermarks untouched (half-frozen strips
  // must never be resumed from); the race's own cancel checks stop the
  // run before any restore could read them.
  if (engine_.Cancelled()) return;
  aligned_rounds_ready_ = rounds_upto;
  aligned_samples_ready_ = samples_upto;
}

CheckpointedEval::Outcome CheckpointedEval::Eval(const SeedGroup& group,
                                                 bool want_pi) {
  // Checkpoints (and the prefix-reuse argument) assume the problem's
  // initial state; a SetInitialStates slipped in after construction must
  // fail loudly rather than silently evaluate from the wrong state.
  IMDPP_CHECK(engine_.initial_states_ == nullptr);
  const Problem& p = engine_.sim_.problem();
  const int t_max = p.num_promotions;
  const SeedSchedule sched(group, p);
  const int diverge = FirstDivergence(base_sched_, sched, t_max);
  // Stand on the last shared boundary (bounded by what the base can ever
  // provide: rounds past its last active round are no-ops).
  int resume = std::min(diverge - 1, base_sched_.last_active_round());
  EnsureCheckpoints(resume);
  resume = std::min(resume, rounds_ready_);
  const int t_end = sched.last_active_round();
  const std::vector<uint8_t>* mask = mask_.empty() ? nullptr : &mask_;

  struct Part {
    double sigma = 0.0;
    double sigma_market = 0.0;
    double pi = 0.0;
  };
  std::vector<Part> partial(engine_.NumShards());
  int rounds_run = 0;
  engine_.RunShards([&](int shard) {
    SimScratch& scratch = LocalScratch();
    Part acc;
    int rounds = 0;
    const int end = engine_.ShardBegin(shard + 1);
    for (int s = engine_.ShardBegin(shard); s < end; ++s) {
      if (!engine_.cancel_->Check().ok()) break;
      const SampleCheckpoint* start =
          resume == 0
              ? nullptr
              : &cp_[static_cast<size_t>(resume - 1)][static_cast<size_t>(s)];
      engine_.sim_.Restore(start, nullptr, scratch);
      rounds = 0;
      if (t_end > resume) {
        rounds = engine_.sim_.SimulateRounds(sched, static_cast<uint64_t>(s),
                                             resume + 1, t_end, mask, scratch);
      }
      acc.sigma += scratch.sigma();
      acc.sigma_market += scratch.sigma_market();
      if (want_pi) acc.pi += engine_.sim_.LikelihoodPi(scratch.states(), market_);
    }
    partial[shard] = acc;
    if (shard == 0) rounds_run = rounds;
  });
  if (engine_.Cancelled()) return Outcome{};
  Outcome out;
  for (const Part& acc : partial) {  // fixed shard order
    out.sigma += acc.sigma;
    out.sigma_market += acc.sigma_market;
    out.pi += acc.pi;
  }
  engine_.ChargeEstimate(rounds_run);
  out.sigma /= engine_.num_samples_;
  out.sigma_market /= engine_.num_samples_;
  out.pi /= engine_.num_samples_;
  return out;
}

double CheckpointedEval::Sigma(const SeedGroup& group) {
  util::trace::Span span("mc.sigma");
  util::MutexLock lock(engine_.mu_);
  if (!engine_.BeginEstimate()) return 0.0;
  double memoized = 0.0;
  if (engine_.MemoLookup(group, &memoized)) {
    engine_.RecordSigmaEstimate(memoized);
    return memoized;
  }
  const double sigma = Eval(group, /*want_pi=*/false).sigma;
  if (engine_.Cancelled()) return sigma;  // partial: keep it out of the memo
  engine_.MemoStore(group, sigma);
  engine_.RecordSigmaEstimate(sigma);
  return sigma;
}

MonteCarloEngine::MarketEval CheckpointedEval::EvalMarket(
    const SeedGroup& group) {
  IMDPP_CHECK(!market_.empty());
  util::trace::Span span("mc.eval_market");
  util::MutexLock lock(engine_.mu_);
  if (!engine_.BeginEstimate()) return MonteCarloEngine::MarketEval{};
  MonteCarloEngine::MarketEval memoized;
  if (engine_.MarketMemoLookup(group, market_, &memoized)) {
    engine_.RecordSigmaEstimate(memoized.sigma);
    return memoized;
  }
  const Outcome o = Eval(group, /*want_pi=*/true);
  const MonteCarloEngine::MarketEval out{o.sigma, o.sigma_market, o.pi};
  if (engine_.Cancelled()) return out;  // partial: keep it out of the memo
  engine_.MarketMemoStore(group, market_, out);
  engine_.RecordSigmaEstimate(out.sigma);
  return out;
}

ExpectedState CheckpointedEval::Expected(const SeedGroup& group) {
  util::MutexLock lock(engine_.mu_);
  IMDPP_CHECK(engine_.initial_states_ == nullptr);
  const Problem& p = engine_.sim_.problem();
  if (!engine_.BeginEstimate()) {
    return ExpectedState(p.NumUsers(), p.NumItems(), p.NumMetas());
  }
  const SeedSchedule sched(group, p);
  const int diverge = FirstDivergence(base_sched_, sched, p.num_promotions);
  int resume = std::min(diverge - 1, base_sched_.last_active_round());
  EnsureCheckpoints(resume);
  resume = std::min(resume, rounds_ready_);
  return engine_.ExpectedFrom(
      sched, resume + 1,
      resume == 0 ? nullptr : &cp_[static_cast<size_t>(resume - 1)]);
}

SelectBestResult CheckpointedEval::SelectBest(
    const std::vector<SelectCandidate>& candidates,
    const SelectOptions& options) {
  if (!options.adaptive.enabled || candidates.size() < 2) {
    return ScheduleEval::SelectBest(candidates, options);
  }
  const bool want_market = options.use_market;
  if (want_market) IMDPP_CHECK(!market_.empty());
  util::trace::Span span("mc.select_best");
  int winner = -1;
  int64_t raced_samples = 0;
  {
    util::MutexLock lock(engine_.mu_);
    IMDPP_CHECK(engine_.initial_states_ == nullptr);
    if (!engine_.BeginEstimate()) return SelectBestResult{};
    const Problem& p = engine_.sim_.problem();
    const int t_max = p.num_promotions;
    // Per-candidate schedule and resume boundary against the shared base.
    struct Racer {
      SeedSchedule sched;
      int resume = 0;
      int t_end = 0;
    };
    std::vector<Racer> racers;
    racers.reserve(candidates.size());
    for (const SelectCandidate& c : candidates) {
      Racer racer{SeedSchedule(c.group, p)};
      const int diverge = FirstDivergence(base_sched_, racer.sched, t_max);
      racer.resume =
          std::min(diverge - 1, base_sched_.last_active_round());
      racer.t_end = racer.sched.last_active_round();
      racers.push_back(std::move(racer));
    }
    // Races draw aligned coins from round 1 (kRaceAlignFromRound), so a
    // racer can never resume from cp_: those prefixes froze round-keyed
    // coins. It CAN resume from the aligned lattice — the base prefix
    // simulated once per sample with the same attempt-ordinal keying the
    // race uses, checkpoints carrying the ordinal state — which makes a
    // resumed racer bit-identical to the engine-level race's from-scratch
    // aligned run of the same schedule. The lattice grows lazily with the
    // race's blocks (an early stop never paid for unraced samples), and
    // Rebase keeps shared rounds, so consecutive races against
    // overlapping bases (greedy placement, refinement sweeps) amortize it.
    int max_resume = 0;
    for (const Racer& racer : racers) {
      max_resume = std::max(max_resume, racer.resume);
    }
    const std::vector<uint8_t>* mask = mask_.empty() ? nullptr : &mask_;
    auto eval_block = [&](int cand, int begin, int end,
                          AdaptiveEval& race) -> int {
      EnsureAlignedCheckpoints(max_resume, end);
      if (engine_.Cancelled()) return -1;
      const Racer& racer = racers[static_cast<size_t>(cand)];
      const auto& score = candidates[static_cast<size_t>(cand)].score;
      std::vector<int> rounds_by_shard(engine_.NumShards(), -1);
      engine_.RunShards([&](int shard) {
        SimScratch& scratch = LocalScratch();
        const int lo = std::max(engine_.ShardBegin(shard), begin);
        const int hi = std::min(engine_.ShardBegin(shard + 1), end);
        int rounds = -1;
        for (int s = lo; s < hi; ++s) {
          if (!engine_.cancel_->Check().ok()) break;
          const SampleCheckpoint* start =
              racer.resume == 0
                  ? nullptr
                  : &aligned_cp_[static_cast<size_t>(racer.resume - 1)]
                                [static_cast<size_t>(s)];
          engine_.sim_.Restore(start, nullptr, scratch);
          rounds = 0;
          if (racer.t_end > racer.resume) {
            rounds = engine_.sim_.SimulateRounds(
                racer.sched, static_cast<uint64_t>(s), racer.resume + 1,
                racer.t_end, mask, scratch, kRaceAlignFromRound);
          }
          MarketEval eval;
          eval.sigma = scratch.sigma();
          eval.sigma_market = scratch.sigma_market();
          if (want_market) {
            eval.pi = engine_.sim_.LikelihoodPi(scratch.states(), market_);
          }
          race.Record(cand, s, score ? score(eval) : eval.sigma);
        }
        rounds_by_shard[shard] = rounds;
      });
      if (engine_.Cancelled()) return -1;
      for (int rounds : rounds_by_shard) {
        if (rounds >= 0) return rounds;
      }
      return 0;
    };
    const MonteCarloEngine::RaceOutcome raced = engine_.RaceSelect(
        static_cast<int>(candidates.size()), options.adaptive, eval_block);
    winner = raced.winner;
    raced_samples = raced.samples;
  }
  if (winner < 0) return SelectBestResult{};
  // Winner re-evaluation at the full sample count through the normal
  // checkpointed path (memo-aware, histogram-recorded).
  MarketEval eval;
  if (want_market) {
    eval = EvalMarket(candidates[static_cast<size_t>(winner)].group);
  } else {
    eval.sigma = Sigma(candidates[static_cast<size_t>(winner)].group);
  }
  if (engine_.Cancelled()) return SelectBestResult{};
  const double score = candidates[static_cast<size_t>(winner)].score
                           ? candidates[static_cast<size_t>(winner)].score(eval)
                           : eval.sigma;
  SelectBestResult result;
  result.samples_used = raced_samples + engine_.num_samples_;
  if (score > options.min_score) {
    result.best_index = winner;
    result.best_score = score;
    result.best_eval = eval;
  }
  return result;
}

// --------------------------------------------------------------------------
// SigmaBackend surface

std::unique_ptr<ScheduleEval> MonteCarloEngine::MakeScheduleEval(
    SeedGroup base, std::vector<UserId> market) const {
  return std::make_unique<CheckpointedEval>(*this, std::move(base),
                                            std::move(market));
}

namespace {

std::unique_ptr<SigmaBackend> MakeMcBackend(
    const SigmaBackendContext& context) {
  return std::make_unique<MonteCarloEngine>(
      *context.problem, context.campaign, context.num_samples,
      context.num_threads, context.shared_pool, context.spec.cancel);
}

IMDPP_REGISTER_SIGMA_BACKEND("mc", MakeMcBackend);

}  // namespace

namespace internal {
void AnchorMcBackend() {}
}  // namespace internal

}  // namespace imdpp::diffusion
