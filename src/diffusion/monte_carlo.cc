#include "diffusion/monte_carlo.h"

namespace imdpp::diffusion {

ExpectedState::ExpectedState(int num_users, int num_items, int num_metas)
    : num_users_(num_users),
      num_items_(num_items),
      num_metas_(num_metas),
      adoption_prob_(static_cast<size_t>(num_users) * num_items, 0.0f),
      avg_wmeta_(static_cast<size_t>(num_users) * num_metas, 0.0f) {}

double ExpectedState::AvgRel(const pin::PersonalItemNetwork& pin,
                             const std::vector<UserId>& users, ItemId x,
                             ItemId y, bool complementary) const {
  double s = 0.0;
  int n = 0;
  auto add = [&](UserId u) {
    std::span<const float> w = AvgWmeta(u);
    s += complementary ? pin.RelC(w, x, y) : pin.RelS(w, x, y);
    ++n;
  };
  if (users.empty()) {
    for (UserId u = 0; u < num_users_; ++u) add(u);
  } else {
    for (UserId u : users) add(u);
  }
  return n == 0 ? 0.0 : s / n;
}

double ExpectedState::AvgRelC(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/true);
}

double ExpectedState::AvgRelS(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/false);
}

ExpectedState ExpectedState::InitialOf(const Problem& problem) {
  ExpectedState es(problem.NumUsers(), problem.NumItems(), problem.NumMetas());
  es.avg_wmeta_ = problem.wmeta0;
  return es;
}

MonteCarloEngine::MonteCarloEngine(const Problem& problem,
                                   const CampaignConfig& config,
                                   int num_samples)
    : sim_(problem, config), num_samples_(num_samples) {
  IMDPP_CHECK_GT(num_samples, 0);
}

double MonteCarloEngine::Sigma(const SeedGroup& seeds) const {
  double total = 0.0;
  for (int s = 0; s < num_samples_; ++s) {
    total += sim_.RunSample(seeds, static_cast<uint64_t>(s), nullptr,
                            /*keep_states=*/false, initial_states_)
                 .sigma;
    ++num_simulations_;
  }
  return total / num_samples_;
}

MonteCarloEngine::MarketEval MonteCarloEngine::EvalMarket(
    const SeedGroup& seeds, const std::vector<UserId>& users) const {
  const Problem& p = sim_.problem();
  std::vector<uint8_t> mask(p.NumUsers(), 0);
  for (UserId u : users) mask[u] = 1;
  MarketEval out;
  for (int s = 0; s < num_samples_; ++s) {
    SampleOutcome o = sim_.RunSample(seeds, static_cast<uint64_t>(s), &mask,
                                     /*keep_states=*/true, initial_states_);
    ++num_simulations_;
    out.sigma += o.sigma;
    out.sigma_market += o.sigma_market;
    out.pi += sim_.LikelihoodPi(o.states, users);
  }
  out.sigma /= num_samples_;
  out.sigma_market /= num_samples_;
  out.pi /= num_samples_;
  return out;
}

ExpectedState MonteCarloEngine::Expected(const SeedGroup& seeds) const {
  const Problem& p = sim_.problem();
  ExpectedState es(p.NumUsers(), p.NumItems(), p.NumMetas());
  const float inv = 1.0f / static_cast<float>(num_samples_);
  for (int s = 0; s < num_samples_; ++s) {
    SampleOutcome o = sim_.RunSample(seeds, static_cast<uint64_t>(s), nullptr,
                                     /*keep_states=*/true, initial_states_);
    ++num_simulations_;
    for (UserId u = 0; u < p.NumUsers(); ++u) {
      const pin::UserState& st = o.states[u];
      for (ItemId x : st.Adopted()) {
        es.adoption_prob_[static_cast<size_t>(u) * p.NumItems() + x] += inv;
      }
      const std::vector<float>& w = st.wmeta();
      for (int m = 0; m < p.NumMetas(); ++m) {
        es.avg_wmeta_[static_cast<size_t>(u) * p.NumMetas() + m] += w[m] * inv;
      }
    }
  }
  return es;
}

}  // namespace imdpp::diffusion
