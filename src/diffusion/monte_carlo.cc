#include "diffusion/monte_carlo.h"

#include <algorithm>

namespace imdpp::diffusion {

namespace {

/// Shard-count cap. Enough shards to load-balance any plausible core
/// count, few enough that per-shard partial state (one ExpectedState in
/// Expected()) stays small. Must depend on nothing but this constant and
/// the sample count: the shard layout IS the reduction tree, and a fixed
/// tree is what makes results bit-identical across thread counts.
constexpr int kMaxShards = 32;

}  // namespace

ExpectedState::ExpectedState(int num_users, int num_items, int num_metas)
    : num_users_(num_users),
      num_items_(num_items),
      num_metas_(num_metas),
      adoption_prob_(static_cast<size_t>(num_users) * num_items, 0.0f),
      avg_wmeta_(static_cast<size_t>(num_users) * num_metas, 0.0f) {}

double ExpectedState::AvgRel(const pin::PersonalItemNetwork& pin,
                             const std::vector<UserId>& users, ItemId x,
                             ItemId y, bool complementary) const {
  double s = 0.0;
  int n = 0;
  auto add = [&](UserId u) {
    std::span<const float> w = AvgWmeta(u);
    s += complementary ? pin.RelC(w, x, y) : pin.RelS(w, x, y);
    ++n;
  };
  if (users.empty()) {
    for (UserId u = 0; u < num_users_; ++u) add(u);
  } else {
    for (UserId u : users) add(u);
  }
  return n == 0 ? 0.0 : s / n;
}

double ExpectedState::AvgRelC(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/true);
}

double ExpectedState::AvgRelS(const pin::PersonalItemNetwork& pin,
                              const std::vector<UserId>& users, ItemId x,
                              ItemId y) const {
  return AvgRel(pin, users, x, y, /*complementary=*/false);
}

ExpectedState ExpectedState::InitialOf(const Problem& problem) {
  ExpectedState es(problem.NumUsers(), problem.NumItems(), problem.NumMetas());
  es.avg_wmeta_ = problem.wmeta0;
  return es;
}

MonteCarloEngine::MonteCarloEngine(const Problem& problem,
                                   const CampaignConfig& config,
                                   int num_samples, int num_threads)
    : sim_(problem, config),
      num_samples_(num_samples),
      num_threads_(util::ResolveNumThreads(num_threads)) {
  IMDPP_CHECK_GT(num_samples, 0);
}

int MonteCarloEngine::NumShards() const {
  return std::min(num_samples_, kMaxShards);
}

int MonteCarloEngine::ShardBegin(int shard) const {
  return static_cast<int>(static_cast<int64_t>(num_samples_) * shard /
                          NumShards());
}

bool MonteCarloEngine::RunsParallel() const {
  return num_threads_ > 1 && NumShards() > 1;
}

void MonteCarloEngine::RunShards(const std::function<void(int)>& fn) const {
  const int num_shards = NumShards();
  if (RunsParallel()) {
    if (pool_ == nullptr) {
      // More workers than shards could never claim a task, so cap the
      // spawn count; the shard layout (and thus the result) is unchanged.
      pool_ = std::make_unique<util::ThreadPool>(
          std::min(num_threads_, num_shards) - 1);
    }
    pool_->ParallelFor(num_shards, fn);
  } else {
    for (int shard = 0; shard < num_shards; ++shard) fn(shard);
  }
  num_simulations_ += num_samples_;
}

double MonteCarloEngine::Sigma(const SeedGroup& seeds) const {
  std::vector<double> partial(NumShards(), 0.0);
  RunShards([&](int shard) {
    double total = 0.0;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      total += sim_.RunSample(seeds, static_cast<uint64_t>(s), nullptr,
                              /*keep_states=*/false, initial_states_)
                   .sigma;
    }
    partial[shard] = total;
  });
  double total = 0.0;
  for (double p : partial) total += p;  // fixed shard order
  return total / num_samples_;
}

MonteCarloEngine::MarketEval MonteCarloEngine::EvalMarket(
    const SeedGroup& seeds, const std::vector<UserId>& users) const {
  const Problem& p = sim_.problem();
  std::vector<uint8_t> mask(p.NumUsers(), 0);
  for (UserId u : users) mask[u] = 1;
  std::vector<MarketEval> partial(NumShards());
  RunShards([&](int shard) {
    MarketEval acc;
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      SampleOutcome o = sim_.RunSample(seeds, static_cast<uint64_t>(s), &mask,
                                       /*keep_states=*/true, initial_states_);
      acc.sigma += o.sigma;
      acc.sigma_market += o.sigma_market;
      acc.pi += sim_.LikelihoodPi(o.states, users);
    }
    partial[shard] = acc;
  });
  MarketEval out;
  for (const MarketEval& acc : partial) {  // fixed shard order
    out.sigma += acc.sigma;
    out.sigma_market += acc.sigma_market;
    out.pi += acc.pi;
  }
  out.sigma /= num_samples_;
  out.sigma_market /= num_samples_;
  out.pi /= num_samples_;
  return out;
}

ExpectedState MonteCarloEngine::Expected(const SeedGroup& seeds) const {
  const Problem& p = sim_.problem();
  const int num_shards = NumShards();
  ExpectedState es(p.NumUsers(), p.NumItems(), p.NumMetas());
  // Raw per-shard sums (adoption counts, weighting totals), scaled by
  // 1/num_samples only after the shard-order fold so the arithmetic is
  // identical for every thread count.
  auto accumulate = [&](int shard, ExpectedState& acc) {
    const int end = ShardBegin(shard + 1);
    for (int s = ShardBegin(shard); s < end; ++s) {
      SampleOutcome o = sim_.RunSample(seeds, static_cast<uint64_t>(s), nullptr,
                                       /*keep_states=*/true, initial_states_);
      for (UserId u = 0; u < p.NumUsers(); ++u) {
        const pin::UserState& st = o.states[u];
        for (ItemId x : st.Adopted()) {
          acc.adoption_prob_[static_cast<size_t>(u) * p.NumItems() + x] +=
              1.0f;
        }
        const std::vector<float>& w = st.wmeta();
        for (int m = 0; m < p.NumMetas(); ++m) {
          acc.avg_wmeta_[static_cast<size_t>(u) * p.NumMetas() + m] += w[m];
        }
      }
    }
  };
  auto fold = [&](const ExpectedState& acc) {
    for (size_t i = 0; i < es.adoption_prob_.size(); ++i) {
      es.adoption_prob_[i] += acc.adoption_prob_[i];
    }
    for (size_t i = 0; i < es.avg_wmeta_.size(); ++i) {
      es.avg_wmeta_[i] += acc.avg_wmeta_[i];
    }
  };
  if (RunsParallel()) {
    // One partial per shard (workers complete out of order), folded in
    // shard order afterwards.
    std::vector<ExpectedState> partial(num_shards, es);
    RunShards([&](int shard) { accumulate(shard, partial[shard]); });
    for (const ExpectedState& acc : partial) fold(acc);
  } else {
    // Serial fallback: one scratch partial reused shard by shard — the
    // identical reduction tree at 1/num_shards-th the memory.
    ExpectedState scratch = es;
    for (int shard = 0; shard < num_shards; ++shard) {
      std::fill(scratch.adoption_prob_.begin(), scratch.adoption_prob_.end(),
                0.0f);
      std::fill(scratch.avg_wmeta_.begin(), scratch.avg_wmeta_.end(), 0.0f);
      accumulate(shard, scratch);
      fold(scratch);
    }
    num_simulations_ += num_samples_;
  }
  const float inv = 1.0f / static_cast<float>(num_samples_);
  for (float& v : es.adoption_prob_) v *= inv;
  for (float& v : es.avg_wmeta_) v *= inv;
  return es;
}

}  // namespace imdpp::diffusion
