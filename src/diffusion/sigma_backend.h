// The pluggable σ-evaluation seam (ISSUE 7 tentpole): every planner and
// baseline estimates σ(S), the market-restricted σ_τ / π_τ, and the
// expected end-of-campaign state through the abstract SigmaBackend below,
// and backends register by name exactly like planners and datasets do.
//
// The estimation contract every backend must honor:
//   * Sigma / EvalMarket / Expected are pure functions of (problem,
//     campaign config, base_seed, num_samples, seed group [, market]) —
//     bit-identical across calls, thread counts, and processes. All
//     randomness must be counter-based (util/hash.h), never stateful.
//   * Estimates for different seed groups under one backend instance are
//     *paired* (common random numbers): backend.Sigma(S ∪ {s}) −
//     backend.Sigma(S) must be a low-variance paired estimate of the
//     marginal gain, because greedy selection everywhere in this repo
//     compares estimates, not absolute values. Backends achieve this by
//     reusing the same sampled worlds (realizations, sketches) for every
//     query they answer.
//   * Work done per estimate is booked through the num_simulations /
//     num_rounds_* / num_memo_hits counters so reports stay comparable
//     across backends.
//
// Registered backends:
//   * "mc"  — MonteCarloEngine (diffusion/monte_carlo.h): forward
//     re-simulation of the full dynamic-perception process. The accuracy
//     reference; exact in expectation.
//   * "ris" — RisBackend (diffusion/ris_backend.h): reverse-reachable
//     sketches built once per (graph, dynamics, seed, θ) as a prep::
//     artifact, answering σ by coverage counting. A static first-order
//     approximation that trades accuracy for orders-of-magnitude cheaper
//     queries at scale.
#ifndef IMDPP_DIFFUSION_SIGMA_BACKEND_H_
#define IMDPP_DIFFUSION_SIGMA_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "diffusion/adaptive_eval.h"
#include "diffusion/campaign_simulator.h"
#include "util/cancel.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace imdpp::prep {
class RisSketchCache;
}  // namespace imdpp::prep

namespace imdpp::diffusion {

class MonteCarloEngine;
class CheckpointedEval;

/// Sample-averaged end-of-campaign state.
class ExpectedState {
 public:
  ExpectedState(int num_users, int num_items, int num_metas);

  double AdoptionProb(UserId u, ItemId x) const {
    return adoption_prob_[static_cast<size_t>(u) * num_items_ + x];
  }
  std::span<const float> AvgWmeta(UserId u) const {
    return {avg_wmeta_.data() + static_cast<size_t>(u) * num_metas_,
            static_cast<size_t>(num_metas_)};
  }

  /// Average complementary relevance r̄^C_{x,y} over `users` (all users if
  /// empty), evaluated at each user's expected weightings.
  double AvgRelC(const pin::PersonalItemNetwork& pin,
                 const std::vector<UserId>& users, ItemId x, ItemId y) const;
  double AvgRelS(const pin::PersonalItemNetwork& pin,
                 const std::vector<UserId>& users, ItemId x, ItemId y) const;

  int num_users() const { return num_users_; }

  /// Expected state before any promotion: zero adoptions, initial Wmeta.
  static ExpectedState InitialOf(const Problem& problem);

 private:
  friend class MonteCarloEngine;
  friend class CheckpointedEval;
  double AvgRel(const pin::PersonalItemNetwork& pin,
                const std::vector<UserId>& users, ItemId x, ItemId y,
                bool complementary) const;

  int num_users_;
  int num_items_;
  int num_metas_;
  std::vector<float> adoption_prob_;  ///< |V| x |I|
  std::vector<float> avg_wmeta_;      ///< |V| x M
};

/// Joint σ / σ_τ / π_τ estimate (the market triple of Eq. 13).
struct MarketEval {
  double sigma = 0.0;         ///< campaign-wide σ̂
  double sigma_market = 0.0;  ///< σ̂ restricted to the market's users
  double pi = 0.0;            ///< likelihood π̂_τ (Eq. 13)
};

/// What a backend can and cannot do — rendered by `imdpp backends`.
struct BackendCapabilities {
  /// Re-runs the full dynamic-perception diffusion per estimate (Wmeta
  /// updates, associations, multi-step rounds). False = static
  /// approximation with frozen initial dynamics.
  bool resimulates_dynamics = false;
  /// EvalMarket fills the likelihood π̂_τ (Eq. 13). False = pi is 0.
  bool market_likelihood_pi = false;
  /// MakeScheduleEval reuses promotion-round prefixes across estimates
  /// (checkpointing) instead of plain forwarding.
  bool prefix_checkpointing = false;
  /// Supports starting realizations from an observed state
  /// (SetInitialStates-style adaptive replanning).
  bool initial_state_override = false;
  /// Builds a content-hash-keyed prep:: sketch artifact at first use.
  bool sketch_prep = false;
  /// SelectBest honors eval.adaptive.* sequential stopping (racing on
  /// paired differences). Backends without it still answer SelectBest —
  /// via the fixed-count reference loop — but never stop early.
  bool select_best = false;
};

/// One racer in a SelectBest argmax: a seed group plus an optional score
/// map applied to its evaluation. The score must be affine in the
/// MarketEval components (every greedy loop's is: σ itself, gain/cost
/// ratios, TDSI's SI) so that scoring per-sample values and averaging
/// commutes with scoring the averaged estimate.
struct SelectCandidate {
  SeedGroup group;
  /// Null = score by .sigma. Called with the mean estimate on the fixed
  /// path and with single-sample values during adaptive racing; capture
  /// any constants (the base eval, costs) by value.
  std::function<double(const MarketEval&)> score;
};

/// How a SelectBest argmax runs.
struct SelectOptions {
  /// enabled=false (the default) = the fixed-count reference loop:
  /// bit-identical estimates, call order and side effects to the hand
  /// written loops it replaced.
  AdaptiveEvalConfig adaptive;
  /// Evaluate candidates through EvalMarket (σ, σ_τ, π̂) instead of
  /// Sigma. Only meaningful on a ScheduleEval bound to a market.
  bool use_market = false;
  /// The winner must strictly beat this (the fixed loops' initial best:
  /// −inf for TDSI, −1 for timing placement, 0 for gain/cost ratios).
  /// No candidate above it => best_index = −1.
  double min_score = -std::numeric_limits<double>::infinity();
};

/// The outcome of a SelectBest argmax.
struct SelectBestResult {
  /// Winning candidate, or −1 (nothing beat min_score, or the backend's
  /// cancel token fired mid-race — callers check the token either way).
  int best_index = -1;
  /// The winner's full-precision score (adaptive mode re-evaluates the
  /// winner at the full sample count through the normal estimate path,
  /// so downstream arithmetic sees exactly the bits a direct call would).
  double best_score = -std::numeric_limits<double>::infinity();
  /// The winner's full-precision evaluation (sigma only when scoring
  /// through Sigma).
  MarketEval best_eval;
  /// Realizations actually simulated across all candidates (racing) or
  /// candidates × num_samples (fixed).
  int64_t samples_used = 0;
};

/// One backend-owned evaluator bound to a mutable *base* seed group (and
/// optionally a fixed market): the shape TDSI's PickBest, the greedy
/// timing placement, and Dysim's DRE loop evaluate through. Backends with
/// prefix reuse (MC checkpoints) return an accelerated implementation
/// from MakeScheduleEval; the default simply forwards to the backend.
/// Single-owner (not thread-safe); estimates are charged to the backend.
class ScheduleEval {
 public:
  virtual ~ScheduleEval() = default;

  /// σ̂(group), bit-identical to backend.Sigma(group).
  virtual double Sigma(const SeedGroup& group) = 0;
  /// Joint σ/σ_τ/π estimate of `group` for the fixed market.
  virtual MarketEval EvalMarket(const SeedGroup& group) = 0;
  /// Expected end-of-campaign state under `group`.
  virtual ExpectedState Expected(const SeedGroup& group) = 0;
  /// Adopts `base` as the new base group (prefix-reusing implementations
  /// keep the checkpoints of every round before the first divergence).
  virtual void Rebase(SeedGroup base) = 0;
  virtual const SeedGroup& base() const = 0;

  /// Greedy argmax over `candidates` (ISSUE 10). The base implementation
  /// is the fixed-count reference loop: evaluates every candidate in
  /// order through Sigma/EvalMarket — the identical call sequence, memo
  /// traffic and bits as the hand-written loops it replaced — and keeps
  /// the strict-`>` running best. Backends with sequential stopping
  /// override it and race when options.adaptive.enabled.
  virtual SelectBestResult SelectBest(
      const std::vector<SelectCandidate>& candidates,
      const SelectOptions& options);
};

/// Abstract σ-evaluation backend. See the file comment for the estimation
/// contract. Estimate entry points are const and safe to share across
/// threads at estimate granularity (implementations serialize internally);
/// the non-const members (EnableSigmaMemo) are setup-phase only.
class SigmaBackend {
 public:
  virtual ~SigmaBackend() = default;

  /// Registry key ("mc", "ris").
  virtual std::string_view name() const = 0;
  /// One-line summary for `imdpp backends`.
  virtual std::string_view description() const = 0;
  virtual BackendCapabilities capabilities() const = 0;

  /// σ̂(S): mean importance-weighted adoptions.
  virtual double Sigma(const SeedGroup& seeds) const = 0;
  /// Joint estimate of σ, σ_τ and π_τ for the market `users` in one pass.
  virtual MarketEval EvalMarket(const SeedGroup& seeds,
                                const std::vector<UserId>& users) const = 0;
  /// Expected end-of-campaign state under `seeds`.
  virtual ExpectedState Expected(const SeedGroup& seeds) const = 0;

  /// Greedy σ-scored argmax over `candidates` (ISSUE 10; the engine-level
  /// twin of ScheduleEval::SelectBest, for consumers without a bound
  /// market — options.use_market is not supported here). The base
  /// implementation is the fixed-count reference loop over Sigma();
  /// backends flagged capabilities().select_best race with sequential
  /// stopping when options.adaptive.enabled.
  virtual SelectBestResult SelectBest(
      const std::vector<SelectCandidate>& candidates,
      const SelectOptions& options) const;

  /// Opts in to memoizing estimates by exact input (identical input =>
  /// identical estimate): Sigma() by seed vector, EvalMarket() by
  /// (seed vector, market user list). Off by default to keep the
  /// work-counter semantics of plain backends.
  virtual void EnableSigmaMemo(size_t max_entries = 1 << 14) = 0;

  /// An evaluator bound to `base` (and `market`, for EvalMarket). The
  /// base-class implementation forwards every call to this backend;
  /// backends with prefix reuse override it.
  virtual std::unique_ptr<ScheduleEval> MakeScheduleEval(
      SeedGroup base, std::vector<UserId> market = {}) const;

  /// The underlying campaign simulator — the problem/dynamics surface
  /// (`simulator().problem()`, `simulator().dynamics().pin()`) planners
  /// read regardless of how σ is estimated.
  virtual const CampaignSimulator& simulator() const = 0;

  /// Realizations (or sketch-budget equivalent) per estimate.
  virtual int num_samples() const = 0;
  /// Resolved executor count (>= 0; 0 and 1 both mean serial).
  virtual int num_threads() const = 0;

  /// Work counters (see monte_carlo.h for the mc semantics; every backend
  /// keeps simulated + skipped equal to the naive T-rounds-per-sample
  /// total over the estimates it was asked for).
  virtual int64_t num_simulations() const = 0;
  virtual int64_t num_rounds_simulated() const = 0;
  virtual int64_t num_rounds_skipped() const = 0;
  virtual int64_t num_memo_hits() const = 0;

  /// Adaptive-selection effect counters (ISSUE 10): candidate-blocks
  /// raced, candidates eliminated before the sample cap, and realizations
  /// the fixed-count path would have spent on resolved comparisons.
  /// Zero on backends without sequential stopping (and on every fixed
  /// run), so the report channel stays uniform.
  virtual int64_t num_blocks_run() const { return 0; }
  virtual int64_t num_early_stops() const { return 0; }
  virtual int64_t num_samples_saved() const { return 0; }

  /// Books this backend's work into `out` under the canonical
  /// util::metric names: the four counters above plus the histogram of
  /// every σ̂ the backend returned (eval.sigma_hat). Backends with
  /// extra instrumentation (ris sketch counters) extend this.
  virtual void AddMetrics(util::MetricsSnapshot& out) const;

  /// Just the σ̂ histogram — for backends that embed another backend
  /// (ris → mc fallback) and must merge the inner distribution without
  /// double-booking the inner counters.
  void AddSigmaHistogram(util::MetricsSnapshot& out) const;

  /// The CancelToken this backend's estimates check and latch errors onto
  /// (ISSUE 8): an injected eval fault or an expired deadline fires the
  /// token, estimates short-circuit, and the run's owner reads the
  /// latched Status here. Never null for the builtin backends (an engine
  /// given no token makes a private one so fault propagation always has a
  /// channel); may be null for minimal test doubles.
  virtual const util::CancelToken* cancel_token() const { return nullptr; }

 protected:
  /// Estimate paths call this with every σ̂ they return (memoized or
  /// computed) to feed the eval.sigma_hat histogram. Thread-safe; the
  /// histogram is merge-order-invariant, so recording order cannot
  /// leak into reports.
  void RecordSigmaEstimate(double sigma) const;

 private:
  mutable util::Mutex stats_mu_;
  mutable util::HistogramData sigma_estimates_ IMDPP_GUARDED_BY(stats_mu_);
};

/// Which backend to build and its backend-specific knobs — the value that
/// travels PlannerConfig → DysimConfig/BaselineConfig → MakeSigmaBackend.
struct SigmaBackendSpec {
  std::string name = "mc";
  /// "ris": reverse-reachable sketches per sketch set (θ).
  int ris_sketches = 4096;
  /// Optional shared sketch-artifact cache (sessions inject theirs so
  /// planners and sweeps reuse one build per dataset); null = the backend
  /// builds a private sketch set.
  std::shared_ptr<prep::RisSketchCache> sketch_cache;
  /// Cooperative cancellation/deadline token for every estimate this
  /// backend answers (ISSUE 8). Null = the backend creates a private
  /// token (still the fault-propagation channel, but nobody external
  /// cancels it).
  std::shared_ptr<util::CancelToken> cancel;
  /// Opt-in graceful degradation (ISSUE 8, prong 4): non-empty = a "ris"
  /// backend whose sketch build fails answers from its embedded
  /// Monte-Carlo engine (the named backend, in practice "mc") instead of
  /// failing the run; the degradation books one `fallbacks` counter.
  std::string fallback_backend;
  /// Sequential-stopping knobs for SelectBest argmax racing (ISSUE 10;
  /// `eval.adaptive.*` / --adaptive). Disabled by default — the fixed
  /// count path is the determinism reference. Consumers read this off
  /// their config's backend spec and pass it through SelectOptions.
  AdaptiveEvalConfig adaptive;
};

/// Everything a backend factory gets to build an instance: the engine
/// constructor arguments of the pre-seam era plus the spec.
struct SigmaBackendContext {
  const Problem* problem = nullptr;
  CampaignConfig campaign;
  int num_samples = 0;
  int num_threads = util::kAutoThreads;
  std::shared_ptr<util::ThreadPool> shared_pool;
  SigmaBackendSpec spec;
};

/// String-keyed backend registry, mirroring api::PlannerRegistry and
/// data::DatasetRegistry (one util::Registry under the hood): duplicate
/// names abort, Names() is sorted, misses report the sorted known keys.
class SigmaBackendRegistry {
 public:
  using Factory =
      std::unique_ptr<SigmaBackend> (*)(const SigmaBackendContext& context);

  /// Registers `factory` under `name`; aborts on duplicates. Meant to be
  /// called from namespace-scope initializers via
  /// IMDPP_REGISTER_SIGMA_BACKEND.
  static bool Register(std::string name, Factory factory);

  /// Builds the backend registered under `name`, or returns nullptr.
  static std::unique_ptr<SigmaBackend> Create(
      std::string_view name, const SigmaBackendContext& context);

  /// Like Create, but prints UnknownMessage and aborts on a miss.
  static std::unique_ptr<SigmaBackend> CreateOrDie(
      std::string_view name, const SigmaBackendContext& context);

  static bool Has(std::string_view name);

  /// Sorted registered names.
  static std::vector<std::string> Names();

  /// `unknown backend "name"; registered: mc ris`.
  static std::string UnknownMessage(std::string_view name);
};

/// Builds the backend `spec` names with CreateOrDie semantics — the one
/// construction path planners, baselines and the session all use. Callers
/// with user-provided names validate via SigmaBackendRegistry::Has first.
std::unique_ptr<SigmaBackend> MakeSigmaBackend(
    const SigmaBackendSpec& spec, const Problem& problem,
    const CampaignConfig& campaign, int num_samples, int num_threads,
    std::shared_ptr<util::ThreadPool> shared_pool);

namespace internal {
/// Linker anchors: the builtin backends self-register from their own
/// translation units; referencing these no-op functions from every
/// registry lookup keeps those TUs linked into static binaries.
void AnchorMcBackend();   // defined in monte_carlo.cc
void AnchorRisBackend();  // defined in ris_backend.cc
void EnsureBuiltinSigmaBackends();
}  // namespace internal

/// Registers `fn` (a `std::unique_ptr<SigmaBackend>(const
/// SigmaBackendContext&)` factory) under `key` at static-init time.
#define IMDPP_REGISTER_SIGMA_BACKEND(key, fn)                               \
  [[maybe_unused]] static const bool imdpp_backend_registered_##fn =        \
      ::imdpp::diffusion::SigmaBackendRegistry::Register(                   \
          key, +[](const ::imdpp::diffusion::SigmaBackendContext& context)  \
                   -> std::unique_ptr<::imdpp::diffusion::SigmaBackend> {   \
            return fn(context);                                             \
          })

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_SIGMA_BACKEND_H_
