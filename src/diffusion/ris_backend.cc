#include "diffusion/ris_backend.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/fault_injection.h"
#include "util/trace.h"

namespace imdpp::diffusion {

RisBackend::RisBackend(const Problem& problem, const CampaignConfig& config,
                       int num_samples, int num_threads,
                       std::shared_ptr<util::ThreadPool> shared_pool,
                       SigmaBackendSpec spec)
    : problem_(problem),
      cancel_(spec.cancel != nullptr
                  ? std::shared_ptr<const util::CancelToken>(spec.cancel)
                  : std::make_shared<const util::CancelToken>()),
      mc_(problem, config, num_samples, num_threads, shared_pool, cancel_),
      spec_(std::move(spec)),
      pool_(std::move(shared_pool)),
      build_threads_(num_threads) {}

util::Status RisBackend::EnsureSketches() const {
  if (sketches_ != nullptr) return util::OkStatus();
  util::StatusOr<prep::RisSketchLease> lease = prep::AcquireRisSketches(
      spec_.sketch_cache, problem_, mc_.simulator().config(),
      spec_.ris_sketches, pool_, build_threads_, cancel_);
  if (!lease.ok()) return lease.status();
  sketches_ = lease->sketches;
  sketch_builds_ += lease->built ? 1 : 0;
  sketch_reuses_ += lease->reused ? 1 : 0;
  covered_mark_.assign(static_cast<size_t>(sketches_->num_sketches()), 0);
  covered_epoch_ = 0;
  return util::OkStatus();
}

bool RisBackend::BeginEstimate() const {
  util::Status fault = util::FaultInjector::Global().Hit("eval.sigma");
  if (!fault.ok()) cancel_->Cancel(std::move(fault));
  return cancel_->Check().ok();
}

bool RisBackend::HandleSketchFailure(util::Status status) const {
  // A cancellation or deadline is the run ending, not a sketch problem:
  // never degrade on it (the token already carries, or now gets, the
  // reason and the estimate just gives up).
  if (cancel_->Fired() ||
      status.code() == util::StatusCode::kCancelled ||
      status.code() == util::StatusCode::kDeadlineExceeded) {
    cancel_->Cancel(std::move(status));  // no-op if already fired
    return false;
  }
  if (spec_.fallback_backend.empty()) {
    // No fallback configured: the build error is the run's error.
    cancel_->Cancel(std::move(status));
    return false;
  }
  // Graceful degradation (ISSUE 8, prong 4): answer every estimate from
  // the embedded Monte-Carlo engine from here on. Booked once.
  degraded_ = true;
  util::BookFallback();
  return true;
}

int64_t RisBackend::CountCovered(const SeedGroup& seeds,
                                 const std::vector<uint8_t>* market_mask,
                                 int64_t* covered_market) const {
  const prep::RisSketchSet& sk = *sketches_;
  ++num_coverage_queries_;
  ++covered_epoch_;
  if (covered_epoch_ == 0) {  // epoch wrap: stamps are stale, reset them
    std::fill(covered_mark_.begin(), covered_mark_.end(), 0u);
    covered_epoch_ = 1;
  }
  int64_t covered = 0;
  int64_t market = 0;
  for (const Seed& s : seeds) {
    for (int32_t j : sk.Postings(s.user, s.item)) {
      if (covered_mark_[static_cast<size_t>(j)] == covered_epoch_) continue;
      covered_mark_[static_cast<size_t>(j)] = covered_epoch_;
      ++covered;
      if (market_mask != nullptr &&
          (*market_mask)[static_cast<size_t>(sk.root_user(j))] != 0) {
        ++market;
      }
    }
  }
  if (covered_market != nullptr) *covered_market = market;
  return covered;
}

const std::vector<uint8_t>* RisBackend::CachedMask(
    const std::vector<UserId>& users) const {
  if (!mask_valid_ || mask_users_ != users) {
    mask_users_ = users;
    mask_.assign(static_cast<size_t>(problem_.NumUsers()), 0);
    for (UserId u : users) mask_[static_cast<size_t>(u)] = 1;
    mask_valid_ = true;
  }
  return &mask_;
}

void RisBackend::ChargeEstimate() const {
  num_rounds_skipped_ += static_cast<int64_t>(mc_.num_samples()) *
                         problem_.num_promotions;
}

double RisBackend::Sigma(const SeedGroup& seeds) const {
  util::trace::Span span("ris.sigma");
  {
    util::MutexLock lock(mu_);
    if (!degraded_) {
      if (!BeginEstimate()) return 0.0;
      if (MemoEnabled()) {
        auto it = sigma_memo_.find(seeds);
        if (it != sigma_memo_.end()) {
          ++num_memo_hits_;
          ChargeEstimate();
          RecordSigmaEstimate(it->second);
          return it->second;
        }
      }
      util::Status acquired = EnsureSketches();
      if (acquired.ok()) {
        const double sigma =
            sketches_->scale_per_sketch() *
            static_cast<double>(CountCovered(seeds, nullptr, nullptr));
        ChargeEstimate();
        if (MemoEnabled() && sigma_memo_.size() < sigma_memo_capacity_) {
          sigma_memo_.emplace(seeds, sigma);
        }
        RecordSigmaEstimate(sigma);
        return sigma;
      }
      if (!HandleSketchFailure(std::move(acquired))) return 0.0;
    }
  }
  // Degraded: the embedded engine answers (outside mu_ — it takes its own
  // mutex) and runs its own estimate-entry gate.
  return mc_.Sigma(seeds);
}

MarketEval RisBackend::EvalMarket(const SeedGroup& seeds,
                                  const std::vector<UserId>& users) const {
  util::trace::Span span("ris.eval_market");
  {
    util::MutexLock lock(mu_);
    if (!degraded_) {
      if (!BeginEstimate()) return MarketEval{};
      if (MemoEnabled()) {
        auto market_it = market_memo_.find(users);
        if (market_it != market_memo_.end()) {
          auto it = market_it->second.find(seeds);
          if (it != market_it->second.end()) {
            ++num_memo_hits_;
            ChargeEstimate();
            RecordSigmaEstimate(it->second.sigma);
            return it->second;
          }
        }
      }
      util::Status acquired = EnsureSketches();
      if (acquired.ok()) {
        const std::vector<uint8_t>* mask = CachedMask(users);
        int64_t covered_market = 0;
        const int64_t covered = CountCovered(seeds, mask, &covered_market);
        MarketEval out;
        out.sigma =
            sketches_->scale_per_sketch() * static_cast<double>(covered);
        out.sigma_market = sketches_->scale_per_sketch() *
                           static_cast<double>(covered_market);
        out.pi = 0.0;  // no likelihood model on sketches (see header)
        ChargeEstimate();
        if (MemoEnabled() && market_memo_entries_ < sigma_memo_capacity_) {
          if (market_memo_[users].emplace(seeds, out).second) {
            ++market_memo_entries_;
          }
        }
        RecordSigmaEstimate(out.sigma);
        return out;
      }
      if (!HandleSketchFailure(std::move(acquired))) return MarketEval{};
    }
  }
  // Degraded: full Monte-Carlo semantics, including a real π̂.
  return mc_.EvalMarket(seeds, users);
}

ExpectedState RisBackend::Expected(const SeedGroup& seeds) const {
  return mc_.Expected(seeds);
}

void RisBackend::AddMetrics(util::MetricsSnapshot& out) const {
  // Base booking first (the virtual accessors above already merge the
  // embedded engine's counters into the totals), then the inner
  // engine's σ̂ distribution, then the ris-specific counters.
  SigmaBackend::AddMetrics(out);
  mc_.AddSigmaHistogram(out);
  util::MutexLock lock(mu_);
  out.AddCounter(util::metric::kRisSketchBuilds, sketch_builds_);
  out.AddCounter(util::metric::kRisSketchReuses, sketch_reuses_);
  out.AddCounter(util::metric::kRisCoverageQueries, num_coverage_queries_);
}

namespace {

std::unique_ptr<SigmaBackend> MakeRisBackend(
    const SigmaBackendContext& context) {
  return std::make_unique<RisBackend>(*context.problem, context.campaign,
                                      context.num_samples,
                                      context.num_threads,
                                      context.shared_pool, context.spec);
}

IMDPP_REGISTER_SIGMA_BACKEND("ris", MakeRisBackend);

}  // namespace

namespace internal {
// Linker anchor (see sigma_backend.h): keeps this translation unit — and
// the self-registration above — in statically linked binaries.
void AnchorRisBackend() {}
}  // namespace internal

}  // namespace imdpp::diffusion
