#include "diffusion/sigma_backend.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/check.h"
#include "util/registry.h"

namespace imdpp::diffusion {

namespace {

/// Default ScheduleEval: no prefix reuse, every call is a plain backend
/// estimate against the stored base/market. Correct for any backend whose
/// estimates are cheap enough not to need checkpoints (e.g. "ris").
class ForwardingScheduleEval final : public ScheduleEval {
 public:
  ForwardingScheduleEval(const SigmaBackend& backend, SeedGroup base,
                         std::vector<UserId> market)
      : backend_(backend),
        base_(std::move(base)),
        market_(std::move(market)) {}

  double Sigma(const SeedGroup& group) override {
    return backend_.Sigma(group);
  }
  MarketEval EvalMarket(const SeedGroup& group) override {
    IMDPP_CHECK(!market_.empty());
    return backend_.EvalMarket(group, market_);
  }
  ExpectedState Expected(const SeedGroup& group) override {
    return backend_.Expected(group);
  }
  void Rebase(SeedGroup base) override { base_ = std::move(base); }
  const SeedGroup& base() const override { return base_; }

 private:
  const SigmaBackend& backend_;
  SeedGroup base_;
  std::vector<UserId> market_;
};

/// Meyers singleton: safe against static-initialization ordering with the
/// self-registration statics in the backend translation units.
util::Registry<SigmaBackendRegistry::Factory>& Impl() {
  static auto* registry =
      new util::Registry<SigmaBackendRegistry::Factory>("backend");
  return *registry;
}

}  // namespace

std::unique_ptr<ScheduleEval> SigmaBackend::MakeScheduleEval(
    SeedGroup base, std::vector<UserId> market) const {
  return std::make_unique<ForwardingScheduleEval>(*this, std::move(base),
                                                  std::move(market));
}

SelectBestResult ScheduleEval::SelectBest(
    const std::vector<SelectCandidate>& candidates,
    const SelectOptions& options) {
  // The fixed-count reference loop: evaluate every candidate in order —
  // the identical estimate sequence (memo traffic, fault-schedule hits,
  // σ̂ histogram entries and bits) as the hand-written argmax loops this
  // entry point replaced. Backends without a sequential-stopping
  // override run this even when options.adaptive.enabled (correct, just
  // never early-stopping — e.g. "ris", whose warm σ̂ is already ~free).
  SelectBestResult result;
  result.best_score = options.min_score;
  for (size_t i = 0; i < candidates.size(); ++i) {
    MarketEval eval;
    if (options.use_market) {
      eval = EvalMarket(candidates[i].group);
    } else {
      eval.sigma = Sigma(candidates[i].group);
    }
    const double score =
        candidates[i].score ? candidates[i].score(eval) : eval.sigma;
    if (score > result.best_score) {
      result.best_score = score;
      result.best_index = static_cast<int>(i);
      result.best_eval = eval;
    }
  }
  return result;
}

SelectBestResult SigmaBackend::SelectBest(
    const std::vector<SelectCandidate>& candidates,
    const SelectOptions& options) const {
  // Engine-level twin of ScheduleEval::SelectBest (same reference-loop
  // semantics); σ-scored only — market-scored argmaxes go through a
  // ScheduleEval bound to the market.
  IMDPP_CHECK(!options.use_market);
  SelectBestResult result;
  result.best_score = options.min_score;
  for (size_t i = 0; i < candidates.size(); ++i) {
    MarketEval eval;
    eval.sigma = Sigma(candidates[i].group);
    const double score =
        candidates[i].score ? candidates[i].score(eval) : eval.sigma;
    if (score > result.best_score) {
      result.best_score = score;
      result.best_index = static_cast<int>(i);
      result.best_eval = eval;
    }
  }
  result.samples_used =
      static_cast<int64_t>(candidates.size()) * num_samples();
  return result;
}

void SigmaBackend::RecordSigmaEstimate(double sigma) const {
  util::MutexLock lock(stats_mu_);
  if (sigma_estimates_.bounds.empty()) {
    sigma_estimates_.bounds = util::DefaultValueBounds();
  }
  sigma_estimates_.Observe(sigma);
}

void SigmaBackend::AddSigmaHistogram(util::MetricsSnapshot& out) const {
  util::MutexLock lock(stats_mu_);
  if (sigma_estimates_.empty()) return;
  out.MergeHistogram(util::metric::kEvalSigmaHat, sigma_estimates_);
}

void SigmaBackend::AddMetrics(util::MetricsSnapshot& out) const {
  out.AddCounter(util::metric::kEvalSimulations, num_simulations());
  out.AddCounter(util::metric::kEvalRoundsSimulated, num_rounds_simulated());
  out.AddCounter(util::metric::kEvalRoundsSkipped, num_rounds_skipped());
  out.AddCounter(util::metric::kEvalMemoHits, num_memo_hits());
  out.AddCounter(util::metric::kEvalBlocksRun, num_blocks_run());
  out.AddCounter(util::metric::kEvalEarlyStops, num_early_stops());
  out.AddCounter(util::metric::kEvalSamplesSaved, num_samples_saved());
  AddSigmaHistogram(out);
}

bool SigmaBackendRegistry::Register(std::string name, Factory factory) {
  return Impl().Register(std::move(name), factory);
}

std::unique_ptr<SigmaBackend> SigmaBackendRegistry::Create(
    std::string_view name, const SigmaBackendContext& context) {
  internal::EnsureBuiltinSigmaBackends();
  const Factory* factory = Impl().Find(name);
  if (factory == nullptr) return nullptr;
  IMDPP_CHECK(context.problem != nullptr);
  return (*factory)(context);
}

std::unique_ptr<SigmaBackend> SigmaBackendRegistry::CreateOrDie(
    std::string_view name, const SigmaBackendContext& context) {
  std::unique_ptr<SigmaBackend> backend = Create(name, context);
  if (backend == nullptr) {
    std::fprintf(stderr, "%s\n", UnknownMessage(name).c_str());
    std::abort();
  }
  return backend;
}

bool SigmaBackendRegistry::Has(std::string_view name) {
  internal::EnsureBuiltinSigmaBackends();
  return Impl().Has(name);
}

std::vector<std::string> SigmaBackendRegistry::Names() {
  internal::EnsureBuiltinSigmaBackends();
  return Impl().Names();
}

std::string SigmaBackendRegistry::UnknownMessage(std::string_view name) {
  internal::EnsureBuiltinSigmaBackends();
  return Impl().UnknownMessage(name);
}

std::unique_ptr<SigmaBackend> MakeSigmaBackend(
    const SigmaBackendSpec& spec, const Problem& problem,
    const CampaignConfig& campaign, int num_samples, int num_threads,
    std::shared_ptr<util::ThreadPool> shared_pool) {
  SigmaBackendContext context;
  context.problem = &problem;
  context.campaign = campaign;
  context.num_samples = num_samples;
  context.num_threads = num_threads;
  context.shared_pool = std::move(shared_pool);
  context.spec = spec;
  return SigmaBackendRegistry::CreateOrDie(spec.name, context);
}

namespace internal {

void EnsureBuiltinSigmaBackends() {
  AnchorMcBackend();
  AnchorRisBackend();
}

}  // namespace internal

}  // namespace imdpp::diffusion
