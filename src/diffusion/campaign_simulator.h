// One Monte-Carlo realization of the multi-promotion diffusion process of
// Sec. III, with the dynamic factors of Sec. V-A applied after every step.
//
// Process per promotion t:
//   ζ_t = 0: seeds (u,x,t) adopt x (if not yet adopted) and become the
//            frontier; perception weights update.
//   ζ_t ≥ 1: every (u', x) in the frontier promotes x to each out-neighbor
//            u that has not adopted x. Adoption fires with probability
//            Pact(u',u) * Ppref(u,x) (IC) or via accumulated-threshold (LT).
//            Being promoted x also triggers extra adoptions of relevant
//            items y with probability Pext (item associations), flipped
//            independently. Adoptions commit at the end of the step; then
//            the adopters' meta-graph weightings update (which implicitly
//            updates preferences, influence strengths and associations for
//            the next step — the ripple effect).
//   The promotion ends when a step produces no adoption; then t+1 starts
//   from the resulting state.
//
// All coin flips are counter-based hashes of
// (sample_seed, t, ζ, u', u, item, purpose), so realizations are
// reproducible and common across seed-group variations.
#ifndef IMDPP_DIFFUSION_CAMPAIGN_SIMULATOR_H_
#define IMDPP_DIFFUSION_CAMPAIGN_SIMULATOR_H_

#include <memory>
#include <vector>

#include "diffusion/problem.h"
#include "diffusion/seed.h"
#include "pin/dynamics.h"
#include "pin/user_state.h"

namespace imdpp::diffusion {

enum class DiffusionModel { kIndependentCascade, kLinearThreshold };

struct CampaignConfig {
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Safety cap on steps within one promotion.
  int max_steps = 64;
  /// Base seed mixed into every coin flip.
  uint64_t base_seed = 0x1234abcdULL;
};

/// Outcome of one realization.
struct SampleOutcome {
  /// Importance-weighted adoptions over the whole campaign (the σ summand).
  double sigma = 0.0;
  /// Same, restricted to users with market_mask[u] != 0 (0 if no mask).
  double sigma_market = 0.0;
  /// Unweighted adoption count.
  int adoptions = 0;
  /// Final user states (only if keep_states was requested).
  std::vector<pin::UserState> states;
};

class CampaignSimulator {
 public:
  CampaignSimulator(const Problem& problem, const CampaignConfig& config);

  /// Runs realization `sample_idx` of the campaign induced by `seeds`.
  /// `market_mask` (optional, size |V|) restricts sigma_market.
  /// `keep_states` returns the final per-user states (for π / expected
  /// perception extraction). `initial_states` (optional) starts the
  /// campaign from a previously observed state instead of the problem's
  /// initial preferences/weightings — the hook for adaptive IM (Sec. V-D).
  SampleOutcome RunSample(
      const SeedGroup& seeds, uint64_t sample_idx,
      const std::vector<uint8_t>* market_mask = nullptr,
      bool keep_states = false,
      const std::vector<pin::UserState>* initial_states = nullptr) const;

  /// Likelihood π_τ(SG) of Eq. 13 evaluated on the final states of one
  /// realization: Σ_{v ∈ market} Σ_{y ∉ A(v)} AIS(v,y) * Ppref(v,y), where
  /// AIS aggregates the dynamic influence of v's in-neighbors that have
  /// adopted y (IC form: 1 - Π(1 - Pact); LT form: Σ Pact capped at 1).
  double LikelihoodPi(const std::vector<pin::UserState>& states,
                      const std::vector<UserId>& market) const;

  const Problem& problem() const { return problem_; }
  const pin::Dynamics& dynamics() const { return *dynamics_; }
  const CampaignConfig& config() const { return config_; }

 private:
  const Problem& problem_;
  CampaignConfig config_;
  std::unique_ptr<pin::Dynamics> dynamics_;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_CAMPAIGN_SIMULATOR_H_
