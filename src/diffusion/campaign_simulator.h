// One Monte-Carlo realization of the multi-promotion diffusion process of
// Sec. III, with the dynamic factors of Sec. V-A applied after every step.
//
// Process per promotion t:
//   ζ_t = 0: seeds (u,x,t) adopt x (if not yet adopted) and become the
//            frontier; perception weights update.
//   ζ_t ≥ 1: every (u', x) in the frontier promotes x to each out-neighbor
//            u that has not adopted x. Adoption fires with probability
//            Pact(u',u) * Ppref(u,x) (IC) or via accumulated-threshold (LT).
//            Being promoted x also triggers extra adoptions of relevant
//            items y with probability Pext (item associations), flipped
//            independently. Adoptions commit at the end of the step; then
//            the adopters' meta-graph weightings update (which implicitly
//            updates preferences, influence strengths and associations for
//            the next step — the ripple effect).
//   The promotion ends when a step produces no adoption; then t+1 starts
//   from the resulting state.
//
// All coin flips are counter-based hashes of
// (sample_seed, t, ζ, u', u, item, purpose), so realizations are
// reproducible and common across seed-group variations. For adaptive
// racing (ISSUE 10) the caller can mark a round suffix as *coin-aligned*:
// from `align_from_round` on, flips are keyed by the per-(user,item)
// attempt ordinal instead of (round, step). Every draw still hashes a
// distinct input — the joint coin distribution is exactly the historical
// measure, so aligned σ̂ samples are unbiased — but a time-shifted
// cascade's k-th attempt on a pair lands on the same coin in every racing
// candidate, so paired differences collapse to the genuine timing/
// interaction signal. (With round-keyed coins a one-round shift re-rolls
// every flip and the difference variance is as large as σ's own.)
// Alignment is a race-internal coupling device only: reported σ̂ always
// comes from the historical round-keyed path.
//
// Fast path (ISSUE 3): the per-sample state lives in a reusable SimScratch
// arena — flat epoch-stamped arrays instead of per-sample hash containers,
// user states reset in place instead of reconstructed — and the simulation
// core runs an arbitrary promotion range [t_begin, t_end] on top of that
// state. Because every coin flip is a pure hash of its event coordinates
// (never of history), the state at a promotion boundary is a function of
// the seeds scheduled at earlier promotions only; SampleCheckpoint freezes
// that boundary state so a later evaluation that shares the earlier rounds
// can resume instead of re-simulating them (MonteCarloEngine::
// CheckpointedEval). Both paths are bit-identical to a from-scratch run:
// the exact same floating-point operations happen in the exact same order,
// merely split across calls.
#ifndef IMDPP_DIFFUSION_CAMPAIGN_SIMULATOR_H_
#define IMDPP_DIFFUSION_CAMPAIGN_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "diffusion/problem.h"
#include "diffusion/seed.h"
#include "pin/dynamics.h"
#include "pin/user_state.h"

namespace imdpp::diffusion {

enum class DiffusionModel { kIndependentCascade, kLinearThreshold };

/// `align_from_round` value meaning "never align": every coin keeps its
/// historical (round-keyed) hash. Any round index is below it.
inline constexpr int kNoCoinAlignment = 1 << 30;

struct CampaignConfig {
  DiffusionModel model = DiffusionModel::kIndependentCascade;
  /// Safety cap on steps within one promotion.
  int max_steps = 64;
  /// Base seed mixed into every coin flip.
  uint64_t base_seed = 0x1234abcdULL;
};

/// Outcome of one realization.
struct SampleOutcome {
  /// Importance-weighted adoptions over the whole campaign (the σ summand).
  double sigma = 0.0;
  /// Same, restricted to users with market_mask[u] != 0 (0 if no mask).
  double sigma_market = 0.0;
  /// Unweighted adoption count.
  int adoptions = 0;
  /// Final user states (only if keep_states was requested).
  std::vector<pin::UserState> states;
};

/// Seeds bucketed by promotion round (1-based), validated against the
/// problem, built ONCE per estimate so the per-sample loop never
/// re-buckets. Bucket order preserves the seed group's order, which is
/// what keeps σ accumulation bit-identical to the historical per-sample
/// bucketing.
class SeedSchedule {
 public:
  SeedSchedule() = default;
  SeedSchedule(const SeedGroup& seeds, const Problem& problem);

  /// Seeds scheduled at promotion t (empty for t outside [1, T]).
  const SeedGroup& RoundSeeds(int t) const {
    static const SeedGroup kEmpty;
    if (t < 1 || t >= static_cast<int>(by_promotion_.size())) return kEmpty;
    return by_promotion_[static_cast<size_t>(t)];
  }
  /// T of the underlying problem (0 for a default-constructed schedule).
  int num_rounds() const { return t_max_; }
  /// Last promotion with any seed (0 if the group is empty). Rounds after
  /// it are exact no-ops: the frontier never carries across promotions, so
  /// an unseeded round draws no coins and changes no state.
  int last_active_round() const { return last_active_; }

 private:
  std::vector<SeedGroup> by_promotion_;  ///< index 0 unused
  int t_max_ = 0;
  int last_active_ = 0;
};

/// Reusable per-worker simulation arena: user states reset in place, flat
/// epoch-stamped LT accumulators / pending-dedup stamps instead of
/// per-sample unordered_map/unordered_set, and the running outcome of the
/// realization being simulated. One SimScratch serves any number of
/// sequential realizations; each worker thread owns its own.
class SimScratch {
 public:
  SimScratch() = default;
  SimScratch(const SimScratch&) = delete;
  SimScratch& operator=(const SimScratch&) = delete;

  double sigma() const { return sigma_; }
  double sigma_market() const { return sigma_market_; }
  int adoptions() const { return adoptions_; }
  const std::vector<pin::UserState>& states() const { return states_; }

 private:
  friend class CampaignSimulator;

  /// Shapes every buffer for `problem` (no-op when shapes already match).
  void Bind(const Problem& problem);
  /// Starts a fresh realization: zeroes the running outcome and
  /// invalidates all LT accumulators via an epoch bump.
  void BeginSample();
  /// Invalidates the per-step stamps (pending dedup, adopter grouping).
  void BeginStep();
  /// Epoch-stamped LT accumulator for a (user,item) key; zero on first
  /// touch within the current sample, tracked for sparse checkpointing.
  double& LtAcc(int64_t key) {
    if (lt_mark_[static_cast<size_t>(key)] != lt_epoch_) {
      lt_mark_[static_cast<size_t>(key)] = lt_epoch_;
      lt_acc_[static_cast<size_t>(key)] = 0.0;
      lt_touched_.push_back(key);
    }
    return lt_acc_[static_cast<size_t>(key)];
  }
  /// Next attempt ordinal for a (user,item) destination within the
  /// current realization (0 on first touch). Time-aligned racing coins
  /// are keyed by this ordinal instead of (round, step): every draw still
  /// hashes a distinct input — the joint coin distribution is exactly the
  /// historical one — but the k-th structural attempt on a pair lands on
  /// the same coin in every candidate, whichever round it happens in.
  uint32_t NextAttempt(int64_t key) {
    if (attempt_mark_[static_cast<size_t>(key)] != lt_epoch_) {
      attempt_mark_[static_cast<size_t>(key)] = lt_epoch_;
      attempt_count_[static_cast<size_t>(key)] = 0;
      attempt_touched_.push_back(key);
    }
    return attempt_count_[static_cast<size_t>(key)]++;
  }
  /// Re-seats one captured attempt ordinal after a checkpoint restore, so
  /// an aligned-coin simulation resumed mid-cascade draws the exact coins
  /// a from-scratch aligned run would have drawn.
  void RestoreAttempt(int64_t key, uint32_t count) {
    attempt_mark_[static_cast<size_t>(key)] = lt_epoch_;
    attempt_count_[static_cast<size_t>(key)] = count;
    attempt_touched_.push_back(key);
  }
  /// First time (u,x) is queued this step? (flat stand-in for the
  /// per-step unordered_set of pending keys)
  bool MarkPending(int64_t key) {
    if (pending_mark_[static_cast<size_t>(key)] == step_epoch_) return false;
    pending_mark_[static_cast<size_t>(key)] = step_epoch_;
    return true;
  }
  /// Groups a committed adoption by user for the weight update, preserving
  /// first-adoption order (the per-user item lists match the historical
  /// unordered_map grouping; cross-user order is irrelevant because
  /// UpdateWeights touches one user's state only).
  void QueueNewAdoption(UserId u, ItemId x) {
    if (touched_user_mark_[static_cast<size_t>(u)] != step_epoch_) {
      touched_user_mark_[static_cast<size_t>(u)] = step_epoch_;
      new_items_[static_cast<size_t>(u)].clear();
      touched_users_.push_back(u);
    }
    new_items_[static_cast<size_t>(u)].push_back(x);
  }
  void FlushWeightUpdates(const pin::PersonalItemNetwork& pin);

  int num_users_ = 0;
  int num_items_ = 0;
  int num_metas_ = 0;
  std::vector<pin::UserState> states_;

  // Running outcome of the current realization.
  double sigma_ = 0.0;
  double sigma_market_ = 0.0;
  int adoptions_ = 0;

  // LT accumulators, valid while lt_mark_[key] == lt_epoch_.
  std::vector<double> lt_acc_;      ///< |V| x |I|
  std::vector<uint32_t> lt_mark_;   ///< |V| x |I|
  std::vector<int64_t> lt_touched_;
  uint32_t lt_epoch_ = 0;

  // Attempt ordinals for time-aligned racing coins, valid while
  // attempt_mark_[key] == lt_epoch_ (same per-realization epoch); the
  // touched keys are tracked for sparse checkpointing like lt_touched_.
  std::vector<uint32_t> attempt_count_;  ///< |V| x |I|
  std::vector<uint32_t> attempt_mark_;   ///< |V| x |I|
  std::vector<int64_t> attempt_touched_;

  // Per-step stamps.
  std::vector<uint32_t> pending_mark_;       ///< |V| x |I|
  std::vector<uint32_t> touched_user_mark_;  ///< |V|
  uint32_t step_epoch_ = 0;

  // Reused containers for the step loop.
  std::vector<std::pair<UserId, ItemId>> frontier_;
  std::vector<std::pair<UserId, ItemId>> pending_;
  std::vector<UserId> touched_users_;
  std::vector<std::vector<ItemId>> new_items_;  ///< |V| small lists
};

/// The calling thread's shared simulation arena (one per thread, shaped
/// on demand): the engine's sample loops and the default RunSample
/// overload all draw on the same instance, so a thread never holds two
/// copies of the flat |V| x |I| buffers.
SimScratch& ThreadLocalSimScratch();

/// Per-sample diffusion state frozen at a promotion boundary: the user
/// states after promotions 1..k, the LT accumulators touched so far
/// (sparse), and the running outcome partials. Restoring it and simulating
/// promotions k+1..T replays the exact operation sequence of a from-scratch
/// run of the same schedule — the basis of promotion-round checkpoint reuse.
struct SampleCheckpoint {
  std::vector<pin::UserState> states;
  std::vector<std::pair<int64_t, double>> lt;
  /// Attempt ordinals touched so far (sparse) — populated only by
  /// time-aligned simulations (adaptive racing); empty, and free, for the
  /// round-keyed checkpoints of the fixed path.
  std::vector<std::pair<int64_t, uint32_t>> attempts;
  double sigma = 0.0;
  double sigma_market = 0.0;
  int adoptions = 0;
};

class CampaignSimulator {
 public:
  CampaignSimulator(const Problem& problem, const CampaignConfig& config);

  /// Runs realization `sample_idx` of the campaign induced by `seeds`.
  /// `market_mask` (optional, size |V|) restricts sigma_market.
  /// `keep_states` returns the final per-user states (for π / expected
  /// perception extraction). `initial_states` (optional) starts the
  /// campaign from a previously observed state instead of the problem's
  /// initial preferences/weightings — the hook for adaptive IM (Sec. V-D).
  /// Uses a thread-local scratch arena, so repeated calls on one thread
  /// are allocation-free.
  SampleOutcome RunSample(
      const SeedGroup& seeds, uint64_t sample_idx,
      const std::vector<uint8_t>* market_mask = nullptr,
      bool keep_states = false,
      const std::vector<pin::UserState>* initial_states = nullptr) const;

  /// Same, on a caller-owned arena (embedders and the scratch-reuse
  /// bit-identity tests).
  SampleOutcome RunSample(const SeedGroup& seeds, uint64_t sample_idx,
                          const std::vector<uint8_t>* market_mask,
                          bool keep_states,
                          const std::vector<pin::UserState>* initial_states,
                          SimScratch* scratch) const;

  // --- Checkpointed fast path (MonteCarloEngine internals). ---

  /// Prepares `scratch` to simulate: from a frozen boundary state (`cp`),
  /// from `initial_states`, or — when both are null — from the problem's
  /// initial preferences/weightings.
  void Restore(const SampleCheckpoint* cp,
               const std::vector<pin::UserState>* initial_states,
               SimScratch& scratch) const;

  /// Simulates promotions [t_begin, t_end] of `sched` for realization
  /// `sample_idx` on top of scratch's current state, accumulating into its
  /// running outcome. Unseeded rounds are skipped (exact no-ops). Returns
  /// the number of rounds that did work — identical for every sample of a
  /// given (sched, t_begin, t_end), so callers can account work without
  /// per-sample bookkeeping. Rounds >= `align_from_round` draw
  /// round-agnostic coins (time-aligned CRN for adaptive racing, see the
  /// file comment); the default leaves every coin on the historical
  /// round-keyed hash.
  int SimulateRounds(const SeedSchedule& sched, uint64_t sample_idx,
                     int t_begin, int t_end,
                     const std::vector<uint8_t>* market_mask,
                     SimScratch& scratch,
                     int align_from_round = kNoCoinAlignment) const;

  /// Freezes scratch's current state into `cp` (buffers reused).
  void Capture(const SimScratch& scratch, SampleCheckpoint& cp) const;

  /// Likelihood π_τ(SG) of Eq. 13 evaluated on the final states of one
  /// realization: Σ_{v ∈ market} Σ_{y ∉ A(v)} AIS(v,y) * Ppref(v,y), where
  /// AIS aggregates the dynamic influence of v's in-neighbors that have
  /// adopted y (IC form: 1 - Π(1 - Pact); LT form: Σ Pact capped at 1).
  double LikelihoodPi(const std::vector<pin::UserState>& states,
                      const std::vector<UserId>& market) const;

  const Problem& problem() const { return problem_; }
  const pin::Dynamics& dynamics() const { return *dynamics_; }
  const CampaignConfig& config() const { return config_; }

 private:
  const Problem& problem_;
  CampaignConfig config_;
  std::unique_ptr<pin::Dynamics> dynamics_;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_CAMPAIGN_SIMULATOR_H_
