// The IMDPP problem instance: everything Definition 2 takes as given.
//
// Owns the per-(user,item) base preferences and seeding costs, the item
// importance vector W, the initial personal meta-graph weightings, and the
// budget/promotion-count knobs. The social graph and relevance model are
// referenced, not owned (they typically live in a data::Dataset).
#ifndef IMDPP_DIFFUSION_PROBLEM_H_
#define IMDPP_DIFFUSION_PROBLEM_H_

#include <span>
#include <vector>

#include "graph/social_graph.h"
#include "kg/relevance.h"
#include "pin/perception_params.h"
#include "diffusion/seed.h"

namespace imdpp::diffusion {

struct Problem {
  const graph::SocialGraph* graph = nullptr;
  const kg::RelevanceModel* relevance = nullptr;
  pin::PerceptionParams params;

  /// Item importance w_x (Definition 1).
  std::vector<double> importance;

  /// Row-major |V| x |I| initial preferences Ppref(u, x, 0) in [0,1].
  std::vector<float> base_pref;

  /// Row-major |V| x |I| seeding costs c_{u,x} > 0.
  std::vector<float> cost;

  /// Row-major |V| x NumMetas initial weightings Wmeta(u, m, 0) in [0,1].
  std::vector<float> wmeta0;

  /// Total campaign budget b and number of promotions T.
  double budget = 0.0;
  int num_promotions = 1;

  int NumUsers() const { return graph->NumUsers(); }
  int NumItems() const { return relevance->NumItems(); }
  int NumMetas() const { return relevance->NumMetas(); }

  /// Row-major index into the |V| x |I| matrices. Uniformly size_t: on
  /// production-scale instances |V| x |I| overflows int, and mixing int
  /// operands into the product invites it.
  size_t UserItemIndex(UserId u, ItemId x) const {
    return static_cast<size_t>(u) * static_cast<size_t>(NumItems()) +
           static_cast<size_t>(x);
  }

  double BasePref(UserId u, ItemId x) const {
    return base_pref[UserItemIndex(u, x)];
  }
  double Cost(UserId u, ItemId x) const { return cost[UserItemIndex(u, x)]; }
  std::span<const float> Wmeta0(UserId u) const {
    const size_t metas = static_cast<size_t>(NumMetas());
    return {wmeta0.data() + static_cast<size_t>(u) * metas, metas};
  }

  double TotalCost(const SeedGroup& seeds) const {
    double c = 0.0;
    for (const Seed& s : seeds) c += Cost(s.user, s.item);
    return c;
  }

  /// Sanity-checks array shapes and value ranges; aborts on violation.
  void Validate() const;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_PROBLEM_H_
