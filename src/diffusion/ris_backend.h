// The "ris" SigmaBackend: σ by reverse-reachable sketch coverage
// (prep/ris_sketch.h) instead of forward re-simulation.
//
// Estimates are sorted-posting probes over a sketch set built once per
// (problem structure, importances, base_seed, θ, model) and cached as a
// prep:: artifact — every σ̂ query after the first costs microseconds, so
// the greedy selection loops that dominate planning run orders of
// magnitude faster at scale. The price is accuracy: sketches freeze the
// dynamics at the initial state (no perception updates, no association
// adoptions, no promotion timing — a seed covers at any t), so "ris" is a
// static first-order approximation of the paper's process. The gap
// against the "mc" reference is gated by tests/backend_test.cc.
//
// Pairing: every query is answered on the SAME sketch set, so
// Sigma(S ∪ {s}) − Sigma(S) is a paired coverage-gain estimate — the
// common-random-number property the backend contract requires.
//
// Division of labor: Expected() (the Dysim machinery's DRE input) has no
// sketch analogue and delegates to an embedded Monte-Carlo engine;
// EvalMarket() restricts coverage to market-rooted sketches and reports
// π̂ = 0 (capabilities().market_likelihood_pi is false — under "ris"
// TDSI's ML term drops out and timing is driven by σ̂_τ alone).
//
// Robustness (ISSUE 8): estimates run the eval.sigma fault point and the
// run's CancelToken like the Monte-Carlo engine. A failed sketch
// acquisition (the prep.sketch fault point, after transient retries)
// either fails the run through the token, or — when
// spec.fallback_backend is set — degrades the backend to its embedded
// Monte-Carlo engine for the rest of its life, booking one `fallbacks`
// counter (graceful degradation, tentpole prong 4).
#ifndef IMDPP_DIFFUSION_RIS_BACKEND_H_
#define IMDPP_DIFFUSION_RIS_BACKEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "diffusion/monte_carlo.h"
#include "diffusion/sigma_backend.h"
#include "prep/ris_sketch.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace imdpp::diffusion {

class RisBackend final : public SigmaBackend {
 public:
  /// Mirrors the MonteCarloEngine constructor plus the backend spec
  /// (θ = spec.ris_sketches, optional shared sketch cache, the run's
  /// cancellation token, and the opt-in fallback backend). `num_samples`
  /// sizes the embedded Monte-Carlo engine Expected() delegates to and
  /// the naive-work baseline the counters book against. The embedded
  /// engine shares this backend's token, so an eval fault or deadline
  /// fires one channel no matter which path answered.
  RisBackend(const Problem& problem, const CampaignConfig& config,
             int num_samples, int num_threads,
             std::shared_ptr<util::ThreadPool> shared_pool,
             SigmaBackendSpec spec);

  std::string_view name() const override { return "ris"; }
  std::string_view description() const override {
    return "reverse-reachable sketch coverage at frozen initial dynamics "
           "(fast static approximation)";
  }
  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.sketch_prep = true;
    // SelectBest is the trivial implementation (the fixed reference
    // loop): warm σ̂ queries are coverage counts over prebuilt sketches,
    // already ~free, so sequential stopping has nothing left to save.
    caps.select_best = true;
    return caps;
  }

  /// σ̂(S) = scale * #covered sketches. Builds (or acquires from the
  /// shared cache) the sketch set on first use, under the backend mutex.
  double Sigma(const SeedGroup& seeds) const override IMDPP_EXCLUDES(mu_);

  /// σ̂ plus the market-rooted restriction; pi is always 0 (see file
  /// comment). The |V| market mask is cached per user list like the
  /// Monte-Carlo engine's.
  MarketEval EvalMarket(const SeedGroup& seeds,
                        const std::vector<UserId>& users) const override
      IMDPP_EXCLUDES(mu_);

  /// Delegated to the embedded Monte-Carlo engine: the expected-state
  /// consumers (r̄^C/r̄^S, AE, DR) need per-user adoption probabilities and
  /// weightings that coverage counts cannot provide.
  ExpectedState Expected(const SeedGroup& seeds) const override;

  void EnableSigmaMemo(size_t max_entries = 1 << 14) override
      IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    sigma_memo_capacity_ = max_entries;
  }

  const CampaignSimulator& simulator() const override {
    return mc_.simulator();
  }
  int num_samples() const override { return mc_.num_samples(); }
  int num_threads() const override { return mc_.num_threads(); }

  /// Sketch queries invoke no simulator; only the Expected() delegation
  /// (and its engine) simulates.
  int64_t num_simulations() const override {
    return mc_.num_simulations();
  }
  int64_t num_rounds_simulated() const override {
    return mc_.num_rounds_simulated();
  }
  /// Coverage estimates book the whole naive T-rounds-per-sample total as
  /// skipped, keeping simulated + skipped comparable across backends.
  int64_t num_rounds_skipped() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return num_rounds_skipped_ + mc_.num_rounds_skipped();
  }
  int64_t num_memo_hits() const override IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return num_memo_hits_ + mc_.num_memo_hits();
  }

  /// Base counters/histogram plus the ris-specific instrumentation
  /// (sketch builds/reuses, coverage-query count) and the embedded
  /// engine's σ̂ distribution (degraded and Expected()-path estimates).
  void AddMetrics(util::MetricsSnapshot& out) const override
      IMDPP_EXCLUDES(mu_);

  /// Whether this backend's estimates so far built a sketch set (1) or
  /// served one from the shared cache (tests and diagnostics).
  int64_t sketch_builds() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return sketch_builds_;
  }
  int64_t sketch_reuses() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return sketch_reuses_;
  }

  /// The token estimates check; never null (see the constructor).
  const util::CancelToken* cancel_token() const override {
    return cancel_.get();
  }

  /// True once a failed sketch acquisition degraded this backend to its
  /// embedded Monte-Carlo engine (ISSUE 8, prong 4) — only possible when
  /// spec.fallback_backend is non-empty.
  bool degraded() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return degraded_;
  }

 private:
  /// Acquires the sketch set on first use (cache-served when the spec
  /// carries a shared cache). Non-ok = the acquisition failed (injected
  /// prep.sketch fault, cancellation, deadline); the caller routes the
  /// status through HandleSketchFailure.
  util::Status EnsureSketches() const IMDPP_REQUIRES(mu_);
  /// Estimate-entry gate, mirroring MonteCarloEngine::BeginEstimate: runs
  /// the eval.sigma fault point (latching any injected error onto the
  /// token) and checks the token. False = return a don't-care value.
  bool BeginEstimate() const;
  /// Routes a failed sketch acquisition: cancellations/deadlines and
  /// fault errors without a configured fallback fire the token and return
  /// false (the estimate gives up); otherwise flips degraded_, books one
  /// `fallbacks` counter, and returns true — the caller re-answers from
  /// the embedded Monte-Carlo engine.
  bool HandleSketchFailure(util::Status status) const IMDPP_REQUIRES(mu_);
  /// Distinct sketches covered by `seeds`; when `market_mask` is set,
  /// also counts the covered sketches whose root user is in the market.
  int64_t CountCovered(const SeedGroup& seeds,
                       const std::vector<uint8_t>* market_mask,
                       int64_t* covered_market) const IMDPP_REQUIRES(mu_);
  const std::vector<uint8_t>* CachedMask(const std::vector<UserId>& users)
      const IMDPP_REQUIRES(mu_);
  bool MemoEnabled() const IMDPP_REQUIRES(mu_) {
    return sigma_memo_capacity_ > 0;
  }
  /// Books one coverage estimate (all rounds skipped) / one memo hit.
  void ChargeEstimate() const IMDPP_REQUIRES(mu_);

  const Problem& problem_;
  /// Never null: spec.cancel when provided, else a private token. Shared
  /// with the embedded engine (declared before mc_ so it exists first).
  std::shared_ptr<const util::CancelToken> cancel_;
  MonteCarloEngine mc_;
  SigmaBackendSpec spec_;
  std::shared_ptr<util::ThreadPool> pool_;
  int build_threads_;

  /// Guards the lazily acquired sketch set, the query scratch, the memos,
  /// the mask cache and the work counters — the engine-mutex pattern of
  /// monte_carlo.h.
  mutable util::Mutex mu_;
  mutable std::shared_ptr<const prep::RisSketchSet> sketches_
      IMDPP_GUARDED_BY(mu_);
  mutable bool degraded_ IMDPP_GUARDED_BY(mu_) = false;
  mutable int64_t sketch_builds_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t sketch_reuses_ IMDPP_GUARDED_BY(mu_) = 0;
  /// Epoch-stamped covered flags (θ entries), reused across queries.
  mutable std::vector<uint32_t> covered_mark_ IMDPP_GUARDED_BY(mu_);
  mutable uint32_t covered_epoch_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t num_rounds_skipped_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable int64_t num_memo_hits_ IMDPP_GUARDED_BY(mu_) = 0;
  /// Coverage countings answered from the sketch set (memo hits and
  /// degraded estimates excluded).
  mutable int64_t num_coverage_queries_ IMDPP_GUARDED_BY(mu_) = 0;
  /// σ / market memos, keyed exactly like the Monte-Carlo engine's.
  mutable std::map<SeedGroup, double> sigma_memo_ IMDPP_GUARDED_BY(mu_);
  mutable std::map<std::vector<UserId>, std::map<SeedGroup, MarketEval>>
      market_memo_ IMDPP_GUARDED_BY(mu_);
  mutable size_t market_memo_entries_ IMDPP_GUARDED_BY(mu_) = 0;
  size_t sigma_memo_capacity_ IMDPP_GUARDED_BY(mu_) = 0;
  mutable std::vector<UserId> mask_users_ IMDPP_GUARDED_BY(mu_);
  mutable std::vector<uint8_t> mask_ IMDPP_GUARDED_BY(mu_);
  mutable bool mask_valid_ IMDPP_GUARDED_BY(mu_) = false;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_RIS_BACKEND_H_
