// Variance-adaptive sequential stopping for greedy argmax evaluation
// (ISSUE 10 tentpole): racing candidates on *paired* per-sample values.
//
// Every greedy loop in this repo (TDSI PickBest, the Theorem-5 round
// placement, cr_greedy, the baseline argmax loops) only needs enough
// Monte-Carlo samples to separate the winner from the runner-up — most
// candidates are resolvable after a fraction of the fixed budget. The
// AdaptiveEval state machine below implements empirical-Bernstein
// racing (Mnih, Szepesvári & Audibert, ICML 2008; CELF-style lazy
// elimination, Leskovec et al., KDD 2007) over the common-random-number
// pairing the SigmaBackend contract already guarantees: candidate i and
// the current leader are compared through their per-sample *differences*
// d_s = v_i[s] − v_L[s], whose variance under CRN is far below the
// variance of either estimate alone. Two pairing payoffs fall out:
//   * exact ties (d ≡ 0: the candidate's extra seed never fires inside
//     the evaluated horizon) are eliminated at the first boundary, and
//   * deterministically-dominated candidates (d ≡ c < 0) likewise —
//     both common in timing sweeps, both invisible to independent bounds.
//
// Determinism contract: candidates advance in lockstep blocks; per-sample
// values are written into per-sample slots (order-independent writes), and
// every statistic is reduced in fixed sample order at block boundaries
// only. Feeding bit-identical per-sample values therefore yields a
// bit-identical race at any thread count — the property
// tests/determinism_test.cc gates.
//
// This header is backend-agnostic (plain doubles in, decisions out); the
// "mc" backend drives it from block-resumable shard loops in
// monte_carlo.cc. AdaptiveEvalConfig also serves as the `eval.adaptive.*`
// config payload carried by SigmaBackendSpec.
#ifndef IMDPP_DIFFUSION_ADAPTIVE_EVAL_H_
#define IMDPP_DIFFUSION_ADAPTIVE_EVAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace imdpp::diffusion {

/// The `eval.adaptive.*` knobs (PlannerConfig → SigmaBackendSpec →
/// consumers). Defaults follow the fixed-path sample scale: stopping can
/// only help once a comparison has a few samples of paired evidence.
struct AdaptiveEvalConfig {
  /// Master switch; false = every argmax runs the fixed-count reference
  /// loop (bit-identical to the pre-adaptive code).
  bool enabled = false;
  /// Total error budget δ for the race: each pairwise elimination test
  /// runs at δ / num_candidates (union bound).
  double delta = 0.05;
  /// Samples added per block after the first. Stopping decisions happen
  /// only at block boundaries.
  int block_samples = 8;
  /// Samples every candidate gets before the first elimination test.
  int min_samples = 8;
  /// Racing budget (Maron & Moore-style): the race decides on at most
  /// this many samples per candidate; 0 = the backend's full sample
  /// count. The winner is ALWAYS re-evaluated at the full count through
  /// the normal estimate path, so a tight budget trades argmax
  /// resolution — not estimate precision — for simulation work. Useful
  /// when candidate gaps are far below the per-sample noise floor (no
  /// honest bound can separate them anyway) and the fixed loop would
  /// burn its whole budget confirming a coin flip.
  int max_samples = 0;
};

/// The racing state machine. Usage (driver = a backend's block loop):
///
///   AdaptiveEval race(K, num_samples, config);
///   while (!race.done()) {
///     for (int i = 0; i < K; ++i) {
///       if (!race.IsAlive(i)) continue;
///       for (int s = race.block_begin(); s < race.block_end(); ++s)
///         race.Record(i, s, per_sample_value(i, s));
///     }
///     race.EndBlock();
///   }
///   int winner = race.Winner();
///
/// Record() writes are data-race-free for distinct (candidate, sample)
/// pairs, so the driver may fill a block from concurrent shards; all
/// decision state is recomputed single-threaded inside EndBlock().
class AdaptiveEval {
 public:
  /// `num_candidates` >= 1 racers, `num_samples` = the fixed budget cap
  /// (the race degenerates to the fixed count when nothing resolves).
  AdaptiveEval(int num_candidates, int num_samples,
               const AdaptiveEvalConfig& config);

  /// True once a single candidate survives or the cap is reached.
  bool done() const;
  /// The sample range [block_begin, block_end) every alive candidate must
  /// fill before the next EndBlock().
  int block_begin() const { return block_begin_; }
  int block_end() const { return block_end_; }
  bool IsAlive(int candidate) const {
    return alive_[static_cast<size_t>(candidate)] != 0;
  }
  int num_alive() const { return num_alive_; }

  /// Stores candidate's value for one sample (see class comment for the
  /// concurrency contract).
  void Record(int candidate, int sample, double value) {
    values_[static_cast<size_t>(candidate)][static_cast<size_t>(sample)] =
        value;
  }

  /// Closes the current block: recomputes every alive candidate's running
  /// mean in fixed sample order, then eliminates candidates whose paired
  /// empirical-Bernstein upper bound against the current leader is <= 0.
  void EndBlock();

  /// Argmax of the running means among alive candidates, first index on
  /// ties — the same strict-`>` preference as the fixed reference loops.
  int Winner() const;
  /// Running mean of `candidate` at the last closed boundary.
  double Mean(int candidate) const {
    return mean_[static_cast<size_t>(candidate)];
  }
  /// Samples `candidate` had been advanced to when it stopped (its
  /// elimination boundary; the final boundary for survivors).
  int samples_used(int candidate) const {
    return used_[static_cast<size_t>(candidate)];
  }

  /// Work/effect counters for the eval.* metrics channel.
  int64_t blocks_run() const { return blocks_run_; }
  /// Candidates eliminated by a bound before the sample cap.
  int64_t early_stops() const { return early_stops_; }
  /// Σ over candidates of (num_samples − samples_used): the simulations
  /// the fixed-count path would have spent on resolved comparisons.
  int64_t samples_saved() const;

  /// Empirical-Bernstein confidence radius for the mean of n observations
  /// with empirical variance `variance` and empirical range `range`
  /// (max − min), at confidence 1 − delta:
  ///     sqrt(2·V·ln(3/δ)/n) + 3·R·ln(3/δ)/n.
  /// Using the *empirical* range instead of an a-priori bound is the
  /// standard engineering tightening; with CRN pairing it is what lets
  /// exact ties (V = R = 0) resolve immediately. n < 2 returns +inf —
  /// a single observation can never eliminate.
  static double Radius(double variance, double range, int n, double delta);

 private:
  int num_candidates_;
  int num_samples_;
  int race_cap_;  ///< min(num_samples, config.max_samples when set)
  AdaptiveEvalConfig config_;

  std::vector<std::vector<double>> values_;  ///< [candidate][sample]
  std::vector<uint8_t> alive_;
  std::vector<int> used_;
  std::vector<double> mean_;
  int num_alive_;
  int block_begin_ = 0;  ///< samples closed so far
  int block_end_;        ///< next boundary
  int64_t blocks_run_ = 0;
  int64_t early_stops_ = 0;
};

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_ADAPTIVE_EVAL_H_
