// Seeds and seed groups. A seed (u, x, t) assigns item x to user u in the
// t-th promotion (t is 1-based, matching the paper). A nominee is the
// timing-free pair (u, x).
#ifndef IMDPP_DIFFUSION_SEED_H_
#define IMDPP_DIFFUSION_SEED_H_

#include <algorithm>
#include <vector>

#include "graph/social_graph.h"
#include "kg/types.h"

namespace imdpp::diffusion {

using graph::UserId;
using kg::ItemId;

/// Candidate seed without a promotional timing.
struct Nominee {
  UserId user = -1;
  ItemId item = -1;

  friend bool operator==(const Nominee& a, const Nominee& b) {
    return a.user == b.user && a.item == b.item;
  }
  friend bool operator<(const Nominee& a, const Nominee& b) {
    return a.user != b.user ? a.user < b.user : a.item < b.item;
  }
};

/// A scheduled seed (u, x, t).
struct Seed {
  UserId user = -1;
  ItemId item = -1;
  int promotion = 1;  ///< 1-based promotion index t

  Nominee AsNominee() const { return Nominee{user, item}; }

  friend bool operator==(const Seed& a, const Seed& b) {
    return a.user == b.user && a.item == b.item && a.promotion == b.promotion;
  }
  friend bool operator<(const Seed& a, const Seed& b) {
    if (a.promotion != b.promotion) return a.promotion < b.promotion;
    if (a.user != b.user) return a.user < b.user;
    return a.item < b.item;
  }
};

using SeedGroup = std::vector<Seed>;

/// Latest promotional timing t̂ in the group (0 if empty).
inline int LatestTiming(const SeedGroup& seeds) {
  int t = 0;
  for (const Seed& s : seeds) t = std::max(t, s.promotion);
  return t;
}

/// Seeds scheduled for promotion t.
inline SeedGroup SubgroupAt(const SeedGroup& seeds, int t) {
  SeedGroup out;
  for (const Seed& s : seeds) {
    if (s.promotion == t) out.push_back(s);
  }
  return out;
}

/// True if the (user, item) nominee already appears at any timing.
inline bool ContainsNominee(const SeedGroup& seeds, const Nominee& n) {
  for (const Seed& s : seeds) {
    if (s.user == n.user && s.item == n.item) return true;
  }
  return false;
}

}  // namespace imdpp::diffusion

#endif  // IMDPP_DIFFUSION_SEED_H_
