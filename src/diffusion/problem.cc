#include "diffusion/problem.h"

namespace imdpp::diffusion {

void Problem::Validate() const {
  IMDPP_CHECK(graph != nullptr);
  IMDPP_CHECK(relevance != nullptr);
  IMDPP_CHECK_GE(NumUsers(), 0);
  IMDPP_CHECK_GE(NumItems(), 0);
  IMDPP_CHECK_GE(NumMetas(), 0);
  const size_t v = static_cast<size_t>(NumUsers());
  const size_t i = static_cast<size_t>(NumItems());
  const size_t m = static_cast<size_t>(NumMetas());
  IMDPP_CHECK_EQ(importance.size(), i);
  IMDPP_CHECK_EQ(base_pref.size(), v * i);
  IMDPP_CHECK_EQ(cost.size(), v * i);
  IMDPP_CHECK_EQ(wmeta0.size(), v * m);
  IMDPP_CHECK_GE(num_promotions, 1);
  IMDPP_CHECK_GE(budget, 0.0);
  for (double w : importance) IMDPP_CHECK_GE(w, 0.0);
  for (float p : base_pref) IMDPP_CHECK(p >= 0.0f && p <= 1.0f);
  for (float c : cost) IMDPP_CHECK_GT(c, 0.0f);
  for (float w : wmeta0) IMDPP_CHECK(w >= 0.0f && w <= 1.0f);
}

}  // namespace imdpp::diffusion
