#include "diffusion/campaign_simulator.h"

#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"
#include "util/mathutil.h"

namespace imdpp::diffusion {

namespace {

// Purpose tags keep coin flips for different event kinds independent.
enum Purpose : uint64_t {
  kAdoptFlip = 1,
  kExtraFlip = 2,
  kLtThreshold = 3,
};

int64_t PairKey(UserId u, ItemId x, int num_items) {
  return static_cast<int64_t>(u) * num_items + x;
}

}  // namespace

CampaignSimulator::CampaignSimulator(const Problem& problem,
                                     const CampaignConfig& config)
    : problem_(problem), config_(config) {
  problem_.Validate();
  dynamics_ =
      std::make_unique<pin::Dynamics>(*problem_.relevance, problem_.params);
}

SampleOutcome CampaignSimulator::RunSample(
    const SeedGroup& seeds, uint64_t sample_idx,
    const std::vector<uint8_t>* market_mask, bool keep_states,
    const std::vector<pin::UserState>* initial_states) const {
  const graph::SocialGraph& g = *problem_.graph;
  const int num_items = problem_.NumItems();
  const int num_users = problem_.NumUsers();
  const pin::PersonalItemNetwork& pin = dynamics_->pin();
  const pin::PreferenceModel& pref_model = dynamics_->preference();
  const pin::InfluenceModel& act_model = dynamics_->influence();
  const pin::AssociationModel& assoc_model = dynamics_->association();
  const kg::RelevanceModel& rel = *problem_.relevance;
  const uint64_t sseed = HashTuple(config_.base_seed, sample_idx);

  // Initial states.
  std::vector<pin::UserState> state;
  if (initial_states != nullptr) {
    IMDPP_CHECK_EQ(initial_states->size(), static_cast<size_t>(num_users));
    state = *initial_states;
  } else {
    state.reserve(num_users);
    for (UserId u = 0; u < num_users; ++u) {
      std::span<const float> w0 = problem_.Wmeta0(u);
      state.emplace_back(num_items, std::vector<float>(w0.begin(), w0.end()));
    }
  }

  SampleOutcome out;
  auto count_adoption = [&](UserId u, ItemId x) {
    out.sigma += problem_.importance[x];
    ++out.adoptions;
    if (market_mask != nullptr && (*market_mask)[u]) {
      out.sigma_market += problem_.importance[x];
    }
  };

  // Seeds grouped by promotion (1-based).
  int t_max = problem_.num_promotions;
  std::vector<SeedGroup> by_promotion(t_max + 1);
  for (const Seed& s : seeds) {
    IMDPP_CHECK(s.promotion >= 1 && s.promotion <= t_max);
    IMDPP_CHECK(s.user >= 0 && s.user < num_users);
    IMDPP_CHECK(s.item >= 0 && s.item < num_items);
    by_promotion[s.promotion].push_back(s);
  }

  // Accumulated LT influence per (user, item); thresholds are hash-drawn.
  std::unordered_map<int64_t, double> lt_acc;

  for (int t = 1; t <= t_max; ++t) {
    // --- ζ_t = 0: seeds adopt their items. ---
    std::vector<std::pair<UserId, ItemId>> frontier;
    {
      std::unordered_map<UserId, std::vector<ItemId>> new_by_user;
      for (const Seed& s : by_promotion[t]) {
        if (state[s.user].Add(s.item)) {
          count_adoption(s.user, s.item);
          new_by_user[s.user].push_back(s.item);
        }
        // Even if the item was adopted earlier, a re-seeded user promotes
        // it again (Lemma 1's re-seeding case).
        frontier.emplace_back(s.user, s.item);
      }
      for (auto& [u, items] : new_by_user) {
        pin.UpdateWeights(state[u], items);
      }
    }

    // --- ζ_t ≥ 1: influence propagation. ---
    for (int step = 1; step <= config_.max_steps && !frontier.empty();
         ++step) {
      std::vector<std::pair<UserId, ItemId>> pending;
      std::unordered_set<int64_t> pending_keys;
      auto try_queue = [&](UserId u, ItemId x) {
        int64_t key = PairKey(u, x, num_items);
        if (state[u].Has(x)) return;
        if (!pending_keys.insert(key).second) return;
        pending.emplace_back(u, x);
      };

      for (const auto& [src, x] : frontier) {
        for (const graph::Edge& e : g.OutEdges(src)) {
          const UserId u = e.to;
          const bool has_x = state[u].Has(x);
          const double pact = act_model.Eval(e.weight, state[src], state[u]);
          if (pact <= 0.0) continue;
          // A user can only be promoted an item she has not adopted.
          if (has_x) continue;
          const double ppref =
              pref_model.Eval(state[u], problem_.BasePref(u, x), x);
          bool adopt = false;
          if (config_.model == DiffusionModel::kIndependentCascade) {
            const double p = pact * ppref;
            if (p > 0.0 &&
                UnitHash(sseed, kAdoptFlip, t, step, src, u, x) < p) {
              adopt = true;
            }
          } else {
            // LT: accumulate preference-scaled influence mass against a
            // per-(user,item) threshold drawn once per realization.
            int64_t key = PairKey(u, x, num_items);
            double& acc = lt_acc[key];
            acc += pact * ppref;
            const double theta = UnitHash(sseed, kLtThreshold, u, x);
            if (acc >= theta) adopt = true;
          }
          if (adopt) try_queue(u, x);

          // Item associations: being promoted x can trigger adoption of
          // relevant items y, independently of the adoption of x.
          if (ppref <= 0.0) continue;
          for (ItemId y : rel.RelatedItems(x)) {
            if (state[u].Has(y)) continue;
            const double pe =
                assoc_model.ExtraProb(state[u], pact, ppref, x, y);
            if (pe > 0.0 &&
                UnitHash(sseed, kExtraFlip, t, step, src, u, x, y) < pe) {
              try_queue(u, y);
            }
          }
        }
      }

      // Commit simultaneously, then update perceptions (ripple effect).
      std::unordered_map<UserId, std::vector<ItemId>> new_by_user;
      for (const auto& [u, x] : pending) {
        if (state[u].Add(x)) {
          count_adoption(u, x);
          new_by_user[u].push_back(x);
        }
      }
      for (auto& [u, items] : new_by_user) {
        pin.UpdateWeights(state[u], items);
      }
      frontier.swap(pending);
    }
  }

  if (keep_states) out.states = std::move(state);
  return out;
}

double CampaignSimulator::LikelihoodPi(
    const std::vector<pin::UserState>& states,
    const std::vector<UserId>& market) const {
  const graph::SocialGraph& g = *problem_.graph;
  const int num_items = problem_.NumItems();
  const pin::PreferenceModel& pref_model = dynamics_->preference();
  const pin::InfluenceModel& act_model = dynamics_->influence();
  IMDPP_CHECK_EQ(states.size(), static_cast<size_t>(problem_.NumUsers()));

  double pi = 0.0;
  // AIS per item: for IC, 1 - Π over adopter-in-neighbors of (1 - Pact);
  // scratch reused across market users.
  std::vector<double> no_influence(num_items);
  std::vector<double> lt_mass(num_items);
  for (UserId v : market) {
    std::fill(no_influence.begin(), no_influence.end(), 1.0);
    std::fill(lt_mass.begin(), lt_mass.end(), 0.0);
    bool any = false;
    for (const graph::Edge& e : g.InEdges(v)) {
      const UserId vp = e.to;
      if (states[vp].Adopted().empty()) continue;
      const double pact = act_model.Eval(e.weight, states[vp], states[v]);
      if (pact <= 0.0) continue;
      for (ItemId y : states[vp].Adopted()) {
        if (states[v].Has(y)) continue;
        no_influence[y] *= (1.0 - pact);
        lt_mass[y] += pact;
        any = true;
      }
    }
    if (!any) continue;
    for (ItemId y = 0; y < num_items; ++y) {
      double ais;
      if (config_.model == DiffusionModel::kIndependentCascade) {
        ais = 1.0 - no_influence[y];
      } else {
        ais = Clip01(lt_mass[y]);
      }
      if (ais <= 0.0) continue;
      const double ppref =
          pref_model.Eval(states[v], problem_.BasePref(v, y), y);
      pi += ais * ppref;
    }
  }
  return pi;
}

}  // namespace imdpp::diffusion
