#include "diffusion/campaign_simulator.h"

#include <algorithm>

#include "util/hash.h"
#include "util/mathutil.h"

namespace imdpp::diffusion {

namespace {

// Purpose tags keep coin flips for different event kinds independent.
enum Purpose : uint64_t {
  kAdoptFlip = 1,
  kExtraFlip = 2,
  kLtThreshold = 3,
};

// Round key of a coin-aligned flip: outside the valid promotion range, so
// an aligned coin can never collide with a round-keyed one.
constexpr uint64_t kAlignedCoinRound = ~uint64_t{0};

int64_t PairKey(UserId u, ItemId x, int num_items) {
  return static_cast<int64_t>(u) * num_items + x;
}

}  // namespace

SeedSchedule::SeedSchedule(const SeedGroup& seeds, const Problem& problem)
    : t_max_(problem.num_promotions) {
  const int num_users = problem.NumUsers();
  const int num_items = problem.NumItems();
  by_promotion_.resize(static_cast<size_t>(t_max_) + 1);
  for (const Seed& s : seeds) {
    IMDPP_CHECK(s.promotion >= 1 && s.promotion <= t_max_);
    IMDPP_CHECK(s.user >= 0 && s.user < num_users);
    IMDPP_CHECK(s.item >= 0 && s.item < num_items);
    by_promotion_[static_cast<size_t>(s.promotion)].push_back(s);
    last_active_ = std::max(last_active_, s.promotion);
  }
}

void SimScratch::Bind(const Problem& problem) {
  const int num_users = problem.NumUsers();
  const int num_items = problem.NumItems();
  const int num_metas = problem.NumMetas();
  if (num_users == num_users_ && num_items == num_items_ &&
      num_metas == num_metas_) {
    return;
  }
  num_users_ = num_users;
  num_items_ = num_items;
  num_metas_ = num_metas;
  const size_t pairs =
      static_cast<size_t>(num_users) * static_cast<size_t>(num_items);
  states_.resize(static_cast<size_t>(num_users));
  lt_acc_.assign(pairs, 0.0);
  lt_mark_.assign(pairs, 0);
  lt_epoch_ = 0;
  attempt_count_.assign(pairs, 0);
  attempt_mark_.assign(pairs, 0);
  pending_mark_.assign(pairs, 0);
  touched_user_mark_.assign(static_cast<size_t>(num_users), 0);
  step_epoch_ = 0;
  new_items_.resize(static_cast<size_t>(num_users));
}

void SimScratch::BeginSample() {
  sigma_ = 0.0;
  sigma_market_ = 0.0;
  adoptions_ = 0;
  lt_touched_.clear();
  attempt_touched_.clear();
  if (++lt_epoch_ == 0) {  // epoch wrap: stale marks could alias
    std::fill(lt_mark_.begin(), lt_mark_.end(), 0u);
    std::fill(attempt_mark_.begin(), attempt_mark_.end(), 0u);
    lt_epoch_ = 1;
  }
}

void SimScratch::BeginStep() {
  if (++step_epoch_ == 0) {
    std::fill(pending_mark_.begin(), pending_mark_.end(), 0u);
    std::fill(touched_user_mark_.begin(), touched_user_mark_.end(), 0u);
    step_epoch_ = 1;
  }
}

void SimScratch::FlushWeightUpdates(const pin::PersonalItemNetwork& pin) {
  for (UserId u : touched_users_) {
    pin.UpdateWeights(states_[static_cast<size_t>(u)],
                      new_items_[static_cast<size_t>(u)]);
  }
  touched_users_.clear();
}

CampaignSimulator::CampaignSimulator(const Problem& problem,
                                     const CampaignConfig& config)
    : problem_(problem), config_(config) {
  problem_.Validate();
  dynamics_ =
      std::make_unique<pin::Dynamics>(*problem_.relevance, problem_.params);
}

void CampaignSimulator::Restore(
    const SampleCheckpoint* cp,
    const std::vector<pin::UserState>* initial_states,
    SimScratch& scratch) const {
  const int num_users = problem_.NumUsers();
  scratch.Bind(problem_);
  scratch.BeginSample();
  if (cp != nullptr) {
    IMDPP_CHECK_EQ(cp->states.size(), static_cast<size_t>(num_users));
    for (UserId u = 0; u < num_users; ++u) {
      scratch.states_[static_cast<size_t>(u)].CopyFrom(
          cp->states[static_cast<size_t>(u)]);
    }
    for (const auto& [key, acc] : cp->lt) scratch.LtAcc(key) = acc;
    for (const auto& [key, count] : cp->attempts) {
      scratch.RestoreAttempt(key, count);
    }
    scratch.sigma_ = cp->sigma;
    scratch.sigma_market_ = cp->sigma_market;
    scratch.adoptions_ = cp->adoptions;
  } else if (initial_states != nullptr) {
    IMDPP_CHECK_EQ(initial_states->size(), static_cast<size_t>(num_users));
    for (UserId u = 0; u < num_users; ++u) {
      scratch.states_[static_cast<size_t>(u)].CopyFrom(
          (*initial_states)[static_cast<size_t>(u)]);
    }
  } else {
    const int num_items = problem_.NumItems();
    for (UserId u = 0; u < num_users; ++u) {
      scratch.states_[static_cast<size_t>(u)].ResetTo(num_items,
                                                      problem_.Wmeta0(u));
    }
  }
}

void CampaignSimulator::Capture(const SimScratch& scratch,
                                SampleCheckpoint& cp) const {
  const size_t num_users = static_cast<size_t>(problem_.NumUsers());
  cp.states.resize(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    cp.states[u].CopyFrom(scratch.states_[u]);
  }
  cp.lt.clear();
  cp.lt.reserve(scratch.lt_touched_.size());
  for (int64_t key : scratch.lt_touched_) {
    cp.lt.emplace_back(key, scratch.lt_acc_[static_cast<size_t>(key)]);
  }
  cp.attempts.clear();
  cp.attempts.reserve(scratch.attempt_touched_.size());
  for (int64_t key : scratch.attempt_touched_) {
    cp.attempts.emplace_back(key,
                             scratch.attempt_count_[static_cast<size_t>(key)]);
  }
  cp.sigma = scratch.sigma_;
  cp.sigma_market = scratch.sigma_market_;
  cp.adoptions = scratch.adoptions_;
}

int CampaignSimulator::SimulateRounds(const SeedSchedule& sched,
                                      uint64_t sample_idx, int t_begin,
                                      int t_end,
                                      const std::vector<uint8_t>* market_mask,
                                      SimScratch& scratch,
                                      int align_from_round) const {
  const graph::SocialGraph& g = *problem_.graph;
  const int num_items = problem_.NumItems();
  const pin::PersonalItemNetwork& pin = dynamics_->pin();
  const pin::PreferenceModel& pref_model = dynamics_->preference();
  const pin::InfluenceModel& act_model = dynamics_->influence();
  const pin::AssociationModel& assoc_model = dynamics_->association();
  const kg::RelevanceModel& rel = *problem_.relevance;
  const uint64_t sseed = HashTuple(config_.base_seed, sample_idx);
  std::vector<pin::UserState>& state = scratch.states_;

  auto count_adoption = [&](UserId u, ItemId x) {
    scratch.sigma_ += problem_.importance[static_cast<size_t>(x)];
    ++scratch.adoptions_;
    if (market_mask != nullptr && (*market_mask)[static_cast<size_t>(u)]) {
      scratch.sigma_market_ += problem_.importance[static_cast<size_t>(x)];
    }
  };

  int rounds_run = 0;
  for (int t = t_begin; t <= t_end; ++t) {
    const SeedGroup& round_seeds = sched.RoundSeeds(t);
    if (round_seeds.empty()) continue;  // no frontier, no coins: exact no-op
    ++rounds_run;
    // Coin-aligned rounds key flips by per-pair attempt ordinal instead of
    // (round, step): distinct hash inputs per draw (the joint distribution
    // is exactly the historical measure), but a time-shifted cascade's
    // k-th attempt lands on the same coin in every racing candidate.
    const bool aligned = t >= align_from_round;

    // --- ζ_t = 0: seeds adopt their items. ---
    std::vector<std::pair<UserId, ItemId>>& frontier = scratch.frontier_;
    frontier.clear();
    scratch.BeginStep();
    for (const Seed& s : round_seeds) {
      if (state[static_cast<size_t>(s.user)].Add(s.item)) {
        count_adoption(s.user, s.item);
        scratch.QueueNewAdoption(s.user, s.item);
      }
      // Even if the item was adopted earlier, a re-seeded user promotes
      // it again (Lemma 1's re-seeding case).
      frontier.emplace_back(s.user, s.item);
    }
    scratch.FlushWeightUpdates(pin);

    // --- ζ_t ≥ 1: influence propagation. ---
    for (int step = 1; step <= config_.max_steps && !frontier.empty();
         ++step) {
      std::vector<std::pair<UserId, ItemId>>& pending = scratch.pending_;
      pending.clear();
      scratch.BeginStep();
      auto try_queue = [&](UserId u, ItemId x) {
        if (state[static_cast<size_t>(u)].Has(x)) return;
        if (!scratch.MarkPending(PairKey(u, x, num_items))) return;
        pending.emplace_back(u, x);
      };

      for (const auto& [src, x] : frontier) {
        for (const graph::Edge& e : g.OutEdges(src)) {
          const UserId u = e.to;
          const bool has_x = state[static_cast<size_t>(u)].Has(x);
          const double pact =
              act_model.Eval(e.weight, state[static_cast<size_t>(src)],
                             state[static_cast<size_t>(u)]);
          if (pact <= 0.0) continue;
          // A user can only be promoted an item she has not adopted.
          if (has_x) continue;
          const double ppref = pref_model.Eval(state[static_cast<size_t>(u)],
                                               problem_.BasePref(u, x), x);
          bool adopt = false;
          if (config_.model == DiffusionModel::kIndependentCascade) {
            const double p = pact * ppref;
            if (p > 0.0) {
              const double coin =
                  aligned
                      ? UnitHash(sseed, kAdoptFlip, kAlignedCoinRound,
                                 scratch.NextAttempt(PairKey(u, x, num_items)),
                                 src, u, x)
                      : UnitHash(sseed, kAdoptFlip, t, step, src, u, x);
              if (coin < p) adopt = true;
            }
          } else {
            // LT: accumulate preference-scaled influence mass against a
            // per-(user,item) threshold drawn once per realization.
            double& acc = scratch.LtAcc(PairKey(u, x, num_items));
            acc += pact * ppref;
            const double theta = UnitHash(sseed, kLtThreshold, u, x);
            if (acc >= theta) adopt = true;
          }
          if (adopt) try_queue(u, x);

          // Item associations: being promoted x can trigger adoption of
          // relevant items y, independently of the adoption of x.
          if (ppref <= 0.0) continue;
          for (ItemId y : rel.RelatedItems(x)) {
            if (state[static_cast<size_t>(u)].Has(y)) continue;
            const double pe = assoc_model.ExtraProb(
                state[static_cast<size_t>(u)], pact, ppref, x, y);
            if (pe > 0.0) {
              const double coin =
                  aligned
                      ? UnitHash(sseed, kExtraFlip, kAlignedCoinRound,
                                 scratch.NextAttempt(PairKey(u, y, num_items)),
                                 src, u, x, y)
                      : UnitHash(sseed, kExtraFlip, t, step, src, u, x, y);
              if (coin < pe) try_queue(u, y);
            }
          }
        }
      }

      // Commit simultaneously, then update perceptions (ripple effect).
      scratch.BeginStep();
      for (const auto& [u, x] : pending) {
        if (state[static_cast<size_t>(u)].Add(x)) {
          count_adoption(u, x);
          scratch.QueueNewAdoption(u, x);
        }
      }
      scratch.FlushWeightUpdates(pin);
      frontier.swap(pending);
    }
  }
  return rounds_run;
}

SimScratch& ThreadLocalSimScratch() {
  thread_local SimScratch scratch;
  return scratch;
}

SampleOutcome CampaignSimulator::RunSample(
    const SeedGroup& seeds, uint64_t sample_idx,
    const std::vector<uint8_t>* market_mask, bool keep_states,
    const std::vector<pin::UserState>* initial_states) const {
  return RunSample(seeds, sample_idx, market_mask, keep_states,
                   initial_states, &ThreadLocalSimScratch());
}

SampleOutcome CampaignSimulator::RunSample(
    const SeedGroup& seeds, uint64_t sample_idx,
    const std::vector<uint8_t>* market_mask, bool keep_states,
    const std::vector<pin::UserState>* initial_states,
    SimScratch* scratch) const {
  SeedSchedule sched(seeds, problem_);
  Restore(nullptr, initial_states, *scratch);
  SimulateRounds(sched, sample_idx, 1, sched.last_active_round(), market_mask,
                 *scratch);
  SampleOutcome out;
  out.sigma = scratch->sigma();
  out.sigma_market = scratch->sigma_market();
  out.adoptions = scratch->adoptions();
  if (keep_states) out.states = scratch->states();
  return out;
}

double CampaignSimulator::LikelihoodPi(
    const std::vector<pin::UserState>& states,
    const std::vector<UserId>& market) const {
  const graph::SocialGraph& g = *problem_.graph;
  const int num_items = problem_.NumItems();
  const pin::PreferenceModel& pref_model = dynamics_->preference();
  const pin::InfluenceModel& act_model = dynamics_->influence();
  IMDPP_CHECK_EQ(states.size(), static_cast<size_t>(problem_.NumUsers()));

  double pi = 0.0;
  // AIS per item: for IC, 1 - Π over adopter-in-neighbors of (1 - Pact);
  // scratch reused across market users.
  std::vector<double> no_influence(num_items);
  std::vector<double> lt_mass(num_items);
  for (UserId v : market) {
    std::fill(no_influence.begin(), no_influence.end(), 1.0);
    std::fill(lt_mass.begin(), lt_mass.end(), 0.0);
    bool any = false;
    for (const graph::Edge& e : g.InEdges(v)) {
      const UserId vp = e.to;
      if (states[vp].Adopted().empty()) continue;
      const double pact = act_model.Eval(e.weight, states[vp], states[v]);
      if (pact <= 0.0) continue;
      for (ItemId y : states[vp].Adopted()) {
        if (states[v].Has(y)) continue;
        no_influence[y] *= (1.0 - pact);
        lt_mass[y] += pact;
        any = true;
      }
    }
    if (!any) continue;
    for (ItemId y = 0; y < num_items; ++y) {
      double ais;
      if (config_.model == DiffusionModel::kIndependentCascade) {
        ais = 1.0 - no_influence[y];
      } else {
        ais = Clip01(lt_mass[y]);
      }
      if (ais <= 0.0) continue;
      const double ppref =
          pref_model.Eval(states[v], problem_.BasePref(v, y), y);
      pi += ais * ppref;
    }
  }
  return pi;
}

}  // namespace imdpp::diffusion
