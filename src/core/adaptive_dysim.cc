#include "core/adaptive_dysim.h"

#include <algorithm>

#include "util/cancel.h"

namespace imdpp::core {

namespace {

std::vector<pin::UserState> InitialStates(const Problem& problem) {
  std::vector<pin::UserState> states;
  states.reserve(problem.NumUsers());
  for (graph::UserId u = 0; u < problem.NumUsers(); ++u) {
    std::span<const float> w0 = problem.Wmeta0(u);
    states.emplace_back(problem.NumItems(),
                        std::vector<float>(w0.begin(), w0.end()));
  }
  return states;
}

}  // namespace

AdaptiveResult RunAdaptiveDysim(const Problem& problem,
                                const AdaptiveConfig& config) {
  problem.Validate();
  AdaptiveResult result;
  const int T = problem.num_promotions;
  double remaining = problem.budget;
  std::vector<pin::UserState> reality = InitialStates(problem);

  // One pool serves every per-round engine (ROADMAP: no thread respawn
  // per adaptive round).
  std::shared_ptr<util::ThreadPool> pool = config.base.shared_pool;
  if (pool == nullptr) pool = util::MakeWorkerPool(config.base.num_threads);

  // Initial-perception substitutability oracle for the antagonism check —
  // a table lookup in the prep artifacts (the RelC/RelS tables at the
  // average initial weighting), shared with every other planner of the
  // session instead of rebuilt per adaptive run.
  diffusion::CampaignConfig camp = config.base.campaign;
  const std::shared_ptr<util::CancelToken>& cancel = config.base.backend.cancel;
  util::StatusOr<prep::PrepLease> lease_or = prep::AcquirePrep(
      config.base.prep_cache, config.base.prep_cache_enabled, problem, pool,
      config.base.prep_build_threads, cancel);
  if (!lease_or.ok()) {
    result.status = lease_or.status();
    return result;
  }
  prep::PrepLease& lease = *lease_or;
  const prep::PrepArtifacts& art = *lease.artifacts;
  prep::AddLeaseMetrics(result.metrics, lease,
                        lease.built ? art.build_millis() : 0.0);
  auto antagonistic = [&](kg::ItemId a, kg::ItemId b) {
    if (a == b) return false;
    double rs = art.RelS(a, b);
    return rs > config.antagonism_threshold && rs > art.RelC(a, b);
  };

  for (int t = 1; t <= T; ++t) {
    // Promotion-round boundary: a fired token (deadline, cancellation,
    // injected eval fault) stops the adaptive loop with the rounds
    // planned so far.
    if (!util::CheckCancel(cancel.get()).ok()) break;
    const int horizon = T - t + 1;
    // Sub-problem over the remaining horizon, starting from reality.
    Problem sub = problem;
    sub.num_promotions = horizon;
    sub.budget = remaining;
    diffusion::MonteCarloEngine engine(sub, camp,
                                       config.base.selection_samples,
                                       config.base.num_threads, pool, cancel);
    engine.SetInitialStates(&reality);

    std::vector<Nominee> candidates =
        BuildCandidateUniverse(sub, config.base.candidates);

    AdaptiveRound round;
    round.promotion = t;
    SeedGroup chosen;  // sub-time: promotion index 1 = this round
    double sigma_base = 0.0;
    bool open = true;
    while (open && !candidates.empty() &&
           util::CheckCancel(cancel.get()).ok()) {
      // Highest-MCP affordable candidate over the observed state, via the
      // backend argmax seam (the gain/cost score is affine in the
      // evaluation). min_score = 0.0 keeps the historical
      // only-positive-ratios acceptance.
      std::vector<diffusion::SelectCandidate> cands;
      std::vector<int> cand_idx;
      for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
        const Nominee& n = candidates[i];
        double cost = sub.Cost(n.user, n.item);
        if (cost > remaining - round.spent) continue;
        if (diffusion::ContainsNominee(chosen, n)) continue;
        diffusion::SelectCandidate sc;
        sc.group = chosen;
        sc.group.push_back({n.user, n.item, 1});
        sc.score = [sigma_base, cost](const diffusion::MarketEval& ev) {
          return (ev.sigma - sigma_base) / cost;
        };
        cands.push_back(std::move(sc));
        cand_idx.push_back(i);
      }
      if (cands.empty()) break;
      diffusion::SelectOptions options;
      options.adaptive = config.base.backend.adaptive;
      options.min_score = 0.0;
      const diffusion::SelectBestResult r = engine.SelectBest(cands, options);
      if (r.best_index < 0) break;
      const int best_idx = cand_idx[static_cast<size_t>(r.best_index)];
      const double best_gain = r.best_eval.sigma - sigma_base;
      if (best_gain <= 0.0) break;
      const Nominee n = candidates[best_idx];

      // Antagonism: never promote substitutable items in the same round.
      bool clash = false;
      for (const diffusion::Seed& s : chosen) {
        if (antagonistic(s.item, n.item)) {
          clash = true;
          break;
        }
      }
      if (clash) break;

      // Two-slot timing check (skip in the final round).
      if (t < T && horizon >= 2) {
        SeedGroup with_now = chosen;
        with_now.push_back({n.user, n.item, 1});
        SeedGroup with_later = chosen;
        with_later.push_back({n.user, n.item, 2});
        double g_now = engine.Sigma(with_now) - sigma_base;
        double g_later = engine.Sigma(with_later) - sigma_base;
        if (g_later > g_now) {
          // The best candidate prefers the next promotion: close this
          // round and carry the budget over.
          open = false;
          break;
        }
      }

      chosen.push_back({n.user, n.item, 1});
      round.spent += sub.Cost(n.user, n.item);
      sigma_base += best_gain;
      candidates.erase(candidates.begin() + best_idx);
    }

    // Realize this promotion once from the observed state.
    if (!chosen.empty()) {
      Problem one = problem;
      one.num_promotions = 1;
      diffusion::CampaignSimulator sim(one, camp);
      diffusion::SampleOutcome o = sim.RunSample(
          chosen, config.reality_seed + static_cast<uint64_t>(t), nullptr,
          /*keep_states=*/true, &reality);
      reality = std::move(o.states);
      round.realized_sigma = o.sigma;
      result.realized_sigma += o.sigma;
    }
    for (const diffusion::Seed& s : chosen) {
      round.seeds.push_back({s.user, s.item, t});
      result.seeds.push_back({s.user, s.item, t});
    }
    remaining -= round.spent;
    result.total_spent += round.spent;
    result.rounds.push_back(std::move(round));
  }
  result.status = util::CheckCancel(cancel.get());
  return result;
}

}  // namespace imdpp::core
