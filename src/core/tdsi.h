// Timing Determination by Substantial Inﬂuence (TDSI, Sec. IV-B.3,
// Eqs. 2, 11, 12, 13).
//
//   SI_τ(S_G, (u,x,t), T) = MA_τ(S_G,(u,x,t))
//                           + (T − t + 1)/T · ML_τ(S_G,(u,x,t))
//   MA = σ_τ(S_G ∪ {(u,x,t)}) − σ_τ(S_G)      (immediate adoptions)
//   ML = π_τ(S_G ∪ {(u,x,t)}) − π_τ(S_G)      (subsequent adoptions)
//
// Both differences are common-random-number paired Monte-Carlo estimates.
// The search window for t is [t̂, min(t̂+1, Σ_{i≤k} T_{τ_i})] (see the
// paper's argument that later timings only shrink the ML term).
//
// Evaluation: PickBest runs on a market-bound CheckpointedEval. Every
// candidate (u,x,t) shares the current group's rounds < t, so its market
// evaluation resumes from the round-(t−1) checkpoint instead of
// re-simulating the whole campaign — and because the group only ever
// grows at the latest timings, the checkpoints survive across PickBest
// calls. Values are bit-identical to plain EvalMarket.
#ifndef IMDPP_CORE_TDSI_H_
#define IMDPP_CORE_TDSI_H_

#include <memory>
#include <vector>

#include "diffusion/monte_carlo.h"
#include "diffusion/seed.h"

namespace imdpp::core {

using diffusion::Nominee;
using diffusion::Seed;
using diffusion::SeedGroup;
using diffusion::SigmaBackend;
using graph::UserId;

class TimingSelector {
 public:
  /// `market_users` is τ_k; `total_promotions` is T. `adaptive` governs
  /// PickBest's argmax: disabled (the default) = the fixed-count
  /// reference loop; enabled = sequential-stopping racing (ISSUE 10).
  TimingSelector(const SigmaBackend& engine,
                 const std::vector<UserId>& market_users,
                 int total_promotions,
                 const diffusion::AdaptiveEvalConfig& adaptive = {})
      : engine_(engine),
        market_(market_users),
        total_promotions_(total_promotions),
        adaptive_(adaptive),
        eval_(engine.MakeScheduleEval(/*base=*/{}, market_users)) {}

  /// SI of candidate seed `cand` given the current group seeds `sg`.
  /// `base` must be engine.EvalMarket(sg, market) — passed in so callers
  /// amortize it across candidates. (Reference path; PickBest uses the
  /// backend's schedule evaluator.)
  double SubstantialInfluence(const SeedGroup& sg,
                              const diffusion::MarketEval& base,
                              const Seed& cand) const;

  /// Picks the (nominee, timing) pair with maximal SI over nominees in
  /// `pending` and timings in [t_lo, t_hi] (clamped to [1, T]).
  /// Returns the index into `pending` via `best_index`.
  Seed PickBest(const SeedGroup& sg, const std::vector<Nominee>& pending,
                int t_lo, int t_hi, int* best_index);

 private:
  /// SI from the two (prefix-resumed) market evaluations — the exact
  /// arithmetic of SubstantialInfluence.
  double SiOf(const diffusion::MarketEval& base,
              const diffusion::MarketEval& with, int t) const;

  const SigmaBackend& engine_;
  const std::vector<UserId>& market_;
  int total_promotions_;
  diffusion::AdaptiveEvalConfig adaptive_;
  std::unique_ptr<diffusion::ScheduleEval> eval_;
};

}  // namespace imdpp::core

#endif  // IMDPP_CORE_TDSI_H_
