#include "core/market_order.h"

#include <algorithm>

#include "util/hash.h"

namespace imdpp::core {

const char* MarketOrderName(MarketOrderMetric metric) {
  switch (metric) {
    case MarketOrderMetric::kAntagonisticExtent:
      return "AE";
    case MarketOrderMetric::kProfitability:
      return "PF";
    case MarketOrderMetric::kSize:
      return "SZ";
    case MarketOrderMetric::kRelativeMarketShare:
      return "RMS";
    case MarketOrderMetric::kRandom:
      return "RD";
  }
  return "?";
}

double Profitability(const cluster::TargetMarket& market,
                     const diffusion::Problem& problem,
                     const diffusion::SigmaBackend& engine) {
  diffusion::SeedGroup seeds;
  double cost = 0.0;
  for (const diffusion::Nominee& n : market.nominees) {
    seeds.push_back({n.user, n.item, 1});
    cost += problem.Cost(n.user, n.item);
  }
  diffusion::MarketEval ev = engine.EvalMarket(seeds, market.users);
  return ev.sigma_market - cost;
}

std::vector<int> TopPreferenceShare(const diffusion::Problem& problem) {
  const int num_items = problem.NumItems();
  std::vector<int> share(num_items, 0);
  for (graph::UserId u = 0; u < problem.NumUsers(); ++u) {
    kg::ItemId best = 0;
    double best_p = -1.0;
    for (kg::ItemId x = 0; x < num_items; ++x) {
      double p = problem.BasePref(u, x);
      if (p > best_p) {
        best_p = p;
        best = x;
      }
    }
    ++share[best];
  }
  return share;
}

double RelativeMarketShare(const cluster::TargetMarket& market,
                           const diffusion::Problem& problem,
                           const cluster::SubRelevanceFn& rel_s,
                           const std::vector<int>* top_pref_share) {
  const int num_items = problem.NumItems();
  // share(x): number of users whose top base preference is x — taken
  // from the caller's precomputed vector (prep:: artifacts) when given.
  std::vector<int> computed;
  if (top_pref_share == nullptr) {
    computed = TopPreferenceShare(problem);
    top_pref_share = &computed;
  }
  const std::vector<int>& share = *top_pref_share;
  double total = 0.0;
  int n = 0;
  for (kg::ItemId x : market.items) {
    int max_sub = 0;
    for (kg::ItemId y = 0; y < num_items; ++y) {
      if (y == x || rel_s(x, y) <= 0.05) continue;
      max_sub = std::max(max_sub, share[y]);
    }
    // No substitutable competitor => dominant share (ratio 1 of itself),
    // but avoid division by zero when the item has no fans either.
    double denom = max_sub > 0 ? max_sub : std::max(share[x], 1);
    total += static_cast<double>(share[x]) / denom;
    ++n;
  }
  return n == 0 ? 0.0 : total / n;
}

void OrderGroups(cluster::MarketPlan& plan, MarketOrderMetric metric,
                 const MarketOrderContext& ctx) {
  if (metric == MarketOrderMetric::kAntagonisticExtent) {
    IMDPP_CHECK(ctx.rel_s != nullptr);
    cluster::OrderGroupsByAe(plan, ctx.rel_s);
    return;
  }
  for (cluster::MarketGroup& group : plan.groups) {
    std::vector<std::pair<double, int>> keyed;
    for (int idx : group.order) {
      const cluster::TargetMarket& m = plan.markets[idx];
      double key = 0.0;
      switch (metric) {
        case MarketOrderMetric::kProfitability:
          IMDPP_CHECK(ctx.problem != nullptr && ctx.engine != nullptr);
          key = -Profitability(m, *ctx.problem, *ctx.engine);
          break;
        case MarketOrderMetric::kSize:
          key = -static_cast<double>(m.users.size());
          break;
        case MarketOrderMetric::kRelativeMarketShare:
          IMDPP_CHECK(ctx.problem != nullptr && ctx.rel_s != nullptr);
          key = -RelativeMarketShare(m, *ctx.problem, ctx.rel_s,
                                     ctx.top_pref_share);
          break;
        case MarketOrderMetric::kRandom:
          key = UnitHash(ctx.seed, static_cast<uint64_t>(idx));
          break;
        case MarketOrderMetric::kAntagonisticExtent:
          break;  // handled above
      }
      keyed.emplace_back(key, idx);
    }
    std::stable_sort(keyed.begin(), keyed.end());
    group.order.clear();
    for (const auto& [key, idx] : keyed) group.order.push_back(idx);
  }
}

}  // namespace imdpp::core
