// Dysim — Dynamic perception for seeding in target markets (Algorithm 1).
//
// Three phases per the paper:
//   TMI  — select nominees by MCP (Procedure 2), cluster them
//          (Procedure 3), identify target markets via MIOA regions, group
//          overlapping markets, and order each group by AE (Procedure 4) or
//          an alternative metric (Sec. VI-D).
//   DRE  — inside a market, repeatedly promote the not-yet-promoted item
//          with the highest Dynamic Reachability (Eq. 1).
//   TDSI — assign each nominee of that item the promotional timing with
//          the highest Substantial Influence (Eq. 2), searching only
//          [t̂, min(t̂+1, Σ_{i≤k} T_{τ_i})].
//
// Finally the result is the best of {assembled seed group, all nominees in
// the first promotion, the single best candidate} — the comparison that
// underpins the Theorem 5 guarantee.
//
// Ablations (Fig. 10): `use_target_markets = false` ("w/o TM") treats all
// nominees as one market spanning every user; `use_item_priority = false`
// ("w/o IP") skips DRE and promotes all of a market's items simultaneously
// at the market's start slot.
#ifndef IMDPP_CORE_DYSIM_H_
#define IMDPP_CORE_DYSIM_H_

#include <vector>

#include "cluster/nominee_clustering.h"
#include "cluster/target_market.h"
#include "core/market_order.h"
#include "core/nominee_selection.h"
#include "diffusion/monte_carlo.h"
#include "prep/prep.h"
#include "util/status.h"

namespace imdpp::core {

struct DysimConfig {
  /// Monte-Carlo samples during search and for the final report.
  int selection_samples = 12;
  int eval_samples = 48;

  /// Candidate-universe pruning (0 = exhaustive V x I).
  CandidateConfig candidates;

  cluster::ClusteringConfig clustering;
  cluster::MarketPlanConfig market;
  MarketOrderMetric order = MarketOrderMetric::kAntagonisticExtent;

  /// Depth cap on the DR recursion (d_τ is additionally capped here).
  int dr_max_depth = 3;

  /// Ablation switches (Fig. 10).
  bool use_target_markets = true;
  bool use_item_priority = true;

  /// Theorem-5 guard + timing refinement (compare the assembled schedule
  /// against N_first, the best singleton, a CR-greedy placement, and a
  /// coordinate-ascent refinement; keep the best). The ablation study
  /// disables it so the TMI/DRE/TDSI differences stay visible.
  bool use_theorem5_guard = true;

  diffusion::CampaignConfig campaign;

  /// Which σ-evaluation backend answers every estimate of this run
  /// ("mc" default; see diffusion/sigma_backend.h).
  diffusion::SigmaBackendSpec backend;

  /// Monte-Carlo executor count (util::kAutoThreads = hardware
  /// concurrency, 0 = serial); estimates are thread-count invariant.
  int num_threads = util::kAutoThreads;

  /// Optional pool backing every Monte-Carlo engine this run builds
  /// (sessions pass theirs in); null = one pool shared between the
  /// search and eval engines, created on demand.
  std::shared_ptr<util::ThreadPool> shared_pool;

  /// Optional prep-artifact cache (sessions pass theirs in, so market
  /// structure is built once per dataset and reused across Run/Compare/
  /// sweep cells); null = a standalone artifact is built for this run.
  std::shared_ptr<prep::PrepCache> prep_cache;
  /// false = bypass the cache and always rebuild (determinism tests).
  bool prep_cache_enabled = true;
  /// Gates the prep build's per-source Dijkstra/BFS sweeps: <= 1 runs
  /// them inline, anything else on `shared_pool` when one exists. Purely
  /// a scheduling knob — artifacts are bit-identical for every value.
  int prep_build_threads = util::kAutoThreads;
};

struct DysimResult {
  SeedGroup seeds;
  double sigma = 0.0;       ///< σ̂ at eval_samples
  double total_cost = 0.0;
  std::vector<Nominee> nominees;    ///< TMI output
  cluster::MarketPlan plan;         ///< diagnostics
  /// Work accounting under the canonical util::metric names (ISSUE 9):
  /// eval.simulations / eval.rounds_* / eval.memo_hits across both
  /// engines, prep.builds / prep.reuses / prep.millis for the artifact
  /// acquisition, the σ̂ histogram, and (for "ris") the sketch counters.
  /// Replaces the per-counter fields that used to be hand-threaded here;
  /// api::MergeMetrics folds it into PlanResult in one line.
  util::MetricsSnapshot metrics;
  /// How the run ended (ISSUE 8): OkStatus() for a completed plan; the
  /// token's reason (kCancelled / kDeadlineExceeded / an injected error)
  /// when config.backend.cancel fired, or the prep-acquisition error. A
  /// non-ok result carries whatever partial state existed at the stop.
  util::Status status;
};

/// TMI phase output (Procedure 2 + 3 + market identification), shared by
/// RunDysim and diagnostic tooling (`imdpp datasets --prep`). The plan is
/// *unordered* — OrderGroups is the caller's, because the PF metric needs
/// the run's engine.
struct TmiResult {
  SelectionResult selection;
  std::vector<std::vector<Nominee>> clusters;
  cluster::MarketPlan plan;
};

/// Runs the TMI phase on `problem`, sourcing clustering distances, MIOA
/// regions and relevance oracles from `artifacts`.
TmiResult RunTmi(const Problem& problem,
                 const diffusion::SigmaBackend& engine,
                 const DysimConfig& config, prep::PrepArtifacts& artifacts);

/// Runs Dysim on `problem` (budget and T come from the problem).
DysimResult RunDysim(const Problem& problem, const DysimConfig& config);

}  // namespace imdpp::core

#endif  // IMDPP_CORE_DYSIM_H_
