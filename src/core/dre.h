// Dynamic Reachability Evaluation (DRE, Sec. IV-B.2, Eqs. 1, 9, 10).
//
// DR(x) = PI(x, d_τ) + RI(x, d_τ), where
//   PI(x,d) = Σ_y [ L_C(x,y)·r̄C_{x,y}·w_y − L_S(x,y)·r̄S_{x,y}·w_y
//                   + PI(y, d−1) ]                              (Eq. 9)
//   RI(x,d) = Σ_z [ L_C(z,x)·r̄C_{z,x}·w_x − L_S(z,x)·r̄S_{z,x}·w_x
//                   + RI(z, d−1) ]                              (Eq. 10)
//   L_C = r̄C / (r̄C + r̄S),  L_S = r̄S / (r̄C + r̄S)            (0 if both 0)
//
// r̄C / r̄S are the market-average relevance after the promotion of the
// current seed group S_G. We evaluate them at the *market-average expected
// weighting* vector (mean over the market's users of their Monte-Carlo
// expected Wmeta) — relevance is linear in the weightings up to clipping,
// so averaging weightings first is a tight approximation and keeps DR
// evaluation O(|I|² · d) instead of O(|τ|·|I|²·d).
//
// RI is linear in w_x (every term of the recursion carries the same w_x),
// so we compute the unit-importance recursion once and scale.
#ifndef IMDPP_CORE_DRE_H_
#define IMDPP_CORE_DRE_H_

#include <vector>

#include "diffusion/monte_carlo.h"
#include "pin/personal_item_network.h"

namespace imdpp::core {

using diffusion::ExpectedState;
using graph::UserId;
using kg::ItemId;

class DreEvaluator {
 public:
  /// `market_users` — the market τ (all users if empty);
  /// `importance` — W; `max_depth` caps d_τ.
  DreEvaluator(const pin::PersonalItemNetwork& pin, const ExpectedState& state,
               const std::vector<UserId>& market_users,
               const std::vector<double>& importance, int max_depth);

  /// Proactive impact PI_{W,τ}(S_G, x, d).
  double ProactiveImpact(ItemId x, int d);

  /// Reactive impact RI_{w_x,τ}(S_G, x, d).
  double ReactiveImpact(ItemId x, int d);

  /// DR_{W,τ}(S_G, x) at depth d (Eq. 1).
  double DynamicReachability(ItemId x, int d) {
    return ProactiveImpact(x, d) + ReactiveImpact(x, d);
  }

  /// Item in `items` with the highest DR at depth d; ties break toward the
  /// lower item id. Requires non-empty `items`.
  ItemId ArgMaxDr(const std::vector<ItemId>& items, int d);

  /// Market-average relevance at the expected weightings.
  double AvgRelC(ItemId x, ItemId y) const;
  double AvgRelS(ItemId x, ItemId y) const;

 private:
  double PiRec(ItemId x, int d);
  double RiUnitRec(ItemId x, int d);

  const pin::PersonalItemNetwork& pin_;
  const std::vector<double>& importance_;
  int max_depth_;
  std::vector<float> avg_wmeta_;  ///< market-average expected weightings

  // Memo tables keyed by x * (max_depth+1) + d; NaN = unset.
  std::vector<double> pi_memo_;
  std::vector<double> ri_unit_memo_;
};

}  // namespace imdpp::core

#endif  // IMDPP_CORE_DRE_H_
