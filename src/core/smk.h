// Submodular Maximization under a Knapsack constraint (SMK) — the
// enumeration-free 1/12-approximation of Theorem 3 / Theorem 4.
//
// For the static setting (Ppref/Pact/Pext frozen at their initial values)
// Lemma 1 shows σ is non-monotone submodular, and the paper builds a
// 1/12-approximation within O(n²) oracle calls from three ingredients:
//   * two MCP-greedy passes S1 (on the ground set) and S2 (on the ground
//     set minus S1), each run until the budget is just violated or the
//     marginal gain turns negative (Lemma 3 gives f(Si) ≥ f(Si ∪ C)/2
//     against any feasible C disjoint from the earlier passes);
//   * a linear-time Unconstrained Submodular Maximization (USM)
//     double-greedy (Buchbinder et al.) on the ground set S1;
//   * a feasibility repair (drop the budget-violating element) and a
//     best-singleton fallback; the output is the best feasible candidate.
//
// The implementation is generic over a set-function oracle so it is
// testable against hand-built modular/submodular functions; the IMDPP
// instantiation (f = σ̂ with nominees seeded in the first promotion) is
// provided as SelectNomineesSmk.
#ifndef IMDPP_CORE_SMK_H_
#define IMDPP_CORE_SMK_H_

#include <functional>
#include <vector>

#include "core/nominee_selection.h"

namespace imdpp::core {

/// Set-function oracle over ground-set indices [0, n).
using SetFunction =
    std::function<double(const std::vector<int>& /*sorted unique*/)>;

struct SmkResult {
  std::vector<int> selected;  ///< sorted ground-set indices
  double value = 0.0;
  int64_t oracle_calls = 0;
};

/// Deterministic double-greedy USM (1/3 guarantee; the randomized variant
/// achieves 1/2 — determinism is worth more to this library than the
/// constant). Restricted to the `ground` subset.
SmkResult DoubleGreedyUsm(const std::vector<int>& ground,
                          const SetFunction& f);

/// The Theorem-3 algorithm. `cost[i]` > 0, `budget` >= 0.
SmkResult SolveSmk(int ground_size, const SetFunction& f,
                   const std::vector<double>& cost, double budget);

/// IMDPP instantiation: nominees selected by SolveSmk with
/// f(N) = σ̂(N seeded at t = 1). Carries the Theorem-4 guarantee when the
/// problem's dynamics are frozen (pin::PerceptionParams::FrozenDynamics).
SelectionResult SelectNomineesSmk(const diffusion::SigmaBackend& engine,
                                  const diffusion::Problem& problem,
                                  const std::vector<diffusion::Nominee>& candidates,
                                  double budget);

}  // namespace imdpp::core

#endif  // IMDPP_CORE_SMK_H_
