// Adaptive Dysim (Sec. V-D): no predefined budget allocation across
// promotions; after each promotion the realized adoptions are observed and
// the next promotion is planned from the observed state.
//
// Per round t < T the planner repeats:
//   * pick the affordable candidate with the highest MCP, estimated from
//     the observed state over the remaining horizon;
//   * reject it and stop the round if it would promote an item
//     substitutable to an item already chosen this round (antagonism of
//     the substitutable relationship);
//   * stop the round if the candidate prefers timing t+1 over t (the
//     TDSI-style two-slot check) — remaining budget carries over.
// The last round spends the remaining budget greedily. After planning a
// round, one realization of that promotion is simulated (the "reality"
// draw) and its end state seeds the next round.
#ifndef IMDPP_CORE_ADAPTIVE_DYSIM_H_
#define IMDPP_CORE_ADAPTIVE_DYSIM_H_

#include <vector>

#include "core/dysim.h"

namespace imdpp::core {

struct AdaptiveConfig {
  /// Candidate pruning / sampling / campaign settings reused from Dysim.
  DysimConfig base;
  /// Seed of the "reality" realization (which adoptions actually happen).
  uint64_t reality_seed = 9001;
  /// Net substitutable relevance above which two same-round items count as
  /// antagonistic.
  double antagonism_threshold = 0.25;
};

struct AdaptiveRound {
  int promotion = 0;      ///< 1-based t
  SeedGroup seeds;        ///< seeds placed this round (absolute timing)
  double spent = 0.0;
  double realized_sigma = 0.0;  ///< adoptions observed in this round
};

struct AdaptiveResult {
  SeedGroup seeds;
  double realized_sigma = 0.0;
  double total_spent = 0.0;
  std::vector<AdaptiveRound> rounds;
  /// prep:: artifact accounting under the canonical util::metric names
  /// (see DysimResult::metrics).
  util::MetricsSnapshot metrics;
  /// How the run ended (see DysimResult::status); a non-ok run stops at
  /// the next promotion-round boundary with the rounds planned so far.
  util::Status status;
};

AdaptiveResult RunAdaptiveDysim(const Problem& problem,
                                const AdaptiveConfig& config);

}  // namespace imdpp::core

#endif  // IMDPP_CORE_ADAPTIVE_DYSIM_H_
