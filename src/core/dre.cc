#include "core/dre.h"

#include <cmath>
#include <limits>

namespace imdpp::core {

namespace {
constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();
}

DreEvaluator::DreEvaluator(const pin::PersonalItemNetwork& pin,
                           const ExpectedState& state,
                           const std::vector<UserId>& market_users,
                           const std::vector<double>& importance,
                           int max_depth)
    : pin_(pin), importance_(importance), max_depth_(max_depth) {
  IMDPP_CHECK_GE(max_depth, 0);
  const int num_metas = pin_.relevance().NumMetas();
  avg_wmeta_.assign(num_metas, 0.0f);
  int n = 0;
  auto add = [&](UserId u) {
    std::span<const float> w = state.AvgWmeta(u);
    for (int m = 0; m < num_metas; ++m) avg_wmeta_[m] += w[m];
    ++n;
  };
  if (market_users.empty()) {
    for (UserId u = 0; u < state.num_users(); ++u) add(u);
  } else {
    for (UserId u : market_users) add(u);
  }
  if (n > 0) {
    for (float& w : avg_wmeta_) w /= static_cast<float>(n);
  }
  const size_t slots =
      static_cast<size_t>(pin_.relevance().NumItems()) * (max_depth_ + 1);
  pi_memo_.assign(slots, kUnset);
  ri_unit_memo_.assign(slots, kUnset);
}

double DreEvaluator::AvgRelC(ItemId x, ItemId y) const {
  return pin_.RelC(avg_wmeta_, x, y);
}

double DreEvaluator::AvgRelS(ItemId x, ItemId y) const {
  return pin_.RelS(avg_wmeta_, x, y);
}

double DreEvaluator::PiRec(ItemId x, int d) {
  if (d <= 0) return 0.0;
  const size_t key = static_cast<size_t>(x) * (max_depth_ + 1) + d;
  if (!std::isnan(pi_memo_[key])) return pi_memo_[key];
  pi_memo_[key] = 0.0;  // break cycles: a revisited item contributes 0
  double total = 0.0;
  for (ItemId y : pin_.relevance().RelatedItems(x)) {
    const double rc = AvgRelC(x, y);
    const double rs = AvgRelS(x, y);
    const double denom = rc + rs;
    if (denom > 0.0) {
      const double lc = rc / denom;
      const double ls = rs / denom;
      total += (lc * rc - ls * rs) * importance_[y];
    }
    total += PiRec(y, d - 1);
  }
  pi_memo_[key] = total;
  return total;
}

double DreEvaluator::RiUnitRec(ItemId x, int d) {
  if (d <= 0) return 0.0;
  const size_t key = static_cast<size_t>(x) * (max_depth_ + 1) + d;
  if (!std::isnan(ri_unit_memo_[key])) return ri_unit_memo_[key];
  ri_unit_memo_[key] = 0.0;
  double total = 0.0;
  // z ranges over items relevant to x; relevance support is symmetric
  // enough that RelatedItems(x) serves as the in-neighborhood too.
  for (ItemId z : pin_.relevance().RelatedItems(x)) {
    const double rc = AvgRelC(z, x);
    const double rs = AvgRelS(z, x);
    const double denom = rc + rs;
    if (denom > 0.0) {
      const double lc = rc / denom;
      const double ls = rs / denom;
      total += lc * rc - ls * rs;
    }
    total += RiUnitRec(z, d - 1);
  }
  ri_unit_memo_[key] = total;
  return total;
}

double DreEvaluator::ProactiveImpact(ItemId x, int d) {
  return PiRec(x, std::min(d, max_depth_));
}

double DreEvaluator::ReactiveImpact(ItemId x, int d) {
  return importance_[x] * RiUnitRec(x, std::min(d, max_depth_));
}

ItemId DreEvaluator::ArgMaxDr(const std::vector<ItemId>& items, int d) {
  IMDPP_CHECK(!items.empty());
  ItemId best = items[0];
  double best_dr = -std::numeric_limits<double>::infinity();
  for (ItemId x : items) {
    double dr = DynamicReachability(x, d);
    if (dr > best_dr) {
      best_dr = dr;
      best = x;
    }
  }
  return best;
}

}  // namespace imdpp::core
