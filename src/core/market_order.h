// Market-order metrics (Sec. VI-D): how TMI prioritizes the target markets
// inside a group G. The paper's default is Antagonistic Extent (AE)
// ascending; the comparison study adds Proﬁtability (PF), market Size (SZ),
// Relative Market Share (RMS) and a Random order (RD).
#ifndef IMDPP_CORE_MARKET_ORDER_H_
#define IMDPP_CORE_MARKET_ORDER_H_

#include "cluster/target_market.h"
#include "diffusion/monte_carlo.h"
#include "diffusion/problem.h"

namespace imdpp::core {

enum class MarketOrderMetric {
  kAntagonisticExtent,   ///< AE ascending (default)
  kProfitability,        ///< PF descending: E[adoptions] − nominee cost
  kSize,                 ///< SZ descending: number of market users
  kRelativeMarketShare,  ///< RMS descending
  kRandom,               ///< RD: deterministic hash shuffle
};

const char* MarketOrderName(MarketOrderMetric metric);

struct MarketOrderContext {
  const diffusion::Problem* problem = nullptr;
  /// σ̂ backend, required for PF.
  const diffusion::SigmaBackend* engine = nullptr;
  /// r̄^S oracle over all users, required for AE and RMS.
  cluster::SubRelevanceFn rel_s;
  /// Optional precomputed top-preference share vector for RMS (the prep::
  /// artifact layer passes its cached copy); null = computed on the fly.
  const std::vector<int>* top_pref_share = nullptr;
  /// Shuffle seed for RD.
  uint64_t seed = 7;
};

/// Reorders every group's `order` in `plan` by the chosen metric.
void OrderGroups(cluster::MarketPlan& plan, MarketOrderMetric metric,
                 const MarketOrderContext& ctx);

/// PF(τ): expected importance-aware adoptions in τ when τ's nominees seed
/// the first promotion, minus the nominees' total cost.
double Profitability(const cluster::TargetMarket& market,
                     const diffusion::Problem& problem,
                     const diffusion::SigmaBackend& engine);

/// share(x) = #users whose highest base preference is x — the |V| x |I|
/// scan RMS repeats per market; the prep:: layer computes it once.
std::vector<int> TopPreferenceShare(const diffusion::Problem& problem);

/// RMS(τ): mean over τ's items x of share(x) / max substitutable share,
/// where share(x) = #users whose highest base preference is x.
/// `top_pref_share` (optional) supplies the precomputed share vector.
double RelativeMarketShare(const cluster::TargetMarket& market,
                           const diffusion::Problem& problem,
                           const cluster::SubRelevanceFn& rel_s,
                           const std::vector<int>* top_pref_share = nullptr);

}  // namespace imdpp::core

#endif  // IMDPP_CORE_MARKET_ORDER_H_
