#include "core/dysim.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>

#include "core/dre.h"
#include "core/tdsi.h"
#include "util/cancel.h"

namespace imdpp::core {

TmiResult RunTmi(const Problem& problem,
                 const diffusion::SigmaBackend& engine,
                 const DysimConfig& config, prep::PrepArtifacts& artifacts) {
  TmiResult tmi;

  // ---- Nominee selection (Procedure 2) — budget-dependent, never
  // cached; the structure below it comes from the prep artifacts. ----
  std::vector<Nominee> candidates =
      BuildCandidateUniverse(problem, config.candidates);
  tmi.selection = SelectNominees(engine, problem, candidates, problem.budget);

  // ---- Clustering and market identification, from cached artifacts. ----
  if (config.use_target_markets) {
    tmi.clusters = artifacts.Clusters(tmi.selection.nominees,
                                      config.clustering);
  } else if (!tmi.selection.nominees.empty()) {
    tmi.clusters.push_back(tmi.selection.nominees);  // ablation: one market
  }
  tmi.plan = artifacts.Plan(tmi.clusters, config.market);
  if (!config.use_target_markets) {
    for (cluster::TargetMarket& m : tmi.plan.markets) {
      m.users.resize(problem.NumUsers());
      for (graph::UserId u = 0; u < problem.NumUsers(); ++u) m.users[u] = u;
      m.diameter = config.dr_max_depth;
    }
  }
  return tmi;
}

DysimResult RunDysim(const Problem& problem, const DysimConfig& config) {
  problem.Validate();
  DysimResult result;
  const int T = problem.num_promotions;
  // The run's cancellation/deadline token (may be null). Checked at every
  // phase and greedy-iteration boundary below; the engines additionally
  // check it per estimate. All checks are pure control flow while the
  // token is quiet — no-deadline runs are bit-identical.
  const util::CancelToken* cancel = config.backend.cancel.get();

  // One worker pool serves both the search and the final-eval engine
  // (ROADMAP: no per-engine thread respawn); sessions can pass theirs in.
  std::shared_ptr<util::ThreadPool> pool = config.shared_pool;
  if (pool == nullptr) pool = util::MakeWorkerPool(config.num_threads);
  std::unique_ptr<diffusion::SigmaBackend> engine_owner =
      diffusion::MakeSigmaBackend(config.backend, problem, config.campaign,
                                  config.selection_samples,
                                  config.num_threads, pool);
  diffusion::SigmaBackend& engine = *engine_owner;
  // The selection sweeps below revisit identical seed vectors (singleton
  // gains re-checked by the greedy, refinement re-testing a timing); the
  // memo returns the identical bits without re-simulating.
  engine.EnableSigmaMemo();
  const pin::PersonalItemNetwork& pin = engine.simulator().dynamics().pin();

  // ---- Prep artifacts: built once here, or served from the session's
  // cache (one build per dataset across Run/Compare/sweep cells). ----
  util::StatusOr<prep::PrepLease> lease_or =
      prep::AcquirePrep(config.prep_cache, config.prep_cache_enabled, problem,
                        pool, config.prep_build_threads,
                        config.backend.cancel);
  if (!lease_or.ok()) {
    result.status = lease_or.status();
    return result;
  }
  prep::PrepLease& lease = *lease_or;
  prep::PrepArtifacts& art = *lease.artifacts;
  const double prep_millis_before = lease.built ? 0.0 : art.total_millis();

  // ---- TMI phase. ----
  TmiResult tmi = RunTmi(problem, engine, config, art);
  SelectionResult& sel = tmi.selection;
  result.nominees = sel.nominees;
  result.total_cost = sel.total_cost;
  cluster::MarketPlan plan = std::move(tmi.plan);

  MarketOrderContext octx;
  octx.problem = &problem;
  octx.engine = &engine;
  octx.rel_s = [&art](kg::ItemId x, kg::ItemId y) { return art.RelS(x, y); };
  octx.top_pref_share = &art.top_pref_share();
  OrderGroups(plan, config.order, octx);

  // ---- DRE + TDSI phases, per group G (groups are independent). ----
  const diffusion::ExpectedState es0 =
      diffusion::ExpectedState::InitialOf(problem);
  SeedGroup all_seeds;
  for (const cluster::MarketGroup& group : plan.groups) {
    if (!util::CheckCancel(cancel).ok()) break;
    SeedGroup sg;
    // DRE re-evaluates the expected state per item under the growing sg —
    // the same prefix-reuse shape as the σ sweeps, so each re-evaluation
    // resumes from the checkpoints of sg's shared earlier rounds instead
    // of re-simulating them (bit-identical to engine.Expected(sg)).
    std::unique_ptr<diffusion::ScheduleEval> dre_eval =
        engine.MakeScheduleEval(/*base=*/{});
    // Promotional durations T_{τ_k} proportional to nominee counts
    // (at least 1), with prefix sums bounding the TDSI timing search.
    int total_nominees = 0;
    for (int idx : group.order) {
      total_nominees +=
          static_cast<int>(plan.markets[idx].nominees.size());
    }
    std::vector<int> prefix;  // Σ_{i≤k} T_{τ_i}
    {
      int acc = 0;
      for (int idx : group.order) {
        int n = static_cast<int>(plan.markets[idx].nominees.size());
        int dur = std::max(
            1, total_nominees == 0 ? 1 : (n * T) / total_nominees);
        acc += dur;
        prefix.push_back(acc);
      }
    }

    for (size_t k = 0; k < group.order.size(); ++k) {
      const cluster::TargetMarket& market = plan.markets[group.order[k]];

      if (!config.use_item_priority) {
        // Ablation "w/o IP": promote all of the market's items at the
        // market's start slot, simultaneously.
        int t_start = std::clamp(1 + (k > 0 ? prefix[k - 1] : 0), 1, T);
        for (const Nominee& n : market.nominees) {
          sg.push_back({n.user, n.item, t_start});
        }
        continue;
      }

      std::vector<kg::ItemId> remaining_items = market.items;
      TimingSelector tdsi(engine, market.users, T,
                          config.backend.adaptive);
      while (!remaining_items.empty() && util::CheckCancel(cancel).ok()) {
        // DRE: re-evaluate reachability under the current seed group.
        if (!sg.empty()) dre_eval->Rebase(sg);
        diffusion::ExpectedState es =
            sg.empty() ? es0 : dre_eval->Expected(sg);
        DreEvaluator dre(pin, es, market.users, problem.importance,
                         config.dr_max_depth);
        int depth = std::min(market.diameter, config.dr_max_depth);
        kg::ItemId xp = dre.ArgMaxDr(remaining_items, depth);
        remaining_items.erase(std::find(remaining_items.begin(),
                                        remaining_items.end(), xp));

        std::vector<Nominee> pending;
        for (const Nominee& n : market.nominees) {
          if (n.item == xp) pending.push_back(n);
        }
        // TDSI: timing per nominee, window [t̂, min(t̂+1, Σ_{i≤k}T_τ)].
        while (!pending.empty()) {
          int t_hat = sg.empty() ? 1 : diffusion::LatestTiming(sg);
          int t_hi = std::min(t_hat + 1, prefix[k]);
          int idx = 0;
          diffusion::Seed best =
              tdsi.PickBest(sg, pending, t_hat, t_hi, &idx);
          sg.push_back(best);
          pending.erase(pending.begin() + idx);
        }
      }
    }
    all_seeds.insert(all_seeds.end(), sg.begin(), sg.end());
  }

  // ---- Theorem-5 guard: best of SG, N_first, and e_max. ----
  std::unique_ptr<diffusion::SigmaBackend> eval_owner =
      diffusion::MakeSigmaBackend(config.backend, problem, config.campaign,
                                  config.eval_samples, config.num_threads,
                                  pool);
  diffusion::SigmaBackend& eval = *eval_owner;
  double best_sigma = eval.Sigma(all_seeds);
  SeedGroup best_seeds = all_seeds;

  SeedGroup n_first;
  for (const Nominee& n : sel.nominees) n_first.push_back({n.user, n.item, 1});
  if (config.use_theorem5_guard && n_first != all_seeds) {
    double s = eval.Sigma(n_first);
    if (s > best_sigma) {
      best_sigma = s;
      best_seeds = n_first;
    }
  }
  // One CheckpointedEval serves BOTH Theorem-5 guard branches below
  // (ROADMAP item): the round-greedy placement and the coordinate-ascent
  // refinement search overlapping schedules, so the refinement resumes
  // from the placement loop's surviving checkpoints (Rebase keeps every
  // shared-prefix round) instead of rebuilding its own from scratch. The
  // extra resumes land in rounds_skipped; estimates stay bit-identical.
  std::unique_ptr<diffusion::ScheduleEval> guard_eval;
  if (config.use_theorem5_guard && T > 1) {
    guard_eval = engine.MakeScheduleEval(SeedGroup{});
  }

  // Round-greedy placement of the same nominees (CR-Greedy style): for each
  // nominee in selection order, the promotion with the highest paired σ̂.
  // Candidate (n, t) shares `placed`'s rounds < t, so each σ̂ resumes from
  // the round-(t-1) checkpoint; accepting a seed at best_t keeps every
  // checkpoint below best_t alive.
  if (config.use_theorem5_guard && T > 1 && !sel.nominees.empty()) {
    diffusion::ScheduleEval& placer = *guard_eval;
    SeedGroup placed;
    for (const Nominee& n : sel.nominees) {
      if (!util::CheckCancel(cancel).ok()) break;
      // Race the T timings of this nominee (candidate index i ↔ round
      // i+1). min_score = -1.0 reproduces the historical `best_s` seed,
      // so the fixed path is the exact old loop.
      std::vector<diffusion::SelectCandidate> timings(
          static_cast<size_t>(T));
      for (int t = 1; t <= T; ++t) {
        SeedGroup with = placed;
        with.push_back({n.user, n.item, t});
        timings[static_cast<size_t>(t - 1)].group = std::move(with);
      }
      diffusion::SelectOptions options;
      options.adaptive = config.backend.adaptive;
      options.min_score = -1.0;
      const diffusion::SelectBestResult r =
          placer.SelectBest(timings, options);
      const int best_t = r.best_index < 0 ? 1 : r.best_index + 1;
      placed.push_back({n.user, n.item, best_t});
      placer.Rebase(placed);
    }
    double s = eval.Sigma(placed);
    if (s > best_sigma) {
      best_sigma = s;
      best_seeds = placed;
    }
  }
  if (config.use_theorem5_guard && sel.best_single_gain > 0.0) {
    SeedGroup single{{sel.best_single.user, sel.best_single.item, 1}};
    double s = eval.Sigma(single);
    if (s > best_sigma) {
      best_sigma = s;
      best_seeds = single;
    }
  }

  // Timing refinement: coordinate ascent over the chosen seeds' rounds.
  // Greedy per-nominee placement is myopic (it fixes each timing before
  // later seeds exist); two sweeps of "move one seed to its best round
  // given all the others" recover most of the jointly-scheduled value.
  if (config.use_theorem5_guard && T > 1 && !best_seeds.empty()) {
    SeedGroup refined = best_seeds;
    double refined_sigma = engine.Sigma(refined);
    // Moving seed i to round t only perturbs rounds >= min(t, original),
    // so each trial σ̂ resumes from the checkpoints of `refined` without
    // seed i; identical configurations revisited across sweeps hit the σ
    // memo outright. Rebasing the shared guard evaluator (instead of a
    // fresh one) carries the placement loop's checkpoints over for every
    // round the two schedules share.
    diffusion::ScheduleEval& refiner = *guard_eval;
    refiner.Rebase(refined);
    for (int sweep = 0; sweep < 2 && util::CheckCancel(cancel).ok(); ++sweep) {
      bool moved = false;
      for (size_t i = 0; i < refined.size(); ++i) {
        if (!util::CheckCancel(cancel).ok()) break;
        int original = refined[i].promotion;
        int best_t = original;
        SeedGroup without = refined;
        without.erase(without.begin() + static_cast<ptrdiff_t>(i));
        refiner.Rebase(std::move(without));
        // Candidates are the T−1 alternative rounds for seed i, in round
        // order; min_score = the current σ̂, so a move is accepted only
        // when it strictly improves — the old running-update loop's exact
        // acceptance rule and call order.
        std::vector<diffusion::SelectCandidate> moves;
        std::vector<int> move_t;
        moves.reserve(static_cast<size_t>(T - 1));
        move_t.reserve(static_cast<size_t>(T - 1));
        for (int t = 1; t <= T; ++t) {
          if (t == original) continue;
          refined[i].promotion = t;
          diffusion::SelectCandidate sc;
          sc.group = refined;
          moves.push_back(std::move(sc));
          move_t.push_back(t);
        }
        refined[i].promotion = original;
        diffusion::SelectOptions options;
        options.adaptive = config.backend.adaptive;
        options.min_score = refined_sigma;
        const diffusion::SelectBestResult r =
            refiner.SelectBest(moves, options);
        if (r.best_index >= 0) {
          refined_sigma = r.best_score;
          best_t = move_t[static_cast<size_t>(r.best_index)];
          moved = true;
        }
        refined[i].promotion = best_t;
      }
      if (!moved) break;
    }
    double s = eval.Sigma(refined);
    if (s > best_sigma) {
      best_sigma = s;
      best_seeds = refined;
    }
  }

  result.seeds = std::move(best_seeds);
  result.sigma = best_sigma;
  result.total_cost = problem.TotalCost(result.seeds);
  result.plan = std::move(plan);
  engine.AddMetrics(result.metrics);
  eval.AddMetrics(result.metrics);
  prep::AddLeaseMetrics(result.metrics, lease,
                        art.total_millis() - prep_millis_before);
  // A token that fired anywhere above is the run's outcome; the seeds and
  // σ̂ carried out are the partial state at the stop.
  result.status = util::CheckCancel(cancel);
  return result;
}

}  // namespace imdpp::core
