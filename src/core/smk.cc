#include "core/smk.h"

#include <algorithm>

#include "util/check.h"

namespace imdpp::core {

namespace {

/// Inserts idx keeping the vector sorted; returns false if already present.
bool SortedInsert(std::vector<int>& v, int idx) {
  auto it = std::lower_bound(v.begin(), v.end(), idx);
  if (it != v.end() && *it == idx) return false;
  v.insert(it, idx);
  return true;
}

void SortedErase(std::vector<int>& v, int idx) {
  auto it = std::lower_bound(v.begin(), v.end(), idx);
  if (it != v.end() && *it == idx) v.erase(it);
}

/// One MCP-greedy pass over `pool` (Lemma 3): repeatedly add the element
/// with the highest marginal-gain/cost ratio; stop after the first
/// addition that makes the running cost exceed `budget` ("just violating")
/// or when every remaining marginal gain is non-positive.
struct GreedyPass {
  std::vector<int> selected;  ///< sorted; may exceed budget by one element
  int violator = -1;          ///< the budget-violating element, if any
  double value = 0.0;
  int64_t calls = 0;
};

GreedyPass McpGreedy(const std::vector<int>& pool, const SetFunction& f,
                     const std::vector<double>& cost, double budget) {
  GreedyPass pass;
  std::vector<uint8_t> used(pool.size(), 0);
  double spent = 0.0;
  while (true) {
    int best = -1;
    double best_ratio = 0.0;
    double best_gain = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      std::vector<int> with = pass.selected;
      SortedInsert(with, pool[i]);
      double gain = f(with) - pass.value;
      ++pass.calls;
      double ratio = gain / cost[pool[i]];
      if (best < 0 || ratio > best_ratio) {
        best_ratio = ratio;
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0 || best_gain <= 0.0) break;  // negative-marginal stop
    used[best] = 1;
    SortedInsert(pass.selected, pool[best]);
    pass.value += best_gain;
    spent += cost[pool[best]];
    if (spent > budget) {
      pass.violator = pool[best];  // just violated: stop here
      break;
    }
  }
  return pass;
}

double CostOf(const std::vector<int>& set, const std::vector<double>& cost) {
  double c = 0.0;
  for (int i : set) c += cost[i];
  return c;
}

}  // namespace

SmkResult DoubleGreedyUsm(const std::vector<int>& ground,
                          const SetFunction& f) {
  SmkResult result;
  // X grows from ∅, Y shrinks from `ground`; element i joins X if its
  // add-gain beats its removal-gain from Y.
  std::vector<int> x;
  std::vector<int> y = ground;
  std::sort(y.begin(), y.end());
  double fx = f(x);
  double fy = f(y);
  result.oracle_calls += 2;
  for (int i : ground) {
    std::vector<int> x_with = x;
    SortedInsert(x_with, i);
    std::vector<int> y_without = y;
    SortedErase(y_without, i);
    double a = f(x_with) - fx;
    double b = f(y_without) - fy;
    result.oracle_calls += 2;
    if (a >= b) {
      x = std::move(x_with);
      fx += a;
    } else {
      y = std::move(y_without);
      fy += b;
    }
  }
  // x == y at the end of the sweep.
  result.selected = std::move(x);
  result.value = fx;
  return result;
}

SmkResult SolveSmk(int ground_size, const SetFunction& f,
                   const std::vector<double>& cost, double budget) {
  IMDPP_CHECK_EQ(cost.size(), static_cast<size_t>(ground_size));
  for (double c : cost) IMDPP_CHECK_GT(c, 0.0);
  SmkResult best;
  int64_t calls = 0;

  std::vector<int> all(ground_size);
  for (int i = 0; i < ground_size; ++i) all[i] = i;

  // Pass 1 and pass 2 on the remainder.
  GreedyPass s1 = McpGreedy(all, f, cost, budget);
  calls += s1.calls;
  std::vector<int> rest;
  for (int i : all) {
    if (!std::binary_search(s1.selected.begin(), s1.selected.end(), i)) {
      rest.push_back(i);
    }
  }
  GreedyPass s2 = McpGreedy(rest, f, cost, budget);
  calls += s2.calls;

  // USM on the ground set S1 (the f(S1 ∩ S*) >= c·opt branch).
  SmkResult usm = DoubleGreedyUsm(s1.selected, f);
  calls += usm.oracle_calls;

  auto consider = [&](std::vector<int> candidate) {
    if (CostOf(candidate, cost) > budget) return;
    double v = f(candidate);
    ++calls;
    if (v > best.value || best.selected.empty()) {
      if (v >= best.value) {
        best.value = v;
        best.selected = std::move(candidate);
      }
    }
  };

  // Feasibility repair: drop the violating element, then greedily refill
  // the slack with affordable positive-gain elements (a practical
  // post-processing step; the guarantee holds without it).
  auto repaired = [&](const GreedyPass& pass) {
    std::vector<int> fixed = pass.selected;
    if (pass.violator >= 0) SortedErase(fixed, pass.violator);
    double spent = CostOf(fixed, cost);
    double value = f(fixed);
    ++calls;
    while (true) {
      int pick = -1;
      double pick_ratio = 0.0;
      double pick_gain = 0.0;
      for (int i = 0; i < ground_size; ++i) {
        if (std::binary_search(fixed.begin(), fixed.end(), i)) continue;
        if (cost[i] > budget - spent) continue;
        std::vector<int> with = fixed;
        SortedInsert(with, i);
        double gain = f(with) - value;
        ++calls;
        if (gain / cost[i] > pick_ratio) {
          pick_ratio = gain / cost[i];
          pick_gain = gain;
          pick = i;
        }
      }
      if (pick < 0 || pick_gain <= 0.0) break;
      SortedInsert(fixed, pick);
      spent += cost[pick];
      value += pick_gain;
    }
    return fixed;
  };
  consider(repaired(s1));
  consider(repaired(s2));
  consider(usm.selected);

  // Best feasible singleton.
  int best_single = -1;
  double best_single_v = 0.0;
  for (int i = 0; i < ground_size; ++i) {
    if (cost[i] > budget) continue;
    double v = f({i});
    ++calls;
    if (v > best_single_v) {
      best_single_v = v;
      best_single = i;
    }
  }
  if (best_single >= 0) consider({best_single});

  best.oracle_calls = calls;
  return best;
}

SelectionResult SelectNomineesSmk(
    const diffusion::SigmaBackend& engine,
    const diffusion::Problem& problem,
    const std::vector<diffusion::Nominee>& candidates, double budget) {
  SelectionResult result;
  if (candidates.empty()) return result;
  std::vector<double> cost(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    cost[i] = problem.Cost(candidates[i].user, candidates[i].item);
  }
  SetFunction f = [&](const std::vector<int>& idx) {
    diffusion::SeedGroup seeds;
    seeds.reserve(idx.size());
    for (int i : idx) {
      seeds.push_back({candidates[i].user, candidates[i].item, 1});
    }
    return engine.Sigma(seeds);
  };
  SmkResult smk =
      SolveSmk(static_cast<int>(candidates.size()), f, cost, budget);
  for (int i : smk.selected) {
    result.nominees.push_back(candidates[i]);
    result.total_cost += cost[i];
  }
  // Best singleton for the Theorem-5 guard.
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (cost[i] > budget) continue;
    double v = f({static_cast<int>(i)});
    if (v > result.best_single_gain) {
      result.best_single_gain = v;
      result.best_single = candidates[i];
    }
  }
  return result;
}

}  // namespace imdpp::core
