#include "core/tdsi.h"

#include <algorithm>
#include <limits>

namespace imdpp::core {

double TimingSelector::SubstantialInfluence(
    const SeedGroup& sg, const MonteCarloEngine::MarketEval& base,
    const Seed& cand) const {
  SeedGroup with = sg;
  with.push_back(cand);
  MonteCarloEngine::MarketEval ev = engine_.EvalMarket(with, market_);
  const double ma = ev.sigma_market - base.sigma_market;
  const double ml = ev.pi - base.pi;
  const double remaining =
      static_cast<double>(total_promotions_ - cand.promotion + 1) /
      static_cast<double>(total_promotions_);
  return ma + remaining * ml;
}

Seed TimingSelector::PickBest(const SeedGroup& sg,
                              const std::vector<Nominee>& pending, int t_lo,
                              int t_hi, int* best_index) const {
  IMDPP_CHECK(!pending.empty());
  t_lo = std::max(1, t_lo);
  t_hi = std::min(total_promotions_, std::max(t_lo, t_hi));
  MonteCarloEngine::MarketEval base = engine_.EvalMarket(sg, market_);

  Seed best{};
  double best_si = -std::numeric_limits<double>::infinity();
  int best_idx = 0;
  for (int i = 0; i < static_cast<int>(pending.size()); ++i) {
    for (int t = t_lo; t <= t_hi; ++t) {
      Seed cand{pending[i].user, pending[i].item, t};
      double si = SubstantialInfluence(sg, base, cand);
      if (si > best_si) {
        best_si = si;
        best = cand;
        best_idx = i;
      }
    }
  }
  if (best_index != nullptr) *best_index = best_idx;
  return best;
}

}  // namespace imdpp::core
