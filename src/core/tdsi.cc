#include "core/tdsi.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

namespace imdpp::core {

double TimingSelector::SiOf(const diffusion::MarketEval& base,
                            const diffusion::MarketEval& with,
                            int t) const {
  const double ma = with.sigma_market - base.sigma_market;
  const double ml = with.pi - base.pi;
  const double remaining = static_cast<double>(total_promotions_ - t + 1) /
                           static_cast<double>(total_promotions_);
  return ma + remaining * ml;
}

double TimingSelector::SubstantialInfluence(
    const SeedGroup& sg, const diffusion::MarketEval& base,
    const Seed& cand) const {
  SeedGroup with = sg;
  with.push_back(cand);
  diffusion::MarketEval ev = engine_.EvalMarket(with, market_);
  return SiOf(base, ev, cand.promotion);
}

Seed TimingSelector::PickBest(const SeedGroup& sg,
                              const std::vector<Nominee>& pending, int t_lo,
                              int t_hi, int* best_index) {
  IMDPP_CHECK(!pending.empty());
  t_lo = std::max(1, t_lo);
  t_hi = std::min(total_promotions_, std::max(t_lo, t_hi));
  // The group grows at the latest timings, so checkpoints from earlier
  // PickBest calls stay valid below t_lo.
  eval_->Rebase(sg);
  diffusion::MarketEval base = eval_->EvalMarket(sg);

  // One SelectCandidate per (nominee, timing) in the same lexicographic
  // order as the historical nested loop, each scoring its market
  // evaluation through the SI arithmetic for its own t. SI is affine in
  // the evaluation, so per-sample scoring commutes with averaging and the
  // adaptive race optimizes the same objective the fixed loop does.
  std::vector<diffusion::SelectCandidate> candidates;
  std::vector<std::pair<int, Seed>> entries;  // (pending index, seed)
  // t_hi < t_lo (a window entirely above T) leaves zero candidates, and
  // SelectBest on nothing lands in the historical fallback below.
  const size_t window = static_cast<size_t>(std::max(0, t_hi - t_lo + 1));
  candidates.reserve(pending.size() * window);
  entries.reserve(pending.size() * window);
  for (int i = 0; i < static_cast<int>(pending.size()); ++i) {
    for (int t = t_lo; t <= t_hi; ++t) {
      Seed cand{pending[i].user, pending[i].item, t};
      diffusion::SelectCandidate sc;
      sc.group = sg;
      sc.group.push_back(cand);
      sc.score = [this, base, t](const diffusion::MarketEval& ev) {
        return SiOf(base, ev, t);
      };
      candidates.push_back(std::move(sc));
      entries.emplace_back(i, cand);
    }
  }
  diffusion::SelectOptions options;
  options.adaptive = adaptive_;
  options.use_market = true;
  const diffusion::SelectBestResult r =
      eval_->SelectBest(candidates, options);
  if (r.best_index < 0) {
    // No candidate produced a finite SI (or the run was cancelled): the
    // historical fallback — index 0, empty seed.
    if (best_index != nullptr) *best_index = 0;
    return Seed{};
  }
  if (best_index != nullptr) *best_index = entries[r.best_index].first;
  return entries[r.best_index].second;
}

}  // namespace imdpp::core
