#include "core/tdsi.h"

#include <algorithm>
#include <limits>

namespace imdpp::core {

double TimingSelector::SiOf(const diffusion::MarketEval& base,
                            const diffusion::MarketEval& with,
                            int t) const {
  const double ma = with.sigma_market - base.sigma_market;
  const double ml = with.pi - base.pi;
  const double remaining = static_cast<double>(total_promotions_ - t + 1) /
                           static_cast<double>(total_promotions_);
  return ma + remaining * ml;
}

double TimingSelector::SubstantialInfluence(
    const SeedGroup& sg, const diffusion::MarketEval& base,
    const Seed& cand) const {
  SeedGroup with = sg;
  with.push_back(cand);
  diffusion::MarketEval ev = engine_.EvalMarket(with, market_);
  return SiOf(base, ev, cand.promotion);
}

Seed TimingSelector::PickBest(const SeedGroup& sg,
                              const std::vector<Nominee>& pending, int t_lo,
                              int t_hi, int* best_index) {
  IMDPP_CHECK(!pending.empty());
  t_lo = std::max(1, t_lo);
  t_hi = std::min(total_promotions_, std::max(t_lo, t_hi));
  // The group grows at the latest timings, so checkpoints from earlier
  // PickBest calls stay valid below t_lo.
  eval_->Rebase(sg);
  diffusion::MarketEval base = eval_->EvalMarket(sg);

  Seed best{};
  double best_si = -std::numeric_limits<double>::infinity();
  int best_idx = 0;
  for (int i = 0; i < static_cast<int>(pending.size()); ++i) {
    for (int t = t_lo; t <= t_hi; ++t) {
      Seed cand{pending[i].user, pending[i].item, t};
      SeedGroup with = sg;
      with.push_back(cand);
      double si = SiOf(base, eval_->EvalMarket(with), t);
      if (si > best_si) {
        best_si = si;
        best = cand;
        best_idx = i;
      }
    }
  }
  if (best_index != nullptr) *best_index = best_idx;
  return best;
}

}  // namespace imdpp::core
