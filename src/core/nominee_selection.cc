#include "core/nominee_selection.h"

#include <algorithm>
#include <queue>

namespace imdpp::core {

std::vector<Nominee> BuildCandidateUniverse(const Problem& problem,
                                            const CandidateConfig& config) {
  const int num_users = problem.NumUsers();
  const int num_items = problem.NumItems();

  std::vector<graph::UserId> users(num_users);
  for (int u = 0; u < num_users; ++u) users[u] = u;
  if (config.max_users > 0 && config.max_users < num_users) {
    std::stable_sort(users.begin(), users.end(),
                     [&](graph::UserId a, graph::UserId b) {
                       return problem.graph->OutDegree(a) >
                              problem.graph->OutDegree(b);
                     });
    users.resize(config.max_users);
  }

  std::vector<kg::ItemId> items(num_items);
  for (int i = 0; i < num_items; ++i) items[i] = i;
  if (config.max_items > 0 && config.max_items < num_items) {
    std::stable_sort(items.begin(), items.end(),
                     [&](kg::ItemId a, kg::ItemId b) {
                       return problem.importance[a] > problem.importance[b];
                     });
    items.resize(config.max_items);
  }

  std::vector<Nominee> out;
  out.reserve(users.size() * items.size());
  for (graph::UserId u : users) {
    for (kg::ItemId x : items) {
      if (problem.Cost(u, x) <= problem.budget) out.push_back(Nominee{u, x});
    }
  }
  return out;
}

SelectionResult SelectNominees(const SigmaBackend& engine,
                               const Problem& problem,
                               const std::vector<Nominee>& candidates,
                               double budget) {
  SelectionResult result;
  if (candidates.empty()) return result;

  auto as_first_promotion = [](const std::vector<Nominee>& ns) {
    SeedGroup g;
    g.reserve(ns.size());
    for (const Nominee& n : ns) g.push_back({n.user, n.item, 1});
    return g;
  };

  struct Entry {
    double ratio;
    double gain;
    int candidate;
    int stamp;  ///< |N| when the gain was computed
    bool operator<(const Entry& o) const { return ratio < o.ratio; }
  };
  std::priority_queue<Entry> heap;

  // First pass: singleton gains (σ̂(∅) = 0, so gain = σ̂({s})).
  for (int c = 0; c < static_cast<int>(candidates.size()); ++c) {
    const Nominee& n = candidates[c];
    double gain = engine.Sigma(as_first_promotion({n}));
    double cost = problem.Cost(n.user, n.item);
    heap.push(Entry{gain / cost, gain, c, 0});
    if (gain > result.best_single_gain) {
      result.best_single_gain = gain;
      result.best_single = n;
    }
  }

  double sigma_n = 0.0;  // σ̂ of the selected set seeded at t = 1
  int accepted = 0;

  // Under dynamic perception σ̂ is non-submodular (Lemma 1's caveat):
  // marginal gains can *grow* as complementary items join N, so CELF's
  // stale upper bounds can starve exactly the candidates Dysim should
  // take. On small candidate pools we therefore re-evaluate every
  // remaining candidate per acceptance (exact greedy, what the paper's
  // MCP prescribes); the lazy heap below only kicks in at scale, where
  // the near-submodular bulk dominates.
  constexpr size_t kExactGreedyLimit = 512;
  if (candidates.size() <= kExactGreedyLimit) {
    std::vector<uint8_t> used(candidates.size(), 0);
    while (true) {
      int best = -1;
      double best_ratio = 0.0;
      double best_gain = 0.0;
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (used[i]) continue;
        const Nominee& n = candidates[i];
        double cost = problem.Cost(n.user, n.item);
        if (cost > budget - result.total_cost) continue;
        std::vector<Nominee> with = result.nominees;
        with.push_back(n);
        double gain = engine.Sigma(as_first_promotion(with)) - sigma_n;
        double ratio = gain / cost;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_gain = gain;
          best = static_cast<int>(i);
        }
      }
      if (best < 0 || best_gain <= 0.0) break;
      used[best] = 1;
      result.nominees.push_back(candidates[best]);
      result.total_cost +=
          problem.Cost(candidates[best].user, candidates[best].item);
      sigma_n += best_gain;
    }
    return result;
  }

  while (!heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    const Nominee& n = candidates[top.candidate];
    double cost = problem.Cost(n.user, n.item);
    if (cost > budget - result.total_cost) continue;  // no longer affordable
    if (top.stamp != accepted) {
      // Stale: re-evaluate the marginal gain against the current set.
      std::vector<Nominee> with = result.nominees;
      with.push_back(n);
      double gain = engine.Sigma(as_first_promotion(with)) - sigma_n;
      heap.push(Entry{gain / cost, gain, top.candidate, accepted});
      continue;
    }
    if (top.gain <= 0.0) break;  // all remaining marginals are non-positive
    result.nominees.push_back(n);
    result.total_cost += cost;
    sigma_n += top.gain;
    ++accepted;
  }
  return result;
}

}  // namespace imdpp::core
