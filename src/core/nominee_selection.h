// Nominee selection by Marginal Cost-Performance ratio (Procedure 2 /
// selectNominees) with CELF-style lazy evaluation.
//
// f(N) is the importance-aware influence σ with all of N seeded in the
// first promotion; MCP of a candidate (u,x) given N is
// (f(N ∪ {(u,x)}) − f(N)) / c_{u,x}. The procedure repeatedly extracts the
// affordable candidate with the highest MCP until no candidate fits the
// remaining budget or every remaining marginal gain is non-positive (the
// two stopping cases of Lemma 3). Lazy evaluation exploits that marginal
// gains only shrink as N grows under the (near-)submodular σ̂; a stale
// heap entry is re-evaluated before being accepted (CELF/CELF++ — the
// speed-up the paper reports using in Sec. VI-A).
#ifndef IMDPP_CORE_NOMINEE_SELECTION_H_
#define IMDPP_CORE_NOMINEE_SELECTION_H_

#include <vector>

#include "diffusion/monte_carlo.h"
#include "diffusion/problem.h"
#include "diffusion/seed.h"

namespace imdpp::core {

using diffusion::Nominee;
using diffusion::Problem;
using diffusion::SeedGroup;
using diffusion::SigmaBackend;

/// Candidate pruning: the full universe is V x I (Algorithm 1 line 1); on
/// larger instances we keep the top users by out-degree and top items by
/// importance. 0 means "all".
struct CandidateConfig {
  int max_users = 0;
  int max_items = 0;
};

/// Builds the (possibly pruned) nominee universe, excluding candidates
/// whose cost alone exceeds the budget.
std::vector<Nominee> BuildCandidateUniverse(const Problem& problem,
                                            const CandidateConfig& config);

struct SelectionResult {
  std::vector<Nominee> nominees;  ///< in acceptance order
  double total_cost = 0.0;
  /// First-pass singleton gains σ̂({(u,x,1)}) aligned with `candidates`
  /// passed in; used for the e_max guarantee check in Theorem 5.
  Nominee best_single;
  double best_single_gain = 0.0;
};

/// Runs Procedure 2. `engine` supplies σ̂.
SelectionResult SelectNominees(const SigmaBackend& engine,
                               const Problem& problem,
                               const std::vector<Nominee>& candidates,
                               double budget);

}  // namespace imdpp::core

#endif  // IMDPP_CORE_NOMINEE_SELECTION_H_
