// Nominee clustering (Procedure 3). The paper delegates to POT / FGCC; we
// substitute average-linkage agglomerative clustering on the same signal
// those methods consume here: social closeness of the nominee users and the
// net relevance r̄^C − r̄^S of their promoted items (larger complementary
// and smaller substitutable relevance encouraged).
#ifndef IMDPP_CLUSTER_NOMINEE_CLUSTERING_H_
#define IMDPP_CLUSTER_NOMINEE_CLUSTERING_H_

#include <functional>
#include <vector>

#include "diffusion/seed.h"
#include "graph/social_graph.h"

namespace imdpp::cluster {

using diffusion::Nominee;

struct ClusteringConfig {
  /// Weight of the (normalized) social hop distance term.
  double social_weight = 1.0;
  /// Weight of the net item relevance term (subtracted from distance).
  double relevance_weight = 1.0;
  /// Merge clusters while their average-linkage distance stays below this.
  double merge_threshold = 0.75;
  /// Hop search truncation; unreachable pairs count as max_hops + 1.
  int max_hops = 4;
};

/// Net-relevance oracle: returns r̄^C_{x,y} − r̄^S_{x,y} in [-1, 1]
/// averaged over all users (same-item pairs should return 1).
using NetRelevanceFn = std::function<double(kg::ItemId, kg::ItemId)>;

/// Clusters nominees; returns disjoint clusters covering all nominees.
/// Deterministic: ties break by nominee order.
std::vector<std::vector<Nominee>> ClusterNominees(
    const graph::SocialGraph& g, const std::vector<Nominee>& nominees,
    const NetRelevanceFn& net_relevance, const ClusteringConfig& config);

/// Social-distance oracle: truncated undirected hop distance between two
/// users (graph::kUnreachable beyond max_hops). The prep:: layer serves
/// this from cached BFS rows; results must match
/// graph::UndirectedHopDistance bit for bit.
using HopDistanceFn =
    std::function<int(graph::UserId, graph::UserId, int max_hops)>;

/// Same clustering, with the hop sweeps delegated to `hop_distance`
/// instead of per-pair BFS on the graph.
std::vector<std::vector<Nominee>> ClusterNominees(
    const std::vector<Nominee>& nominees, const NetRelevanceFn& net_relevance,
    const ClusteringConfig& config, const HopDistanceFn& hop_distance);

}  // namespace imdpp::cluster

#endif  // IMDPP_CLUSTER_NOMINEE_CLUSTERING_H_
