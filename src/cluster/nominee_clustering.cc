#include "cluster/nominee_clustering.h"

#include <limits>

#include "graph/graph_algos.h"

namespace imdpp::cluster {

namespace {

/// Pairwise nominee distance: normalized social hops minus net relevance.
double PairDistance(const Nominee& a, const Nominee& b,
                    const NetRelevanceFn& net_relevance,
                    const ClusteringConfig& cfg,
                    const HopDistanceFn& hop_distance) {
  int hops = hop_distance(a.user, b.user, cfg.max_hops);
  double social =
      hops == graph::kUnreachable
          ? 1.0 + 1.0 / cfg.max_hops
          : static_cast<double>(hops) / static_cast<double>(cfg.max_hops);
  double rel = a.item == b.item ? 1.0 : net_relevance(a.item, b.item);
  return cfg.social_weight * social - cfg.relevance_weight * rel;
}

}  // namespace

std::vector<std::vector<Nominee>> ClusterNominees(
    const graph::SocialGraph& g, const std::vector<Nominee>& nominees,
    const NetRelevanceFn& net_relevance, const ClusteringConfig& config) {
  return ClusterNominees(
      nominees, net_relevance, config,
      [&g](graph::UserId a, graph::UserId b, int max_hops) {
        return graph::UndirectedHopDistance(g, a, b, max_hops);
      });
}

std::vector<std::vector<Nominee>> ClusterNominees(
    const std::vector<Nominee>& nominees, const NetRelevanceFn& net_relevance,
    const ClusteringConfig& config, const HopDistanceFn& hop_distance) {
  const int n = static_cast<int>(nominees.size());
  std::vector<std::vector<Nominee>> clusters;
  if (n == 0) return clusters;

  // Precompute the symmetric pairwise distance matrix.
  std::vector<double> dist(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = PairDistance(nominees[i], nominees[j], net_relevance, config,
                              hop_distance);
      dist[static_cast<size_t>(i) * n + j] = d;
      dist[static_cast<size_t>(j) * n + i] = d;
    }
  }

  // Average-linkage agglomeration over index sets.
  std::vector<std::vector<int>> groups(n);
  for (int i = 0; i < n; ++i) groups[i] = {i};
  auto linkage = [&](const std::vector<int>& a, const std::vector<int>& b) {
    double s = 0.0;
    for (int i : a) {
      for (int j : b) s += dist[static_cast<size_t>(i) * n + j];
    }
    return s / (static_cast<double>(a.size()) * b.size());
  };

  while (groups.size() > 1) {
    double best = std::numeric_limits<double>::infinity();
    int bi = -1, bj = -1;
    for (size_t i = 0; i < groups.size(); ++i) {
      for (size_t j = i + 1; j < groups.size(); ++j) {
        double d = linkage(groups[i], groups[j]);
        if (d < best) {
          best = d;
          bi = static_cast<int>(i);
          bj = static_cast<int>(j);
        }
      }
    }
    if (best >= config.merge_threshold) break;
    groups[bi].insert(groups[bi].end(), groups[bj].begin(), groups[bj].end());
    groups.erase(groups.begin() + bj);
  }

  clusters.reserve(groups.size());
  for (const auto& grp : groups) {
    std::vector<Nominee> c;
    c.reserve(grp.size());
    for (int idx : grp) c.push_back(nominees[idx]);
    clusters.push_back(std::move(c));
  }
  return clusters;
}

}  // namespace imdpp::cluster
