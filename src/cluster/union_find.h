// Disjoint-set union used to group overlapping target markets into G sets.
#ifndef IMDPP_CLUSTER_UNION_FIND_H_
#define IMDPP_CLUSTER_UNION_FIND_H_

#include <numeric>
#include <vector>

#include "util/check.h"

namespace imdpp::cluster {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    IMDPP_DCHECK(x >= 0 && x < static_cast<int>(parent_.size()));
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the merge joined two distinct sets.
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

  bool Same(int a, int b) { return Find(a) == Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace imdpp::cluster

#endif  // IMDPP_CLUSTER_UNION_FIND_H_
