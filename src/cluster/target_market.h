// Target markets and market groups (TMI, Sec. IV-B.1).
//
// A target market τ is identified from a cluster of nominees: its users are
// the union of the nominees' MIOA influence regions, its items the distinct
// promoted items, and its diameter d_τ the hop radius of the region. Target
// markets sharing more than θ common users form a group G; within a group
// the promoting order is the Antagonistic Extent (AE) ascending
// (or an alternative metric, Sec. VI-D).
#ifndef IMDPP_CLUSTER_TARGET_MARKET_H_
#define IMDPP_CLUSTER_TARGET_MARKET_H_

#include <functional>
#include <vector>

#include "cluster/mioa.h"
#include "cluster/nominee_clustering.h"
#include "diffusion/seed.h"

namespace imdpp::cluster {

using diffusion::Nominee;
using kg::ItemId;

struct TargetMarket {
  std::vector<Nominee> nominees;
  std::vector<UserId> users;  ///< sorted, includes the nominee users
  std::vector<ItemId> items;  ///< sorted distinct promoted items
  int diameter = 1;           ///< d_τ (at least 1)
};

/// A set G of overlapping target markets; `order` holds market indices into
/// the plan's `markets`, already sorted by the chosen priority metric.
struct MarketGroup {
  std::vector<int> order;
};

struct MarketPlan {
  std::vector<TargetMarket> markets;
  std::vector<MarketGroup> groups;
};

struct MarketPlanConfig {
  double mioa_threshold = 0.01;
  int mioa_max_hops = 8;
  /// θ: markets sharing more than this many users join the same group.
  int overlap_theta = 1;
};

/// Substitutable-relevance oracle r̄^S_{x,y} over all users.
using SubRelevanceFn = std::function<double(ItemId, ItemId)>;

/// Builds target markets from nominee clusters (MIOA user regions) and
/// groups them by user overlap.
MarketPlan BuildMarketPlan(const graph::SocialGraph& g,
                           const std::vector<std::vector<Nominee>>& clusters,
                           const MarketPlanConfig& config);

/// Per-source region oracle: the MIOA region of one nominee user. The
/// prep:: layer serves these from its cache; the returned reference must
/// stay valid for the duration of the BuildMarketPlan call.
using SourceRegionFn =
    std::function<const InfluenceRegion&(graph::UserId source)>;

/// Same plan construction, with the per-source Dijkstra sweeps delegated
/// to `region_of` (market users = union of the cluster's source regions).
MarketPlan BuildMarketPlan(const std::vector<std::vector<Nominee>>& clusters,
                           const MarketPlanConfig& config,
                           const SourceRegionFn& region_of);

/// Antagonistic Extent of market `i` within its group:
/// AE(τ_i) = Σ_{x ∈ τ_i, y ∈ τ_j, j ≠ i} r̄^S_{x,y}.
double AntagonisticExtent(const MarketPlan& plan, const MarketGroup& group,
                          int market_index, const SubRelevanceFn& rel_s);

/// Orders every group's markets by AE ascending (Procedure 4).
void OrderGroupsByAe(MarketPlan& plan, const SubRelevanceFn& rel_s);

/// Number of common users of two markets (sorted-vector intersection).
int CommonUsers(const TargetMarket& a, const TargetMarket& b);

}  // namespace imdpp::cluster

#endif  // IMDPP_CLUSTER_TARGET_MARKET_H_
