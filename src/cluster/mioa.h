// MIOA-style influence regions (Chen, Wang, Wang, KDD'10), used by TMI to
// identify the users of a target market: every user reachable from a
// nominee's user along a maximum-influence path whose probability stays
// above a threshold belongs to the market.
#ifndef IMDPP_CLUSTER_MIOA_H_
#define IMDPP_CLUSTER_MIOA_H_

#include <vector>

#include "graph/graph_algos.h"
#include "graph/social_graph.h"

namespace imdpp::cluster {

using graph::UserId;

struct InfluenceRegion {
  std::vector<UserId> users;  ///< sorted, deduplicated
  int radius_hops = 0;        ///< max hop distance of any reached user
};

/// Union of max-influence-path regions of all `sources`.
InfluenceRegion UnionInfluenceRegion(const graph::SocialGraph& g,
                                     const std::vector<UserId>& sources,
                                     double threshold, int max_hops = 16);

/// The region of one source: its reached users sorted and deduplicated,
/// its radius the max hop distance. Building blocks of the prep:: layer's
/// per-source region cache.
InfluenceRegion RegionFromPaths(const graph::InfluencePaths& paths);

/// Union of per-source regions — identical to UnionInfluenceRegion over
/// the same sources (set union of users, max of radii).
InfluenceRegion UnionRegions(const std::vector<const InfluenceRegion*>& regions);

}  // namespace imdpp::cluster

#endif  // IMDPP_CLUSTER_MIOA_H_
