#include "cluster/target_market.h"

#include <algorithm>
#include <map>

#include "cluster/union_find.h"

namespace imdpp::cluster {

int CommonUsers(const TargetMarket& a, const TargetMarket& b) {
  size_t i = 0, j = 0;
  int common = 0;
  while (i < a.users.size() && j < b.users.size()) {
    if (a.users[i] == b.users[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a.users[i] < b.users[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

namespace {

/// Groups markets whose common-user count exceeds θ.
void GroupMarketsByOverlap(MarketPlan& plan, const MarketPlanConfig& config) {
  const int m = static_cast<int>(plan.markets.size());
  UnionFind uf(m);
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      if (CommonUsers(plan.markets[i], plan.markets[j]) >
          config.overlap_theta) {
        uf.Union(i, j);
      }
    }
  }
  std::vector<int> root_to_group(m, -1);
  for (int i = 0; i < m; ++i) {
    int r = uf.Find(i);
    if (root_to_group[r] == -1) {
      root_to_group[r] = static_cast<int>(plan.groups.size());
      plan.groups.emplace_back();
    }
    plan.groups[root_to_group[r]].order.push_back(i);
  }
}

}  // namespace

MarketPlan BuildMarketPlan(const std::vector<std::vector<Nominee>>& clusters,
                           const MarketPlanConfig& config,
                           const SourceRegionFn& region_of) {
  MarketPlan plan;
  for (const auto& cluster : clusters) {
    if (cluster.empty()) continue;
    TargetMarket market;
    market.nominees = cluster;
    std::vector<const InfluenceRegion*> regions;
    for (const Nominee& n : cluster) {
      regions.push_back(&region_of(n.user));
      market.items.push_back(n.item);
    }
    std::sort(market.items.begin(), market.items.end());
    market.items.erase(std::unique(market.items.begin(), market.items.end()),
                       market.items.end());
    InfluenceRegion region = UnionRegions(regions);
    market.users = std::move(region.users);
    market.diameter = std::max(1, region.radius_hops);
    plan.markets.push_back(std::move(market));
  }
  GroupMarketsByOverlap(plan, config);
  return plan;
}

MarketPlan BuildMarketPlan(const graph::SocialGraph& g,
                           const std::vector<std::vector<Nominee>>& clusters,
                           const MarketPlanConfig& config) {
  // Per-source regions computed on the fly (one Dijkstra per distinct
  // nominee user, as before); the prep:: layer swaps in its cache here.
  std::map<UserId, InfluenceRegion> cache;
  return BuildMarketPlan(
      clusters, config, [&](UserId u) -> const InfluenceRegion& {
        auto it = cache.find(u);
        if (it == cache.end()) {
          it = cache
                   .emplace(u, RegionFromPaths(graph::MaxInfluencePaths(
                                   g, u, config.mioa_threshold,
                                   config.mioa_max_hops)))
                   .first;
        }
        return it->second;
      });
}

double AntagonisticExtent(const MarketPlan& plan, const MarketGroup& group,
                          int market_index, const SubRelevanceFn& rel_s) {
  const TargetMarket& ti = plan.markets[market_index];
  double ae = 0.0;
  for (int j : group.order) {
    if (j == market_index) continue;
    const TargetMarket& tj = plan.markets[j];
    for (ItemId x : ti.items) {
      for (ItemId y : tj.items) {
        if (x == y) continue;
        ae += rel_s(x, y);
      }
    }
  }
  return ae;
}

void OrderGroupsByAe(MarketPlan& plan, const SubRelevanceFn& rel_s) {
  for (MarketGroup& group : plan.groups) {
    std::vector<std::pair<double, int>> keyed;
    keyed.reserve(group.order.size());
    for (int idx : group.order) {
      keyed.emplace_back(AntagonisticExtent(plan, group, idx, rel_s), idx);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first < b.first;
                       return a.second < b.second;
                     });
    group.order.clear();
    for (const auto& [ae, idx] : keyed) group.order.push_back(idx);
  }
}

}  // namespace imdpp::cluster
