#include "cluster/mioa.h"

#include <algorithm>

namespace imdpp::cluster {

InfluenceRegion UnionInfluenceRegion(const graph::SocialGraph& g,
                                     const std::vector<UserId>& sources,
                                     double threshold, int max_hops) {
  InfluenceRegion out;
  for (UserId s : sources) {
    graph::InfluencePaths paths =
        graph::MaxInfluencePaths(g, s, threshold, max_hops);
    for (size_t i = 0; i < paths.users.size(); ++i) {
      out.users.push_back(paths.users[i]);
      out.radius_hops = std::max(out.radius_hops, paths.hops[i]);
    }
  }
  std::sort(out.users.begin(), out.users.end());
  out.users.erase(std::unique(out.users.begin(), out.users.end()),
                  out.users.end());
  return out;
}

}  // namespace imdpp::cluster
