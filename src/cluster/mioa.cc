#include "cluster/mioa.h"

#include <algorithm>

namespace imdpp::cluster {

InfluenceRegion RegionFromPaths(const graph::InfluencePaths& paths) {
  InfluenceRegion out;
  out.users = paths.users;
  for (int h : paths.hops) out.radius_hops = std::max(out.radius_hops, h);
  std::sort(out.users.begin(), out.users.end());
  out.users.erase(std::unique(out.users.begin(), out.users.end()),
                  out.users.end());
  return out;
}

InfluenceRegion UnionRegions(
    const std::vector<const InfluenceRegion*>& regions) {
  InfluenceRegion out;
  for (const InfluenceRegion* r : regions) {
    out.users.insert(out.users.end(), r->users.begin(), r->users.end());
    out.radius_hops = std::max(out.radius_hops, r->radius_hops);
  }
  std::sort(out.users.begin(), out.users.end());
  out.users.erase(std::unique(out.users.begin(), out.users.end()),
                  out.users.end());
  return out;
}

InfluenceRegion UnionInfluenceRegion(const graph::SocialGraph& g,
                                     const std::vector<UserId>& sources,
                                     double threshold, int max_hops) {
  std::vector<InfluenceRegion> per_source;
  per_source.reserve(sources.size());
  for (UserId s : sources) {
    per_source.push_back(
        RegionFromPaths(graph::MaxInfluencePaths(g, s, threshold, max_hops)));
  }
  std::vector<const InfluenceRegion*> ptrs;
  ptrs.reserve(per_source.size());
  for (const InfluenceRegion& r : per_source) ptrs.push_back(&r);
  return UnionRegions(ptrs);
}

}  // namespace imdpp::cluster
