// Executes an expanded sweep grid on CampaignSessions — the shared engine
// behind both `imdpp sweep` and the config-driven figure harnesses
// (bench_fig9_budget runs the checked-in configs/fig9_budget.json through
// this exact code path, so CLI sweeps reproduce the figure numbers by
// construction).
//
// Session discipline mirrors the hand-rolled harness loops it replaced:
// one CampaignSession per dataset axis entry (configured with the
// dataset-level config, so every point of that dataset scores on the same
// shared evaluation engine), one SetProblem per (promotions, budget)
// pair, and per-point planner/theta/thread overrides passed to
// CampaignSession::Run(name, config) — which plans under the point config
// but keeps σ̂ scoring paired on the session engine.
#ifndef IMDPP_CLI_SWEEP_RUNNER_H_
#define IMDPP_CLI_SWEEP_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "report/report.h"

namespace imdpp::cli {

/// Called before each point runs: (point, index, total).
using SweepProgressFn =
    std::function<void(const config::SweepPoint&, size_t, size_t)>;

/// Runs every point of the expanded grid. Fails fast (kNotFound /
/// kInvalidArgument) on unknown planner, backend, or dataset names — with
/// the registries' sorted key listings — before any simulation starts. A
/// point whose PlanResult carries a non-ok status (deadline, cancellation,
/// injected fault) aborts the sweep with that status, prefixed with the
/// point's dataset/planner coordinates; records keeps the points that
/// completed before it.
util::Status RunSweep(const config::SweepSpec& spec,
                      std::vector<report::SweepRecord>* records,
                      const SweepProgressFn& progress = nullptr);

}  // namespace imdpp::cli

#endif  // IMDPP_CLI_SWEEP_RUNNER_H_
