// Entry point of the `imdpp` binary. Excluded from the imdpp library
// sources (CMakeLists.txt) so the CLI logic in cli.cc stays linkable —
// and testable in-process — from everything else.
#include "cli/cli.h"

int main(int argc, char** argv) { return imdpp::cli::Main(argc, argv); }
