// The imdpp command-line driver: every registered planner × every
// registered dataset, no recompile.
//
//   imdpp plan     --dataset yelp-like --planner dysim --budget 300
//   imdpp compare  --dataset yelp-like --planners dysim,bgrd,ps --budget 300
//   imdpp sweep    --config configs/fig9_budget.json --out results.json
//   imdpp datasets
//
// Run() is the whole CLI behind injectable streams, so tests drive
// subcommands in-process and assert on exit codes and output without
// spawning the binary; Main() wraps it for src/cli/imdpp_main.cc.
//
// Output is JSON (deterministic: identical invocations produce identical
// bytes — wall-clock fields only appear under --timings), CSV for sweeps
// via --csv. Unknown planner or dataset names exit non-zero after
// printing the sorted list of registered keys.
#ifndef IMDPP_CLI_CLI_H_
#define IMDPP_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace imdpp::cli {

/// Runs `args` (without argv[0]); writes results to `out`, diagnostics
/// and progress to `err`; returns the process exit code (0 success,
/// 1 runtime failure, 2 usage error).
int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// main() adapter.
int Main(int argc, char** argv);

}  // namespace imdpp::cli

#endif  // IMDPP_CLI_CLI_H_
