#include "cli/sweep_runner.h"

#include <utility>

#include "api/session.h"
#include "diffusion/sigma_backend.h"
#include "util/check.h"

namespace imdpp::cli {

util::Status RunSweep(const config::SweepSpec& spec,
                      std::vector<report::SweepRecord>* records,
                      const SweepProgressFn& progress) {
  records->clear();

  // Validate every axis name up front: a typo must fail before hours of
  // simulation, and with the full key listing.
  auto validate =
      [](const std::vector<config::SweepSpec::PlannerAxis>& axes)
      -> util::Status {
    for (const config::SweepSpec::PlannerAxis& pl : axes) {
      if (!api::PlannerRegistry::Has(pl.name)) {
        return util::NotFoundError(api::PlannerRegistry::UnknownMessage(
            pl.name));
      }
    }
    return util::OkStatus();
  };
  IMDPP_RETURN_IF_ERROR(validate(spec.planners));
  for (const config::SweepSpec::DatasetAxis& ds : spec.datasets) {
    IMDPP_RETURN_IF_ERROR(validate(ds.planners));
  }
  // Backend names too (LoadSweepSpec checks JSON input; specs built in
  // code reach ExpandSweep without it).
  for (const std::string& backend : spec.backends) {
    if (!diffusion::SigmaBackendRegistry::Has(backend)) {
      return util::NotFoundError(
          diffusion::SigmaBackendRegistry::UnknownMessage(backend));
    }
  }

  std::vector<config::SweepPoint> points;
  IMDPP_RETURN_IF_ERROR(config::ExpandSweep(spec, &points));
  // Points per dataset under the expansion order (promotions, budgets,
  // thetas, threads, backends, planners innermost; sentinel axes collapse
  // to 1).
  const size_t axis_base =
      spec.promotions.size() * spec.budgets.size() *
      std::max<size_t>(1, spec.thetas.size()) *
      std::max<size_t>(1, spec.num_threads.size()) *
      std::max<size_t>(1, spec.backends.size());
  records->reserve(points.size());

  size_t idx = 0;
  for (const config::SweepSpec::DatasetAxis& ds : spec.datasets) {
    const size_t per_dataset =
        axis_base *
        (ds.planners.empty() ? spec.planners.size() : ds.planners.size());
    // The session runs under the dataset-level config (base + dataset
    // overrides): every point of this dataset scores on one shared
    // engine, so planner comparisons stay paired.
    api::PlannerConfig session_config = spec.base;
    IMDPP_RETURN_IF_ERROR(
        config::ApplyPlannerConfigJson(ds.overrides, &session_config));
    data::Dataset dataset;
    IMDPP_RETURN_IF_ERROR(data::DatasetRegistry::Make(ds.spec, &dataset));
    api::CampaignSession session(std::move(dataset), session_config);

    for (size_t k = 0; k < per_dataset; ++k, ++idx) {
      const config::SweepPoint& point = points[idx];
      // SetProblem dedupes unchanged (budget, promotions) itself, keeping
      // the shared engine and the warm prep artifacts across points.
      session.SetProblem(point.budget, point.num_promotions);
      if (progress) progress(point, idx, points.size());
      report::SweepRecord record;
      record.point = point;
      record.result = session.Run(point.planner, point.config);
      if (!record.result.status.ok()) {
        // A failed point (deadline, cancellation, injected fault) fails
        // the sweep: a partial grid must not serialize as a complete one.
        return util::Status(record.result.status.code(),
                            point.dataset.name + "/" + point.planner + ": " +
                                record.result.status.message());
      }
      records->push_back(std::move(record));
    }
  }
  IMDPP_CHECK_EQ(idx, points.size());  // the slice arithmetic covered all
  return util::OkStatus();
}

}  // namespace imdpp::cli
