#include "cli/cli.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "api/session.h"
#include "cli/sweep_runner.h"
#include "config/config_loader.h"
#include "core/dysim.h"
#include "data/dataset_registry.h"
#include "diffusion/sigma_backend.h"
#include "prep/prep.h"
#include "report/report.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace imdpp::cli {

namespace {

constexpr const char* kUsage = R"(imdpp — influence maximization with dynamic personal perception (ICDE'21)

usage: imdpp <command> [flags]

commands:
  plan      run one planner on one dataset, print the PlanResult as JSON
  compare   run several planners on one problem (paired σ̂), print JSON
  sweep     run a JSON sweep config (datasets x planners x budgets x ...)
  datasets  list the registered dataset names; --prep prints per-dataset
            prep-artifact stats (nominees, clusters, markets, MIOA
            regions; build millis with --timings) as JSON — for one
            dataset with --dataset, else for every registered name
  backends  list the registered σ-evaluation backends (name, summary,
            capabilities) — the names --backend / eval.backend accept
  help      show this message

shared flags (plan, compare):
  --dataset NAME[@SCALE]   dataset registry key, scale-<N>, or spec .json
  --scale S                dataset size multiplier (default 1, or @SCALE)
  --dataset-seed N         dataset RNG seed (0 = the flavor's default)
  --budget B               campaign budget        (default 300)
  --promotions T           promotion rounds       (default 10)
  --config FILE            planner-config JSON overrides
  --seed N                 master RNG seed
  --threads N              Monte-Carlo executors (-1 = hardware, 0 = serial)
  --theta N                market-overlap theta (market.overlap_theta)
  --selection-samples N    search-time Monte-Carlo samples
  --eval-samples N         final-evaluation Monte-Carlo samples
  --backend NAME           σ-evaluation backend (default mc; see `imdpp
                           backends`)
  --adaptive               variance-adaptive sequential stopping for the
                           greedy argmax loops (eval.adaptive.enabled):
                           candidates race on paired per-sample values and
                           resolved ones stop early. Off = the fixed-count
                           reference loops (bit-identical across releases)
  --adaptive-delta D       racing error budget δ in (0, 1) (default 0.05;
                           implies nothing unless --adaptive)
  --adaptive-budget N      racing sample budget (eval.adaptive.max_samples):
                           the race decides on at most N samples per
                           candidate; the winner is still re-evaluated at
                           the full count (0 = no budget, the default)
  --deadline-ms N          per-run wall-clock budget in milliseconds
                           (0 = none); an expired deadline fails the run
                           with deadline_exceeded instead of finishing
  --timings                include wall-clock fields (breaks byte-stability)
  --out FILE               write JSON here instead of stdout
  --trace-out FILE         record Chrome trace-event JSON spans for the run
                           (load in Perfetto / chrome://tracing); off = no
                           tracing work at all
  --metrics-out FILE       write the full metrics snapshot (all counters,
                           gauges, histograms, timings included) as JSON;
                           off = only the per-result counters are kept

plan:     --planner NAME   (default dysim)
compare:  --planners A,B,C (comma-separated registry names)
sweep:    --config FILE (required), --out FILE, --csv FILE, --timings,
          --quiet (no per-point progress on stderr)
datasets: --prep plus the shared flags above (problem coordinates default
          to --budget 300 --promotions 10)

flag files: --flagfile FILE splices whitespace-separated tokens from FILE
(# comments); flags given after it override the file's.

robustness: failures are structured — every error prints one JSON line
{"error":{"code":...,"code_name":...,"message":...}} on stderr before the
human message, and exits 2 for invalid_argument, 1 otherwise.
--fail-on SPEC[,SPEC...] (or the IMDPP_FAIL_ON env var) arms named fault
points for testing, SPEC = point[:RANGE][:CODE], e.g.
`prep.build:1:resource_exhausted`. Underscore spellings --deadline_ms /
--fail_on are accepted aliases.

Identical invocations print identical bytes (unless --timings), so
`imdpp plan ... | diff - <(imdpp plan ...)` is a determinism check.
)";

/// CLI default effort = the bench harnesses' Effort defaults: moderate
/// samples and candidate pruning, so `imdpp plan --dataset yelp-like
/// --planner dysim --budget 300` answers in seconds, not hours. Override
/// any of it with --config / the sample flags.
api::PlannerConfig DefaultCliConfig() {
  api::PlannerConfig cfg;
  cfg.selection_samples = 10;
  cfg.eval_samples = 24;
  cfg.candidates.max_users = 24;
  cfg.candidates.max_items = 8;
  return cfg;
}

int UsageError(std::ostream& err, const std::string& message) {
  err << "imdpp: " << message << "\n";
  err << "run `imdpp help` for usage\n";
  return 2;
}

int RuntimeError(std::ostream& err, const std::string& message) {
  err << "imdpp: " << message << "\n";
  return 1;
}

/// The structured-error boundary (ISSUE 8): every util::Status failure
/// leaves the CLI through here. One compact machine-readable JSON line on
/// stderr — {"error":{"code":...,"code_name":...,"message":...}}, fixed
/// member order, byte-deterministic — then the human rendering; exit code
/// follows the legacy split: kInvalidArgument is a usage error (2),
/// everything else a runtime failure (1).
int StatusError(std::ostream& err, const util::Status& status) {
  util::Json detail = util::Json::Object();
  detail.Set("code", static_cast<int>(status.code()));
  detail.Set("code_name", std::string(util::StatusCodeName(status.code())));
  detail.Set("message", status.message());
  util::Json wrapper = util::Json::Object();
  wrapper.Set("error", std::move(detail));
  err << wrapper.Dump() << "\n";
  err << "imdpp: " << status.ToString() << "\n";
  return status.code() == util::StatusCode::kInvalidArgument ? 2 : 1;
}

bool ParseNumberFlag(const config::ParsedArgs& args, const char* key,
                     double* out, std::string* error) {
  const std::string* v = args.Find(key);
  if (v == nullptr) return true;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (v->empty() || end == nullptr || *end != '\0') {
    *error = std::string("--") + key + " expects a number, got \"" + *v +
             "\"";
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseIntFlag(const config::ParsedArgs& args, const char* key, int* out,
                  std::string* error) {
  double v = *out;
  if (!ParseNumberFlag(args, key, &v, error)) return false;
  *out = static_cast<int>(v);
  return true;
}

/// Seeds parse through strtoull (base 0: decimal or 0x...), not strtod —
/// a 64-bit seed above 2^53 must reach the engine bit-exact, and a
/// negative or overflowing value must fail instead of casting to UB.
bool ParseSeedFlag(const config::ParsedArgs& args, const char* key,
                   uint64_t* out, std::string* error) {
  const std::string* v = args.Find(key);
  if (v == nullptr) return true;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 0);
  if (v->empty() || end == nullptr || *end != '\0' ||
      v->front() == '-' || errno == ERANGE) {
    *error = std::string("--") + key +
             " expects an unsigned 64-bit seed, got \"" + *v + "\"";
    return false;
  }
  *out = parsed;
  return true;
}

/// Shared plan/compare setup: dataset spec + resolved PlannerConfig +
/// problem coordinates from flags (and an optional --config JSON file).
struct ProblemSetup {
  data::DatasetSpec dataset;
  api::PlannerConfig config = DefaultCliConfig();
  double budget = 300.0;
  int promotions = 10;
  bool timings = false;
  std::string trace_out;    ///< --trace-out path ("" = tracing disarmed)
  std::string metrics_out;  ///< --metrics-out path ("" = registry disarmed)
};

util::Status LoadProblemSetup(const config::ParsedArgs& args,
                              ProblemSetup* setup,
                              bool dataset_required = true) {
  std::string error;
  const std::string* dataset = args.Find("dataset");
  if (dataset == nullptr && dataset_required) {
    return util::InvalidArgumentError("--dataset is required");
  }
  if (dataset != nullptr) setup->dataset = data::ParseDatasetSpec(*dataset);
  if (!ParseNumberFlag(args, "scale", &setup->dataset.scale, &error) ||
      !ParseSeedFlag(args, "dataset-seed", &setup->dataset.seed, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }

  if (const std::string* config_path = args.Find("config")) {
    util::Json overrides;
    IMDPP_RETURN_IF_ERROR(config::LoadJsonFile(*config_path, &overrides));
    const util::Status applied =
        config::ApplyPlannerConfigJson(overrides, &setup->config);
    if (!applied.ok()) {
      return util::Status(applied.code(),
                          *config_path + ": " + applied.message());
    }
  }
  if (!ParseNumberFlag(args, "budget", &setup->budget, &error) ||
      !ParseIntFlag(args, "promotions", &setup->promotions, &error) ||
      !ParseSeedFlag(args, "seed", &setup->config.seed, &error) ||
      !ParseIntFlag(args, "threads", &setup->config.num_threads, &error) ||
      !ParseIntFlag(args, "theta", &setup->config.market.overlap_theta,
                    &error) ||
      !ParseIntFlag(args, "selection-samples",
                    &setup->config.selection_samples, &error) ||
      !ParseIntFlag(args, "eval-samples", &setup->config.eval_samples,
                    &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  // --deadline-ms (underscore alias accepted; later flag wins because both
  // parse into the same slot in order): per-run wall-clock budget, 0 = off.
  double deadline = static_cast<double>(setup->config.deadline_ms);
  if (!ParseNumberFlag(args, "deadline-ms", &deadline, &error) ||
      !ParseNumberFlag(args, "deadline_ms", &deadline, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  if (deadline < 0) {
    return util::InvalidArgumentError("--deadline-ms must be >= 0");
  }
  setup->config.deadline_ms = static_cast<int64_t>(deadline);
  if (const std::string* backend = args.Find("backend")) {
    if (!diffusion::SigmaBackendRegistry::Has(*backend)) {
      return util::NotFoundError(
          diffusion::SigmaBackendRegistry::UnknownMessage(*backend));
    }
    setup->config.eval.backend = *backend;
  }
  // --adaptive: variance-adaptive sequential stopping for the greedy
  // argmax loops; --adaptive-delta tightens/loosens the racing error
  // budget (underscore alias accepted, deadline-ms pattern).
  if (args.Has("adaptive")) setup->config.eval.adaptive.enabled = true;
  double adaptive_delta = setup->config.eval.adaptive.delta;
  if (!ParseNumberFlag(args, "adaptive-delta", &adaptive_delta, &error) ||
      !ParseNumberFlag(args, "adaptive_delta", &adaptive_delta, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  if (adaptive_delta <= 0.0 || adaptive_delta >= 1.0) {
    return util::InvalidArgumentError("--adaptive-delta must be in (0, 1)");
  }
  setup->config.eval.adaptive.delta = adaptive_delta;
  double adaptive_budget =
      static_cast<double>(setup->config.eval.adaptive.max_samples);
  if (!ParseNumberFlag(args, "adaptive-budget", &adaptive_budget, &error) ||
      !ParseNumberFlag(args, "adaptive_budget", &adaptive_budget, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  if (adaptive_budget < 0.0) {
    return util::InvalidArgumentError("--adaptive-budget must be >= 0");
  }
  setup->config.eval.adaptive.max_samples = static_cast<int>(adaptive_budget);
  setup->timings = args.Has("timings");
  setup->trace_out = args.GetOr("trace-out", "");
  setup->metrics_out = args.GetOr("metrics-out", "");
  return util::OkStatus();
}

/// Arms tracing and/or the metric registry for the bracketed command when
/// the corresponding --*-out flag was given, and disarms on every exit
/// path. Arming is per-invocation: cli::Run is also an in-process API, so
/// an armed layer must never leak into the caller's next invocation.
class ObservabilityScope {
 public:
  explicit ObservabilityScope(const ProblemSetup& setup)
      : trace_(!setup.trace_out.empty()),
        metrics_(!setup.metrics_out.empty()) {
    if (trace_) {
      util::trace::Enable();
      util::trace::RegisterCurrentThread("main");
    }
    if (metrics_) {
      util::MetricRegistry::Global().Reset();
      util::MetricRegistry::Enable();
    }
  }
  ~ObservabilityScope() {
    if (trace_) util::trace::Disable();
    if (metrics_) util::MetricRegistry::Disable();
  }
  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

 private:
  const bool trace_;
  const bool metrics_;
};

/// Writes the --trace-out / --metrics-out artifacts after a successful
/// command. The metrics file is the result snapshot merged with whatever
/// the armed registry recorded (pool/task metrics), timings included —
/// these files are diagnostics, not byte-stable outputs.
int EmitObservability(const ProblemSetup& setup,
                      const util::MetricsSnapshot& result_metrics,
                      std::ostream& err) {
  if (!setup.trace_out.empty()) {
    const util::Status written = util::trace::WriteTrace(setup.trace_out);
    if (!written.ok()) return StatusError(err, written);
  }
  if (!setup.metrics_out.empty()) {
    util::MetricsSnapshot merged = result_metrics;
    merged.Merge(util::MetricRegistry::Global().Snapshot());
    const util::Json json =
        util::MetricsJson(merged, /*include_timings=*/true);
    std::ofstream file(setup.metrics_out);
    file << json.Dump(2) << "\n";
    file.flush();
    if (!file.good()) {
      return RuntimeError(err,
                          "cannot write \"" + setup.metrics_out + "\"");
    }
  }
  return 0;
}

/// Writes `text` to --out (if given) or to `out`.
bool EmitText(const config::ParsedArgs& args, const char* flag,
              const std::string& text, std::ostream& out,
              std::string* error) {
  const std::string* path = args.Find(flag);
  if (path == nullptr) {
    out << text;
    return true;
  }
  std::ofstream file(*path);
  file << text;
  file.flush();
  if (!file.good()) {  // a truncated artifact must not exit 0
    *error = "cannot write \"" + *path + "\"";
    return false;
  }
  return true;
}

/// Seeds echo losslessly: above 2^53 a JSON number would round, so big
/// seeds print as digit strings — which ReadSeed accepts right back.
util::Json SeedJsonValue(uint64_t seed) {
  if (seed < (1ULL << 53)) return util::Json(seed);
  return util::Json(std::to_string(seed));
}

util::Json DatasetJson(const data::DatasetSpec& spec) {
  util::Json out = util::Json::Object();
  out.Set("name", spec.name);
  out.Set("scale", spec.scale);
  if (spec.seed != 0) out.Set("seed", SeedJsonValue(spec.seed));
  return out;
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

// ------------------------------------------------------------ subcommands

int RunPlan(const config::ParsedArgs& args, std::ostream& out,
            std::ostream& err) {
  ProblemSetup setup;
  std::string error;
  util::Status status = LoadProblemSetup(args, &setup);
  if (!status.ok()) return StatusError(err, status);
  const std::string planner = args.GetOr("planner", "dysim");
  if (!api::PlannerRegistry::Has(planner)) {
    return StatusError(err, util::NotFoundError(
                                api::PlannerRegistry::UnknownMessage(planner)));
  }
  ObservabilityScope scope(setup);
  data::Dataset dataset;
  {
    util::trace::Span span("phase.dataset");
    status = data::DatasetRegistry::Make(setup.dataset, &dataset);
  }
  if (!status.ok()) return StatusError(err, status);
  api::CampaignSession session(std::move(dataset), setup.config);
  session.SetProblem(setup.budget, setup.promotions);
  api::PlanResult result = session.Run(planner);
  if (!result.status.ok()) return StatusError(err, result.status);

  util::Json output = util::Json::Object();
  output.Set("command", "plan");
  output.Set("dataset", DatasetJson(setup.dataset));
  output.Set("budget", setup.budget);
  output.Set("promotions", setup.promotions);
  output.Set("seed", SeedJsonValue(setup.config.seed));
  output.Set("result", report::PlanResultJson(result, setup.timings));
  if (!EmitText(args, "out", output.Dump(2) + "\n", out, &error)) {
    return RuntimeError(err, error);
  }
  return EmitObservability(setup, result.metrics, err);
}

int RunCompare(const config::ParsedArgs& args, std::ostream& out,
               std::ostream& err) {
  ProblemSetup setup;
  std::string error;
  util::Status status = LoadProblemSetup(args, &setup);
  if (!status.ok()) return StatusError(err, status);
  const std::string* planners_flag = args.Find("planners");
  if (planners_flag == nullptr) {
    return UsageError(err, "--planners A,B,C is required");
  }
  const std::vector<std::string> planners = SplitCommaList(*planners_flag);
  if (planners.empty()) {
    return UsageError(err, "--planners needs at least one name");
  }
  for (const std::string& name : planners) {
    if (!api::PlannerRegistry::Has(name)) {
      return StatusError(err, util::NotFoundError(
                                  api::PlannerRegistry::UnknownMessage(name)));
    }
  }
  ObservabilityScope scope(setup);
  data::Dataset dataset;
  {
    util::trace::Span span("phase.dataset");
    status = data::DatasetRegistry::Make(setup.dataset, &dataset);
  }
  if (!status.ok()) return StatusError(err, status);
  api::CampaignSession session(std::move(dataset), setup.config);
  session.SetProblem(setup.budget, setup.promotions);
  api::CompareResult compare = session.Compare(planners);
  for (const api::PlanResult& r : compare) {
    if (!r.status.ok()) {
      return StatusError(err, util::Status(r.status.code(),
                                           r.planner + ": " +
                                               r.status.message()));
    }
  }

  util::Json output = util::Json::Object();
  output.Set("command", "compare");
  output.Set("dataset", DatasetJson(setup.dataset));
  output.Set("seed", SeedJsonValue(setup.config.seed));
  // CompareResultJson carries budget/promotions alongside the results.
  util::Json body = report::CompareResultJson(compare, setup.timings);
  for (auto& [key, value] : body.members()) {
    if (key != "dataset") output.Set(key, value);
  }
  if (!EmitText(args, "out", output.Dump(2) + "\n", out, &error)) {
    return RuntimeError(err, error);
  }
  // The metrics artifact totals every compared planner's snapshot.
  util::MetricsSnapshot totals;
  for (const api::PlanResult& r : compare) totals.Merge(r.metrics);
  return EmitObservability(setup, totals, err);
}

int RunSweepCommand(const config::ParsedArgs& args, std::ostream& out,
                    std::ostream& err) {
  const std::string* config_path = args.Find("config");
  if (config_path == nullptr) {
    return UsageError(err, "sweep needs --config FILE (a JSON sweep spec)");
  }
  std::string error;
  util::Json parsed;
  util::Status status = config::LoadJsonFile(*config_path, &parsed);
  if (!status.ok()) return StatusError(err, status);
  config::SweepSpec spec;
  status = config::LoadSweepSpec(parsed, &spec);
  if (!status.ok()) {
    return StatusError(err, util::Status(status.code(), *config_path + ": " +
                                                            status.message()));
  }
  const bool timings = args.Has("timings");
  const bool quiet = args.Has("quiet");
  std::vector<report::SweepRecord> records;
  SweepProgressFn progress;
  if (!quiet) {
    progress = [&err](const config::SweepPoint& p, size_t i, size_t n) {
      err << "[" << (i + 1) << "/" << n << "] " << p.dataset.name << " "
          << p.planner << " b=" << p.budget << " T=" << p.num_promotions
          << "\n";
    };
  }
  status = RunSweep(spec, &records, progress);
  if (!status.ok()) return StatusError(err, status);
  const util::Json output = report::SweepJson(spec.name, records, timings);
  if (!EmitText(args, "out", output.Dump(2) + "\n", out, &error)) {
    return RuntimeError(err, error);
  }
  if (const std::string* csv_path = args.Find("csv")) {
    std::ofstream csv(*csv_path);
    csv << report::SweepCsv(records, timings);
    csv.flush();
    if (!csv.good()) {
      return RuntimeError(err, "cannot write \"" + *csv_path + "\"");
    }
  }
  return 0;
}

int RunDatasets(const config::ParsedArgs& args, std::ostream& out,
                std::ostream& err) {
  if (!args.Has("prep")) {
    for (const std::string& name : data::DatasetRegistry::Names()) {
      out << name << "\n";
    }
    out << "scale-<N>\n";
    out << "<path/to/spec.json>\n";
    return 0;
  }

  // --prep: build each dataset's prep artifacts, run the TMI phase at the
  // flagged problem coordinates, and report the structure. Deterministic
  // byte-stable JSON unless --timings (which adds the build millis).
  ProblemSetup setup;
  std::string error;
  util::Status status =
      LoadProblemSetup(args, &setup, /*dataset_required=*/false);
  if (!status.ok()) return StatusError(err, status);
  std::vector<data::DatasetSpec> specs;
  if (args.Has("dataset")) {
    specs.push_back(setup.dataset);
  } else {
    for (const std::string& name : data::DatasetRegistry::Names()) {
      specs.push_back({name, setup.dataset.scale, setup.dataset.seed});
    }
  }

  std::vector<report::PrepDatasetStats> stats;
  for (const data::DatasetSpec& spec : specs) {
    data::Dataset dataset;
    status = data::DatasetRegistry::Make(spec, &dataset);
    if (!status.ok()) return StatusError(err, status);
    diffusion::Problem problem =
        dataset.MakeProblem(setup.budget, setup.promotions);
    core::DysimConfig dcfg = api::ToDysimConfig(setup.config);
    std::shared_ptr<util::ThreadPool> pool =
        util::MakeWorkerPool(dcfg.num_threads);
    dcfg.shared_pool = pool;
    std::unique_ptr<diffusion::SigmaBackend> engine =
        diffusion::MakeSigmaBackend(dcfg.backend, problem, dcfg.campaign,
                                    dcfg.selection_samples, dcfg.num_threads,
                                    pool);
    engine->EnableSigmaMemo();
    util::StatusOr<prep::PrepLease> lease_or = prep::AcquirePrep(
        nullptr, /*use_cache=*/true, problem, pool, dcfg.prep_build_threads);
    if (!lease_or.ok()) return StatusError(err, lease_or.status());
    prep::PrepLease& lease = *lease_or;
    core::TmiResult tmi = core::RunTmi(problem, *engine, dcfg,
                                       *lease.artifacts);

    report::PrepDatasetStats s;
    s.dataset = spec;
    s.budget = setup.budget;
    s.promotions = setup.promotions;
    s.users = problem.NumUsers();
    s.items = problem.NumItems();
    s.nominees = tmi.selection.nominees.size();
    s.clusters = tmi.clusters.size();
    s.markets = tmi.plan.markets.size();
    s.groups = tmi.plan.groups.size();
    s.mioa_regions = lease.artifacts->num_regions();
    s.prep_millis = lease.artifacts->total_millis();
    stats.push_back(std::move(s));
  }

  util::Json output = util::Json::Object();
  output.Set("command", "datasets");
  output.Set("prep", report::PrepStatsJson(stats, setup.timings));
  if (!EmitText(args, "out", output.Dump(2) + "\n", out, &error)) {
    return RuntimeError(err, error);
  }
  return 0;
}

/// Lists the registered σ backends with their summaries and capability
/// flags. Descriptions and capabilities live on instances, so each backend
/// is probed on the tiny catalog toy — cheap (no estimates run) and
/// byte-stable, like `imdpp datasets`.
int RunBackends(const config::ParsedArgs&, std::ostream& out,
                std::ostream& err) {
  data::Dataset probe;
  const util::Status status =
      data::DatasetRegistry::Make({"fig1-toy", 1.0, 0}, &probe);
  if (!status.ok()) return StatusError(err, status);
  diffusion::Problem problem = probe.MakeProblem(/*budget=*/1.0,
                                                 /*num_promotions=*/1);
  for (const std::string& name : diffusion::SigmaBackendRegistry::Names()) {
    diffusion::SigmaBackendContext context;
    context.problem = &problem;
    context.num_samples = 1;
    context.num_threads = 0;
    context.spec.name = name;
    std::unique_ptr<diffusion::SigmaBackend> backend =
        diffusion::SigmaBackendRegistry::Create(name, context);
    if (backend == nullptr) {
      return RuntimeError(err,
                          diffusion::SigmaBackendRegistry::UnknownMessage(
                              name));
    }
    const diffusion::BackendCapabilities caps = backend->capabilities();
    std::string tags;
    if (caps.resimulates_dynamics) tags += " resimulates-dynamics";
    if (caps.market_likelihood_pi) tags += " market-likelihood-pi";
    if (caps.prefix_checkpointing) tags += " prefix-checkpointing";
    if (caps.initial_state_override) tags += " initial-state-override";
    if (caps.sketch_prep) tags += " sketch-prep";
    if (caps.select_best) tags += " select-best";
    if (tags.empty()) tags = " (none)";
    out << name << "\n";
    out << "  " << backend->description() << "\n";
    out << "  capabilities:" << tags << "\n";
  }
  return 0;
}

}  // namespace

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  config::ParsedArgs parsed;
  const util::Status parse_status = config::ParseArgs(args, &parsed);
  if (!parse_status.ok()) return StatusError(err, parse_status);
  // Fault arming before any command work, so config.parse / data.load
  // fire on this very invocation. Env first: --fail-on re-arms (replaces)
  // points it shares with IMDPP_FAIL_ON, so the flag wins.
  if (const char* env = std::getenv("IMDPP_FAIL_ON")) {
    const util::Status armed = util::FaultInjector::Global().ArmList(env);
    if (!armed.ok()) return StatusError(err, armed);
  }
  const std::string* fail_on = parsed.Find("fail-on");
  if (fail_on == nullptr) fail_on = parsed.Find("fail_on");
  if (fail_on != nullptr) {
    const util::Status armed = util::FaultInjector::Global().ArmList(*fail_on);
    if (!armed.ok()) return StatusError(err, armed);
  }
  // Disarm on the way out: cli::Run is an in-process API (tests, benches)
  // as well as the binary's main, so points armed for this invocation must
  // not leak into the caller's next one.
  const bool armed_faults =
      fail_on != nullptr || std::getenv("IMDPP_FAIL_ON") != nullptr;
  const int code = [&] {
    if (parsed.command.empty() || parsed.command == "help" ||
        parsed.Has("help")) {
      (parsed.command.empty() && !parsed.Has("help") ? err : out) << kUsage;
      return parsed.command.empty() && !parsed.Has("help") ? 2 : 0;
    }
    if (parsed.command == "plan") return RunPlan(parsed, out, err);
    if (parsed.command == "compare") return RunCompare(parsed, out, err);
    if (parsed.command == "sweep") return RunSweepCommand(parsed, out, err);
    if (parsed.command == "datasets") return RunDatasets(parsed, out, err);
    if (parsed.command == "backends") return RunBackends(parsed, out, err);
    return UsageError(err, "unknown command \"" + parsed.command +
                               "\" (expected plan, compare, sweep, datasets, "
                               "backends)");
  }();
  if (armed_faults) util::FaultInjector::Global().Reset();
  return code;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Run(args, std::cout, std::cerr);
}

}  // namespace imdpp::cli
