#include "pin/preference_model.h"

#include "util/mathutil.h"

namespace imdpp::pin {

double PreferenceModel::Eval(const UserState& state, double base_pref,
                             kg::ItemId y) const {
  if (state.Has(y)) return 0.0;
  return EvalUnchecked(state, base_pref, y);
}

double PreferenceModel::EvalUnchecked(const UserState& state, double base_pref,
                                      kg::ItemId y) const {
  const PerceptionParams& params = pin_.params();
  if (params.pref_gain <= 0.0 || state.Adopted().empty()) {
    return Clip01(base_pref);
  }
  // Mean (not sum) over adopted items: a user's perception of y is the
  // average pull of what she owns. The mean keeps the preference shift in
  // [-pref_gain, +pref_gain] regardless of basket size, preventing the
  // runaway where every large basket saturates all preferences to 1.
  double delta = 0.0;
  for (kg::ItemId a : state.Adopted()) {
    delta += pin_.RelNet(state.wmeta(), a, y);
  }
  delta /= static_cast<double>(state.Adopted().size());
  return Clip01(base_pref + params.pref_gain * delta);
}

}  // namespace imdpp::pin
