// Factor (1), relevance measurement: the personal item network
// G_PIN(u, ζ_t) and the update of personal meta-graph weightings.
//
// r^C(u,x,y) = clip01( Σ_{m ∈ {m^C}} Wmeta(u,m) * s(x,y|m) )
// r^S(u,x,y) = clip01( Σ_{m ∈ {m^S}} Wmeta(u,m) * s(x,y|m) )
//
// Weight update (after u's adoption decisions at a step): for each meta m,
// the *evidence* is the mean relevance s(a,b|m) over pairs of previously
// adopted items a and newly adopted items b (for a first adoption, pairs
// within the new items). Weights move by a saturating step
//   w += eta * evidence * (1 - w),
// mirroring Fig. 1(c)->(d): metas that connect what the user just adopted
// gain significance, bounded by 1.
#ifndef IMDPP_PIN_PERSONAL_ITEM_NETWORK_H_
#define IMDPP_PIN_PERSONAL_ITEM_NETWORK_H_

#include <span>
#include <vector>

#include "kg/relevance.h"
#include "pin/perception_params.h"
#include "pin/user_state.h"

namespace imdpp::pin {

class PersonalItemNetwork {
 public:
  PersonalItemNetwork(const kg::RelevanceModel& relevance,
                      const PerceptionParams& params)
      : rel_(relevance), params_(params) {}

  /// Complementary relevance between x and y in the perception encoded by
  /// `wmeta`.
  double RelC(std::span<const float> wmeta, kg::ItemId x, kg::ItemId y) const {
    return Rel(wmeta, x, y, kg::RelationKind::kComplementary);
  }

  /// Substitutable relevance.
  double RelS(std::span<const float> wmeta, kg::ItemId x, kg::ItemId y) const {
    return Rel(wmeta, x, y, kg::RelationKind::kSubstitutable);
  }

  /// Net relevance r^C - r^S (can be negative).
  double RelNet(std::span<const float> wmeta, kg::ItemId x,
                kg::ItemId y) const {
    return RelC(wmeta, x, y) - RelS(wmeta, x, y);
  }

  /// Applies the weight update to `state` given the items newly adopted at
  /// this step. Call *after* the items were added to the adoption set.
  void UpdateWeights(UserState& state,
                     std::span<const kg::ItemId> newly_adopted) const;

  const kg::RelevanceModel& relevance() const { return rel_; }
  const PerceptionParams& params() const { return params_; }

 private:
  double Rel(std::span<const float> wmeta, kg::ItemId x, kg::ItemId y,
             kg::RelationKind kind) const;

  const kg::RelevanceModel& rel_;
  const PerceptionParams& params_;
};

}  // namespace imdpp::pin

#endif  // IMDPP_PIN_PERSONAL_ITEM_NETWORK_H_
