// Per-user dynamic state inside one Monte-Carlo realization: the adoption
// set A(u, ζ_t) and the personal meta-graph weightings Wmeta(u, m, ζ_t).
// Everything else the paper treats as dynamic (personal item network,
// preferences, influence strengths, association probabilities) is *derived*
// from this state plus the static KG relevance, so it never needs to be
// materialized or invalidated.
#ifndef IMDPP_PIN_USER_STATE_H_
#define IMDPP_PIN_USER_STATE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "kg/types.h"
#include "util/check.h"

namespace imdpp::pin {

using kg::ItemId;

class UserState {
 public:
  UserState() = default;

  /// num_items sizes the adoption bitset; wmeta0 is the user's initial
  /// meta-graph weighting vector.
  UserState(int num_items, std::vector<float> wmeta0)
      : bits_((num_items + 63) / 64, 0), wmeta_(std::move(wmeta0)) {}

  bool Has(ItemId x) const {
    IMDPP_DCHECK(x >= 0);
    size_t w = static_cast<size_t>(x) >> 6;
    IMDPP_DCHECK(w < bits_.size());
    return (bits_[w] >> (x & 63)) & 1;
  }

  /// Adds x to the adoption set (keeps the sorted list in order).
  /// Returns false if already adopted.
  bool Add(ItemId x) {
    if (Has(x)) return false;
    bits_[static_cast<size_t>(x) >> 6] |= uint64_t{1} << (x & 63);
    adopted_.insert(std::upper_bound(adopted_.begin(), adopted_.end(), x), x);
    return true;
  }

  /// In-place reset to "nothing adopted, weightings = wmeta0". Reuses the
  /// existing buffers (no frees/allocations when the shape is unchanged),
  /// which is what lets a simulation scratch arena recycle its per-user
  /// states across Monte-Carlo realizations.
  void ResetTo(int num_items, std::span<const float> wmeta0) {
    bits_.assign(static_cast<size_t>(num_items + 63) / 64, 0);
    adopted_.clear();
    wmeta_.assign(wmeta0.begin(), wmeta0.end());
  }

  /// Structural copy that reuses this state's buffers (vector::assign, so
  /// equal shapes copy without touching the allocator).
  void CopyFrom(const UserState& other) {
    bits_.assign(other.bits_.begin(), other.bits_.end());
    adopted_.assign(other.adopted_.begin(), other.adopted_.end());
    wmeta_.assign(other.wmeta_.begin(), other.wmeta_.end());
  }

  /// Sorted adopted item ids.
  const std::vector<ItemId>& Adopted() const { return adopted_; }

  int NumAdopted() const { return static_cast<int>(adopted_.size()); }

  std::vector<float>& wmeta() { return wmeta_; }
  const std::vector<float>& wmeta() const { return wmeta_; }

 private:
  std::vector<uint64_t> bits_;
  std::vector<ItemId> adopted_;
  std::vector<float> wmeta_;
};

}  // namespace imdpp::pin

#endif  // IMDPP_PIN_USER_STATE_H_
