#include "pin/association_model.h"

#include <algorithm>

#include "util/mathutil.h"

namespace imdpp::pin {

double AssociationModel::ExtraProb(const UserState& state, double pact,
                                   double ppref_x, kg::ItemId x,
                                   kg::ItemId y) const {
  const PerceptionParams& params = pin_.params();
  if (params.assoc_scale <= 0.0) return 0.0;
  if (state.Has(y)) return 0.0;
  double net = pin_.RelNet(state.wmeta(), x, y);
  if (net <= 0.0) return 0.0;
  return Clip01(params.assoc_scale * pact * ppref_x * net);
}

}  // namespace imdpp::pin
