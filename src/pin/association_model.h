// Factor (4), item associations: Pext(u, u', x, y, ζ_t).
//
// When u is promoted x by u', an extra adoption of a relevant item y may
// trigger. Per Sec. V-A the probability derives from Pact(u',u),
// Ppref(u,x) (the probability of being promoted and preferring x) and the
// relationships between x and y in u's personal item network:
//
//   Pext = clip01( assoc_scale * Pact(u',u) * Ppref(u,x)
//                  * max(0, r^C(u,x,y) - r^S(u,x,y)) )
//
// Complementary relevance drives extra adoptions; substitutable relevance
// suppresses them (antagonism). The extra adoption is flipped independently
// of whether u actually adopts x (footnote 9 in the paper).
#ifndef IMDPP_PIN_ASSOCIATION_MODEL_H_
#define IMDPP_PIN_ASSOCIATION_MODEL_H_

#include "pin/personal_item_network.h"

namespace imdpp::pin {

class AssociationModel {
 public:
  explicit AssociationModel(const PersonalItemNetwork& pin) : pin_(pin) {}

  /// Probability that being promoted x (by an edge of dynamic strength
  /// `pact`, with preference `ppref_x` for x) triggers adoption of y.
  double ExtraProb(const UserState& state, double pact, double ppref_x,
                   kg::ItemId x, kg::ItemId y) const;

 private:
  const PersonalItemNetwork& pin_;
};

}  // namespace imdpp::pin

#endif  // IMDPP_PIN_ASSOCIATION_MODEL_H_
