// Factor (3), influence learning: Pact(u, v, ζ_t).
//
// The paper infers influence strength from the similarity of two users'
// adopted items and personal item networks (friends who adopt similar items
// and share perceptions grow closer). We realize this as
//
//   sim(u,v)  = a * Jaccard(A(u), A(v)) + (1-a) * cosine(Wmeta_u, Wmeta_v)
//   Pact(u,v) = min(act_cap, base(u,v) * (1 + act_gain * sim(u,v)))
//
// where base(u,v) is the static edge strength of the social graph. With
// act_gain = 0 this degenerates to the classic IC edge probability.
#ifndef IMDPP_PIN_INFLUENCE_MODEL_H_
#define IMDPP_PIN_INFLUENCE_MODEL_H_

#include "pin/perception_params.h"
#include "pin/user_state.h"

namespace imdpp::pin {

class InfluenceModel {
 public:
  explicit InfluenceModel(const PerceptionParams& params) : params_(params) {}

  /// Similarity in [0,1] of two users' dynamic states.
  double Similarity(const UserState& u, const UserState& v) const;

  /// Dynamic influence strength of edge with static weight `base_weight`.
  double Eval(double base_weight, const UserState& u, const UserState& v) const;

 private:
  const PerceptionParams& params_;
};

}  // namespace imdpp::pin

#endif  // IMDPP_PIN_INFLUENCE_MODEL_H_
