// Factor (2), preference estimation: Ppref(u, y, ζ_t).
//
// Following the cross-elasticity reading of Sec. III / V-A, a user's
// preference for a not-yet-adopted item y is her base preference plus a
// gain for every adopted complementary item and a penalty for every adopted
// substitutable item, all through her *personal* item network:
//
//   Ppref(u,y) = clip01( base(u,y) +
//                        pref_gain * Σ_{a ∈ A(u)} (r^C(u,a,y) - r^S(u,a,y)) )
//
// Already-adopted items have preference 0 (they cannot be promoted again).
#ifndef IMDPP_PIN_PREFERENCE_MODEL_H_
#define IMDPP_PIN_PREFERENCE_MODEL_H_

#include "pin/personal_item_network.h"

namespace imdpp::pin {

class PreferenceModel {
 public:
  explicit PreferenceModel(const PersonalItemNetwork& pin) : pin_(pin) {}

  /// `base_pref` is the user's static initial preference for y in [0,1].
  double Eval(const UserState& state, double base_pref, kg::ItemId y) const;

  /// Same but ignoring the adoption check (used when scoring hypothetical
  /// adoptions).
  double EvalUnchecked(const UserState& state, double base_pref,
                       kg::ItemId y) const;

 private:
  const PersonalItemNetwork& pin_;
};

}  // namespace imdpp::pin

#endif  // IMDPP_PIN_PREFERENCE_MODEL_H_
