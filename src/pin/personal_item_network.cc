#include "pin/personal_item_network.h"

#include "util/mathutil.h"

namespace imdpp::pin {

double PersonalItemNetwork::Rel(std::span<const float> wmeta, kg::ItemId x,
                                kg::ItemId y, kg::RelationKind kind) const {
  if (x == y) return 0.0;
  double s = 0.0;
  const int metas = rel_.NumMetas();
  IMDPP_DCHECK(static_cast<int>(wmeta.size()) >= metas);
  for (int m = 0; m < metas; ++m) {
    if (rel_.KindOf(m) != kind) continue;
    s += wmeta[m] * rel_.Score(m, x, y);
  }
  return Clip01(s);
}

void PersonalItemNetwork::UpdateWeights(
    UserState& state, std::span<const kg::ItemId> newly_adopted) const {
  if (params_.meta_learning_rate <= 0.0 || newly_adopted.empty()) return;
  const int metas = rel_.NumMetas();
  std::vector<float>& w = state.wmeta();
  IMDPP_DCHECK(static_cast<int>(w.size()) >= metas);

  for (int m = 0; m < metas; ++m) {
    double evidence = 0.0;
    int pairs = 0;
    // Pairs (previously adopted a, newly adopted b). The adoption set
    // already contains the new items, so skip them on the `a` side.
    for (kg::ItemId a : state.Adopted()) {
      bool a_is_new = false;
      for (kg::ItemId b : newly_adopted) {
        if (a == b) {
          a_is_new = true;
          break;
        }
      }
      if (a_is_new) continue;
      for (kg::ItemId b : newly_adopted) {
        evidence += rel_.Score(m, a, b);
        ++pairs;
      }
    }
    // First adoptions: learn from pairs within the new items themselves
    // (e.g. a seed adopting iPhone and AirPods together, Fig. 1).
    if (pairs == 0 && newly_adopted.size() >= 2) {
      for (size_t i = 0; i < newly_adopted.size(); ++i) {
        for (size_t j = i + 1; j < newly_adopted.size(); ++j) {
          evidence += rel_.Score(m, newly_adopted[i], newly_adopted[j]);
          ++pairs;
        }
      }
    }
    if (pairs == 0) continue;
    evidence /= static_cast<double>(pairs);
    double step = params_.meta_learning_rate * evidence * (1.0 - w[m]);
    w[m] = static_cast<float>(Clip01(w[m] + step));
  }
}

}  // namespace imdpp::pin
