#include "pin/influence_model.h"

#include "util/mathutil.h"

namespace imdpp::pin {

namespace {

double CosineF(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

double InfluenceModel::Similarity(const UserState& u,
                                  const UserState& v) const {
  double jac = JaccardSorted(u.Adopted(), v.Adopted());
  double cos = CosineF(u.wmeta(), v.wmeta());
  double a = params_.sim_adoption_weight;
  return Clip01(a * jac + (1.0 - a) * cos);
}

double InfluenceModel::Eval(double base_weight, const UserState& u,
                            const UserState& v) const {
  if (params_.act_gain <= 0.0) return Clip(base_weight, 0.0, params_.act_cap);
  double sim = Similarity(u, v);
  return Clip(base_weight * (1.0 + params_.act_gain * sim), 0.0,
              params_.act_cap);
}

}  // namespace imdpp::pin
