// Facade bundling the four dynamic factors (Fig. 3 of the paper). The
// diffusion engine talks to this class only; the individual factor models
// stay independently testable.
#ifndef IMDPP_PIN_DYNAMICS_H_
#define IMDPP_PIN_DYNAMICS_H_

#include "pin/association_model.h"
#include "pin/influence_model.h"
#include "pin/personal_item_network.h"
#include "pin/preference_model.h"

namespace imdpp::pin {

class Dynamics {
 public:
  Dynamics(const kg::RelevanceModel& relevance, const PerceptionParams& params)
      : params_(params),
        pin_(relevance, params_),
        preference_(pin_),
        influence_(params_),
        association_(pin_) {}

  // Non-copyable: internal models hold references into this object.
  Dynamics(const Dynamics&) = delete;
  Dynamics& operator=(const Dynamics&) = delete;

  const PersonalItemNetwork& pin() const { return pin_; }
  const PreferenceModel& preference() const { return preference_; }
  const InfluenceModel& influence() const { return influence_; }
  const AssociationModel& association() const { return association_; }
  const PerceptionParams& params() const { return params_; }
  const kg::RelevanceModel& relevance() const { return pin_.relevance(); }

 private:
  PerceptionParams params_;
  PersonalItemNetwork pin_;
  PreferenceModel preference_;
  InfluenceModel influence_;
  AssociationModel association_;
};

}  // namespace imdpp::pin

#endif  // IMDPP_PIN_DYNAMICS_H_
