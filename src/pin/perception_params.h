// Tunable coefficients of the four dynamic factors (Sec. V-A). The paper
// delegates these to learned models (SemRec/RelSUE, RSC/RCF, DeepInf, CKE);
// we substitute closed-form rules with the same monotone couplings, and
// these parameters expose the coupling strengths. `FrozenDynamics()` turns
// all couplings off, which recovers the static setting of Lemma 1 /
// Theorem 4 (Ppref, Pact, Pext fixed at their initial values) — used by the
// property tests for submodularity.
#ifndef IMDPP_PIN_PERCEPTION_PARAMS_H_
#define IMDPP_PIN_PERCEPTION_PARAMS_H_

namespace imdpp::pin {

struct PerceptionParams {
  /// Learning rate of the saturating meta-graph weight update
  /// (relevance measurement, factor 1).
  double meta_learning_rate = 0.4;

  /// Weight of the adopted-item relevance term in preference estimation
  /// (factor 2): Ppref = clip01(base + pref_gain * sum_a (r^C - r^S)).
  double pref_gain = 0.8;

  /// Influence learning (factor 3): Pact = clip(base * (1 + act_gain*sim)).
  double act_gain = 0.6;
  /// Hard cap on any dynamic influence strength.
  double act_cap = 0.95;
  /// Mixing of adoption-set Jaccard vs. Wmeta cosine in user similarity.
  /// Weighted toward Jaccard: Wmeta vectors are all-positive, so their
  /// cosine is high even between strangers and would inflate every edge.
  double sim_adoption_weight = 0.8;

  /// Item associations (factor 4):
  /// Pext = clip01(assoc_scale * Pact * Ppref(x) * max(0, r^C - r^S)).
  double assoc_scale = 0.4;

  /// Memberwise equality — lets CampaignSession::SetProblem detect a
  /// no-op reconfiguration.
  friend bool operator==(const PerceptionParams&,
                         const PerceptionParams&) = default;

  /// Returns a copy with every dynamic coupling disabled; Ppref/Pact stay
  /// at their base values and no extra adoptions happen.
  static PerceptionParams FrozenDynamics() {
    PerceptionParams p;
    p.meta_learning_rate = 0.0;
    p.pref_gain = 0.0;
    p.act_gain = 0.0;
    p.assoc_scale = 0.0;
    return p;
  }

  /// Frozen perception but with associations still active (used by the
  /// hardness-construction style tests where Pext is prescribed).
  static PerceptionParams StaticPerception() {
    PerceptionParams p = FrozenDynamics();
    p.assoc_scale = 0.8;
    return p;
  }
};

}  // namespace imdpp::pin

#endif  // IMDPP_PIN_PERCEPTION_PARAMS_H_
