#include "graph/graph_builder.h"

#include <algorithm>

namespace imdpp::graph {

void GraphBuilder::AddEdge(UserId u, UserId v, double w) {
  IMDPP_CHECK(u >= 0 && u < num_users_);
  IMDPP_CHECK(v >= 0 && v < num_users_);
  if (u == v) return;
  IMDPP_CHECK(w >= 0.0 && w <= 1.0);
  raw_.push_back(Raw{u, v, static_cast<float>(w)});
}

SocialGraph GraphBuilder::Build() {
  std::sort(raw_.begin(), raw_.end(), [](const Raw& a, const Raw& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.weight > b.weight;  // keep max-weight duplicate first
  });
  // Deduplicate (from, to), keeping the first (max-weight) occurrence.
  std::vector<Raw> dedup;
  dedup.reserve(raw_.size());
  for (const Raw& r : raw_) {
    if (!dedup.empty() && dedup.back().from == r.from &&
        dedup.back().to == r.to) {
      continue;
    }
    dedup.push_back(r);
  }

  SocialGraph g;
  g.num_users_ = num_users_;
  g.out_offsets_.assign(num_users_ + 1, 0);
  g.in_offsets_.assign(num_users_ + 1, 0);
  for (const Raw& r : dedup) {
    ++g.out_offsets_[r.from + 1];
    ++g.in_offsets_[r.to + 1];
  }
  for (int u = 0; u < num_users_; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
    g.in_offsets_[u + 1] += g.in_offsets_[u];
  }
  g.out_edges_.resize(dedup.size());
  g.in_edges_.resize(dedup.size());
  std::vector<int64_t> out_pos(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
  std::vector<int64_t> in_pos(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Raw& r : dedup) {
    g.out_edges_[out_pos[r.from]++] = Edge{r.to, r.weight};
    g.in_edges_[in_pos[r.to]++] = Edge{r.from, r.weight};
  }
  return g;
}

}  // namespace imdpp::graph
