#include "graph/social_graph.h"

namespace imdpp::graph {

double SocialGraph::BaseWeight(UserId u, UserId v) const {
  for (const Edge& e : OutEdges(u)) {
    if (e.to == v) return e.weight;
  }
  return 0.0;
}

double SocialGraph::AverageInfluenceStrength() const {
  if (out_edges_.empty()) return 0.0;
  double s = 0.0;
  for (const Edge& e : out_edges_) s += e.weight;
  return s / static_cast<double>(out_edges_.size());
}

}  // namespace imdpp::graph
