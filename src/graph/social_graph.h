// Social network G_SN = (V, E) with per-edge base influence strength.
//
// The graph is stored in CSR form with both out- and in-adjacency so that
// diffusion (out-edges of newly adopting users) and AIS aggregation
// (in-edges of a candidate adopter, Eq. 13) are both cache-friendly.
// Edge weights are the *initial* influence strengths; the dynamic strength
// Pact(u,v,ζ_t) is derived on top of them by pin::InfluenceModel.
#ifndef IMDPP_GRAPH_SOCIAL_GRAPH_H_
#define IMDPP_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace imdpp::graph {

using UserId = int32_t;

/// A directed edge with its base influence strength in [0,1].
struct Edge {
  UserId to = -1;
  float weight = 0.0f;
};

/// Immutable CSR social graph. Build with GraphBuilder.
class SocialGraph {
 public:
  SocialGraph() = default;

  int NumUsers() const { return num_users_; }
  int64_t NumEdges() const { return static_cast<int64_t>(out_edges_.size()); }

  /// Out-neighbors of u with base influence strengths.
  std::span<const Edge> OutEdges(UserId u) const {
    IMDPP_DCHECK(u >= 0 && u < num_users_);
    return {out_edges_.data() + out_offsets_[u],
            out_edges_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbors of u: edges (v -> u) reported as {from=v, weight}.
  std::span<const Edge> InEdges(UserId u) const {
    IMDPP_DCHECK(u >= 0 && u < num_users_);
    return {in_edges_.data() + in_offsets_[u],
            in_edges_.data() + in_offsets_[u + 1]};
  }

  int OutDegree(UserId u) const {
    IMDPP_DCHECK(u >= 0 && u < num_users_);
    return static_cast<int>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  int InDegree(UserId u) const {
    IMDPP_DCHECK(u >= 0 && u < num_users_);
    return static_cast<int>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  /// Base influence strength of edge (u -> v); 0 if the edge is absent.
  /// O(out-degree of u).
  double BaseWeight(UserId u, UserId v) const;

  /// True if edge (u -> v) exists.
  bool HasEdge(UserId u, UserId v) const { return BaseWeight(u, v) > 0.0; }

  /// Mean base influence strength over all edges (Table II row).
  double AverageInfluenceStrength() const;

 private:
  friend class GraphBuilder;

  int num_users_ = 0;
  std::vector<int64_t> out_offsets_{0};
  std::vector<Edge> out_edges_;
  std::vector<int64_t> in_offsets_{0};
  std::vector<Edge> in_edges_;
};

}  // namespace imdpp::graph

#endif  // IMDPP_GRAPH_SOCIAL_GRAPH_H_
