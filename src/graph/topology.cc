#include "graph/topology.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"
#include "util/mathutil.h"

namespace imdpp::graph {

namespace {

/// Draws a per-edge influence strength around the configured mean.
double DrawWeight(const TopologyConfig& cfg, Rng& rng) {
  double w = cfg.mean_influence * rng.NextRange(0.2, 1.8);
  return Clip(w, 0.01, 0.95);
}

void Connect(GraphBuilder& b, const TopologyConfig& cfg, Rng& rng, UserId u,
             UserId v) {
  if (cfg.directed) {
    b.AddEdge(u, v, DrawWeight(cfg, rng));
  } else {
    // Undirected friendships still have asymmetric influence in real data;
    // draw the two directions independently.
    b.AddEdge(u, v, DrawWeight(cfg, rng));
    b.AddEdge(v, u, DrawWeight(cfg, rng));
  }
}

}  // namespace

SocialGraph MakePreferentialAttachment(const TopologyConfig& cfg,
                                       int edges_per_node) {
  IMDPP_CHECK_GT(cfg.num_users, 1);
  IMDPP_CHECK_GT(edges_per_node, 0);
  Rng rng(cfg.seed);
  GraphBuilder b(cfg.num_users);
  // Repeated-endpoint list implements preferential attachment in O(E).
  std::vector<UserId> endpoints;
  endpoints.reserve(static_cast<size_t>(cfg.num_users) * edges_per_node * 2);
  int seed_core = std::min(cfg.num_users, edges_per_node + 1);
  for (UserId u = 0; u < seed_core; ++u) {
    for (UserId v = 0; v < u; ++v) {
      Connect(b, cfg, rng, u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (UserId u = seed_core; u < cfg.num_users; ++u) {
    std::vector<UserId> targets;
    int guard = 0;
    while (static_cast<int>(targets.size()) < edges_per_node &&
           guard++ < 64 * edges_per_node) {
      UserId v = endpoints.empty()
                     ? static_cast<UserId>(rng.NextBelow(u))
                     : endpoints[rng.NextBelow(
                           static_cast<uint32_t>(endpoints.size()))];
      if (v == u) continue;
      if (std::find(targets.begin(), targets.end(), v) != targets.end()) {
        continue;
      }
      targets.push_back(v);
    }
    for (UserId v : targets) {
      Connect(b, cfg, rng, u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return b.Build();
}

SocialGraph MakeSmallWorld(const TopologyConfig& cfg, int k, double beta) {
  IMDPP_CHECK_GT(cfg.num_users, 2 * k);
  IMDPP_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(cfg.seed);
  GraphBuilder b(cfg.num_users);
  int n = cfg.num_users;
  for (UserId u = 0; u < n; ++u) {
    for (int j = 1; j <= k; ++j) {
      UserId v = static_cast<UserId>((u + j) % n);
      if (rng.NextBool(beta)) {
        // Rewire to a uniform random target.
        UserId w = static_cast<UserId>(rng.NextBelow(n));
        if (w != u) v = w;
      }
      if (v != u) Connect(b, cfg, rng, u, v);
    }
  }
  return b.Build();
}

SocialGraph MakeCommunityGraph(const TopologyConfig& cfg, int num_blocks,
                               double p_in, double p_out) {
  IMDPP_CHECK_GT(num_blocks, 0);
  Rng rng(cfg.seed);
  GraphBuilder b(cfg.num_users);
  int n = cfg.num_users;
  auto block_of = [&](UserId u) { return (u * num_blocks) / n; };
  for (UserId u = 0; u < n; ++u) {
    for (UserId v = static_cast<UserId>(u + 1); v < n; ++v) {
      double p = block_of(u) == block_of(v) ? p_in : p_out;
      if (rng.NextBool(p)) Connect(b, cfg, rng, u, v);
    }
  }
  return b.Build();
}

}  // namespace imdpp::graph
