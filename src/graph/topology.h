// Synthetic social topologies. The paper's social networks are real crawls
// (Douban, Gowalla, Yelp friendship graphs, Pokec for Amazon); we substitute
// generators that reproduce the structural features the algorithms react to:
// heavy-tailed degrees, local clustering, and community structure.
#ifndef IMDPP_GRAPH_TOPOLOGY_H_
#define IMDPP_GRAPH_TOPOLOGY_H_

#include "graph/social_graph.h"
#include "util/rng.h"

namespace imdpp::graph {

/// Parameters shared by the topology generators.
struct TopologyConfig {
  int num_users = 100;
  /// Mean influence strength of generated edges; per-edge strengths are
  /// drawn uniformly in [0.2, 1.8] * mean, clipped to [0.01, 0.95].
  double mean_influence = 0.1;
  bool directed = false;
  uint64_t seed = 1;
};

/// Barabasi-Albert preferential attachment (heavy-tailed degrees).
/// `edges_per_node` new links per arriving node.
SocialGraph MakePreferentialAttachment(const TopologyConfig& cfg,
                                       int edges_per_node);

/// Watts-Strogatz small world: ring lattice with `k` neighbors per side and
/// rewiring probability `beta` (high clustering, short paths).
SocialGraph MakeSmallWorld(const TopologyConfig& cfg, int k, double beta);

/// Stochastic block model with `num_blocks` equal communities,
/// within-community edge probability `p_in`, cross probability `p_out`.
/// Used for the classroom datasets (dense cliques per class).
SocialGraph MakeCommunityGraph(const TopologyConfig& cfg, int num_blocks,
                               double p_in, double p_out);

}  // namespace imdpp::graph

#endif  // IMDPP_GRAPH_TOPOLOGY_H_
