// Classic graph algorithms over SocialGraph used by the market machinery:
// truncated BFS hop distances (nominee clustering), max-probability Dijkstra
// (MIOA influence regions), and component/diameter helpers.
#ifndef IMDPP_GRAPH_GRAPH_ALGOS_H_
#define IMDPP_GRAPH_GRAPH_ALGOS_H_

#include <limits>
#include <vector>

#include "graph/social_graph.h"

namespace imdpp::graph {

inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Hop distances from `src` following out-edges, truncated at `max_hops`.
/// Unreached users get kUnreachable.
std::vector<int> BfsHops(const SocialGraph& g, UserId src, int max_hops);

/// Hop distance between two users, ignoring edge direction, truncated at
/// `max_hops` (returns kUnreachable beyond). Used as the social distance in
/// nominee clustering.
int UndirectedHopDistance(const SocialGraph& g, UserId a, UserId b,
                          int max_hops);

/// Result of a maximum-influence-path search (the MIOA primitive of
/// Chen et al., KDD'10): for each reached user, the maximum product of edge
/// influence strengths over any path from src, and the hop count of that
/// path.
struct InfluencePaths {
  std::vector<UserId> users;     ///< users with path probability >= threshold
  std::vector<double> path_prob; ///< aligned with `users`
  std::vector<int> hops;         ///< aligned with `users`
};

/// Dijkstra on -log(weight): finds all users reachable from `src` with
/// maximum path influence probability >= `threshold`. `src` itself is
/// included with probability 1 and 0 hops. Edge weights are the graph's
/// base influence strengths; edges with weight <= 0 are skipped.
InfluencePaths MaxInfluencePaths(const SocialGraph& g, UserId src,
                                 double threshold, int max_hops = 64);

/// Weakly connected components; returns component id per user and fills
/// `num_components`.
std::vector<int> WeakComponents(const SocialGraph& g, int* num_components);

/// Eccentricity of `src` restricted to the user subset `members`
/// (hop distance over the induced subgraph, ignoring direction).
int SubsetEccentricity(const SocialGraph& g, UserId src,
                       const std::vector<UserId>& members, int max_hops);

}  // namespace imdpp::graph

#endif  // IMDPP_GRAPH_GRAPH_ALGOS_H_
