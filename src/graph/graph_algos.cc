#include "graph/graph_algos.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace imdpp::graph {

std::vector<int> BfsHops(const SocialGraph& g, UserId src, int max_hops) {
  std::vector<int> dist(g.NumUsers(), kUnreachable);
  IMDPP_CHECK(src >= 0 && src < g.NumUsers());
  dist[src] = 0;
  std::vector<UserId> frontier{src};
  for (int h = 0; h < max_hops && !frontier.empty(); ++h) {
    std::vector<UserId> next;
    for (UserId u : frontier) {
      for (const Edge& e : g.OutEdges(u)) {
        if (dist[e.to] == kUnreachable) {
          dist[e.to] = h + 1;
          next.push_back(e.to);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

int UndirectedHopDistance(const SocialGraph& g, UserId a, UserId b,
                          int max_hops) {
  if (a == b) return 0;
  std::unordered_map<UserId, int> dist;
  dist.emplace(a, 0);
  std::vector<UserId> frontier{a};
  for (int h = 0; h < max_hops && !frontier.empty(); ++h) {
    std::vector<UserId> next;
    for (UserId u : frontier) {
      auto visit = [&](UserId v) {
        if (v == b) return true;
        if (dist.emplace(v, h + 1).second) next.push_back(v);
        return false;
      };
      for (const Edge& e : g.OutEdges(u)) {
        if (visit(e.to)) return h + 1;
      }
      for (const Edge& e : g.InEdges(u)) {
        if (visit(e.to)) return h + 1;
      }
    }
    frontier.swap(next);
  }
  return kUnreachable;
}

InfluencePaths MaxInfluencePaths(const SocialGraph& g, UserId src,
                                 double threshold, int max_hops) {
  IMDPP_CHECK(src >= 0 && src < g.NumUsers());
  IMDPP_CHECK(threshold > 0.0 && threshold <= 1.0);
  // Max-product Dijkstra: expand in order of decreasing path probability.
  struct Entry {
    double prob;
    int hops;
    UserId user;
    bool operator<(const Entry& o) const { return prob < o.prob; }
  };
  std::priority_queue<Entry> pq;
  std::unordered_map<UserId, double> best;
  std::unordered_map<UserId, int> best_hops;
  pq.push({1.0, 0, src});
  best[src] = 1.0;
  best_hops[src] = 0;
  InfluencePaths out;
  std::unordered_set<UserId> done;
  while (!pq.empty()) {
    Entry top = pq.top();
    pq.pop();
    if (done.count(top.user)) continue;
    done.insert(top.user);
    out.users.push_back(top.user);
    out.path_prob.push_back(top.prob);
    out.hops.push_back(best_hops[top.user]);
    if (top.hops >= max_hops) continue;
    for (const Edge& e : g.OutEdges(top.user)) {
      if (e.weight <= 0.0f) continue;
      double p = top.prob * e.weight;
      if (p < threshold) continue;
      auto it = best.find(e.to);
      if (it == best.end() || p > it->second) {
        best[e.to] = p;
        best_hops[e.to] = top.hops + 1;
        pq.push({p, top.hops + 1, e.to});
      }
    }
  }
  return out;
}

std::vector<int> WeakComponents(const SocialGraph& g, int* num_components) {
  std::vector<int> comp(g.NumUsers(), -1);
  int next_id = 0;
  for (UserId s = 0; s < g.NumUsers(); ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next_id;
    std::vector<UserId> stack{s};
    while (!stack.empty()) {
      UserId u = stack.back();
      stack.pop_back();
      auto visit = [&](UserId v) {
        if (comp[v] == -1) {
          comp[v] = next_id;
          stack.push_back(v);
        }
      };
      for (const Edge& e : g.OutEdges(u)) visit(e.to);
      for (const Edge& e : g.InEdges(u)) visit(e.to);
    }
    ++next_id;
  }
  if (num_components != nullptr) *num_components = next_id;
  return comp;
}

int SubsetEccentricity(const SocialGraph& g, UserId src,
                       const std::vector<UserId>& members, int max_hops) {
  std::unordered_set<UserId> member_set(members.begin(), members.end());
  IMDPP_CHECK(member_set.count(src) > 0);
  std::unordered_map<UserId, int> dist;
  dist.emplace(src, 0);
  std::vector<UserId> frontier{src};
  int ecc = 0;
  for (int h = 0; h < max_hops && !frontier.empty(); ++h) {
    std::vector<UserId> next;
    for (UserId u : frontier) {
      auto visit = [&](UserId v) {
        if (!member_set.count(v)) return;
        if (dist.emplace(v, h + 1).second) {
          next.push_back(v);
          ecc = h + 1;
        }
      };
      for (const Edge& e : g.OutEdges(u)) visit(e.to);
      for (const Edge& e : g.InEdges(u)) visit(e.to);
    }
    frontier.swap(next);
  }
  return ecc;
}

}  // namespace imdpp::graph
