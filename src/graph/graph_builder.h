// Mutable edge-list accumulator that finalizes into a CSR SocialGraph.
#ifndef IMDPP_GRAPH_GRAPH_BUILDER_H_
#define IMDPP_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/social_graph.h"

namespace imdpp::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(int num_users) : num_users_(num_users) {
    IMDPP_CHECK_GE(num_users, 0);
  }

  /// Adds directed edge (u -> v) with base influence strength w in [0,1].
  /// Self-loops are ignored; duplicate edges keep the maximum weight.
  void AddEdge(UserId u, UserId v, double w);

  /// Adds both (u -> v) and (v -> u) with the same weight.
  void AddUndirectedEdge(UserId u, UserId v, double w) {
    AddEdge(u, v, w);
    AddEdge(v, u, w);
  }

  int NumUsers() const { return num_users_; }

  /// Sorts, deduplicates, and freezes into a CSR graph.
  SocialGraph Build();

 private:
  struct Raw {
    UserId from;
    UserId to;
    float weight;
  };
  int num_users_;
  std::vector<Raw> raw_;
};

}  // namespace imdpp::graph

#endif  // IMDPP_GRAPH_GRAPH_BUILDER_H_
