#include "config/config_loader.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "diffusion/sigma_backend.h"
#include "util/fault_injection.h"

namespace imdpp::config {

namespace {

// ---------------------------------------------------- typed field readers
// Each returns false with a "section.key"-qualified message; a mistyped
// or misspelled knob must fail loudly, never silently run a default.

bool ReadInt(const util::Json& v, const std::string& where, int* out,
             std::string* error) {
  if (!v.is_number() || v.AsDouble() != std::floor(v.AsDouble())) {
    *error = where + " must be an integer";
    return false;
  }
  *out = static_cast<int>(v.AsInt());
  return true;
}

bool ReadDouble(const util::Json& v, const std::string& where, double* out,
                std::string* error) {
  if (!v.is_number()) {
    *error = where + " must be a number";
    return false;
  }
  *out = v.AsDouble();
  return true;
}

bool ReadBool(const util::Json& v, const std::string& where, bool* out,
              std::string* error) {
  if (!v.is_bool()) {
    *error = where + " must be a bool";
    return false;
  }
  *out = v.AsBool();
  return true;
}

/// Seeds may exceed JSON's exact double range, so strings of digits are
/// accepted alongside numbers.
bool ReadSeed(const util::Json& v, const std::string& where, uint64_t* out,
              std::string* error) {
  if (v.is_number()) {
    const double d = v.AsDouble();
    if (d < 0.0 || d != std::floor(d)) {  // negative → UB cast; reject
      *error = where + " must be a non-negative integer or a digit string";
      return false;
    }
    *out = static_cast<uint64_t>(d);
    return true;
  }
  if (v.is_string()) {
    char* end = nullptr;
    *out = std::strtoull(v.AsString().c_str(), &end, 0);
    if (end != nullptr && *end == '\0' && !v.AsString().empty()) return true;
  }
  *error = where + " must be a number or a digit string";
  return false;
}

bool ApplyCandidates(const util::Json& obj, core::CandidateConfig* cfg,
                     std::string* error) {
  for (const auto& [key, v] : obj.members()) {
    if (key == "max_users") {
      if (!ReadInt(v, "candidates.max_users", &cfg->max_users, error))
        return false;
    } else if (key == "max_items") {
      if (!ReadInt(v, "candidates.max_items", &cfg->max_items, error))
        return false;
    } else {
      *error = "unknown candidates key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

bool ApplyCampaign(const util::Json& obj, diffusion::CampaignConfig* cfg,
                   std::string* error) {
  for (const auto& [key, v] : obj.members()) {
    if (key == "model") {
      if (!v.is_string()) {
        *error = "campaign.model must be a string";
        return false;
      }
      const std::string& m = v.AsString();
      if (m == "ic") {
        cfg->model = diffusion::DiffusionModel::kIndependentCascade;
      } else if (m == "lt") {
        cfg->model = diffusion::DiffusionModel::kLinearThreshold;
      } else {
        *error = "unknown campaign.model \"" + m + "\" (expected ic, lt)";
        return false;
      }
    } else if (key == "max_steps") {
      if (!ReadInt(v, "campaign.max_steps", &cfg->max_steps, error))
        return false;
    } else {
      *error = "unknown campaign key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

bool ApplyClustering(const util::Json& obj, cluster::ClusteringConfig* cfg,
                     std::string* error) {
  for (const auto& [key, v] : obj.members()) {
    if (key == "social_weight") {
      if (!ReadDouble(v, "clustering.social_weight", &cfg->social_weight,
                      error))
        return false;
    } else if (key == "relevance_weight") {
      if (!ReadDouble(v, "clustering.relevance_weight",
                      &cfg->relevance_weight, error))
        return false;
    } else if (key == "merge_threshold") {
      if (!ReadDouble(v, "clustering.merge_threshold", &cfg->merge_threshold,
                      error))
        return false;
    } else if (key == "max_hops") {
      if (!ReadInt(v, "clustering.max_hops", &cfg->max_hops, error))
        return false;
    } else {
      *error = "unknown clustering key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

bool ApplyMarket(const util::Json& obj, cluster::MarketPlanConfig* cfg,
                 std::string* error) {
  for (const auto& [key, v] : obj.members()) {
    if (key == "mioa_threshold") {
      if (!ReadDouble(v, "market.mioa_threshold", &cfg->mioa_threshold,
                      error))
        return false;
    } else if (key == "mioa_max_hops") {
      if (!ReadInt(v, "market.mioa_max_hops", &cfg->mioa_max_hops, error))
        return false;
    } else if (key == "overlap_theta") {
      if (!ReadInt(v, "market.overlap_theta", &cfg->overlap_theta, error))
        return false;
    } else {
      *error = "unknown market key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

bool ApplyDysim(const util::Json& obj,
                api::PlannerConfig::DysimOptions* cfg, std::string* error) {
  for (const auto& [key, v] : obj.members()) {
    if (key == "order") {
      if (!v.is_string()) {
        *error = "dysim.order must be a string";
        return false;
      }
      const std::string& o = v.AsString();
      if (o == "ae") {
        cfg->order = core::MarketOrderMetric::kAntagonisticExtent;
      } else if (o == "pf") {
        cfg->order = core::MarketOrderMetric::kProfitability;
      } else if (o == "sz") {
        cfg->order = core::MarketOrderMetric::kSize;
      } else if (o == "rms") {
        cfg->order = core::MarketOrderMetric::kRelativeMarketShare;
      } else if (o == "rd") {
        cfg->order = core::MarketOrderMetric::kRandom;
      } else {
        *error = "unknown dysim.order \"" + o +
                 "\" (expected ae, pf, sz, rms, rd)";
        return false;
      }
    } else if (key == "dr_max_depth") {
      if (!ReadInt(v, "dysim.dr_max_depth", &cfg->dr_max_depth, error))
        return false;
    } else if (key == "use_target_markets") {
      if (!ReadBool(v, "dysim.use_target_markets", &cfg->use_target_markets,
                    error))
        return false;
    } else if (key == "use_item_priority") {
      if (!ReadBool(v, "dysim.use_item_priority", &cfg->use_item_priority,
                    error))
        return false;
    } else if (key == "use_theorem5_guard") {
      if (!ReadBool(v, "dysim.use_theorem5_guard", &cfg->use_theorem5_guard,
                    error))
        return false;
    } else {
      *error = "unknown dysim key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace

util::Status LoadJsonFile(const std::string& path, util::Json* out) {
  // The config.parse fault point (ISSUE 8): fires before the file is
  // touched, so an armed fault surfaces exactly like a bad config would.
  IMDPP_RETURN_IF_ERROR(util::FaultInjector::Global().Hit("config.parse"));
  std::ifstream in(path);
  if (!in) {
    return util::NotFoundError("cannot open \"" + path + "\"");
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  if (!util::Json::Parse(text.str(), out, &parse_error)) {
    return util::InvalidArgumentError(path + ":" + parse_error);
  }
  return util::OkStatus();
}

namespace {

/// The bool + error-string core the recursive parsers below share; the
/// public surface wraps it into util::Status (kInvalidArgument).
bool ApplyPlannerConfigJsonImpl(const util::Json& obj, api::PlannerConfig* cfg,
                                std::string* error) {
  if (obj.is_null()) return true;  // no overrides
  if (!obj.is_object()) {
    *error = "planner config must be a JSON object";
    return false;
  }
  for (const auto& [key, v] : obj.members()) {
    if (key == "selection_samples") {
      if (!ReadInt(v, "selection_samples", &cfg->selection_samples, error))
        return false;
    } else if (key == "eval_samples") {
      if (!ReadInt(v, "eval_samples", &cfg->eval_samples, error))
        return false;
    } else if (key == "seed") {
      if (!ReadSeed(v, "seed", &cfg->seed, error)) return false;
    } else if (key == "num_threads") {
      if (!ReadInt(v, "num_threads", &cfg->num_threads, error)) return false;
    } else if (key == "deadline_ms") {
      int deadline = static_cast<int>(cfg->deadline_ms);
      if (!ReadInt(v, "deadline_ms", &deadline, error)) return false;
      if (deadline < 0) {
        *error = "deadline_ms must be >= 0";
        return false;
      }
      cfg->deadline_ms = deadline;
    } else if (key == "prep") {
      if (!v.is_object()) {
        *error = "prep must be an object";
        return false;
      }
      for (const auto& [pkey, pv] : v.members()) {
        if (pkey == "cache") {
          if (!ReadBool(pv, "prep.cache", &cfg->prep.cache, error))
            return false;
        } else if (pkey == "build_threads") {
          if (!ReadInt(pv, "prep.build_threads", &cfg->prep.build_threads,
                       error))
            return false;
        } else {
          *error = "unknown prep key \"" + pkey + "\"";
          return false;
        }
      }
    } else if (key == "eval") {
      if (!v.is_object()) {
        *error = "eval must be an object";
        return false;
      }
      for (const auto& [ekey, ev] : v.members()) {
        if (ekey == "backend") {
          if (!ev.is_string()) {
            *error = "eval.backend must be a string";
            return false;
          }
          // Validated against the registry here so a typo'd backend fails
          // at config-load time, naming the registered keys.
          if (!diffusion::SigmaBackendRegistry::Has(ev.AsString())) {
            *error = diffusion::SigmaBackendRegistry::UnknownMessage(
                ev.AsString());
            return false;
          }
          cfg->eval.backend = ev.AsString();
        } else if (ekey == "fallback_backend") {
          if (!ev.is_string()) {
            *error = "eval.fallback_backend must be a string";
            return false;
          }
          // "" disables degradation; anything else must be a registered
          // backend, checked now for the same fail-at-load reason.
          if (!ev.AsString().empty() &&
              !diffusion::SigmaBackendRegistry::Has(ev.AsString())) {
            *error = diffusion::SigmaBackendRegistry::UnknownMessage(
                ev.AsString());
            return false;
          }
          cfg->eval.fallback_backend = ev.AsString();
        } else if (ekey == "ris_sketches") {
          if (!ReadInt(ev, "eval.ris_sketches", &cfg->eval.ris_sketches,
                       error))
            return false;
        } else if (ekey == "adaptive") {
          if (!ev.is_object()) {
            *error = "eval.adaptive must be an object";
            return false;
          }
          for (const auto& [akey, av] : ev.members()) {
            if (akey == "enabled") {
              if (!ReadBool(av, "eval.adaptive.enabled",
                            &cfg->eval.adaptive.enabled, error))
                return false;
            } else if (akey == "delta") {
              if (!ReadDouble(av, "eval.adaptive.delta",
                              &cfg->eval.adaptive.delta, error))
                return false;
              if (cfg->eval.adaptive.delta <= 0.0 ||
                  cfg->eval.adaptive.delta >= 1.0) {
                *error = "eval.adaptive.delta must be in (0, 1)";
                return false;
              }
            } else if (akey == "block_samples") {
              if (!ReadInt(av, "eval.adaptive.block_samples",
                           &cfg->eval.adaptive.block_samples, error))
                return false;
              if (cfg->eval.adaptive.block_samples < 1) {
                *error = "eval.adaptive.block_samples must be >= 1";
                return false;
              }
            } else if (akey == "min_samples") {
              if (!ReadInt(av, "eval.adaptive.min_samples",
                           &cfg->eval.adaptive.min_samples, error))
                return false;
              if (cfg->eval.adaptive.min_samples < 1) {
                *error = "eval.adaptive.min_samples must be >= 1";
                return false;
              }
            } else if (akey == "max_samples") {
              if (!ReadInt(av, "eval.adaptive.max_samples",
                           &cfg->eval.adaptive.max_samples, error))
                return false;
              if (cfg->eval.adaptive.max_samples < 0) {
                *error = "eval.adaptive.max_samples must be >= 0";
                return false;
              }
            } else {
              *error = "unknown eval.adaptive key \"" + akey + "\"";
              return false;
            }
          }
        } else {
          *error = "unknown eval key \"" + ekey + "\"";
          return false;
        }
      }
    } else if (key == "candidates") {
      if (!v.is_object()) {
        *error = "candidates must be an object";
        return false;
      }
      if (!ApplyCandidates(v, &cfg->candidates, error)) return false;
    } else if (key == "campaign") {
      if (!v.is_object()) {
        *error = "campaign must be an object";
        return false;
      }
      if (!ApplyCampaign(v, &cfg->campaign, error)) return false;
    } else if (key == "clustering") {
      if (!v.is_object()) {
        *error = "clustering must be an object";
        return false;
      }
      if (!ApplyClustering(v, &cfg->clustering, error)) return false;
    } else if (key == "market") {
      if (!v.is_object()) {
        *error = "market must be an object";
        return false;
      }
      if (!ApplyMarket(v, &cfg->market, error)) return false;
    } else if (key == "dysim") {
      if (!v.is_object()) {
        *error = "dysim must be an object";
        return false;
      }
      if (!ApplyDysim(v, &cfg->dysim, error)) return false;
    } else if (key == "adaptive") {
      if (!v.is_object()) {
        *error = "adaptive must be an object";
        return false;
      }
      for (const auto& [akey, av] : v.members()) {
        if (akey == "antagonism_threshold") {
          if (!ReadDouble(av, "adaptive.antagonism_threshold",
                          &cfg->adaptive.antagonism_threshold, error))
            return false;
        } else {
          *error = "unknown adaptive key \"" + akey + "\"";
          return false;
        }
      }
    } else if (key == "ps") {
      if (!v.is_object()) {
        *error = "ps must be an object";
        return false;
      }
      for (const auto& [pkey, pv] : v.members()) {
        if (pkey == "path_threshold") {
          if (!ReadDouble(pv, "ps.path_threshold", &cfg->ps.path_threshold,
                          error))
            return false;
        } else if (pkey == "max_hops") {
          if (!ReadInt(pv, "ps.max_hops", &cfg->ps.max_hops, error))
            return false;
        } else if (pkey == "covered_discount") {
          if (!ReadDouble(pv, "ps.covered_discount",
                          &cfg->ps.covered_discount, error))
            return false;
        } else {
          *error = "unknown ps key \"" + pkey + "\"";
          return false;
        }
      }
    } else if (key == "opt") {
      if (!v.is_object()) {
        *error = "opt must be an object";
        return false;
      }
      for (const auto& [okey, ov] : v.members()) {
        if (okey == "max_candidates") {
          if (!ReadInt(ov, "opt.max_candidates", &cfg->opt.max_candidates,
                       error))
            return false;
        } else if (okey == "max_seeds") {
          if (!ReadInt(ov, "opt.max_seeds", &cfg->opt.max_seeds, error))
            return false;
        } else {
          *error = "unknown opt key \"" + okey + "\"";
          return false;
        }
      }
    } else {
      *error = "unknown planner config key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

bool DatasetSpecFromJsonImpl(const util::Json& value, data::DatasetSpec* spec,
                             util::Json* config_overrides,
                             std::string* error) {
  *config_overrides = util::Json();
  if (value.is_string()) {
    *spec = data::ParseDatasetSpec(value.AsString());
    return true;
  }
  if (!value.is_object()) {
    *error = "dataset entry must be a string or an object";
    return false;
  }
  const util::Json* name = value.Find("name");
  if (name == nullptr || !name->is_string()) {
    *error = "dataset entry needs a string \"name\"";
    return false;
  }
  *spec = data::ParseDatasetSpec(name->AsString());
  for (const auto& [key, v] : value.members()) {
    if (key == "name") continue;
    if (key == "scale") {
      if (!ReadDouble(v, "dataset.scale", &spec->scale, error)) return false;
    } else if (key == "seed") {
      if (!ReadSeed(v, "dataset.seed", &spec->seed, error)) return false;
    } else if (key == "config") {
      *config_overrides = v;
    } else {
      *error = "unknown dataset entry key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace

util::Status ApplyPlannerConfigJson(const util::Json& obj,
                                    api::PlannerConfig* cfg) {
  std::string error;
  if (!ApplyPlannerConfigJsonImpl(obj, cfg, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  return util::OkStatus();
}

util::Status DatasetSpecFromJson(const util::Json& value,
                                 data::DatasetSpec* spec,
                                 util::Json* config_overrides) {
  std::string error;
  if (!DatasetSpecFromJsonImpl(value, spec, config_overrides, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  return util::OkStatus();
}

// -------------------------------------------------------------- sweeps

namespace {

bool ParsePlannerAxes(const util::Json& array,
                      std::vector<SweepSpec::PlannerAxis>* out,
                      std::string* error) {
  for (const util::Json& entry : array.elements()) {
    SweepSpec::PlannerAxis axis;
    if (entry.is_string()) {
      axis.name = entry.AsString();
    } else if (entry.is_object()) {
      const util::Json* name = entry.Find("planner");
      if (name == nullptr || !name->is_string()) {
        *error = "planner entry needs a string \"planner\"";
        return false;
      }
      axis.name = name->AsString();
      if (const util::Json* o = entry.Find("config")) axis.overrides = *o;
    } else {
      *error = "planner entry must be a string or an object";
      return false;
    }
    out->push_back(std::move(axis));
  }
  return true;
}

bool ParseDatasetAxis(const util::Json& entry, SweepSpec::DatasetAxis* axis,
                      std::string* error) {
  // A dataset entry may carry its own "planners" array; strip it before
  // handing the rest to the plain dataset-spec parser.
  util::Json without_planners = entry;
  if (entry.is_object()) {
    if (const util::Json* planners = entry.Find("planners")) {
      if (!ParsePlannerAxes(*planners, &axis->planners, error)) return false;
      without_planners = util::Json::Object();
      for (const auto& [key, v] : entry.members()) {
        if (key != "planners") without_planners.Set(key, v);
      }
    }
  }
  return DatasetSpecFromJsonImpl(without_planners, &axis->spec,
                                 &axis->overrides, error);
}

bool LoadSweepSpecImpl(const util::Json& obj, SweepSpec* spec,
                       std::string* error) {
  if (!obj.is_object()) {
    *error = "sweep config must be a JSON object";
    return false;
  }
  *spec = SweepSpec{};
  for (const auto& [key, v] : obj.members()) {
    if (key == "name") {
      if (!v.is_string()) {
        *error = "name must be a string";
        return false;
      }
      spec->name = v.AsString();
    } else if (key == "datasets") {
      for (const util::Json& entry : v.elements()) {
        SweepSpec::DatasetAxis axis;
        if (!ParseDatasetAxis(entry, &axis, error)) return false;
        spec->datasets.push_back(std::move(axis));
      }
    } else if (key == "planners") {
      if (!ParsePlannerAxes(v, &spec->planners, error)) return false;
    } else if (key == "budgets") {
      for (const util::Json& entry : v.elements()) {
        double b = 0.0;
        if (!ReadDouble(entry, "budgets[]", &b, error)) return false;
        spec->budgets.push_back(b);
      }
    } else if (key == "promotions") {
      for (const util::Json& entry : v.elements()) {
        int t = 0;
        if (!ReadInt(entry, "promotions[]", &t, error)) return false;
        spec->promotions.push_back(t);
      }
    } else if (key == "thetas") {
      for (const util::Json& entry : v.elements()) {
        int t = 0;
        if (!ReadInt(entry, "thetas[]", &t, error)) return false;
        spec->thetas.push_back(t);
      }
    } else if (key == "threads") {
      for (const util::Json& entry : v.elements()) {
        int t = 0;
        if (!ReadInt(entry, "threads[]", &t, error)) return false;
        spec->num_threads.push_back(t);
      }
    } else if (key == "backends") {
      for (const util::Json& entry : v.elements()) {
        if (!entry.is_string()) {
          *error = "backends[] must be strings";
          return false;
        }
        if (!diffusion::SigmaBackendRegistry::Has(entry.AsString())) {
          *error = diffusion::SigmaBackendRegistry::UnknownMessage(
              entry.AsString());
          return false;
        }
        spec->backends.push_back(entry.AsString());
      }
    } else if (key == "config") {
      if (!ApplyPlannerConfigJsonImpl(v, &spec->base, error)) return false;
    } else {
      *error = "unknown sweep config key \"" + key + "\"";
      return false;
    }
  }
  if (spec->datasets.empty()) {
    *error = "sweep config needs a non-empty \"datasets\" array";
    return false;
  }
  if (spec->planners.empty()) {
    *error = "sweep config needs a non-empty \"planners\" array";
    return false;
  }
  if (spec->budgets.empty()) {
    *error = "sweep config needs a non-empty \"budgets\" array";
    return false;
  }
  if (spec->promotions.empty()) {
    *error = "sweep config needs a non-empty \"promotions\" array";
    return false;
  }
  return true;
}

bool ExpandSweepImpl(const SweepSpec& spec, std::vector<SweepPoint>* points,
                     std::string* error) {
  points->clear();
  for (const SweepSpec::DatasetAxis& ds : spec.datasets) {
    api::PlannerConfig dataset_config = spec.base;
    if (!ApplyPlannerConfigJsonImpl(ds.overrides, &dataset_config, error)) {
      return false;
    }
    for (int T : spec.promotions) {
      for (double b : spec.budgets) {
        // Singleton sentinel axes: one point at the config's own value.
        const std::vector<int> thetas =
            spec.thetas.empty() ? std::vector<int>{-1} : spec.thetas;
        const std::vector<int> threads =
            spec.num_threads.empty()
                ? std::vector<int>{dataset_config.num_threads}
                : spec.num_threads;
        // Empty sentinel = keep each point's own eval.backend (which
        // dataset/planner overrides may still set).
        const std::vector<std::string> backends =
            spec.backends.empty() ? std::vector<std::string>{std::string()}
                                  : spec.backends;
        const std::vector<SweepSpec::PlannerAxis>& planners =
            ds.planners.empty() ? spec.planners : ds.planners;
        for (int theta : thetas) {
          for (int nt : threads) {
            for (const std::string& backend : backends) {
              for (const SweepSpec::PlannerAxis& pl : planners) {
                SweepPoint point;
                point.dataset = ds.spec;
                point.planner = pl.name;
                point.budget = b;
                point.num_promotions = T;
                point.theta = theta;
                point.num_threads = nt;
                point.config = dataset_config;
                if (!ApplyPlannerConfigJsonImpl(pl.overrides, &point.config,
                                                error)) {
                  return false;
                }
                if (theta >= 0) point.config.market.overlap_theta = theta;
                point.config.num_threads = nt;
                if (!backend.empty()) point.config.eval.backend = backend;
                point.backend = point.config.eval.backend;
                point.adaptive = point.config.eval.adaptive.enabled;
                points->push_back(std::move(point));
              }
            }
          }
        }
      }
    }
  }
  return true;
}

}  // namespace

util::Status LoadSweepSpec(const util::Json& obj, SweepSpec* spec) {
  std::string error;
  if (!LoadSweepSpecImpl(obj, spec, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  return util::OkStatus();
}

util::Status ExpandSweep(const SweepSpec& spec,
                         std::vector<SweepPoint>* points) {
  std::string error;
  if (!ExpandSweepImpl(spec, points, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  return util::OkStatus();
}

// ------------------------------------------------------------ flag files

namespace {

constexpr int kMaxFlagfileDepth = 8;

bool ExpandTokens(const std::vector<std::string>& args, int depth,
                  std::vector<std::string>* out, std::string* error) {
  if (depth > kMaxFlagfileDepth) {
    *error = "flag files nested deeper than " +
             std::to_string(kMaxFlagfileDepth) + " levels";
    return false;
  }
  for (size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    std::string path;
    if (arg == "--flagfile") {
      if (i + 1 >= args.size()) {
        *error = "--flagfile needs a file argument";
        return false;
      }
      path = args[++i];
    } else if (arg.substr(0, 11) == "--flagfile=") {
      path = std::string(arg.substr(11));
    } else {
      out->push_back(args[i]);
      continue;
    }
    std::ifstream in(path);
    if (!in) {
      *error = "cannot open flag file \"" + path + "\"";
      return false;
    }
    std::vector<std::string> file_tokens;
    std::string line;
    while (std::getline(in, line)) {
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream words(line);
      std::string token;
      while (words >> token) file_tokens.push_back(token);
    }
    if (!ExpandTokens(file_tokens, depth + 1, out, error)) return false;
  }
  return true;
}

}  // namespace

const std::string* ParsedArgs::Find(std::string_view key) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : flags) {
    if (k == key) found = &v;  // last occurrence wins
  }
  return found;
}

std::string ParsedArgs::GetOr(std::string_view key,
                              std::string_view fallback) const {
  const std::string* v = Find(key);
  return v != nullptr ? *v : std::string(fallback);
}

namespace {

bool ParseArgsImpl(const std::vector<std::string>& args, ParsedArgs* out,
                   std::string* error) {
  *out = ParsedArgs{};
  std::vector<std::string> tokens;
  if (!ExpandTokens(args, 0, &tokens, error)) return false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string_view token = tokens[i];
    if (token.substr(0, 2) != "--") {
      if (out->command.empty()) {
        out->command = tokens[i];
      } else {
        out->positional.push_back(tokens[i]);
      }
      continue;
    }
    std::string_view body = token.substr(2);
    if (body.empty()) {
      *error = "stray \"--\" argument";
      return false;
    }
    const size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      out->flags.emplace_back(std::string(body.substr(0, eq)),
                              std::string(body.substr(eq + 1)));
      continue;
    }
    // "--key value" unless the next token is itself a flag → bare switch.
    if (i + 1 < tokens.size() && tokens[i + 1].substr(0, 2) != "--") {
      out->flags.emplace_back(std::string(body), tokens[i + 1]);
      ++i;
    } else {
      out->flags.emplace_back(std::string(body), "true");
    }
  }
  return true;
}

}  // namespace

util::Status ParseArgs(const std::vector<std::string>& args, ParsedArgs* out) {
  std::string error;
  if (!ParseArgsImpl(args, out, &error)) {
    return util::InvalidArgumentError(std::move(error));
  }
  return util::OkStatus();
}

}  // namespace imdpp::config
