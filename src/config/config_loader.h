// ConfigLoader: the bridge from JSON/flag-files to the api:: layer — so
// planner settings, dataset choices and whole sweep grids are data, not
// recompiled C++.
//
// Three layers:
//   * ApplyPlannerConfigJson — a JSON object of partial overrides applied
//     onto an api::PlannerConfig (absent keys keep their values), covering
//     the shared knobs and every per-algorithm sub-struct;
//   * DatasetSpecFromJson / ParseDatasetSpec — "yelp-like@0.5"-style
//     strings or {name, scale, seed} objects onto data::DatasetSpec;
//   * SweepSpec / ExpandSweep — a sweep config (datasets × planners ×
//     budgets × promotions × thetas × threads, with per-axis config
//     overrides on dataset and planner entries) expanded into the full
//     cross-product of resolved SweepPoints.
// Plus flag-file support: ParseArgs splices "--flagfile FILE" tokens
// inline, and later flags override earlier ones — so command-line flags
// after a flag-file take precedence over the file's contents.
#ifndef IMDPP_CONFIG_CONFIG_LOADER_H_
#define IMDPP_CONFIG_CONFIG_LOADER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/planner.h"
#include "data/dataset_registry.h"
#include "util/json.h"
#include "util/status.h"

namespace imdpp::config {

/// Reads and parses a JSON file. Structured failures (ISSUE 8): a missing
/// file is kNotFound, a parse error kInvalidArgument (carrying the file
/// name and position). Runs the config.parse fault point first.
util::Status LoadJsonFile(const std::string& path, util::Json* out);

/// Applies a JSON object of overrides onto *cfg. Unknown keys and
/// mistyped values fail with kInvalidArgument naming the key (a typo'd
/// knob must not silently run the default).
util::Status ApplyPlannerConfigJson(const util::Json& obj,
                                    api::PlannerConfig* cfg);

/// Dataset reference: "yelp-like@0.5" string or {name, scale, seed}
/// object, with an optional per-dataset "config" override object.
util::Status DatasetSpecFromJson(const util::Json& value,
                                 data::DatasetSpec* spec,
                                 util::Json* config_overrides);

/// One expanded grid point with its fully resolved configuration
/// (base config + dataset overrides + planner overrides + axis values).
struct SweepPoint {
  data::DatasetSpec dataset;
  std::string planner;
  double budget = 0.0;
  int num_promotions = 0;
  int theta = -1;        ///< applied to market.overlap_theta; -1 = config's
  int num_threads = util::kAutoThreads;
  std::string backend;   ///< resolved σ backend (config.eval.backend)
  bool adaptive = false;  ///< resolved config.eval.adaptive.enabled
  api::PlannerConfig config;
};

/// A sweep config file. Axes with no entries collapse to one point at the
/// base config's value, so a "sweep" degenerates cleanly into one run.
struct SweepSpec {
  std::string name = "sweep";
  struct PlannerAxis {
    std::string name;
    util::Json overrides;  ///< per-planner PlannerConfig overrides (or null)
  };
  struct DatasetAxis {
    data::DatasetSpec spec;
    util::Json overrides;  ///< per-dataset PlannerConfig overrides (or null)
    /// Per-dataset planner list (empty = the sweep-wide `planners`); how
    /// e.g. Fig. 9 omits HAG on Douban without a second config file.
    std::vector<PlannerAxis> planners;
  };
  std::vector<DatasetAxis> datasets;
  std::vector<PlannerAxis> planners;
  std::vector<double> budgets;
  std::vector<int> promotions;
  std::vector<int> thetas;       ///< empty = keep config's overlap_theta
  std::vector<int> num_threads;  ///< empty = keep config's num_threads
  /// σ-evaluation backends to cross over (registry names); empty = keep
  /// each point's config.eval.backend.
  std::vector<std::string> backends;
  api::PlannerConfig base;
};

/// Parses a sweep config object:
///   {"name": ..., "datasets": [...], "planners": [...],
///    "budgets": [...], "promotions": [...], "thetas": [...],
///    "threads": [...], "backends": [...], "config": {...}}
/// datasets/planners/budgets/promotions are required and non-empty.
/// A dataset entry may carry its own "planners" array (subset sweeps).
util::Status LoadSweepSpec(const util::Json& obj, SweepSpec* spec);

/// The full cross-product, datasets outermost then promotions, budgets,
/// thetas, threads, planners innermost — the order a session-reusing
/// runner wants (one dataset build, one problem per (T, b)). Per-axis
/// config overrides are resolved here; a malformed override object fails
/// with kInvalidArgument.
util::Status ExpandSweep(const SweepSpec& spec,
                         std::vector<SweepPoint>* points);

/// Flag-style command line: subcommand + positionals + "--key value" /
/// "--key=value" flags ("--key" followed by another flag or end of args
/// reads as "true"). "--flagfile FILE" splices the whitespace-separated
/// tokens of FILE ('#' starts a comment) in place, recursively (depth
/// capped). Flags keep their order; lookups take the LAST occurrence, so
/// command-line flags given after a flag-file override it.
struct ParsedArgs {
  std::string command;
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  /// Last value of --key, or nullptr.
  const std::string* Find(std::string_view key) const;
  /// Find with a default.
  std::string GetOr(std::string_view key, std::string_view fallback) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
};

util::Status ParseArgs(const std::vector<std::string>& args, ParsedArgs* out);

}  // namespace imdpp::config

#endif  // IMDPP_CONFIG_CONFIG_LOADER_H_
