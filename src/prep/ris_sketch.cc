#include "prep/ris_sketch.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <utility>

#include "pin/dynamics.h"
#include "prep/prep.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/hash.h"
#include "util/retry.h"

namespace imdpp::prep {

namespace {

// Purpose tags keeping the sketch coin streams disjoint from each other
// and from the simulator's.
constexpr uint64_t kRisItemTag = 0x52495349ULL;  // "RISI": root item draw
constexpr uint64_t kRisRootTag = 0x52495355ULL;  // "RISU": root user draw
constexpr uint64_t kRisEdgeTag = 0x52495345ULL;  // "RISE": live-edge coins

/// Sketch shards for the parallel build: a function of θ only (mirrors
/// the Monte-Carlo engine's shard rule), so the work split never depends
/// on the executor count.
constexpr int kMaxShards = 32;

int NumShards(int num_sketches) { return std::min(num_sketches, kMaxShards); }

int ShardBegin(int num_sketches, int shards, int shard) {
  return static_cast<int>(static_cast<int64_t>(num_sketches) * shard / shards);
}

/// Runs fn(0..n-1) — on the pool when parallel builds are enabled, inline
/// otherwise. Pure scheduling: every task writes its own slots.
void RunBatch(const std::shared_ptr<util::ThreadPool>& pool, int build_threads,
              int n, const std::function<void(int)>& fn) {
  const bool parallel = pool != nullptr && n >= 2 &&
                        util::ResolveNumThreads(build_threads) > 1;
  if (parallel) {
    pool->ParallelFor(n, fn);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

/// The pre-build gate both acquisition paths run: the prep.sketch fault
/// point (transient codes retried with bounded backoff) and the run's
/// cancellation token. Non-ok = do not build, do not touch any cache.
util::Status SketchBuildGate(const util::CancelToken* cancel) {
  return util::RetryTransient([&] {
    util::Status fault = util::FaultInjector::Global().Hit("prep.sketch");
    if (!fault.ok()) return fault;
    return util::CheckCancel(cancel);
  });
}

}  // namespace

uint64_t RisSketchKey(const diffusion::Problem& problem,
                      const diffusion::CampaignConfig& campaign,
                      int num_sketches) {
  // StructuralKey covers the graph, initial weightings/preferences and
  // relevance; the sketch inputs it deliberately excludes follow.
  uint64_t h = HashTuple(0x726973ULL /* "ris" */, StructuralKey(problem),
                         campaign.base_seed,
                         static_cast<uint64_t>(num_sketches),
                         static_cast<uint64_t>(campaign.model),
                         static_cast<uint64_t>(campaign.max_steps));
  for (double w : problem.importance) {
    h = HashCombine(h, std::bit_cast<uint64_t>(w));
  }
  return h;
}

RisSketchSet::RisSketchSet(const diffusion::Problem& problem,
                           const diffusion::CampaignConfig& campaign,
                           int num_sketches,
                           std::shared_ptr<util::ThreadPool> pool,
                           int build_threads,
                           std::shared_ptr<const util::CancelToken> cancel)
    : num_users_(problem.NumUsers()),
      num_items_(problem.NumItems()),
      num_sketches_(num_sketches) {
  IMDPP_CHECK_GT(num_sketches, 0);
  const graph::SocialGraph& graph = *problem.graph;
  const uint64_t seed = campaign.base_seed;

  // Root distribution: items by importance (CDF inversion), users uniform.
  std::vector<double> cum(static_cast<size_t>(num_items_));
  double running = 0.0;
  for (ItemId x = 0; x < num_items_; ++x) {
    running += problem.importance[static_cast<size_t>(x)];
    cum[static_cast<size_t>(x)] = running;
  }
  w_total_ = running;
  scale_ = w_total_ * num_users_ / num_sketches_;

  root_user_.resize(static_cast<size_t>(num_sketches_));
  root_item_.resize(static_cast<size_t>(num_sketches_));
  for (int j = 0; j < num_sketches_; ++j) {
    ItemId x = static_cast<ItemId>(j % std::max(1, num_items_));
    if (w_total_ > 0.0) {
      const double draw = UnitHash(seed, kRisItemTag, j) * w_total_;
      x = static_cast<ItemId>(
          std::upper_bound(cum.begin(), cum.end(), draw) - cum.begin());
      x = std::min(x, static_cast<ItemId>(num_items_ - 1));
    }
    root_item_[static_cast<size_t>(j)] = x;
    root_user_[static_cast<size_t>(j)] = std::min(
        num_users_ - 1,
        static_cast<int>(UnitHash(seed, kRisRootTag, j) * num_users_));
  }

  // Frozen initial dynamics: empty adoption sets, Wmeta0 weightings. The
  // live-edge probability of (v -> cur) for item x is exactly the first
  // promotion-attempt probability the simulator would use at ζ = 1.
  const pin::Dynamics dynamics(*problem.relevance, problem.params);
  std::vector<pin::UserState> states;
  states.reserve(static_cast<size_t>(num_users_));
  for (UserId u = 0; u < num_users_; ++u) {
    std::span<const float> w = problem.Wmeta0(u);
    states.emplace_back(num_items_, std::vector<float>(w.begin(), w.end()));
  }

  // Sharded reverse-BFS build: each shard owns a contiguous sketch range
  // and its own visit-stamp scratch, writing members[j] slots only. The
  // layout is a function of θ alone, and the CSR merge below walks j in
  // ascending order — bit-identical at any thread count.
  std::vector<std::vector<UserId>> members(
      static_cast<size_t>(num_sketches_));
  const int shards = NumShards(num_sketches_);
  RunBatch(pool, build_threads, shards, [&](int shard) {
    std::vector<uint32_t> mark(static_cast<size_t>(num_users_), 0);
    uint32_t epoch = 0;
    std::vector<UserId> frontier;
    std::vector<UserId> next;
    const int begin = ShardBegin(num_sketches_, shards, shard);
    const int end = ShardBegin(num_sketches_, shards, shard + 1);
    for (int j = begin; j < end; ++j) {
      // Cooperative cancellation at sketch granularity: a fired token
      // leaves this set incomplete, and the acquisition paths re-check
      // the token before ever caching or leasing it.
      if (util::CancelFired(cancel.get())) break;
      const ItemId x = root_item_[static_cast<size_t>(j)];
      const UserId root = root_user_[static_cast<size_t>(j)];
      std::vector<UserId>& out = members[static_cast<size_t>(j)];
      ++epoch;
      mark[static_cast<size_t>(root)] = epoch;
      out.push_back(root);
      frontier.assign(1, root);
      for (int depth = 0; depth < campaign.max_steps && !frontier.empty();
           ++depth) {
        next.clear();
        for (UserId cur : frontier) {
          const pin::UserState& cur_state =
              states[static_cast<size_t>(cur)];
          const double pref = dynamics.preference().Eval(
              cur_state, problem.BasePref(cur, x), x);
          if (pref <= 0.0) continue;
          for (const graph::Edge& e : graph.InEdges(cur)) {
            const UserId v = e.to;
            if (mark[static_cast<size_t>(v)] == epoch) continue;
            const double p =
                dynamics.influence().Eval(
                    e.weight, states[static_cast<size_t>(v)], cur_state) *
                pref;
            if (UnitHash(seed, kRisEdgeTag, j, v, cur, x) < p) {
              mark[static_cast<size_t>(v)] = epoch;
              out.push_back(v);
              next.push_back(v);
            }
          }
        }
        frontier.swap(next);
      }
    }
  });

  // Inverted coverage index: CSR over (item, user) keys, posting lists in
  // ascending sketch order by construction (j walks 0..θ-1).
  const size_t num_keys =
      static_cast<size_t>(num_items_) * static_cast<size_t>(num_users_);
  offsets_.assign(num_keys + 1, 0);
  for (int j = 0; j < num_sketches_; ++j) {
    const size_t row = static_cast<size_t>(root_item_[static_cast<size_t>(j)]) *
                       num_users_;
    for (UserId u : members[static_cast<size_t>(j)]) {
      ++offsets_[row + static_cast<size_t>(u) + 1];
    }
  }
  for (size_t k = 0; k < num_keys; ++k) offsets_[k + 1] += offsets_[k];
  postings_.resize(static_cast<size_t>(offsets_[num_keys]));
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int j = 0; j < num_sketches_; ++j) {
    const size_t row = static_cast<size_t>(root_item_[static_cast<size_t>(j)]) *
                       num_users_;
    for (UserId u : members[static_cast<size_t>(j)]) {
      postings_[static_cast<size_t>(cursor[row + static_cast<size_t>(u)]++)] =
          j;
    }
  }
}

util::StatusOr<RisSketchLease> RisSketchCache::Acquire(
    const diffusion::Problem& problem,
    const diffusion::CampaignConfig& campaign, int num_sketches,
    std::shared_ptr<util::ThreadPool> pool, int build_threads,
    std::shared_ptr<const util::CancelToken> cancel) {
  IMDPP_RETURN_IF_ERROR(util::CheckCancel(cancel.get()));
  RisSketchLease lease;
  // Content-hashed per acquisition, like PrepCache: mutated problems
  // re-key instead of serving stale sketches. Hashed before taking mu_.
  const uint64_t key = RisSketchKey(problem, campaign, num_sketches);
  util::MutexLock lock(mu_);
  auto it = sketches_.find(key);
  if (it != sketches_.end()) {
    lease.sketches = it->second;
    lease.reused = true;
    ++reuses_;
    return lease;
  }
  IMDPP_RETURN_IF_ERROR(SketchBuildGate(cancel.get()));
  lease.sketches = std::make_shared<const RisSketchSet>(
      problem, campaign, num_sketches, std::move(pool), build_threads, cancel);
  // A token that fired during the build left the set incomplete: return
  // the reason WITHOUT counting the build or inserting, so the cache
  // never holds a partial sketch set.
  IMDPP_RETURN_IF_ERROR(util::CheckCancel(cancel.get()));
  lease.built = true;
  ++builds_;
  if (sketches_.size() >= kMaxArtifacts) sketches_.clear();
  sketches_.emplace(key, lease.sketches);
  return lease;
}

util::StatusOr<RisSketchLease> AcquireRisSketches(
    const std::shared_ptr<RisSketchCache>& cache,
    const diffusion::Problem& problem,
    const diffusion::CampaignConfig& campaign, int num_sketches,
    std::shared_ptr<util::ThreadPool> pool, int build_threads,
    std::shared_ptr<const util::CancelToken> cancel) {
  if (cache != nullptr) {
    return cache->Acquire(problem, campaign, num_sketches, std::move(pool),
                          build_threads, std::move(cancel));
  }
  IMDPP_RETURN_IF_ERROR(SketchBuildGate(cancel.get()));
  RisSketchLease lease;
  lease.sketches = std::make_shared<const RisSketchSet>(
      problem, campaign, num_sketches, std::move(pool), build_threads, cancel);
  IMDPP_RETURN_IF_ERROR(util::CheckCancel(cancel.get()));
  lease.built = true;
  return lease;
}

}  // namespace imdpp::prep
