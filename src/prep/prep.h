// The shared prep:: artifact layer (ISSUE 5 tentpole): build-once, cached,
// parallel construction of the planning-phase structure every Dysim-family
// planner (and the PS baseline) used to rebuild per call.
//
// The artifacts are pure *structure*: they depend on the graph, the item
// relevance model, the initial perceptions/preferences and the market
// knobs — never on budget, promotions, planner choice, or thread count.
// A PrepArtifacts bundle therefore holds
//   * the average initial meta-graph weighting w̄0 and the item x item
//     RelC/RelS tables evaluated at w̄0 (the clustering / AE / antagonism
//     oracles become table lookups),
//   * the top-preference share vector the RMS market-order metric scans,
//   * per-source MIOA influence regions (max-influence-path Dijkstra,
//     keyed by (source, threshold, max_hops) so Dysim's market build and
//     PS's path scoring share entries when their knobs coincide),
//   * per-source truncated undirected BFS rows (the nominee-clustering
//     social distances),
//   * memoized derivations: nominee clusters per (clustering config,
//     nominee set) and unordered MarketPlans per (market config, cluster
//     set) — the exact structures `imdpp sweep` used to recompute per
//     (budget, planner) cell.
//
// Parallelism: the per-source Dijkstra / BFS sweeps batch over a shared
// util::ThreadPool (the session's) with results merged in fixed source
// order, so artifacts are bit-identical at any build thread count. Every
// consumer path reproduces the exact arithmetic of the code it replaced,
// so planner schedules are bit-identical to pre-prep values (enforced by
// tests/determinism_test.cc).
//
// Caching: PrepCache memoizes artifacts by a content hash of everything
// they are a function of (graph edges, initial weightings/preferences,
// relevance matrices); config-dependent derivations carry their config in
// their own memo keys, so ONE artifact per dataset serves every theta /
// clustering override of a sweep. api::CampaignSession owns one PrepCache
// and injects it into every planner it runs, so Run/Compare/SetProblem
// and cli::RunSweep reuse one build per dataset.
//
// Lifetime: an artifact keeps a pointer to the problem's SocialGraph (for
// the lazy sweeps) but copies everything else out of the Problem; the
// graph — in practice owned by the session's Dataset — must outlive it.
//
// Thread safety (ISSUE 6): PrepCache and PrepArtifacts are safe to share
// across threads. One mutex per object guards the lazy caches, memos and
// rebindable executors (annotated IMDPP_GUARDED_BY, enforced by clang
// -Wthread-safety and imdpp-lint's lock-before-shared rule); the eager
// tables are constructor-written and immutable after sharing. Sweep
// compute runs with the lock released on an executor snapshot, and merges
// re-lock in fixed source order — locking changed no arithmetic, so
// results stay bit-identical.
#ifndef IMDPP_PREP_PREP_H_
#define IMDPP_PREP_PREP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/nominee_clustering.h"
#include "cluster/target_market.h"
#include "diffusion/problem.h"
#include "graph/graph_algos.h"
#include "util/cancel.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace imdpp::prep {

using diffusion::Nominee;
using graph::UserId;
using kg::ItemId;

/// Content hash of every Problem input the artifacts are a function of:
/// graph structure/weights, initial meta-graph weightings, base
/// preferences, and the relevance matrices. Budget, promotion count,
/// costs and importances are deliberately excluded — artifacts are valid
/// across them.
uint64_t StructuralKey(const diffusion::Problem& problem);

class PrepArtifacts {
 public:
  /// Builds the eager artifacts (w̄0, RelC/RelS tables, share vector) and
  /// times the build. `pool` (optional, typically the session's) backs
  /// the parallel sweeps; `build_threads` gates them (<= 1 = inline,
  /// anything else = the pool's workers when a pool exists). `cancel`
  /// (optional) lets batch tasks early-exit once the run's token fires —
  /// a cancelled build is incomplete, which is why PrepCache::Acquire
  /// re-checks the token before caching what this constructor built.
  PrepArtifacts(const diffusion::Problem& problem,
                std::shared_ptr<util::ThreadPool> pool, int build_threads,
                std::shared_ptr<const util::CancelToken> cancel = nullptr);

  /// Re-points the lazy sweeps at the acquiring run's problem and
  /// executors. Called on every cache hit: the key matching guarantees
  /// `problem`'s graph is content-equal to the one the artifact was
  /// built from, and rebinding the pointer keeps a shared PrepCache safe
  /// even when the original problem's owner is gone; rebinding the pool
  /// keeps a cached artifact from pinning the (possibly serial, possibly
  /// stale) executors of the run that happened to build it. The token is
  /// rebound for the same reason: lazy sweeps must answer to the
  /// acquiring run's deadline, not the builder's.
  void Rebind(const diffusion::Problem& problem,
              std::shared_ptr<util::ThreadPool> pool, int build_threads,
              std::shared_ptr<const util::CancelToken> cancel = nullptr)
      IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    graph_ = problem.graph;
    pool_ = std::move(pool);
    build_threads_ = build_threads;
    cancel_ = std::move(cancel);
  }

  // ---------------------------------------------------- eager artifacts
  /// Global average of the initial per-user meta-graph weightings —
  /// bit-identical to the loop Dysim/Adaptive used to run inline.
  const std::vector<float>& avg_wmeta0() const { return avg_wmeta0_; }

  /// r̄^C / r̄^S at the average initial perception (table lookups of the
  /// exact doubles pin::PersonalItemNetwork::Rel computes).
  double RelC(ItemId x, ItemId y) const {
    return rel_c_[static_cast<size_t>(x) * num_items_ + y];
  }
  double RelS(ItemId x, ItemId y) const {
    return rel_s_[static_cast<size_t>(x) * num_items_ + y];
  }
  double NetRel(ItemId x, ItemId y) const { return RelC(x, y) - RelS(x, y); }

  /// share(x) = #users whose top base preference is x (RMS input).
  const std::vector<int>& top_pref_share() const { return share_; }

  // ------------------------------------- cached per-source graph sweeps
  /// MIOA influence paths of `src` at (threshold, max_hops), computed on
  /// first use and cached. Prefetch* batches the missing sources over the
  /// pool and merges in fixed source order (bit-identical at any count).
  const graph::InfluencePaths& Region(UserId src, double threshold,
                                      int max_hops) IMDPP_EXCLUDES(mu_);
  void PrefetchRegions(std::vector<UserId> sources, double threshold,
                       int max_hops) IMDPP_EXCLUDES(mu_);

  /// Truncated undirected BFS hop distance — bit-identical to
  /// graph::UndirectedHopDistance, served from a cached per-source row.
  int HopDistance(UserId a, UserId b, int max_hops) IMDPP_EXCLUDES(mu_);
  void PrefetchHopRows(std::vector<UserId> sources, int max_hops)
      IMDPP_EXCLUDES(mu_);

  // -------------------------------------------- memoized TMI structure
  /// Nominee clusters for `nominees` under `config` (Procedure 3),
  /// bit-identical to cluster::ClusterNominees on the raw graph.
  std::vector<std::vector<Nominee>> Clusters(
      const std::vector<Nominee>& nominees,
      const cluster::ClusteringConfig& config) IMDPP_EXCLUDES(mu_);

  /// Unordered market plan for `clusters` under `config` (MIOA regions +
  /// overlap grouping); ordering (OrderGroups) stays with the caller —
  /// the PF metric depends on the run's engine, which is not structure.
  cluster::MarketPlan Plan(const std::vector<std::vector<Nominee>>& clusters,
                           const cluster::MarketPlanConfig& config)
      IMDPP_EXCLUDES(mu_);

  // ------------------------------------------------------- accounting
  /// Milliseconds spent building the eager artifacts (constructor).
  double build_millis() const { return build_millis_; }
  /// Cumulative milliseconds of artifact construction: the eager build
  /// plus every per-source sweep computed since.
  double total_millis() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return total_millis_;
  }
  /// Cached MIOA sources / BFS rows materialized so far.
  size_t num_regions() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return regions_.size();
  }
  size_t num_hop_rows() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return hop_rows_.size();
  }
  /// Cluster/plan derivations answered from the memo.
  int64_t derivation_hits() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return derivation_hits_;
  }

 private:
  struct SourceRegion {
    graph::InfluencePaths paths;
    cluster::InfluenceRegion region;  ///< sorted users + hop radius
  };
  /// (source, threshold bit pattern, max_hops).
  using RegionKey = std::tuple<UserId, uint64_t, int>;
  using HopKey = std::pair<UserId, int>;

  /// Snapshot of the executors a sweep runs on, taken under mu_ so the
  /// compute phase never reads rebindable members unlocked.
  struct Exec {
    const graph::SocialGraph* graph = nullptr;
    std::shared_ptr<util::ThreadPool> pool;
    int build_threads = 1;
    std::shared_ptr<const util::CancelToken> cancel;
  };
  Exec Executors() IMDPP_REQUIRES(mu_) {
    return Exec{graph_, pool_, build_threads_, cancel_};
  }

  /// Runs fn(0..n-1) — on the pool when parallel prep is enabled, inline
  /// otherwise. Pure scheduling: every task writes its own slot. Static
  /// on a snapshot: callers must NOT hold mu_ (tasks may re-lock it).
  static void RunBatch(const Exec& exec, int n,
                       const std::function<void(int)>& fn);
  SourceRegion& RegionEntry(UserId src, double threshold, int max_hops)
      IMDPP_REQUIRES(mu_);

  /// Derivation-memo size bound: on overflow the memo is cleared (the
  /// same pressure valve the engine's σ memo uses). Generous — a sweep
  /// adds one entry per distinct (config, nominee-set) — but it keeps a
  /// long-lived shared cache from growing without bound.
  static constexpr size_t kMaxMemoEntries = 64;

  /// One mutex guards the rebindable executors, the lazy sweep caches and
  /// the memo/accounting state. The eager tables (avg_wmeta0_, rel_c_,
  /// rel_s_, share_, build_millis_, num_items_) are written only by the
  /// constructor — immutable once the object is shared, so reads need no
  /// lock.
  mutable util::Mutex mu_;

  const graph::SocialGraph* graph_ IMDPP_GUARDED_BY(mu_);
  std::shared_ptr<util::ThreadPool> pool_ IMDPP_GUARDED_BY(mu_);
  int build_threads_ IMDPP_GUARDED_BY(mu_);
  std::shared_ptr<const util::CancelToken> cancel_ IMDPP_GUARDED_BY(mu_);
  int num_items_;

  std::vector<float> avg_wmeta0_;
  std::vector<double> rel_c_;  ///< |I| x |I| row-major
  std::vector<double> rel_s_;
  std::vector<int> share_;

  std::map<RegionKey, SourceRegion> regions_ IMDPP_GUARDED_BY(mu_);
  std::map<HopKey, std::unordered_map<UserId, int>> hop_rows_
      IMDPP_GUARDED_BY(mu_);

  std::map<std::pair<uint64_t, std::vector<Nominee>>,
           std::vector<std::vector<Nominee>>>
      cluster_memo_ IMDPP_GUARDED_BY(mu_);
  std::map<std::pair<uint64_t, std::vector<std::vector<Nominee>>>,
           cluster::MarketPlan>
      plan_memo_ IMDPP_GUARDED_BY(mu_);

  int64_t derivation_hits_ IMDPP_GUARDED_BY(mu_) = 0;
  double build_millis_ = 0.0;
  double total_millis_ IMDPP_GUARDED_BY(mu_) = 0.0;
};

/// What a planner gets back from AcquirePrep: the artifacts plus whether
/// this acquisition built them (prep_builds = 1) or served them from a
/// cache (prep_reuses = 1).
struct PrepLease {
  std::shared_ptr<PrepArtifacts> artifacts;
  bool built = false;
  bool reused = false;
};

/// Books one acquisition into `out` under the canonical metric names:
/// prep.builds / prep.reuses from the lease, plus `millis` of artifact
/// construction attributable to this run (callers decide the bracket —
/// Dysim charges the total_millis delta across its whole run, Adaptive
/// charges the eager build only — so the helper takes the value).
inline void AddLeaseMetrics(util::MetricsSnapshot& out, const PrepLease& lease,
                            double millis) {
  out.AddCounter(util::metric::kPrepBuilds, lease.built ? 1 : 0);
  out.AddCounter(util::metric::kPrepReuses, lease.reused ? 1 : 0);
  out.AddSum(util::metric::kPrepMillis, millis);
}

/// Session-scoped artifact memo, keyed by StructuralKey. One cache serves
/// every planner a CampaignSession runs; cli::RunSweep gets the reuse for
/// free through the session it already keeps per dataset.
class PrepCache {
 public:
  /// Thread-safe: concurrent acquirers serialize on the map probe only —
  /// the content hash is computed before mu_ is taken.
  ///
  /// Robustness (ISSUE 8): the prep.build fault point fires before a
  /// miss's build (transient codes are retried with bounded backoff), and
  /// `cancel` is checked on entry and again between the build and the
  /// cache insert. A failed or cancelled acquisition returns its Status
  /// WITHOUT touching the cache map or the builds counter: no partial
  /// artifact is ever cached, and the next acquirer rebuilds cleanly
  /// (tests/fault_matrix_test.cc regression-tests exactly this).
  util::StatusOr<PrepLease> Acquire(
      const diffusion::Problem& problem,
      std::shared_ptr<util::ThreadPool> pool, int build_threads,
      std::shared_ptr<const util::CancelToken> cancel = nullptr)
      IMDPP_EXCLUDES(mu_);

  int64_t builds() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return builds_;
  }
  int64_t reuses() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return reuses_;
  }

 private:
  /// Bundle bound: a session normally holds one bundle per structural
  /// config, but loops that re-key every iteration (e.g. the Fig. 13
  /// meta-subset sweep) would otherwise pin every bundle they ever
  /// built. On overflow the map is cleared (leases keep live bundles
  /// alive via shared_ptr).
  static constexpr size_t kMaxArtifacts = 8;

  mutable util::Mutex mu_;
  std::map<uint64_t, std::shared_ptr<PrepArtifacts>> artifacts_
      IMDPP_GUARDED_BY(mu_);
  int64_t builds_ IMDPP_GUARDED_BY(mu_) = 0;
  int64_t reuses_ IMDPP_GUARDED_BY(mu_) = 0;
};

/// The one entry point planners call: serves from `cache` when present
/// and `use_cache` is on, else builds a standalone artifact (counted as a
/// build either way). Both paths run the prep.build fault point (with
/// transient retry) and honor `cancel`; see PrepCache::Acquire.
util::StatusOr<PrepLease> AcquirePrep(
    const std::shared_ptr<PrepCache>& cache, bool use_cache,
    const diffusion::Problem& problem,
    std::shared_ptr<util::ThreadPool> pool, int build_threads,
    std::shared_ptr<const util::CancelToken> cancel = nullptr);

}  // namespace imdpp::prep

#endif  // IMDPP_PREP_PREP_H_
