// Reverse-reachable (RIS) sketch artifacts: the prep:: structure behind
// the "ris" σ-evaluation backend (diffusion/ris_backend.h, ISSUE 7).
//
// One sketch j is a reverse-reachable user set for a random root (u_j,
// x_j): the root item is drawn proportionally to its importance w_x, the
// root user uniformly, and the set contains every user v from which a
// seeding of x_j could have propagated to u_j under live-edge sampling of
// the diffusion — edge (v -> cur) is live with probability
// Pact(v, cur) * Ppref(cur, x_j), both evaluated at the *initial* user
// states (empty adoption sets, Wmeta0). σ̂(S) is then coverage counting:
//
//   σ̂(S) = W_total * |V| / θ * #{j : some (u, x_j, t) in S has u in RR_j}
//
// and σ̂_τ restricts the count to sketches whose root user lies in the
// market. This is a *static first-order approximation* of the full
// dynamic-perception process: perception updates, item-association
// adoptions and promotion timing are not modeled (a seed covers a sketch
// at any promotion t). What it buys is orders-of-magnitude cheaper σ
// queries — a handful of sorted-vector probes instead of θ re-simulated
// campaigns — which is the trade the RIS line of IM work makes
// (Borgs et al. SODA'14; Tang et al. SIGMOD'14). The accuracy gap against
// the "mc" reference is gated by tests/backend_test.cc.
//
// Determinism: every coin is a counter-based hash of
// (base_seed, sketch, edge, item) — util/hash.h — so a sketch set is a
// pure function of (problem structure, importances, base_seed, θ, model,
// step cap). The parallel build shards sketches by index with a layout
// that depends only on θ, each shard fills its own slots, and the merge
// into the postings CSR walks sketches in ascending index order — sketch
// sets are bit-identical at any build thread count.
//
// Caching: RisSketchCache memoizes sketch sets by a content hash of
// everything they are a function of (prep::StructuralKey plus the
// importance vector and the sampling knobs). api::CampaignSession owns one
// and injects it into every planner run, so sweeps over budgets and
// planners build each sketch set once (the PrepCache story, ISSUE 5).
//
// Thread safety (ISSUE 6): a built RisSketchSet is immutable — share it
// freely. RisSketchCache serializes acquisitions on one mutex
// (IMDPP_GUARDED_BY, enforced by clang -Wthread-safety).
#ifndef IMDPP_PREP_RIS_SKETCH_H_
#define IMDPP_PREP_RIS_SKETCH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "diffusion/campaign_simulator.h"
#include "diffusion/problem.h"
#include "util/cancel.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace imdpp::prep {

using graph::UserId;
using kg::ItemId;

/// Content hash of everything a sketch set is a function of: the
/// structural inputs (graph, initial weightings/preferences, relevance),
/// the item importances (StructuralKey excludes them; RIS roots sample by
/// them), and the sampling knobs (base seed, θ, diffusion model, step
/// cap). Budget, promotion count and costs stay excluded — sketch sets
/// are valid across them, which is what makes the cache pay off in
/// sweeps.
uint64_t RisSketchKey(const diffusion::Problem& problem,
                      const diffusion::CampaignConfig& campaign,
                      int num_sketches);

/// An immutable set of θ reverse-reachable sketches with an inverted
/// coverage index: Postings(u, x) lists (ascending) the sketches rooted
/// at item x that contain user u, so covering a seed group is a union of
/// posting lists.
class RisSketchSet {
 public:
  /// Builds θ = `num_sketches` sketches. `pool` (optional, typically the
  /// session's) backs the sharded build; `build_threads` gates it (<= 1 =
  /// inline). Results are bit-identical for every executor count.
  /// `cancel` (optional) lets shard tasks stop early once the run's token
  /// fires — the set is then incomplete, which is why AcquireRisSketches
  /// re-checks the token before caching or leasing what was built.
  RisSketchSet(const diffusion::Problem& problem,
               const diffusion::CampaignConfig& campaign, int num_sketches,
               std::shared_ptr<util::ThreadPool> pool, int build_threads,
               std::shared_ptr<const util::CancelToken> cancel = nullptr);

  int num_sketches() const { return num_sketches_; }
  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  /// Σ_x w_x at build time.
  double total_importance() const { return w_total_; }
  /// σ̂ contribution of one covered sketch: W_total * |V| / θ.
  double scale_per_sketch() const { return scale_; }

  UserId root_user(int sketch) const {
    return root_user_[static_cast<size_t>(sketch)];
  }
  ItemId root_item(int sketch) const {
    return root_item_[static_cast<size_t>(sketch)];
  }

  /// Sketches rooted at item x that contain user u, ascending.
  std::span<const int32_t> Postings(UserId u, ItemId x) const {
    const size_t key = static_cast<size_t>(x) * num_users_ + u;
    return {postings_.data() + offsets_[key],
            postings_.data() + offsets_[key + 1]};
  }

  /// Total stored (sketch, user) memberships — the artifact's size.
  int64_t total_postings() const {
    return static_cast<int64_t>(postings_.size());
  }

 private:
  int num_users_ = 0;
  int num_items_ = 0;
  int num_sketches_ = 0;
  double w_total_ = 0.0;
  double scale_ = 0.0;
  std::vector<int32_t> root_user_;  ///< θ
  std::vector<ItemId> root_item_;  ///< θ
  /// CSR over keys (item * |V| + user): offsets_ has |I|*|V| + 1 entries.
  std::vector<int64_t> offsets_;
  std::vector<int32_t> postings_;
};

/// What a backend gets back from AcquireRisSketches: the sketch set plus
/// whether this acquisition built it or served it from a cache.
struct RisSketchLease {
  std::shared_ptr<const RisSketchSet> sketches;
  bool built = false;
  bool reused = false;
};

/// Session-scoped sketch-set memo, keyed by RisSketchKey — the PrepCache
/// of the "ris" backend. One cache serves every backend instance a
/// CampaignSession builds, so a sweep's (budget, planner) grid reuses one
/// build per (dataset, θ, seed).
class RisSketchCache {
 public:
  /// Thread-safe; a build happens under the lock (concurrent acquirers of
  /// the same key wait rather than duplicate the work).
  ///
  /// Robustness (ISSUE 8): the prep.sketch fault point fires before a
  /// miss's build (transient codes retried), and `cancel` is checked on
  /// entry and again between the build and the cache insert, so a failed
  /// or cancelled acquisition never caches a partial sketch set and never
  /// counts a build.
  util::StatusOr<RisSketchLease> Acquire(
      const diffusion::Problem& problem,
      const diffusion::CampaignConfig& campaign, int num_sketches,
      std::shared_ptr<util::ThreadPool> pool, int build_threads,
      std::shared_ptr<const util::CancelToken> cancel = nullptr)
      IMDPP_EXCLUDES(mu_);

  int64_t builds() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return builds_;
  }
  int64_t reuses() const IMDPP_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return reuses_;
  }

 private:
  /// Same pressure valve as PrepCache::kMaxArtifacts: loops that re-key
  /// every iteration must not pin every sketch set they ever built.
  static constexpr size_t kMaxArtifacts = 8;

  mutable util::Mutex mu_;
  std::map<uint64_t, std::shared_ptr<const RisSketchSet>> sketches_
      IMDPP_GUARDED_BY(mu_);
  int64_t builds_ IMDPP_GUARDED_BY(mu_) = 0;
  int64_t reuses_ IMDPP_GUARDED_BY(mu_) = 0;
};

/// The one entry point the "ris" backend calls: serves from `cache` when
/// present, else builds a standalone sketch set. Both paths run the
/// prep.sketch fault point (with transient retry) and honor `cancel`;
/// see RisSketchCache::Acquire.
util::StatusOr<RisSketchLease> AcquireRisSketches(
    const std::shared_ptr<RisSketchCache>& cache,
    const diffusion::Problem& problem,
    const diffusion::CampaignConfig& campaign, int num_sketches,
    std::shared_ptr<util::ThreadPool> pool, int build_threads,
    std::shared_ptr<const util::CancelToken> cancel = nullptr);

}  // namespace imdpp::prep

#endif  // IMDPP_PREP_RIS_SKETCH_H_
