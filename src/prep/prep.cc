#include "prep/prep.h"

#include <algorithm>
#include <bit>

#include "core/market_order.h"
#include "pin/personal_item_network.h"
#include "util/fault_injection.h"
#include "util/hash.h"
#include "util/retry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace imdpp::prep {

namespace {

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }
uint64_t Bits(float v) { return std::bit_cast<uint32_t>(v); }

uint64_t ClusteringConfigKey(const cluster::ClusteringConfig& c) {
  return HashTuple(Bits(c.social_weight), Bits(c.relevance_weight),
                   Bits(c.merge_threshold),
                   static_cast<uint64_t>(c.max_hops));
}

uint64_t MarketConfigKey(const cluster::MarketPlanConfig& c) {
  return HashTuple(Bits(c.mioa_threshold),
                   static_cast<uint64_t>(c.mioa_max_hops),
                   static_cast<uint64_t>(c.overlap_theta));
}

/// Sorted distinct user list (canonical source set for the sweeps).
std::vector<UserId> SortedUnique(std::vector<UserId> users) {
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

/// The pre-build gate both acquisition paths run: the prep.build fault
/// point (transient codes retried with bounded backoff) and the run's
/// cancellation token. Non-ok = do not build, do not touch any cache.
util::Status PrepBuildGate(const util::CancelToken* cancel) {
  return util::RetryTransient([&] {
    util::Status fault = util::FaultInjector::Global().Hit("prep.build");
    if (!fault.ok()) return fault;
    return util::CheckCancel(cancel);
  });
}

}  // namespace

uint64_t StructuralKey(const diffusion::Problem& problem) {
  const graph::SocialGraph& g = *problem.graph;
  uint64_t h = HashTuple(0x70726570ULL /* "prep" */, g.NumUsers(),
                         problem.NumItems(), problem.NumMetas());
  for (UserId u = 0; u < g.NumUsers(); ++u) {
    for (const graph::Edge& e : g.OutEdges(u)) {
      h = HashCombine(HashCombine(h, static_cast<uint64_t>(e.to)),
                      Bits(e.weight));
    }
    h = HashCombine(h, 0x2fULL);  // row separator: degrees matter
  }
  for (float w : problem.wmeta0) h = HashCombine(h, Bits(w));
  for (float p : problem.base_pref) h = HashCombine(h, Bits(p));
  const kg::RelevanceModel& rel = *problem.relevance;
  for (int m = 0; m < rel.NumMetas(); ++m) {
    h = HashCombine(h, static_cast<uint64_t>(rel.KindOf(m)));
    for (ItemId x = 0; x < rel.NumItems(); ++x) {
      for (ItemId y = 0; y < rel.NumItems(); ++y) {
        h = HashCombine(h, Bits(rel.Score(m, x, y)));
      }
    }
  }
  return h;
}

PrepArtifacts::PrepArtifacts(const diffusion::Problem& problem,
                             std::shared_ptr<util::ThreadPool> pool,
                             int build_threads,
                             std::shared_ptr<const util::CancelToken> cancel)
    : graph_(problem.graph),
      pool_(std::move(pool)),
      build_threads_(build_threads),
      cancel_(std::move(cancel)),
      num_items_(problem.NumItems()) {
  // No locking in here: the object is not shared until construction
  // returns (and clang's analysis exempts constructors accordingly).
  util::trace::Span span("prep.build");
  const Exec exec{graph_, pool_, build_threads_, cancel_};
  Timer timer;

  // Average initial weighting — the exact float accumulation the inline
  // planner loops ran (order and types preserved for bit-identity).
  const int metas = problem.NumMetas();
  avg_wmeta0_.assign(static_cast<size_t>(metas), 0.0f);
  for (UserId u = 0; u < problem.NumUsers(); ++u) {
    std::span<const float> w = problem.Wmeta0(u);
    for (int m = 0; m < metas; ++m) avg_wmeta0_[m] += w[m];
  }
  for (float& w : avg_wmeta0_) {
    w /= static_cast<float>(std::max(1, problem.NumUsers()));
  }

  // RelC/RelS tables at w̄0 — one row per item, rows in parallel.
  const pin::PersonalItemNetwork pin(*problem.relevance, problem.params);
  rel_c_.assign(static_cast<size_t>(num_items_) * num_items_, 0.0);
  rel_s_.assign(static_cast<size_t>(num_items_) * num_items_, 0.0);
  RunBatch(exec, num_items_, [&](int x) {
    for (ItemId y = 0; y < num_items_; ++y) {
      rel_c_[static_cast<size_t>(x) * num_items_ + y] =
          pin.RelC(avg_wmeta0_, x, y);
      rel_s_[static_cast<size_t>(x) * num_items_ + y] =
          pin.RelS(avg_wmeta0_, x, y);
    }
  });

  // Top-preference share — the scan RelativeMarketShare used to repeat.
  share_ = core::TopPreferenceShare(problem);

  build_millis_ = timer.Millis();
  total_millis_ = build_millis_;
}

void PrepArtifacts::RunBatch(const Exec& exec, int n,
                             const std::function<void(int)>& fn) {
  // Cooperative cancellation: once the run's token fires, remaining tasks
  // are skipped (their slots stay default-constructed — callers must not
  // merge a batch whose token fired). Pure control flow while the token
  // is quiet, so results stay bit-identical.
  const std::function<void(int)> guarded = [&](int i) {
    if (util::CancelFired(exec.cancel.get())) return;
    fn(i);
  };
  const bool parallel = exec.pool != nullptr && n >= 2 &&
                        util::ResolveNumThreads(exec.build_threads) > 1;
  if (parallel) {
    exec.pool->ParallelFor(n, guarded);
  } else {
    for (int i = 0; i < n; ++i) guarded(i);
  }
}

PrepArtifacts::SourceRegion& PrepArtifacts::RegionEntry(UserId src,
                                                        double threshold,
                                                        int max_hops) {
  const RegionKey key{src, Bits(threshold), max_hops};
  auto it = regions_.find(key);
  if (it == regions_.end()) {
    Timer timer;
    SourceRegion entry;
    entry.paths = graph::MaxInfluencePaths(*graph_, src, threshold, max_hops);
    entry.region = cluster::RegionFromPaths(entry.paths);
    it = regions_.emplace(key, std::move(entry)).first;
    total_millis_ += timer.Millis();
  }
  return it->second;
}

const graph::InfluencePaths& PrepArtifacts::Region(UserId src,
                                                   double threshold,
                                                   int max_hops) {
  util::MutexLock lock(mu_);
  return RegionEntry(src, threshold, max_hops).paths;
}

void PrepArtifacts::PrefetchRegions(std::vector<UserId> sources,
                                    double threshold, int max_hops) {
  std::vector<UserId> missing;
  Exec exec;
  {
    util::MutexLock lock(mu_);
    for (UserId u : SortedUnique(std::move(sources))) {
      if (!regions_.count(RegionKey{u, Bits(threshold), max_hops})) {
        missing.push_back(u);
      }
    }
    if (missing.empty()) return;
    exec = Executors();
  }
  Timer timer;
  // Computed with the lock released: each task fills its own slot off the
  // executor snapshot. The merge below runs in fixed source order, so the
  // cache is bit-identical at any thread count; emplace keeps the first
  // entry if a concurrent prefetcher raced us to a source (both computed
  // the identical region, so which copy wins is immaterial).
  std::vector<SourceRegion> computed(missing.size());
  RunBatch(exec, static_cast<int>(missing.size()), [&](int i) {
    computed[static_cast<size_t>(i)].paths = graph::MaxInfluencePaths(
        *exec.graph, missing[static_cast<size_t>(i)], threshold, max_hops);
    computed[static_cast<size_t>(i)].region =
        cluster::RegionFromPaths(computed[static_cast<size_t>(i)].paths);
  });
  // A fired token means some slots were skipped; merging them would cache
  // empty regions as if computed. Drop the whole batch — on-demand lookups
  // (RegionEntry) still work, and an uncancelled run recomputes cleanly.
  if (util::CancelFired(exec.cancel.get())) return;
  util::MutexLock lock(mu_);
  for (size_t i = 0; i < missing.size(); ++i) {
    regions_.emplace(RegionKey{missing[i], Bits(threshold), max_hops},
                     std::move(computed[i]));
  }
  total_millis_ += timer.Millis();
}

int PrepArtifacts::HopDistance(UserId a, UserId b, int max_hops) {
  if (a == b) return 0;
  {
    util::MutexLock lock(mu_);
    auto it = hop_rows_.find(HopKey{a, max_hops});
    if (it != hop_rows_.end()) {
      auto hit = it->second.find(b);
      return hit == it->second.end() ? graph::kUnreachable : hit->second;
    }
  }
  PrefetchHopRows({a}, max_hops);
  util::MutexLock lock(mu_);
  auto it = hop_rows_.find(HopKey{a, max_hops});
  // Missing after a prefetch only when the run's token fired mid-batch
  // (the merge was dropped); the answer is a don't-care the cancelled
  // caller discards.
  if (it == hop_rows_.end()) return graph::kUnreachable;
  auto hit = it->second.find(b);
  return hit == it->second.end() ? graph::kUnreachable : hit->second;
}

void PrepArtifacts::PrefetchHopRows(std::vector<UserId> sources,
                                    int max_hops) {
  std::vector<UserId> missing;
  Exec exec;
  {
    util::MutexLock lock(mu_);
    for (UserId u : SortedUnique(std::move(sources))) {
      if (!hop_rows_.count(HopKey{u, max_hops})) missing.push_back(u);
    }
    if (missing.empty()) return;
    exec = Executors();
  }
  Timer timer;
  std::vector<std::unordered_map<UserId, int>> rows(missing.size());
  RunBatch(exec, static_cast<int>(missing.size()), [&](int i) {
    // Truncated BFS over both edge directions: level of first encounter
    // is exactly what graph::UndirectedHopDistance returns pairwise.
    const UserId src = missing[static_cast<size_t>(i)];
    std::unordered_map<UserId, int>& row = rows[static_cast<size_t>(i)];
    row.emplace(src, 0);
    std::vector<UserId> frontier{src};
    for (int h = 0; h < max_hops && !frontier.empty(); ++h) {
      std::vector<UserId> next;
      for (UserId u : frontier) {
        auto visit = [&](UserId v) {
          if (row.emplace(v, h + 1).second) next.push_back(v);
        };
        for (const graph::Edge& e : exec.graph->OutEdges(u)) visit(e.to);
        for (const graph::Edge& e : exec.graph->InEdges(u)) visit(e.to);
      }
      frontier.swap(next);
    }
  });
  // Same contract as PrefetchRegions: never merge a batch whose token
  // fired — a skipped slot is an empty row, and caching it would turn
  // every pair under that source unreachable forever.
  if (util::CancelFired(exec.cancel.get())) return;
  util::MutexLock lock(mu_);
  for (size_t i = 0; i < missing.size(); ++i) {
    hop_rows_.emplace(HopKey{missing[i], max_hops}, std::move(rows[i]));
  }
  total_millis_ += timer.Millis();
}

std::vector<std::vector<Nominee>> PrepArtifacts::Clusters(
    const std::vector<Nominee>& nominees,
    const cluster::ClusteringConfig& config) {
  auto key = std::make_pair(ClusteringConfigKey(config), nominees);
  {
    util::MutexLock lock(mu_);
    auto it = cluster_memo_.find(key);
    if (it != cluster_memo_.end()) {
      ++derivation_hits_;
      return it->second;
    }
  }
  // Derivation runs unlocked: the hop oracle below re-locks per lookup,
  // and a concurrent identical derivation just computes the same clusters.
  std::vector<UserId> sources;
  sources.reserve(nominees.size());
  for (const Nominee& n : nominees) sources.push_back(n.user);
  PrefetchHopRows(std::move(sources), config.max_hops);
  std::vector<std::vector<Nominee>> clusters = cluster::ClusterNominees(
      nominees, [this](ItemId x, ItemId y) { return NetRel(x, y); }, config,
      [this](UserId a, UserId b, int max_hops) {
        return HopDistance(a, b, max_hops);
      });
  util::MutexLock lock(mu_);
  if (cluster_memo_.size() >= kMaxMemoEntries) cluster_memo_.clear();
  cluster_memo_.emplace(std::move(key), clusters);
  return clusters;
}

cluster::MarketPlan PrepArtifacts::Plan(
    const std::vector<std::vector<Nominee>>& clusters,
    const cluster::MarketPlanConfig& config) {
  auto key = std::make_pair(MarketConfigKey(config), clusters);
  {
    util::MutexLock lock(mu_);
    auto it = plan_memo_.find(key);
    if (it != plan_memo_.end()) {
      ++derivation_hits_;
      return it->second;
    }
  }
  std::vector<UserId> sources;
  for (const std::vector<Nominee>& c : clusters) {
    for (const Nominee& n : c) sources.push_back(n.user);
  }
  PrefetchRegions(std::move(sources), config.mioa_threshold,
                  config.mioa_max_hops);
  // The region oracle re-locks per lookup (all prefetched above, so each
  // is a map hit); region references are node-stable for the artifact's
  // lifetime, so handing them out past the lock is safe.
  cluster::MarketPlan plan = cluster::BuildMarketPlan(
      clusters, config, [&](UserId u) -> const cluster::InfluenceRegion& {
        util::MutexLock lock(mu_);
        return RegionEntry(u, config.mioa_threshold, config.mioa_max_hops)
            .region;
      });
  util::MutexLock lock(mu_);
  if (plan_memo_.size() >= kMaxMemoEntries) plan_memo_.clear();
  plan_memo_.emplace(std::move(key), plan);
  return plan;
}

util::StatusOr<PrepLease> PrepCache::Acquire(
    const diffusion::Problem& problem, std::shared_ptr<util::ThreadPool> pool,
    int build_threads, std::shared_ptr<const util::CancelToken> cancel) {
  util::trace::Span span("prep.acquire");
  IMDPP_RETURN_IF_ERROR(util::CheckCancel(cancel.get()));
  PrepLease lease;
  // The content hash per acquisition IS the cache's correctness story —
  // it is what lets mutated problems re-key instead of serving stale
  // structure. One linear scan per planner run is noise next to the
  // Monte-Carlo planning it gates. Hashed before taking mu_ so concurrent
  // acquirers only serialize on the map probe and (rarely) a build.
  const uint64_t key = StructuralKey(problem);
  util::MutexLock lock(mu_);
  auto it = artifacts_.find(key);
  if (it != artifacts_.end()) {
    lease.artifacts = it->second;
    // Lazy sweeps on the reused artifact run on THIS run's graph pointer
    // and executors (content-equal by key; see Rebind).
    lease.artifacts->Rebind(problem, std::move(pool), build_threads,
                            std::move(cancel));
    lease.reused = true;
    ++reuses_;
    return lease;
  }
  IMDPP_RETURN_IF_ERROR(PrepBuildGate(cancel.get()));
  lease.artifacts = std::make_shared<PrepArtifacts>(problem, std::move(pool),
                                                    build_threads, cancel);
  // A token that fired during the build left the artifact incomplete
  // (batch tasks early-exit): return the reason WITHOUT counting the
  // build or inserting — the cache never holds a partial artifact, and
  // the next acquirer rebuilds from scratch.
  IMDPP_RETURN_IF_ERROR(util::CheckCancel(cancel.get()));
  lease.built = true;
  ++builds_;
  if (artifacts_.size() >= kMaxArtifacts) artifacts_.clear();
  artifacts_.emplace(key, lease.artifacts);
  return lease;
}

util::StatusOr<PrepLease> AcquirePrep(
    const std::shared_ptr<PrepCache>& cache, bool use_cache,
    const diffusion::Problem& problem, std::shared_ptr<util::ThreadPool> pool,
    int build_threads, std::shared_ptr<const util::CancelToken> cancel) {
  util::trace::Span span("phase.prep");
  if (cache != nullptr && use_cache) {
    return cache->Acquire(problem, std::move(pool), build_threads,
                          std::move(cancel));
  }
  IMDPP_RETURN_IF_ERROR(PrepBuildGate(cancel.get()));
  PrepLease lease;
  lease.artifacts = std::make_shared<PrepArtifacts>(problem, std::move(pool),
                                                    build_threads, cancel);
  IMDPP_RETURN_IF_ERROR(util::CheckCancel(cancel.get()));
  lease.built = true;
  return lease;
}

}  // namespace imdpp::prep
