#include "util/thread_pool.h"

#include <string>

#include "util/check.h"
#include "util/fault_injection.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace imdpp::util {
namespace {

/// One task execution, with observability when armed. The disarmed
/// path is two relaxed loads and a plain call — the overhead contract
/// perf_smoke holds the pool to.
void RunOneTask(const std::function<void(int)>& fn, int i) {
  if (!MetricRegistry::Armed() && !trace::Armed()) {
    fn(i);
    return;
  }
  trace::Span span("pool.task");
  Timer timer;
  fn(i);
  if (MetricRegistry::Armed()) {
    MetricRegistry::Global()
        .GetHistogram(metric::kPoolTaskMillis, DefaultLatencyBounds())
        .Observe(timer.Millis());
  }
}

}  // namespace

int HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveNumThreads(int requested) {
  return requested < 0 ? HardwareConcurrency() : requested;
}

std::shared_ptr<ThreadPool> MakeWorkerPool(int num_threads) {
  const int resolved = ResolveNumThreads(num_threads);
  if (resolved <= 1) return nullptr;  // serial: no pool at all
  return std::make_shared<ThreadPool>(resolved - 1);
}

ThreadPool::ThreadPool(int num_workers) {
  IMDPP_CHECK(num_workers >= 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] {
      trace::RegisterCurrentThread("pool-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // Fault point: a failed dispatch degrades to inline serial execution on
  // the calling thread. The pool only promises each index runs once, so
  // the serial path is bit-identical; the degradation is booked as a
  // fallback rather than failing the batch.
  if (!FaultInjector::Global().Hit("pool.enqueue").ok()) {
    BookFallback();
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  if (MetricRegistry::Armed()) {
    MetricRegistry& reg = MetricRegistry::Global();
    reg.GetCounter(metric::kPoolBatches).Add(1);
    reg.GetCounter(metric::kPoolTasks).Add(n);
    reg.GetGauge(metric::kPoolQueueDepth).Set(n);
  }
  // Shared pools: a second owner submitting while a batch is in flight
  // waits its turn here instead of clobbering fn_/next_/total_.
  MutexLock batch(batch_mu_);
  {
    MutexLock lock(mu_);
    // A previous batch is fully drained before ParallelFor returns, so the
    // batch slot is free here.
    fn_ = &fn;
    next_ = 0;
    total_ = n;
    unfinished_ = n;
    ++epoch_;
  }
  work_cv_.NotifyAll();
  RunTasks();  // the calling thread is one of the executors
  MutexLock lock(mu_);
  // Wait for completion AND for every helper to leave RunTasks, so the
  // next batch cannot race a straggler that is between claim and finish.
  while (unfinished_ != 0 || active_ != 0) done_cv_.Wait(mu_);
  fn_ = nullptr;
  total_ = 0;
}

void ThreadPool::RunTasks() {
  mu_.Lock();
  ++active_;
  while (next_ < total_) {
    const int i = next_++;
    const std::function<void(int)>& fn = *fn_;
    mu_.Unlock();
    RunOneTask(fn, i);
    mu_.Lock();
    --unfinished_;
  }
  --active_;
  const bool drained = unfinished_ == 0 && active_ == 0;
  mu_.Unlock();
  // Notify outside the lock: the predicate changed under it, so the
  // waiter in ParallelFor cannot miss the wakeup.
  if (drained) done_cv_.NotifyAll();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stop_ && epoch_ == seen_epoch) work_cv_.Wait(mu_);
      if (stop_) return;
      seen_epoch = epoch_;
    }
    RunTasks();
  }
}

}  // namespace imdpp::util
