// Deterministic fault injection (ISSUE 8 tentpole, prong 3): a registry
// of named fault points the robustness paths call at every boundary they
// claim to survive, so error propagation is exercised by tests instead of
// trusted.
//
// Fault points are a fixed, sorted catalog (KnownPoints):
//   config.parse — config::LoadJsonFile, before the file is read
//   data.load    — data::DatasetRegistry::Make, before the build
//   eval.sigma   — every σ-backend estimate entry (Sigma / EvalMarket /
//                  Expected, "mc" and "ris" alike); fires through the
//                  backend's CancelToken so planners see it at their
//                  next check
//   pool.enqueue — util::ThreadPool::ParallelFor dispatch; the pool
//                  degrades to inline serial execution (bit-identical)
//                  and books a fallback instead of failing the batch
//   prep.build   — the PrepArtifacts build inside PrepCache::Acquire /
//                  prep::AcquirePrep (transient codes are retried)
//   prep.sketch  — the RisSketchSet build inside AcquireRisSketches; a
//                  "ris" backend with eval.fallback_backend set degrades
//                  to its embedded "mc" engine instead of failing
//
// Arming is a spec string `point[:RANGE][:CODE]`:
//   RANGE — which 1-based hits of the point fail: `N` (the Nth only),
//           `N+` (from the Nth on), `N-M` (inclusive). Default: every hit.
//   CODE  — the canonical code name to inject (util::ParseStatusCode);
//           default `internal`. `resource_exhausted` marks the fault
//           transient, so RetryTransient call sites retry it.
// Examples: `prep.build`, `data.load:2`, `eval.sigma:3+:cancelled`,
// `prep.build:1-2:resource_exhausted`.
//
// Determinism: schedules count hits, never time — the Nth hit of a point
// fails on every run that reaches it. Hit() is near-free while nothing is
// armed (one relaxed atomic load), so the points stay compiled in for
// release builds and the fault-matrix suite alike.
//
// The injector also owns the global robustness counters
// (faults_injected / retries / fallbacks) that PlanResult books as
// per-run deltas and the reports serialize.
#ifndef IMDPP_UTIL_FAULT_INJECTION_H_
#define IMDPP_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace imdpp::util {

/// Cumulative process-wide robustness accounting. Monotonic: consumers
/// (api::Planner::Plan, CampaignSession::Run) snapshot before/after and
/// book the delta.
struct RobustnessCounters {
  int64_t faults_injected = 0;  ///< armed fault points that fired
  int64_t retries = 0;          ///< RetryTransient re-attempts
  int64_t fallbacks = 0;        ///< graceful degradations taken
};

RobustnessCounters SnapshotRobustnessCounters();
void BookRetry();
void BookFallback();

class FaultInjector {
 public:
  /// The process-wide injector every fault point consults.
  static FaultInjector& Global();

  /// Arms one `point[:RANGE][:CODE]` spec (see file comment). Unknown
  /// points and malformed ranges/codes fail with kInvalidArgument and the
  /// sorted-catalog UnknownMessage. Re-arming a point replaces its
  /// schedule and resets its hit count.
  Status Arm(std::string_view spec) IMDPP_EXCLUDES(mu_);

  /// Arms a comma-separated list of specs (the `--fail_on` /
  /// IMDPP_FAIL_ON surface); empty entries are ignored.
  Status ArmList(std::string_view specs) IMDPP_EXCLUDES(mu_);

  /// Disarms every point and zeroes its hit counts (tests run this
  /// between cases; the cumulative RobustnessCounters stay monotonic).
  void Reset() IMDPP_EXCLUDES(mu_);

  /// The fault point call: counts a hit of `point` and returns the armed
  /// error if this hit falls in the armed range, OkStatus() otherwise.
  /// Near-free while nothing is armed. `point` must be in the catalog
  /// (IMDPP_DCHECK — a typo'd call site would otherwise never fire).
  Status Hit(std::string_view point) IMDPP_EXCLUDES(mu_);

  /// Sorted fault-point catalog.
  static const std::vector<std::string>& KnownPoints();
  static bool Known(std::string_view point);
  /// `unknown fault point "name"; known: config.parse data.load ...` —
  /// the registry-style miss message.
  static std::string UnknownMessage(std::string_view point);

 private:
  struct Armed {
    int64_t from = 1;           ///< first failing hit (1-based)
    int64_t to = INT64_MAX;     ///< last failing hit (inclusive)
    StatusCode code = StatusCode::kInternal;
    int64_t hits = 0;           ///< hits seen since arming
  };

  mutable Mutex mu_;
  std::map<std::string, Armed, std::less<>> armed_ IMDPP_GUARDED_BY(mu_);
  /// Fast-path gate: false ⇒ Hit() returns without taking mu_.
  std::atomic<bool> any_armed_{false};
};

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_FAULT_INJECTION_H_
