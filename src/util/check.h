// Lightweight assertion macros used across the library.
//
// CHECK() is always on (also in release builds): the algorithms in this
// library are driven by configuration structs supplied by callers, and a
// silent out-of-range index or violated precondition would corrupt a
// Monte-Carlo estimate rather than crash, which is far harder to debug.
// DCHECK() compiles away in NDEBUG builds and is meant for hot paths.
#ifndef IMDPP_UTIL_CHECK_H_
#define IMDPP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace imdpp {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace imdpp

#define IMDPP_CHECK(expr)                                \
  do {                                                   \
    if (!(expr)) {                                       \
      ::imdpp::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                    \
  } while (0)

#define IMDPP_CHECK_GE(a, b) IMDPP_CHECK((a) >= (b))
#define IMDPP_CHECK_GT(a, b) IMDPP_CHECK((a) > (b))
#define IMDPP_CHECK_LE(a, b) IMDPP_CHECK((a) <= (b))
#define IMDPP_CHECK_LT(a, b) IMDPP_CHECK((a) < (b))
#define IMDPP_CHECK_EQ(a, b) IMDPP_CHECK((a) == (b))
#define IMDPP_CHECK_NE(a, b) IMDPP_CHECK((a) != (b))

#ifdef NDEBUG
#define IMDPP_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define IMDPP_DCHECK(expr) IMDPP_CHECK(expr)
#endif

#endif  // IMDPP_UTIL_CHECK_H_
