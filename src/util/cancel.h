// Cooperative cancellation and deadlines (ISSUE 8 tentpole, prong 2).
//
// One CancelToken travels a whole planner run: PlannerConfig →
// CampaignSession::Run → every planner/baseline → the Monte-Carlo /
// RIS shard loops and the parallel prep/sketch builds. Work checks the
// token at natural boundaries (a shard, a greedy iteration, a per-source
// sweep task) and returns early once it has fired; nothing is ever
// interrupted mid-arithmetic, so when the token never fires the checks
// are pure control flow and results stay bit-identical.
//
// Firing is one-shot and latches a Status: the FIRST cancellation reason
// (an explicit Cancel, an expired deadline, or a fault-injected error
// propagated through the token) wins and is what the run reports.
//
// Thread safety: Cancel/Check/Fired may race freely. `fired_` is an
// acquire/release flag published after the reason is written under mu_,
// so a reader that observes Fired() == true always reads the complete
// latched Status.
#ifndef IMDPP_UTIL_CANCEL_H_
#define IMDPP_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace imdpp::util {

class CancelToken {
 public:
  /// No deadline: fires only on explicit Cancel().
  CancelToken() = default;

  /// Fires kDeadlineExceeded once `timeout` has elapsed from construction
  /// (checked lazily by Check(); there is no timer thread).
  static std::shared_ptr<CancelToken> WithDeadline(
      std::chrono::milliseconds timeout) {
    auto token = std::make_shared<CancelToken>();
    token->deadline_ = MonotonicNow() + timeout;
    token->has_deadline_ = true;
    return token;
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Latches `reason` (must be non-ok) unless already fired; the first
  /// reason wins. Safe from any thread, including pool workers.
  void Cancel(Status reason = CancelledError("run cancelled")) const {
    IMDPP_CHECK(!reason.ok());
    MutexLock lock(mu_);
    if (fired_.load(std::memory_order_relaxed)) return;
    reason_ = std::move(reason);
    fired_.store(true, std::memory_order_release);
  }

  /// True once the token has fired. Cheap (one atomic load); does NOT
  /// poll the deadline — use Check() at boundaries that must honor it.
  bool Fired() const { return fired_.load(std::memory_order_acquire); }

  /// The cancellation check every work boundary calls: returns the
  /// latched reason if fired, latches-and-returns kDeadlineExceeded if
  /// the deadline has passed, OkStatus() otherwise.
  Status Check() const {
    if (Fired()) return status();
    if (has_deadline_ && MonotonicNow() >= deadline_) {
      Cancel(DeadlineExceededError("deadline exceeded"));
      return status();
    }
    return OkStatus();
  }

  /// The latched reason (OkStatus() while not fired).
  Status status() const {
    if (!Fired()) return OkStatus();
    MutexLock lock(mu_);
    return reason_;
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  mutable Mutex mu_;
  mutable std::atomic<bool> fired_{false};
  mutable Status reason_ IMDPP_GUARDED_BY(mu_);
  MonotonicClock::time_point deadline_{};
  bool has_deadline_ = false;  ///< set before sharing (WithDeadline)
};

/// Check() on a possibly-null token — the shape call sites use, because a
/// null token (no cancellation requested) is the common case.
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? OkStatus() : token->Check();
}
inline Status CheckCancel(const std::shared_ptr<CancelToken>& token) {
  return CheckCancel(token.get());
}

/// Fired() on a possibly-null token (cheap shard-loop variant).
inline bool CancelFired(const CancelToken* token) {
  return token != nullptr && token->Fired();
}
inline bool CancelFired(const std::shared_ptr<CancelToken>& token) {
  return CancelFired(token.get());
}

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_CANCEL_H_
