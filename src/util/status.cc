#include "util/status.h"

namespace imdpp::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "internal";  // unreachable for in-range enums
}

std::optional<StatusCode> ParseStatusCode(std::string_view name) {
  if (name == "cancelled") return StatusCode::kCancelled;
  if (name == "invalid_argument") return StatusCode::kInvalidArgument;
  if (name == "deadline_exceeded") return StatusCode::kDeadlineExceeded;
  if (name == "not_found") return StatusCode::kNotFound;
  if (name == "resource_exhausted") return StatusCode::kResourceExhausted;
  if (name == "internal") return StatusCode::kInternal;
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace imdpp::util
