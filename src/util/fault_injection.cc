#include "util/fault_injection.h"

#include <algorithm>
#include <cstdlib>

namespace imdpp::util {

namespace {

std::atomic<int64_t> g_faults_injected{0};
std::atomic<int64_t> g_retries{0};
std::atomic<int64_t> g_fallbacks{0};

/// Parses a 1-based hit index; false on anything non-numeric/out of range.
bool ParseHitIndex(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() > 18) return false;
  int64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (v < 1) return false;
  *out = v;
  return true;
}

}  // namespace

RobustnessCounters SnapshotRobustnessCounters() {
  RobustnessCounters c;
  c.faults_injected = g_faults_injected.load(std::memory_order_relaxed);
  c.retries = g_retries.load(std::memory_order_relaxed);
  c.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  return c;
}

void BookRetry() { g_retries.fetch_add(1, std::memory_order_relaxed); }
void BookFallback() { g_fallbacks.fetch_add(1, std::memory_order_relaxed); }

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

const std::vector<std::string>& FaultInjector::KnownPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "config.parse", "data.load",  "eval.sigma",
      "pool.enqueue", "prep.build", "prep.sketch",
  };
  return *points;
}

bool FaultInjector::Known(std::string_view point) {
  const std::vector<std::string>& points = KnownPoints();
  return std::find(points.begin(), points.end(), point) != points.end();
}

std::string FaultInjector::UnknownMessage(std::string_view point) {
  std::string msg = "unknown fault point \"";
  msg += point;
  msg += "\"; known:";
  for (const std::string& known : KnownPoints()) {
    msg += ' ';
    msg += known;
  }
  return msg;
}

Status FaultInjector::Arm(std::string_view spec) {
  // point[:RANGE][:CODE] — split on ':'.
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t colon = spec.find(':', start);
    if (colon == std::string_view::npos) {
      parts.push_back(spec.substr(start));
      break;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.empty() || parts.size() > 3 || parts[0].empty()) {
    return InvalidArgumentError("malformed fault spec \"" +
                                std::string(spec) +
                                "\"; expected point[:RANGE][:CODE]");
  }
  const std::string point(parts[0]);
  if (!Known(point)) return InvalidArgumentError(UnknownMessage(point));

  Armed armed;
  if (parts.size() >= 2) {
    std::string_view range = parts[1];
    const size_t dash = range.find('-');
    if (!range.empty() && range.back() == '+') {
      if (!ParseHitIndex(range.substr(0, range.size() - 1), &armed.from)) {
        return InvalidArgumentError("malformed fault range \"" +
                                    std::string(range) + "\" in \"" +
                                    std::string(spec) + "\"");
      }
    } else if (dash != std::string_view::npos) {
      if (!ParseHitIndex(range.substr(0, dash), &armed.from) ||
          !ParseHitIndex(range.substr(dash + 1), &armed.to) ||
          armed.to < armed.from) {
        return InvalidArgumentError("malformed fault range \"" +
                                    std::string(range) + "\" in \"" +
                                    std::string(spec) + "\"");
      }
    } else {
      if (!ParseHitIndex(range, &armed.from)) {
        return InvalidArgumentError("malformed fault range \"" +
                                    std::string(range) + "\" in \"" +
                                    std::string(spec) + "\"");
      }
      armed.to = armed.from;
    }
  }
  if (parts.size() == 3) {
    std::optional<StatusCode> code = ParseStatusCode(parts[2]);
    if (!code.has_value()) {
      return InvalidArgumentError(
          "unknown status code \"" + std::string(parts[2]) + "\" in \"" +
          std::string(spec) +
          "\"; known: cancelled deadline_exceeded internal "
          "invalid_argument not_found resource_exhausted");
    }
    armed.code = *code;
  }

  MutexLock lock(mu_);
  armed_.insert_or_assign(point, armed);
  any_armed_.store(true, std::memory_order_release);
  return OkStatus();
}

Status FaultInjector::ArmList(std::string_view specs) {
  size_t start = 0;
  while (start <= specs.size()) {
    const size_t comma = specs.find(',', start);
    std::string_view one = comma == std::string_view::npos
                               ? specs.substr(start)
                               : specs.substr(start, comma - start);
    // Tolerate "a, b" style lists: surrounding whitespace is not part of
    // the spec, and a fully blank entry (trailing comma) is skipped.
    while (!one.empty() && (one.front() == ' ' || one.front() == '\t')) {
      one.remove_prefix(1);
    }
    while (!one.empty() && (one.back() == ' ' || one.back() == '\t')) {
      one.remove_suffix(1);
    }
    if (!one.empty()) IMDPP_RETURN_IF_ERROR(Arm(one));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return OkStatus();
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  armed_.clear();
  any_armed_.store(false, std::memory_order_release);
}

Status FaultInjector::Hit(std::string_view point) {
  IMDPP_DCHECK(Known(point));  // a typo'd call site would never fire
  if (!any_armed_.load(std::memory_order_acquire)) return OkStatus();
  MutexLock lock(mu_);
  auto it = armed_.find(point);
  if (it == armed_.end()) return OkStatus();
  Armed& armed = it->second;
  const int64_t hit = ++armed.hits;
  if (hit < armed.from || hit > armed.to) return OkStatus();
  g_faults_injected.fetch_add(1, std::memory_order_relaxed);
  std::string msg = "injected fault at ";
  msg += point;
  msg += " (hit ";
  msg += std::to_string(hit);
  msg += ")";
  return Status(armed.code, std::move(msg));
}

}  // namespace imdpp::util
