#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace imdpp::util::trace {
namespace {

// Buffer cap: ~48 MB of events, far beyond any catalog run. Begin
// events past the cap are dropped (counted); end events are always
// admitted so every recorded B keeps its E.
constexpr size_t kMaxEvents = size_t{1} << 20;

struct Event {
  const char* name;
  char phase;  // 'B' or 'E'
  int tid;
  int64_t ts_us;
};

struct Collector {
  Mutex mu;
  std::vector<Event> events IMDPP_GUARDED_BY(mu);
  std::vector<std::string> labels IMDPP_GUARDED_BY(mu);
  size_t dropped IMDPP_GUARDED_BY(mu) = 0;
  MonotonicClock::time_point epoch IMDPP_GUARDED_BY(mu);
};

std::atomic<bool> g_armed{false};

Collector& C() {
  static Collector* kCollector = new Collector;  // leaked: outlives threads
  return *kCollector;
}

/// Lazily assigns the calling thread a stable track id (and a default
/// "thread-N" label). Must be called before locking the collector.
int CurrentTid() {
  thread_local int tid = -1;
  if (tid < 0) {
    Collector& c = C();
    MutexLock lock(c.mu);
    tid = static_cast<int>(c.labels.size());
    c.labels.push_back("thread-" + std::to_string(tid));
  }
  return tid;
}

bool RecordBegin(const char* name) {
  const int tid = CurrentTid();
  Collector& c = C();
  MutexLock lock(c.mu);
  if (c.events.size() >= kMaxEvents) {
    ++c.dropped;
    return false;
  }
  const int64_t ts = std::chrono::duration_cast<std::chrono::microseconds>(
                         MonotonicNow() - c.epoch)
                         .count();
  c.events.push_back({name, 'B', tid, ts});
  return true;
}

void RecordEnd(const char* name) {
  const int tid = CurrentTid();
  Collector& c = C();
  MutexLock lock(c.mu);
  const int64_t ts = std::chrono::duration_cast<std::chrono::microseconds>(
                         MonotonicNow() - c.epoch)
                         .count();
  c.events.push_back({name, 'E', tid, ts});
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          *out += ch;
        }
    }
  }
}

void AppendMetadata(const char* name, int tid, const std::string& value,
                    std::string* out) {
  *out += "{\"name\":\"";
  *out += name;
  *out += "\",\"ph\":\"M\",\"pid\":1,\"tid\":";
  *out += std::to_string(tid);
  *out += ",\"args\":{\"name\":\"";
  AppendEscaped(value, out);
  *out += "\"}}";
}

}  // namespace

bool Armed() { return g_armed.load(std::memory_order_relaxed); }

void Enable() {
  Collector& c = C();
  MutexLock lock(c.mu);
  c.events.clear();
  c.dropped = 0;
  c.epoch = MonotonicNow();
  g_armed.store(true, std::memory_order_relaxed);
}

void Disable() { g_armed.store(false, std::memory_order_relaxed); }

void RegisterCurrentThread(const std::string& label) {
  const int tid = CurrentTid();
  Collector& c = C();
  MutexLock lock(c.mu);
  c.labels[tid] = label;
}

size_t EventCount() {
  Collector& c = C();
  MutexLock lock(c.mu);
  return c.events.size();
}

size_t DroppedEvents() {
  Collector& c = C();
  MutexLock lock(c.mu);
  return c.dropped;
}

Span::Span(const char* name) : name_(nullptr) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  if (RecordBegin(name)) name_ = name;
}

Span::~Span() {
  if (name_ != nullptr) RecordEnd(name_);
}

std::string TraceJson(bool zero_timestamps) {
  std::vector<Event> events;
  std::vector<std::string> labels;
  {
    Collector& c = C();
    MutexLock lock(c.mu);
    events = c.events;
    labels = c.labels;
  }
  // Group events by thread track, preserving per-thread recording
  // order (events were appended under one lock, so each track's
  // timestamps are already monotone).
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.tid < b.tid; });

  std::string out = "{\"traceEvents\":[\n";
  AppendMetadata("process_name", 0, "imdpp", &out);
  int last_tid = -1;
  for (const Event& e : events) {
    if (e.tid != last_tid) {
      out += ",\n";
      AppendMetadata("thread_name", e.tid,
                     e.tid < static_cast<int>(labels.size())
                         ? labels[e.tid]
                         : "thread-" + std::to_string(e.tid),
                     &out);
      last_tid = e.tid;
    }
    out += ",\n{\"name\":\"";
    AppendEscaped(e.name, &out);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += std::to_string(zero_timestamps ? int64_t{0} : e.ts_us);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status WriteTrace(const std::string& path, bool zero_timestamps) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open trace output file: " + path);
  out << TraceJson(zero_timestamps);
  out.flush();
  if (!out) return InternalError("error writing trace output file: " + path);
  return OkStatus();
}

}  // namespace imdpp::util::trace
