// The shared contract of the string-keyed self-registration registries
// (api::PlannerRegistry, data::DatasetRegistry,
// diffusion::SigmaBackendRegistry): duplicate names abort, Names() is
// sorted, and every lookup failure reports the unknown name plus the
// sorted known keys. The public registries stay thin typed façades over
// one instance each — their call sites never see this template, and each
// façade keeps its own Meyers singleton so registration statics in other
// translation units stay ordering-safe.
#ifndef IMDPP_UTIL_REGISTRY_H_
#define IMDPP_UTIL_REGISTRY_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.h"

namespace imdpp::util {

/// `Factory` is any nullable callable handle (the façades use plain
/// function pointers). `kind` names the registered thing in messages
/// ("planner", "dataset", "backend").
template <typename Factory>
class Registry {
 public:
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers `factory` under `name`; returns true. Duplicate names
  /// abort (two implementations claiming one key is a programming error).
  bool Register(std::string name, Factory factory) {
    IMDPP_CHECK(factory != nullptr);
    auto [it, inserted] = factories_.emplace(std::move(name), factory);
    if (!inserted) {
      std::fprintf(stderr, "duplicate %s registration: %s\n", kind_.c_str(),
                   it->first.c_str());
      std::abort();
    }
    return true;
  }

  /// The factory registered under `name`, or nullptr on a miss.
  const Factory* Find(std::string_view name) const {
    auto it = factories_.find(name);
    return it == factories_.end() ? nullptr : &it->second;
  }

  bool Has(std::string_view name) const { return Find(name) != nullptr; }

  /// All registered names, sorted.
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) names.push_back(name);
    return names;  // std::map iterates sorted
  }

  /// `unknown <kind> "name"; registered: a b c` — the failure message
  /// every lookup path reports (façades may append recognized name
  /// families of their own).
  std::string UnknownMessage(std::string_view name) const {
    std::string msg = "unknown ";
    msg += kind_;
    msg += " \"";
    msg += name;
    msg += "\"; registered:";
    for (const auto& [known, factory] : factories_) {
      msg += ' ';
      msg += known;
    }
    return msg;
  }

 private:
  std::string kind_;
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_REGISTRY_H_
