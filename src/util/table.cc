#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace imdpp {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::Render() const {
  // Compute column widths across header and all rows.
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) out << "  ";
      out << r[i];
      for (size_t p = r[i].size(); p < width[i]; ++p) out << ' ';
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) total += width[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

}  // namespace imdpp
