// Wall-clock stopwatch used by the benchmark harnesses to reproduce the
// execution-time figures (Fig. 9(d), 9(g), 9(h)).
#ifndef IMDPP_UTIL_TIMER_H_
#define IMDPP_UTIL_TIMER_H_

#include <chrono>

namespace imdpp {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace imdpp

#endif  // IMDPP_UTIL_TIMER_H_
