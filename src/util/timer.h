// The repo's single monotonic-clock seam, plus the wall-clock stopwatch
// the benchmark harnesses use to reproduce the execution-time figures
// (Fig. 9(d), 9(g), 9(h)).
//
// Every raw std::chrono::*_clock::now() call in the codebase lives here
// or in util/trace.* — enforced by the `no-raw-clock` imdpp-lint rule —
// so timing always flows through one instrumented, auditable seam.
#ifndef IMDPP_UTIL_TIMER_H_
#define IMDPP_UTIL_TIMER_H_

#include <chrono>

namespace imdpp {

/// The clock the library times with: monotonic, immune to wall-clock
/// adjustments, comparable across threads of one process.
using MonotonicClock = std::chrono::steady_clock;

/// The one sanctioned read of the monotonic clock (see no-raw-clock).
inline MonotonicClock::time_point MonotonicNow() {
  return MonotonicClock::now();
}

class Timer {
 public:
  Timer() : start_(MonotonicNow()) {}

  void Reset() { start_ = MonotonicNow(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(MonotonicNow() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  MonotonicClock::time_point start_;
};

}  // namespace imdpp

#endif  // IMDPP_UTIL_TIMER_H_
