// Counter-based hashing primitives.
//
// Every stochastic decision in the diffusion simulator is made by hashing a
// tuple of integers (sample seed, edge endpoints, item, promotion, step,
// purpose tag) into a uniform value in [0,1) and comparing it against the
// event probability. Compared to a mutable RNG stream this gives us:
//   * exact reproducibility independent of evaluation order, and
//   * common random numbers across "with seed S" / "without seed S"
//     simulations, which pairs the Monte-Carlo estimates used for marginal
//     gains (MCP, MA, ML) and slashes their variance.
#ifndef IMDPP_UTIL_HASH_H_
#define IMDPP_UTIL_HASH_H_

#include <cstdint>

namespace imdpp {

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a hash state with one more 64-bit word.
constexpr uint64_t HashCombine(uint64_t h, uint64_t v) {
  return SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Hashes a variadic tuple of integers into one 64-bit value.
template <typename... Ts>
constexpr uint64_t HashTuple(uint64_t first, Ts... rest) {
  uint64_t h = SplitMix64(first);
  ((h = HashCombine(h, static_cast<uint64_t>(rest))), ...);
  return h;
}

/// Maps a 64-bit hash to a double uniformly distributed in [0, 1).
constexpr double HashToUnit(uint64_t h) {
  // Use the top 53 bits for a dyadic rational in [0,1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Uniform [0,1) value for a hashed tuple.
template <typename... Ts>
constexpr double UnitHash(uint64_t first, Ts... rest) {
  return HashToUnit(HashTuple(first, rest...));
}

}  // namespace imdpp

#endif  // IMDPP_UTIL_HASH_H_
