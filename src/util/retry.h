// Bounded exponential-backoff retry (ISSUE 8 tentpole, prong 4), for
// fault points whose injected (or real) failures are transient.
//
// The transiency contract is by code: kResourceExhausted retries,
// everything else fails fast — cancellations and deadlines must never be
// retried into, and config/registry errors never heal on their own.
// Each re-attempt books one `retries` counter (util/fault_injection.h),
// so reports show how much self-healing a run did.
#ifndef IMDPP_UTIL_RETRY_H_
#define IMDPP_UTIL_RETRY_H_

#include <chrono>
#include <thread>
#include <utility>

#include "util/fault_injection.h"
#include "util/status.h"

namespace imdpp::util {

struct RetryOptions {
  /// Total attempts (first try included). 3 ⇒ up to two retries.
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is base * multiplier^(k-1).
  /// Deliberately tiny: the transient failures this heals (an injected
  /// fault, a momentary resource blip) do not need seconds-long waits.
  std::chrono::milliseconds base_backoff{1};
  int multiplier = 2;
};

/// Runs `fn` (returning util::Status) up to options.max_attempts times,
/// retrying only kResourceExhausted; returns the first non-transient
/// status, or the last transient one once attempts are exhausted.
template <typename Fn>
Status RetryTransient(const RetryOptions& options, Fn&& fn) {
  std::chrono::milliseconds backoff = options.base_backoff;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = fn();
    if (status.code() != StatusCode::kResourceExhausted) return status;
    if (attempt >= options.max_attempts) return status;
    BookRetry();
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff *= options.multiplier;
  }
}

template <typename Fn>
Status RetryTransient(Fn&& fn) {
  return RetryTransient(RetryOptions{}, std::forward<Fn>(fn));
}

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_RETRY_H_
