// Unified metrics layer (ISSUE 9 tentpole).
//
// Two complementary pieces:
//
//   * MetricsSnapshot — a plain, copyable bag of named metric values
//     (counters, gauges, sums, fixed-bucket histograms) held in a
//     std::map so iteration order is the deterministic name order.
//     Per-run counters that used to be hand-threaded fields on
//     DysimResult/PlanResult now travel as one snapshot that layers
//     merge with MetricsSnapshot::Merge / api::MergeMetrics.
//
//   * MetricRegistry — a thread-safe process-wide registry of live
//     metric handles (atomic counters/gauges, mutex-guarded
//     histograms) for instrumentation that has no per-run result to
//     ride on (the shared ThreadPool, the serve daemon ROADMAP item 1
//     wants). Handles have stable addresses for the registry's
//     lifetime, so hot paths look them up once and then touch a
//     single atomic.
//
// Arming policy: per-run snapshot counters are always on (they are the
// pre-existing result fields, just re-homed). Registry-backed pool
// metrics involve clock reads, so they are gated on
// MetricRegistry::Armed() — a single relaxed atomic load when
// disarmed, which is the overhead policy perf_smoke enforces.
//
// Determinism: counters book the same totals at any thread count
// (fixed sharding), histograms are merge-order-invariant (a bucket
// vector is a commutative sum over the observed multiset), and
// snapshots serialize in name order — so an armed run's metrics file
// is byte-stable wherever the observed multiset is thread-invariant.
#ifndef IMDPP_UTIL_METRICS_H_
#define IMDPP_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace imdpp::util {

// Canonical metric names. The legacy PlanResult counter fields are
// derived views of these (see api::MergeMetrics).
namespace metric {
inline constexpr char kEvalSimulations[] = "eval.simulations";
inline constexpr char kEvalRoundsSimulated[] = "eval.rounds_simulated";
inline constexpr char kEvalRoundsSkipped[] = "eval.rounds_skipped";
inline constexpr char kEvalMemoHits[] = "eval.memo_hits";
inline constexpr char kEvalSigmaHat[] = "eval.sigma_hat";
inline constexpr char kEvalBlocksRun[] = "eval.blocks_run";
inline constexpr char kEvalEarlyStops[] = "eval.early_stops";
inline constexpr char kEvalSamplesSaved[] = "eval.samples_saved";
inline constexpr char kRisSketchBuilds[] = "ris.sketch_builds";
inline constexpr char kRisSketchReuses[] = "ris.sketch_reuses";
inline constexpr char kRisCoverageQueries[] = "ris.coverage_queries";
inline constexpr char kPrepBuilds[] = "prep.builds";
inline constexpr char kPrepReuses[] = "prep.reuses";
inline constexpr char kPrepMillis[] = "prep.millis";
inline constexpr char kFaultInjected[] = "fault.injected";
inline constexpr char kFaultRetries[] = "fault.retries";
inline constexpr char kFaultFallbacks[] = "fault.fallbacks";
inline constexpr char kPoolBatches[] = "pool.batches";
inline constexpr char kPoolTasks[] = "pool.tasks";
inline constexpr char kPoolQueueDepth[] = "pool.queue_depth";
inline constexpr char kPoolTaskMillis[] = "pool.task_millis";
}  // namespace metric

enum class MetricKind {
  kCounter,    ///< int64, additive merge
  kGauge,      ///< double, last-writer-wins merge
  kSum,        ///< double, additive merge (e.g. accumulated millis)
  kHistogram,  ///< fixed-bucket distribution, bucketwise-additive merge
};

/// Fixed upper-bound bucket histogram. `bounds` are the inclusive
/// upper edges in ascending order; `buckets` has bounds.size() + 1
/// slots, the last one counting observations above every bound.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<int64_t> buckets;
  int64_t count = 0;
  double sum = 0.0;

  bool empty() const { return count == 0; }
  void Observe(double value);
  /// Bucketwise-additive merge. Adopts `other`'s bounds when this
  /// histogram has none; mismatched bucket layouts fold into
  /// count/sum only (never happens for the fixed catalog above).
  void MergeFrom(const HistogramData& other);
};

/// Default bucket edges for value-distribution histograms (powers of
/// two up to ~10^6 — covers sigma-hat on every catalog dataset).
const std::vector<double>& DefaultValueBounds();
/// Default bucket edges for latencies in milliseconds (10 µs .. 10 s).
const std::vector<double>& DefaultLatencyBounds();

/// True for metrics whose value depends on wall time (name ends in
/// "millis" / "micros" / "seconds"). Reports keep these behind
/// --timings so default output stays byte-stable.
bool IsTimingMetric(std::string_view name);

/// A plain bag of named metrics with deterministic (name) ordering.
class MetricsSnapshot {
 public:
  struct Value {
    MetricKind kind = MetricKind::kCounter;
    int64_t counter = 0;    ///< kCounter payload
    double number = 0.0;    ///< kGauge / kSum payload
    HistogramData histogram;  ///< kHistogram payload
  };

  void AddCounter(std::string_view name, int64_t delta);
  /// Overwrites (re-books) a counter — used when an outer scope
  /// measures a superset interval of an inner scope's booking.
  void SetCounter(std::string_view name, int64_t value);
  void SetGauge(std::string_view name, double value);
  void AddSum(std::string_view name, double delta);
  void Observe(std::string_view name, double value,
               const std::vector<double>& bounds);
  void MergeHistogram(std::string_view name, const HistogramData& data);

  /// Kind-aware merge of every entry of `other` into this snapshot.
  void Merge(const MetricsSnapshot& other);

  /// Counter value; 0 when absent (mirrors the legacy field defaults).
  int64_t Counter(std::string_view name) const;
  /// Gauge/sum value; 0.0 when absent.
  double Number(std::string_view name) const;
  /// Histogram payload; nullptr when absent.
  const HistogramData* Histogram(std::string_view name) const;

  bool empty() const { return entries_.empty(); }
  const std::map<std::string, Value, std::less<>>& entries() const {
    return entries_;
  }

 private:
  Value& Entry(std::string_view name, MetricKind kind);

  std::map<std::string, Value, std::less<>> entries_;
};

/// Serializes a snapshot as an insertion-ordered (= name-ordered) JSON
/// object. Timing-valued metrics are dropped unless `include_timings`,
/// matching the report-layer byte-stability contract.
Json MetricsJson(const MetricsSnapshot& snapshot, bool include_timings);

/// Process-wide registry of live metric handles.
class MetricRegistry {
 public:
  class Counter {
   public:
    void Add(int64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }

   private:
    friend class MetricRegistry;
    std::atomic<int64_t> value_{0};
  };

  class Gauge {
   public:
    void Set(double value) {
      value_.store(value, std::memory_order_relaxed);
    }
    double value() const { return value_.load(std::memory_order_relaxed); }

   private:
    friend class MetricRegistry;
    std::atomic<double> value_{0.0};
  };

  class Histogram {
   public:
    void Observe(double value) IMDPP_EXCLUDES(mu_) {
      MutexLock lock(mu_);
      data_.Observe(value);
    }

   private:
    friend class MetricRegistry;
    void Init(const std::vector<double>& bounds) IMDPP_EXCLUDES(mu_) {
      MutexLock lock(mu_);
      data_.bounds = bounds;
      data_.buckets.assign(bounds.size() + 1, 0);
    }
    HistogramData Snapshot() const IMDPP_EXCLUDES(mu_) {
      MutexLock lock(mu_);
      return data_;
    }
    void Reset() IMDPP_EXCLUDES(mu_) {
      MutexLock lock(mu_);
      HistogramData fresh;
      fresh.bounds = data_.bounds;
      fresh.buckets.assign(fresh.bounds.size() + 1, 0);
      data_ = fresh;
    }

    mutable Mutex mu_;
    HistogramData data_ IMDPP_GUARDED_BY(mu_);
  };

  /// The process-wide registry every instrumentation site uses.
  static MetricRegistry& Global();

  /// Arming gate for instrumentation whose *recording* has a cost even
  /// when nobody reads it (clock reads in the pool). A relaxed load;
  /// the only overhead of the disarmed path.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }
  static void Enable() { armed_.store(true, std::memory_order_relaxed); }
  static void Disable() { armed_.store(false, std::memory_order_relaxed); }

  /// Handle lookup; creates on first use. Returned references stay
  /// valid for the registry's lifetime.
  Counter& GetCounter(std::string_view name) IMDPP_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name) IMDPP_EXCLUDES(mu_);
  /// `bounds` applies on first creation only.
  Histogram& GetHistogram(std::string_view name,
                          const std::vector<double>& bounds)
      IMDPP_EXCLUDES(mu_);

  /// Name-ordered snapshot of every registered metric.
  MetricsSnapshot Snapshot() const IMDPP_EXCLUDES(mu_);

  /// Zeroes every registered metric (handles stay valid). Tests and
  /// the CLI bracket runs with this.
  void Reset() IMDPP_EXCLUDES(mu_);

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static std::atomic<bool> armed_;

  mutable Mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_ IMDPP_GUARDED_BY(mu_);
};

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_METRICS_H_
