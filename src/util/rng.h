// Sequential pseudo-random generator used by the synthetic dataset
// generators (graph wiring, price sampling, ...). The diffusion simulator
// itself never uses this class; it uses counter-based hashing (hash.h) so
// that simulations are order-independent. Dataset generation, in contrast,
// is naturally sequential and a small PCG stream keeps it simple.
#ifndef IMDPP_UTIL_RNG_H_
#define IMDPP_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/check.h"
#include "util/hash.h"

namespace imdpp {

/// PCG32 generator (O'Neill, pcg-random.org; minimal variant).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(0), inc_(0xda3e39cb94b95bdbULL) {
    state_ = 0;
    NextU32();
    state_ += SplitMix64(seed);
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
    uint32_t rot = static_cast<uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  /// Uniform double in [0, 1).
  double NextUnit() { return NextU32() * 0x1.0p-32; }

  /// Uniform integer in [0, n). Requires n > 0.
  uint32_t NextBelow(uint32_t n) {
    IMDPP_CHECK_GT(n, 0u);
    // Unbiased rejection-free multiplication trick is overkill here; simple
    // modulo bias is negligible for the generator use cases (n << 2^32).
    return static_cast<uint32_t>((static_cast<uint64_t>(NextU32()) * n) >> 32);
  }

  /// Uniform double in [lo, hi).
  double NextRange(double lo, double hi) { return lo + (hi - lo) * NextUnit(); }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextUnit() < p; }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextUnit();
    double u2 = NextUnit();
    if (u1 < 1e-12) u1 = 1e-12;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Log-normal draw; used for price-like item importance.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

  /// Zipf-like integer in [0, n): rank r sampled with weight (r+1)^-alpha.
  /// Uses inverse-CDF on a precomputation-free approximation (rejection).
  uint32_t NextZipf(uint32_t n, double alpha) {
    IMDPP_CHECK_GT(n, 0u);
    // Inverse-transform on the continuous Pareto envelope, then clamp.
    for (int attempt = 0; attempt < 64; ++attempt) {
      double u = NextUnit();
      double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0 + 1e-9)) - 1.0;
      if (x < n) return static_cast<uint32_t>(x);
    }
    return NextBelow(n);
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace imdpp

#endif  // IMDPP_UTIL_RNG_H_
