// A minimal fixed-size worker pool with a blocking ParallelFor, built for
// the Monte-Carlo engine's sample loop.
//
// Design constraints (ISSUE 2):
//   * Determinism is the caller's job — the pool only promises that every
//     index runs exactly once. Callers shard work into partials indexed by
//     task and reduce them in task order, so results are bit-identical for
//     any worker count (see diffusion::MonteCarloEngine).
//   * TSan-clean by construction: every shared field is guarded by one
//     mutex — and statically so (ISSUE 6): the fields carry
//     IMDPP_GUARDED_BY(mu_), so the clang -Wthread-safety CI job turns an
//     unguarded access into a build break. Task claiming takes that mutex
//     once per task, which is noise next to a task that simulates a whole
//     shard of campaign realizations.
//   * Shareable (ISSUE 3): one pool can back several Monte-Carlo engines
//     (session-wide or search+eval in RunDysim). Concurrent ParallelFor
//     calls from different owners serialize on a batch mutex instead of
//     corrupting each other's task state.
//   * Observable when asked (ISSUE 9): workers register named trace
//     tracks ("pool-worker-N"), and armed runs record batch/task
//     counters, a queue-depth gauge, a task-latency histogram, and a
//     per-task trace span. Disarmed, the whole layer is two relaxed
//     atomic loads per task.
#ifndef IMDPP_UTIL_THREAD_POOL_H_
#define IMDPP_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace imdpp::util {

/// Sentinel thread count: resolve to the hardware concurrency at use time.
inline constexpr int kAutoThreads = -1;

/// std::thread::hardware_concurrency(), but never 0.
int HardwareConcurrency();

/// Negative (kAutoThreads) -> HardwareConcurrency(); anything else is
/// returned as requested (0 = serial fallback, no pool at all).
int ResolveNumThreads(int requested);

class ThreadPool;

/// The standard worker pool for `num_threads` total executors: the
/// calling thread is one of them, so the pool gets resolved - 1 workers;
/// nullptr when the resolved count is serial (<= 1). One sizing rule for
/// every owner (planners, sessions, CLI tooling).
std::shared_ptr<ThreadPool> MakeWorkerPool(int num_threads);

class ThreadPool {
 public:
  /// Spawns `num_workers` threads. 0 is allowed: ParallelFor then runs
  /// every task on the calling thread.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(0) ... fn(n-1), each exactly once, across the workers and the
  /// calling thread; returns once every call has completed. Not reentrant:
  /// fn must not call ParallelFor on the same pool. Concurrent calls from
  /// different threads are safe and run one batch at a time.
  void ParallelFor(int n, const std::function<void(int)>& fn)
      IMDPP_EXCLUDES(batch_mu_, mu_);

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() IMDPP_EXCLUDES(mu_);
  /// Claims and runs tasks of the current batch until none are left.
  void RunTasks() IMDPP_EXCLUDES(mu_);

  Mutex batch_mu_ IMDPP_ACQUIRED_BEFORE(mu_);  ///< held for one whole batch
  Mutex mu_;
  CondVar work_cv_;  ///< workers wait here for a new batch
  CondVar done_cv_;  ///< ParallelFor waits here for drain

  const std::function<void(int)>* fn_ IMDPP_GUARDED_BY(mu_) = nullptr;
  int next_ IMDPP_GUARDED_BY(mu_) = 0;        ///< next unclaimed task index
  int total_ IMDPP_GUARDED_BY(mu_) = 0;       ///< size of the current batch
  int unfinished_ IMDPP_GUARDED_BY(mu_) = 0;  ///< tasks not yet completed
  int active_ IMDPP_GUARDED_BY(mu_) = 0;      ///< threads inside RunTasks
  uint64_t epoch_ IMDPP_GUARDED_BY(mu_) = 0;  ///< bumped per batch
  bool stop_ IMDPP_GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;
};

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_THREAD_POOL_H_
