// Scoped-span tracing emitting Chrome trace-event JSON (ISSUE 9
// tentpole). Load the output of --trace-out in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Model: a process-global event collector; `Span` records a "B"
// (begin) event in its constructor and the matching "E" (end) event in
// its destructor, on the recording thread's own track. Threads get
// tracks lazily; util::ThreadPool workers register themselves with
// stable "pool-worker-N" labels, the CLI registers "main".
//
// Arming policy (the overhead contract perf_smoke enforces): when
// disarmed, a Span costs exactly one relaxed atomic load — no clock
// read, no lock, no allocation. Enable() clears the buffer and starts the
// trace epoch; events record under one mutex with microsecond
// timestamps from util/timer.h's MonotonicNow, so per-thread
// timestamps are monotone by construction. Span names must be string
// literals (the collector stores the pointer, not a copy).
//
// Determinism: tracing writes nothing any planner reads, so schedules
// are bit-identical armed or disarmed at any thread count — the
// determinism_test gate `TracingAndMetricsAreBitInvisible` enforces
// this.
#ifndef IMDPP_UTIL_TRACE_H_
#define IMDPP_UTIL_TRACE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace imdpp::util::trace {

/// True while a trace is being collected. Relaxed load — safe (and
/// cheap) on any hot path.
bool Armed();

/// Starts a trace: clears buffered events, resets the trace epoch to
/// now, and arms span recording. Thread registrations persist.
void Enable();

/// Stops recording new spans. Already-buffered events stay available
/// to TraceJson/WriteTrace; open Spans still close their pairs.
void Disable();

/// Names the calling thread's track ("main", "pool-worker-3", ...).
/// Cheap and callable whether or not tracing is armed; unregistered
/// threads that record events get an automatic "thread-N" label.
void RegisterCurrentThread(const std::string& label);

/// Number of buffered events (diagnostics and tests).
size_t EventCount();

/// Events refused because the buffer hit its cap (begin events only;
/// matching end events are always admitted so pairs stay balanced).
size_t DroppedEvents();

/// RAII scope that emits a B/E event pair around its lifetime.
/// `name` must outlive the trace (use string literals).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;  ///< nullptr when the B event was not recorded
};

/// Serializes the buffered events as a Chrome trace-event JSON object
/// ({"traceEvents":[...]}) with process/thread metadata. Events are
/// grouped by thread track, preserving per-thread recording order.
/// `zero_timestamps` zeroes every ts field — the byte-stable structure
/// mode the trace-writer tests diff across reruns.
std::string TraceJson(bool zero_timestamps = false);

/// Writes TraceJson() to `path`.
Status WriteTrace(const std::string& path, bool zero_timestamps = false);

}  // namespace imdpp::util::trace

#endif  // IMDPP_UTIL_TRACE_H_
