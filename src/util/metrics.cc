#include "util/metrics.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace imdpp::util {

void HistogramData::Observe(double value) {
  if (buckets.size() != bounds.size() + 1) {
    buckets.assign(bounds.size() + 1, 0);
  }
  // First bound >= value; past-the-end = overflow bucket.
  size_t slot = std::lower_bound(bounds.begin(), bounds.end(), value) -
                bounds.begin();
  ++buckets[slot];
  ++count;
  sum += value;
}

void HistogramData::MergeFrom(const HistogramData& other) {
  if (other.count == 0 && other.bounds.empty()) return;
  if (bounds.empty() && count == 0) {
    *this = other;
    return;
  }
  if (buckets.size() != bounds.size() + 1) {
    buckets.assign(bounds.size() + 1, 0);
  }
  if (other.bounds == bounds && other.buckets.size() == buckets.size()) {
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  } else if (!other.buckets.empty()) {
    // Layout mismatch (never the case for the fixed catalog): keep the
    // totals honest, fold the shape into the overflow bucket.
    buckets.back() += other.count;
  }
  count += other.count;
  sum += other.sum;
}

const std::vector<double>& DefaultValueBounds() {
  static const std::vector<double>* kBounds = [] {
    auto* b = new std::vector<double>;
    for (double edge = 1.0; edge <= 1048576.0; edge *= 2.0) {
      b->push_back(edge);
    }
    return b;
  }();
  return *kBounds;
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double> kBounds = {
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,   5.0,  10.0,
      25.0, 50.0,  100., 250., 500., 1000., 2500., 5000., 10000.};
  return kBounds;
}

bool IsTimingMetric(std::string_view name) {
  auto ends_with = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  return ends_with("millis") || ends_with("micros") || ends_with("seconds");
}

MetricsSnapshot::Value& MetricsSnapshot::Entry(std::string_view name,
                                              MetricKind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Value{}).first;
    it->second.kind = kind;
  }
  IMDPP_CHECK(it->second.kind == kind);
  return it->second;
}

void MetricsSnapshot::AddCounter(std::string_view name, int64_t delta) {
  Entry(name, MetricKind::kCounter).counter += delta;
}

void MetricsSnapshot::SetCounter(std::string_view name, int64_t value) {
  Entry(name, MetricKind::kCounter).counter = value;
}

void MetricsSnapshot::SetGauge(std::string_view name, double value) {
  Entry(name, MetricKind::kGauge).number = value;
}

void MetricsSnapshot::AddSum(std::string_view name, double delta) {
  Entry(name, MetricKind::kSum).number += delta;
}

void MetricsSnapshot::Observe(std::string_view name, double value,
                              const std::vector<double>& bounds) {
  Value& v = Entry(name, MetricKind::kHistogram);
  if (v.histogram.bounds.empty()) v.histogram.bounds = bounds;
  v.histogram.Observe(value);
}

void MetricsSnapshot::MergeHistogram(std::string_view name,
                                     const HistogramData& data) {
  Entry(name, MetricKind::kHistogram).histogram.MergeFrom(data);
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.entries_) {
    switch (value.kind) {
      case MetricKind::kCounter:
        AddCounter(name, value.counter);
        break;
      case MetricKind::kGauge:
        SetGauge(name, value.number);
        break;
      case MetricKind::kSum:
        AddSum(name, value.number);
        break;
      case MetricKind::kHistogram:
        MergeHistogram(name, value.histogram);
        break;
    }
  }
}

int64_t MetricsSnapshot::Counter(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.counter;
}

double MetricsSnapshot::Number(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.number;
}

const HistogramData* MetricsSnapshot::Histogram(std::string_view name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return &it->second.histogram;
}

Json MetricsJson(const MetricsSnapshot& snapshot, bool include_timings) {
  Json out = Json::Object();
  for (const auto& [name, value] : snapshot.entries()) {
    if (!include_timings && IsTimingMetric(name)) continue;
    switch (value.kind) {
      case MetricKind::kCounter:
        out.Set(name, static_cast<double>(value.counter));
        break;
      case MetricKind::kGauge:
      case MetricKind::kSum:
        out.Set(name, value.number);
        break;
      case MetricKind::kHistogram: {
        Json h = Json::Object();
        h.Set("count", static_cast<double>(value.histogram.count));
        h.Set("sum", value.histogram.sum);
        Json bounds = Json::Array();
        for (double edge : value.histogram.bounds) bounds.Append(edge);
        h.Set("bounds", std::move(bounds));
        Json buckets = Json::Array();
        for (int64_t n : value.histogram.buckets) {
          buckets.Append(static_cast<double>(n));
        }
        h.Set("buckets", std::move(buckets));
        out.Set(name, std::move(h));
        break;
      }
    }
  }
  return out;
}

std::atomic<bool> MetricRegistry::armed_{false};

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* kRegistry = new MetricRegistry;
  return *kRegistry;
}

MetricRegistry::Counter& MetricRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Entry{}).first;
    it->second.kind = MetricKind::kCounter;
    it->second.counter = std::make_unique<Counter>();
  }
  IMDPP_CHECK(it->second.kind == MetricKind::kCounter);
  return *it->second.counter;
}

MetricRegistry::Gauge& MetricRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Entry{}).first;
    it->second.kind = MetricKind::kGauge;
    it->second.gauge = std::make_unique<Gauge>();
  }
  IMDPP_CHECK(it->second.kind == MetricKind::kGauge);
  return *it->second.gauge;
}

MetricRegistry::Histogram& MetricRegistry::GetHistogram(
    std::string_view name, const std::vector<double>& bounds) {
  MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Entry{}).first;
    it->second.kind = MetricKind::kHistogram;
    it->second.histogram = std::make_unique<Histogram>();
    it->second.histogram->Init(bounds);
  }
  IMDPP_CHECK(it->second.kind == MetricKind::kHistogram);
  return *it->second.histogram;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot out;
  MutexLock lock(mu_);
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        out.AddCounter(name, entry.counter->value());
        break;
      case MetricKind::kGauge:
        out.SetGauge(name, entry.gauge->value());
        break;
      case MetricKind::kSum:
        break;  // registry entries are never kSum
      case MetricKind::kHistogram:
        out.MergeHistogram(name, entry.histogram->Snapshot());
        break;
    }
  }
  return out;
}

void MetricRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->value_.store(0, std::memory_order_relaxed);
        break;
      case MetricKind::kGauge:
        entry.gauge->value_.store(0.0, std::memory_order_relaxed);
        break;
      case MetricKind::kSum:
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace imdpp::util
