// Dependency-free JSON value, parser and writer — the substrate of the
// config/report subsystem (sweep configs in, plottable results out).
//
// Design points that matter to the rest of the codebase:
//   * Objects preserve insertion order (stored as a key/value vector, not
//     a map), so serialized reports are byte-stable: the same run always
//     produces the same bytes — which is what lets CI diff two CLI runs
//     as a determinism gate.
//   * Numbers round-trip: integers print without an exponent or fraction,
//     doubles print with the shortest decimal form that parses back to
//     the identical bits.
//   * Parsing never aborts: errors come back as a "line:col: message"
//     string so the CLI can print them and exit non-zero.
#ifndef IMDPP_UTIL_JSON_H_
#define IMDPP_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace imdpp::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}                   // NOLINT
  Json(double v) : type_(Type::kNumber), num_(v) {}                // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                    // NOLINT
  Json(int64_t v) : Json(static_cast<double>(v)) {}                // NOLINT
  Json(uint64_t v) : Json(static_cast<double>(v)) {}               // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}           // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}// NOLINT

  static Json Array() { return Json(Type::kArray); }
  static Json Object() { return Json(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads; the value must hold the asked-for type (IMDPP_CHECK).
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;  ///< truncating read of a number
  const std::string& AsString() const;

  // --- arrays ---
  size_t size() const;  ///< element count (arrays) or member count (objects)
  const Json& operator[](size_t i) const;
  const std::vector<Json>& elements() const;
  Json& Append(Json v);

  // --- objects (insertion-ordered) ---
  /// Member lookup; nullptr when absent (or not an object).
  const Json* Find(std::string_view key) const;
  /// Inserts or overwrites `key`; returns the stored value.
  Json& Set(std::string key, Json value);
  const std::vector<Member>& members() const;

  /// Serializes. indent < 0 → compact one-liner; indent >= 0 → pretty,
  /// `indent` spaces per level. Object members keep insertion order.
  std::string Dump(int indent = -1) const;

  /// Parses `text`; on failure returns false and fills *error with a
  /// "line:col: message" description (out is left null).
  static bool Parse(std::string_view text, Json* out, std::string* error);

  friend bool operator==(const Json& a, const Json& b);

 private:
  explicit Json(Type t) : type_(t) {}
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<Member> obj_;
};

/// Shortest decimal form of `v` that parses back bit-identically;
/// integral values in the int64 range print as plain integers.
std::string JsonNumberToString(double v);

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_JSON_H_
