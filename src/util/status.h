// Structured errors (ISSUE 8 tentpole, prong 1): a dependency-free
// Status / StatusOr<T> so fallible boundaries return errors as data
// instead of aborting the process or throwing.
//
// The code set is the canonical subset this repo actually produces:
//   kInvalidArgument   — malformed config/flag/spec input
//   kNotFound          — registry miss (planner/dataset/backend name)
//   kDeadlineExceeded  — a util::CancelToken deadline fired
//   kCancelled         — a run was cancelled cooperatively
//   kResourceExhausted — transient failure, eligible for RetryTransient
//   kInternal          — everything else (also the fault-injection default)
// The numeric values follow the gRPC/absl canonical space so logs stay
// comparable with the rest of the world.
//
// Status is [[nodiscard]] at the class level, and the repo-specific
// imdpp-lint rule `status-must-check` additionally flags any call whose
// util::Status result is discarded (with the standard reasoned
// `// imdpp-lint: allow(status-must-check) <reason>` escape) — so a
// dropped error is both a compiler warning and a lint finding.
#ifndef IMDPP_UTIL_STATUS_H_
#define IMDPP_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace imdpp::util {

enum class StatusCode : int {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kResourceExhausted = 8,
  kInternal = 13,
};

/// Lower-case canonical name ("ok", "invalid_argument", ...), the spelling
/// used by fault specs and the CLI's machine-readable error JSON.
std::string_view StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName; kOk is deliberately not parseable (arming a
/// fault that injects success is a spec error, not a no-op). Returns
/// std::nullopt for unknown names.
std::optional<StatusCode> ParseStatusCode(std::string_view name);

class [[nodiscard]] Status {
 public:
  /// Ok by default, so `util::Status s;` is a clean accumulator.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>" — the human rendering.
  std::string ToString() const;

  /// Keeps the first error: assigns `other` only if *this is still ok.
  /// The shape loops use to report the earliest failure.
  void Update(Status other) {
    if (ok()) *this = std::move(other);
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

/// A value or the error that prevented producing it. Accessing the value
/// of a failed StatusOr is a programming error (IMDPP_CHECK).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value (the common `return lease;` shape).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit from a non-ok Status (the common `return status;` shape).
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    IMDPP_CHECK(!status_.ok());  // an ok StatusOr must carry a value
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    IMDPP_CHECK(ok());
    return *value_;
  }
  const T& value() const {
    IMDPP_CHECK(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a util::Status expression) and returns it from the
/// enclosing function if it is an error — the early-exit shape every
/// Status-returning parser in config:: uses.
#define IMDPP_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::imdpp::util::Status imdpp_status_ = (expr);    \
    if (!imdpp_status_.ok()) return imdpp_status_;   \
  } while (0)

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_STATUS_H_
