// Clang thread-safety analysis macros (ISSUE 6 tentpole, prong a).
//
// Wrapping the attributes keeps the annotations a no-op on gcc/MSVC while
// the clang CI job builds with -Wthread-safety -Werror, turning an
// unguarded access to any IMDPP_GUARDED_BY field into a build break. The
// complementary token-level `lock-before-shared` check in tools/lint
// keeps a weaker form of the same hygiene on non-clang builds.
//
// Conventions in this repo:
//   * Every field whose comment says "guarded by X" carries
//     IMDPP_GUARDED_BY(X) so the comment is machine-checked.
//   * Private helpers that expect a lock already held are annotated
//     IMDPP_REQUIRES(X); public entry points that take the lock themselves
//     are annotated IMDPP_EXCLUDES(X) so accidental re-entry is a build
//     error instead of a deadlock.
#ifndef IMDPP_UTIL_THREAD_ANNOTATIONS_H_
#define IMDPP_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define IMDPP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IMDPP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable mutex. libstdc++'s std::mutex carries no
/// capability annotations, so the repo locks through util::Mutex (see
/// util/mutex.h), which wears this.
#define IMDPP_CAPABILITY(x) IMDPP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (util::MutexLock).
#define IMDPP_SCOPED_CAPABILITY IMDPP_THREAD_ANNOTATION(scoped_lockable)

/// Field or variable may only be read/written with `x` held.
#define IMDPP_GUARDED_BY(x) IMDPP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed with `x` held.
#define IMDPP_PT_GUARDED_BY(x) IMDPP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires `x` to be held on entry (and does not release it).
#define IMDPP_REQUIRES(...) \
  IMDPP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with `x` held (it acquires it itself).
#define IMDPP_EXCLUDES(...) \
  IMDPP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires / releases `x` (scoped-lock helpers, RAII adapters).
#define IMDPP_ACQUIRE(...) \
  IMDPP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IMDPP_RELEASE(...) \
  IMDPP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Declares lock acquisition order: `x` is always taken before the
/// argument mutexes (deadlock-freedom documentation the analysis checks).
#define IMDPP_ACQUIRED_BEFORE(...) \
  IMDPP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define IMDPP_ACQUIRED_AFTER(...) \
  IMDPP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns the mutex guarding the returned reference/object.
#define IMDPP_RETURN_CAPABILITY(x) IMDPP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (e.g. a lock handed
/// across functions). Use sparingly and always with a comment.
#define IMDPP_NO_THREAD_SAFETY_ANALYSIS \
  IMDPP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // IMDPP_UTIL_THREAD_ANNOTATIONS_H_
