#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace imdpp::util {

namespace {

const std::vector<Json> kEmptyArray;
const std::vector<Json::Member> kEmptyObject;

}  // namespace

bool Json::AsBool() const {
  IMDPP_CHECK(is_bool());
  return bool_;
}

double Json::AsDouble() const {
  IMDPP_CHECK(is_number());
  return num_;
}

int64_t Json::AsInt() const {
  IMDPP_CHECK(is_number());
  return static_cast<int64_t>(num_);
}

const std::string& Json::AsString() const {
  IMDPP_CHECK(is_string());
  return str_;
}

size_t Json::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  return 0;
}

const Json& Json::operator[](size_t i) const {
  IMDPP_CHECK(is_array());
  IMDPP_CHECK_LT(i, arr_.size());
  return arr_[i];
}

const std::vector<Json>& Json::elements() const {
  return is_array() ? arr_ : kEmptyArray;
}

Json& Json::Append(Json v) {
  IMDPP_CHECK(is_array() || is_null());
  type_ = Type::kArray;
  arr_.push_back(std::move(v));
  return arr_.back();
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Json& Json::Set(std::string key, Json value) {
  IMDPP_CHECK(is_object() || is_null());
  type_ = Type::kObject;
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(value);
      return m.second;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return obj_.back().second;
}

const std::vector<Json::Member>& Json::members() const {
  return is_object() ? obj_ : kEmptyObject;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.num_ == b.num_;
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.arr_ == b.arr_;
    case Json::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

// ----------------------------------------------------------------- writing

std::string JsonNumberToString(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";  // JSON has no inf/nan
  // Integral values in the exactly-representable range print as integers.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest of %.15g/%.16g/%.17g that round-trips to the same bits.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Newline(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += JsonNumberToString(num_);
      return;
    case Type::kString:
      EscapeString(str_, out);
      return;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        EscapeString(obj_[i].first, out);
        *out += indent < 0 ? ":" : ": ";
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ----------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(Json* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    // Position → 1-based line:col for a readable config-file diagnostic.
    int line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    if (error_ != nullptr) {
      *error_ = std::to_string(line) + ":" + std::to_string(col) + ": " +
                message;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        // // line comments, so sweep configs can be annotated.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Peek(char* c) {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(Json* out) {
    char c;
    if (!Peek(&c)) return Fail("unexpected end of input");
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = Json(std::move(s));
        return true;
      }
      case 't':
        if (!Literal("true")) return Fail("invalid literal");
        *out = Json(true);
        return true;
      case 'f':
        if (!Literal("false")) return Fail("invalid literal");
        *out = Json(false);
        return true;
      case 'n':
        if (!Literal("null")) return Fail("invalid literal");
        *out = Json();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Json* out) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Peek(&c) || c != ':') return Fail("expected ':' after object key");
      ++pos_;
      SkipWs();
      Json value;
      if (!ParseValue(&value)) return false;
      if (out->Find(key) != nullptr) {
        return Fail("duplicate object key \"" + key + "\"");
      }
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Json* out) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      Json value;
      if (!ParseValue(&value)) return false;
      out->Append(std::move(value));
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    char c;
    if (!Peek(&c) || c != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // UTF-8 encode (BMP only — enough for config files).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) {
        pos_ = start;
        return Fail("invalid number");
      }
    }
    if (!digits) {
      pos_ = start;
      return Fail("invalid value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    *out = Json(std::strtod(token.c_str(), nullptr));
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool Json::Parse(std::string_view text, Json* out, std::string* error) {
  Json value;
  Parser parser(text, error);
  if (!parser.Run(&value)) return false;
  *out = std::move(value);
  return true;
}

}  // namespace imdpp::util
