// Annotated locking primitives (ISSUE 6 tentpole, prong a).
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// capability annotations, so clang's -Wthread-safety cannot see
// acquisitions made through them. These thin wrappers add the attributes
// (and nothing else): Mutex is a std::mutex that is a capability,
// MutexLock is a scoped acquisition the analysis tracks, and CondVar
// keeps the capability held across a wait the way the analysis expects.
// Every mutex-protected structure in the repo (util::ThreadPool,
// prep::PrepCache / PrepArtifacts memos, the MonteCarloEngine memos)
// locks through these so an unguarded access to an IMDPP_GUARDED_BY
// field is a build break under the clang static-analysis CI job.
#ifndef IMDPP_UTIL_MUTEX_H_
#define IMDPP_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace imdpp::util {

class IMDPP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IMDPP_ACQUIRE() { mu_.lock(); }
  void Unlock() IMDPP_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock the analysis tracks: holds `mu` for the enclosing scope.
class IMDPP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IMDPP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() IMDPP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over util::Mutex. Wait atomically releases the
/// mutex and re-holds it on return; to the analysis the capability stays
/// held across the call, which matches how callers reason about their
/// guarded predicate (always re-checked in a while loop around Wait —
/// spurious wakeups are allowed).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) IMDPP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the re-acquired mutex
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace imdpp::util

#endif  // IMDPP_UTIL_MUTEX_H_
