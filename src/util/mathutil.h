// Small numeric helpers shared across modules.
#ifndef IMDPP_UTIL_MATHUTIL_H_
#define IMDPP_UTIL_MATHUTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace imdpp {

/// Clamps v into [0, 1]; probabilities throughout the library live there.
inline double Clip01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Clamps v into [lo, hi].
inline double Clip(double v, double lo, double hi) {
  return std::clamp(v, lo, hi);
}

/// Arithmetic mean; 0 for an empty range.
inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Sample standard deviation; 0 for fewer than two points.
inline double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

/// Jaccard similarity of two sorted id vectors.
template <typename T>
double JaccardSorted(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// Cosine similarity of two equal-length vectors; 0 if either is zero.
inline double Cosine(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace imdpp

#endif  // IMDPP_UTIL_MATHUTIL_H_
