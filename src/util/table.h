// Plain-text table printer used by the per-figure benchmark harnesses to
// emit the rows/series the paper's plots report.
#ifndef IMDPP_UTIL_TABLE_H_
#define IMDPP_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace imdpp {

/// Collects rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; rows may have differing cell counts.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  /// Renders the table with column alignment and a header separator.
  std::string Render() const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace imdpp

#endif  // IMDPP_UTIL_TABLE_H_
