// Dataset statistics in the shape of the paper's Table II / Table III.
#ifndef IMDPP_DATA_STATS_H_
#define IMDPP_DATA_STATS_H_

#include <string>

#include "data/dataset.h"
#include "util/table.h"

namespace imdpp::data {

struct DatasetStats {
  std::string name;
  int node_types = 0;  ///< KG node types + USER
  int64_t nodes = 0;   ///< KG nodes + users
  int users = 0;
  int items = 0;
  int edge_types = 0;  ///< KG edge types + FRIENDSHIP
  int64_t edges = 0;   ///< KG edges + friendships
  int64_t friendships = 0;
  bool directed_friendship = false;
  double avg_influence = 0.0;
  double avg_importance = 0.0;
};

DatasetStats ComputeStats(const Dataset& ds);

/// Appends one dataset column per call, Table II style (datasets as
/// columns works poorly in ASCII; we emit datasets as rows instead).
void AppendStatsRow(TextTable& table, const DatasetStats& s);

/// Header matching AppendStatsRow.
void SetStatsHeader(TextTable& table);

}  // namespace imdpp::data

#endif  // IMDPP_DATA_STATS_H_
